(** Hash-join probe kernel (Balkesen et al.'s NPO, Table 3).

    The build side is materialised host-side into a bucketed hash table
    (open addressing within fixed-size buckets of [elems_per_bucket]
    slots — 2 for HJ2, 8 for HJ8); the measured kernel is the probe
    phase: for every probe tuple, hash the key and scan the bucket's
    slots, accumulating matching payloads. The bucket scan is the
    low-trip-count inner loop that makes outer-site prefetch injection
    shine (Fig. 10). *)

type algo =
  | Npo     (** multiplicative hashing *)
  | Npo_st  (** xor-fold then multiplicative, the paper's second variant *)

type params = {
  n_buckets : int;        (** power of two *)
  elems_per_bucket : int; (** 2 (HJ2) or 8 (HJ8) *)
  n_build : int;
  n_probe : int;
  seed : int;
  algo : algo;
}

val hj2_params : params
val hj8_params : params
(** NPO variants; switch [algo] for NPO_st. *)

val build : params -> Workload.instance
(** The kernel returns the sum of matched payloads, verified against a
    host-side probe of the same table. *)

val workload : ?params:params -> name:string -> unit -> Workload.t
