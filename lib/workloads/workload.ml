module Memory = Aptget_mem.Memory

type instance = {
  mem : Memory.t;
  func : Ir.func;
  args : int list;
  verify : Memory.t -> int option -> (unit, string) result;
}

type t = {
  name : string;
  app : string;
  input : string;
  description : string;
  nested : bool;
  build : unit -> instance;
}

let make ~name ~app ~input ~description ~nested build =
  { name; app; input; description; nested; build }

let alloc_guard mem = ignore (Memory.alloc mem ~name:"guard" ~words:8192)

let no_verify _ _ = Ok ()

let expect_ret expected _ ret =
  match ret with
  | Some v when v = expected -> Ok ()
  | Some v ->
    Error (Printf.sprintf "kernel returned %d, expected %d" v expected)
  | None -> Error "kernel returned no value"
