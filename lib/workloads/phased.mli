(** Phase-changing workload for the online re-optimization study.

    The same indirect-access kernel as {!Micro} (identical IR shape,
    hence identical PCs and structural fingerprints), but the index
    array [B] is laid out phase by phase: [Hot] phases draw indices
    from a small window of the table (cache-resident — prefetching is
    pure instruction overhead there), [Cold] phases draw from the whole
    table (several times the LLC — prefetching is essential). A
    whole-program profile sees the mixture and tunes for whichever mode
    dominated its samples; the online loop ({!Aptget_adapt}) instead
    notices each phase transition and retunes.

    Two views of one program:
    - {!workload} runs all phases fused in one invocation (what the
      one-shot pipeline profiles and measures);
    - {!segments} exposes each phase as its own {!Workload.t} whose
      arguments select that phase's window of the {e same} [B]
      contents — the epochs the adaptive loop drives. Summing segment
      cycles is comparable to the fused run because the kernel,
      memory layout and index stream are byte-identical. *)

type kind = Hot | Cold

val kind_to_string : kind -> string

type params = {
  inner : int;  (** inner trip count *)
  complexity : int;  (** extra per-iteration work ops *)
  hot_words : int;  (** index range of [Hot] phases (cache-resident) *)
  table_words : int;  (** full table size, index range of [Cold] phases *)
  seed : int;
  phases : (kind * int) list;
      (** per-phase element counts, each a positive multiple of [inner] *)
}

val default_params : params
(** One cold lead phase, then three hot phases (so a fused profile is
    dominated by cold stalls while most elements are hot): the shape
    under which a one-shot profile ages fastest. *)

val total : params -> int
(** Sum of phase element counts. *)

val workload : ?params:params -> name:string -> unit -> Workload.t
(** All phases fused into a single run. *)

val segments : ?params:params -> name:string -> unit -> (kind * Workload.t) list
(** One workload per phase, named ["<name>@<i>"] (1-based), in phase
    order. Each rebuilds the full memory image and runs only its own
    window of [B]. *)
