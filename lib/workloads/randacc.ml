module Memory = Aptget_mem.Memory
module Rng = Aptget_util.Rng

type params = { table_words : int; updates : int; seed : int }

let default_params = { table_words = 1 lsl 22; updates = 524_288; seed = 31 }

let stream_of p =
  let rng = Rng.create p.seed in
  Array.init p.updates (fun _ -> Rng.int rng p.table_words)

let build p =
  if p.table_words land (p.table_words - 1) <> 0 then
    invalid_arg "Randacc.build: table_words must be a power of two";
  let stream = stream_of p in
  let mem =
    Memory.create ~capacity_words:(p.table_words + p.updates + 65536) ()
  in
  let idx_r = Memory.alloc mem ~name:"idx" ~words:p.updates in
  let table_r = Memory.alloc mem ~name:"T" ~words:p.table_words in
  Workload.alloc_guard mem;
  Memory.blit_array mem idx_r stream;
  let init_table = Array.init p.table_words (fun i -> i) in
  Memory.blit_array mem table_r init_table;
  let bld = Builder.create ~name:"randacc" ~nparams:3 in
  let idx_b, table_b, n_op =
    match Builder.params bld with
    | [ a; b; c ] -> (a, b, c)
    | _ -> assert false
  in
  Builder.for_loop bld ~from:(Ir.Imm 0) ~bound:n_op (fun bld i ->
      let iaddr = Builder.add bld idx_b i in
      let r = Builder.load bld iaddr in
      let taddr = Builder.add bld table_b r in
      let v = Builder.load bld taddr in
      let nv = Builder.bxor bld v r in
      Builder.store bld ~addr:taddr ~value:nv);
  Builder.ret bld None;
  let func = Builder.finish bld in
  Verify.check_exn func;
  let host_table = Array.init p.table_words (fun i -> i) in
  Array.iter (fun r -> host_table.(r) <- host_table.(r) lxor r) stream;
  let verify mem _ =
    let ok = ref (Ok ()) in
    let stride = max 1 (p.table_words / 997) in
    let i = ref 0 in
    while !i < p.table_words do
      let got = Memory.get mem (table_r.Memory.base + !i) in
      if got <> host_table.(!i) then
        ok :=
          Error
            (Printf.sprintf "randAcc T[%d] = %d, expected %d" !i got
               host_table.(!i));
      i := !i + stride
    done;
    !ok
  in
  {
    Workload.mem;
    func;
    args = [ idx_r.Memory.base; table_r.Memory.base; p.updates ];
    verify;
  }

let workload ?(params = default_params) ~name () =
  Workload.make ~name ~app:"RandAcc"
    ~input:(Printf.sprintf "%dMiB" (params.table_words * 8 / 1024 / 1024))
    ~description:"Measuring memory system performance" ~nested:false
    (fun () -> build params)
