module Memory = Aptget_mem.Memory
module Rng = Aptget_util.Rng

type algo = Npo | Npo_st

type params = {
  n_buckets : int;
  elems_per_bucket : int;
  n_build : int;
  n_probe : int;
  seed : int;
  algo : algo;
}

let hj2_params =
  {
    n_buckets = 1 lsl 18;
    elems_per_bucket = 2;
    n_build = 262_144;
    n_probe = 131_072;
    seed = 17;
    algo = Npo;
  }

let hj8_params =
  {
    n_buckets = 1 lsl 16;
    elems_per_bucket = 8;
    n_build = 262_144;
    n_probe = 131_072;
    seed = 19;
    algo = Npo;
  }

(* Hash functions; mirrored exactly by the IR kernel (63-bit OCaml int
   semantics on both sides). *)
let hash_const = 2654435761

let hash ~algo ~mask key =
  match algo with
  | Npo -> ((key * hash_const) asr 12) land mask
  | Npo_st -> (((key lxor (key asr 16)) * hash_const) asr 8) land mask

let slot_words = 2 (* key, payload *)

let build p =
  if p.n_buckets land (p.n_buckets - 1) <> 0 then
    invalid_arg "Hashjoin.build: n_buckets must be a power of two";
  let mask = p.n_buckets - 1 in
  let bucket_words = slot_words * p.elems_per_bucket in
  let table_words = p.n_buckets * bucket_words in
  let rng = Rng.create p.seed in
  (* Build side: keys >= 1 (0 marks an empty slot). *)
  let table = Array.make table_words 0 in
  let build_keys = Array.init p.n_build (fun _ -> 1 + Rng.int rng (1 lsl 24)) in
  Array.iter
    (fun key ->
      let b = hash ~algo:p.algo ~mask key in
      let base = b * bucket_words in
      let rec place s =
        if s < p.elems_per_bucket then begin
          if table.(base + (slot_words * s)) = 0 then begin
            table.(base + (slot_words * s)) <- key;
            table.(base + (slot_words * s) + 1) <- (key * 3) + 1
          end
          else place (s + 1)
        end
        (* bucket overflow: tuple dropped, as in NPO with fixed buckets *)
      in
      place 0)
    build_keys;
  (* Probe side: half the keys come from the build side for matches. *)
  let probe_keys =
    Array.init p.n_probe (fun _ ->
        if Rng.bool rng then build_keys.(Rng.int rng p.n_build)
        else 1 + Rng.int rng (1 lsl 24))
  in
  let expected =
    Array.fold_left
      (fun acc key ->
        let b = hash ~algo:p.algo ~mask key in
        let base = b * bucket_words in
        let sum = ref 0 in
        for s = 0 to p.elems_per_bucket - 1 do
          if table.(base + (slot_words * s)) = key then
            sum := !sum + table.(base + (slot_words * s) + 1)
        done;
        acc + !sum)
      0 probe_keys
  in
  let mem =
    Memory.create ~capacity_words:(table_words + p.n_probe + 65536) ()
  in
  let probe_r = Memory.alloc mem ~name:"probe_keys" ~words:p.n_probe in
  let ht_r = Memory.alloc mem ~name:"hash_table" ~words:table_words in
  Workload.alloc_guard mem;
  Memory.blit_array mem probe_r probe_keys;
  Memory.blit_array mem ht_r table;
  (* params: probe_base, ht_base, n_probe, mask, elems_per_bucket *)
  let bld = Builder.create ~name:"hashjoin" ~nparams:5 in
  let probe_b, ht_b, n_op, mask_op, epb_op =
    match Builder.params bld with
    | [ a; b; c; d; e ] -> (a, b, c, d, e)
    | _ -> assert false
  in
  let final =
    Builder.for_loop_acc bld ~from:(Ir.Imm 0) ~bound:(`Op n_op)
      ~init:[ Ir.Imm 0 ]
      (fun bld i accs ->
        let acc0 = List.hd accs in
        let kaddr = Builder.add bld probe_b i in
        let key = Builder.load bld kaddr in
        let h =
          match p.algo with
          | Npo ->
            let prod = Builder.mul bld key (Ir.Imm hash_const) in
            let shifted = Builder.shr bld prod (Ir.Imm 12) in
            Builder.band bld shifted mask_op
          | Npo_st ->
            let folded = Builder.shr bld key (Ir.Imm 16) in
            let mixed = Builder.bxor bld key folded in
            let prod = Builder.mul bld mixed (Ir.Imm hash_const) in
            let shifted = Builder.shr bld prod (Ir.Imm 8) in
            Builder.band bld shifted mask_op
        in
        let boff = Builder.mul bld h (Ir.Imm (slot_words * p.elems_per_bucket)) in
        let bucket = Builder.add bld ht_b boff in
        Builder.for_loop_acc bld ~from:(Ir.Imm 0) ~bound:(`Op epb_op)
          ~init:[ acc0 ]
          (fun bld s iaccs ->
            let acc = List.hd iaccs in
            let soff = Builder.mul bld s (Ir.Imm slot_words) in
            let saddr = Builder.add bld bucket soff in
            let k = Builder.load bld saddr in
            let matches = Builder.cmp bld Ir.Eq k key in
            Builder.if_then_acc bld ~cond:matches ~init:[ acc ] (fun bld ->
                let paddr = Builder.add bld saddr (Ir.Imm 1) in
                let payload = Builder.load bld paddr in
                [ Builder.add bld acc payload ])))
  in
  Builder.ret bld (Some (List.hd final));
  let func = Builder.finish bld in
  Verify.check_exn func;
  {
    Workload.mem;
    func;
    args =
      [
        probe_r.Memory.base; ht_r.Memory.base; p.n_probe; mask;
        p.elems_per_bucket;
      ];
    verify = Workload.expect_ret expected;
  }

let workload ?(params = hj8_params) ~name () =
  Workload.make ~name ~app:(Printf.sprintf "HJ%d" params.elems_per_bucket)
    ~input:(match params.algo with Npo -> "NPO" | Npo_st -> "NPO_st")
    ~description:"Represents a database application (hash join probe)"
    ~nested:true
    (fun () -> build params)
