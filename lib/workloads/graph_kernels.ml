module Memory = Aptget_mem.Memory
module Csr = Aptget_graph.Csr

let layout_csr mem (g : Csr.t) =
  let offsets = Memory.alloc mem ~name:"offsets" ~words:(g.Csr.n + 1) in
  let cols = Memory.alloc mem ~name:"cols" ~words:(max 1 g.Csr.m) in
  let weights = Memory.alloc mem ~name:"weights" ~words:(max 1 g.Csr.m) in
  Memory.blit_array mem offsets g.Csr.offsets;
  Memory.blit_array mem cols g.Csr.cols;
  Memory.blit_array mem weights g.Csr.weights;
  (offsets, cols, weights)

let fresh_mem (g : Csr.t) extra =
  Memory.create ~capacity_words:((2 * g.Csr.m) + (8 * g.Csr.n) + extra + 65536) ()

(* Emit [start = offsets[v]; stop = offsets[v+1]] *)
let row_bounds bld ~off_base v =
  let a0 = Builder.add bld off_base v in
  let start = Builder.load bld a0 in
  let vp1 = Builder.add bld v (Ir.Imm 1) in
  let a1 = Builder.add bld off_base vp1 in
  let stop = Builder.load bld a1 in
  (start, stop)

(* ------------------------------------------------------------------ *)
(* BFS                                                                  *)
(* ------------------------------------------------------------------ *)

let host_bfs (g : Csr.t) source =
  let dist = Array.make g.Csr.n (-1) in
  let queue = Queue.create () in
  dist.(source) <- 0;
  Queue.add source queue;
  let visited = ref 1 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Array.iter
      (fun c ->
        if dist.(c) < 0 then begin
          dist.(c) <- dist.(v) + 1;
          incr visited;
          Queue.add c queue
        end)
      (Csr.neighbours g v)
  done;
  (dist, !visited)

let bfs ?(source = 0) (g : Csr.t) =
  let mem = fresh_mem g 0 in
  let off_r, cols_r, _ = layout_csr mem g in
  let vis_r = Memory.alloc mem ~name:"visited" ~words:g.Csr.n in
  let dist_r = Memory.alloc mem ~name:"dist" ~words:g.Csr.n in
  let queue_r = Memory.alloc mem ~name:"queue" ~words:(g.Csr.n + 1) in
  Workload.alloc_guard mem;
  Memory.set mem (vis_r.Memory.base + source) 1;
  Memory.set mem queue_r.Memory.base source;
  (* params: off, cols, vis, dist, queue *)
  let bld = Builder.create ~name:"bfs" ~nparams:5 in
  let off_base, cols_base, vis_base, dist_base, queue_base =
    match Builder.params bld with
    | [ a; b; c; d; e ] -> (a, b, c, d, e)
    | _ -> assert false
  in
  let final =
    Builder.for_loop_acc bld ~from:(Ir.Imm 0) ~bound:(`Acc 0)
      ~init:[ Ir.Imm 1 ]
      (fun bld qi accs ->
        let tail = List.hd accs in
        let qaddr = Builder.add bld queue_base qi in
        let v = Builder.load bld qaddr in
        let start, stop = row_bounds bld ~off_base v in
        let dv_addr = Builder.add bld dist_base v in
        let dv = Builder.load bld dv_addr in
        let dc = Builder.add bld dv (Ir.Imm 1) in
        Builder.for_loop_acc bld ~from:start ~bound:(`Op stop)
          ~init:[ tail ]
          (fun bld e iaccs ->
            let tl = List.hd iaccs in
            let caddr = Builder.add bld cols_base e in
            let c = Builder.load bld caddr in
            let vaddr = Builder.add bld vis_base c in
            let vis = Builder.load bld vaddr in
            let unseen = Builder.cmp bld Ir.Eq vis (Ir.Imm 0) in
            Builder.if_then_acc bld ~cond:unseen ~init:[ tl ] (fun bld ->
                Builder.store bld ~addr:vaddr ~value:(Ir.Imm 1);
                let daddr = Builder.add bld dist_base c in
                Builder.store bld ~addr:daddr ~value:dc;
                let slot = Builder.add bld queue_base tl in
                Builder.store bld ~addr:slot ~value:c;
                [ Builder.add bld tl (Ir.Imm 1) ])))
  in
  Builder.ret bld (Some (List.hd final));
  let func = Builder.finish bld in
  Verify.check_exn func;
  let host_dist, host_visited = host_bfs g source in
  let verify mem ret =
    match ret with
    | Some v when v <> host_visited ->
      Error (Printf.sprintf "BFS visited %d, expected %d" v host_visited)
    | None -> Error "BFS returned no value"
    | Some _ ->
      let ok = ref (Ok ()) in
      let stride = max 1 (g.Csr.n / 997) in
      let check v =
        let got = Memory.get mem (dist_r.Memory.base + v) in
        let expect = if host_dist.(v) < 0 then 0 else host_dist.(v) in
        if got <> expect && host_dist.(v) >= 0 then
          ok :=
            Error (Printf.sprintf "BFS dist[%d] = %d, expected %d" v got expect)
      in
      let v = ref 0 in
      while !v < g.Csr.n do
        check !v;
        v := !v + stride
      done;
      !ok
  in
  {
    Workload.mem;
    func;
    args =
      [
        off_r.Memory.base;
        cols_r.Memory.base;
        vis_r.Memory.base;
        dist_r.Memory.base;
        queue_r.Memory.base;
      ];
    verify;
  }

(* ------------------------------------------------------------------ *)
(* DFS                                                                  *)
(* ------------------------------------------------------------------ *)

let host_dfs (g : Csr.t) source =
  let visited = Array.make g.Csr.n false in
  let stack = ref [ source ] in
  visited.(source) <- true;
  let count = ref 1 in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | v :: rest ->
      stack := rest;
      let neigh = Csr.neighbours g v in
      Array.iter
        (fun c ->
          if not visited.(c) then begin
            visited.(c) <- true;
            incr count;
            stack := c :: !stack
          end)
        neigh
  done;
  !count

(* Host DFS above pushes neighbours in order and pops LIFO; the IR
   kernel does the same, so visit *counts* match exactly (orders also
   match, but we only check the count plus the visited bitmap). *)
let host_dfs_visited (g : Csr.t) source =
  let visited = Array.make g.Csr.n false in
  let stack = ref [ source ] in
  visited.(source) <- true;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | v :: rest ->
      stack := rest;
      Array.iter
        (fun c ->
          if not visited.(c) then begin
            visited.(c) <- true;
            stack := c :: !stack
          end)
        (Csr.neighbours g v)
  done;
  visited

let dfs ?(source = 0) (g : Csr.t) =
  let mem = fresh_mem g 0 in
  let off_r, cols_r, _ = layout_csr mem g in
  let vis_r = Memory.alloc mem ~name:"visited" ~words:g.Csr.n in
  let stack_r = Memory.alloc mem ~name:"stack" ~words:(g.Csr.n + g.Csr.m + 1) in
  Workload.alloc_guard mem;
  Memory.set mem (vis_r.Memory.base + source) 1;
  Memory.set mem stack_r.Memory.base source;
  let bld = Builder.create ~name:"dfs" ~nparams:4 in
  let off_base, cols_base, vis_base, stack_base =
    match Builder.params bld with
    | [ a; b; c; d ] -> (a, b, c, d)
    | _ -> assert false
  in
  (* Manual outer while (sp > 0): its induction update is
     data-dependent, so this loop deliberately has no canonical
     indvar. *)
  let entry = Builder.current bld in
  let header = Builder.new_block bld in
  let body = Builder.new_block bld in
  let exit = Builder.new_block bld in
  Builder.jmp bld header;
  Builder.switch_to bld header;
  let sp = Builder.phi bld [ (entry, Ir.Imm 1) ] in
  let count = Builder.phi bld [ (entry, Ir.Imm 1) ] in
  let nonempty = Builder.cmp bld Ir.Gt sp (Ir.Imm 0) in
  Builder.br bld nonempty body exit;
  Builder.switch_to bld body;
  let spm1 = Builder.sub bld sp (Ir.Imm 1) in
  let vaddr = Builder.add bld stack_base spm1 in
  let v = Builder.load bld vaddr in
  let start, stop = row_bounds bld ~off_base v in
  let final =
    Builder.for_loop_acc bld ~from:start ~bound:(`Op stop)
      ~init:[ spm1; count ]
      (fun bld e iaccs ->
        let sp_i = Builder.nth_value bld ~what:"DFS stack accumulator" iaccs 0
        and cnt = Builder.nth_value bld ~what:"DFS count accumulator" iaccs 1 in
        let caddr = Builder.add bld cols_base e in
        let c = Builder.load bld caddr in
        let flag_addr = Builder.add bld vis_base c in
        let vis = Builder.load bld flag_addr in
        let unseen = Builder.cmp bld Ir.Eq vis (Ir.Imm 0) in
        Builder.if_then_acc bld ~cond:unseen ~init:[ sp_i; cnt ] (fun bld ->
            Builder.store bld ~addr:flag_addr ~value:(Ir.Imm 1);
            let slot = Builder.add bld stack_base sp_i in
            Builder.store bld ~addr:slot ~value:c;
            [ Builder.add bld sp_i (Ir.Imm 1); Builder.add bld cnt (Ir.Imm 1) ]))
  in
  let latch = Builder.current bld in
  Builder.jmp bld header;
  Builder.add_incoming bld ~block:header ~phi:sp
    (latch, Builder.nth_value bld ~what:"DFS final stack value" final 0);
  Builder.add_incoming bld ~block:header ~phi:count
    (latch, Builder.nth_value bld ~what:"DFS final count value" final 1);
  Builder.switch_to bld exit;
  Builder.ret bld (Some count);
  let func = Builder.finish bld in
  Verify.check_exn func;
  let host_count = host_dfs g source in
  let host_vis = host_dfs_visited g source in
  let verify mem ret =
    match ret with
    | Some v when v = host_count ->
      let ok = ref (Ok ()) in
      let stride = max 1 (g.Csr.n / 997) in
      let i = ref 0 in
      while !i < g.Csr.n do
        let got = Memory.get mem (vis_r.Memory.base + !i) <> 0 in
        if got <> host_vis.(!i) then
          ok := Error (Printf.sprintf "DFS visited[%d] mismatch" !i);
        i := !i + stride
      done;
      !ok
    | Some v -> Error (Printf.sprintf "DFS visited %d, expected %d" v host_count)
    | None -> Error "DFS returned no value"
  in
  {
    Workload.mem;
    func;
    args =
      [
        off_r.Memory.base; cols_r.Memory.base; vis_r.Memory.base;
        stack_r.Memory.base;
      ];
    verify;
  }

(* ------------------------------------------------------------------ *)
(* PageRank (pull, fixed point)                                         *)
(* ------------------------------------------------------------------ *)

let pr_scale = 1 lsl 12
let pr_alpha_num = 85 (* damping 0.85 in /100 fixed point *)

let host_pagerank (gt : Csr.t) (out_deg : int array) iters =
  let n = gt.Csr.n in
  let rank = Array.make n pr_scale in
  let contrib = Array.make n 0 in
  for _ = 1 to iters do
    for v = 0 to n - 1 do
      let d = if out_deg.(v) = 0 then 1 else out_deg.(v) in
      contrib.(v) <- rank.(v) / d
    done;
    for v = 0 to n - 1 do
      let acc = ref 0 in
      for e = gt.Csr.offsets.(v) to gt.Csr.offsets.(v + 1) - 1 do
        acc := !acc + contrib.(gt.Csr.cols.(e))
      done;
      rank.(v) <- ((100 - pr_alpha_num) * pr_scale / 100) + (pr_alpha_num * !acc / 100)
    done
  done;
  rank

let pagerank ?(iters = 2) (g : Csr.t) =
  (* Pull formulation runs over the transpose; contributions divide by
     the original out-degree. *)
  let gt = Csr.reverse g in
  let out_deg = Array.init g.Csr.n (fun v -> Csr.degree g v) in
  let mem = fresh_mem gt 0 in
  let off_r, cols_r, _ = layout_csr mem gt in
  let deg_r = Memory.alloc mem ~name:"deg" ~words:g.Csr.n in
  let rank_r = Memory.alloc mem ~name:"rank" ~words:g.Csr.n in
  let contrib_r = Memory.alloc mem ~name:"contrib" ~words:g.Csr.n in
  Workload.alloc_guard mem;
  Memory.blit_array mem deg_r out_deg;
  Memory.blit_array mem rank_r (Array.make g.Csr.n pr_scale);
  let bld = Builder.create ~name:"pagerank" ~nparams:7 in
  let off_base, cols_base, deg_base, rank_base, contrib_base, n_op, iters_op =
    match Builder.params bld with
    | [ a; b; c; d; e; f; g ] -> (a, b, c, d, e, f, g)
    | _ -> assert false
  in
  Builder.for_loop bld ~from:(Ir.Imm 0) ~bound:iters_op (fun bld _it ->
      (* contribution pass *)
      Builder.for_loop bld ~from:(Ir.Imm 0) ~bound:n_op (fun bld v ->
          let raddr = Builder.add bld rank_base v in
          let r = Builder.load bld raddr in
          let daddr = Builder.add bld deg_base v in
          let d = Builder.load bld daddr in
          let dz = Builder.cmp bld Ir.Eq d (Ir.Imm 0) in
          let dd = Builder.select bld dz (Ir.Imm 1) d in
          let c = Builder.div bld r dd in
          let caddr = Builder.add bld contrib_base v in
          Builder.store bld ~addr:caddr ~value:c);
      (* pull pass *)
      Builder.for_loop bld ~from:(Ir.Imm 0) ~bound:n_op (fun bld v ->
          let start, stop = row_bounds bld ~off_base v in
          let sums =
            Builder.for_loop_acc bld ~from:start ~bound:(`Op stop)
              ~init:[ Ir.Imm 0 ]
              (fun bld e iaccs ->
                let acc = List.hd iaccs in
                let caddr = Builder.add bld cols_base e in
                let c = Builder.load bld caddr in
                let kaddr = Builder.add bld contrib_base c in
                let k = Builder.load bld kaddr in
                [ Builder.add bld acc k ])
          in
          let acc = List.hd sums in
          let base_part = Ir.Imm ((100 - pr_alpha_num) * pr_scale / 100) in
          let scaled = Builder.mul bld acc (Ir.Imm pr_alpha_num) in
          let damped = Builder.div bld scaled (Ir.Imm 100) in
          let nr = Builder.add bld base_part damped in
          let raddr = Builder.add bld rank_base v in
          Builder.store bld ~addr:raddr ~value:nr));
  Builder.ret bld None;
  let func = Builder.finish bld in
  Verify.check_exn func;
  let host_rank = host_pagerank gt out_deg iters in
  let verify mem _ =
    let ok = ref (Ok ()) in
    let stride = max 1 (g.Csr.n / 997) in
    let v = ref 0 in
    while !v < g.Csr.n do
      let got = Memory.get mem (rank_r.Memory.base + !v) in
      if got <> host_rank.(!v) then
        ok :=
          Error
            (Printf.sprintf "PR rank[%d] = %d, expected %d" !v got host_rank.(!v));
      v := !v + stride
    done;
    !ok
  in
  {
    Workload.mem;
    func;
    args =
      [
        off_r.Memory.base; cols_r.Memory.base; deg_r.Memory.base;
        rank_r.Memory.base; contrib_r.Memory.base; g.Csr.n; iters;
      ];
    verify;
  }

(* ------------------------------------------------------------------ *)
(* SSSP (Bellman-Ford rounds)                                           *)
(* ------------------------------------------------------------------ *)

let sssp_inf = 1 lsl 40

let host_sssp (g : Csr.t) source rounds =
  let dist = Array.make g.Csr.n sssp_inf in
  dist.(source) <- 0;
  for _ = 1 to rounds do
    for v = 0 to g.Csr.n - 1 do
      let dv = dist.(v) in
      if dv < sssp_inf then
        for e = g.Csr.offsets.(v) to g.Csr.offsets.(v + 1) - 1 do
          let c = g.Csr.cols.(e) in
          let nd = dv + g.Csr.weights.(e) in
          if nd < dist.(c) then dist.(c) <- nd
        done
    done
  done;
  dist

let sssp ?(source = 0) ?(rounds = 2) (g : Csr.t) =
  let mem = fresh_mem g 0 in
  let off_r, cols_r, wts_r = layout_csr mem g in
  let dist_r = Memory.alloc mem ~name:"dist" ~words:g.Csr.n in
  Workload.alloc_guard mem;
  Memory.blit_array mem dist_r (Array.make g.Csr.n sssp_inf);
  Memory.set mem (dist_r.Memory.base + source) 0;
  let bld = Builder.create ~name:"sssp" ~nparams:6 in
  let off_base, cols_base, wts_base, dist_base, n_op, rounds_op =
    match Builder.params bld with
    | [ a; b; c; d; e; f ] -> (a, b, c, d, e, f)
    | _ -> assert false
  in
  Builder.for_loop bld ~from:(Ir.Imm 0) ~bound:rounds_op (fun bld _r ->
      Builder.for_loop bld ~from:(Ir.Imm 0) ~bound:n_op (fun bld v ->
          let dvaddr = Builder.add bld dist_base v in
          let dv = Builder.load bld dvaddr in
          let reached = Builder.cmp bld Ir.Lt dv (Ir.Imm sssp_inf) in
          ignore
            (Builder.if_then_acc bld ~cond:reached ~init:[] (fun bld ->
                 let start, stop = row_bounds bld ~off_base v in
                 Builder.for_loop bld ~from:start ~bound:stop (fun bld e ->
                     let caddr = Builder.add bld cols_base e in
                     let c = Builder.load bld caddr in
                     let waddr = Builder.add bld wts_base e in
                     let w = Builder.load bld waddr in
                     let dcaddr = Builder.add bld dist_base c in
                     let dc = Builder.load bld dcaddr in
                     let nd = Builder.add bld dv w in
                     let better = Builder.cmp bld Ir.Lt nd dc in
                     ignore
                       (Builder.if_then_acc bld ~cond:better ~init:[]
                          (fun bld ->
                            Builder.store bld ~addr:dcaddr ~value:nd;
                            [])));
                 []))));
  Builder.ret bld None;
  let func = Builder.finish bld in
  Verify.check_exn func;
  let host_dist = host_sssp g source rounds in
  let verify mem _ =
    let ok = ref (Ok ()) in
    let stride = max 1 (g.Csr.n / 997) in
    let v = ref 0 in
    while !v < g.Csr.n do
      let got = Memory.get mem (dist_r.Memory.base + !v) in
      if got <> host_dist.(!v) then
        ok :=
          Error
            (Printf.sprintf "SSSP dist[%d] = %d, expected %d" !v got
               host_dist.(!v));
      v := !v + stride
    done;
    !ok
  in
  {
    Workload.mem;
    func;
    args =
      [
        off_r.Memory.base; cols_r.Memory.base; wts_r.Memory.base;
        dist_r.Memory.base; g.Csr.n; rounds;
      ];
    verify;
  }

(* ------------------------------------------------------------------ *)
(* Betweenness centrality (single source, fixed point)                  *)
(* ------------------------------------------------------------------ *)

let bc_inf = 1 lsl 40
let bc_scale = 1 lsl 10

let host_bc_forward (g : Csr.t) source max_rounds =
  let depth = Array.make g.Csr.n bc_inf in
  let sigma = Array.make g.Csr.n 0 in
  depth.(source) <- 0;
  sigma.(source) <- 1;
  for lvl = 0 to max_rounds - 1 do
    for v = 0 to g.Csr.n - 1 do
      if depth.(v) = lvl then
        for e = g.Csr.offsets.(v) to g.Csr.offsets.(v + 1) - 1 do
          let c = g.Csr.cols.(e) in
          if depth.(c) = bc_inf then depth.(c) <- lvl + 1;
          if depth.(c) = lvl + 1 then sigma.(c) <- sigma.(c) + sigma.(v)
        done
    done
  done;
  (depth, sigma)

let bc ?(source = 0) ?(max_rounds = 12) (g : Csr.t) =
  let mem = fresh_mem g 0 in
  let off_r, cols_r, _ = layout_csr mem g in
  let depth_r = Memory.alloc mem ~name:"depth" ~words:g.Csr.n in
  let sigma_r = Memory.alloc mem ~name:"sigma" ~words:g.Csr.n in
  let delta_r = Memory.alloc mem ~name:"delta" ~words:g.Csr.n in
  Workload.alloc_guard mem;
  Memory.blit_array mem depth_r (Array.make g.Csr.n bc_inf);
  Memory.set mem (depth_r.Memory.base + source) 0;
  Memory.set mem (sigma_r.Memory.base + source) 1;
  let bld = Builder.create ~name:"bc" ~nparams:7 in
  let off_base, cols_base, depth_base, sigma_base, delta_base, n_op, rounds_op =
    match Builder.params bld with
    | [ a; b; c; d; e; f; g ] -> (a, b, c, d, e, f, g)
    | _ -> assert false
  in
  (* Forward: level-synchronous shortest-path DAG construction. *)
  Builder.for_loop bld ~from:(Ir.Imm 0) ~bound:rounds_op (fun bld lvl ->
      Builder.for_loop bld ~from:(Ir.Imm 0) ~bound:n_op (fun bld v ->
          let daddr = Builder.add bld depth_base v in
          let dv = Builder.load bld daddr in
          let at_lvl = Builder.cmp bld Ir.Eq dv lvl in
          ignore
            (Builder.if_then_acc bld ~cond:at_lvl ~init:[] (fun bld ->
                 let start, stop = row_bounds bld ~off_base v in
                 let svaddr = Builder.add bld sigma_base v in
                 let sv = Builder.load bld svaddr in
                 let lvl1 = Builder.add bld lvl (Ir.Imm 1) in
                 Builder.for_loop bld ~from:start ~bound:stop (fun bld e ->
                     let caddr = Builder.add bld cols_base e in
                     let c = Builder.load bld caddr in
                     let dcaddr = Builder.add bld depth_base c in
                     let dc = Builder.load bld dcaddr in
                     let fresh = Builder.cmp bld Ir.Eq dc (Ir.Imm bc_inf) in
                     ignore
                       (Builder.if_then_acc bld ~cond:fresh ~init:[]
                          (fun bld ->
                            Builder.store bld ~addr:dcaddr ~value:lvl1;
                            []));
                     let dc2 = Builder.load bld dcaddr in
                     let child = Builder.cmp bld Ir.Eq dc2 lvl1 in
                     ignore
                       (Builder.if_then_acc bld ~cond:child ~init:[]
                          (fun bld ->
                            let scaddr = Builder.add bld sigma_base c in
                            let sc = Builder.load bld scaddr in
                            let ns = Builder.add bld sc sv in
                            Builder.store bld ~addr:scaddr ~value:ns;
                            [])));
                 []))));
  (* Backward: dependency accumulation, descending levels. *)
  Builder.for_loop bld ~from:(Ir.Imm 0) ~bound:rounds_op (fun bld r ->
      let rm = Builder.sub bld rounds_op (Ir.Imm 1) in
      let lvl = Builder.sub bld rm r in
      Builder.for_loop bld ~from:(Ir.Imm 0) ~bound:n_op (fun bld v ->
          let daddr = Builder.add bld depth_base v in
          let dv = Builder.load bld daddr in
          let at_lvl = Builder.cmp bld Ir.Eq dv lvl in
          ignore
            (Builder.if_then_acc bld ~cond:at_lvl ~init:[] (fun bld ->
                 let start, stop = row_bounds bld ~off_base v in
                 let svaddr = Builder.add bld sigma_base v in
                 let sv = Builder.load bld svaddr in
                 let lvl1 = Builder.add bld lvl (Ir.Imm 1) in
                 let sums =
                   Builder.for_loop_acc bld ~from:start ~bound:(`Op stop)
                     ~init:[ Ir.Imm 0 ]
                     (fun bld e iaccs ->
                       let acc = List.hd iaccs in
                       let caddr = Builder.add bld cols_base e in
                       let c = Builder.load bld caddr in
                       let dcaddr = Builder.add bld depth_base c in
                       let dc = Builder.load bld dcaddr in
                       let child = Builder.cmp bld Ir.Eq dc lvl1 in
                       Builder.if_then_acc bld ~cond:child ~init:[ acc ]
                         (fun bld ->
                           let scaddr = Builder.add bld sigma_base c in
                           let sc = Builder.load bld scaddr in
                           let dltaddr = Builder.add bld delta_base c in
                           let dlt = Builder.load bld dltaddr in
                           let num = Builder.add bld (Ir.Imm bc_scale) dlt in
                           let prod = Builder.mul bld sv num in
                           let scz = Builder.cmp bld Ir.Eq sc (Ir.Imm 0) in
                           let scd = Builder.select bld scz (Ir.Imm 1) sc in
                           let share = Builder.div bld prod scd in
                           [ Builder.add bld acc share ]))
                 in
                 let dvaddr = Builder.add bld delta_base v in
                 Builder.store bld ~addr:dvaddr ~value:(List.hd sums);
                 []))));
  Builder.ret bld None;
  let func = Builder.finish bld in
  Verify.check_exn func;
  let host_depth, host_sigma = host_bc_forward g source max_rounds in
  let verify mem _ =
    let ok = ref (Ok ()) in
    let stride = max 1 (g.Csr.n / 997) in
    let v = ref 0 in
    while !v < g.Csr.n do
      let gd = Memory.get mem (depth_r.Memory.base + !v) in
      let gs = Memory.get mem (sigma_r.Memory.base + !v) in
      if gd <> host_depth.(!v) then
        ok := Error (Printf.sprintf "BC depth[%d] = %d, expected %d" !v gd host_depth.(!v))
      else if gs <> host_sigma.(!v) then
        ok := Error (Printf.sprintf "BC sigma[%d] = %d, expected %d" !v gs host_sigma.(!v))
      else begin
        let dlt = Memory.get mem (delta_r.Memory.base + !v) in
        if dlt < 0 then ok := Error (Printf.sprintf "BC delta[%d] negative" !v)
      end;
      v := !v + stride
    done;
    !ok
  in
  {
    Workload.mem;
    func;
    args =
      [
        off_r.Memory.base; cols_r.Memory.base; depth_r.Memory.base;
        sigma_r.Memory.base; delta_r.Memory.base; g.Csr.n; max_rounds;
      ];
    verify;
  }
