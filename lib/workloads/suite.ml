module Csr = Aptget_graph.Csr
module Datasets = Aptget_graph.Datasets
module Generate = Aptget_graph.Generate

let bfs ~name ~graph ~input =
  Workload.make ~name ~app:"BFS" ~input
    ~description:"Searches a target vertex given a start node in a graph"
    ~nested:true
    (fun () -> Graph_kernels.bfs (graph ()))

let dfs ~name ~graph ~input =
  Workload.make ~name ~app:"DFS" ~input
    ~description:"Depth-first traversal given a start node" ~nested:true
    (fun () -> Graph_kernels.dfs (graph ()))

let pr ~name ~graph ~input =
  Workload.make ~name ~app:"PR" ~input
    ~description:"Computes ranking of web-pages" ~nested:true
    (fun () -> Graph_kernels.pagerank (graph ()))

let bc ~name ~graph ~input =
  Workload.make ~name ~app:"BC" ~input
    ~description:"Centrality via shortest-path counting" ~nested:true
    (fun () -> Graph_kernels.bc (graph ()))

let sssp ~name ~graph ~input =
  Workload.make ~name ~app:"SSSP" ~input
    ~description:"Shortest path to all vertices from a source" ~nested:true
    (fun () -> Graph_kernels.sssp (graph ()))

let dataset short =
  match Datasets.find short with
  | Some s -> s
  | None -> invalid_arg ("Suite: unknown dataset " ^ short)

let sym_dataset short () = Csr.symmetrize (Datasets.build (dataset short))
let synth ~nodes ~degree () = Datasets.synthetic ~nodes ~degree ()

let g500_graph ?(scale = 15) ?(edge_factor = 10) () =
  Csr.symmetrize (Generate.rmat ~seed:97 ~scale ~edge_factor)

let default =
  [
    bfs ~name:"BFS-LBE" ~graph:(sym_dataset "LBE") ~input:"loc-Brightkite";
    bfs ~name:"BFS-80K8" ~graph:(synth ~nodes:80_000 ~degree:8) ~input:"80K-d8";
    dfs ~name:"DFS-P2P" ~graph:(sym_dataset "P2P") ~input:"p2p-Gnutella31";
    pr ~name:"PR-WG" ~graph:(sym_dataset "WG") ~input:"web-Google";
    bc ~name:"BC-50K8" ~graph:(synth ~nodes:50_000 ~degree:8) ~input:"50K-d8";
    sssp ~name:"SSSP-40K8"
      ~graph:(fun () ->
        Generate.random_weights ~seed:5 (synth ~nodes:40_000 ~degree:8 ()))
      ~input:"40K-d8";
    Is.workload ~params:Is.class_b ~name:"IS-B" ();
    Is.workload ~params:Is.class_c ~name:"IS-C" ();
    Cg.workload ~name:"CG" ();
    Randacc.workload ~name:"randAcc" ();
    Hashjoin.workload ~params:Hashjoin.hj2_params ~name:"HJ2-NPO" ();
    Hashjoin.workload
      ~params:{ Hashjoin.hj2_params with Hashjoin.algo = Hashjoin.Npo_st }
      ~name:"HJ2-NPOst" ();
    Hashjoin.workload ~params:Hashjoin.hj8_params ~name:"HJ8-NPO" ();
    Hashjoin.workload
      ~params:{ Hashjoin.hj8_params with Hashjoin.algo = Hashjoin.Npo_st }
      ~name:"HJ8-NPOst" ();
    Workload.make ~name:"Graph500" ~app:"Graph500" ~input:"rmat-s15-ef10"
      ~description:"Breadth-first search on an undirected RMAT graph"
      ~nested:true
      (fun () -> Graph_kernels.bfs (g500_graph ()));
  ]

let nested = List.filter (fun w -> w.Workload.nested) default

let train_test =
  [
    ( bfs ~name:"BFS-train-LBE" ~graph:(sym_dataset "LBE") ~input:"loc-Brightkite",
      bfs ~name:"BFS-test-80K8" ~graph:(synth ~nodes:80_000 ~degree:8)
        ~input:"80K-d8" );
    ( dfs ~name:"DFS-train-P2P" ~graph:(sym_dataset "P2P") ~input:"p2p-Gnutella31",
      dfs ~name:"DFS-test-60K4" ~graph:(synth ~nodes:60_000 ~degree:4)
        ~input:"60K-d4" );
    ( pr ~name:"PR-train-WG" ~graph:(sym_dataset "WG") ~input:"web-Google",
      pr ~name:"PR-test-WS" ~graph:(sym_dataset "WS") ~input:"web-Stanford" );
    ( sssp ~name:"SSSP-train-40K8"
        ~graph:(fun () ->
          Generate.random_weights ~seed:5 (synth ~nodes:40_000 ~degree:8 ()))
        ~input:"40K-d8",
      sssp ~name:"SSSP-test-60K6"
        ~graph:(fun () ->
          Generate.random_weights ~seed:6
            (Datasets.synthetic ~seed:51 ~nodes:60_000 ~degree:6 ()))
        ~input:"60K-d6" );
    ( Hashjoin.workload ~params:Hashjoin.hj8_params ~name:"HJ8-train" (),
      Hashjoin.workload
        ~params:{ Hashjoin.hj8_params with Hashjoin.seed = 77 }
        ~name:"HJ8-test" () );
  ]

(* Workloads reachable by name but deliberately outside [default], so
   every experiment (and BENCH file) keyed off the main suite stays
   byte-identical. *)
let extended =
  default
  @ [
      Phased.workload ~name:"phased" ();
      Btree.workload ~name:"btree" ();
      Spmv.workload ~name:"spmv" ();
      Thrash.workload ~name:"thrash" ();
    ]

let find name =
  let k = String.lowercase_ascii name in
  List.find_opt (fun w -> String.lowercase_ascii w.Workload.name = k) extended

let micro ~inner ~complexity =
  Micro.workload
    ~params:{ Micro.default_params with Micro.inner; complexity }
    ~name:(Printf.sprintf "micro-i%d-c%d" inner complexity)
    ()
