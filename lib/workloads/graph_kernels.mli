(** CRONO-style graph kernels expressed in the repo IR (Table 3).

    Each kernel traverses a CSR graph laid out in simulated memory; the
    neighbour loops are the nested indirect patterns the paper targets.
    Verification mirrors the kernel host-side with identical integer
    arithmetic and compares results. *)

val layout_csr :
  Aptget_mem.Memory.t ->
  Aptget_graph.Csr.t ->
  Aptget_mem.Memory.region * Aptget_mem.Memory.region * Aptget_mem.Memory.region
(** Allocate and fill (offsets, cols, weights) regions. *)

val row_bounds :
  Builder.t -> off_base:Ir.operand -> Ir.operand -> Ir.operand * Ir.operand
(** Emit the CSR row-bound loads [offsets[v]], [offsets[v+1]]. *)

val bfs : ?source:int -> Aptget_graph.Csr.t -> Workload.instance
(** Frontier-queue BFS. Returns (kernel return = number of visited
    vertices); verifies the visited count and the distance array
    against a host BFS. Delinquent load: [visited[cols[e]]]. *)

val dfs : ?source:int -> Aptget_graph.Csr.t -> Workload.instance
(** Iterative stack DFS marking reachable vertices; verifies the
    visit count. Its outer (stack) loop has a data-dependent induction
    update, so only inner-site prefetching applies — the paper's DFS
    behaves the same way (Fig. 10). *)

val pagerank : ?iters:int -> Aptget_graph.Csr.t -> Workload.instance
(** Pull-based fixed-point PageRank over the transposed graph;
    verifies all rank cells against a host mirror. Delinquent load:
    [contrib[cols[e]]]. *)

val sssp : ?source:int -> ?rounds:int -> Aptget_graph.Csr.t -> Workload.instance
(** Bellman-Ford rounds; verifies the distance array against a host
    mirror with identical relaxation order. Delinquent load:
    [dist[cols[e]]]. *)

val bc : ?source:int -> ?max_rounds:int -> Aptget_graph.Csr.t -> Workload.instance
(** Betweenness-centrality (Brandes, single source): level-synchronous
    forward phase computing depths and shortest-path counts, then a
    backward accumulation in fixed point. Verifies depth and sigma
    against a host BFS mirror. *)
