module Memory = Aptget_mem.Memory
module Rng = Aptget_util.Rng
module Csr = Aptget_graph.Csr

type params = {
  rows : int;
  nnz_per_row : int;
  iterations : int;
  seed : int;
}

let default_params = { rows = 262_144; nnz_per_row = 4; iterations = 1; seed = 23 }

let matrix_of p =
  let rng = Rng.create p.seed in
  let edges = Array.make (p.rows * p.nnz_per_row) (0, 0) in
  let vals = Array.make (p.rows * p.nnz_per_row) 0 in
  let k = ref 0 in
  for r = 0 to p.rows - 1 do
    for _ = 1 to p.nnz_per_row do
      edges.(!k) <- (r, Rng.int rng p.rows);
      vals.(!k) <- 1 + Rng.int rng 7;
      incr k
    done
  done;
  Csr.of_edges ~weights:vals ~n:p.rows edges

let host_cg (m : Csr.t) iterations =
  let n = m.Csr.n in
  let x = Array.init n (fun i -> (i land 15) + 1) in
  let q = Array.make n 0 in
  for _ = 1 to iterations do
    for r = 0 to n - 1 do
      let acc = ref 0 in
      for e = m.Csr.offsets.(r) to m.Csr.offsets.(r + 1) - 1 do
        acc := !acc + (m.Csr.weights.(e) * x.(m.Csr.cols.(e)))
      done;
      q.(r) <- !acc
    done;
    (* x <- x + q/16 : the CG vector-update step, stream-shaped. *)
    for r = 0 to n - 1 do
      x.(r) <- x.(r) + (q.(r) / 16)
    done
  done;
  (x, q)

let build p =
  let m = matrix_of p in
  let mem =
    Memory.create
      ~capacity_words:((3 * m.Csr.m) + (4 * p.rows) + 65536)
      ()
  in
  let off_r = Memory.alloc mem ~name:"offsets" ~words:(p.rows + 1) in
  let cols_r = Memory.alloc mem ~name:"cols" ~words:m.Csr.m in
  let vals_r = Memory.alloc mem ~name:"vals" ~words:m.Csr.m in
  let x_r = Memory.alloc mem ~name:"x" ~words:p.rows in
  let q_r = Memory.alloc mem ~name:"q" ~words:p.rows in
  Workload.alloc_guard mem;
  Memory.blit_array mem off_r m.Csr.offsets;
  Memory.blit_array mem cols_r m.Csr.cols;
  Memory.blit_array mem vals_r m.Csr.weights;
  Memory.blit_array mem x_r (Array.init p.rows (fun i -> (i land 15) + 1));
  let bld = Builder.create ~name:"cg" ~nparams:7 in
  let off_b, cols_b, vals_b, x_b, q_b, n_op, iters_op =
    match Builder.params bld with
    | [ a; b; c; d; e; f; g ] -> (a, b, c, d, e, f, g)
    | _ -> assert false
  in
  Builder.for_loop bld ~from:(Ir.Imm 0) ~bound:iters_op (fun bld _it ->
      Builder.for_loop bld ~from:(Ir.Imm 0) ~bound:n_op (fun bld r ->
          let start, stop = Graph_kernels.row_bounds bld ~off_base:off_b r in
          let sums =
            Builder.for_loop_acc bld ~from:start ~bound:(`Op stop)
              ~init:[ Ir.Imm 0 ]
              (fun bld e iaccs ->
                let acc = List.hd iaccs in
                let caddr = Builder.add bld cols_b e in
                let c = Builder.load bld caddr in
                let vaddr = Builder.add bld vals_b e in
                let a = Builder.load bld vaddr in
                let xaddr = Builder.add bld x_b c in
                let xv = Builder.load bld xaddr in
                let prod = Builder.mul bld a xv in
                [ Builder.add bld acc prod ])
          in
          let qaddr = Builder.add bld q_b r in
          Builder.store bld ~addr:qaddr ~value:(List.hd sums));
      Builder.for_loop bld ~from:(Ir.Imm 0) ~bound:n_op (fun bld r ->
          let qaddr = Builder.add bld q_b r in
          let qv = Builder.load bld qaddr in
          let upd = Builder.div bld qv (Ir.Imm 16) in
          let xaddr = Builder.add bld x_b r in
          let xv = Builder.load bld xaddr in
          let nx = Builder.add bld xv upd in
          Builder.store bld ~addr:xaddr ~value:nx));
  Builder.ret bld None;
  let func = Builder.finish bld in
  Verify.check_exn func;
  let host_x, host_q = host_cg m p.iterations in
  let verify mem _ =
    let ok = ref (Ok ()) in
    let stride = max 1 (p.rows / 997) in
    let r = ref 0 in
    while !r < p.rows do
      let gx = Memory.get mem (x_r.Memory.base + !r) in
      let gq = Memory.get mem (q_r.Memory.base + !r) in
      if gx <> host_x.(!r) then
        ok := Error (Printf.sprintf "CG x[%d] = %d, expected %d" !r gx host_x.(!r))
      else if gq <> host_q.(!r) then
        ok := Error (Printf.sprintf "CG q[%d] = %d, expected %d" !r gq host_q.(!r));
      r := !r + stride
    done;
    !ok
  in
  {
    Workload.mem;
    func;
    args =
      [
        off_r.Memory.base; cols_r.Memory.base; vals_r.Memory.base;
        x_r.Memory.base; q_r.Memory.base; p.rows; p.iterations;
      ];
    verify;
  }

let workload ?(params = default_params) ~name () =
  Workload.make ~name ~app:"CG"
    ~input:(Printf.sprintf "%dKx%d" (params.rows / 1024) params.nnz_per_row)
    ~description:"Sparse matrix multiplications" ~nested:true
    (fun () -> build params)
