module Memory = Aptget_mem.Memory

(* Streaming cache-thrasher: repeated stride-8 (one load per line)
   sweeps over an array larger than the shared LLC. Solo it is almost
   pure bandwidth — the hardware stride prefetcher covers it — but as a
   co-runner its fills continuously evict every tenant's LLC lines,
   and inclusion then wipes their private L1/L2 copies too. This is
   the adversarial cache-pressure source for the contention
   experiments. *)

type params = {
  words : int;  (** swept array; should exceed the LLC *)
  passes : int;
}

(* 512 Ki words = 4 MiB, twice the default 2 MiB LLC; 16 passes keeps
   the thrasher live (in block-dispatch count) for the full run of the
   default co-tenants. *)
let default_params = { words = 1 lsl 19; passes = 16 }

let build p =
  if p.words <= 0 || p.passes <= 0 then
    invalid_arg "Thrash.build: sizes must be positive";
  let mem = Memory.create ~capacity_words:(p.words + 65_536) () in
  let arr_r = Memory.alloc mem ~name:"stream" ~words:p.words in
  Workload.alloc_guard mem;
  let arr = Array.init p.words (fun i -> (i * 40_503) land 0xFFFF) in
  Memory.blit_array mem arr_r arr;
  let stride = Memory.words_per_line in
  (* params: arr_base, words, passes *)
  let bld = Builder.create ~name:"thrash" ~nparams:3 in
  let a_b, words_op, passes_op =
    match Builder.params bld with
    | [ a; b; c ] -> (a, b, c)
    | _ -> assert false
  in
  let final =
    Builder.for_loop_acc bld ~from:(Ir.Imm 0) ~bound:(`Op passes_op)
      ~init:[ Ir.Imm 0 ]
      (fun bld _pass accs ->
        let acc = Builder.nth_value bld ~what:"thrash checksum" accs 0 in
        let swept =
          Builder.for_loop_acc bld ~from:(Ir.Imm 0) ~bound:(`Op words_op)
            ~step:stride ~init:[ acc ]
            (fun bld i iaccs ->
              let s = Builder.nth_value bld ~what:"thrash checksum" iaccs 0 in
              let addr = Builder.add bld a_b i in
              let v = Builder.load bld addr in
              [ Builder.add bld s v ])
        in
        [ Builder.nth_value bld ~what:"thrash checksum" swept 0 ])
  in
  Builder.ret bld (Some (Builder.nth_value bld ~what:"thrash checksum" final 0));
  let func = Builder.finish bld in
  Verify.check_exn func;
  let per_pass = ref 0 in
  let i = ref 0 in
  while !i < p.words do
    per_pass := !per_pass + arr.(!i);
    i := !i + stride
  done;
  {
    Workload.mem;
    func;
    args = [ arr_r.Memory.base; p.words; p.passes ];
    verify = Workload.expect_ret (p.passes * !per_pass);
  }

let workload ?(params = default_params) ~name () =
  Workload.make ~name ~app:"Thrash"
    ~input:
      (Printf.sprintf "%dMiBx%d" (params.words * 8 / 1024 / 1024) params.passes)
    ~description:"Streaming LLC-thrashing co-runner" ~nested:true
    (fun () -> build params)
