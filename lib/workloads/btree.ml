module Memory = Aptget_mem.Memory
module Rng = Aptget_util.Rng

(* Pointer-chasing B-tree index lookup (ROADMAP item 5's adversarial
   shape): each query descends a fixed number of levels, and every hop
   loads a child *pointer* whose value decides the next node's
   address. The chain is data-dependent — no stride for the hardware
   prefetcher, no induction-derived address for APT-GET's pass — which
   is exactly what makes it a good co-runner victim: its working set
   lives or dies by what survives in the shared LLC. *)

(* 7 separator keys + 1 pad in the first line, 8 child pointers in the
   second: one node = two cache lines. *)
let keys_per_node = 7
let fanout = 8
let node_words = 16
let child_off = 8

(* Keys are spaced 2 apart so odd query keys miss and even ones hit. *)
let key_scale = 2

type params = { levels : int; queries : int; seed : int }

let default_params = { levels = 4; queries = 65_536; seed = 11 }

let pow b e =
  let rec go acc e = if e = 0 then acc else go (acc * b) (e - 1) in
  go 1 e

let build p =
  if p.levels < 1 then invalid_arg "Btree.build: levels < 1";
  let n_leaves = pow fanout p.levels in
  (* Internal nodes: levels 0 .. levels-1 (8^d nodes at depth d);
     leaves sit at depth [levels]. *)
  let n_internal = (n_leaves - 1) / (fanout - 1) in
  let n_nodes = n_internal + n_leaves in
  let rng = Rng.create p.seed in
  (* Physical placement is a random permutation of node slots, so the
     descent genuinely chases pointers across the region instead of
     walking level-contiguous storage. *)
  let slot = Array.init n_nodes (fun i -> i) in
  for i = n_nodes - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let tmp = slot.(i) in
    slot.(i) <- slot.(j);
    slot.(j) <- tmp
  done;
  let nodes = Array.make (n_nodes * node_words) 0 in
  let mem =
    Memory.create
      ~capacity_words:((n_nodes * node_words) + p.queries + 65_536)
      ()
  in
  let queries_r = Memory.alloc mem ~name:"Q" ~words:p.queries in
  let nodes_r = Memory.alloc mem ~name:"tree" ~words:(n_nodes * node_words) in
  Workload.alloc_guard mem;
  let addr_of_slot s = nodes_r.Memory.base + (slot.(s) * node_words) in
  (* Logical numbering: internal node at depth d, index j within the
     level, covers leaves [j * span, (j+1) * span) with
     span = fanout^(levels - d). Leaf j holds keys
     (j*K + t) * key_scale. *)
  let level_base = Array.make (p.levels + 1) 0 in
  for d = 1 to p.levels do
    level_base.(d) <- level_base.(d - 1) + pow fanout (d - 1)
  done;
  for d = 0 to p.levels - 1 do
    let span = pow fanout (p.levels - d) in
    let child_span = span / fanout in
    for j = 0 to pow fanout d - 1 do
      let s = level_base.(d) + j in
      let base = slot.(s) * node_words in
      let first_leaf = j * span in
      for i = 1 to keys_per_node do
        nodes.((base + i) - 1) <-
          (first_leaf + (i * child_span)) * keys_per_node * key_scale
      done;
      for c = 0 to fanout - 1 do
        let child_logical =
          if d = p.levels - 1 then level_base.(p.levels) + first_leaf + c
          else level_base.(d + 1) + (j * fanout) + c
        in
        nodes.(base + child_off + c) <- addr_of_slot child_logical
      done
    done
  done;
  for j = 0 to n_leaves - 1 do
    let base = slot.(level_base.(p.levels) + j) * node_words in
    for t = 0 to keys_per_node - 1 do
      nodes.(base + t) <- ((j * keys_per_node) + t) * key_scale
    done
  done;
  let key_space = n_leaves * keys_per_node * key_scale in
  let queries = Array.init p.queries (fun _ -> Rng.int rng key_space) in
  Memory.blit_array mem queries_r queries;
  Memory.blit_array mem nodes_r nodes;
  let root_addr = addr_of_slot 0 in
  let bld = Builder.create ~name:"btree" ~nparams:3 in
  let q_b, root_op, nq_op =
    match Builder.params bld with
    | [ a; b; c ] -> (a, b, c)
    | _ -> assert false
  in
  let final =
    Builder.for_loop_acc bld ~from:(Ir.Imm 0) ~bound:(`Op nq_op)
      ~init:[ Ir.Imm 0 ]
      (fun bld i accs ->
        let found = Builder.nth_value bld ~what:"btree found" accs 0 in
        let qaddr = Builder.add bld q_b i in
        let q = Builder.load bld qaddr in
        (* Fixed-depth descent, unrolled per level: branchless child
           selection (count separators <= q), then the pointer chase. *)
        let node = ref root_op in
        for _ = 1 to p.levels do
          let c =
            Builder.for_loop_acc bld ~from:(Ir.Imm 0)
              ~bound:(`Op (Ir.Imm keys_per_node))
              ~init:[ Ir.Imm 0 ]
              (fun bld t caccs ->
                let cnt =
                  Builder.nth_value bld ~what:"btree child index" caccs 0
                in
                let kaddr = Builder.add bld !node t in
                let k = Builder.load bld kaddr in
                let le = Builder.cmp bld Ir.Le k q in
                [ Builder.add bld cnt le ])
          in
          let cidx = Builder.nth_value bld ~what:"btree child index" c 0 in
          let coff = Builder.add bld cidx (Ir.Imm child_off) in
          let caddr = Builder.add bld !node coff in
          node := Builder.load bld caddr
        done;
        let hits =
          Builder.for_loop_acc bld ~from:(Ir.Imm 0)
            ~bound:(`Op (Ir.Imm keys_per_node))
            ~init:[ found ]
            (fun bld t haccs ->
              let acc = Builder.nth_value bld ~what:"btree hits" haccs 0 in
              let kaddr = Builder.add bld !node t in
              let k = Builder.load bld kaddr in
              let eq = Builder.cmp bld Ir.Eq k q in
              [ Builder.add bld acc eq ])
        in
        [ Builder.nth_value bld ~what:"btree hits" hits 0 ])
  in
  Builder.ret bld (Some (Builder.nth_value bld ~what:"btree found" final 0));
  let func = Builder.finish bld in
  Verify.check_exn func;
  (* Host descent over the same arrays. *)
  let host_found = ref 0 in
  Array.iter
    (fun q ->
      let node = ref root_addr in
      for _ = 1 to p.levels do
        let base = !node - nodes_r.Memory.base in
        let c = ref 0 in
        for t = 0 to keys_per_node - 1 do
          if nodes.(base + t) <= q then incr c
        done;
        node := nodes.(base + child_off + !c)
      done;
      let base = !node - nodes_r.Memory.base in
      for t = 0 to keys_per_node - 1 do
        if nodes.(base + t) = q then incr host_found
      done)
    queries;
  {
    Workload.mem;
    func;
    args = [ queries_r.Memory.base; root_addr; p.queries ];
    verify = Workload.expect_ret !host_found;
  }

let workload ?(params = default_params) ~name () =
  Workload.make ~name ~app:"BTree"
    ~input:
      (Printf.sprintf "L%d-%dq" params.levels params.queries)
    ~description:"Pointer-chasing B-tree index lookups" ~nested:true
    (fun () -> build params)
