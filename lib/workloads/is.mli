(** NAS Integer Sort (bucket sort of random integers, Table 3).

    Two indirect phases per iteration, as in NAS IS's counting sort:
    key counting ([count[keys[i]]++], delinquent read-modify-write) and
    key ranking ([rank[i] = cursor[keys[i]]++]). The count/cursor
    arrays exceed the LLC, so both indirect loads miss. *)

type params = {
  n_keys : int;
  key_range : int;  (** counting-array length in words *)
  iterations : int;
  seed : int;
}

val default_params : params
(** = [class_b]. *)

val class_b : params
(** 393216 keys over a 524288-word range (4 MiB > LLC), 1 iteration
    (NAS Class B scaled: the paper runs 25 iterations of 2^25 keys). *)

val class_c : params
(** 786432 keys over a 1 Mi-word range (8 MiB), the Class C scaling. *)

val build : params -> Workload.instance
val workload : ?params:params -> name:string -> unit -> Workload.t
