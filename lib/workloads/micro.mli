(** The microbenchmark of Listing 1 (§2.1).

    A two-deep loop nest performing the indirect access [T[B[idx]]]
    with a tunable work function:

    {v
    for (j = 0; j < outer; j++)
      for (i = 0; i < inner; i++) {
        idx = j * inner + i;
        v = T[B[idx]];          // indirect, delinquent
        work(complexity, v);    // IC of the loop
      }
    v}

    [B] holds uniformly random indices into [T]; [T] is sized well
    beyond the LLC so the indirect load misses. [INNER] and
    [COMPLEXITY] are the paper's two knobs (§2.2, Fig. 1–2). *)

type params = {
  total : int;       (** outer * inner elements (B length) *)
  inner : int;       (** inner-loop trip count *)
  complexity : int;  (** cycles of work per element *)
  table_words : int; (** size of T *)
  seed : int;
}

val default_params : params
(** total 262144, inner 256, complexity 0, T = 4 Mi words (32 MiB). *)

val accumulate_expected : params -> int
(** The checksum the kernel should return (sum of the low bit of every
    loaded element, as consumed by the work function). *)

val build : params -> Workload.instance

val workload : ?params:params -> name:string -> unit -> Workload.t

val delinquent_load_pc : Workload.instance -> int
(** Layout PC of the indirect [T] load (for targeted experiments). *)
