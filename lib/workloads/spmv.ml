module Memory = Aptget_mem.Memory
module Rng = Aptget_util.Rng

(* Sparse matrix-vector product over CSR: y[r] = sum vals[e] * x[cols[e]]
   for e in [rowptr[r], rowptr[r+1]). The x[cols[e]] gather is the
   classic delinquent indirect load APT-GET targets (same shape as
   RandomAccess and BFS), but reached through a nested loop whose inner
   trip count varies per row — the Eq. 2 site decision matters here. *)

type params = {
  rows : int;
  nnz_per_row : int; (** mean; actual row lengths vary around it *)
  x_words : int;     (** dense-vector length; sized past the LLC *)
  seed : int;
}

let default_params =
  { rows = 16_384; nnz_per_row = 8; x_words = 1 lsl 20; seed = 13 }

let build p =
  if p.rows <= 0 || p.nnz_per_row <= 0 || p.x_words <= 0 then
    invalid_arg "Spmv.build: sizes must be positive";
  let rng = Rng.create p.seed in
  (* Row lengths in [1, 2*mean): same total work every run, irregular
     inner trip counts. *)
  let row_len =
    Array.init p.rows (fun _ -> 1 + Rng.int rng ((2 * p.nnz_per_row) - 1))
  in
  let nnz = Array.fold_left ( + ) 0 row_len in
  let rowptr = Array.make (p.rows + 1) 0 in
  for r = 0 to p.rows - 1 do
    rowptr.(r + 1) <- rowptr.(r) + row_len.(r)
  done;
  let cols = Array.init nnz (fun _ -> Rng.int rng p.x_words) in
  let vals = Array.init nnz (fun _ -> 1 + Rng.int rng 15) in
  let x = Array.init p.x_words (fun i -> (i * 2654435761) land 1023) in
  let capacity = p.rows + 1 + (2 * nnz) + p.x_words + p.rows + 65_536 in
  let mem = Memory.create ~capacity_words:capacity () in
  let rowptr_r = Memory.alloc mem ~name:"rowptr" ~words:(p.rows + 1) in
  let cols_r = Memory.alloc mem ~name:"cols" ~words:nnz in
  let vals_r = Memory.alloc mem ~name:"vals" ~words:nnz in
  let x_r = Memory.alloc mem ~name:"x" ~words:p.x_words in
  let y_r = Memory.alloc mem ~name:"y" ~words:p.rows in
  Workload.alloc_guard mem;
  Memory.blit_array mem rowptr_r rowptr;
  Memory.blit_array mem cols_r cols;
  Memory.blit_array mem vals_r vals;
  Memory.blit_array mem x_r x;
  (* params: rowptr_base, cols_base, vals_base, x_base, y_base, rows *)
  let bld = Builder.create ~name:"spmv" ~nparams:6 in
  let rp_b, c_b, v_b, x_b, y_b, rows_op =
    match Builder.params bld with
    | [ a; b; c; d; e; f ] -> (a, b, c, d, e, f)
    | _ -> assert false
  in
  let final =
    Builder.for_loop_acc bld ~from:(Ir.Imm 0) ~bound:(`Op rows_op)
      ~init:[ Ir.Imm 0 ]
      (fun bld r accs ->
        let total = Builder.nth_value bld ~what:"spmv total" accs 0 in
        let rp_addr = Builder.add bld rp_b r in
        let start = Builder.load bld rp_addr in
        let rp_next = Builder.add bld rp_addr (Ir.Imm 1) in
        let stop = Builder.load bld rp_next in
        let row =
          Builder.for_loop_acc bld ~from:start ~bound:(`Op stop)
            ~init:[ Ir.Imm 0 ]
            (fun bld e raccs ->
              let sum = Builder.nth_value bld ~what:"spmv row sum" raccs 0 in
              let c_addr = Builder.add bld c_b e in
              let c = Builder.load bld c_addr in
              let x_addr = Builder.add bld x_b c in
              let xv = Builder.load bld x_addr in
              let v_addr = Builder.add bld v_b e in
              let v = Builder.load bld v_addr in
              let prod = Builder.mul bld v xv in
              [ Builder.add bld sum prod ])
        in
        let sum = Builder.nth_value bld ~what:"spmv row sum" row 0 in
        let y_addr = Builder.add bld y_b r in
        Builder.store bld ~addr:y_addr ~value:sum;
        [ Builder.add bld total sum ])
  in
  Builder.ret bld (Some (Builder.nth_value bld ~what:"spmv total" final 0));
  let func = Builder.finish bld in
  Verify.check_exn func;
  let y_host = Array.make p.rows 0 in
  let total = ref 0 in
  for r = 0 to p.rows - 1 do
    let sum = ref 0 in
    for e = rowptr.(r) to rowptr.(r + 1) - 1 do
      sum := !sum + (vals.(e) * x.(cols.(e)))
    done;
    y_host.(r) <- !sum;
    total := !total + !sum
  done;
  let expected_total = !total in
  let stride = max 1 (p.rows / 997) in
  let verify m ret =
    match Workload.expect_ret expected_total m ret with
    | Error _ as e -> e
    | Ok () ->
      let ok = ref (Ok ()) in
      let r = ref 0 in
      while !r < p.rows do
        let got = Memory.get m (y_r.Memory.base + !r) in
        if got <> y_host.(!r) then
          ok :=
            Error
              (Printf.sprintf "spmv: y[%d] = %d, expected %d" !r got
                 y_host.(!r));
        r := !r + stride
      done;
      !ok
  in
  {
    Workload.mem;
    func;
    args =
      [
        rowptr_r.Memory.base;
        cols_r.Memory.base;
        vals_r.Memory.base;
        x_r.Memory.base;
        y_r.Memory.base;
        p.rows;
      ];
    verify;
  }

let workload ?(params = default_params) ~name () =
  Workload.make ~name ~app:"SpMV"
    ~input:
      (Printf.sprintf "%dx%d-nnz%d" params.rows params.x_words
         params.nnz_per_row)
    ~description:"CSR sparse matrix-vector product with indirect x gather"
    ~nested:true
    (fun () -> build params)
