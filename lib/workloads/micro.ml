module Memory = Aptget_mem.Memory
module Rng = Aptget_util.Rng
module Aj = Aptget_passes.Aj

type params = {
  total : int;
  inner : int;
  complexity : int;
  table_words : int;
  seed : int;
}

let default_params =
  {
    total = 262_144;
    inner = 256;
    complexity = 0;
    table_words = 4 * 1024 * 1024;
    seed = 7;
  }

(* T.(i) is deterministic with a known low bit, so the kernel's
   checksum is predictable without running it. *)
let table_value i = (i * 2654435761) land 0x3FFFFFFF

let indices p =
  let rng = Rng.create p.seed in
  Array.init p.total (fun _ -> Rng.int rng p.table_words)

let accumulate_expected p =
  Array.fold_left (fun acc i -> acc + (table_value i land 1)) 0 (indices p)

let build p =
  if p.total mod p.inner <> 0 then
    invalid_arg "Micro.build: total must be divisible by inner";
  let outer = p.total / p.inner in
  let mem = Memory.create ~capacity_words:(p.table_words + p.total + 65536) () in
  let b_region = Memory.alloc mem ~name:"B" ~words:p.total in
  let t_region = Memory.alloc mem ~name:"T" ~words:p.table_words in
  Workload.alloc_guard mem;
  Memory.blit_array mem b_region (indices p);
  Memory.blit_array mem t_region (Array.init p.table_words table_value);
  (* params: b_base, t_base, outer, inner, complexity *)
  let bld = Builder.create ~name:"micro" ~nparams:5 in
  let b_base, t_base, outer_op, inner_op, complexity =
    match Builder.params bld with
    | [ a; b; c; d; e ] -> (a, b, c, d, e)
    | _ -> assert false
  in
  let final =
    Builder.for_loop_acc bld ~from:(Ir.Imm 0) ~bound:(`Op outer_op)
      ~init:[ Ir.Imm 0 ]
      (fun bld j accs ->
        let acc_o = List.hd accs in
        Builder.for_loop_acc bld ~from:(Ir.Imm 0) ~bound:(`Op inner_op)
          ~init:[ acc_o ]
          (fun bld i iaccs ->
            let acc = List.hd iaccs in
            let row = Builder.mul bld j inner_op in
            let idx = Builder.add bld row i in
            let b_addr = Builder.add bld b_base idx in
            let t_idx = Builder.load bld b_addr in
            let t_addr = Builder.add bld t_base t_idx in
            let v = Builder.load bld t_addr in
            let bit = Builder.band bld v (Ir.Imm 1) in
            Builder.work bld complexity;
            [ Builder.add bld acc bit ]))
  in
  let checksum = List.hd final in
  Builder.ret bld (Some checksum);
  let func = Builder.finish bld in
  Verify.check_exn func;
  let expected = accumulate_expected p in
  {
    Workload.mem;
    func;
    args =
      [
        b_region.Memory.base;
        t_region.Memory.base;
        outer;
        p.inner;
        p.complexity;
      ];
    verify = Workload.expect_ret expected;
  }

let workload ?(params = default_params) ~name () =
  Workload.make ~name ~app:"micro" ~input:(Printf.sprintf "inner=%d" params.inner)
    ~description:"Listing 1 indirect-access microbenchmark" ~nested:true
    (fun () -> build params)

let delinquent_load_pc (inst : Workload.instance) =
  match Aj.candidate_loads inst.Workload.func with
  | pc :: _ -> pc
  | [] -> invalid_arg "Micro.delinquent_load_pc: no indirect load found"
