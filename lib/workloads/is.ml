module Memory = Aptget_mem.Memory
module Rng = Aptget_util.Rng

type params = {
  n_keys : int;
  key_range : int;
  iterations : int;
  seed : int;
}

let class_b =
  { n_keys = 393_216; key_range = 524_288; iterations = 1; seed = 11 }

let class_c =
  { n_keys = 786_432; key_range = 1_048_576; iterations = 1; seed = 13 }

let default_params = class_b

let keys_of p =
  let rng = Rng.create p.seed in
  Array.init p.n_keys (fun _ -> Rng.int rng p.key_range)

let host_counts p keys =
  let count = Array.make p.key_range 0 in
  Array.iter (fun k -> count.(k) <- count.(k) + 1) keys;
  count

let build p =
  let keys = keys_of p in
  let mem =
    Memory.create ~capacity_words:((2 * p.key_range) + (2 * p.n_keys) + 65536) ()
  in
  let keys_r = Memory.alloc mem ~name:"keys" ~words:p.n_keys in
  let count_r = Memory.alloc mem ~name:"count" ~words:p.key_range in
  let cursor_r = Memory.alloc mem ~name:"cursor" ~words:p.key_range in
  let rank_r = Memory.alloc mem ~name:"rank" ~words:p.n_keys in
  Workload.alloc_guard mem;
  Memory.blit_array mem keys_r keys;
  (* params: keys, count, cursor, rank, n_keys, iterations *)
  let bld = Builder.create ~name:"is" ~nparams:6 in
  let keys_b, count_b, cursor_b, rank_b, n_op, iters_op =
    match Builder.params bld with
    | [ a; b; c; d; e; f ] -> (a, b, c, d, e, f)
    | _ -> assert false
  in
  Builder.for_loop bld ~from:(Ir.Imm 0) ~bound:iters_op (fun bld _it ->
      (* counting phase *)
      Builder.for_loop bld ~from:(Ir.Imm 0) ~bound:n_op (fun bld i ->
          let kaddr = Builder.add bld keys_b i in
          let k = Builder.load bld kaddr in
          let caddr = Builder.add bld count_b k in
          let c = Builder.load bld caddr in
          let c1 = Builder.add bld c (Ir.Imm 1) in
          Builder.store bld ~addr:caddr ~value:c1);
      (* ranking phase: cursor starts at the running count *)
      Builder.for_loop bld ~from:(Ir.Imm 0) ~bound:n_op (fun bld i ->
          let kaddr = Builder.add bld keys_b i in
          let k = Builder.load bld kaddr in
          let caddr = Builder.add bld cursor_b k in
          let c = Builder.load bld caddr in
          let c1 = Builder.add bld c (Ir.Imm 1) in
          Builder.store bld ~addr:caddr ~value:c1;
          let raddr = Builder.add bld rank_b i in
          Builder.store bld ~addr:raddr ~value:c));
  Builder.ret bld None;
  let func = Builder.finish bld in
  Verify.check_exn func;
  let host_count = host_counts p keys in
  let verify mem _ =
    let ok = ref (Ok ()) in
    let stride = max 1 (p.key_range / 997) in
    let k = ref 0 in
    while !k < p.key_range do
      let got = Memory.get mem (count_r.Memory.base + !k) in
      let expect = host_count.(!k) * p.iterations in
      if got <> expect then
        ok := Error (Printf.sprintf "IS count[%d] = %d, expected %d" !k got expect);
      k := !k + stride
    done;
    (* rank of key i within its bucket accumulates across iterations
       too; spot-check the final cursor totals instead. *)
    !ok
  in
  {
    Workload.mem;
    func;
    args =
      [
        keys_r.Memory.base; count_r.Memory.base; cursor_r.Memory.base;
        rank_r.Memory.base; p.n_keys; p.iterations;
      ];
    verify;
  }

let workload ?(params = default_params) ~name () =
  Workload.make ~name ~app:"IS"
    ~input:(Printf.sprintf "%dK keys" (params.n_keys / 1024))
    ~description:"Bucket sorting of random integers" ~nested:false
    (fun () -> build params)
