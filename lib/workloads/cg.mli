(** NAS Conjugate Gradient kernel (Table 3): sparse matrix-vector
    products over a random matrix in CSR, whose column gathers
    ([x[cols[e]]]) are the irregular indirect accesses, plus the
    CG vector updates (sequential streams the hardware prefetcher
    covers). Fixed-point arithmetic; verified against a host mirror. *)

type params = {
  rows : int;
  nnz_per_row : int;
  iterations : int;
  seed : int;
}

val default_params : params
(** 262144 rows x 4 nnz, 1 iteration: the x vector alone is 2 MiB. *)

val build : params -> Workload.instance
val workload : ?params:params -> name:string -> unit -> Workload.t
