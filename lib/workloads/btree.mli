(** Pointer-chasing B-tree index lookup.

    A fixed-depth 8-ary search tree whose nodes are scattered through
    the region by a random permutation: every level of the descent
    loads a child pointer whose value is the next node's address. The
    chain defeats the stride prefetcher and APT-GET's
    induction-derived injection alike, so the kernel's throughput is
    set by how much of the tree survives in the shared LLC — the
    contention-victim role in the co-run experiments. *)

type params = {
  levels : int;   (** internal levels above the leaves; >= 1 *)
  queries : int;
  seed : int;
}

val default_params : params
(** 4 levels (4096 leaves, ~4700 nodes, ~600 KiB of tree — larger than
    L2, inside the LLC when running solo), 65536 queries. *)

val build : params -> Workload.instance
val workload : ?params:params -> name:string -> unit -> Workload.t
