module Memory = Aptget_mem.Memory
module Rng = Aptget_util.Rng

type kind = Hot | Cold

let kind_to_string = function Hot -> "hot" | Cold -> "cold"

type params = {
  inner : int;
  complexity : int;
  hot_words : int;
  table_words : int;
  seed : int;
  phases : (kind * int) list;
}

(* Defaults sized so the two phases sit on opposite sides of the cache
   hierarchy: Hot indices stay inside [hot_words] (L1-resident), Cold
   indices roam the whole table (several times the LLC). The cold lead
   phase is what a whole-program profile mostly sees stalling, so its
   hints are live during the hot phases that dominate the element
   count — the aging-profile scenario the online loop exists for. *)
let default_params =
  {
    inner = 256;
    complexity = 0;
    hot_words = 4_096;
    table_words = 2 * 1024 * 1024;
    seed = 11;
    phases = (Cold, 16_384) :: List.init 22 (fun _ -> (Hot, 32_768));
  }

let total p = List.fold_left (fun acc (_, n) -> acc + n) 0 p.phases

let check p =
  if p.inner <= 0 then invalid_arg "Phased: inner must be positive";
  if p.hot_words <= 0 || p.hot_words > p.table_words then
    invalid_arg "Phased: hot_words must be in [1, table_words]";
  if p.phases = [] then invalid_arg "Phased: phases must be non-empty";
  List.iter
    (fun (_, n) ->
      if n <= 0 || n mod p.inner <> 0 then
        invalid_arg
          "Phased: every phase length must be a positive multiple of inner")
    p.phases

let table_value i = (i * 2654435761) land 0x3FFFFFFF

(* One RNG stream across all phases, in order: segment views index into
   the very same B contents the fused run sees. *)
let indices p =
  let rng = Rng.create p.seed in
  let b = Array.make (total p) 0 in
  let pos = ref 0 in
  List.iter
    (fun (kind, n) ->
      let bound = match kind with Hot -> p.hot_words | Cold -> p.table_words in
      for _ = 1 to n do
        b.(!pos) <- Rng.int rng bound;
        incr pos
      done)
    p.phases;
  b

let expected_slice b ~offset ~count =
  let acc = ref 0 in
  for i = offset to offset + count - 1 do
    acc := !acc + (table_value b.(i) land 1)
  done;
  !acc

(* Same kernel shape (and therefore same PCs and structural
   fingerprints) for the fused program and every segment view: only the
   arguments select which window of B a run walks. *)
let build_view p ~offset ~count () =
  check p;
  let n = total p in
  if offset < 0 || count <= 0 || offset + count > n then
    invalid_arg "Phased.build_view: window out of range";
  if count mod p.inner <> 0 then
    invalid_arg "Phased.build_view: count must be a multiple of inner";
  let mem = Memory.create ~capacity_words:(p.table_words + n + 65536) () in
  let b_region = Memory.alloc mem ~name:"B" ~words:n in
  let t_region = Memory.alloc mem ~name:"T" ~words:p.table_words in
  Workload.alloc_guard mem;
  let b = indices p in
  Memory.blit_array mem b_region b;
  Memory.blit_array mem t_region (Array.init p.table_words table_value);
  (* params: b_base, t_base, outer, inner, complexity *)
  let bld = Builder.create ~name:"phased" ~nparams:5 in
  let b_base, t_base, outer_op, inner_op, complexity =
    match Builder.params bld with
    | [ a; b; c; d; e ] -> (a, b, c, d, e)
    | _ -> assert false
  in
  let final =
    Builder.for_loop_acc bld ~from:(Ir.Imm 0) ~bound:(`Op outer_op)
      ~init:[ Ir.Imm 0 ]
      (fun bld j accs ->
        let acc_o = List.hd accs in
        Builder.for_loop_acc bld ~from:(Ir.Imm 0) ~bound:(`Op inner_op)
          ~init:[ acc_o ]
          (fun bld i iaccs ->
            let acc = List.hd iaccs in
            let row = Builder.mul bld j inner_op in
            let idx = Builder.add bld row i in
            let b_addr = Builder.add bld b_base idx in
            let t_idx = Builder.load bld b_addr in
            let t_addr = Builder.add bld t_base t_idx in
            let v = Builder.load bld t_addr in
            let bit = Builder.band bld v (Ir.Imm 1) in
            Builder.work bld complexity;
            [ Builder.add bld acc bit ]))
  in
  let checksum = List.hd final in
  Builder.ret bld (Some checksum);
  let func = Builder.finish bld in
  Verify.check_exn func;
  let expected = expected_slice b ~offset ~count in
  {
    Workload.mem;
    func;
    args =
      [
        b_region.Memory.base + offset;
        t_region.Memory.base;
        count / p.inner;
        p.inner;
        p.complexity;
      ];
    verify = Workload.expect_ret expected;
  }

let phase_tag phases =
  String.concat "" (List.map (fun (k, _) -> match k with Hot -> "H" | Cold -> "C") phases)

let workload ?(params = default_params) ~name () =
  check params;
  Workload.make ~name ~app:"phased"
    ~input:(Printf.sprintf "phases=%s" (phase_tag params.phases))
    ~description:"Indirect-access kernel with alternating working-set phases"
    ~nested:true
    (build_view params ~offset:0 ~count:(total params))

let segments ?(params = default_params) ~name () =
  check params;
  let _, segs =
    List.fold_left
      (fun (offset, acc) (kind, count) ->
        let i = List.length acc + 1 in
        let w =
          Workload.make
            ~name:(Printf.sprintf "%s@%d" name i)
            ~app:"phased" ~input:(kind_to_string kind)
            ~description:
              (Printf.sprintf "phase %d (%s) of %s" i (kind_to_string kind) name)
            ~nested:true
            (build_view params ~offset ~count)
        in
        (offset + count, (kind, w) :: acc))
      (0, []) params.phases
  in
  List.rev segs
