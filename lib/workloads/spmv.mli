(** CSR sparse matrix-vector product: y[r] = Σ vals[e] * x[cols[e]].

    The x[cols[e]] gather is the indirect delinquent load APT-GET's
    pass transforms, reached through a nested loop with irregular
    per-row trip counts, so the Eq. 2 inner/outer site decision is
    exercised. The dense vector is sized past the LLC. *)

type params = {
  rows : int;
  nnz_per_row : int; (** mean; actual row lengths vary in [1, 2*mean) *)
  x_words : int;     (** dense-vector length; sized past the LLC *)
  seed : int;
}

val default_params : params
(** 16384 rows, mean 8 nnz/row, 1 Mi-word (8 MiB) dense vector. *)

val build : params -> Workload.instance
val workload : ?params:params -> name:string -> unit -> Workload.t
