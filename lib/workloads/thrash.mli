(** Streaming cache-thrasher co-runner.

    Repeated one-load-per-line sweeps over an array larger than the
    shared LLC: harmless solo (the stride prefetcher covers it), but
    co-run it evicts other tenants' LLC lines continuously, and
    inclusion invalidates their private copies — the adversarial
    cache-pressure source for the contention experiments. *)

type params = {
  words : int;  (** swept array; should exceed the LLC *)
  passes : int;
}

val default_params : params
(** 4 MiB array (2x the default LLC), 16 passes. *)

val build : params -> Workload.instance
val workload : ?params:params -> name:string -> unit -> Workload.t
