(** Common shape of a benchmark workload.

    A workload is a deterministic recipe: building it lays out fresh
    data in a fresh simulated memory and produces the IR kernel plus
    its arguments. Every measured run (baseline, Ainsworth & Jones,
    APT-GET, distance sweeps, ...) rebuilds the instance so runs never
    see each other's side effects. *)

type instance = {
  mem : Aptget_mem.Memory.t;
  func : Ir.func;
  args : int list;
  verify : Aptget_mem.Memory.t -> int option -> (unit, string) result;
      (** semantic check on (memory, return value) after a run *)
}

type t = {
  name : string;        (** e.g. "BFS-LBE" *)
  app : string;         (** paper application name, e.g. "BFS" *)
  input : string;       (** dataset tag, e.g. "LBE" or "80K-d8" *)
  description : string; (** Table 3 description *)
  nested : bool;        (** has a loop nest eligible for outer-site *)
  build : unit -> instance;
}

val make :
  name:string ->
  app:string ->
  input:string ->
  description:string ->
  nested:bool ->
  (unit -> instance) ->
  t

val alloc_guard : Aptget_mem.Memory.t -> unit
(** Allocate a trailing guard region so prefetch-slice clones that
    overshoot an array by a few elements still read in-bounds zeros
    (mirrors reading adjacent pages on real hardware). Call last,
    after all workload allocations. *)

val no_verify : Aptget_mem.Memory.t -> int option -> (unit, string) result
(** Always [Ok ()]. *)

val expect_ret : int -> Aptget_mem.Memory.t -> int option -> (unit, string) result
(** Check the kernel returned exactly this value. *)
