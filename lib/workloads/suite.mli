(** The benchmark suite of the paper's evaluation (§4.2, Table 3).

    Ten applications over their inputs: CRONO graph kernels (BFS, DFS,
    PR, BC, SSSP) on SNAP stand-ins and synthetic graphs, NAS IS and
    CG, HPCC RandomAccess, the two hash-join variants, and Graph500
    BFS on an RMAT graph. *)

val bfs : name:string -> graph:(unit -> Aptget_graph.Csr.t) -> input:string -> Workload.t
val dfs : name:string -> graph:(unit -> Aptget_graph.Csr.t) -> input:string -> Workload.t
val pr : name:string -> graph:(unit -> Aptget_graph.Csr.t) -> input:string -> Workload.t
val bc : name:string -> graph:(unit -> Aptget_graph.Csr.t) -> input:string -> Workload.t
val sssp : name:string -> graph:(unit -> Aptget_graph.Csr.t) -> input:string -> Workload.t

val default : Workload.t list
(** The main evaluation suite (Fig. 5–9, 11): one representative input
    per application, 13 entries. *)

val nested : Workload.t list
(** The subset with loop nests, used for the injection-site study
    (Fig. 10). *)

val train_test : (Workload.t * Workload.t) list
(** (train-input, test-input) pairs per application for the input
    -sensitivity study (Fig. 12): same app, different dataset. *)

val extended : Workload.t list
(** [default] plus workloads reachable by name but excluded from the
    main evaluation (currently the {!Phased} phase-change kernel), so
    existing experiment outputs stay byte-identical. *)

val find : string -> Workload.t option
(** Look up an [extended] entry by name (case-insensitive). *)

val micro : inner:int -> complexity:int -> Workload.t
(** The §2 microbenchmark at a given trip count and work complexity. *)
