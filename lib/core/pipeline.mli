(** The end-to-end APT-GET pipeline (the paper's headline flow):

    {v
    build workload -> baseline run
    build workload -> profiling run (LBR + PEBS) -> hints
    build workload -> inject (APT-GET pass)      -> optimized run
    build workload -> inject (A&J static pass)   -> baseline competitor
    v}

    Every run gets a freshly built workload instance, so measured runs
    never see a previous run's memory side effects, and every run's
    semantic verifier is checked — a prefetch pass that breaks the
    program is reported, not silently timed. *)

type measurement = {
  workload : string;
  outcome : Aptget_machine.Machine.outcome;
  verified : (unit, string) result;
  injected : Aptget_passes.Inject.injected list;
  skipped : (int * string) list;
  wall_seconds : float;
      (** elapsed wall-clock seconds spent building + simulating,
          measured on the monotonic {!Aptget_util.Clock} *)
}

val verified_exn : measurement -> measurement
(** Raise [Failure] if the run's semantic verification failed. *)

val speedup : baseline:measurement -> measurement -> float
(** Cycle-count ratio (>1 = faster than baseline). *)

val instruction_overhead : baseline:measurement -> measurement -> float
(** Dynamic instruction ratio (Fig. 11). *)

val mpki_reduction : baseline:measurement -> measurement -> float
(** 1 - mpki/mpki_baseline (Fig. 7, higher is better). *)

val baseline : ?config:Aptget_machine.Machine.config -> Aptget_workloads.Workload.t -> measurement
(** Unmodified kernel. *)

val aj : ?config:Aptget_machine.Machine.config -> ?distance:int -> Aptget_workloads.Workload.t -> measurement
(** Ainsworth & Jones static injection, then run. *)

val profile :
  ?options:Aptget_profile.Profiler.options ->
  Aptget_workloads.Workload.t ->
  Aptget_profile.Profiler.t
(** The profiling run on a fresh instance. *)

val aptget :
  ?options:Aptget_profile.Profiler.options ->
  ?config:Aptget_machine.Machine.config ->
  ?cse:bool ->
  Aptget_workloads.Workload.t ->
  measurement * Aptget_profile.Profiler.t
(** Full pipeline: profile, inject hints, run. [cse] (default false)
    runs the local CSE cleanup after injection, as LLVM's scalar
    optimisations would. *)

val with_hints :
  ?config:Aptget_machine.Machine.config ->
  ?cse:bool ->
  hints:Aptget_passes.Aptget_pass.hint list ->
  Aptget_workloads.Workload.t ->
  measurement
(** Inject externally supplied hints (used by the distance/site
    studies and by cross-input evaluation, Fig. 8–10, 12). *)

(** {2 Robust pipeline}

    The plain entry points above raise on malformed input (bad IR after
    injection, a runaway kernel, a profiling failure). {!run_robust}
    instead degrades: every failure is converted into a structured
    {!degradation} (which stage, what went wrong, which fallback was
    taken) and the pipeline continues with the best remaining plan —
    ultimately the unmodified kernel. Used by the robustness ablation
    to ask how much profile corruption APT-GET absorbs before its
    speedups evaporate. *)

type degradation = {
  stage : string;
      (** "profile" | "hints" | "inject" | "verify-ir" | "run" |
          "semantic-verify" | "build" | "pipeline" *)
  cause : string;
  fallback : string;  (** the action taken instead *)
}

val degradation_to_string : degradation -> string

type robust = {
  r_workload : string;
  r_measurement : measurement option;
      (** [None] only when even the unmodified kernel failed to run *)
  r_profile : Aptget_profile.Profiler.t option;
  r_hints_used : Aptget_passes.Aptget_pass.hint list;
  r_hints_dropped : (Aptget_passes.Aptget_pass.hint * string) list;
      (** stale hints rejected by validation, with reasons *)
  r_degradations : degradation list;  (** in stage order *)
  r_profile_retried : bool;
      (** the profile was re-collected once with denser LBR sampling *)
}

val run_robust :
  ?options:Aptget_profile.Profiler.options ->
  ?config:Aptget_machine.Machine.config ->
  ?faults:Aptget_pmu.Faults.config ->
  ?hints:Aptget_passes.Aptget_pass.hint list ->
  Aptget_workloads.Workload.t ->
  robust
(** Full pipeline that never raises. [faults] (default
    {!Aptget_pmu.Faults.none}) injects PMU faults into the profiling
    run; with the default config the measured outcome is bit-identical
    to {!aptget}'s. Supplying [hints] skips profiling and exercises the
    stale-hint validation path (e.g. hints loaded leniently from a
    checked-in file). When profiling collects too few iteration
    samples, it is retried once with a 4x denser LBR period. *)

val force_distance :
  int -> Aptget_passes.Aptget_pass.hint list -> Aptget_passes.Aptget_pass.hint list
(** Override every hint's distance (static-distance competitors,
    Fig. 9). *)

val force_site :
  Aptget_passes.Inject.site ->
  Aptget_passes.Aptget_pass.hint list ->
  Aptget_passes.Aptget_pass.hint list
(** Override every hint's injection site (Fig. 10); forcing [Inner]
    also resets the sweep to 1. *)
