(** The end-to-end APT-GET pipeline (the paper's headline flow):

    {v
    build workload -> baseline run
    build workload -> profiling run (LBR + PEBS) -> hints
    build workload -> inject (APT-GET pass)      -> optimized run
    build workload -> inject (A&J static pass)   -> baseline competitor
    v}

    Every run gets a freshly built workload instance, so measured runs
    never see a previous run's memory side effects, and every run's
    semantic verifier is checked — a prefetch pass that breaks the
    program is reported, not silently timed. *)

type measurement = {
  workload : string;
  outcome : Aptget_machine.Machine.outcome;
  verified : (unit, string) result;
  injected : Aptget_passes.Inject.injected list;
  skipped : (int * string) list;
  wall_seconds : float;  (** CPU seconds spent building + simulating *)
}

val verified_exn : measurement -> measurement
(** Raise [Failure] if the run's semantic verification failed. *)

val speedup : baseline:measurement -> measurement -> float
(** Cycle-count ratio (>1 = faster than baseline). *)

val instruction_overhead : baseline:measurement -> measurement -> float
(** Dynamic instruction ratio (Fig. 11). *)

val mpki_reduction : baseline:measurement -> measurement -> float
(** 1 - mpki/mpki_baseline (Fig. 7, higher is better). *)

val baseline : ?config:Aptget_machine.Machine.config -> Aptget_workloads.Workload.t -> measurement
(** Unmodified kernel. *)

val aj : ?config:Aptget_machine.Machine.config -> ?distance:int -> Aptget_workloads.Workload.t -> measurement
(** Ainsworth & Jones static injection, then run. *)

val profile :
  ?options:Aptget_profile.Profiler.options ->
  Aptget_workloads.Workload.t ->
  Aptget_profile.Profiler.t
(** The profiling run on a fresh instance. *)

val aptget :
  ?options:Aptget_profile.Profiler.options ->
  ?config:Aptget_machine.Machine.config ->
  ?cse:bool ->
  Aptget_workloads.Workload.t ->
  measurement * Aptget_profile.Profiler.t
(** Full pipeline: profile, inject hints, run. [cse] (default false)
    runs the local CSE cleanup after injection, as LLVM's scalar
    optimisations would. *)

val with_hints :
  ?config:Aptget_machine.Machine.config ->
  ?cse:bool ->
  hints:Aptget_passes.Aptget_pass.hint list ->
  Aptget_workloads.Workload.t ->
  measurement
(** Inject externally supplied hints (used by the distance/site
    studies and by cross-input evaluation, Fig. 8–10, 12). *)

val force_distance :
  int -> Aptget_passes.Aptget_pass.hint list -> Aptget_passes.Aptget_pass.hint list
(** Override every hint's distance (static-distance competitors,
    Fig. 9). *)

val force_site :
  Aptget_passes.Inject.site ->
  Aptget_passes.Aptget_pass.hint list ->
  Aptget_passes.Aptget_pass.hint list
(** Override every hint's injection site (Fig. 10); forcing [Inner]
    also resets the sweep to 1. *)
