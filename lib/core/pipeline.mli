(** The end-to-end APT-GET pipeline (the paper's headline flow):

    {v
    build workload -> baseline run
    build workload -> profiling run (LBR + PEBS) -> hints
    build workload -> inject (APT-GET pass)      -> optimized run
    build workload -> inject (A&J static pass)   -> baseline competitor
    v}

    Every run gets a freshly built workload instance, so measured runs
    never see a previous run's memory side effects, and every run's
    semantic verifier is checked — a prefetch pass that breaks the
    program is reported, not silently timed. *)

type measurement = {
  workload : string;
  outcome : Aptget_machine.Machine.outcome;
  verified : (unit, string) result;
  injected : Aptget_passes.Inject.injected list;
  skipped : (int * string) list;
  wall_seconds : float;
      (** elapsed wall-clock seconds spent building + simulating,
          measured on the monotonic {!Aptget_util.Clock} *)
}

val verified_exn : measurement -> measurement
(** Raise [Failure] if the run's semantic verification failed. *)

val speedup : baseline:measurement -> measurement -> float
(** Cycle-count ratio (>1 = faster than baseline). *)

val instruction_overhead : baseline:measurement -> measurement -> float
(** Dynamic instruction ratio (Fig. 11). *)

val mpki_reduction : baseline:measurement -> measurement -> float
(** 1 - mpki/mpki_baseline (Fig. 7, higher is better). *)

val baseline : ?config:Aptget_machine.Machine.config -> Aptget_workloads.Workload.t -> measurement
(** Unmodified kernel. *)

val aj : ?config:Aptget_machine.Machine.config -> ?distance:int -> Aptget_workloads.Workload.t -> measurement
(** Ainsworth & Jones static injection, then run. *)

val profile :
  ?options:Aptget_profile.Profiler.options ->
  Aptget_workloads.Workload.t ->
  Aptget_profile.Profiler.t
(** The profiling run on a fresh instance. *)

val aptget :
  ?options:Aptget_profile.Profiler.options ->
  ?config:Aptget_machine.Machine.config ->
  ?cse:bool ->
  Aptget_workloads.Workload.t ->
  measurement * Aptget_profile.Profiler.t
(** Full pipeline: profile, inject hints, run. [cse] (default false)
    runs the local CSE cleanup after injection, as LLVM's scalar
    optimisations would. *)

val with_hints :
  ?config:Aptget_machine.Machine.config ->
  ?cse:bool ->
  ?veto:(Aptget_passes.Aptget_pass.hint -> string option) ->
  hints:Aptget_passes.Aptget_pass.hint list ->
  Aptget_workloads.Workload.t ->
  measurement
(** Inject externally supplied hints (used by the distance/site
    studies and by cross-input evaluation, Fig. 8–10, 12). [veto]
    (default: veto nothing) is forwarded to
    {!Aptget_passes.Aptget_pass.run}. *)

(** {2 Robust pipeline}

    The plain entry points above raise on malformed input (bad IR after
    injection, a runaway kernel, a profiling failure). {!run_robust}
    instead degrades: every failure is converted into a structured
    {!degradation} (which stage, what went wrong, which fallback was
    taken) and the pipeline continues with the best remaining plan —
    ultimately the unmodified kernel. Used by the robustness ablation
    to ask how much profile corruption APT-GET absorbs before its
    speedups evaporate. *)

type degradation = {
  stage : string;
      (** "profile" | "hints" | "inject" | "verify-ir" | "run" |
          "semantic-verify" | "build" | "pipeline" *)
  cause : string;
  fallback : string;  (** the action taken instead *)
}

val degradation_to_string : degradation -> string

type robust = {
  r_workload : string;
  r_measurement : measurement option;
      (** [None] only when even the unmodified kernel failed to run *)
  r_profile : Aptget_profile.Profiler.t option;
  r_hints_used : Aptget_passes.Aptget_pass.hint list;
  r_hints_dropped : (Aptget_passes.Aptget_pass.hint * string) list;
      (** stale hints rejected by validation, with reasons *)
  r_degradations : degradation list;  (** in stage order *)
  r_profile_retried : bool;
      (** the profile was re-collected once with denser LBR sampling *)
}

val run_robust :
  ?options:Aptget_profile.Profiler.options ->
  ?config:Aptget_machine.Machine.config ->
  ?faults:Aptget_pmu.Faults.config ->
  ?hints:Aptget_passes.Aptget_pass.hint list ->
  ?watchdog:Watchdog.config ->
  ?crash:Aptget_store.Crash.t ->
  Aptget_workloads.Workload.t ->
  robust
(** Full pipeline that never raises — with one deliberate exception:
    an armed [crash] plan that fires raises
    {!Aptget_store.Crash.Crashed} through every handler, modelling the
    process dying mid-run (a dead process cannot degrade). [faults]
    (default {!Aptget_pmu.Faults.none}) injects PMU faults into the
    profiling run; with the default config the measured outcome is
    bit-identical to {!aptget}'s. Supplying [hints] skips profiling and
    exercises the stale-hint validation path (e.g. hints loaded
    leniently from a checked-in file). When profiling collects too few
    iteration samples, it is retried once with a 4x denser LBR period.
    [watchdog] (default {!Watchdog.default}) deadlines each stage:
    profile and measure in simulated cycles, inject in kernel steps
    (hints processed); an expiry degrades that stage with the
    structured {!Watchdog.timeout_to_string} cause. *)

(** {2 Guarded pipeline}

    Stale-profile resilience: a hints document (possibly from an old
    profile of a since-changed program) is optionally remapped by
    structural fingerprint ({!Aptget_profile.Remap}), then measured
    against the freshly measured baseline, and {e admitted} only when
    its speedup clears a floor. A hint set that regresses is
    quarantined — persistently, when a {!Quarantine} store is supplied
    — and the run falls back to the static Ainsworth & Jones pass (if
    that clears the floor) or to the unmodified baseline. Subsequent
    runs recognise the quarantined set and skip its candidate
    simulation entirely. *)

type guard_config = {
  floor : float;
      (** minimum admissible speedup over baseline (default 0.98 —
          up to 2% regression tolerated as measurement slack) *)
  try_aj : bool;
      (** on rejection, try the static A&J pass before pinning to the
          baseline (default true) *)
}

val default_guard : guard_config

type guard_outcome =
  | Admitted  (** candidate met the floor; its measurement is final *)
  | Quarantined of { speedup : float; fallback : string }
      (** candidate measured below the floor this run; recorded (when a
          store was supplied) and replaced by [fallback] *)
  | Known_bad of { prior_speedup : float; fallback : string }
      (** the store already held this (workload, program, hints) key —
          no candidate simulation was spent *)

val guard_outcome_to_string : guard_outcome -> string

type guarded = {
  g_workload : string;
  g_program : int;
      (** structural program hash the quarantine entries are keyed by *)
  g_baseline : measurement;
  g_candidate : measurement option;
      (** the measured candidate; [None] when skipped as known-bad *)
  g_final : measurement;  (** the measurement the guard stands behind *)
  g_speedup : float;  (** [g_final] vs [g_baseline]; never below the
          floor except by simulator nondeterminism (there is none) *)
  g_outcome : guard_outcome;
  g_hints : Aptget_passes.Aptget_pass.hint list;
      (** the candidate hint set, post-remap *)
  g_remap : Aptget_profile.Remap.t option;
      (** remap decisions when remapping was requested *)
}

val run_guarded :
  ?config:Aptget_machine.Machine.config ->
  ?guard:guard_config ->
  ?quarantine:Quarantine.t ->
  ?remap:Aptget_profile.Remap.config ->
  ?watchdog:Watchdog.config ->
  ?crash:Aptget_store.Crash.t ->
  ?measure_cache:(variant:string -> (unit -> measurement) -> measurement) ->
  doc:Aptget_profile.Hints_file.doc ->
  Aptget_workloads.Workload.t ->
  guarded
(** Guarded run of [doc]'s hints on [w]. Supplying [remap] enables
    fingerprint remapping with that configuration; omitting it applies
    the document's hints as-is (the historical blind behaviour, but
    still guarded). [quarantine] both consults and records; omitting it
    makes every verdict run-local. Every simulator run is supervised by
    [watchdog]: a candidate that blows its measure budget is
    quarantined at 0.0x speedup (so later runs skip it), while a
    baseline or final fallback that does so raises
    {!Watchdog.Timed_out} — there is nothing left to stand behind. An
    armed [crash] plan raises {!Aptget_store.Crash.Crashed} when it
    fires.

    [measure_cache] (default: run everything) is a memoization seam
    around the deterministic simulator runs: it is called with a
    variant label (["guard-baseline"], ["guard-aj"],
    ["guard-candidate:<hints-key>"]) and a thunk, and may return a
    previously stored measurement instead of running the thunk. The
    serve daemon plugs a tenant-scoped {!Meas_cache} in here (the
    module dependency runs that way, Meas_cache on Pipeline, hence the
    callback). Exceptions from the thunk must propagate. The pinned
    baseline fallback is never routed through it, because its skip
    records embed the run-specific veto reason. *)

(** {2 Adaptive epoch}

    One supervised hinted run with concurrent re-sampling and periodic
    execution windows — the primitive the online re-optimization loop
    ({!Aptget_adapt}) drives once per program phase. The loop itself
    (drift scoring, hysteresis, the retune ladder) lives above core so
    it can reuse {!run_guarded} without a dependency cycle. *)

type epoch = {
  e_measurement : measurement;  (** the hinted run of this segment *)
  e_windows : Aptget_machine.Machine.window_report list;
      (** periodic counter-delta windows, in execution order; empty
          when windowing was off *)
  e_refit : Aptget_profile.Profiler.t option;
      (** incremental Eq. 1 re-fit from the concurrent sampler's
          observations of the {e rewritten} kernel ([None] when no
          sampler rode along or the analysis failed). Its hint PCs
          address the rewritten program: route them through the remap
          path ({!run_guarded} with [remap]) to reach a fresh build. *)
  e_hints_dropped : (Aptget_passes.Aptget_pass.hint * string) list;
      (** stale hints rejected before injection, with reasons *)
}

val run_adaptive :
  ?config:Aptget_machine.Machine.config ->
  ?watchdog:Watchdog.config ->
  ?crash:Aptget_store.Crash.t ->
  ?options:Aptget_profile.Profiler.options ->
  ?sampler:Aptget_pmu.Sampler.t ->
  ?window_cycles:int ->
  ?veto:(Aptget_passes.Aptget_pass.hint -> string option) ->
  hints:Aptget_passes.Aptget_pass.hint list ->
  Aptget_workloads.Workload.t ->
  epoch
(** Build a fresh instance, validate and inject [hints] (an empty or
    fully-stale list falls back to A&J static injection — the bottom
    rung of the degradation ladder, not an unprefetched run; a
    non-empty list fully suppressed by [veto] runs unmodified — how the
    loop's pinned-baseline plan holds a hint set without applying it),
    then
    execute under the watchdog's measure budget with [sampler] riding
    along (it is {!Aptget_pmu.Sampler.reset} first, keeping its fault
    model's accumulated state) and [window_cycles]-sized counter
    windows collected. Deterministic: same seed/config in, byte-same
    epoch out (modulo [wall_seconds]). Raises {!Watchdog.Timed_out}
    when the measure budget fires and {!Aptget_store.Crash.Crashed}
    when an armed crash plan does. *)

val force_distance :
  int -> Aptget_passes.Aptget_pass.hint list -> Aptget_passes.Aptget_pass.hint list
(** Override every hint's distance (static-distance competitors,
    Fig. 9). *)

val force_site :
  Aptget_passes.Inject.site ->
  Aptget_passes.Aptget_pass.hint list ->
  Aptget_passes.Aptget_pass.hint list
(** Override every hint's injection site (Fig. 10); forcing [Inner]
    also resets the sweep to 1. *)
