module Machine = Aptget_machine.Machine
module Profiler = Aptget_profile.Profiler
module Workload = Aptget_workloads.Workload
module Aj = Aptget_passes.Aj
module Aptget_pass = Aptget_passes.Aptget_pass
module Inject = Aptget_passes.Inject
module Faults = Aptget_pmu.Faults
module Clock = Aptget_util.Clock
module Crash = Aptget_store.Crash
module Trace = Aptget_obs.Trace
module Metrics = Aptget_obs.Metrics

type measurement = {
  workload : string;
  outcome : Machine.outcome;
  verified : (unit, string) result;
  injected : Inject.injected list;
  skipped : (int * string) list;
  wall_seconds : float;
}

let verified_exn m =
  match m.verified with
  | Ok () -> m
  | Error e -> failwith (Printf.sprintf "%s: verification failed: %s" m.workload e)

let speedup ~baseline m =
  float_of_int baseline.outcome.Machine.cycles
  /. float_of_int m.outcome.Machine.cycles

let instruction_overhead ~baseline m =
  float_of_int m.outcome.Machine.instructions
  /. float_of_int baseline.outcome.Machine.instructions

let mpki_reduction ~baseline m =
  let b = Machine.mpki baseline.outcome in
  if b = 0. then 0. else 1. -. (Machine.mpki m.outcome /. b)

let wall = Clock.wall

let run_transformed ?config (w : Workload.t) transform =
  Trace.with_span ~name:"pipeline.run" ~attrs:[ ("workload", w.Workload.name) ]
  @@ fun () ->
  let (outcome, verified, injected, skipped), wall_seconds =
    wall (fun () ->
        let inst =
          Trace.with_span ~name:"stage.build" (fun () -> w.Workload.build ())
        in
        let injected, skipped =
          Trace.with_span ~name:"stage.inject" (fun () -> transform inst)
        in
        Trace.with_span ~name:"stage.verify-ir" (fun () ->
            Verify.check_exn inst.Workload.func);
        let outcome =
          Trace.with_span ~name:"stage.measure" (fun () ->
              let o =
                Machine.execute ?config ~args:inst.Workload.args
                  ~mem:inst.Workload.mem inst.Workload.func
              in
              Trace.set_cycles o.Machine.cycles;
              o)
        in
        let verified =
          Trace.with_span ~name:"stage.semantic-verify" (fun () ->
              inst.Workload.verify inst.Workload.mem outcome.Machine.ret)
        in
        (outcome, verified, injected, skipped))
  in
  { workload = w.Workload.name; outcome; verified; injected; skipped; wall_seconds }

let baseline ?config w = run_transformed ?config w (fun _ -> ([], []))

let aj ?config ?distance w =
  run_transformed ?config w (fun inst ->
      let r = Aj.run ?distance inst.Workload.func in
      (r.Aj.injected, r.Aj.skipped))

let profile ?options (w : Workload.t) =
  Trace.with_span ~name:"pipeline.profile"
    ~attrs:[ ("workload", w.Workload.name) ]
  @@ fun () ->
  let inst =
    Trace.with_span ~name:"stage.build" (fun () -> w.Workload.build ())
  in
  Profiler.profile ?options ~args:inst.Workload.args ~mem:inst.Workload.mem
    inst.Workload.func

let with_hints ?config ?(cse = false) ?veto ~hints w =
  run_transformed ?config w (fun inst ->
      let r = Aptget_pass.run ?veto inst.Workload.func ~hints in
      if cse then ignore (Aptget_passes.Cse.run inst.Workload.func);
      (r.Aptget_pass.injected, r.Aptget_pass.skipped))

let aptget ?options ?config ?cse w =
  let prof = profile ?options w in
  (with_hints ?config ?cse ~hints:prof.Profiler.hints w, prof)

(* ------------------------------------------------------------------ *)
(* Robust pipeline: profile corruption, stale hints and verifier       *)
(* failures degrade the run instead of killing it.                     *)
(* ------------------------------------------------------------------ *)

type degradation = { stage : string; cause : string; fallback : string }

type robust = {
  r_workload : string;
  r_measurement : measurement option;
  r_profile : Profiler.t option;
  r_hints_used : Aptget_pass.hint list;
  r_hints_dropped : (Aptget_pass.hint * string) list;
  r_degradations : degradation list;
  r_profile_retried : bool;
}

let degradation_to_string d =
  Printf.sprintf "[%s] %s -> %s" d.stage d.cause d.fallback

(* The model needs >= 8 iteration observations (its min_samples); a
   profile where no in-loop delinquent load reached that — or where the
   LBR barely fired at all — is worth one denser retry. On real
   hardware the fix is a longer profiling window; for a fixed-length
   simulated run the equivalent signal boost is a denser LBR period. *)
let profile_too_thin (p : Profiler.t) =
  p.Profiler.lbr_snapshots < 2
  || List.exists
       (fun (lp : Profiler.load_profile) ->
         lp.Profiler.latch_pc >= 0
         && Array.length lp.Profiler.iteration_times < 8)
       p.Profiler.profiles

let run_robust ?(options = Profiler.default_options) ?config
    ?(faults = Faults.none) ?hints ?watchdog ?crash (w : Workload.t) =
  let degradations = ref [] in
  let add stage cause fallback =
    Metrics.incr ("robust.degradation." ^ stage);
    degradations := { stage; cause; fallback } :: !degradations
  in
  (* Watchdog expirations degrade with their structured cause; anything
     else keeps the exception printer's text. A simulated crash
     (Crash.Crashed) is never degraded — a dead process does not fall
     back, so every handler below re-raises it. *)
  let cause_of = function
    | Watchdog.Timed_out t -> Watchdog.timeout_to_string t
    | e -> Printexc.to_string e
  in
  let go () =
        let options = { options with Profiler.faults } in
        let try_profile opts =
          match
            Watchdog.run ?config:watchdog ?crash
              ~machine:opts.Profiler.machine Watchdog.Profile
              (fun capped ->
                profile ~options:{ opts with Profiler.machine = capped } w)
          with
          | p -> Some p
          | exception e when not (Crash.is_crashed e) ->
            add "profile" (cause_of e) "continuing without a fresh profile";
            None
        in
        (* 1. Profile (unless hints were supplied), retrying once with
           denser sampling when too few iteration samples came back. *)
        let prof, retried =
          match hints with
          | Some _ -> (None, false)
          | None -> (
            match try_profile options with
            | Some p when profile_too_thin p ->
              add "profile"
                (Printf.sprintf
                   "too few iteration samples (%d LBR snapshots, %d PEBS \
                    samples)"
                   p.Profiler.lbr_snapshots p.Profiler.pebs_samples)
                "retried profiling with a 4x denser LBR sampling period";
              let denser =
                {
                  options with
                  Profiler.lbr_period = max 1_000 (options.Profiler.lbr_period / 4);
                }
              in
              (match try_profile denser with
              | Some p2 -> (Some p2, true)
              | None -> (Some p, true))
            | p -> (p, false))
        in
        (* Per-load diagnostics from the profiler become report entries
           so every fallback/skip is visible with its cause. *)
        (match prof with
        | None -> ()
        | Some p ->
          List.iter
            (fun (lp : Profiler.load_profile) ->
              match lp.Profiler.status with
              | Profiler.Hinted -> ()
              | Profiler.Fallback why ->
                add "profile"
                  (Printf.sprintf "load PC %d: %s" lp.Profiler.load_pc why)
                  "hint emitted with fallback parameters"
              | Profiler.Skipped why ->
                add "profile"
                  (Printf.sprintf "load PC %d: %s" lp.Profiler.load_pc why)
                  "no hint for this load")
            p.Profiler.profiles);
        let candidate =
          match (hints, prof) with
          | Some h, _ -> h
          | None, Some p -> p.Profiler.hints
          | None, None -> []
        in
        (* 2. Build, validate hints against the program, inject, verify
           the rewritten IR, run, verify semantics — each stage falling
           back instead of raising. *)
        match w.Workload.build () with
        | exception e when not (Crash.is_crashed e) ->
          add "build" (cause_of e) "no measurement for this workload";
          (prof, retried, candidate, [], None)
        | inst ->
          let hints_used, hints_dropped =
            Profiler.validate_hints inst.Workload.func candidate
          in
          List.iter
            (fun ((_ : Aptget_pass.hint), why) ->
              add "hints" why "hint skipped")
            hints_dropped;
          let inst, injected, skipped =
            match
              (* The injection pass is pure rewriting (no simulated
                 cycles), so its budget is counted in kernel steps: one
                 per hint it will process. *)
              Watchdog.check_steps ?config:watchdog Watchdog.Inject
                ~steps:(List.length hints_used);
              Trace.with_span ~name:"stage.inject" (fun () ->
                  Aptget_pass.run inst.Workload.func ~hints:hints_used)
            with
            | exception e when not (Crash.is_crashed e) ->
              add "inject" (cause_of e)
                "discarding injections; rebuilding the unmodified kernel";
              (w.Workload.build (), [], [])
            | r -> (
              if r.Aptget_pass.fellback then
                add "inject" "no usable hints (Algorithm 2, lines 35-38)"
                  "static Ainsworth & Jones injection";
              List.iter
                (fun (pc, why) ->
                  add "inject"
                    (Printf.sprintf "load PC %d: %s" pc why)
                    "load left unprefetched")
                r.Aptget_pass.skipped;
              match Verify.check inst.Workload.func with
              | Ok () -> (inst, r.Aptget_pass.injected, r.Aptget_pass.skipped)
              | Error e ->
                add "verify-ir" e
                  "discarding injections; rebuilding the unmodified kernel";
                (w.Workload.build (), [], []))
          in
          let run_inst inst injected skipped =
            let outcome =
              Trace.with_span ~name:"stage.measure" @@ fun () ->
              let o =
                Watchdog.run ?config:watchdog ?crash
                  ~machine:(Option.value config ~default:Machine.default_config)
                  Watchdog.Measure
                  (fun capped ->
                    Machine.execute ~config:capped ~args:inst.Workload.args
                      ~mem:inst.Workload.mem inst.Workload.func)
              in
              Trace.set_cycles o.Machine.cycles;
              o
            in
            let verified =
              inst.Workload.verify inst.Workload.mem outcome.Machine.ret
            in
            (match verified with
            | Ok () -> ()
            | Error e ->
              add "semantic-verify" e "measurement reported as unverified");
            {
              workload = w.Workload.name;
              outcome;
              verified;
              injected;
              skipped;
              wall_seconds = 0.;
            }
          in
          let measurement =
            match run_inst inst injected skipped with
            | m -> Some m
            | exception e when not (Crash.is_crashed e) -> (
              add "run" (cause_of e)
                "rebuilding and running the unmodified kernel";
              match run_inst (w.Workload.build ()) [] [] with
              | m -> Some m
              | exception e2 when not (Crash.is_crashed e2) ->
                add "run" (cause_of e2)
                  "no measurement for this workload";
                None)
          in
          (prof, retried, hints_used, hints_dropped, measurement)
  in
  (* Last-resort catch: run_robust must never raise, even on failures
     in stages the per-stage handlers above do not anticipate. The one
     exception is a simulated crash, which models the process dying and
     therefore must propagate. *)
  let result, wall_seconds =
    Trace.with_span ~name:"pipeline.run-robust"
      ~attrs:[ ("workload", w.Workload.name) ]
    @@ fun () ->
    wall (fun () ->
        try go ()
        with e when not (Crash.is_crashed e) ->
          add "pipeline" (cause_of e)
            "no measurement for this workload";
          (None, false, [], [], None))
  in
  let prof, retried, hints_used, hints_dropped, measurement = result in
  {
    r_workload = w.Workload.name;
    r_measurement =
      Option.map (fun m -> { m with wall_seconds }) measurement;
    r_profile = prof;
    r_hints_used = hints_used;
    r_hints_dropped = hints_dropped;
    r_degradations = List.rev !degradations;
    r_profile_retried = retried;
  }

(* ------------------------------------------------------------------ *)
(* Guarded pipeline: remap stale hints, measure the candidate against  *)
(* the baseline, and quarantine hint sets that regress below a floor.  *)
(* ------------------------------------------------------------------ *)

module Remap = Aptget_profile.Remap
module Hints_file = Aptget_profile.Hints_file

type guard_config = { floor : float; try_aj : bool }

let default_guard = { floor = 0.98; try_aj = true }

type guard_outcome =
  | Admitted
  | Quarantined of { speedup : float; fallback : string }
  | Known_bad of { prior_speedup : float; fallback : string }

type guarded = {
  g_workload : string;
  g_program : int;
  g_baseline : measurement;
  g_candidate : measurement option;
  g_final : measurement;
  g_speedup : float;
  g_outcome : guard_outcome;
  g_hints : Aptget_pass.hint list;
  g_remap : Remap.t option;
}

let guard_outcome_to_string = function
  | Admitted -> "admitted"
  | Quarantined q ->
    Printf.sprintf "quarantined (%.3fx < floor); fell back to %s" q.speedup
      q.fallback
  | Known_bad k ->
    Printf.sprintf "known bad (%.3fx on record); fell back to %s"
      k.prior_speedup k.fallback

(* The baseline-equivalent fallback still goes through the injection
   pass, vetoing every hint: the measurement is the unmodified kernel
   (the simulator is deterministic), and the per-hint skip records show
   exactly what the guard suppressed. An empty candidate would instead
   trip the pass's Algorithm-2 static fallback, so it shortcuts to the
   plain baseline run. *)
let pinned ?config w hints reason =
  match hints with
  | [] -> baseline ?config w
  | _ :: _ -> with_hints ?config ~veto:(fun _ -> Some reason) ~hints w

let no_measure_cache ~variant f =
  ignore (variant : string);
  f ()

let run_guarded ?config ?(guard = default_guard) ?quarantine ?remap ?watchdog
    ?crash ?(measure_cache = no_measure_cache) ~(doc : Hints_file.doc)
    (w : Workload.t) =
  Trace.with_span ~name:"pipeline.run-guarded"
    ~attrs:[ ("workload", w.Workload.name) ]
  @@ fun () ->
  let current =
    Aptget_ir.Fingerprint.fingerprint (w.Workload.build ()).Workload.func
  in
  let remap_result =
    Option.map (fun rc -> Remap.run ~config:rc ~current doc) remap
  in
  let hints =
    match remap_result with
    | Some r -> r.Remap.hints
    | None -> Hints_file.hints_of_doc doc
  in
  (* Every simulator run below is supervised: the watchdog caps the
     machine's cycle fuse, and the crash plan (if armed) can kill the
     process mid-measurement. A baseline or fallback that blows its
     budget has nothing to degrade to, so its Timed_out propagates; a
     candidate that blows its budget is quarantined at 0.0x. *)
  let mconfig = Option.value config ~default:Machine.default_config in
  let measure f =
    Watchdog.run ?config:watchdog ?crash ~machine:mconfig Watchdog.Measure f
  in
  let base =
    measure_cache ~variant:"guard-baseline" (fun () ->
        measure (fun capped -> baseline ~config:capped w))
  in
  let program = current.Aptget_ir.Fingerprint.program in
  let hkey = Quarantine.hints_key hints in
  let fall_back ~reason =
    (* The pinned fallback embeds [reason] in its per-hint skip records,
       so it is never cached — two different reasons must not alias. *)
    let pinned_m () =
      measure (fun capped -> pinned ~config:capped w hints reason)
    in
    if guard.try_aj then begin
      match
        measure_cache ~variant:"guard-aj" (fun () ->
            measure (fun capped -> aj ~config:capped w))
      with
      | m when speedup ~baseline:base m >= guard.floor ->
        (m, "static Ainsworth & Jones injection")
      | _ -> (pinned_m (), "baseline (hints vetoed)")
      | exception Watchdog.Timed_out _ -> (pinned_m (), "baseline (hints vetoed)")
    end
    else (pinned_m (), "baseline (hints vetoed)")
  in
  let known =
    Option.bind quarantine (fun q ->
        Quarantine.find q ~workload:w.Workload.name ~program ~hints_key:hkey)
  in
  let candidate, final, outcome =
    match known with
    | Some e ->
      let final, fallback =
        fall_back
          ~reason:
            (Printf.sprintf "hint set quarantined (%.3fx on record)"
               e.Quarantine.q_speedup)
      in
      ( None,
        final,
        Known_bad { prior_speedup = e.Quarantine.q_speedup; fallback } )
    | None -> (
      let quarantine_at s =
        Option.iter
          (fun q ->
            Quarantine.add q
              {
                Quarantine.q_workload = w.Workload.name;
                q_program = program;
                q_hints = hkey;
                q_speedup = s;
              })
          quarantine
      in
      match
        measure_cache
          ~variant:("guard-candidate:" ^ Aptget_ir.Fingerprint.hex hkey)
          (fun () -> measure (fun capped -> with_hints ~config:capped ~hints w))
      with
      | m ->
        let s = speedup ~baseline:base m in
        if s >= guard.floor then (Some m, m, Admitted)
        else begin
          quarantine_at s;
          let final, fallback =
            fall_back
              ~reason:
                (Printf.sprintf "hint set quarantined (measured %.3fx < %.3fx)"
                   s guard.floor)
          in
          (Some m, final, Quarantined { speedup = s; fallback })
        end
      | exception Watchdog.Timed_out t ->
        (* A candidate that never finishes is worse than one that merely
           regresses: record it at 0.0x so future runs skip it without
           re-spending the budget. *)
        quarantine_at 0.;
        let final, fallback =
          fall_back
            ~reason:
              (Printf.sprintf "hint set quarantined (%s)"
                 (Watchdog.timeout_to_string t))
        in
        (None, final, Quarantined { speedup = 0.; fallback }))
  in
  Metrics.incr
    (match outcome with
    | Admitted -> "guard.admitted"
    | Quarantined _ -> "guard.quarantined"
    | Known_bad _ -> "guard.known_bad");
  {
    g_workload = w.Workload.name;
    g_program = program;
    g_baseline = base;
    g_candidate = candidate;
    g_final = final;
    g_speedup = speedup ~baseline:base final;
    g_outcome = outcome;
    g_hints = hints;
    g_remap = remap_result;
  }

(* ------------------------------------------------------------------ *)
(* Adaptive epoch: one supervised hinted run with concurrent           *)
(* re-sampling and execution windows — the primitive the online loop   *)
(* (Aptget_adapt) drives once per program phase/segment.               *)
(* ------------------------------------------------------------------ *)

module Sampler = Aptget_pmu.Sampler

type epoch = {
  e_measurement : measurement;
  e_windows : Machine.window_report list;  (** in execution order *)
  e_refit : Profiler.t option;
  e_hints_dropped : (Aptget_pass.hint * string) list;
}

let run_adaptive ?config ?watchdog ?crash ?(options = Profiler.default_options)
    ?sampler ?window_cycles ?veto ~hints (w : Workload.t) =
  Trace.with_span ~name:"pipeline.run-adaptive"
    ~attrs:[ ("workload", w.Workload.name) ]
  @@ fun () ->
  let inst = w.Workload.build () in
  let hints_used, hints_dropped =
    Profiler.validate_hints inst.Workload.func hints
  in
  (* An empty (or fully stale) hint list takes the injection pass's
     Algorithm-2 static fallback — the bottom rung of the degradation
     ladder runs A&J's fixed distance, not an unprefetched kernel. *)
  let r = Aptget_pass.run ?veto inst.Workload.func ~hints:hints_used in
  Verify.check_exn inst.Workload.func;
  Option.iter (fun s -> Sampler.reset s) sampler;
  let windows = ref [] in
  let on_window =
    match window_cycles with
    | Some _ -> Some (fun wr -> windows := wr :: !windows)
    | None -> None
  in
  let mconfig = Option.value config ~default:Machine.default_config in
  let (outcome, verified), wall_seconds =
    wall (fun () ->
        let o =
          Trace.with_span ~name:"stage.measure" @@ fun () ->
          let o =
            Watchdog.run ?config:watchdog ?crash ~machine:mconfig
              Watchdog.Measure (fun capped ->
                Machine.execute ~config:capped ?sampler ?window_cycles
                  ?on_window ~args:inst.Workload.args ~mem:inst.Workload.mem
                  inst.Workload.func)
          in
          Trace.set_cycles o.Machine.cycles;
          o
        in
        (o, inst.Workload.verify inst.Workload.mem o.Machine.ret))
  in
  let refit =
    match sampler with
    | None -> None
    | Some s -> (
      (* The re-fit analyses the *rewritten* kernel the sampler just
         observed; its hint PCs must travel through the remap path to
         reach a fresh build. An analysis failure means re-profiling is
         unavailable this epoch, not that the epoch failed. *)
      try Some (Profiler.refit ~options ~baseline:outcome s inst.Workload.func)
      with e when not (Crash.is_crashed e) -> None)
  in
  {
    e_measurement =
      {
        workload = w.Workload.name;
        outcome;
        verified;
        injected = r.Aptget_pass.injected;
        skipped = r.Aptget_pass.skipped;
        wall_seconds;
      };
    e_windows = List.rev !windows;
    e_refit = refit;
    e_hints_dropped = hints_dropped;
  }

let force_distance d hints =
  List.map (fun h -> { h with Aptget_pass.distance = d }) hints

let force_site site hints =
  List.map
    (fun h ->
      match site with
      | Inject.Inner -> { h with Aptget_pass.site; sweep = 1 }
      | Inject.Outer -> { h with Aptget_pass.site })
    hints
