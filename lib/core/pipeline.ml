module Machine = Aptget_machine.Machine
module Profiler = Aptget_profile.Profiler
module Workload = Aptget_workloads.Workload
module Aj = Aptget_passes.Aj
module Aptget_pass = Aptget_passes.Aptget_pass
module Inject = Aptget_passes.Inject

type measurement = {
  workload : string;
  outcome : Machine.outcome;
  verified : (unit, string) result;
  injected : Inject.injected list;
  skipped : (int * string) list;
  wall_seconds : float;
}

let verified_exn m =
  match m.verified with
  | Ok () -> m
  | Error e -> failwith (Printf.sprintf "%s: verification failed: %s" m.workload e)

let speedup ~baseline m =
  float_of_int baseline.outcome.Machine.cycles
  /. float_of_int m.outcome.Machine.cycles

let instruction_overhead ~baseline m =
  float_of_int m.outcome.Machine.instructions
  /. float_of_int baseline.outcome.Machine.instructions

let mpki_reduction ~baseline m =
  let b = Machine.mpki baseline.outcome in
  if b = 0. then 0. else 1. -. (Machine.mpki m.outcome /. b)

let wall f =
  let t0 = Sys.time () in
  let v = f () in
  (v, Sys.time () -. t0)

let run_transformed ?config (w : Workload.t) transform =
  let (outcome, verified, injected, skipped), wall_seconds =
    wall (fun () ->
        let inst = w.Workload.build () in
        let injected, skipped = transform inst in
        Verify.check_exn inst.Workload.func;
        let outcome =
          Machine.execute ?config ~args:inst.Workload.args
            ~mem:inst.Workload.mem inst.Workload.func
        in
        let verified =
          inst.Workload.verify inst.Workload.mem outcome.Machine.ret
        in
        (outcome, verified, injected, skipped))
  in
  { workload = w.Workload.name; outcome; verified; injected; skipped; wall_seconds }

let baseline ?config w = run_transformed ?config w (fun _ -> ([], []))

let aj ?config ?distance w =
  run_transformed ?config w (fun inst ->
      let r = Aj.run ?distance inst.Workload.func in
      (r.Aj.injected, r.Aj.skipped))

let profile ?options (w : Workload.t) =
  let inst = w.Workload.build () in
  Profiler.profile ?options ~args:inst.Workload.args ~mem:inst.Workload.mem
    inst.Workload.func

let with_hints ?config ?(cse = false) ~hints w =
  run_transformed ?config w (fun inst ->
      let r = Aptget_pass.run inst.Workload.func ~hints in
      if cse then ignore (Aptget_passes.Cse.run inst.Workload.func);
      (r.Aptget_pass.injected, r.Aptget_pass.skipped))

let aptget ?options ?config ?cse w =
  let prof = profile ?options w in
  (with_hints ?config ?cse ~hints:prof.Profiler.hints w, prof)

let force_distance d hints =
  List.map (fun h -> { h with Aptget_pass.distance = d }) hints

let force_site site hints =
  List.map
    (fun h ->
      match site with
      | Inject.Inner -> { h with Aptget_pass.site; sweep = 1 }
      | Inject.Outer -> { h with Aptget_pass.site })
    hints
