(** Persistent quarantine of hint sets the regression guard rejected.

    When a guarded run ({!Pipeline.run_guarded}) measures a hint set
    below the speedup floor, the verdict is worth keeping: re-measuring
    a known-bad profile on every run would spend a candidate simulation
    to rediscover the same regression. Entries are keyed by (workload,
    program structural hash, hint-set hash) so a quarantine outlives PC
    renumbering of unrelated code but is invalidated the moment either
    the program structure or the hint set actually changes.

    The store is an in-memory table, optionally backed by a
    line-oriented text file (one entry per line, loaded leniently —
    unparseable lines are skipped and counted via {!load_errors}, not
    fatal) so decisions persist across processes. Writes go through
    {!Aptget_store.Atomic_file} (temp file + rename, sorted by key),
    so the file survives a crash mid-persist and is byte-stable across
    runs that hold the same entries. *)

type entry = {
  q_workload : string;
  q_program : int;  (** {!Fingerprint.t.program} of the injected-into IR *)
  q_hints : int;  (** {!hints_key} of the quarantined hint set *)
  q_speedup : float;  (** the measured speedup that fell below the floor *)
}

type t

val hints_key : Aptget_passes.Aptget_pass.hint list -> int
(** Order-insensitive stable hash of a hint set (same polynomial hash
    family as {!Fingerprint}, so it is safe to persist). *)

val create : ?path:string -> ?crash:Aptget_store.Crash.t -> unit -> t
(** Empty store; with [path], pre-loaded from that file when it exists
    (missing file = empty store) and persisted back on every {!add}.
    [crash] routes every persist through a crash-injection plan
    (durability tests only). *)

val load_errors : t -> (int * string) list
(** Lines of the backing file that did not parse at {!create} time,
    as [(line_number, reason)] — corrupt trailing lines are skipped
    and counted, never silently dropped. *)

val find : t -> workload:string -> program:int -> hints_key:int -> entry option
val mem : t -> workload:string -> program:int -> hints_key:int -> bool

val add : t -> entry -> unit
(** Record (replacing any entry under the same key) and, when the store
    is file-backed, rewrite the file. *)

val compact : t -> keep:(entry -> bool) -> int
(** Drop every entry [keep] rejects and persist the survivors in one
    atomic rewrite (temp + rename — a crash mid-compaction leaves the
    previous file intact). Returns the number of entries removed.
    Idempotent: re-running the same compaction removes nothing.
    [aptget quarantine --compact] uses it to drop entries whose
    program fingerprint no longer matches any known workload. *)

val entries : t -> entry list
(** All entries, sorted by (workload, program, hints) for stable
    output. *)

val path : t -> string option
