module Machine = Aptget_machine.Machine
module Crash = Aptget_store.Crash

type stage = Profile | Inject | Measure

let stage_to_string = function
  | Profile -> "profile"
  | Inject -> "inject"
  | Measure -> "measure"

type budget = { max_cycles : int; max_steps : int }

let unlimited_budget = { max_cycles = 0; max_steps = 0 }

type config = {
  profile_budget : budget;
  inject_budget : budget;
  measure_budget : budget;
}

let unlimited =
  {
    profile_budget = unlimited_budget;
    inject_budget = unlimited_budget;
    measure_budget = unlimited_budget;
  }

let default =
  {
    profile_budget = { max_cycles = 1_000_000_000; max_steps = 500_000_000 };
    inject_budget = { max_cycles = 0; max_steps = 100_000 };
    measure_budget = { max_cycles = 1_000_000_000; max_steps = 500_000_000 };
  }

let budget cfg = function
  | Profile -> cfg.profile_budget
  | Inject -> cfg.inject_budget
  | Measure -> cfg.measure_budget

type timeout = {
  t_stage : stage;
  t_dimension : [ `Cycles | `Steps ];
  t_spent : int;
  t_limit : int;
}

exception Timed_out of timeout

let timeout_to_string t =
  Printf.sprintf "watchdog: %s stage exceeded its %s budget (%d > %d)"
    (stage_to_string t.t_stage)
    (match t.t_dimension with
    | `Cycles -> "simulated-cycle"
    | `Steps -> "kernel-step")
    t.t_spent t.t_limit

let () =
  Printexc.register_printer (function
    | Timed_out t -> Some ("Watchdog.Timed_out(" ^ timeout_to_string t ^ ")")
    | _ -> None)

(* 0 means "unlimited" throughout, so min must ignore zeros. *)
let min_pos a b = if a = 0 then b else if b = 0 then a else min a b

let stage_budget config stage =
  match config with None -> unlimited_budget | Some c -> budget c stage

let crash_cycle crash =
  match crash with
  | Some c when Crash.armed c -> Option.value ~default:0 (Crash.cycle_limit c)
  | _ -> 0

let cap ?config ?crash stage (mc : Machine.config) =
  let b = stage_budget config stage in
  {
    mc with
    Machine.max_cycles =
      min_pos mc.Machine.max_cycles (min_pos b.max_cycles (crash_cycle crash));
    max_instructions =
      (if b.max_steps > 0 then min mc.Machine.max_instructions b.max_steps
       else mc.Machine.max_instructions);
  }

let run ?config ?crash ~machine stage f =
  let b = stage_budget config stage in
  let kill = crash_cycle crash in
  let capped = cap ?config ?crash stage machine in
  try f capped with
  | Machine.Deadline_blown { cycles; limit } ->
    (* The armed crash point wins over the budget whenever it set (or
       tied) the effective limit: process death preempts supervision. *)
    if kill > 0 && limit = kill then
      Crash.crash_at_cycle (Option.get crash) ~cycle:cycles
    else if
      capped.Machine.max_cycles <> machine.Machine.max_cycles
      && limit = capped.Machine.max_cycles
    then
      raise
        (Timed_out
           {
             t_stage = stage;
             t_dimension = `Cycles;
             t_spent = cycles;
             t_limit = limit;
           })
    else raise (Machine.Deadline_blown { cycles; limit })
  | Machine.Fuse_blown n
    when b.max_steps > 0
         && capped.Machine.max_instructions < machine.Machine.max_instructions
    ->
    raise
      (Timed_out
         {
           t_stage = stage;
           t_dimension = `Steps;
           t_spent = n;
           t_limit = capped.Machine.max_instructions;
         })

let check_steps ?config stage ~steps =
  let b = stage_budget config stage in
  if b.max_steps > 0 && steps > b.max_steps then
    raise
      (Timed_out
         {
           t_stage = stage;
           t_dimension = `Steps;
           t_spent = steps;
           t_limit = b.max_steps;
         })
