module Machine = Aptget_machine.Machine
module Hierarchy = Aptget_cache.Hierarchy

let machine = Machine.default_config

let kib b = Printf.sprintf "%dKiB" (b / 1024)

let rows () =
  let h = machine.Machine.hierarchy in
  [
    ("Core", "in-order timing model, 1 uop/cycle, blocking demand loads");
    ( "L1 D-Cache",
      Printf.sprintf "%s, %d-way, %d cycles" (kib h.Hierarchy.l1_size)
        h.Hierarchy.l1_assoc h.Hierarchy.l1_latency );
    ( "L2 Cache",
      Printf.sprintf "%s, %d-way, %d cycles" (kib h.Hierarchy.l2_size)
        h.Hierarchy.l2_assoc h.Hierarchy.l2_latency );
    ( "LLC",
      Printf.sprintf "%s, %d-way, %d cycles" (kib h.Hierarchy.llc_size)
        h.Hierarchy.llc_assoc h.Hierarchy.llc_latency );
    ("Main Memory", Printf.sprintf "flat %d-cycle DRAM" h.Hierarchy.dram_latency);
    ( "Fill buffers",
      Printf.sprintf "%d MSHRs (prefetches dropped when full)"
        h.Hierarchy.mshr_capacity );
    ( "HW prefetchers",
      if h.Hierarchy.hw_prefetch then "next-line on miss + per-PC stride, degree 2"
      else "disabled" );
    ("LBR", "32 entries with cycle counts");
  ]

let scale_note =
  "Paper: Xeon Gold 5218 (64KiB L1, 1MiB L2, 22MiB LLC, DDR4-2666). This \
   simulator scales capacities ~10x down so that interpreter-feasible \
   working sets still exceed the LLC; latencies are kept in cycles."
