(** Simulated machine configuration and its Table 2 rendering. *)

val machine : Aptget_machine.Machine.config
(** The default evaluation machine: the paper's Xeon Gold 5218 scaled
    ~10x down (see DESIGN.md) — 32 KiB L1, 256 KiB L2, 2 MiB LLC,
    DRAM 250 cycles, 16 fill buffers, HW next-line + stride
    prefetchers. *)

val rows : unit -> (string * string) list
(** (component, parameters) rows, mirroring Table 2. *)

val scale_note : string
(** One-line explanation of the scaling substitution. *)
