(** Persistent measurement cache: skip re-simulating a workload whose
    inputs are bit-identical to a previous run.

    The simulator is deterministic, so a measurement is fully determined
    by its {!key}: the experiment variant, the workload's program
    fingerprint ({!Aptget_ir.Fingerprint.program_hash}), the machine
    configuration, and (for profile-guided variants) the profiler
    options summary. Any change to kernel IR, machine parameters or
    profiling setup changes the key and misses the cache — there is no
    time- or version-based invalidation to get wrong.

    Records are single text files written via
    {!Aptget_store.Atomic_file} (temp + rename) and protected by a
    trailing CRC-32 line; a torn, truncated or hand-edited record reads
    back as a miss, never as a wrong measurement. The full key is stored
    inside the record and compared on load, so filename collisions also
    degrade to misses.

    The cache is opt-in: {!dir_from_env} consults [APTGET_CACHE]; when
    unset nothing is read or written and every run simulates. *)

type key

val key :
  ?namespace:string ->
  variant:string ->
  workload:string ->
  program:int ->
  config:Aptget_machine.Machine.config ->
  ?options:string ->
  unit ->
  key
(** [variant] names the transformation applied (e.g. ["baseline"],
    ["aj-8"], ["aptget"]); [program] is the fingerprint hash of the
    {e untransformed} kernel; [options] is the
    {!Aptget_profile.Profiler.options_summary} when the variant's
    hints came from a profile (default [""]). [namespace] (default
    [""]) isolates otherwise-identical keys — the serve daemon passes
    the tenant id, so one tenant's records are invisible to another's
    even inside a shared cache directory. *)

val load : dir:string -> key -> Pipeline.measurement option
(** Look the key up under [dir]. [None] on any miss: absent file,
    checksum mismatch, unparsable record, or a record whose stored key
    differs from [key]. Never raises. *)

val store : dir:string -> key -> Pipeline.measurement -> unit
(** Persist the measurement under [dir] (created if absent), replacing
    any previous record for the key atomically. I/O failures are
    swallowed — the cache is an accelerator, not a store of record. *)

val dir_from_env : unit -> string option
(** [Some dir] when [APTGET_CACHE] is set and non-empty. *)

(** {2 Scoped front door} *)

type scope = { dir : string; namespace : string }
(** A cache directory plus a key namespace. The serve daemon holds one
    scope per tenant ([dir] under the tenant's spool subtree,
    [namespace] the tenant id), so tenants share nothing — not even
    records for bit-identical requests. *)

val cached :
  scope ->
  variant:string ->
  workload:string ->
  program:int ->
  config:Aptget_machine.Machine.config ->
  ?options:string ->
  (unit -> Pipeline.measurement) ->
  Pipeline.measurement
(** [cached scope ~variant ... f] loads the scoped key, or runs [f]
    and stores its result. Exceptions from [f] propagate unrecorded
    (a timed-out or crashed measurement must not poison the cache). *)
