(** Circuit breaker: contain a unit of work that keeps failing.

    The policy is the one the campaign runner has used per workload
    since PR 3, extracted so the serve daemon can hold one per tenant:
    after [threshold] consecutive failures the breaker opens and the
    next [cooldown] acquisitions are refused outright; the first
    acquisition after the cooldown runs as a {e half-open} probe whose
    success re-closes the breaker and whose failure re-opens it for
    another cooldown. The value is deliberately mutable and
    single-owner: callers that share one across domains must serialize
    access themselves (the campaign and the serve daemon both process
    a breaker's unit of work serially within its group). *)

type state = Closed | Open of int  (** acquisitions left to refuse *) | Half_open

val state_to_string : state -> string

type config = {
  threshold : int;  (** consecutive failures that open the breaker *)
  cooldown : int;  (** acquisitions refused while open *)
}

val default_config : config
(** threshold 3, cooldown 2 — the campaign defaults. *)

type t

val create : ?config:config -> unit -> t
(** A closed breaker.
    @raise Invalid_argument when [threshold < 1] or [cooldown < 0]. *)

val state : t -> state
val opened_count : t -> int
(** Times this breaker has transitioned to [Open]. *)

type admission =
  | Run  (** closed: run normally *)
  | Probe  (** half-open: run exactly once, no retries *)
  | Refuse of int  (** open: refused, with cooldown slots left {e after}
          this refusal *)

val acquire : t -> admission
(** Ask to run one unit of work. An open breaker consumes one cooldown
    slot and refuses; consuming the last slot moves it to half-open for
    the next acquisition. The caller must follow a [Run]/[Probe] with
    exactly one {!record} of the outcome. *)

val record : t -> ok:bool -> unit
(** Report the outcome of an admitted unit of work. Success resets the
    failure streak (and re-closes a half-open breaker); failure extends
    it, opening the breaker at [threshold] consecutive failures — and a
    failed half-open probe re-opens immediately. *)
