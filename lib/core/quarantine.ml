module Aptget_pass = Aptget_passes.Aptget_pass
module Inject = Aptget_passes.Inject

type entry = {
  q_workload : string;
  q_program : int;
  q_hints : int;
  q_speedup : float;
}

type t = {
  table : (string * int * int, entry) Hashtbl.t;
  file : string option;
  crash : Aptget_store.Crash.t option;
  mutable load_errors : (int * string) list;
}

(* Same stable polynomial as Fingerprint — persisted hashes must not
   depend on Hashtbl.hash's implementation. *)
let hash_add h s =
  let h = ref h in
  String.iter (fun c -> h := ((!h * 131) + Char.code c) land max_int) s;
  ((!h * 131) + 0x1f) land max_int

let hints_key hints =
  hints
  |> List.map (fun (h : Aptget_pass.hint) ->
         Printf.sprintf "%d:%d:%s:%d" h.Aptget_pass.load_pc
           h.Aptget_pass.distance
           (Inject.site_to_string h.Aptget_pass.site)
           h.Aptget_pass.sweep)
  |> List.sort compare
  |> List.fold_left hash_add 0x1505

let key e = (e.q_workload, e.q_program, e.q_hints)

let entry_to_line e =
  Printf.sprintf "workload=%s program=%s hints=%s speedup=%f" e.q_workload
    (Fingerprint.hex e.q_program) (Fingerprint.hex e.q_hints) e.q_speedup

let hex_of_string_opt s =
  if s = "" then None else int_of_string_opt ("0x" ^ s)

let entry_of_line line =
  let fields =
    String.split_on_char ' ' line
    |> List.filter (fun s -> s <> "")
    |> List.filter_map (fun part ->
           match String.index_opt part '=' with
           | Some i ->
             Some
               ( String.sub part 0 i,
                 String.sub part (i + 1) (String.length part - i - 1) )
           | None -> None)
  in
  let field k = List.assoc_opt k fields in
  match
    (field "workload", field "program", field "hints", field "speedup")
  with
  | Some w, Some p, Some h, Some s -> (
    match (hex_of_string_opt p, hex_of_string_opt h, float_of_string_opt s)
    with
    | Some p, Some h, Some s when w <> "" ->
      Some { q_workload = w; q_program = p; q_hints = h; q_speedup = s }
    | _ -> None)
  | _ -> None

(* Lenient load: well-formed lines are kept even past a corrupt one (a
   torn rewrite cannot invalidate unrelated entries), but every
   rejected line is counted with its line number instead of vanishing
   silently. *)
let load_file table path =
  match Aptget_store.Atomic_file.read ~path with
  | Error _ -> []
  | Ok contents ->
    let errors = ref [] in
    List.iteri
      (fun i raw ->
        let line = String.trim raw in
        if line <> "" && line.[0] <> '#' then
          match entry_of_line line with
          | Some e -> Hashtbl.replace table (key e) e
          | None ->
            errors := (i + 1, Printf.sprintf "unparseable entry %S" line) :: !errors)
      (String.split_on_char '\n' contents);
    List.rev !errors

let entries t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.table []
  |> List.sort (fun a b -> compare (key a) (key b))

(* [entries] sorts by key, so the emitted file is deterministic across
   runs regardless of insertion order — stable under last-writer-wins
   duplicate handling in the loader, and diffable in tests. The write
   is atomic (temp + rename in the store's directory): a crash
   mid-persist leaves the previous file intact, never a torn one. *)
let persist t =
  match t.file with
  | None -> ()
  | Some path ->
    let body =
      String.concat "\n"
        (("# aptget quarantined hint sets" :: List.map entry_to_line (entries t))
        @ [ "" ])
    in
    Aptget_store.Atomic_file.write ?crash:t.crash ~path body

let create ?path ?crash () =
  let table = Hashtbl.create 8 in
  let load_errors =
    match path with None -> [] | Some p -> load_file table p
  in
  (* Salvaged (skipped) lines are bit-rot the operator should see, not
     just a list a caller may forget to print. *)
  (match List.length load_errors with
  | 0 -> ()
  | n -> Aptget_obs.Metrics.incr ~by:n "store.salvage.quarantine");
  { table; file = path; crash; load_errors }

let load_errors t = t.load_errors

let find t ~workload ~program ~hints_key =
  Hashtbl.find_opt t.table (workload, program, hints_key)

let mem t ~workload ~program ~hints_key =
  Hashtbl.mem t.table (workload, program, hints_key)

let add t e =
  Hashtbl.replace t.table (key e) e;
  persist t

(* Compaction drops every entry the predicate rejects, then persists
   once. Removing from a hash table while folding it is unspecified, so
   the doomed keys are collected first. The single [persist] at the end
   goes through Atomic_file (temp + rename), so a crash mid-compaction
   leaves the previous file intact — and re-running the same compaction
   removes nothing further (idempotent by construction: the survivors
   already satisfy [keep]). *)
let compact t ~keep =
  let doomed =
    Hashtbl.fold
      (fun k e acc -> if keep e then acc else k :: acc)
      t.table []
  in
  List.iter (Hashtbl.remove t.table) doomed;
  if doomed <> [] then persist t;
  List.length doomed

let path t = t.file
