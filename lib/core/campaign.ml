module Machine = Aptget_machine.Machine
module Workload = Aptget_workloads.Workload
module Faults = Aptget_pmu.Faults
module Crash = Aptget_store.Crash
module Journal = Aptget_store.Journal
module Pool = Aptget_util.Pool
module Backoff = Aptget_util.Backoff
module Trace = Aptget_obs.Trace
module Metrics = Aptget_obs.Metrics

(* ------------------------------------------------------------------ *)
(* Plans *)

type trial = { t_id : string; t_workload : Workload.t }

let plan ?(trials_per_workload = 1) workloads =
  if trials_per_workload < 1 then
    invalid_arg "Campaign.plan: trials_per_workload < 1";
  List.concat_map
    (fun (w : Workload.t) ->
      List.init trials_per_workload (fun i ->
          { t_id = Printf.sprintf "%s#%d" w.Workload.name (i + 1);
            t_workload = w }))
    workloads

type config = {
  max_retries : int;
  backoff_base : float;
  breaker_threshold : int;
  breaker_cooldown : int;
  watchdog : Watchdog.config;
  faults : Faults.config;
}

let default_config =
  {
    max_retries = 2;
    backoff_base = 2.0;
    breaker_threshold = 3;
    breaker_cooldown = 2;
    watchdog = Watchdog.default;
    faults = Faults.none;
  }

(* ------------------------------------------------------------------ *)
(* Circuit breakers: one per workload name. A workload that keeps
   failing trial after trial is probably broken in a way retries cannot
   fix (bad build, pathological config), so after [breaker_threshold]
   consecutive trial failures the breaker opens and the next
   [breaker_cooldown] trials of that workload are skipped outright.
   The first trial after the cooldown runs as a half-open probe (one
   attempt, no retries): success re-closes the breaker, failure
   re-opens it for another cooldown. The state machine itself lives in
   {!Breaker} (the serve daemon reuses it per tenant); the campaign
   keeps one per workload group. *)

type breaker_state = Breaker.state = Closed | Open of int | Half_open

let breaker_state_to_string = Breaker.state_to_string

(* ------------------------------------------------------------------ *)
(* Results *)

type status =
  | Completed of { speedup : float }
  | Resumed of { speedup : float option }
  | Failed of string
  | Skipped of string

type trial_result = {
  tr_id : string;
  tr_workload : string;
  tr_status : status;
  tr_attempts : int;  (** 0 for resumed/skipped trials *)
  tr_backoff : float;
      (** total capped backoff factor accrued across retries *)
}

let status_to_string = function
  | Completed { speedup } -> Printf.sprintf "ok (%.3fx)" speedup
  | Resumed { speedup = Some s } ->
    Printf.sprintf "resumed from checkpoint (%.3fx)" s
  | Resumed { speedup = None } -> "resumed from checkpoint"
  | Failed why -> Printf.sprintf "failed: %s" why
  | Skipped why -> Printf.sprintf "skipped: %s" why

type report = {
  c_results : trial_result list;  (** in plan order *)
  c_completed : int;
  c_resumed : int;
  c_retried : int;
  c_failed : int;
  c_skipped : int;
  c_breakers_opened : (string * int) list;
  c_breaker_final : (string * string) list;
  c_store_recovery : Journal.recovery;
}

let ok r =
  r.c_failed = 0 && r.c_skipped = 0 && r.c_breakers_opened = []

(* ------------------------------------------------------------------ *)
(* Checkpoint records. One journal record per executed trial:

     trial=<id> workload=<name> status=ok|failed attempts=<n> [speedup=<f>]

   Workload (and hence trial) names are space-free by construction, so
   the payload splits on single spaces. Resume replays the journal and
   skips exactly the trials whose latest record says ok — a failed
   record documents the attempt but leaves the trial eligible, so a
   resumed campaign retries past failures rather than fossilising
   them. *)

let record_of_trial ~id ~workload ~ok ~attempts ~speedup =
  let base =
    Printf.sprintf "trial=%s workload=%s status=%s attempts=%d" id workload
      (if ok then "ok" else "failed")
      attempts
  in
  match speedup with
  | None -> base
  | Some s -> Printf.sprintf "%s speedup=%.6f" base s

let parse_record payload =
  let kvs =
    String.split_on_char ' ' payload
    |> List.filter_map (fun tok ->
           match String.index_opt tok '=' with
           | Some i ->
             Some
               ( String.sub tok 0 i,
                 String.sub tok (i + 1) (String.length tok - i - 1) )
           | None -> None)
  in
  match (List.assoc_opt "trial" kvs, List.assoc_opt "status" kvs) with
  | Some id, Some status ->
    Some
      ( id,
        status,
        Option.bind (List.assoc_opt "speedup" kvs) float_of_string_opt )
  | _ -> None

let completed_of_journal records =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun payload ->
      match parse_record payload with
      | Some (id, "ok", speedup) -> Hashtbl.replace tbl id speedup
      | Some (id, _, _) -> Hashtbl.remove tbl id
      | None -> ())
    records;
  tbl

(* ------------------------------------------------------------------ *)
(* Trial execution *)

let failure_reason (r : Pipeline.robust) =
  match r.Pipeline.r_measurement with
  | Some m -> (
    match m.Pipeline.verified with
    | Ok () -> assert false
    | Error e -> "verification failed: " ^ e)
  | None -> (
    match List.rev r.Pipeline.r_degradations with
    | d :: _ -> d.Pipeline.cause
    | [] -> "no measurement produced")

(* Everything a workload's trials share — breaker, baseline memo — is
   local to its group, so independent workloads can run on separate
   domains with no shared mutable state beyond the journal (whose
   appends are serialized by the caller-supplied [append]). *)
type group_outcome = {
  g_rows : (int * trial_result) list; (* (plan index, result) *)
  g_opened : int;
  g_final : breaker_state;
}

let run_group ~config ~mconfig ~crash ~append ~done_tbl ~runner wname
    indexed_trials =
  let b =
    Breaker.create
      ~config:
        {
          Breaker.threshold = config.breaker_threshold;
          cooldown = config.breaker_cooldown;
        }
      ()
  in
  (* Baselines are memoized per workload: a campaign re-visits each
     workload trials_per_workload times and the baseline is identical
     every time (the simulator is deterministic). Only successes are
     memoized — a transient baseline failure (flaky build) must be
     retryable on the trial's next attempt, not fossilised. *)
  let baseline = ref None in
  let baseline_of (w : Workload.t) =
    match !baseline with
    | Some b -> Ok b
    | None -> (
      match
        Watchdog.run ~config:config.watchdog ?crash
          ~machine:(Option.value mconfig ~default:Machine.default_config)
          Watchdog.Measure
          (fun capped -> Pipeline.baseline ~config:capped w)
      with
      | m ->
        baseline := Some m;
        Ok m
      | exception Watchdog.Timed_out t ->
        Error ("baseline " ^ Watchdog.timeout_to_string t)
      | exception e when not (Crash.is_crashed e) ->
        Error ("baseline failed: " ^ Printexc.to_string e))
  in
  let run_once (w : Workload.t) =
    match runner with
    | Some f -> (
      (* Custom trial runner (e.g. the online-adaptive loop): it owns
         its own baseline accounting, but stays under the campaign's
         retry/breaker/journal supervision. A simulated crash must
         still propagate. *)
      match f w with
      | r -> r
      | exception e when not (Crash.is_crashed e) ->
        Error (Printexc.to_string e))
    | None -> (
      match baseline_of w with
      | Error why -> Error why
      | Ok base -> (
        let r =
          Pipeline.run_robust ?config:mconfig ~faults:config.faults
            ~watchdog:config.watchdog ?crash w
        in
        match r.Pipeline.r_measurement with
        | Some m when m.Pipeline.verified = Ok () ->
          Ok (Pipeline.speedup ~baseline:base m)
        | _ -> Error (failure_reason r)))
  in
  (* Retry with capped exponential backoff. The simulator has no
     wall-clock to sleep on, so the backoff factor is recorded rather
     than slept: attempt n waits base^(n-1), capped at
     Faults.max_backoff like the PMU-retry ladder. Jitter-free
     (Backoff.factor), so recorded factors are byte-identical to the
     historical inline formula. *)
  let backoff_config =
    { Backoff.base = config.backoff_base; cap = Faults.max_backoff; jitter = 0. }
  in
  let with_retries ~max_retries w =
    let rec go attempt backoff =
      match run_once w with
      | Ok s -> (attempt, backoff, Ok s)
      | Error why ->
        if attempt > max_retries then (attempt, backoff, Error why)
        else begin
          Metrics.incr "campaign.retries";
          let factor = Backoff.factor backoff_config ~attempt in
          Metrics.observe "campaign.backoff_factor" factor;
          go (attempt + 1) (backoff +. factor)
        end
    in
    go 1 0.
  in
  let rows =
    List.map
      (fun (idx, t) ->
        let result =
          Trace.with_span ~name:"campaign.trial" ~attrs:[ ("trial", t.t_id) ]
          @@ fun () ->
          match Hashtbl.find_opt done_tbl t.t_id with
          | Some speedup ->
            {
              tr_id = t.t_id;
              tr_workload = wname;
              tr_status = Resumed { speedup };
              tr_attempts = 0;
              tr_backoff = 0.;
            }
          | None -> (
            match Breaker.acquire b with
            | Breaker.Refuse _ ->
              Metrics.incr "campaign.breaker.skips";
              {
                tr_id = t.t_id;
                tr_workload = wname;
                tr_status =
                  Skipped
                    (Printf.sprintf "circuit breaker open for %s" wname);
                tr_attempts = 0;
                tr_backoff = 0.;
              }
            | (Breaker.Run | Breaker.Probe) as admission ->
              let max_retries =
                (* a half-open probe gets exactly one attempt *)
                match admission with
                | Breaker.Probe -> 0
                | _ -> config.max_retries
              in
              let attempts, backoff, outcome =
                with_retries ~max_retries t.t_workload
              in
              let status =
                match outcome with
                | Ok speedup ->
                  if admission = Breaker.Probe then
                    Metrics.incr "campaign.breaker.reclosed";
                  Breaker.record b ~ok:true;
                  append
                    (record_of_trial ~id:t.t_id ~workload:wname ~ok:true
                       ~attempts ~speedup:(Some speedup));
                  Completed { speedup }
                | Error why ->
                  let opened_before = Breaker.opened_count b in
                  Breaker.record b ~ok:false;
                  if Breaker.opened_count b > opened_before then
                    Metrics.incr "campaign.breaker.opened";
                  append
                    (record_of_trial ~id:t.t_id ~workload:wname ~ok:false
                       ~attempts ~speedup:None);
                  Failed why
              in
              {
                tr_id = t.t_id;
                tr_workload = wname;
                tr_status = status;
                tr_attempts = attempts;
                tr_backoff = backoff;
              })
        in
        (idx, result))
      indexed_trials
  in
  { g_rows = rows; g_opened = Breaker.opened_count b; g_final = Breaker.state b }

let run ?(config = default_config) ?mconfig ?crash ?jobs ?runner ~store trials
    =
  let journal, recovery = Journal.open_ ?crash ~path:store () in
  if recovery.Journal.dropped > 0 then
    Metrics.incr ~by:recovery.Journal.dropped "store.salvage.journal";
  Fun.protect ~finally:(fun () -> Journal.close journal) @@ fun () ->
  let done_tbl = completed_of_journal recovery.Journal.records in
  let jmutex = Mutex.create () in
  let append record =
    Mutex.lock jmutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock jmutex)
      (fun () -> Journal.append journal record)
  in
  (* Group by workload name, keeping trial order within a group and
     groups in first-appearance order. Breakers and baselines are
     per-workload, so groups are independent units of work. *)
  let groups = Hashtbl.create 8 in
  let order = ref [] in
  List.iteri
    (fun idx t ->
      let wname = t.t_workload.Workload.name in
      match Hashtbl.find_opt groups wname with
      | Some acc -> acc := (idx, t) :: !acc
      | None ->
        Hashtbl.add groups wname (ref [ (idx, t) ]);
        order := wname :: !order)
    trials;
  let group_list =
    List.rev_map
      (fun wname -> (wname, List.rev !(Hashtbl.find groups wname)))
      !order
  in
  let process (wname, its) =
    run_group ~config ~mconfig ~crash ~append ~done_tbl ~runner wname its
  in
  (* A crash plan arms a deterministic kill at the k-th store write;
     that ordering only exists serially, so an armed plan forces the
     sequential path. *)
  let outcomes =
    if crash <> None then List.map process group_list
    else Pool.run ?jobs process group_list
  in
  let results =
    List.concat_map (fun g -> g.g_rows) outcomes
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map snd
  in
  let opened =
    List.filter_map
      (fun ((wname, _), g) ->
        if g.g_opened > 0 then Some (wname, g.g_opened) else None)
      (List.combine group_list outcomes)
  in
  let count p = List.length (List.filter p results) in
  {
    c_results = results;
    c_completed =
      count (fun r -> match r.tr_status with Completed _ -> true | _ -> false);
    c_resumed =
      count (fun r -> match r.tr_status with Resumed _ -> true | _ -> false);
    c_retried =
      count (fun r ->
          match r.tr_status with Completed _ -> r.tr_attempts > 1 | _ -> false);
    c_failed =
      count (fun r -> match r.tr_status with Failed _ -> true | _ -> false);
    c_skipped =
      count (fun r -> match r.tr_status with Skipped _ -> true | _ -> false);
    c_breakers_opened = opened;
    c_breaker_final =
      List.map
        (fun ((wname, _), g) -> (wname, breaker_state_to_string g.g_final))
        (List.combine group_list outcomes)
      |> List.sort compare;
    c_store_recovery = recovery;
  }
