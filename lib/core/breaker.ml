type state = Closed | Open of int | Half_open

let state_to_string = function
  | Closed -> "closed"
  | Open n -> Printf.sprintf "open (%d skips left)" n
  | Half_open -> "half-open"

type config = { threshold : int; cooldown : int }

let default_config = { threshold = 3; cooldown = 2 }

type t = {
  config : config;
  mutable state : state;
  mutable consecutive : int;  (* consecutive failures while closed *)
  mutable opened : int;  (* times this breaker has opened *)
}

let create ?(config = default_config) () =
  if config.threshold < 1 then invalid_arg "Breaker.create: threshold < 1";
  if config.cooldown < 0 then invalid_arg "Breaker.create: cooldown < 0";
  { config; state = Closed; consecutive = 0; opened = 0 }

let state t = t.state
let opened_count t = t.opened

type admission = Run | Probe | Refuse of int

let open_ t =
  t.state <- Open t.config.cooldown;
  t.consecutive <- 0;
  t.opened <- t.opened + 1

let acquire t =
  match t.state with
  | Closed -> Run
  | Half_open -> Probe
  | Open n ->
    (* A zero-cooldown breaker opens straight into half-open, so the
       probe follows immediately; otherwise each refusal burns one
       slot. *)
    let left = n - 1 in
    t.state <- (if left <= 0 then Half_open else Open left);
    Refuse (max 0 left)

let record t ~ok =
  if ok then begin
    t.consecutive <- 0;
    if t.state = Half_open then t.state <- Closed
  end
  else
    match t.state with
    | Half_open -> open_ t
    | _ ->
      t.consecutive <- t.consecutive + 1;
      if t.consecutive >= t.config.threshold then open_ t
