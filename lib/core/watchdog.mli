(** Per-stage deadlines for pipeline runs.

    A pathological input — a fault-injection config that floods the
    profiler, a hints file whose injections unroll into a runaway
    kernel — turns one trial into an unbounded simulation, which is
    fatal for a campaign that is supposed to grind through hundreds of
    them. The watchdog bounds each pipeline stage (profile / inject /
    measure) in the simulation's own units: a {e cycle} deadline
    (simulated cycles, enforced by {!Aptget_machine.Machine}'s
    [max_cycles] fuse) plus a {e kernel-step} budget (executed
    instructions for simulated stages; hints processed for the pure
    injection pass). Blowing a budget raises the structured
    {!Timed_out}, which {!Pipeline.run_robust} converts into a
    degradation and {!Campaign} treats as a retryable trial failure.

    The watchdog is also where a {!Aptget_store.Crash} cycle plan
    plugs in: an armed kill-at-cycle point caps the machine exactly
    like a deadline, but firing it raises
    {!Aptget_store.Crash.Crashed} (simulated process death) instead of
    {!Timed_out} (supervised, recoverable). *)

type stage = Profile | Inject | Measure

val stage_to_string : stage -> string

type budget = {
  max_cycles : int;  (** simulated-cycle deadline; 0 = unlimited *)
  max_steps : int;
      (** kernel-step budget; 0 = unlimited. Steps are executed
          instructions for [Profile]/[Measure], hints processed for
          [Inject]. *)
}

val unlimited_budget : budget

type config = {
  profile_budget : budget;
  inject_budget : budget;
  measure_budget : budget;
}

val unlimited : config

val default : config
(** Generous defaults (1e9 cycles / 5e8 steps for the simulated
    stages, 100k hints for injection): far above any legitimate
    workload in this repo, so they only ever fire on runaways. *)

val budget : config -> stage -> budget

type timeout = {
  t_stage : stage;
  t_dimension : [ `Cycles | `Steps ];
  t_spent : int;  (** where the run was when the budget fired *)
  t_limit : int;
}

exception Timed_out of timeout

val timeout_to_string : timeout -> string

val cap :
  ?config:config ->
  ?crash:Aptget_store.Crash.t ->
  stage ->
  Aptget_machine.Machine.config ->
  Aptget_machine.Machine.config
(** Tighten a machine config to the stage budget: [max_cycles] becomes
    the minimum of the existing deadline, the budget's, and any armed
    crash cycle; [max_instructions] is lowered to the step budget when
    that is smaller. With no [config] and no [crash] this is the
    identity. *)

val run :
  ?config:config ->
  ?crash:Aptget_store.Crash.t ->
  machine:Aptget_machine.Machine.config ->
  stage ->
  (Aptget_machine.Machine.config -> 'a) ->
  'a
(** [run ~machine stage f] calls [f] with the capped machine config
    and translates the machine's fuses back into watchdog terms:
    [Deadline_blown] at an armed crash cycle fires the crash plan
    ({!Aptget_store.Crash.Crashed}); [Deadline_blown] or [Fuse_blown]
    at a limit the watchdog imposed raises {!Timed_out}; fuses the
    caller's own config already carried are re-raised untouched. *)

val check_steps : ?config:config -> stage -> steps:int -> unit
(** Budget check for non-simulated stages (the injection pass):
    @raise Timed_out when the stage's step budget is positive and
    [steps] exceeds it. *)
