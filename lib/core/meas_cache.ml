module Machine = Aptget_machine.Machine
module Hierarchy = Aptget_cache.Hierarchy
module Inject = Aptget_passes.Inject
module Atomic_file = Aptget_store.Atomic_file
module Crc32 = Aptget_store.Crc32
module Fingerprint = Aptget_ir.Fingerprint

(* A key is its rendered string: every field that determines a
   deterministic simulation's result, '|'-separated. Collisions in the
   filename hash are caught by comparing this string on load. *)
type key = string

let render_hierarchy (h : Hierarchy.config) =
  Printf.sprintf "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%b"
    h.Hierarchy.line_bytes h.Hierarchy.l1_size h.Hierarchy.l1_assoc
    h.Hierarchy.l1_latency h.Hierarchy.l2_size h.Hierarchy.l2_assoc
    h.Hierarchy.l2_latency h.Hierarchy.llc_size h.Hierarchy.llc_assoc
    h.Hierarchy.llc_latency h.Hierarchy.dram_latency h.Hierarchy.dram_min_gap
    h.Hierarchy.mshr_capacity h.Hierarchy.hw_prefetch

let render_config (c : Machine.config) =
  let core =
    match c.Machine.core with
    | Machine.Blocking -> "blocking"
    | Machine.Stall_on_use { window } -> Printf.sprintf "sou-%d" window
  in
  Printf.sprintf "%s;%d;%d;%s"
    (render_hierarchy c.Machine.hierarchy)
    c.Machine.max_instructions c.Machine.max_cycles core

let key ?(namespace = "") ~variant ~workload ~program ~config ?(options = "") () =
  String.concat "|"
    [
      "v2";
      namespace;
      variant;
      workload;
      Fingerprint.hex program;
      render_config config;
      options;
    ]

let dir_from_env () =
  match Sys.getenv_opt "APTGET_CACHE" with
  | Some d when String.trim d <> "" -> Some d
  | _ -> None

let path_of ~dir k = Filename.concat dir ("m-" ^ Crc32.hex (Crc32.string k) ^ ".meas")

(* ------------------------------------------------------------------ *)
(* Record rendering                                                    *)
(* ------------------------------------------------------------------ *)

let magic = "aptget-meas v1"

let render_counters (c : Hierarchy.counters) =
  Printf.sprintf "%d %d %d %d %d %d %d %d %d %d %d %d %d %d %d %d"
    c.Hierarchy.demand_loads c.Hierarchy.hits_l1 c.Hierarchy.hits_l2
    c.Hierarchy.hits_llc c.Hierarchy.dram_fills_demand
    c.Hierarchy.load_hit_pre_sw_pf c.Hierarchy.offcore_all_data_rd
    c.Hierarchy.offcore_demand_data_rd c.Hierarchy.sw_prefetch_issued
    c.Hierarchy.sw_prefetch_useless c.Hierarchy.sw_prefetch_dropped
    c.Hierarchy.hw_prefetch_issued c.Hierarchy.stall_cycles_l2
    c.Hierarchy.stall_cycles_llc c.Hierarchy.stall_cycles_dram
    c.Hierarchy.sw_prefetch_early_evict

let render (k : key) (m : Pipeline.measurement) =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  line "%s" magic;
  line "key %s" (String.escaped k);
  line "workload %s" (String.escaped m.Pipeline.workload);
  let o = m.Pipeline.outcome in
  line "outcome %d %d %d %d %s" o.Machine.cycles o.Machine.instructions
    o.Machine.dyn_loads o.Machine.dyn_prefetches
    (match o.Machine.ret with None -> "none" | Some r -> string_of_int r);
  line "counters %s" (render_counters o.Machine.counters);
  (match m.Pipeline.verified with
  | Ok () -> line "verified ok"
  | Error e -> line "verified error %s" (String.escaped e));
  List.iter
    (fun (i : Inject.injected) ->
      line "inj %d %d %s %d %d" i.Inject.spec.Inject.load_pc
        i.Inject.spec.Inject.distance
        (Inject.site_to_string i.Inject.spec.Inject.site)
        i.Inject.spec.Inject.sweep i.Inject.cloned_instrs)
    m.Pipeline.injected;
  List.iter
    (fun (pc, why) -> line "skip %d %s" pc (String.escaped why))
    m.Pipeline.skipped;
  (* %h round-trips the float exactly through [float_of_string]. *)
  line "wall %h" m.Pipeline.wall_seconds;
  let body = Buffer.contents b in
  body ^ Printf.sprintf "crc %s\n" (Crc32.hex (Crc32.string body))

(* ------------------------------------------------------------------ *)
(* Record parsing — any defect is a miss, never an exception.          *)
(* ------------------------------------------------------------------ *)

exception Bad

let unescape s = Scanf.unescaped s

(* Split off the first word; the rest (after one space) is the payload. *)
let cut line =
  match String.index_opt line ' ' with
  | None -> (line, "")
  | Some i ->
    (String.sub line 0 i, String.sub line (i + 1) (String.length line - i - 1))

let ints s = List.map int_of_string (String.split_on_char ' ' s)

let parse (k : key) (text : string) : Pipeline.measurement option =
  try
    (* Checksum first: everything up to the final "crc " line. *)
    let crc_at =
      match String.rindex_opt (String.trim text) '\n' with
      | None -> raise Bad
      | Some i -> i + 1
    in
    let body = String.sub text 0 crc_at in
    let crc_line = String.trim (String.sub text crc_at (String.length text - crc_at)) in
    (match cut crc_line with
    | "crc", h when Crc32.of_hex h = Some (Crc32.string body) -> ()
    | _ -> raise Bad);
    let lines = String.split_on_char '\n' (String.trim body) in
    let workload = ref "" and outcome = ref None and counters = ref None in
    let verified = ref None and wall = ref None in
    let injected = ref [] and skipped = ref [] in
    List.iteri
      (fun i line ->
        if i = 0 then (if line <> magic then raise Bad)
        else
          match cut line with
          | "key", payload -> if unescape payload <> k then raise Bad
          | "workload", payload -> workload := unescape payload
          | "outcome", payload -> (
            match String.split_on_char ' ' payload with
            | [ cy; ins; dl; dp; ret ] ->
              let ret =
                if ret = "none" then None else Some (int_of_string ret)
              in
              outcome :=
                Some
                  ( int_of_string cy,
                    int_of_string ins,
                    int_of_string dl,
                    int_of_string dp,
                    ret )
            | _ -> raise Bad)
          | "counters", payload -> (
            match ints payload with
            (* 16 ints; older 15-int records fail here and become cache
               misses, which is the safe outcome. *)
            | [ a; b; c; d; e; f; g; h; i; j; k; l; m; n; o; p ] ->
              counters :=
                Some
                  {
                    Hierarchy.demand_loads = a;
                    hits_l1 = b;
                    hits_l2 = c;
                    hits_llc = d;
                    dram_fills_demand = e;
                    load_hit_pre_sw_pf = f;
                    offcore_all_data_rd = g;
                    offcore_demand_data_rd = h;
                    sw_prefetch_issued = i;
                    sw_prefetch_useless = j;
                    sw_prefetch_dropped = k;
                    hw_prefetch_issued = l;
                    stall_cycles_l2 = m;
                    stall_cycles_llc = n;
                    stall_cycles_dram = o;
                    sw_prefetch_early_evict = p;
                  }
            | _ -> raise Bad)
          | "verified", "ok" -> verified := Some (Ok ())
          | "verified", payload -> (
            match cut payload with
            | "error", msg -> verified := Some (Error (unescape msg))
            | _ -> raise Bad)
          | "inj", payload -> (
            match String.split_on_char ' ' payload with
            | [ pc; dist; site; sweep; cloned ] ->
              let site =
                match site with
                | "inner" -> Inject.Inner
                | "outer" -> Inject.Outer
                | _ -> raise Bad
              in
              injected :=
                {
                  Inject.spec =
                    {
                      Inject.load_pc = int_of_string pc;
                      distance = int_of_string dist;
                      site;
                      sweep = int_of_string sweep;
                    };
                  cloned_instrs = int_of_string cloned;
                }
                :: !injected
            | _ -> raise Bad)
          | "skip", payload -> (
            match cut payload with
            | pc, why -> skipped := (int_of_string pc, unescape why) :: !skipped)
          | "wall", payload -> wall := Some (float_of_string payload)
          | _ -> raise Bad)
      lines;
    match (!outcome, !counters, !verified, !wall) with
    | Some (cycles, instructions, dyn_loads, dyn_prefetches, ret), Some c,
      Some verified, Some wall_seconds ->
      Some
        {
          Pipeline.workload = !workload;
          outcome =
            {
              Machine.cycles;
              instructions;
              dyn_loads;
              dyn_prefetches;
              ret;
              counters = c;
            };
          verified;
          injected = List.rev !injected;
          skipped = List.rev !skipped;
          wall_seconds;
        }
    | _ -> raise Bad
  with _ -> None

module Metrics = Aptget_obs.Metrics

let load ~dir k =
  match Atomic_file.read ~path:(path_of ~dir k) with
  | Error _ ->
    Metrics.incr "meas_cache.miss";
    None
  | Ok text -> (
    match parse k text with
    | Some m ->
      Metrics.incr "meas_cache.hit";
      Some m
    | None ->
      (* Unreadable, checksum-failed or mismatched record: distinguish
         corruption from a plain absent-file miss in the counters. *)
      Metrics.incr "meas_cache.corrupt";
      Metrics.incr "meas_cache.miss";
      None)

let store ~dir k m =
  try
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
    Atomic_file.write ~path:(path_of ~dir k) (render k m);
    Metrics.incr "meas_cache.store"
  with _ -> ()

(* ------------------------------------------------------------------ *)
(* Scoped front door: a (directory, namespace) pair. The serve daemon  *)
(* holds one scope per tenant, so two tenants never share a record     *)
(* even when their requests are bit-identical.                         *)
(* ------------------------------------------------------------------ *)

type scope = { dir : string; namespace : string }

let cached scope ~variant ~workload ~program ~config ?options f =
  let k =
    key ~namespace:scope.namespace ~variant ~workload ~program ~config
      ?options ()
  in
  match load ~dir:scope.dir k with
  | Some m -> m
  | None ->
    let m = f () in
    store ~dir:scope.dir k m;
    m
