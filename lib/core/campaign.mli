(** Supervised profiling campaigns: checkpoint/resume, retries with
    capped backoff, and per-workload circuit breakers.

    A campaign grinds a trial plan (workloads x repetitions) through
    the robust pipeline under the {!Watchdog}'s per-stage deadlines,
    journaling one checkpoint record per executed trial into a
    crash-safe {!Aptget_store.Journal}. Killing the process at any
    point — which the deterministic {!Aptget_store.Crash} plans do on
    purpose — loses at most the in-flight trial: re-running the same
    campaign against the same store resumes from the salvaged journal
    and re-executes only what has no [ok] checkpoint.

    Failure containment is layered the way a long unattended run needs
    it to be:
    - a {e trial} failure (timeout, verification failure, degraded-out
      pipeline) is retried up to [max_retries] times with a capped
      exponential backoff factor (recorded, not slept — the simulator
      has no wall clock);
    - a {e workload} that fails [breaker_threshold] consecutive trials
      trips its circuit breaker: the next [breaker_cooldown] trials of
      that workload are skipped outright, then a single half-open probe
      decides between re-closing and re-opening;
    - a simulated {e process} death ({!Aptget_store.Crash.Crashed})
      propagates out of {!run} — recovery belongs to the next run, not
      the dying one. *)

type trial = { t_id : string; t_workload : Aptget_workloads.Workload.t }

val plan :
  ?trials_per_workload:int -> Aptget_workloads.Workload.t list -> trial list
(** The cross product, in workload order: trial ids are
    ["<workload>#<n>"] with [n] in [1, trials_per_workload] (default
    1). Ids are the checkpoint keys, so the same plan resumes exactly.
    @raise Invalid_argument when [trials_per_workload < 1]. *)

type config = {
  max_retries : int;  (** extra attempts per trial (default 2) *)
  backoff_base : float;
      (** attempt [n] accrues backoff [base^(n-1)], capped at
          {!Aptget_pmu.Faults.max_backoff} (default 2.0) *)
  breaker_threshold : int;
      (** consecutive trial failures that open a workload's breaker
          (default 3) *)
  breaker_cooldown : int;
      (** trials of that workload skipped while open (default 2) *)
  watchdog : Watchdog.config;  (** per-stage deadlines for every trial *)
  faults : Aptget_pmu.Faults.config;
      (** PMU fault injection forwarded to every profiling run *)
}

val default_config : config

type breaker_state = Breaker.state = Closed | Open of int | Half_open
(** Alias of {!Breaker.state}: the campaign keeps one {!Breaker} per
    workload group; the serve daemon reuses the same policy per
    tenant. *)

val breaker_state_to_string : breaker_state -> string

type status =
  | Completed of { speedup : float }
      (** verified measurement; speedup vs the memoized baseline *)
  | Resumed of { speedup : float option }
      (** an [ok] checkpoint existed — no work spent this run *)
  | Failed of string  (** all attempts exhausted; cause of the last *)
  | Skipped of string  (** circuit breaker was open *)

type trial_result = {
  tr_id : string;
  tr_workload : string;
  tr_status : status;
  tr_attempts : int;  (** 0 for resumed/skipped trials *)
  tr_backoff : float;
      (** total capped backoff factor accrued across retries *)
}

val status_to_string : status -> string

type report = {
  c_results : trial_result list;  (** in plan order *)
  c_completed : int;
  c_resumed : int;
  c_retried : int;  (** completed trials that needed more than one attempt *)
  c_failed : int;
  c_skipped : int;
  c_breakers_opened : (string * int) list;
      (** workloads whose breaker opened, with open counts *)
  c_breaker_final : (string * string) list;
      (** final breaker state per workload touched, sorted *)
  c_store_recovery : Aptget_store.Journal.recovery;
      (** what the checkpoint journal salvage found at open *)
}

val ok : report -> bool
(** No failures, no breaker-skipped trials, no breaker ever opened —
    the campaign's exit-0 criterion ([aptget campaign] exits 3
    otherwise). *)

val run :
  ?config:config ->
  ?mconfig:Aptget_machine.Machine.config ->
  ?crash:Aptget_store.Crash.t ->
  ?jobs:int ->
  ?runner:(Aptget_workloads.Workload.t -> (float, string) result) ->
  store:string ->
  trial list ->
  report
(** Execute (or resume) a campaign against the checkpoint journal at
    [store]. The journal is opened with crash recovery first; the
    returned report's [c_store_recovery] says what survived. [crash]
    arms a deterministic kill point threaded through both the store
    writes and the supervised simulations; when it fires,
    {!Aptget_store.Crash.Crashed} escapes this function by design.

    [jobs] (default {!Aptget_util.Pool.default_jobs}) fans independent
    workloads across domains: trials are grouped by workload name —
    breaker and baseline state are per-workload, so groups share
    nothing — and journal appends are serialized through one writer.
    The report is identical to a serial run's (results in plan order,
    breaker accounting per group). An armed [crash] plan forces serial
    execution, since its deterministic kill point counts store writes
    in order.

    [runner] replaces the per-trial robust pipeline with a custom
    execution (e.g. {!Aptget_adapt}'s online loop, which owns its own
    baseline accounting and returns the online speedup): it runs under
    the same retry/breaker/checkpoint supervision, [Ok speedup]
    checkpointing the trial and [Error reason] (or any non-crash
    exception) counting as a retryable failure. *)
