(** Peak detection over histograms of loop-iteration latencies.

    The primary finder is a reimplementation of
    [scipy.signal.find_peaks_cwt] (Du et al., Bioinformatics 2006):
    compute a CWT over a range of wavelet widths, link relative maxima
    across scales into ridge lines, and keep ridges that are long and
    have sufficient signal-to-noise ratio. The paper uses exactly this
    routine to locate the per-memory-level latency peaks (§3.4).

    A naive single-scale finder is also exported for the ablation bench
    (DESIGN.md, "Peak detection"). *)

val relative_maxima : ?order:int -> float array -> int list
(** Indices [i] such that [xs.(i)] is strictly greater than all
    neighbours within [order] positions (default 1), scipy's
    [argrelmax] with clipped boundaries. *)

val find_peaks_cwt :
  ?widths:float array ->
  ?min_snr:float ->
  ?min_length_frac:float ->
  ?gap_thresh:int ->
  float array ->
  int list
(** [find_peaks_cwt signal] returns the indices of detected peaks in
    ascending order.

    @param widths wavelet widths to scan (default 1..16)
    @param min_snr minimum ridge SNR (default 1.0, as scipy)
    @param min_length_frac required ridge length as a fraction of the
      number of widths (default 0.25, as scipy's [len(widths)/4])
    @param gap_thresh allowed consecutive scales without a matching
      maximum before a ridge is terminated (default 2) *)

val find_peaks_naive : ?smooth:int -> ?min_prominence:float -> float array -> int list
(** Baseline finder for ablations: smooth with a moving average and
    return relative maxima whose height exceeds
    [min_prominence * max signal] (default smooth 3, prominence 0.05). *)
