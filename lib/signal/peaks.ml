let relative_maxima ?(order = 1) xs =
  let n = Array.length xs in
  let is_max i =
    let ok = ref (i >= 0 && i < n) in
    for d = 1 to order do
      let l = i - d and r = i + d in
      if l >= 0 && xs.(l) >= xs.(i) then ok := false;
      if r < n && xs.(r) >= xs.(i) then ok := false
    done;
    !ok && xs.(i) > 0.
  in
  let acc = ref [] in
  for i = n - 1 downto 0 do
    if is_max i then acc := i :: !acc
  done;
  !acc

(* A ridge line: positions of a maximum tracked across scales, from the
   largest scale (row index high) down to the smallest. *)
type ridge = {
  mutable rows : int list; (* scale indices, most recent first *)
  mutable cols : int list; (* positions, most recent first *)
  mutable gap : int;
}

let find_peaks_cwt ?widths ?(min_snr = 1.0) ?(min_length_frac = 0.25)
    ?(gap_thresh = 2) signal =
  let n = Array.length signal in
  if n = 0 then []
  else begin
    let widths =
      match widths with
      | Some w -> w
      | None -> Array.init 16 (fun i -> float_of_int (i + 1))
    in
    let mat = Wavelet.cwt ~widths signal in
    let n_scales = Array.length widths in
    (* Link ridge lines top-down (largest scale first), scipy-style. *)
    let max_distances = Array.map (fun w -> Float.max 1. (w /. 4.)) widths in
    let ridges : ridge list ref = ref [] in
    let finished : ridge list ref = ref [] in
    for row = n_scales - 1 downto 0 do
      let maxima = relative_maxima ~order:1 mat.(row) in
      let unclaimed = ref maxima in
      (* Try to extend each live ridge with the nearest maximum. *)
      List.iter
        (fun r ->
          match r.cols with
          | [] -> ()
          | last_col :: _ ->
            let dist_limit = max_distances.(row) in
            let best =
              List.fold_left
                (fun acc c ->
                  let d = abs (c - last_col) in
                  if float_of_int d <= dist_limit then
                    match acc with
                    | Some (_, bd) when bd <= d -> acc
                    | _ -> Some (c, d)
                  else acc)
                None !unclaimed
            in
            (match best with
            | Some (c, _) ->
              r.rows <- row :: r.rows;
              r.cols <- c :: r.cols;
              r.gap <- 0;
              unclaimed := List.filter (fun x -> x <> c) !unclaimed
            | None ->
              r.gap <- r.gap + 1;
              if r.gap > gap_thresh then begin
                finished := r :: !finished;
                ridges := List.filter (fun x -> x != r) !ridges
              end))
        !ridges;
      (* Unclaimed maxima start new ridges. *)
      List.iter
        (fun c -> ridges := { rows = [ row ]; cols = [ c ]; gap = 0 } :: !ridges)
        !unclaimed
    done;
    let all = !finished @ !ridges in
    (* Noise floor: per-position 10th percentile of |cwt| at the smallest
       scale over a +-window, per scipy. *)
    let row0 = Array.map abs_float mat.(0) in
    let window = max 1 (n / 20) in
    let noise_at pos =
      let lo = max 0 (pos - window) in
      let hi = min (n - 1) (pos + window) in
      let seg = Array.sub row0 lo (hi - lo + 1) in
      Array.sort Float.compare seg;
      let idx = int_of_float (0.10 *. float_of_int (Array.length seg - 1)) in
      Float.max seg.(idx) 1e-12
    in
    let min_length =
      max 1 (int_of_float (ceil (min_length_frac *. float_of_int n_scales)))
    in
    let keep r =
      let len = List.length r.rows in
      if len < min_length then None
      else begin
        (* Peak position: column at the smallest recorded scale. *)
        let rows = Array.of_list r.rows in
        let cols = Array.of_list r.cols in
        (* rows are in descending recording order: head = smallest row. *)
        let pos = cols.(0) in
        let best_strength = ref 0. in
        Array.iteri
          (fun i row ->
            let v = abs_float mat.(row).(cols.(i)) in
            if v > !best_strength then best_strength := v)
          rows;
        let snr = !best_strength /. noise_at pos in
        if snr >= min_snr then Some pos else None
      end
    in
    let peaks = List.filter_map keep all in
    List.sort_uniq compare peaks
  end

let find_peaks_naive ?(smooth = 3) ?(min_prominence = 0.05) signal =
  let smoothed = Conv.moving_average smooth signal in
  let mx = Array.fold_left max 0. smoothed in
  if mx <= 0. then []
  else
    relative_maxima ~order:1 smoothed
    |> List.filter (fun i -> smoothed.(i) >= min_prominence *. mx)
