let convolve_same signal kernel =
  let n = Array.length signal in
  let m = Array.length kernel in
  let out = Array.make n 0. in
  let half = m / 2 in
  for i = 0 to n - 1 do
    let acc = ref 0. in
    for k = 0 to m - 1 do
      let j = i + half - k in
      if j >= 0 && j < n then acc := !acc +. (signal.(j) *. kernel.(k))
    done;
    out.(i) <- !acc
  done;
  out

(* O(n) via prefix sums: window [lo, hi] sums to
   [prefix.(hi+1) -. prefix.(lo)]. The profiling signals smoothed here
   are histogram counts — integer-valued floats — for which prefix
   sums are exact, so this matches the O(n·w) per-window loop
   bit-for-bit on those inputs (pinned by the test suite). *)
let moving_average w xs =
  let n = Array.length xs in
  if w <= 1 || n = 0 then Array.copy xs
  else begin
    let half = w / 2 in
    let prefix = Array.make (n + 1) 0. in
    for i = 0 to n - 1 do
      prefix.(i + 1) <- prefix.(i) +. xs.(i)
    done;
    Array.init n (fun i ->
        let lo = max 0 (i - half) in
        let hi = min (n - 1) (i + half) in
        (prefix.(hi + 1) -. prefix.(lo)) /. float_of_int (hi - lo + 1))
  end

let gaussian_kernel ~sigma =
  if sigma <= 0. then invalid_arg "Conv.gaussian_kernel: sigma <= 0";
  let half = max 1 (int_of_float (ceil (4. *. sigma))) in
  let len = (2 * half) + 1 in
  let k =
    Array.init len (fun i ->
        let x = float_of_int (i - half) in
        exp (-.(x *. x) /. (2. *. sigma *. sigma)))
  in
  let sum = Array.fold_left ( +. ) 0. k in
  Array.map (fun v -> v /. sum) k
