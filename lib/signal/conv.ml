let convolve_same signal kernel =
  let n = Array.length signal in
  let m = Array.length kernel in
  let out = Array.make n 0. in
  let half = m / 2 in
  for i = 0 to n - 1 do
    let acc = ref 0. in
    for k = 0 to m - 1 do
      let j = i + half - k in
      if j >= 0 && j < n then acc := !acc +. (signal.(j) *. kernel.(k))
    done;
    out.(i) <- !acc
  done;
  out

let moving_average w xs =
  let n = Array.length xs in
  if w <= 1 || n = 0 then Array.copy xs
  else begin
    let half = w / 2 in
    Array.init n (fun i ->
        let lo = max 0 (i - half) in
        let hi = min (n - 1) (i + half) in
        let acc = ref 0. in
        for j = lo to hi do
          acc := !acc +. xs.(j)
        done;
        !acc /. float_of_int (hi - lo + 1))
  end

let gaussian_kernel ~sigma =
  if sigma <= 0. then invalid_arg "Conv.gaussian_kernel: sigma <= 0";
  let half = max 1 (int_of_float (ceil (4. *. sigma))) in
  let len = (2 * half) + 1 in
  let k =
    Array.init len (fun i ->
        let x = float_of_int (i - half) in
        exp (-.(x *. x) /. (2. *. sigma *. sigma)))
  in
  let sum = Array.fold_left ( +. ) 0. k in
  Array.map (fun v -> v /. sum) k
