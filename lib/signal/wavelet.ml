let pi = 4. *. atan 1.

let ricker ~points ~a =
  if points <= 0 then invalid_arg "Wavelet.ricker: points <= 0";
  if a <= 0. then invalid_arg "Wavelet.ricker: a <= 0";
  let amp = 2. /. (sqrt (3. *. a) *. (pi ** 0.25)) in
  let wsq = a *. a in
  Array.init points (fun i ->
      let x = float_of_int i -. ((float_of_int points -. 1.) /. 2.) in
      let xsq = x *. x in
      amp *. (1. -. (xsq /. wsq)) *. exp (-.xsq /. (2. *. wsq)))

let cwt ~widths signal =
  let n = Array.length signal in
  Array.map
    (fun width ->
      let points = min (int_of_float (10. *. width)) n in
      let points = max points 1 in
      let kernel = ricker ~points ~a:width in
      Conv.convolve_same signal kernel)
    widths
