(** Ricker ("Mexican hat") wavelet and continuous wavelet transform.

    Mirrors [scipy.signal.ricker] / [scipy.signal.cwt], which back the
    paper's automated peak detection (§3.4). *)

val ricker : points:int -> a:float -> float array
(** [ricker ~points ~a] samples the Ricker wavelet with width parameter
    [a] at [points] integer offsets centred on zero, using scipy's
    normalisation [2 / (sqrt(3a) * pi^(1/4))]. *)

val cwt : widths:float array -> float array -> float array array
(** [cwt ~widths signal] returns one transformed row per width:
    [row.(w).(t)] is the convolution of [signal] with a Ricker wavelet
    of width [widths.(w)] (kernel length [min (10*width) (len signal)]),
    in [mode="same"] alignment. *)
