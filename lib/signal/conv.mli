(** Discrete convolution and smoothing primitives for the CWT. *)

val convolve_same : float array -> float array -> float array
(** [convolve_same signal kernel] is the linear convolution of [signal]
    with [kernel], truncated to the length of [signal] and centred on
    the kernel midpoint (numpy's [mode="same"]). The kernel is applied
    symmetrically around each sample; out-of-range signal values are
    treated as zero. *)

val moving_average : int -> float array -> float array
(** [moving_average w xs] smooths with a centred window of width [w]
    (clamped at the edges). [w <= 1] returns a copy. *)

val gaussian_kernel : sigma:float -> float array
(** A normalised Gaussian kernel truncated at 4 sigma (odd length). *)
