(** Imperative construction of IR functions.

    The workloads build their kernels through this DSL; the [for_loop]
    combinator emits the canonical loop shape (pre-header jump, header
    with the induction phi and the bound test, body, back-edge) that the
    loop-analysis pass recognises, just as Clang emits rotated canonical
    loops for the paper's pass to consume. *)

type t

val create : name:string -> nparams:int -> t
val params : t -> Ir.operand list

val new_block : t -> Ir.label
(** Allocate an empty block (terminator defaults to [Ret None]). *)

val switch_to : t -> Ir.label -> unit
(** Subsequent emissions go to this block. *)

val current : t -> Ir.label

val nth_value : t -> what:string -> Ir.operand list -> int -> Ir.operand
(** Total positional accessor for accumulator/result lists returned by
    the structured helpers below. Out-of-range (or negative) indices
    raise [Invalid_argument] carrying the builder's function name,
    [what] and the index — never a bare [Failure "nth"]. *)

(** {2 Instructions} — each appends to the current block. *)

val binop : t -> Ir.binop -> Ir.operand -> Ir.operand -> Ir.operand
val add : t -> Ir.operand -> Ir.operand -> Ir.operand
val sub : t -> Ir.operand -> Ir.operand -> Ir.operand
val mul : t -> Ir.operand -> Ir.operand -> Ir.operand
val div : t -> Ir.operand -> Ir.operand -> Ir.operand
val rem : t -> Ir.operand -> Ir.operand -> Ir.operand
val band : t -> Ir.operand -> Ir.operand -> Ir.operand
val bxor : t -> Ir.operand -> Ir.operand -> Ir.operand
val shl : t -> Ir.operand -> Ir.operand -> Ir.operand
val shr : t -> Ir.operand -> Ir.operand -> Ir.operand
val cmp : t -> Ir.cmp_op -> Ir.operand -> Ir.operand -> Ir.operand
val select : t -> Ir.operand -> Ir.operand -> Ir.operand -> Ir.operand
val load : t -> Ir.operand -> Ir.operand
val store : t -> addr:Ir.operand -> value:Ir.operand -> unit
val prefetch : t -> Ir.operand -> unit
val work : t -> Ir.operand -> unit

(** {2 Phis and terminators} *)

val phi : t -> (Ir.label * Ir.operand) list -> Ir.operand
(** Add a phi to the current block. Incoming edges may be completed
    later with [add_incoming]. *)

val add_incoming : t -> block:Ir.label -> phi:Ir.operand -> Ir.label * Ir.operand -> unit
(** Append an incoming edge to an existing phi (identified by its
    destination operand, which must be a [Reg]). *)

val jmp : t -> Ir.label -> unit
val br : t -> Ir.operand -> Ir.label -> Ir.label -> unit
val ret : t -> Ir.operand option -> unit

(** {2 Structured helpers} *)

val for_loop :
  t ->
  from:Ir.operand ->
  bound:Ir.operand ->
  ?step:int ->
  (t -> Ir.operand -> unit) ->
  unit
(** [for_loop b ~from ~bound body] emits
    [for (iv = from; iv < bound; iv += step) body iv] in canonical
    shape and leaves the builder positioned in the exit block. [body]
    may create inner blocks/loops. Default [step] is 1. *)

val for_loop_acc :
  t ->
  from:Ir.operand ->
  bound:[ `Op of Ir.operand | `Acc of int ] ->
  ?step:int ->
  init:Ir.operand list ->
  (t -> Ir.operand -> Ir.operand list -> Ir.operand list) ->
  Ir.operand list
(** Like {!for_loop} but threading loop-carried accumulators: [init]
    seeds one phi per accumulator, the body receives the current
    accumulator values and returns the next ones, and the final values
    (the header phis, valid in the exit block) are returned.

    [bound] may reference an accumulator ([`Acc k]) — this expresses
    work-list loops such as BFS's [while (head < tail)], where the
    bound grows as the body pushes work. *)

val if_then_acc :
  t ->
  cond:Ir.operand ->
  init:Ir.operand list ->
  (t -> Ir.operand list) ->
  Ir.operand list
(** Conditional diamond: when [cond] is non-zero, run the then-branch
    (which returns one value per entry of [init]); otherwise the values
    fall through as [init]. Returns the join phis. With [init = []]
    this is a plain [if cond then ...]. *)

val finish : t -> Ir.func
(** Freeze into a function. The builder must not be reused. *)
