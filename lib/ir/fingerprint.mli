(** Structural fingerprints for programs, loops and delinquent loads.

    A profile's hints are keyed by layout PCs, and PCs are the first
    thing a recompile invalidates: inserting one instruction slides
    every later PC in the block, adding a block renumbers every PC in
    the function. The Go PGO design (PAPERS.md) treats surviving such
    drift as a first-class requirement; this module is the mechanism.
    Each load gets a fingerprint derived from {e structure} rather than
    position — the opcode skeleton of its backward address slice, the
    nesting depth and induction pattern of the loops around it — so a
    stale hint can be re-keyed onto the structurally-equivalent load of
    a changed binary ({!Aptget_profile.Remap}).

    Everything here is self-contained (its own loop detection and
    use-def walk) so fingerprints never depend on the analysis passes
    they are meant to outlive. Hashes are computed with a fixed
    polynomial rolling hash — stable across runs, OCaml versions and
    architectures, which matters because they are persisted in hints
    files. *)

type load_fp = {
  lf_pc : int;
      (** layout PC of the load in the fingerprinted function (for a
          hint loaded from a file, the hint's recorded PC) *)
  lf_depth : int;  (** loop nesting depth; 0 = not inside any loop *)
  lf_shape : int;
      (** hash of the surrounding loop chain, innermost to outermost:
          depth and induction-variable step pattern per level *)
  lf_slice : int;
      (** hash of the backward address-slice opcode skeleton (operators,
          immediates, parameter positions, phi nesting depths) *)
  lf_len : int;  (** number of skeleton tokens in the slice *)
  lf_loads : int;
      (** intermediate loads inside the slice — the indirection count
          that makes the access hardware-prefetcher-proof *)
}

type t = {
  program : int;
      (** whole-function structural hash: per-block opcode skeletons,
          phi counts and terminator kinds, in layout order *)
  loads : load_fp list;  (** every load of the function, in layout order *)
}

val fingerprint : Ir.func -> t
(** Fingerprint a function. Pure; deterministic for equal input. *)

val hex : int -> string
(** Lower-case hex rendering used by the hints-file format. *)

val similarity : load_fp -> load_fp -> float
(** Structural similarity in [0, 1]. Exactly 1.0 when slice hash, loop
    shape, depth and indirection count all agree; partial credit for
    near-misses (close slice lengths, adjacent depths) so a split or
    peeled loop still scores above the remapper's floor. [lf_pc] does
    not participate — position is what fingerprints exist to ignore. *)

val best_match : t -> load_fp -> (load_fp * float) option
(** The load of the fingerprinted program most similar to [fp], with
    its score. Ties resolve to the lowest PC. [None] only when the
    program has no loads. *)
