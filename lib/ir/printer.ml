let operand_to_string = function
  | Ir.Reg r -> Printf.sprintf "%%%d" r
  | Ir.Imm i -> string_of_int i

let binop_name = function
  | Ir.Add -> "add"
  | Ir.Sub -> "sub"
  | Ir.Mul -> "mul"
  | Ir.Div -> "div"
  | Ir.Rem -> "rem"
  | Ir.And -> "and"
  | Ir.Or -> "or"
  | Ir.Xor -> "xor"
  | Ir.Shl -> "shl"
  | Ir.Shr -> "shr"

let cmp_name = function
  | Ir.Eq -> "eq"
  | Ir.Ne -> "ne"
  | Ir.Lt -> "lt"
  | Ir.Le -> "le"
  | Ir.Gt -> "gt"
  | Ir.Ge -> "ge"

let instr_to_string (i : Ir.instr) =
  let op = operand_to_string in
  let rhs =
    match i.Ir.kind with
    | Ir.Binop (b, x, y) -> Printf.sprintf "%s %s, %s" (binop_name b) (op x) (op y)
    | Ir.Cmp (c, x, y) -> Printf.sprintf "icmp %s %s, %s" (cmp_name c) (op x) (op y)
    | Ir.Select (c, x, y) ->
      Printf.sprintf "select %s, %s, %s" (op c) (op x) (op y)
    | Ir.Load a -> Printf.sprintf "load [%s]" (op a)
    | Ir.Store (a, v) -> Printf.sprintf "store [%s], %s" (op a) (op v)
    | Ir.Prefetch a -> Printf.sprintf "prefetch [%s]" (op a)
    | Ir.Work n -> Printf.sprintf "work %s" (op n)
  in
  if Ir.defines i then Printf.sprintf "%%%d = %s" i.Ir.dst rhs else rhs

let term_to_string = function
  | Ir.Jmp l -> Printf.sprintf "jmp b%d" l
  | Ir.Br (c, t, f) ->
    Printf.sprintf "br %s, b%d, b%d" (operand_to_string c) t f
  | Ir.Ret None -> "ret"
  | Ir.Ret (Some v) -> Printf.sprintf "ret %s" (operand_to_string v)

let phi_to_string (p : Ir.phi) =
  let edges =
    List.map
      (fun (l, v) -> Printf.sprintf "[b%d: %s]" l (operand_to_string v))
      p.Ir.incoming
  in
  Printf.sprintf "%%%d = phi %s" p.Ir.phi_dst (String.concat " " edges)

let func_to_string (f : Ir.func) =
  let buf = Buffer.create 512 in
  let params =
    String.concat ", " (List.map (fun r -> Printf.sprintf "%%%d" r) f.Ir.params)
  in
  Buffer.add_string buf (Printf.sprintf "func %s(%s):\n" f.Ir.fname params);
  Array.iteri
    (fun bi (b : Ir.block) ->
      Buffer.add_string buf (Printf.sprintf "b%d:\n" bi);
      List.iter
        (fun p -> Buffer.add_string buf (Printf.sprintf "        %s\n" (phi_to_string p)))
        b.Ir.phis;
      Array.iteri
        (fun ii i ->
          Buffer.add_string buf
            (Printf.sprintf "  %5d %s\n" (Layout.pc_of_instr bi ii)
               (instr_to_string i)))
        b.Ir.instrs;
      Buffer.add_string buf
        (Printf.sprintf "  %5d %s\n" (Layout.pc_of_term bi)
           (term_to_string b.Ir.term)))
    f.Ir.blocks;
  Buffer.contents buf

let pp_func fmt f = Format.pp_print_string fmt (func_to_string f)
