type error = { where : string; what : string }

let errors (f : Ir.func) =
  let errs = ref [] in
  let err where what = errs := { where; what } :: !errs in
  let nblocks = Array.length f.Ir.blocks in
  let defined = Array.make (max 1 f.Ir.next_reg) 0 in
  let note_def where r =
    if r < 0 || r >= f.Ir.next_reg then
      err where (Printf.sprintf "register %%%d out of range" r)
    else begin
      defined.(r) <- defined.(r) + 1;
      if defined.(r) > 1 then
        err where (Printf.sprintf "register %%%d defined more than once" r)
    end
  in
  List.iter (fun r -> note_def "params" r) f.Ir.params;
  (* Definitions. *)
  Array.iteri
    (fun bi (b : Ir.block) ->
      List.iter
        (fun (p : Ir.phi) ->
          note_def (Printf.sprintf "b%d/phi %%%d" bi p.Ir.phi_dst) p.Ir.phi_dst)
        b.Ir.phis;
      Array.iteri
        (fun ii (i : Ir.instr) ->
          if Ir.defines i then note_def (Printf.sprintf "b%d/i%d" bi ii) i.Ir.dst)
        b.Ir.instrs)
    f.Ir.blocks;
  (* Uses, targets, phi well-formedness, block size. *)
  let check_use where = function
    | Ir.Imm _ -> ()
    | Ir.Reg r ->
      if r < 0 || r >= f.Ir.next_reg || defined.(r) = 0 then
        err where (Printf.sprintf "use of undefined register %%%d" r)
  in
  let check_target where l =
    if l < 0 || l >= nblocks then err where (Printf.sprintf "branch to b%d out of range" l)
  in
  if f.Ir.entry <> 0 then err "func" "entry must be block 0";
  Array.iteri
    (fun bi (b : Ir.block) ->
      if Array.length b.Ir.instrs >= Layout.term_offset then
        err (Printf.sprintf "b%d" bi) "block too large for PC layout";
      let preds = Ir.predecessors f bi in
      if bi = f.Ir.entry && b.Ir.phis <> [] then
        err (Printf.sprintf "b%d" bi) "entry block must not contain phis";
      List.iter
        (fun (p : Ir.phi) ->
          let where = Printf.sprintf "b%d/phi %%%d" bi p.Ir.phi_dst in
          let labels = List.map fst p.Ir.incoming in
          let sorted = List.sort compare labels in
          if sorted <> preds then
            err where
              (Printf.sprintf "incoming labels {%s} do not match predecessors {%s}"
                 (String.concat "," (List.map string_of_int sorted))
                 (String.concat "," (List.map string_of_int preds)));
          List.iter (fun (_, v) -> check_use where v) p.Ir.incoming)
        b.Ir.phis;
      Array.iteri
        (fun ii (i : Ir.instr) ->
          let where = Printf.sprintf "b%d/i%d" bi ii in
          List.iter (check_use where) (Ir.operands i.Ir.kind))
        b.Ir.instrs;
      let where = Printf.sprintf "b%d/term" bi in
      (match b.Ir.term with
      | Ir.Jmp l -> check_target where l
      | Ir.Br (c, t, e) ->
        check_use where c;
        check_target where t;
        check_target where e
      | Ir.Ret (Some v) -> check_use where v
      | Ir.Ret None -> ()))
    f.Ir.blocks;
  List.rev !errs

let check f =
  match errors f with
  | [] -> Ok ()
  | errs ->
    let lines =
      List.map (fun e -> Printf.sprintf "  %s: %s" e.where e.what) errs
    in
    Error
      (Printf.sprintf "IR verification failed for %s:\n%s" f.Ir.fname
         (String.concat "\n" lines))

let check_exn f =
  match check f with Ok () -> () | Error msg -> invalid_arg msg
