type load_fp = {
  lf_pc : int;
  lf_depth : int;
  lf_shape : int;
  lf_slice : int;
  lf_len : int;
  lf_loads : int;
}

type t = { program : int; loads : load_fp list }

(* ------------------------------------------------------------------ *)
(* Hashing: a fixed polynomial rolling hash over token strings. The    *)
(* stdlib's Hashtbl.hash is documented to vary between versions, and   *)
(* these hashes are persisted in hints files, so roll our own.         *)
(* ------------------------------------------------------------------ *)

let hash_seed = 0x1505

let hash_add h s =
  let h = ref h in
  String.iter (fun c -> h := ((!h * 131) + Char.code c) land max_int) s;
  (* token separator, so ["ab";"c"] <> ["a";"bc"] *)
  ((!h * 131) + 0x1f) land max_int

let hash_tokens tokens = List.fold_left hash_add hash_seed tokens
let hex = Printf.sprintf "%x"

(* ------------------------------------------------------------------ *)
(* Definitions: register -> where it is born.                          *)
(* ------------------------------------------------------------------ *)

type def =
  | Def_param of int  (* position in the parameter list *)
  | Def_phi of Ir.label
  | Def_instr of Ir.label * int

let build_defs (f : Ir.func) =
  let defs = Hashtbl.create 64 in
  List.iteri (fun i r -> Hashtbl.replace defs r (Def_param i)) f.Ir.params;
  Array.iteri
    (fun b (blk : Ir.block) ->
      List.iter
        (fun (p : Ir.phi) -> Hashtbl.replace defs p.Ir.phi_dst (Def_phi b))
        blk.Ir.phis;
      Array.iteri
        (fun i (ins : Ir.instr) ->
          if Ir.defines ins then Hashtbl.replace defs ins.Ir.dst (Def_instr (b, i)))
        blk.Ir.instrs)
    f.Ir.blocks;
  defs

(* ------------------------------------------------------------------ *)
(* Minimal loop analysis: iterative dominators, back edges, natural    *)
(* loop bodies, per-block nesting depth and per-loop induction step.   *)
(* Self-contained on purpose — fingerprints must not depend on the     *)
(* passes library whose analyses they are meant to outlive.            *)
(* ------------------------------------------------------------------ *)

module Iset = Set.Make (Int)

type loop_info = { lp_body : Iset.t; lp_step : string }

let analyze_loops (f : Ir.func) =
  let n = Array.length f.Ir.blocks in
  let succs b = Ir.successors f.Ir.blocks.(b).Ir.term in
  let preds = Array.make n [] in
  for b = 0 to n - 1 do
    List.iter (fun s -> preds.(s) <- b :: preds.(s)) (succs b)
  done;
  (* Reachability from the entry. *)
  let reachable = Array.make n false in
  let rec visit b =
    if not reachable.(b) then begin
      reachable.(b) <- true;
      List.iter visit (succs b)
    end
  in
  visit f.Ir.entry;
  (* Iterative dominator sets (functions here are small). *)
  let all = Array.to_list (Array.init n Fun.id) |> Iset.of_list in
  let dom = Array.make n all in
  dom.(f.Ir.entry) <- Iset.singleton f.Ir.entry;
  let changed = ref true in
  while !changed do
    changed := false;
    for b = 0 to n - 1 do
      if reachable.(b) && b <> f.Ir.entry then begin
        let inter =
          List.fold_left
            (fun acc p -> if reachable.(p) then Iset.inter acc dom.(p) else acc)
            all preds.(b)
        in
        let d = Iset.add b inter in
        if not (Iset.equal d dom.(b)) then begin
          dom.(b) <- d;
          changed := true
        end
      end
    done
  done;
  (* Back edges u -> h (h dominates u); group natural loops by header. *)
  let bodies = Hashtbl.create 4 in
  for u = 0 to n - 1 do
    if reachable.(u) then
      List.iter
        (fun h ->
          if Iset.mem h dom.(u) then begin
            let body = ref (Iset.singleton h) in
            let stack = ref [ u ] in
            while !stack <> [] do
              match !stack with
              | [] -> ()
              | b :: rest ->
                stack := rest;
                if not (Iset.mem b !body) then begin
                  body := Iset.add b !body;
                  List.iter (fun p -> stack := p :: !stack) preds.(b)
                end
            done;
            match Hashtbl.find_opt bodies h with
            | None -> Hashtbl.add bodies h !body
            | Some b0 -> Hashtbl.replace bodies h (Iset.union b0 !body)
          end)
        (succs u)
  done;
  (* Induction step pattern: a header phi whose loop-carried input is
     the phi plus/times a constant. *)
  let defs = build_defs f in
  let step_of header body =
    let blk = f.Ir.blocks.(header) in
    let classify (p : Ir.phi) =
      List.find_map
        (fun (from, (v : Ir.operand)) ->
          if not (Iset.mem from body) then None
          else
            match v with
            | Ir.Imm _ -> None
            | Ir.Reg u -> (
              match Hashtbl.find_opt defs u with
              | Some (Def_instr (b, i)) -> (
                match f.Ir.blocks.(b).Ir.instrs.(i).Ir.kind with
                | Ir.Binop (Ir.Add, Ir.Reg r, Ir.Imm c)
                | Ir.Binop (Ir.Add, Ir.Imm c, Ir.Reg r)
                  when r = p.Ir.phi_dst ->
                  Some (Printf.sprintf "+%d" c)
                | Ir.Binop (Ir.Sub, Ir.Reg r, Ir.Imm c) when r = p.Ir.phi_dst ->
                  Some (Printf.sprintf "+%d" (-c))
                | Ir.Binop (Ir.Mul, Ir.Reg r, Ir.Imm c)
                | Ir.Binop (Ir.Mul, Ir.Imm c, Ir.Reg r)
                  when r = p.Ir.phi_dst ->
                  Some (Printf.sprintf "*%d" c)
                | Ir.Binop (Ir.Shl, Ir.Reg r, Ir.Imm c) when r = p.Ir.phi_dst ->
                  Some (Printf.sprintf "*%d" (1 lsl c))
                | _ -> None)
              | _ -> None))
        p.Ir.incoming
    in
    match List.find_map classify blk.Ir.phis with
    | Some s -> s
    | None -> "?"
  in
  let loops =
    Hashtbl.fold
      (fun h body acc -> { lp_body = body; lp_step = step_of h body } :: acc)
      bodies []
  in
  (* Innermost-first chain per block, ordered by body size (an enclosing
     loop's body strictly contains the inner one's). *)
  let chain b =
    List.filter (fun l -> Iset.mem b l.lp_body) loops
    |> List.sort (fun a b' -> compare (Iset.cardinal a.lp_body) (Iset.cardinal b'.lp_body))
  in
  chain

(* ------------------------------------------------------------------ *)
(* Slice skeleton: backward walk from the load's address operand,      *)
(* emitting structural tokens. Terminates at phis (tagged with their   *)
(* defining block's loop depth), parameters (tagged with position) and *)
(* immediates; recurses through intermediate loads.                    *)
(* ------------------------------------------------------------------ *)

let binop_name = function
  | Ir.Add -> "add"
  | Ir.Sub -> "sub"
  | Ir.Mul -> "mul"
  | Ir.Div -> "div"
  | Ir.Rem -> "rem"
  | Ir.And -> "and"
  | Ir.Or -> "or"
  | Ir.Xor -> "xor"
  | Ir.Shl -> "shl"
  | Ir.Shr -> "shr"

let cmp_name = function
  | Ir.Eq -> "eq"
  | Ir.Ne -> "ne"
  | Ir.Lt -> "lt"
  | Ir.Le -> "le"
  | Ir.Gt -> "gt"
  | Ir.Ge -> "ge"

let max_walk_depth = 64

let slice_tokens (f : Ir.func) defs depth_of_block op =
  let tokens = ref [] in
  let loads = ref 0 in
  let emit s = tokens := s :: !tokens in
  let rec walk fuel (op : Ir.operand) =
    if fuel <= 0 then emit "deep"
    else
      match op with
      | Ir.Imm n -> emit (Printf.sprintf "i%d" n)
      | Ir.Reg r -> (
        match Hashtbl.find_opt defs r with
        | None -> emit "undef"
        | Some (Def_param k) -> emit (Printf.sprintf "p%d" k)
        | Some (Def_phi b) -> emit (Printf.sprintf "phi@%d" (depth_of_block b))
        | Some (Def_instr (b, i)) -> (
          match f.Ir.blocks.(b).Ir.instrs.(i).Ir.kind with
          | Ir.Binop (bop, a, b') ->
            emit (binop_name bop);
            walk (fuel - 1) a;
            walk (fuel - 1) b'
          | Ir.Cmp (c, a, b') ->
            emit (cmp_name c);
            walk (fuel - 1) a;
            walk (fuel - 1) b'
          | Ir.Select (c, a, b') ->
            emit "sel";
            walk (fuel - 1) c;
            walk (fuel - 1) a;
            walk (fuel - 1) b'
          | Ir.Load a ->
            incr loads;
            emit "ld";
            walk (fuel - 1) a
          | Ir.Store _ | Ir.Prefetch _ | Ir.Work _ -> emit "effect"))
  in
  walk max_walk_depth op;
  let tokens = List.rev !tokens in
  (hash_tokens tokens, List.length tokens, !loads)

(* ------------------------------------------------------------------ *)

let instr_token (ins : Ir.instr) =
  match ins.Ir.kind with
  | Ir.Binop (b, _, _) -> binop_name b
  | Ir.Cmp (c, _, _) -> "cmp." ^ cmp_name c
  | Ir.Select _ -> "sel"
  | Ir.Load _ -> "ld"
  | Ir.Store _ -> "st"
  | Ir.Prefetch _ -> "pf"
  | Ir.Work _ -> "work"

let term_token = function
  | Ir.Jmp _ -> "jmp"
  | Ir.Br _ -> "br"
  | Ir.Ret _ -> "ret"

let program_hash (f : Ir.func) =
  let h = ref hash_seed in
  Array.iter
    (fun (blk : Ir.block) ->
      h := hash_add !h (Printf.sprintf "b:%d" (List.length blk.Ir.phis));
      Array.iter (fun ins -> h := hash_add !h (instr_token ins)) blk.Ir.instrs;
      h := hash_add !h (term_token blk.Ir.term))
    f.Ir.blocks;
  !h

let fingerprint (f : Ir.func) =
  let defs = build_defs f in
  let chain = analyze_loops f in
  let depth_of_block b = List.length (chain b) in
  (* Innermost-to-outermost induction patterns; the chain position
     encodes nesting, and body sizes are deliberately excluded so a
     split loop body keeps its shape. *)
  let shape_of_block b =
    hash_tokens (List.map (fun l -> "L" ^ l.lp_step) (chain b))
  in
  let loads = ref [] in
  Array.iteri
    (fun b (blk : Ir.block) ->
      Array.iteri
        (fun i (ins : Ir.instr) ->
          match ins.Ir.kind with
          | Ir.Load addr ->
            let slice, len, inner_loads = slice_tokens f defs depth_of_block addr in
            loads :=
              {
                lf_pc = Layout.pc_of_instr b i;
                lf_depth = depth_of_block b;
                lf_shape = shape_of_block b;
                lf_slice = slice;
                lf_len = len;
                lf_loads = inner_loads;
              }
              :: !loads
          | _ -> ())
        blk.Ir.instrs)
    f.Ir.blocks;
  { program = program_hash f; loads = List.rev !loads }

let similarity a b =
  let s = ref 0. in
  if a.lf_slice = b.lf_slice then s := !s +. 0.55
  else begin
    (* Different slice: partial credit for comparable size, so an edit
       inside the slice degrades confidence instead of zeroing it. *)
    let d = abs (a.lf_len - b.lf_len) in
    let m = max 1 (max a.lf_len b.lf_len) in
    s := !s +. (0.25 *. (1. -. (float_of_int d /. float_of_int m)))
  end;
  if a.lf_shape = b.lf_shape then s := !s +. 0.20;
  if a.lf_depth = b.lf_depth then s := !s +. 0.15
  else
    s :=
      !s +. (0.075 /. (1. +. float_of_int (abs (a.lf_depth - b.lf_depth))));
  if a.lf_loads = b.lf_loads then s := !s +. 0.10;
  !s

let best_match t fp =
  List.fold_left
    (fun best cand ->
      let score = similarity fp cand in
      match best with
      | None -> Some (cand, score)
      | Some (_, s) when score > s -> Some (cand, score)
      | Some _ -> best)
    None t.loads
