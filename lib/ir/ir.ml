type reg = int
type label = int
type binop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr
type cmp_op = Eq | Ne | Lt | Le | Gt | Ge
type operand = Reg of reg | Imm of int

type instr_kind =
  | Binop of binop * operand * operand
  | Cmp of cmp_op * operand * operand
  | Select of operand * operand * operand
  | Load of operand
  | Store of operand * operand
  | Prefetch of operand
  | Work of operand

type instr = { dst : reg; kind : instr_kind }
type phi = { phi_dst : reg; incoming : (label * operand) list }

type terminator =
  | Jmp of label
  | Br of operand * label * label
  | Ret of operand option

type block = {
  mutable phis : phi list;
  mutable instrs : instr array;
  mutable term : terminator;
}

type func = {
  fname : string;
  params : reg list;
  entry : label;
  mutable blocks : block array;
  mutable next_reg : int;
}

let no_dst = -1

let fresh_reg f =
  let r = f.next_reg in
  f.next_reg <- r + 1;
  r

let defines i = i.dst <> no_dst

let successors = function
  | Jmp l -> [ l ]
  | Br (_, t, f) -> if t = f then [ t ] else [ t; f ]
  | Ret _ -> []

let predecessors f label =
  let preds = ref [] in
  Array.iteri
    (fun i b ->
      if List.mem label (successors b.term) then preds := i :: !preds)
    f.blocks;
  List.sort compare !preds

let instr_count f =
  Array.fold_left (fun acc b -> acc + Array.length b.instrs) 0 f.blocks

let map_operands g = function
  | Binop (op, a, b) -> Binop (op, g a, g b)
  | Cmp (op, a, b) -> Cmp (op, g a, g b)
  | Select (c, a, b) -> Select (g c, g a, g b)
  | Load a -> Load (g a)
  | Store (a, v) -> Store (g a, g v)
  | Prefetch a -> Prefetch (g a)
  | Work n -> Work (g n)

let operands = function
  | Binop (_, a, b) | Cmp (_, a, b) | Store (a, b) -> [ a; b ]
  | Select (c, a, b) -> [ c; a; b ]
  | Load a | Prefetch a | Work a -> [ a ]

let copy_block b =
  { phis = b.phis; instrs = Array.copy b.instrs; term = b.term }

let copy_func f =
  {
    fname = f.fname;
    params = f.params;
    entry = f.entry;
    blocks = Array.map copy_block f.blocks;
    next_reg = f.next_reg;
  }
