type phi_moves = {
  pm_dsts : int array;
  pm_preds : int array;
  pm_rows : Ir.operand array array;
}

type block_plan = {
  bp_phis : phi_moves;
  bp_instrs : Ir.instr array;
  bp_term : Ir.terminator;
}

type t = {
  cp_entry : int;
  cp_blocks : block_plan array;
  cp_max_phis : int;
}

let no_phis = { pm_dsts = [||]; pm_preds = [||]; pm_rows = [||] }

(* Flatten a block's phi list into one operand row per predecessor
   that every phi has an edge from. A predecessor missing from some
   phi gets no row; arriving from it raises {!missing_phi_edge}, the
   same error the per-entry list walk used to produce. *)
let phi_moves_of_block (blk : Ir.block) =
  match blk.Ir.phis with
  | [] -> no_phis
  | phis ->
    let preds =
      List.concat_map (fun (p : Ir.phi) -> List.map fst p.Ir.incoming) phis
      |> List.sort_uniq compare
    in
    let rows =
      List.filter_map
        (fun pred ->
          match
            List.map
              (fun (p : Ir.phi) -> List.assoc pred p.Ir.incoming)
              phis
          with
          | ops -> Some (pred, Array.of_list ops)
          | exception Not_found -> None)
        preds
    in
    {
      pm_dsts = Array.of_list (List.map (fun p -> p.Ir.phi_dst) phis);
      pm_preds = Array.of_list (List.map fst rows);
      pm_rows = Array.of_list (List.map snd rows);
    }

let plan (f : Ir.func) =
  let blocks =
    Array.map
      (fun (blk : Ir.block) ->
        {
          bp_phis = phi_moves_of_block blk;
          bp_instrs = blk.Ir.instrs;
          bp_term = blk.Ir.term;
        })
      f.Ir.blocks
  in
  let max_phis =
    Array.fold_left
      (fun m bp -> max m (Array.length bp.bp_phis.pm_dsts))
      0 blocks
  in
  { cp_entry = f.Ir.entry; cp_blocks = blocks; cp_max_phis = max_phis }

let[@inline] phi_row pm prev =
  let preds = pm.pm_preds in
  let n = Array.length preds in
  let row = ref (-1) in
  let i = ref 0 in
  while !row < 0 && !i < n do
    if Array.unsafe_get preds !i = prev then row := !i;
    incr i
  done;
  !row

(* Cold path: report the first phi (in program order) with no edge from
   [prev] — byte-identical to the message the per-entry walk raised. *)
let missing_phi_edge (f : Ir.func) ~cur ~prev =
  let p =
    List.find
      (fun (p : Ir.phi) -> not (List.mem_assoc prev p.Ir.incoming))
      f.Ir.blocks.(cur).Ir.phis
  in
  invalid_arg
    (Printf.sprintf "Machine: phi %%%d in b%d has no edge from b%d"
       p.Ir.phi_dst cur prev)

(* ------------------------------------------------------------------ *)
(* Superblock traces from LBR-shaped branch samples.                   *)
(* ------------------------------------------------------------------ *)

type trace = { tr_blocks : int array }

let edge_counts_of_branches ~nblocks pairs =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (branch_pc, target_pc) ->
      let src = Layout.block_of_pc branch_pc in
      let dst = Layout.block_of_pc target_pc in
      if
        src >= 0 && src < nblocks && dst >= 0 && dst < nblocks
        && Layout.slot_of_pc branch_pc = `Term
        && Layout.slot_of_pc target_pc = `Instr 0
      then
        Hashtbl.replace tbl (src, dst)
          (1 + Option.value ~default:0 (Hashtbl.find_opt tbl (src, dst))))
    pairs;
  Hashtbl.fold (fun e n acc -> (e, n) :: acc) tbl []
  |> List.sort (fun ((e1 : int * int), n1) (e2, n2) ->
         if n1 <> n2 then compare n2 n1 else compare e1 e2)

let superblocks ?(max_len = 16) ?(min_count = 4) ~nblocks edges =
  (* Hottest successor per block; ties go to the smaller target label
     because [edges] is sorted that way and only the first sighting of
     each source wins. *)
  let hottest = Array.make (max 1 nblocks) (-1) in
  let heat = Array.make (max 1 nblocks) 0 in
  List.iter
    (fun ((src, dst), n) ->
      if src >= 0 && src < nblocks && hottest.(src) < 0 && n >= min_count
      then begin
        hottest.(src) <- dst;
        heat.(src) <- n
      end)
    edges;
  let traces = ref [] in
  for head = nblocks - 1 downto 0 do
    if hottest.(head) >= 0 then begin
      let seen = Hashtbl.create 8 in
      Hashtbl.replace seen head ();
      let rev = ref [ head ] in
      let len = ref 1 in
      let cur = ref head in
      let stop = ref false in
      while not !stop do
        let next = hottest.(!cur) in
        if next < 0 || Hashtbl.mem seen next || !len >= max_len then
          stop := true
        else begin
          Hashtbl.replace seen next ();
          rev := next :: !rev;
          incr len;
          cur := next
        end
      done;
      if !len >= 2 then
        traces := { tr_blocks = Array.of_list (List.rev !rev) } :: !traces
    end
  done;
  !traces
