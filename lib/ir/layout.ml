let block_stride = 1024
let term_offset = 1000
let pc_of_instr b i = (b * block_stride) + i
let pc_of_term b = (b * block_stride) + term_offset
let block_of_pc pc = pc / block_stride

let slot_of_pc pc =
  let off = pc mod block_stride in
  if off = term_offset then `Term else `Instr off

let instr_at (f : Ir.func) pc =
  let b = block_of_pc pc in
  if b < 0 || b >= Array.length f.Ir.blocks then None
  else
    match slot_of_pc pc with
    | `Term -> None
    | `Instr i ->
      let blk = f.Ir.blocks.(b) in
      if i < Array.length blk.Ir.instrs then Some blk.Ir.instrs.(i) else None

let pcs_of_loads (f : Ir.func) =
  let acc = ref [] in
  Array.iteri
    (fun b blk ->
      Array.iteri
        (fun i (instr : Ir.instr) ->
          match instr.Ir.kind with
          | Ir.Load _ -> acc := (pc_of_instr b i, instr) :: !acc
          | _ -> ())
        blk.Ir.instrs)
    f.Ir.blocks;
  List.rev !acc
