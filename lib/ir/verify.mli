(** Structural well-formedness checks for IR functions.

    Run by tests and by the injection passes after rewriting, in the
    spirit of LLVM's verifier: a pass that produces ill-formed IR is a
    bug we want to catch at the source. *)

type error = {
  where : string;  (** "b3/i7", "b2/phi %5", "b1/term" *)
  what : string;
}

val errors : Ir.func -> error list
(** All violations found:
    - branch / jump targets in range;
    - every used register defined (by a param, phi, or instruction);
    - registers defined at most once (SSA);
    - phi incoming labels are exactly the block's predecessors;
    - block instruction counts below {!Layout.term_offset};
    - entry block has no phis. *)

val check : Ir.func -> (unit, string) result
(** [Ok ()] or a rendered multi-line error report. *)

val check_exn : Ir.func -> unit
(** Raises [Invalid_argument] with the report on failure. *)
