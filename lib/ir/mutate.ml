let shift_term d = function
  | Ir.Jmp l -> Ir.Jmp (l + d)
  | Ir.Br (c, t, f) -> Ir.Br (c, t + d, f + d)
  | Ir.Ret v -> Ir.Ret v

let pad_entry (f : Ir.func) =
  let f = Ir.copy_func f in
  let shifted =
    Array.map
      (fun (blk : Ir.block) ->
        {
          Ir.phis =
            List.map
              (fun (p : Ir.phi) ->
                {
                  p with
                  Ir.incoming =
                    List.map (fun (l, v) -> (l + 1, v)) p.Ir.incoming;
                })
              blk.Ir.phis;
          instrs = blk.Ir.instrs;
          term = shift_term 1 blk.Ir.term;
        })
      f.Ir.blocks
  in
  let pad =
    { Ir.phis = []; instrs = [||]; term = Ir.Jmp (f.Ir.entry + 1) }
  in
  { f with Ir.entry = 0; blocks = Array.append [| pad |] shifted }

let dead_instr (f : Ir.func) =
  { Ir.dst = Ir.fresh_reg f; kind = Ir.Binop (Ir.Add, Ir.Imm 0, Ir.Imm 0) }

let insert_dead (f : Ir.func) ~block ~index ~count =
  let f = Ir.copy_func f in
  let blk = f.Ir.blocks.(block) in
  let n = Array.length blk.Ir.instrs in
  let index = max 0 (min index n) in
  let pad = Array.init count (fun _ -> dead_instr f) in
  blk.Ir.instrs <-
    Array.concat
      [ Array.sub blk.Ir.instrs 0 index; pad;
        Array.sub blk.Ir.instrs index (n - index) ];
  f

let split_block (f : Ir.func) ~block ~at =
  let f = Ir.copy_func f in
  let blk = f.Ir.blocks.(block) in
  let n = Array.length blk.Ir.instrs in
  let at = max 0 (min at n) in
  let fresh = Array.length f.Ir.blocks in
  let tail =
    {
      Ir.phis = [];
      instrs = Array.sub blk.Ir.instrs at (n - at);
      term = blk.Ir.term;
    }
  in
  (* The split block's old out-edges now originate from the tail. *)
  List.iter
    (fun s ->
      let sb = f.Ir.blocks.(s) in
      sb.Ir.phis <-
        List.map
          (fun (p : Ir.phi) ->
            {
              p with
              Ir.incoming =
                List.map
                  (fun (l, v) -> ((if l = block then fresh else l), v))
                  p.Ir.incoming;
            })
          sb.Ir.phis)
    (Ir.successors blk.Ir.term);
  blk.Ir.instrs <- Array.sub blk.Ir.instrs 0 at;
  blk.Ir.term <- Ir.Jmp fresh;
  { f with Ir.blocks = Array.append f.Ir.blocks [| tail |] }

let split_all ?(min_instrs = 4) (f : Ir.func) =
  let original = Array.length f.Ir.blocks in
  let g = ref (Ir.copy_func f) in
  for b = 0 to original - 1 do
    let n = Array.length !g.Ir.blocks.(b).Ir.instrs in
    if n >= min_instrs then g := split_block !g ~block:b ~at:(n / 2)
  done;
  !g

let collide_load (f : Ir.func) ~pc =
  let b = Layout.block_of_pc pc in
  if b < 0 || b >= Array.length f.Ir.blocks then None
  else
    match Layout.slot_of_pc pc with
    | `Term -> None
    | `Instr i ->
      let blk = f.Ir.blocks.(b) in
      let is_load k =
        k < Array.length blk.Ir.instrs
        && match blk.Ir.instrs.(k).Ir.kind with Ir.Load _ -> true | _ -> false
      in
      if not (is_load i) then None
      else
        let rec earlier k = if k < 0 then None else if is_load k then Some k else earlier (k - 1) in
        (match earlier (i - 1) with
        | None -> None
        | Some j ->
          (* Pad above the earlier load so it lands exactly on [pc]. *)
          Some (insert_dead f ~block:b ~index:j ~count:(i - j)))
