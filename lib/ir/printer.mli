(** Textual rendering of IR functions (LLVM-ish), for debugging, the
    examples, and golden tests. *)

val operand_to_string : Ir.operand -> string
val instr_to_string : Ir.instr -> string
val term_to_string : Ir.terminator -> string

val func_to_string : Ir.func -> string
(** Whole function, one block per paragraph, with layout PCs in the
    margin. *)

val pp_func : Format.formatter -> Ir.func -> unit
