(** Execution-plan builder: the one-time pass both simulator engines
    share before running a function.

    A {!t} pre-resolves everything about a function that does not
    depend on runtime state: per-block phi moves are flattened into one
    operand row per predecessor (phi semantics are parallel, so rows
    are read in full before any register is written), and instruction
    arrays and terminators are laid out for straight dispatch. The
    compiled engine additionally lowers each block of a plan into an
    array of OCaml closures; the interpreter walks the same plan
    structurally.

    The superblock tier stitches {e traces} — straight-line block
    sequences along hot control-flow edges — from branch samples
    recorded in the LBR ring (the same ring the profiler reads:
    the simulator dogfoods its own profile). A trace never changes
    semantics; it only lets an engine pre-select each block's phi row
    for the predecessor it expects, falling back to ordinary dispatch
    through a side exit when a guard fails. *)

type phi_moves = {
  pm_dsts : int array;  (** one destination register per phi *)
  pm_preds : int array;  (** predecessors every phi has an edge from *)
  pm_rows : Ir.operand array array;  (** row per pred, column per phi *)
}

type block_plan = {
  bp_phis : phi_moves;
  bp_instrs : Ir.instr array;
  bp_term : Ir.terminator;
}

type t = {
  cp_entry : int;
  cp_blocks : block_plan array;
  cp_max_phis : int;  (** widest phi row, for scratch sizing *)
}

val no_phis : phi_moves
(** The empty plan shared by phi-free blocks. *)

val plan : Ir.func -> t
(** Build the execution plan. O(function size); no runtime state. *)

val phi_row : phi_moves -> int -> int
(** [phi_row pm prev] is the row index holding [prev]'s operands, or
    -1 when some phi has no edge from [prev]. *)

val missing_phi_edge : Ir.func -> cur:int -> prev:int -> 'a
(** Cold path: raise [Invalid_argument] naming the first phi (in
    program order) of block [cur] with no edge from [prev]. *)

type trace = { tr_blocks : int array }
(** A superblock: [tr_blocks.(0)] is the head; each later element is
    the expected successor of the one before it. Always >= 2 blocks. *)

val edge_counts_of_branches :
  nblocks:int -> (int * int) list -> ((int * int) * int) list
(** Map [(branch_pc, target_pc)] samples — e.g. the entries of an LBR
    ring snapshot — to block-edge occurrence counts via {!Layout}.
    Samples whose PCs do not decode to a terminator-to-block-entry
    edge inside [nblocks] blocks are dropped. Sorted by descending
    count, then ascending edge, so the result is deterministic. *)

val superblocks :
  ?max_len:int ->
  ?min_count:int ->
  nblocks:int ->
  ((int * int) * int) list ->
  trace list
(** Greedy trace stitching: from every block whose hottest outgoing
    edge reaches [min_count] (default 4) samples, follow hottest
    successors until the heat runs out, a block repeats, or [max_len]
    (default 16) blocks are strung. Ties break toward the smaller
    block label; only traces of >= 2 blocks are returned, at most one
    per head block, heads ascending. *)
