(** A small SSA-style intermediate representation.

    This plays the role LLVM IR plays in the paper: workload kernels are
    expressed in it, the analysis passes (loop detection, induction
    variables, load-slice extraction) run over it, and the prefetch
    injection passes rewrite it. The timing simulator interprets it.

    Design notes:
    - values are 63-bit integers ([int]); addresses are word indices
      into {!Aptget_mem.Memory};
    - each block carries phi nodes, a straight-line instruction array,
      and one terminator;
    - instructions are addressed by a *program counter* assigned by
      {!Layout}; PCs are what the simulated LBR and PEBS report, and
      what profile hints are keyed by (the AutoFDO analog). *)

type reg = int
(** Virtual register index, dense from 0 within a function. *)

type label = int
(** Block index within a function. *)

type binop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr

type cmp_op = Eq | Ne | Lt | Le | Gt | Ge

type operand =
  | Reg of reg
  | Imm of int

type instr_kind =
  | Binop of binop * operand * operand
  | Cmp of cmp_op * operand * operand    (** result is 0 or 1 *)
  | Select of operand * operand * operand
      (** [Select (cond, a, b)] = if cond <> 0 then a else b *)
  | Load of operand                      (** word address *)
  | Store of operand * operand           (** address, value *)
  | Prefetch of operand                  (** non-binding hint, address *)
  | Work of operand                      (** consume N cycles of ALU work *)

type instr = {
  dst : reg;  (** -1 when the instruction produces no value *)
  kind : instr_kind;
}

type phi = {
  phi_dst : reg;
  incoming : (label * operand) list;  (** value per predecessor *)
}

type terminator =
  | Jmp of label
  | Br of operand * label * label  (** cond <> 0 -> first target *)
  | Ret of operand option

type block = {
  mutable phis : phi list;
  mutable instrs : instr array;
  mutable term : terminator;
}

type func = {
  fname : string;
  params : reg list;   (** registers bound to arguments on entry *)
  entry : label;
  mutable blocks : block array;
  mutable next_reg : int;
}

val no_dst : reg
(** The sentinel (-1) used as [dst] of value-less instructions. *)

val fresh_reg : func -> reg
(** Allocate a new virtual register in [f]. *)

val defines : instr -> bool
(** Whether the instruction writes a register. *)

val successors : terminator -> label list
(** Targets of a terminator (deduplicated, in order). *)

val predecessors : func -> label -> label list
(** Blocks with an edge into [label], ascending. *)

val instr_count : func -> int
(** Static instructions (phis and terminators excluded). *)

val map_operands : (operand -> operand) -> instr_kind -> instr_kind
(** Rewrite every operand of an instruction. *)

val operands : instr_kind -> operand list
(** The operands of an instruction, in syntactic order. *)

val copy_func : func -> func
(** Deep copy, so passes can transform without mutating the original. *)
