type proto_block = {
  mutable p_phis : Ir.phi list;   (* reversed *)
  mutable p_instrs : Ir.instr list; (* reversed *)
  mutable p_term : Ir.terminator;
  mutable p_sealed : bool;
}

type t = {
  name : string;
  mutable blocks : proto_block array;
  mutable nblocks : int;
  mutable cur : Ir.label;
  mutable next_reg : int;
  params : Ir.reg list;
  mutable finished : bool;
}

let fresh_block () =
  { p_phis = []; p_instrs = []; p_term = Ir.Ret None; p_sealed = false }

let create ~name ~nparams =
  let params = List.init nparams (fun i -> i) in
  let b =
    {
      name;
      blocks = Array.init 8 (fun _ -> fresh_block ());
      nblocks = 1;
      cur = 0;
      next_reg = nparams;
      params;
      finished = false;
    }
  in
  b

let params t = List.map (fun r -> Ir.Reg r) t.params

(* Total positional accessor over a value list: a builder spec that
   indexes past the end fails with the function name, the label and
   the index — not a bare [Failure "nth"] with no trail back to the
   malformed spec. *)
let nth_value t ~what values k =
  match if k < 0 then None else List.nth_opt values k with
  | Some v -> v
  | None ->
    invalid_arg
      (Printf.sprintf "Builder.%s: %s index %d out of range (have %d)" t.name
         what k (List.length values))

let new_block t =
  if t.nblocks = Array.length t.blocks then begin
    let bigger = Array.init (2 * t.nblocks) (fun _ -> fresh_block ()) in
    Array.blit t.blocks 0 bigger 0 t.nblocks;
    t.blocks <- bigger
  end;
  let l = t.nblocks in
  t.blocks.(l) <- fresh_block ();
  t.nblocks <- l + 1;
  l

let switch_to t l =
  if l < 0 || l >= t.nblocks then invalid_arg "Builder.switch_to: bad label";
  t.cur <- l

let current t = t.cur

let fresh_reg t =
  let r = t.next_reg in
  t.next_reg <- r + 1;
  r

let emit t kind ~defines =
  let blk = t.blocks.(t.cur) in
  if blk.p_sealed then
    invalid_arg "Builder: emitting into a terminated block";
  let dst = if defines then fresh_reg t else Ir.no_dst in
  blk.p_instrs <- { Ir.dst; kind } :: blk.p_instrs;
  if defines then Ir.Reg dst else Ir.Imm 0

let binop t op a b = emit t (Ir.Binop (op, a, b)) ~defines:true
let add t a b = binop t Ir.Add a b
let sub t a b = binop t Ir.Sub a b
let mul t a b = binop t Ir.Mul a b
let div t a b = binop t Ir.Div a b
let rem t a b = binop t Ir.Rem a b
let band t a b = binop t Ir.And a b
let bxor t a b = binop t Ir.Xor a b
let shl t a b = binop t Ir.Shl a b
let shr t a b = binop t Ir.Shr a b
let cmp t op a b = emit t (Ir.Cmp (op, a, b)) ~defines:true
let select t c a b = emit t (Ir.Select (c, a, b)) ~defines:true
let load t a = emit t (Ir.Load a) ~defines:true
let store t ~addr ~value = ignore (emit t (Ir.Store (addr, value)) ~defines:false)
let prefetch t a = ignore (emit t (Ir.Prefetch a) ~defines:false)
let work t n = ignore (emit t (Ir.Work n) ~defines:false)

let phi t incoming =
  let blk = t.blocks.(t.cur) in
  let dst = fresh_reg t in
  blk.p_phis <- { Ir.phi_dst = dst; incoming } :: blk.p_phis;
  Ir.Reg dst

let add_incoming t ~block ~phi edge =
  let dst = match phi with Ir.Reg r -> r | Ir.Imm _ -> invalid_arg "add_incoming" in
  let blk = t.blocks.(block) in
  blk.p_phis <-
    List.map
      (fun (p : Ir.phi) ->
        if p.Ir.phi_dst = dst then { p with Ir.incoming = p.Ir.incoming @ [ edge ] }
        else p)
      blk.p_phis

let set_term t term =
  let blk = t.blocks.(t.cur) in
  if blk.p_sealed then invalid_arg "Builder: block already terminated";
  blk.p_term <- term;
  blk.p_sealed <- true

let jmp t l = set_term t (Ir.Jmp l)
let br t c l1 l2 = set_term t (Ir.Br (c, l1, l2))
let ret t v = set_term t (Ir.Ret v)

let for_loop t ~from ~bound ?(step = 1) body =
  let pred = current t in
  let header = new_block t in
  let body_block = new_block t in
  let exit = new_block t in
  jmp t header;
  switch_to t header;
  let iv = phi t [ (pred, from) ] in
  let cond = cmp t Ir.Lt iv bound in
  br t cond body_block exit;
  switch_to t body_block;
  body t iv;
  (* the body may have moved the current block; the back edge leaves
     from wherever it ended. *)
  let latch = current t in
  let iv_next = add t iv (Ir.Imm step) in
  jmp t header;
  add_incoming t ~block:header ~phi:iv (latch, iv_next);
  switch_to t exit

let for_loop_acc t ~from ~bound ?(step = 1) ~init body =
  let pred = current t in
  let header = new_block t in
  let body_block = new_block t in
  let exit = new_block t in
  jmp t header;
  switch_to t header;
  let iv = phi t [ (pred, from) ] in
  let accs = List.map (fun i -> phi t [ (pred, i) ]) init in
  let bound_op =
    match bound with
    | `Op o -> o
    | `Acc k -> nth_value t ~what:"for_loop_acc accumulator" accs k
  in
  let cond = cmp t Ir.Lt iv bound_op in
  br t cond body_block exit;
  switch_to t body_block;
  let accs' = body t iv accs in
  if List.length accs' <> List.length accs then
    invalid_arg "Builder.for_loop_acc: body changed accumulator count";
  let latch = current t in
  let iv_next = add t iv (Ir.Imm step) in
  jmp t header;
  add_incoming t ~block:header ~phi:iv (latch, iv_next);
  List.iter2
    (fun acc acc' -> add_incoming t ~block:header ~phi:acc (latch, acc'))
    accs accs';
  switch_to t exit;
  accs

let if_then_acc t ~cond ~init body =
  let pred = current t in
  let then_block = new_block t in
  let join = new_block t in
  br t cond then_block join;
  switch_to t then_block;
  let then_vals = body t in
  if List.length then_vals <> List.length init then
    invalid_arg "Builder.if_then_acc: body changed accumulator count";
  let then_end = current t in
  jmp t join;
  switch_to t join;
  List.map2
    (fun fallthrough then_v -> phi t [ (pred, fallthrough); (then_end, then_v) ])
    init then_vals

let finish t =
  if t.finished then invalid_arg "Builder.finish: already finished";
  t.finished <- true;
  let blocks =
    Array.init t.nblocks (fun i ->
        let pb = t.blocks.(i) in
        {
          Ir.phis = List.rev pb.p_phis;
          Ir.instrs = Array.of_list (List.rev pb.p_instrs);
          Ir.term = pb.p_term;
        })
  in
  {
    Ir.fname = t.name;
    Ir.params = t.params;
    Ir.entry = 0;
    Ir.blocks = blocks;
    Ir.next_reg = t.next_reg;
  }
