(** Semantics-preserving IR mutations that invalidate layout PCs.

    Profiles go stale because programs change; these transforms model
    the common ways a recompile perturbs code layout without changing
    what the kernel computes — so the staleness experiments can measure
    how blindly-applied stale hints behave versus fingerprint-remapped
    ones. Every transform returns a fresh function (the input is never
    mutated) that still passes {!Verify} and computes the same result;
    only PCs, block labels and dead instruction padding differ. *)

val pad_entry : Ir.func -> Ir.func
(** Insert a forwarding entry block ahead of every existing block: all
    block labels — and therefore every PC in the function — shift by
    one stride. Models whole-function relocation / renumbering. *)

val insert_dead : Ir.func -> block:Ir.label -> index:int -> count:int -> Ir.func
(** Splice [count] dead instructions (fresh-register [0 + 0] adds) into
    a block at [index]: PCs of that block's later instructions slide by
    [count]. Models small edits above a load. *)

val split_block : Ir.func -> block:Ir.label -> at:int -> Ir.func
(** Move a block's instruction tail (from [at]) plus its terminator
    into a fresh block appended at the end, rewriting successor phis.
    Splitting a loop's latch or body block models loop splitting /
    peeling: the loop gains a block and its latch PC moves. *)

val split_all : ?min_instrs:int -> Ir.func -> Ir.func
(** {!split_block} at the midpoint of every original block holding at
    least [min_instrs] (default 4) instructions. *)

val collide_load : Ir.func -> pc:int -> Ir.func option
(** Adversarial staleness: slide an {e earlier} load of the same block
    onto [pc]'s slot (by padding dead instructions above it), pushing
    the load originally at [pc] further down. A stale hint for [pc]
    now names a different — typically direct, hardware-covered — load,
    which is the case where blind application actively hurts. [None]
    when [pc] is not a load or no earlier load shares its block. *)
