(** Parser for the textual IR format emitted by {!Printer}.

    Round-trips [Printer.func_to_string]: leading program counters are
    ignored (they are re-derived positionally by {!Layout}), block
    labels must be dense ([b0..bN] in order), and the parsed function
    is verified before being returned. This gives the repo the usual
    compiler affordance of writing kernels and golden tests as text. *)

val operand : string -> (Ir.operand, string) result
(** ["%3"] or an integer literal. *)

val func : string -> (Ir.func, string) result
(** Parse a whole function. The error string carries the offending
    line. The result satisfies {!Verify.check}. *)

val func_exn : string -> Ir.func
(** @raise Invalid_argument on parse or verification errors. *)
