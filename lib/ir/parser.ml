let ( let* ) = Result.bind

let fail line what = Error (Printf.sprintf "%s in %S" what line)

let operand s =
  let s = String.trim s in
  if s = "" then Error "empty operand"
  else if s.[0] = '%' then begin
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some r when r >= 0 -> Ok (Ir.Reg r)
    | _ -> Error (Printf.sprintf "bad register %S" s)
  end
  else begin
    match int_of_string_opt s with
    | Some i -> Ok (Ir.Imm i)
    | None -> Error (Printf.sprintf "bad operand %S" s)
  end

let reg s =
  match operand s with
  | Ok (Ir.Reg r) -> Ok r
  | Ok (Ir.Imm _) -> Error (Printf.sprintf "expected a register, got %S" s)
  | Error e -> Error e

let label s =
  let s = String.trim s in
  if String.length s >= 2 && s.[0] = 'b' then begin
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some l when l >= 0 -> Ok l
    | _ -> Error (Printf.sprintf "bad label %S" s)
  end
  else Error (Printf.sprintf "bad label %S" s)

let binop_of_name = function
  | "add" -> Some Ir.Add
  | "sub" -> Some Ir.Sub
  | "mul" -> Some Ir.Mul
  | "div" -> Some Ir.Div
  | "rem" -> Some Ir.Rem
  | "and" -> Some Ir.And
  | "or" -> Some Ir.Or
  | "xor" -> Some Ir.Xor
  | "shl" -> Some Ir.Shl
  | "shr" -> Some Ir.Shr
  | _ -> None

let cmp_of_name = function
  | "eq" -> Some Ir.Eq
  | "ne" -> Some Ir.Ne
  | "lt" -> Some Ir.Lt
  | "le" -> Some Ir.Le
  | "gt" -> Some Ir.Gt
  | "ge" -> Some Ir.Ge
  | _ -> None

let split_words s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let split_args s =
  String.split_on_char ',' s |> List.map String.trim
  |> List.filter (fun w -> w <> "")

(* "[%3]" -> "%3" *)
let unbracket line s =
  let s = String.trim s in
  let n = String.length s in
  if n >= 2 && s.[0] = '[' && s.[n - 1] = ']' then Ok (String.sub s 1 (n - 2))
  else fail line "expected [address]"

(* Right-hand side of an instruction (after "%d = " when present). *)
let parse_rhs line ~dst rhs =
  let words = split_words rhs in
  match words with
  | [] -> fail line "empty instruction"
  | op_name :: rest -> (
    let rest_str = String.concat " " rest in
    match (binop_of_name op_name, op_name) with
    | Some op, _ -> (
      match split_args rest_str with
      | [ a; b ] ->
        let* a = operand a in
        let* b = operand b in
        let* dst = match dst with Some d -> Ok d | None -> fail line "missing dst" in
        Ok { Ir.dst; kind = Ir.Binop (op, a, b) }
      | _ -> fail line "binop expects two operands")
    | None, "icmp" -> (
      match rest with
      | cmp_name :: args -> (
        match cmp_of_name cmp_name with
        | None -> fail line "bad comparison"
        | Some op -> (
          match split_args (String.concat " " args) with
          | [ a; b ] ->
            let* a = operand a in
            let* b = operand b in
            let* dst =
              match dst with Some d -> Ok d | None -> fail line "missing dst"
            in
            Ok { Ir.dst; kind = Ir.Cmp (op, a, b) }
          | _ -> fail line "icmp expects two operands"))
      | [] -> fail line "icmp expects a comparison")
    | None, "select" -> (
      match split_args rest_str with
      | [ c; a; b ] ->
        let* c = operand c in
        let* a = operand a in
        let* b = operand b in
        let* dst = match dst with Some d -> Ok d | None -> fail line "missing dst" in
        Ok { Ir.dst; kind = Ir.Select (c, a, b) }
      | _ -> fail line "select expects three operands")
    | None, "load" ->
      let* inner = unbracket line rest_str in
      let* a = operand inner in
      let* dst = match dst with Some d -> Ok d | None -> fail line "missing dst" in
      Ok { Ir.dst; kind = Ir.Load a }
    | None, "store" -> (
      match split_args rest_str with
      | [ addr; v ] ->
        let* inner = unbracket line addr in
        let* a = operand inner in
        let* v = operand v in
        Ok { Ir.dst = Ir.no_dst; kind = Ir.Store (a, v) }
      | _ -> fail line "store expects [addr], value")
    | None, "prefetch" ->
      let* inner = unbracket line rest_str in
      let* a = operand inner in
      Ok { Ir.dst = Ir.no_dst; kind = Ir.Prefetch a }
    | None, "work" ->
      let* n = operand rest_str in
      Ok { Ir.dst = Ir.no_dst; kind = Ir.Work n }
    | None, _ -> fail line "unknown instruction")

let parse_term line words =
  match words with
  | [ "jmp"; l ] ->
    let* l = label l in
    Ok (Ir.Jmp l)
  | "br" :: rest -> (
    match split_args (String.concat " " rest) with
    | [ c; t; e ] ->
      let* c = operand c in
      let* t = label t in
      let* e = label e in
      Ok (Ir.Br (c, t, e))
    | _ -> fail line "br expects cond, b<t>, b<f>")
  | [ "ret" ] -> Ok (Ir.Ret None)
  | [ "ret"; v ] ->
    let* v = operand v in
    Ok (Ir.Ret (Some v))
  | _ -> fail line "bad terminator"

(* "%5 = phi [b0: 0] [b2: %7]" after the dst split. *)
let parse_phi line ~dst rest =
  let rec edges acc s =
    let s = String.trim s in
    if s = "" then Ok (List.rev acc)
    else if s.[0] = '[' then begin
      match String.index_opt s ']' with
      | None -> fail line "unterminated phi edge"
      | Some close -> (
        let body = String.sub s 1 (close - 1) in
        let rest = String.sub s (close + 1) (String.length s - close - 1) in
        match String.index_opt body ':' with
        | None -> fail line "phi edge needs b<label>: value"
        | Some colon ->
          let* l = label (String.sub body 0 colon) in
          let* v =
            operand (String.sub body (colon + 1) (String.length body - colon - 1))
          in
          edges ((l, v) :: acc) rest)
    end
    else fail line "expected phi edge"
  in
  let* incoming = edges [] rest in
  Ok { Ir.phi_dst = dst; incoming }

type line_kind =
  | Lfunc of string * Ir.reg list
  | Lblock of Ir.label
  | Lphi of Ir.phi
  | Linstr of Ir.instr
  | Lterm of Ir.terminator

let classify line =
  let t = String.trim line in
  if t = "" then Ok None
  else if String.length t > 5 && String.sub t 0 5 = "func " then begin
    match (String.index_opt t '(', String.index_opt t ')') with
    | Some o, Some c when c > o ->
      let name = String.trim (String.sub t 5 (o - 5)) in
      let params_str = String.sub t (o + 1) (c - o - 1) in
      let rec collect acc = function
        | [] -> Ok (List.rev acc)
        | p :: rest -> (
          match reg p with Ok r -> collect (r :: acc) rest | Error e -> Error e)
      in
      let* params = collect [] (split_args params_str) in
      Ok (Some (Lfunc (name, params)))
    | _ -> fail line "bad func header"
  end
  else if t.[0] = 'b' && t.[String.length t - 1] = ':' then begin
    let* l = label (String.sub t 0 (String.length t - 1)) in
    Ok (Some (Lblock l))
  end
  else begin
    (* Strip a leading program counter if present. *)
    let words = split_words t in
    let words =
      match words with
      | w :: rest when int_of_string_opt w <> None -> rest
      | ws -> ws
    in
    let t = String.concat " " words in
    match words with
    | [] -> Ok None
    | first :: _ when first = "jmp" || first = "br" || first = "ret" ->
      let* term = parse_term t words in
      Ok (Some (Lterm term))
    | first :: "=" :: rhs when String.length first > 1 && first.[0] = '%' -> (
      let* dst = reg first in
      match rhs with
      | "phi" :: rest ->
        let* p = parse_phi t ~dst (String.concat " " rest) in
        Ok (Some (Lphi p))
      | _ ->
        let* i = parse_rhs t ~dst:(Some dst) (String.concat " " rhs) in
        Ok (Some (Linstr i)))
    | _ ->
      let* i = parse_rhs t ~dst:None t in
      Ok (Some (Linstr i))
  end

type proto = {
  mutable phis : Ir.phi list;
  mutable instrs : Ir.instr list;
  mutable term : Ir.terminator option;
}

let func text =
  let lines = String.split_on_char '\n' text in
  let name = ref None in
  let params = ref [] in
  let blocks : proto list ref = ref [] in
  let current : proto option ref = ref None in
  let err = ref None in
  List.iter
    (fun line ->
      if !err = None then begin
        match classify line with
        | Error e -> err := Some e
        | Ok None -> ()
        | Ok (Some (Lfunc (n, ps))) ->
          name := Some n;
          params := ps
        | Ok (Some (Lblock l)) ->
          if l <> List.length !blocks then
            err := Some (Printf.sprintf "expected b%d, got b%d" (List.length !blocks) l)
          else begin
            let p = { phis = []; instrs = []; term = None } in
            blocks := !blocks @ [ p ];
            current := Some p
          end
        | Ok (Some item) -> (
          match !current with
          | None -> err := Some "instruction before the first block"
          | Some p -> (
            match item with
            | Lphi phi -> p.phis <- p.phis @ [ phi ]
            | Linstr i ->
              if p.term <> None then err := Some "instruction after terminator"
              else p.instrs <- p.instrs @ [ i ]
            | Lterm term ->
              if p.term <> None then err := Some "second terminator"
              else p.term <- Some term
            | Lfunc _ | Lblock _ -> assert false))
      end)
    lines;
  match !err with
  | Some e -> Error e
  | None -> (
    match !name with
    | None -> Error "missing func header"
    | Some fname ->
      let rec build acc = function
        | [] -> Ok (List.rev acc)
        | p :: rest -> (
          match p.term with
          | None -> Error "block without terminator"
          | Some term ->
            build
              ({ Ir.phis = p.phis; instrs = Array.of_list p.instrs; term } :: acc)
              rest)
      in
      let* block_list = build [] !blocks in
      if block_list = [] then Error "function has no blocks"
      else begin
        let max_reg = ref (-1) in
        let note = function Ir.Reg r -> if r > !max_reg then max_reg := r | Ir.Imm _ -> () in
        List.iter (fun r -> note (Ir.Reg r)) !params;
        List.iter
          (fun (b : Ir.block) ->
            List.iter
              (fun (p : Ir.phi) ->
                note (Ir.Reg p.Ir.phi_dst);
                List.iter (fun (_, v) -> note v) p.Ir.incoming)
              b.Ir.phis;
            Array.iter
              (fun (i : Ir.instr) ->
                if Ir.defines i then note (Ir.Reg i.Ir.dst);
                List.iter note (Ir.operands i.Ir.kind))
              b.Ir.instrs;
            match b.Ir.term with
            | Ir.Br (c, _, _) -> note c
            | Ir.Ret (Some v) -> note v
            | Ir.Jmp _ | Ir.Ret None -> ())
          block_list;
        let f =
          {
            Ir.fname;
            params = !params;
            entry = 0;
            blocks = Array.of_list block_list;
            next_reg = !max_reg + 1;
          }
        in
        match Verify.check f with Ok () -> Ok f | Error e -> Error e
      end)

let func_exn text =
  match func text with Ok f -> f | Error e -> invalid_arg ("Parser.func: " ^ e)
