(** Program-counter assignment.

    The simulated PMU reports PCs (LBR branch PCs, PEBS load PCs); the
    profiler and the injection pass both need to map between PCs and IR
    positions — the analog of AutoFDO's debug-info mapping in the paper
    (§3.5). The layout is positional: block [b] occupies PCs
    [b*block_stride ..]; its terminator sits at a fixed offset so branch
    PCs are stable under instruction edits within reason. *)

val block_stride : int
(** PC distance between consecutive blocks (1024). Blocks must hold
    fewer than [term_offset] instructions. *)

val term_offset : int
(** Offset of a block's terminator PC within its stride (1000). *)

val pc_of_instr : Ir.label -> int -> int
(** PC of the [i]th instruction of a block. *)

val pc_of_term : Ir.label -> int
(** PC of a block's terminator — the "branch PC" the LBR records. *)

val block_of_pc : int -> Ir.label
(** Block that a PC belongs to. *)

val slot_of_pc : int -> [ `Instr of int | `Term ]
(** Whether a PC addresses an instruction (with its index) or the
    block terminator. *)

val instr_at : Ir.func -> int -> Ir.instr option
(** Instruction currently at a PC, if the PC is in range. *)

val pcs_of_loads : Ir.func -> (int * Ir.instr) list
(** Every load instruction with its PC, in layout order. *)
