(** Flat, word-addressed simulated memory.

    The workloads lay out their data structures (graphs, tables, hash
    buckets) in this address space; the timing simulator translates word
    addresses to 64-byte cache lines. One word = 8 bytes, so 8 words per
    line. Addresses are plain [int] word indices. *)

type t

type region = {
  name : string;
  base : int;  (** first word address *)
  words : int; (** length in words *)
}
(** A named allocation, used by workloads to pass base addresses into IR
    kernels and by diagnostics to attribute cache traffic. *)

type backend = [ `Array | `Bigarray ]
(** Storage backing. [`Bigarray] (the default) keeps the words in a
    [Bigarray.Array1] of native ints outside the OCaml heap: the GC
    never scans the payload and the load/store hot path pays no
    boxing/tag overhead. [`Array] is the original [int array] backing,
    kept as a differential oracle. Both behave identically, including
    zero-initialisation of alignment gaps between regions. *)

val words_per_line : int
(** 8: cache line size (64 B) divided by word size (8 B). *)

val default_backend : unit -> backend
(** [`Bigarray], unless the [APTGET_MEM_BACKEND] environment variable
    is set to [array] (or [flat]). *)

val create : ?capacity_words:int -> ?backing:backend -> unit -> t
(** Fresh memory; capacity defaults to 1 Mi words (8 MiB) and grows on
    demand in [alloc]. [backing] defaults to {!default_backend}. *)

val backend : t -> backend
(** The backing this memory was created with. *)

val alloc : t -> name:string -> words:int -> region
(** Bump-allocate [words] words, line-aligned, zero-initialised. *)

val size_words : t -> int
(** Words allocated so far. *)

val get : t -> int -> int
(** [get t addr] reads the word at [addr]. Bounds-checked. *)

val set : t -> int -> int -> unit
(** [set t addr v] writes [v] at [addr]. Bounds-checked. *)

val blit_array : t -> region -> int array -> unit
(** Copy an OCaml array into a region (must fit). *)

val read_array : t -> region -> int array
(** Copy a region out into a fresh array. *)

val line_of_addr : int -> int
(** Cache line index of a word address. *)

val regions : t -> region list
(** All allocations, in allocation order. *)

val find_region : t -> int -> region option
(** Region containing a word address, if any. *)
