type region = { name : string; base : int; words : int }

type t = {
  mutable data : int array;
  mutable next : int;
  mutable regions : region list; (* reversed *)
}

let words_per_line = 8

let create ?(capacity_words = 1 lsl 20) () =
  { data = Array.make capacity_words 0; next = 0; regions = [] }

let ensure t needed =
  let cap = Array.length t.data in
  if needed > cap then begin
    let new_cap = max needed (cap * 2) in
    let fresh = Array.make new_cap 0 in
    Array.blit t.data 0 fresh 0 t.next;
    t.data <- fresh
  end

let align_up v a = (v + a - 1) / a * a

let alloc t ~name ~words =
  if words < 0 then invalid_arg "Memory.alloc: negative size";
  let base = align_up t.next words_per_line in
  let words_alloc = max words 1 in
  ensure t (base + words_alloc);
  Array.fill t.data base words_alloc 0;
  t.next <- base + words_alloc;
  let r = { name; base; words = words_alloc } in
  t.regions <- r :: t.regions;
  r

let size_words t = t.next

(* The explicit range check already implies the array access is in
   bounds ([next <= length data] is an [ensure] invariant), so the
   access itself can skip the second, redundant bounds check — [get]
   and [set] sit on the interpreter's per-load/store path. *)
let get t addr =
  if addr < 0 || addr >= t.next then
    invalid_arg (Printf.sprintf "Memory.get: address %d out of bounds" addr);
  Array.unsafe_get t.data addr

let set t addr v =
  if addr < 0 || addr >= t.next then
    invalid_arg (Printf.sprintf "Memory.set: address %d out of bounds" addr);
  Array.unsafe_set t.data addr v

let blit_array t r a =
  if Array.length a > r.words then invalid_arg "Memory.blit_array: too large";
  Array.blit a 0 t.data r.base (Array.length a)

let read_array t r = Array.sub t.data r.base r.words
let line_of_addr addr = addr / words_per_line
let regions t = List.rev t.regions

(* Regions never overlap (bump allocation), so searching the stored
   reversed list finds the same region as searching allocation order —
   without rebuilding the list on every lookup. *)
let find_region t addr =
  List.find_opt
    (fun r -> addr >= r.base && addr < r.base + r.words)
    t.regions
