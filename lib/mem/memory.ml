type region = { name : string; base : int; words : int }

type backend = [ `Array | `Bigarray ]

type big = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

(* Two interchangeable backings with identical observable behaviour:

   - [Flat]: a plain OCaml [int array]. Every word is a scanned field
     of a major-heap block, so multi-megaword memories add real work to
     each major GC mark pass.
   - [Big]: a [Bigarray.Array1] of native ints. The payload lives
     outside the OCaml heap (the GC never scans it) and elements are
     untagged machine words, which is why it is the default for the
     simulator's load/store hot path.

   [Bigarray.Array1.create] does not zero its storage, so both the
   initial buffer and every grown tail are zero-filled explicitly —
   alignment gaps between regions are readable (addr < next) and must
   read 0 under either backing. *)
type backing = Flat of int array | Big of big

type t = {
  mutable data : backing;
  mutable next : int;
  mutable regions : region list; (* reversed *)
}

let words_per_line = 8

let default_backend () : backend =
  match Sys.getenv_opt "APTGET_MEM_BACKEND" with
  | Some ("array" | "flat") -> `Array
  | _ -> `Bigarray

let make_big cap : big =
  let b = Bigarray.Array1.create Bigarray.int Bigarray.c_layout cap in
  Bigarray.Array1.fill b 0;
  b

let create ?(capacity_words = 1 lsl 20) ?backing () =
  let backing =
    match backing with Some b -> b | None -> default_backend ()
  in
  let data =
    match backing with
    | `Array -> Flat (Array.make capacity_words 0)
    | `Bigarray -> Big (make_big capacity_words)
  in
  { data; next = 0; regions = [] }

let backend t : backend =
  match t.data with Flat _ -> `Array | Big _ -> `Bigarray

let capacity t =
  match t.data with
  | Flat a -> Array.length a
  | Big b -> Bigarray.Array1.dim b

let ensure t needed =
  let cap = capacity t in
  if needed > cap then begin
    let new_cap = max needed (cap * 2) in
    match t.data with
    | Flat a ->
      let fresh = Array.make new_cap 0 in
      Array.blit a 0 fresh 0 t.next;
      t.data <- Flat fresh
    | Big b ->
      let fresh = make_big new_cap in
      Bigarray.Array1.blit
        (Bigarray.Array1.sub b 0 t.next)
        (Bigarray.Array1.sub fresh 0 t.next);
      t.data <- Big fresh
  end

let align_up v a = (v + a - 1) / a * a

let fill t pos len v =
  match t.data with
  | Flat a -> Array.fill a pos len v
  | Big b -> Bigarray.Array1.fill (Bigarray.Array1.sub b pos len) v

let alloc t ~name ~words =
  if words < 0 then invalid_arg "Memory.alloc: negative size";
  let base = align_up t.next words_per_line in
  let words_alloc = max words 1 in
  ensure t (base + words_alloc);
  fill t base words_alloc 0;
  t.next <- base + words_alloc;
  let r = { name; base; words = words_alloc } in
  t.regions <- r :: t.regions;
  r

let size_words t = t.next

(* Cold out-of-bounds paths are split out so the bounds-checked
   accessors below stay small enough for cross-module inlining — [get]
   and [set] sit on the simulator's per-load/store hot path. *)
let[@inline never] oob_get addr =
  invalid_arg (Printf.sprintf "Memory.get: address %d out of bounds" addr)

let[@inline never] oob_set addr =
  invalid_arg (Printf.sprintf "Memory.set: address %d out of bounds" addr)

(* The explicit range check already implies the access is in bounds
   ([next <= capacity] is an [ensure] invariant), so the access itself
   can skip the second, redundant bounds check. *)
let[@inline] get t addr =
  if addr < 0 || addr >= t.next then oob_get addr;
  match t.data with
  | Flat a -> Array.unsafe_get a addr
  | Big b -> Bigarray.Array1.unsafe_get b addr

let[@inline] set t addr v =
  if addr < 0 || addr >= t.next then oob_set addr;
  match t.data with
  | Flat a -> Array.unsafe_set a addr v
  | Big b -> Bigarray.Array1.unsafe_set b addr v

let blit_array t r a =
  if Array.length a > r.words then invalid_arg "Memory.blit_array: too large";
  match t.data with
  | Flat d -> Array.blit a 0 d r.base (Array.length a)
  | Big b ->
    for i = 0 to Array.length a - 1 do
      Bigarray.Array1.unsafe_set b (r.base + i) (Array.unsafe_get a i)
    done

let read_array t r =
  match t.data with
  | Flat d -> Array.sub d r.base r.words
  | Big b -> Array.init r.words (fun i -> Bigarray.Array1.unsafe_get b (r.base + i))

let line_of_addr addr = addr / words_per_line
let regions t = List.rev t.regions

(* Regions never overlap (bump allocation), so searching the stored
   reversed list finds the same region as searching allocation order —
   without rebuilding the list on every lookup. *)
let find_region t addr =
  List.find_opt
    (fun r -> addr >= r.base && addr < r.base + r.words)
    t.regions
