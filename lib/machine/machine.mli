(** Timing simulator for IR functions (in-order issue; blocking or stall-on-use completion).

    Two engines execute the same cost model over the same
    {!Compile.t} execution plan and are byte-identical in every
    observable (cycles, counters, sampler events, exception payloads
    and raise points):

    - {!Compiled} (the default): a one-time pass lowers each basic
      block into an array of OCaml closures with operand shapes, layout
      PCs and sampler hooks pre-resolved; unsampled runs additionally
      batch pure ALU runs and stitch hot edges into superblock traces
      discovered from the engine's own LBR ring. 3-10x faster than the
      interpreter on the quick bench.
    - {!Interp}: the original match-dispatch interpreter, kept as the
      differential oracle ([--engine interp] in the CLI and bench; the
      [test_engine] suite cross-checks the two on random programs).

    The engine is picked per call ([?engine]), falling back to the
    process default ({!set_default_engine}, or the [APTGET_ENGINE]
    environment variable: [compiled] | [interp] | [compiled-nosb]).

    Executes a kernel over a {!Aptget_mem.Memory}, charging cycles
    against a {!Aptget_cache.Hierarchy} and feeding the simulated PMU
    through {!Aptget_pmu.Sampler}'s hooks: every executed terminator is
    reported via [on_branch] as a taken branch (with its layout PC,
    target PC and cycle stamp), and demand loads served by DRAM are
    reported via [on_llc_miss] into the PEBS delinquent-load table. The
    core never touches the LBR ring or the PEBS table directly, so a
    fault model attached to the sampler ({!Aptget_pmu.Faults}) sees
    every profiling event.

    Two core models are available:

    - {!Blocking} (default): a demand load stalls the core until its
      data arrives. Simple and deterministic; memory-level parallelism
      exists only through prefetching — this is the model used for the
      paper-reproduction numbers.
    - {!Stall_on_use}: loads complete in the background and the core
      only stalls when a not-yet-ready register is *used* (or at a
      branch), bounded by a reorder-window of in-flight instructions —
      a first-order stand-in for the paper's out-of-order Xeon. The
      core-model ablation in the bench shows the paper's shapes
      survive it.

    Shared cost model:
    - ALU / compare / select / store / prefetch / branch: 1 cycle each
      (stores retire through an idealised store buffer and do not
      interact with the cache model);
    - [Work n]: n cycles and n instructions (a stand-in for the
      microbenchmark's work function);
    - loads: 1 issue cycle when L1-resident; deeper hits and misses add
      their level's latency — blocking the core or merely delaying the
      destination register, depending on the core model. Software
      prefetches never block. *)

type core_model =
  | Blocking
  | Stall_on_use of { window : int }
      (** [window] bounds in-flight instructions (a ROB stand-in). *)

type config = {
  hierarchy : Aptget_cache.Hierarchy.config;
  max_instructions : int;  (** fuse against runaway kernels *)
  max_cycles : int;
      (** simulated-cycle deadline; 0 (the default) disables it. Used
          by {!Aptget_core}'s watchdog to bound a stage in simulated
          time rather than instruction count. *)
  core : core_model;
}

val default_config : config
(** Blocking core, default hierarchy, 2e9-instruction fuse. *)

val stall_on_use_config : ?window:int -> unit -> config
(** [default_config] with a stall-on-use core (window default 64). *)

type outcome = {
  cycles : int;
  instructions : int;
  dyn_loads : int;
  dyn_prefetches : int;
  ret : int option;
  counters : Aptget_cache.Hierarchy.counters;
}

val ipc : outcome -> float
val mpki : outcome -> float
(** LLC misses per kilo-instruction, from
    [offcore_requests.demand_data_rd] as in the paper (Fig. 7). *)

val memory_stall_fraction : outcome -> float
(** Fraction of cycles attributable to L3/DRAM latency (Fig. 5).
    Meaningful for the blocking core; under [Stall_on_use] overlapped
    latencies can push it past 1. *)

val late_prefetch_ratio : Aptget_cache.Hierarchy.counters -> float
(** [load_hit_pre_sw_pf / sw_prefetch_issued]: the fraction of issued
    software prefetches whose demand load arrived while the fill was
    still in flight — the prefetch distance is too short. 0 when no
    prefetches were issued. Works on whole-run counters or on a
    {!window_report} delta. *)

val early_evict_ratio : Aptget_cache.Hierarchy.counters -> float
(** [sw_prefetch_early_evict / sw_prefetch_issued]: the fraction of
    issued software prefetches whose line was evicted from the LLC
    before any demand use — the distance is too long (or the working
    set shifted). 0 when no prefetches were issued. *)

val useless_prefetch_ratio : Aptget_cache.Hierarchy.counters -> float
(** [sw_prefetch_useless] over all prefetch attempts (issued + useless
    + dropped): the fraction that probed an already-cached line and did
    nothing. Near 1.0 the hinted loads stopped missing — the working
    set shrank into cache and the prefetch slice is pure instruction
    overhead. 0 when no prefetches were attempted (so an unhinted
    program never scores). *)

type engine =
  | Interp  (** match-dispatch interpreter (differential oracle) *)
  | Compiled of { superblocks : bool }
      (** closure-compiled plans; [superblocks] additionally stitches
          hot-edge traces after a warmup (on by default). Semantics are
          identical either way. *)

val engine_of_string : string -> engine option
(** ["interp"], ["compiled"], ["compiled-nosb"] (case-insensitive). *)

val engine_to_string : engine -> string

val set_default_engine : engine -> unit
(** Process default used when {!execute} gets no [?engine]. Initialised
    from [APTGET_ENGINE] when set, else [Compiled {superblocks=true}]. *)

val default_engine : unit -> engine

val total_simulated_cycles : unit -> int
(** Simulated cycles accumulated by every {!execute} in this process
    (all domains), for throughput reporting. *)

val total_execute_seconds : unit -> float
(** Wall seconds summed over every {!execute} (per-call durations, so
    overlapping parallel executes each count in full). While the
    metrics registry is enabled, each execute also refreshes the
    [sim.cycles_per_sec] gauge with the cumulative ratio. *)

exception Fuse_blown of int
(** Raised when [max_instructions] is exceeded. *)

exception Deadline_blown of { cycles : int; limit : int }
(** Raised when [max_cycles] is exceeded (only when it is positive). *)

type window_report = {
  w_index : int;  (** 0-based window number within this execution *)
  w_start_cycle : int;
  w_end_cycle : int;
  w_instructions : int;  (** instructions retired inside the window *)
  w_counters : Aptget_cache.Hierarchy.counters;
      (** counter deltas over the window (not cumulative) *)
}
(** One execution window: the slice of activity between two boundary
    crossings of the window clock. Feed [w_counters] to
    {!late_prefetch_ratio} / {!early_evict_ratio} for per-phase drift
    evidence. *)

val execute :
  ?config:config ->
  ?engine:engine ->
  ?hierarchy:Aptget_cache.Hierarchy.t ->
  ?sampler:Aptget_pmu.Sampler.t ->
  ?window_cycles:int ->
  ?on_window:(window_report -> unit) ->
  ?args:int list ->
  mem:Aptget_mem.Memory.t ->
  Ir.func ->
  outcome
(** Run [f] to its [Ret]. A supplied [hierarchy] is used as-is (warm
    caches; counters are NOT reset) — otherwise a fresh one is built
    from [config]. [args] bind the function parameters (default all 0).

    When both [window_cycles > 0] and [on_window] are given, the
    interpreter emits a {!window_report} each time the cycle clock
    crosses a multiple-of-[window_cycles] boundary, plus one trailing
    partial window at [Ret]; boundaries are checked on the same
    deterministic charge path as the sampler tick, so reports are
    byte-identical across runs. Without them the interpreter takes the
    exact pre-window code paths.

    The hardware prefetcher is clamped to [mem]'s allocated extent
    (see {!Aptget_cache.Hierarchy.set_prefetch_limit}); this holds for
    a supplied [hierarchy] too.

    Raises [Invalid_argument] on malformed IR and memory errors. *)

type stepper = {
  sp_step : unit -> bool;
      (** Perform one block dispatch (phi moves + instructions +
          terminator); false once [Ret] has executed. Raises the same
          exceptions at the same points as {!execute}. *)
  sp_cycle : unit -> int;  (** current simulated cycle of this stream *)
  sp_finished : unit -> bool;
  sp_finish : unit -> outcome;
      (** Flush the trailing execution window (if windowed) and
          snapshot the outcome; call once the stream has finished.
          Idempotent. Does not feed the process-wide throughput
          accumulators — drivers that want that use {!execute} or
          account for the whole schedule themselves. *)
}
(** A resumable execution: {!make_stepper} runs all setup eagerly,
    then each [sp_step] advances the program by exactly one block
    dispatch. [execute f] is equivalent to stepping a fresh stepper to
    completion. The co-run scheduler ({!Corun}) interleaves steppers
    of several streams over one shared LLC.

    With [Compiled {superblocks = true}] a step may execute a whole
    hot trace after the warmup; pass [superblocks = false] (or
    [Interp]) when dispatch granularity must match the interpreter's
    one-block-per-step, as the co-run scheduler does. *)

val make_stepper :
  ?config:config ->
  ?engine:engine ->
  ?hierarchy:Aptget_cache.Hierarchy.t ->
  ?sampler:Aptget_pmu.Sampler.t ->
  ?window_cycles:int ->
  ?on_window:(window_report -> unit) ->
  ?args:int list ->
  mem:Aptget_mem.Memory.t ->
  Ir.func ->
  stepper
(** Same contract and defaults as {!execute}, paused before the first
    block. *)
