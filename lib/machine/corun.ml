module Memory = Aptget_mem.Memory
module Hierarchy = Aptget_cache.Hierarchy
module Sampler = Aptget_pmu.Sampler

type policy = Round_robin | Cycle_ratio of int list

let policy_to_string = function
  | Round_robin -> "round-robin"
  | Cycle_ratio ws ->
    "cycle-ratio:" ^ String.concat "," (List.map string_of_int ws)

let policy_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "rr" | "round-robin" | "roundrobin" -> Some Round_robin
  | s when String.length s > 6 && String.sub s 0 6 = "ratio:" -> (
    let body = String.sub s 6 (String.length s - 6) in
    match
      List.map
        (fun w -> int_of_string (String.trim w))
        (String.split_on_char ',' body)
    with
    | ws when List.for_all (fun w -> w > 0) ws && ws <> [] ->
      Some (Cycle_ratio ws)
    | _ -> None
    | exception _ -> None)
  | _ -> None

type stream = {
  cs_name : string;
  cs_func : Ir.func;
  cs_mem : Memory.t;
  cs_args : int list;
  cs_sampler : Sampler.t option;
  cs_window_cycles : int option;
  cs_on_window : (Machine.window_report -> unit) option;
}

let stream ?(args = []) ?sampler ?window_cycles ?on_window ~name ~mem func =
  {
    cs_name = name;
    cs_func = func;
    cs_mem = mem;
    cs_args = args;
    cs_sampler = sampler;
    cs_window_cycles = window_cycles;
    cs_on_window = on_window;
  }

type stream_outcome = { so_name : string; so_outcome : Machine.outcome }

(* Engine normalization: with 2+ streams every engine must dispatch
   exactly one block per step, or the interleaving — and through it
   every shared-LLC eviction — would depend on the engine's trace
   tier. Solo schedules keep the caller's engine untouched. *)
let normalize_engine ~n_streams = function
  | Machine.Compiled _ when n_streams > 1 ->
    Machine.Compiled { superblocks = false }
  | e -> e

let run ?(config = Machine.default_config) ?engine ?(policy = Round_robin)
    streams =
  if streams = [] then invalid_arg "Corun.run: no streams";
  let engine =
    match engine with Some e -> e | None -> Machine.default_engine ()
  in
  let engine = normalize_engine ~n_streams:(List.length streams) engine in
  let shared = Hierarchy.create_shared config.Machine.hierarchy in
  let sps =
    Array.of_list
      (List.mapi
         (fun i s ->
           let hier = Hierarchy.attach shared ~stream:i in
           ( s,
             Machine.make_stepper ~config ~engine ~hierarchy:hier
               ?sampler:s.cs_sampler ?window_cycles:s.cs_window_cycles
               ?on_window:s.cs_on_window ~args:s.cs_args ~mem:s.cs_mem
               s.cs_func ))
         streams)
  in
  let n = Array.length sps in
  let remaining = ref n in
  (match policy with
  | Round_robin ->
    (* One block per turn, rotating over the live streams in attach
       order; finished streams drop out of the rotation. *)
    let idx = ref 0 in
    while !remaining > 0 do
      let _, sp = sps.(!idx) in
      if not (sp.Machine.sp_finished ()) && not (sp.Machine.sp_step ()) then
        decr remaining;
      idx := (!idx + 1) mod n
    done
  | Cycle_ratio weights ->
    List.iter
      (fun w ->
        if w <= 0 then
          invalid_arg "Corun.run: cycle-ratio weights must be positive")
      weights;
    let w =
      Array.init n (fun i ->
          match List.nth_opt weights i with Some x -> x | None -> 1)
    in
    (* Advance the live stream with the smallest weighted cycle count
       (cycle / weight, compared cross-multiplied so everything stays
       in integers); ties go to the lowest stream index. Streams make
       progress proportional to their weights in simulated cycles. *)
    while !remaining > 0 do
      let best = ref (-1) in
      for i = n - 1 downto 0 do
        let _, sp = sps.(i) in
        if not (sp.Machine.sp_finished ()) then
          if !best < 0 then best := i
          else
            let _, bsp = sps.(!best) in
            if
              sp.Machine.sp_cycle () * w.(!best)
              <= bsp.Machine.sp_cycle () * w.(i)
            then best := i
      done;
      let _, sp = sps.(!best) in
      if not (sp.Machine.sp_step ()) then decr remaining
    done);
  Array.to_list
    (Array.map
       (fun (s, sp) ->
         { so_name = s.cs_name; so_outcome = sp.Machine.sp_finish () })
       sps)
