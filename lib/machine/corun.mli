(** Multi-stream co-run scheduler: 2+ workloads interleaved over a
    shared LLC and DRAM channel, each with private L1/L2, fill
    buffers, prefetcher, sampler and counters.

    Streams are attached to one {!Aptget_cache.Hierarchy.shared} in
    list order (stream ids 0, 1, ...), so per-tenant counters,
    sampler tallies and BENCH rows stay attributable: a shared-LLC
    eviction of a software-prefetched line is charged to the stream
    that issued the prefetch, and inclusion victims are invalidated in
    every tenant's private levels.

    Scheduling is per block dispatch and fully deterministic: with a
    compiled engine the superblock tier is disabled for multi-stream
    schedules, so the compiled and interpreted engines produce the
    same interleaving — and byte-identical per-stream outcomes (the
    differential oracle for the co-run subsystem). *)

type policy =
  | Round_robin  (** one block dispatch per live stream, in turn *)
  | Cycle_ratio of int list
      (** advance the live stream with the smallest [cycle / weight];
          weights are positional (missing entries default to 1) and
          must be positive. [Cycle_ratio [2; 1]] gives stream 0 twice
          the simulated cycles of stream 1. *)

val policy_to_string : policy -> string

val policy_of_string : string -> policy option
(** ["rr" | "round-robin"] or ["ratio:W0,W1,..."] with positive
    integer weights (case-insensitive). *)

type stream

val stream :
  ?args:int list ->
  ?sampler:Aptget_pmu.Sampler.t ->
  ?window_cycles:int ->
  ?on_window:(Machine.window_report -> unit) ->
  name:string ->
  mem:Aptget_mem.Memory.t ->
  Ir.func ->
  stream
(** One tenant: a function over its own memory, with the same
    optional sampler/windowing instrumentation as
    {!Machine.execute}. Window reports are per-stream, measured on
    the stream's own cycle clock and counters. *)

type stream_outcome = {
  so_name : string;
  so_outcome : Machine.outcome;  (** per-stream cycles and counters *)
}

val run :
  ?config:Machine.config ->
  ?engine:Machine.engine ->
  ?policy:policy ->
  stream list ->
  stream_outcome list
(** Run every stream to completion over one shared LLC/DRAM,
    interleaving per [policy] (default {!Round_robin}), and return
    per-stream outcomes in input order. The engine defaults to the
    process default; for multi-stream schedules a compiled engine has
    its superblock tier disabled so the interleaving is
    engine-independent. Each stream's hardware prefetcher is clamped
    to its own memory extent.

    Exceptions from a stream ({!Machine.Fuse_blown},
    {!Machine.Deadline_blown}, memory bounds) propagate; fuses apply
    per stream.

    Raises [Invalid_argument] on an empty stream list or non-positive
    ratio weights. *)
