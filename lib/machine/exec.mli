(** Shared substrate of the simulator engines.

    Everything both the interpreter ({!Machine}) and the
    closure-compiled engine ({!Compiled}) must agree on byte-for-byte
    lives here: configuration and fuses, the mutable run state, value
    semantics for ALU/compare ops, parameter binding and the execution
    windowing machinery. {!Machine} re-exports the public pieces. *)

type core_model = Blocking | Stall_on_use of { window : int }

type config = {
  hierarchy : Aptget_cache.Hierarchy.config;
  max_instructions : int;
  max_cycles : int;
  core : core_model;
}

val default_config : config
val stall_on_use_config : ?window:int -> unit -> config

exception Fuse_blown of int
exception Deadline_blown of { cycles : int; limit : int }

val check_deadline : config -> int -> unit
(** Raise {!Deadline_blown} when [max_cycles] is positive and exceeded. *)

val eval_binop : Ir.binop -> int -> int -> int
val eval_cmp : Ir.cmp_op -> int -> int -> int

type state = {
  mutable cycle : int;
  mutable instrs : int;
  mutable loads : int;
  mutable prefetches : int;
}

type window_report = {
  w_index : int;
  w_start_cycle : int;
  w_end_cycle : int;
  w_instructions : int;
  w_counters : Aptget_cache.Hierarchy.counters;
}

val make_windowing :
  hier:Aptget_cache.Hierarchy.t ->
  window_cycles:int ->
  on_window:(window_report -> unit) ->
  (state -> unit) * (state -> unit)
(** [(tick, finish)]: [tick st] fires [on_window] whenever the cycle
    clock crosses the next window boundary; [finish st] flushes the
    trailing partial window. *)

val bind_params : Ir.func -> int array -> int list -> unit
(** Bind positional args to parameter registers; extras ignored,
    missing ones left at the register default. *)
