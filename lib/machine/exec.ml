(* Shared substrate of the two simulator engines (the interpreter in
   Machine and the closure-compiled engine in Compiled): configuration,
   run state, value semantics, fuses and execution windows. Both
   engines must charge through the definitions here so their cycle
   accounting stays byte-identical. *)

module Hierarchy = Aptget_cache.Hierarchy

type core_model = Blocking | Stall_on_use of { window : int }

type config = {
  hierarchy : Hierarchy.config;
  max_instructions : int;
  max_cycles : int;
  core : core_model;
}

let default_config =
  {
    hierarchy = Hierarchy.default_config;
    max_instructions = 2_000_000_000;
    max_cycles = 0;
    core = Blocking;
  }

let stall_on_use_config ?(window = 64) () =
  { default_config with core = Stall_on_use { window } }

exception Fuse_blown of int
exception Deadline_blown of { cycles : int; limit : int }

let check_deadline config cycle =
  if config.max_cycles > 0 && cycle > config.max_cycles then
    raise (Deadline_blown { cycles = cycle; limit = config.max_cycles })

(* Shared value semantics. *)
let eval_binop op a b =
  match op with
  | Ir.Add -> a + b
  | Ir.Sub -> a - b
  | Ir.Mul -> a * b
  | Ir.Div -> if b = 0 then 0 else a / b
  | Ir.Rem -> if b = 0 then 0 else a mod b
  | Ir.And -> a land b
  | Ir.Or -> a lor b
  | Ir.Xor -> a lxor b
  | Ir.Shl -> a lsl (b land 62)
  | Ir.Shr -> a asr (b land 62)

let eval_cmp op a b =
  let v =
    match op with
    | Ir.Eq -> a = b
    | Ir.Ne -> a <> b
    | Ir.Lt -> a < b
    | Ir.Le -> a <= b
    | Ir.Gt -> a > b
    | Ir.Ge -> a >= b
  in
  if v then 1 else 0

type state = {
  mutable cycle : int;
  mutable instrs : int;
  mutable loads : int;
  mutable prefetches : int;
}

(* ------------------------------------------------------------------ *)
(* Execution windows: periodic counter-delta snapshots for online      *)
(* drift detection. The hook fires from the charge/issue path, so the  *)
(* window-less variants stay byte-identical to the pre-window          *)
(* engines.                                                            *)
(* ------------------------------------------------------------------ *)

type window_report = {
  w_index : int;
  w_start_cycle : int;
  w_end_cycle : int;
  w_instructions : int;
  w_counters : Hierarchy.counters;
}

(* Returns [(tick, finish)]: [tick st] fires [on_window] whenever the
   cycle clock crosses the next window boundary; [finish st] flushes
   the trailing partial window (if any activity happened since the last
   boundary). *)
let make_windowing ~hier ~window_cycles ~on_window =
  let next = ref window_cycles in
  let idx = ref 0 in
  let prev_counters = ref (Hierarchy.counters hier) in
  let prev_cycle = ref 0 in
  let prev_instrs = ref 0 in
  let emit (st : state) =
    let c = Hierarchy.counters hier in
    on_window
      {
        w_index = !idx;
        w_start_cycle = !prev_cycle;
        w_end_cycle = st.cycle;
        w_instructions = st.instrs - !prev_instrs;
        w_counters = Hierarchy.sub_counters c !prev_counters;
      };
    incr idx;
    prev_counters := c;
    prev_cycle := st.cycle;
    prev_instrs := st.instrs
  in
  let tick (st : state) =
    if st.cycle >= !next then begin
      emit st;
      next := st.cycle + window_cycles
    end
  in
  let finish (st : state) = if st.cycle > !prev_cycle then emit st in
  (tick, finish)

let bind_params (f : Ir.func) regs args =
  (* Walk params and args in lockstep; extra args are ignored, missing
     ones leave the register at its default, as before. *)
  let rec go ps vs =
    match (ps, vs) with
    | p :: ps', v :: vs' ->
      regs.(p) <- v;
      go ps' vs'
    | _, _ -> ()
  in
  go f.Ir.params args
