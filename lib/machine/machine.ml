module Memory = Aptget_mem.Memory
module Hierarchy = Aptget_cache.Hierarchy
module Sampler = Aptget_pmu.Sampler
module Metrics = Aptget_obs.Metrics
module Clock = Aptget_util.Clock

type core_model = Exec.core_model = Blocking | Stall_on_use of { window : int }

type config = Exec.config = {
  hierarchy : Hierarchy.config;
  max_instructions : int;
  max_cycles : int;
  core : core_model;
}

let default_config = Exec.default_config
let stall_on_use_config = Exec.stall_on_use_config

type outcome = {
  cycles : int;
  instructions : int;
  dyn_loads : int;
  dyn_prefetches : int;
  ret : int option;
  counters : Hierarchy.counters;
}

let ipc o =
  if o.cycles = 0 then 0. else float_of_int o.instructions /. float_of_int o.cycles

let mpki o =
  if o.instructions = 0 then 0.
  else
    float_of_int o.counters.Hierarchy.offcore_demand_data_rd
    *. 1000.
    /. float_of_int o.instructions

let memory_stall_fraction o =
  if o.cycles = 0 then 0.
  else
    float_of_int
      (o.counters.Hierarchy.stall_cycles_llc + o.counters.Hierarchy.stall_cycles_dram)
    /. float_of_int o.cycles

(* Distance-error evidence, usable on whole-run counters or window
   deltas. Zero issued prefetches reads as zero error: an unhinted
   program is never "late". *)
let late_prefetch_ratio (c : Hierarchy.counters) =
  if c.Hierarchy.sw_prefetch_issued = 0 then 0.
  else
    float_of_int c.Hierarchy.load_hit_pre_sw_pf
    /. float_of_int c.Hierarchy.sw_prefetch_issued

let early_evict_ratio (c : Hierarchy.counters) =
  if c.Hierarchy.sw_prefetch_issued = 0 then 0.
  else
    float_of_int c.Hierarchy.sw_prefetch_early_evict
    /. float_of_int c.Hierarchy.sw_prefetch_issued

let useless_prefetch_ratio (c : Hierarchy.counters) =
  let attempts =
    c.Hierarchy.sw_prefetch_issued + c.Hierarchy.sw_prefetch_useless
    + c.Hierarchy.sw_prefetch_dropped
  in
  if attempts = 0 then 0.
  else float_of_int c.Hierarchy.sw_prefetch_useless /. float_of_int attempts

exception Fuse_blown = Exec.Fuse_blown
exception Deadline_blown = Exec.Deadline_blown

let eval_binop = Exec.eval_binop
let eval_cmp = Exec.eval_cmp
let check_deadline = Exec.check_deadline

open struct
  type state = Exec.state = {
    mutable cycle : int;
    mutable instrs : int;
    mutable loads : int;
    mutable prefetches : int;
  }
end

type window_report = Exec.window_report = {
  w_index : int;
  w_start_cycle : int;
  w_end_cycle : int;
  w_instructions : int;
  w_counters : Hierarchy.counters;
}

(* ------------------------------------------------------------------ *)
(* Engine selection                                                    *)
(* ------------------------------------------------------------------ *)

type engine = Interp | Compiled of { superblocks : bool }

let engine_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "interp" | "interpreter" -> Some Interp
  | "compiled" -> Some (Compiled { superblocks = true })
  | "compiled-nosb" | "compiled-flat" -> Some (Compiled { superblocks = false })
  | _ -> None

let engine_to_string = function
  | Interp -> "interp"
  | Compiled { superblocks = true } -> "compiled"
  | Compiled { superblocks = false } -> "compiled-nosb"

let initial_engine =
  match Option.bind (Sys.getenv_opt "APTGET_ENGINE") engine_of_string with
  | Some e -> e
  | None -> Compiled { superblocks = true }

(* Atomic so a CLI override made before worker domains spawn is seen by
   all of them. *)
let default_engine_a = Atomic.make initial_engine
let set_default_engine e = Atomic.set default_engine_a e
let default_engine () = Atomic.get default_engine_a

(* ------------------------------------------------------------------ *)
(* Simulation throughput                                               *)
(* ------------------------------------------------------------------ *)

(* Process-wide accumulators, shared across worker domains. Wall time
   sums the per-execute elapsed time, so under [--jobs N] overlapping
   executes count their full durations (aggregate simulation
   throughput, not wall-clock cycles/sec of the whole process). *)
let total_cycles_a = Atomic.make 0
let total_exec_ns_a = Atomic.make 0

let total_simulated_cycles () = Atomic.get total_cycles_a
let total_execute_seconds () = float_of_int (Atomic.get total_exec_ns_a) *. 1e-9

let note_run ~cycles ~wall_s =
  ignore (Atomic.fetch_and_add total_cycles_a cycles);
  ignore (Atomic.fetch_and_add total_exec_ns_a (int_of_float (wall_s *. 1e9)));
  if Metrics.enabled () then begin
    let ns = Atomic.get total_exec_ns_a in
    if ns > 0 then
      Metrics.set_gauge "sim.cycles_per_sec"
        (float_of_int (Atomic.get total_cycles_a) /. (float_of_int ns *. 1e-9))
  end

(* ------------------------------------------------------------------ *)
(* Blocking core, interpreted: a demand load stalls until its data is  *)
(* available. Kept as the differential oracle for the compiled engine. *)
(* ------------------------------------------------------------------ *)

(* Each executor is built as a *stepper*: all setup runs eagerly, then
   [step ()] performs exactly one block dispatch (phi moves, the
   block's instructions, the terminator) and returns false once [Ret]
   has executed. Solo execution drives the stepper to completion in a
   tight loop; the co-run scheduler ({!Corun}) interleaves steppers
   from several streams over one shared LLC. *)

let stepper_blocking ~config ~hier ~sampler ~wtick ~mem ~regs
    ~(plan : Compile.t) (f : Ir.func) =
  let eval = function Ir.Reg r -> regs.(r) | Ir.Imm i -> i in
  let st = { cycle = 0; instrs = 0; loads = 0; prefetches = 0 } in
  let l1_lat = (Hierarchy.config hier).Hierarchy.l1_latency in
  let scratch = Array.make (max 1 plan.Compile.cp_max_phis) 0 in
  (* The sampler test is hoisted out of [charge]: measurement runs
     (sampler = None) pay nothing per instruction, and profiled runs
     tick once per charge — a charge of n cycles is one batched tick at
     the post-advance cycle, exactly as before. Windowed runs take the
     third variant so the common paths stay untouched. *)
  let charge =
    match (wtick, sampler) with
    | None, None ->
      fun n_instr n_cycles ->
        st.instrs <- st.instrs + n_instr;
        st.cycle <- st.cycle + n_cycles;
        if st.instrs > config.max_instructions then raise (Fuse_blown st.instrs);
        check_deadline config st.cycle
    | None, Some s ->
      fun n_instr n_cycles ->
        st.instrs <- st.instrs + n_instr;
        st.cycle <- st.cycle + n_cycles;
        if st.instrs > config.max_instructions then raise (Fuse_blown st.instrs);
        check_deadline config st.cycle;
        Sampler.on_cycle s ~cycle:st.cycle
    | Some tick, _ ->
      fun n_instr n_cycles ->
        st.instrs <- st.instrs + n_instr;
        st.cycle <- st.cycle + n_cycles;
        if st.instrs > config.max_instructions then raise (Fuse_blown st.instrs);
        check_deadline config st.cycle;
        (match sampler with
        | Some s -> Sampler.on_cycle s ~cycle:st.cycle
        | None -> ());
        tick st
  in
  (* Hoisted out of [run_block]: allocating this closure per block
     visit showed up in dispatch-heavy kernels. *)
  let record_branch cur target =
    (match sampler with
    | Some s ->
      Sampler.on_branch s ~branch_pc:(Layout.pc_of_term cur)
        ~target_pc:(Layout.pc_of_instr target 0) ~cycle:st.cycle
    | None -> ());
    charge 1 1
  in
  let run_block cur prev =
    let blk = f.Ir.blocks.(cur) in
    let pm = plan.Compile.cp_blocks.(cur).Compile.bp_phis in
    let nphi = Array.length pm.Compile.pm_dsts in
    if nphi > 0 then begin
      let row = Compile.phi_row pm prev in
      if row < 0 then Compile.missing_phi_edge f ~cur ~prev;
      let ops = pm.Compile.pm_rows.(row) in
      for k = 0 to nphi - 1 do
        scratch.(k) <- eval ops.(k)
      done;
      for k = 0 to nphi - 1 do
        regs.(pm.Compile.pm_dsts.(k)) <- scratch.(k)
      done
    end;
    let n = Array.length blk.Ir.instrs in
    for ii = 0 to n - 1 do
      let i = blk.Ir.instrs.(ii) in
      match i.Ir.kind with
      | Ir.Binop (op, a, b) ->
        regs.(i.Ir.dst) <- eval_binop op (eval a) (eval b);
        charge 1 1
      | Ir.Cmp (op, a, b) ->
        regs.(i.Ir.dst) <- eval_cmp op (eval a) (eval b);
        charge 1 1
      | Ir.Select (c, a, b) ->
        regs.(i.Ir.dst) <- (if eval c <> 0 then eval a else eval b);
        charge 1 1
      | Ir.Load a ->
        let addr = eval a in
        let pc = Layout.pc_of_instr cur ii in
        let access = Hierarchy.demand_load hier ~pc ~addr ~cycle:st.cycle in
        regs.(i.Ir.dst) <- Memory.get mem addr;
        st.loads <- st.loads + 1;
        (match sampler with
        | Some s when access.Hierarchy.served_from = Hierarchy.Dram ->
          Sampler.on_llc_miss s ~load_pc:pc ~cycle:st.cycle
        | _ -> ());
        (* L1 hits are pipelined: 1 cycle. Anything deeper stalls the
           in-order core for the extra latency. *)
        charge 1 (1 + max 0 (access.Hierarchy.latency - l1_lat))
      | Ir.Store (a, v) ->
        Memory.set mem (eval a) (eval v);
        charge 1 1
      | Ir.Prefetch a ->
        let addr = eval a in
        if addr >= 0 then Hierarchy.sw_prefetch hier ~addr ~cycle:st.cycle;
        st.prefetches <- st.prefetches + 1;
        charge 1 1
      | Ir.Work n ->
        let n = max 0 (eval n) in
        charge n n
    done;
    match blk.Ir.term with
    | Ir.Jmp l ->
      record_branch cur l;
      `Goto l
    | Ir.Br (c, t, e) ->
      let target = if eval c <> 0 then t else e in
      record_branch cur target;
      `Goto target
    | Ir.Ret v ->
      charge 1 1;
      `Done (Option.map eval v)
  in
  let cur = ref f.Ir.entry in
  let prev = ref (-1) in
  let running = ref true in
  let ret = ref None in
  let step () =
    !running
    && begin
         (match run_block !cur !prev with
         | `Goto next ->
           prev := !cur;
           cur := next
         | `Done v ->
           ret := v;
           running := false);
         !running
       end
  in
  (st, ret, step)

(* ------------------------------------------------------------------ *)
(* Stall-on-use core, interpreted: loads complete in the background;   *)
(* the core stalls only when a not-yet-ready register is consumed,     *)
(* bounded by a reorder window.                                        *)
(* ------------------------------------------------------------------ *)

let stepper_stall_on_use ~config ~hier ~sampler ~wtick ~mem ~regs ~window
    ~(plan : Compile.t) (f : Ir.func) =
  let eval = function Ir.Reg r -> regs.(r) | Ir.Imm i -> i in
  let ready = Array.make (Array.length regs) 0 in
  let st = { cycle = 0; instrs = 0; loads = 0; prefetches = 0 } in
  let l1_lat = (Hierarchy.config hier).Hierarchy.l1_latency in
  let nscratch = max 1 plan.Compile.cp_max_phis in
  let scratch = Array.make nscratch 0 in
  let scratch_ready = Array.make nscratch 0 in
  (* Ring of completion times of the last [window] instructions. *)
  let rob = Array.make (max 1 window) 0 in
  let rob_idx = ref 0 in
  (* Sampler test hoisted out of the per-instruction path, as in the
     blocking core; the windowed variant is separate for the same
     reason. *)
  let issue =
    match (wtick, sampler) with
    | None, None ->
      fun ?(n = 1) () ->
        st.instrs <- st.instrs + n;
        st.cycle <- max (st.cycle + n) rob.(!rob_idx);
        if st.instrs > config.max_instructions then raise (Fuse_blown st.instrs);
        check_deadline config st.cycle
    | None, Some s ->
      fun ?(n = 1) () ->
        (* In-order issue at one instruction per cycle, gated by the
           oldest in-flight instruction leaving the window. *)
        st.instrs <- st.instrs + n;
        st.cycle <- max (st.cycle + n) rob.(!rob_idx);
        if st.instrs > config.max_instructions then raise (Fuse_blown st.instrs);
        check_deadline config st.cycle;
        Sampler.on_cycle s ~cycle:st.cycle
    | Some tick, _ ->
      fun ?(n = 1) () ->
        st.instrs <- st.instrs + n;
        st.cycle <- max (st.cycle + n) rob.(!rob_idx);
        if st.instrs > config.max_instructions then raise (Fuse_blown st.instrs);
        check_deadline config st.cycle;
        (match sampler with
        | Some s -> Sampler.on_cycle s ~cycle:st.cycle
        | None -> ());
        tick st
  in
  let retire completion =
    rob.(!rob_idx) <- completion;
    rob_idx := (!rob_idx + 1) mod Array.length rob
  in
  let op_ready = function Ir.Reg r -> ready.(r) | Ir.Imm _ -> 0 in
  let ops_ready ops = List.fold_left (fun m o -> max m (op_ready o)) 0 ops in
  let wait_for ops = st.cycle <- max st.cycle (ops_ready ops) in
  (* Hoisted out of [run_block] — same allocation fix as the blocking
     core's [record_branch]. *)
  let record_branch cur ~cond target =
    issue ();
    (* No speculation: the branch resolves before the next block. *)
    wait_for cond;
    retire (st.cycle + 1);
    match sampler with
    | Some s ->
      Sampler.on_branch s ~branch_pc:(Layout.pc_of_term cur)
        ~target_pc:(Layout.pc_of_instr target 0) ~cycle:st.cycle
    | None -> ()
  in
  let run_block cur prev =
    let blk = f.Ir.blocks.(cur) in
    (* Phi values inherit the readiness of the taken edge's source, so
       a loop-carried dependence (e.g. a pointer chase) serialises
       correctly. Parallel evaluation as in the blocking core. *)
    let pm = plan.Compile.cp_blocks.(cur).Compile.bp_phis in
    let nphi = Array.length pm.Compile.pm_dsts in
    if nphi > 0 then begin
      let row = Compile.phi_row pm prev in
      if row < 0 then Compile.missing_phi_edge f ~cur ~prev;
      let ops = pm.Compile.pm_rows.(row) in
      for k = 0 to nphi - 1 do
        let op = ops.(k) in
        scratch.(k) <- eval op;
        scratch_ready.(k) <- op_ready op
      done;
      for k = 0 to nphi - 1 do
        let r = pm.Compile.pm_dsts.(k) in
        regs.(r) <- scratch.(k);
        ready.(r) <- scratch_ready.(k)
      done
    end;
    let n = Array.length blk.Ir.instrs in
    for ii = 0 to n - 1 do
      let i = blk.Ir.instrs.(ii) in
      match i.Ir.kind with
      | Ir.Binop (op, a, b) ->
        issue ();
        let start = max st.cycle (ops_ready [ a; b ]) in
        regs.(i.Ir.dst) <- eval_binop op (eval a) (eval b);
        ready.(i.Ir.dst) <- start + 1;
        retire (start + 1)
      | Ir.Cmp (op, a, b) ->
        issue ();
        let start = max st.cycle (ops_ready [ a; b ]) in
        regs.(i.Ir.dst) <- eval_cmp op (eval a) (eval b);
        ready.(i.Ir.dst) <- start + 1;
        retire (start + 1)
      | Ir.Select (c, a, b) ->
        issue ();
        let start = max st.cycle (ops_ready [ c; a; b ]) in
        regs.(i.Ir.dst) <- (if eval c <> 0 then eval a else eval b);
        ready.(i.Ir.dst) <- start + 1;
        retire (start + 1)
      | Ir.Load a ->
        issue ();
        let start = max st.cycle (op_ready a) in
        let addr = eval a in
        let pc = Layout.pc_of_instr cur ii in
        let access = Hierarchy.demand_load hier ~pc ~addr ~cycle:start in
        regs.(i.Ir.dst) <- Memory.get mem addr;
        st.loads <- st.loads + 1;
        (match sampler with
        | Some s when access.Hierarchy.served_from = Hierarchy.Dram ->
          Sampler.on_llc_miss s ~load_pc:pc ~cycle:start
        | _ -> ());
        let completion = start + 1 + max 0 (access.Hierarchy.latency - l1_lat) in
        ready.(i.Ir.dst) <- completion;
        retire completion
      | Ir.Store (a, v) ->
        issue ();
        (* Stores drain through the store buffer; the written value's
           readiness is irrelevant to timing. *)
        Memory.set mem (eval a) (eval v);
        retire (st.cycle + 1)
      | Ir.Prefetch a ->
        issue ();
        let start = max st.cycle (op_ready a) in
        let addr = eval a in
        if addr >= 0 then Hierarchy.sw_prefetch hier ~addr ~cycle:start;
        st.prefetches <- st.prefetches + 1;
        retire (start + 1)
      | Ir.Work n ->
        let n = max 0 (eval n) in
        if n > 0 then issue ~n ();
        retire st.cycle
    done;
    match blk.Ir.term with
    | Ir.Jmp l ->
      record_branch cur ~cond:[] l;
      `Goto l
    | Ir.Br (c, t, e) ->
      let target = if eval c <> 0 then t else e in
      record_branch cur ~cond:[ c ] target;
      `Goto target
    | Ir.Ret v ->
      issue ();
      (match v with Some o -> wait_for [ o ] | None -> ());
      `Done (Option.map eval v)
  in
  let cur = ref f.Ir.entry in
  let prev = ref (-1) in
  let running = ref true in
  let ret = ref None in
  let step () =
    !running
    && begin
         (match run_block !cur !prev with
         | `Goto next ->
           prev := !cur;
           cur := next
         | `Done v ->
           ret := v;
           running := false);
         !running
       end
  in
  (st, ret, step)

(* ------------------------------------------------------------------ *)
(* Steppers and the driver loop                                        *)
(* ------------------------------------------------------------------ *)

type stepper = {
  sp_step : unit -> bool;
  sp_cycle : unit -> int;
  sp_finished : unit -> bool;
  sp_finish : unit -> outcome;
}

let make_stepper ?(config = default_config) ?engine ?hierarchy ?sampler
    ?window_cycles ?on_window ?(args = []) ~mem (f : Ir.func) =
  let engine =
    match engine with Some e -> e | None -> Atomic.get default_engine_a
  in
  let hier =
    match hierarchy with Some h -> h | None -> Hierarchy.create config.hierarchy
  in
  (* Bound the hardware prefetcher to this run's backing region: the
     next-line and stride paths must not emit targets past the end of
     the allocation (the prefetch-bounds bug). *)
  Hierarchy.set_prefetch_limit hier ~words:(Memory.size_words mem);
  let windowing =
    match (window_cycles, on_window) with
    | Some w, Some fn when w > 0 ->
      Some (Exec.make_windowing ~hier ~window_cycles:w ~on_window:fn)
    | _ -> None
  in
  let wtick = Option.map fst windowing in
  let regs = Array.make (max 1 f.Ir.next_reg) 0 in
  Exec.bind_params f regs args;
  let plan = Compile.plan f in
  let st, ret, step =
    match (engine, config.core) with
    | Interp, Blocking ->
      stepper_blocking ~config ~hier ~sampler ~wtick ~mem ~regs ~plan f
    | Interp, Stall_on_use { window } ->
      stepper_stall_on_use ~config ~hier ~sampler ~wtick ~mem ~regs ~window
        ~plan f
    | Compiled { superblocks }, Blocking ->
      Compiled.stepper_blocking ~config ~hier ~sampler ~wtick ~superblocks
        ~mem ~regs ~plan f
    | Compiled _, Stall_on_use { window } ->
      Compiled.stepper_stall_on_use ~config ~hier ~sampler ~wtick ~mem ~regs
        ~window ~plan f
  in
  let finished = ref false in
  let outcome = ref None in
  let sp_step () =
    let more = step () in
    if not more then finished := true;
    more
  in
  let sp_finish () =
    match !outcome with
    | Some o -> o
    | None ->
      (match windowing with Some (_, finish) -> finish st | None -> ());
      let o =
        {
          cycles = st.Exec.cycle;
          instructions = st.Exec.instrs;
          dyn_loads = st.Exec.loads;
          dyn_prefetches = st.Exec.prefetches;
          ret = !ret;
          counters = Hierarchy.counters hier;
        }
      in
      outcome := Some o;
      o
  in
  {
    sp_step;
    sp_cycle = (fun () -> st.Exec.cycle);
    sp_finished = (fun () -> !finished);
    sp_finish;
  }

let execute ?config ?engine ?hierarchy ?sampler ?window_cycles ?on_window
    ?args ~mem (f : Ir.func) =
  let t0 = Clock.now () in
  let sp =
    make_stepper ?config ?engine ?hierarchy ?sampler ?window_cycles ?on_window
      ?args ~mem f
  in
  while sp.sp_step () do
    ()
  done;
  let o = sp.sp_finish () in
  let wall = Clock.now () -. t0 in
  note_run ~cycles:o.cycles ~wall_s:wall;
  o
