module Memory = Aptget_mem.Memory
module Hierarchy = Aptget_cache.Hierarchy
module Sampler = Aptget_pmu.Sampler

type core_model = Blocking | Stall_on_use of { window : int }

type config = {
  hierarchy : Hierarchy.config;
  max_instructions : int;
  max_cycles : int;
  core : core_model;
}

let default_config =
  {
    hierarchy = Hierarchy.default_config;
    max_instructions = 2_000_000_000;
    max_cycles = 0;
    core = Blocking;
  }

let stall_on_use_config ?(window = 64) () =
  { default_config with core = Stall_on_use { window } }

type outcome = {
  cycles : int;
  instructions : int;
  dyn_loads : int;
  dyn_prefetches : int;
  ret : int option;
  counters : Hierarchy.counters;
}

let ipc o =
  if o.cycles = 0 then 0. else float_of_int o.instructions /. float_of_int o.cycles

let mpki o =
  if o.instructions = 0 then 0.
  else
    float_of_int o.counters.Hierarchy.offcore_demand_data_rd
    *. 1000.
    /. float_of_int o.instructions

let memory_stall_fraction o =
  if o.cycles = 0 then 0.
  else
    float_of_int
      (o.counters.Hierarchy.stall_cycles_llc + o.counters.Hierarchy.stall_cycles_dram)
    /. float_of_int o.cycles

(* Distance-error evidence, usable on whole-run counters or window
   deltas. Zero issued prefetches reads as zero error: an unhinted
   program is never "late". *)
let late_prefetch_ratio (c : Hierarchy.counters) =
  if c.Hierarchy.sw_prefetch_issued = 0 then 0.
  else
    float_of_int c.Hierarchy.load_hit_pre_sw_pf
    /. float_of_int c.Hierarchy.sw_prefetch_issued

let early_evict_ratio (c : Hierarchy.counters) =
  if c.Hierarchy.sw_prefetch_issued = 0 then 0.
  else
    float_of_int c.Hierarchy.sw_prefetch_early_evict
    /. float_of_int c.Hierarchy.sw_prefetch_issued

let useless_prefetch_ratio (c : Hierarchy.counters) =
  let attempts =
    c.Hierarchy.sw_prefetch_issued + c.Hierarchy.sw_prefetch_useless
    + c.Hierarchy.sw_prefetch_dropped
  in
  if attempts = 0 then 0.
  else float_of_int c.Hierarchy.sw_prefetch_useless /. float_of_int attempts

exception Fuse_blown of int
exception Deadline_blown of { cycles : int; limit : int }

let check_deadline config cycle =
  if config.max_cycles > 0 && cycle > config.max_cycles then
    raise (Deadline_blown { cycles = cycle; limit = config.max_cycles })

(* Shared value semantics. *)
let eval_binop op a b =
  match op with
  | Ir.Add -> a + b
  | Ir.Sub -> a - b
  | Ir.Mul -> a * b
  | Ir.Div -> if b = 0 then 0 else a / b
  | Ir.Rem -> if b = 0 then 0 else a mod b
  | Ir.And -> a land b
  | Ir.Or -> a lor b
  | Ir.Xor -> a lxor b
  | Ir.Shl -> a lsl (b land 62)
  | Ir.Shr -> a asr (b land 62)

let eval_cmp op a b =
  let v =
    match op with
    | Ir.Eq -> a = b
    | Ir.Ne -> a <> b
    | Ir.Lt -> a < b
    | Ir.Le -> a <= b
    | Ir.Gt -> a > b
    | Ir.Ge -> a >= b
  in
  if v then 1 else 0

type state = {
  mutable cycle : int;
  mutable instrs : int;
  mutable loads : int;
  mutable prefetches : int;
}

(* ------------------------------------------------------------------ *)
(* Execution windows: periodic counter-delta snapshots for online      *)
(* drift detection. The hook fires from the charge/issue path, so the  *)
(* window-less variants below stay byte-identical to the pre-window    *)
(* interpreter.                                                        *)
(* ------------------------------------------------------------------ *)

type window_report = {
  w_index : int;
  w_start_cycle : int;
  w_end_cycle : int;
  w_instructions : int;
  w_counters : Hierarchy.counters;
}

(* Returns [(tick, finish)]: [tick st] fires [on_window] whenever the
   cycle clock crosses the next window boundary; [finish st] flushes
   the trailing partial window (if any activity happened since the last
   boundary). *)
let make_windowing ~hier ~window_cycles ~on_window =
  let next = ref window_cycles in
  let idx = ref 0 in
  let prev_counters = ref (Hierarchy.counters hier) in
  let prev_cycle = ref 0 in
  let prev_instrs = ref 0 in
  let emit (st : state) =
    let c = Hierarchy.counters hier in
    on_window
      {
        w_index = !idx;
        w_start_cycle = !prev_cycle;
        w_end_cycle = st.cycle;
        w_instructions = st.instrs - !prev_instrs;
        w_counters = Hierarchy.sub_counters c !prev_counters;
      };
    incr idx;
    prev_counters := c;
    prev_cycle := st.cycle;
    prev_instrs := st.instrs
  in
  let tick (st : state) =
    if st.cycle >= !next then begin
      emit st;
      next := st.cycle + window_cycles
    end
  in
  let finish (st : state) = if st.cycle > !prev_cycle then emit st in
  (tick, finish)

let bind_params (f : Ir.func) regs args =
  (* Walk params and args in lockstep; extra args are ignored, missing
     ones leave the register at its default, as before. *)
  let rec go ps vs =
    match (ps, vs) with
    | p :: ps', v :: vs' ->
      regs.(p) <- v;
      go ps' vs'
    | _, _ -> ()
  in
  go f.Ir.params args

(* ------------------------------------------------------------------ *)
(* Pre-resolved phis. Block entry is the interpreter's second-hottest  *)
(* point after [charge]; resolving each phi with [List.assoc_opt] and  *)
(* allocating an intermediate list per entry dominated tight loops.    *)
(* Instead, [execute] pre-compiles every block's phis into one row of  *)
(* operands per predecessor; entering a block is then a short scan for *)
(* the predecessor row plus two array loops through a reusable scratch *)
(* buffer (values are still read in full before any register is        *)
(* written — phi semantics are parallel). A predecessor with no row    *)
(* (an edge missing from some phi) raises the same error the list     *)
(* walk used to, on arrival from that edge.                            *)

type phi_plan = {
  pp_dsts : int array;  (* one per phi *)
  pp_preds : int array;  (* predecessors every phi has an edge from *)
  pp_ops : Ir.operand array array;  (* row per pred, column per phi *)
}

let empty_plan = { pp_dsts = [||]; pp_preds = [||]; pp_ops = [||] }

let build_phi_plans (f : Ir.func) =
  Array.map
    (fun (blk : Ir.block) ->
      match blk.Ir.phis with
      | [] -> empty_plan
      | phis ->
        let preds =
          List.concat_map
            (fun (p : Ir.phi) -> List.map fst p.Ir.incoming)
            phis
          |> List.sort_uniq compare
        in
        let rows =
          List.filter_map
            (fun pred ->
              match
                List.map
                  (fun (p : Ir.phi) -> List.assoc pred p.Ir.incoming)
                  phis
              with
              | ops -> Some (pred, Array.of_list ops)
              | exception Not_found -> None)
            preds
        in
        {
          pp_dsts = Array.of_list (List.map (fun p -> p.Ir.phi_dst) phis);
          pp_preds = Array.of_list (List.map fst rows);
          pp_ops = Array.of_list (List.map snd rows);
        })
    f.Ir.blocks

let max_phis plans =
  Array.fold_left (fun m p -> max m (Array.length p.pp_dsts)) 0 plans

(* Cold path: report the first phi (in program order) with no edge from
   [prev] — byte-identical to the message the per-entry walk raised. *)
let missing_phi_edge (f : Ir.func) ~cur ~prev =
  let p =
    List.find
      (fun (p : Ir.phi) -> not (List.mem_assoc prev p.Ir.incoming))
      f.Ir.blocks.(cur).Ir.phis
  in
  invalid_arg
    (Printf.sprintf "Machine: phi %%%d in b%d has no edge from b%d"
       p.Ir.phi_dst cur prev)

let[@inline] phi_row plan prev =
  let preds = plan.pp_preds in
  let n = Array.length preds in
  let row = ref (-1) in
  let i = ref 0 in
  while !row < 0 && !i < n do
    if Array.unsafe_get preds !i = prev then row := !i;
    incr i
  done;
  !row

(* ------------------------------------------------------------------ *)
(* Blocking core: a demand load stalls until its data is available.    *)
(* ------------------------------------------------------------------ *)

let execute_blocking ~config ~hier ~sampler ~wtick ~mem ~regs ~plans
    (f : Ir.func) =
  let eval = function Ir.Reg r -> regs.(r) | Ir.Imm i -> i in
  let st = { cycle = 0; instrs = 0; loads = 0; prefetches = 0 } in
  let l1_lat = (Hierarchy.config hier).Hierarchy.l1_latency in
  let scratch = Array.make (max 1 (max_phis plans)) 0 in
  (* The sampler test is hoisted out of [charge]: measurement runs
     (sampler = None) pay nothing per instruction, and profiled runs
     tick once per charge — a charge of n cycles is one batched tick at
     the post-advance cycle, exactly as before. Windowed runs take the
     third variant so the common paths stay untouched. *)
  let charge =
    match (wtick, sampler) with
    | None, None ->
      fun n_instr n_cycles ->
        st.instrs <- st.instrs + n_instr;
        st.cycle <- st.cycle + n_cycles;
        if st.instrs > config.max_instructions then raise (Fuse_blown st.instrs);
        check_deadline config st.cycle
    | None, Some s ->
      fun n_instr n_cycles ->
        st.instrs <- st.instrs + n_instr;
        st.cycle <- st.cycle + n_cycles;
        if st.instrs > config.max_instructions then raise (Fuse_blown st.instrs);
        check_deadline config st.cycle;
        Sampler.on_cycle s ~cycle:st.cycle
    | Some tick, _ ->
      fun n_instr n_cycles ->
        st.instrs <- st.instrs + n_instr;
        st.cycle <- st.cycle + n_cycles;
        if st.instrs > config.max_instructions then raise (Fuse_blown st.instrs);
        check_deadline config st.cycle;
        (match sampler with
        | Some s -> Sampler.on_cycle s ~cycle:st.cycle
        | None -> ());
        tick st
  in
  let run_block cur prev =
    let blk = f.Ir.blocks.(cur) in
    let plan = plans.(cur) in
    let nphi = Array.length plan.pp_dsts in
    if nphi > 0 then begin
      let row = phi_row plan prev in
      if row < 0 then missing_phi_edge f ~cur ~prev;
      let ops = plan.pp_ops.(row) in
      for k = 0 to nphi - 1 do
        scratch.(k) <- eval ops.(k)
      done;
      for k = 0 to nphi - 1 do
        regs.(plan.pp_dsts.(k)) <- scratch.(k)
      done
    end;
    let n = Array.length blk.Ir.instrs in
    for ii = 0 to n - 1 do
      let i = blk.Ir.instrs.(ii) in
      match i.Ir.kind with
      | Ir.Binop (op, a, b) ->
        regs.(i.Ir.dst) <- eval_binop op (eval a) (eval b);
        charge 1 1
      | Ir.Cmp (op, a, b) ->
        regs.(i.Ir.dst) <- eval_cmp op (eval a) (eval b);
        charge 1 1
      | Ir.Select (c, a, b) ->
        regs.(i.Ir.dst) <- (if eval c <> 0 then eval a else eval b);
        charge 1 1
      | Ir.Load a ->
        let addr = eval a in
        let pc = Layout.pc_of_instr cur ii in
        let access = Hierarchy.demand_load hier ~pc ~addr ~cycle:st.cycle in
        regs.(i.Ir.dst) <- Memory.get mem addr;
        st.loads <- st.loads + 1;
        (match sampler with
        | Some s when access.Hierarchy.served_from = Hierarchy.Dram ->
          Sampler.on_llc_miss s ~load_pc:pc ~cycle:st.cycle
        | _ -> ());
        (* L1 hits are pipelined: 1 cycle. Anything deeper stalls the
           in-order core for the extra latency. *)
        charge 1 (1 + max 0 (access.Hierarchy.latency - l1_lat))
      | Ir.Store (a, v) ->
        Memory.set mem (eval a) (eval v);
        charge 1 1
      | Ir.Prefetch a ->
        let addr = eval a in
        if addr >= 0 then Hierarchy.sw_prefetch hier ~addr ~cycle:st.cycle;
        st.prefetches <- st.prefetches + 1;
        charge 1 1
      | Ir.Work n ->
        let n = max 0 (eval n) in
        charge n n
    done;
    let record_branch target =
      (match sampler with
      | Some s ->
        Sampler.on_branch s ~branch_pc:(Layout.pc_of_term cur)
          ~target_pc:(Layout.pc_of_instr target 0) ~cycle:st.cycle
      | None -> ());
      charge 1 1
    in
    match blk.Ir.term with
    | Ir.Jmp l ->
      record_branch l;
      `Goto l
    | Ir.Br (c, t, e) ->
      let target = if eval c <> 0 then t else e in
      record_branch target;
      `Goto target
    | Ir.Ret v ->
      charge 1 1;
      `Done (Option.map eval v)
  in
  let rec loop cur prev =
    match run_block cur prev with
    | `Goto next -> loop next cur
    | `Done v -> v
  in
  let ret = loop f.Ir.entry (-1) in
  (st, ret)

(* ------------------------------------------------------------------ *)
(* Stall-on-use core: loads complete in the background; the core       *)
(* stalls only when a not-yet-ready register is consumed, bounded by a *)
(* reorder window.                                                     *)
(* ------------------------------------------------------------------ *)

let execute_stall_on_use ~config ~hier ~sampler ~wtick ~mem ~regs ~window
    ~plans (f : Ir.func) =
  let eval = function Ir.Reg r -> regs.(r) | Ir.Imm i -> i in
  let ready = Array.make (Array.length regs) 0 in
  let st = { cycle = 0; instrs = 0; loads = 0; prefetches = 0 } in
  let l1_lat = (Hierarchy.config hier).Hierarchy.l1_latency in
  let nscratch = max 1 (max_phis plans) in
  let scratch = Array.make nscratch 0 in
  let scratch_ready = Array.make nscratch 0 in
  (* Ring of completion times of the last [window] instructions. *)
  let rob = Array.make (max 1 window) 0 in
  let rob_idx = ref 0 in
  (* Sampler test hoisted out of the per-instruction path, as in the
     blocking core; the windowed variant is separate for the same
     reason. *)
  let issue =
    match (wtick, sampler) with
    | None, None ->
      fun ?(n = 1) () ->
        st.instrs <- st.instrs + n;
        st.cycle <- max (st.cycle + n) rob.(!rob_idx);
        if st.instrs > config.max_instructions then raise (Fuse_blown st.instrs);
        check_deadline config st.cycle
    | None, Some s ->
      fun ?(n = 1) () ->
        (* In-order issue at one instruction per cycle, gated by the
           oldest in-flight instruction leaving the window. *)
        st.instrs <- st.instrs + n;
        st.cycle <- max (st.cycle + n) rob.(!rob_idx);
        if st.instrs > config.max_instructions then raise (Fuse_blown st.instrs);
        check_deadline config st.cycle;
        Sampler.on_cycle s ~cycle:st.cycle
    | Some tick, _ ->
      fun ?(n = 1) () ->
        st.instrs <- st.instrs + n;
        st.cycle <- max (st.cycle + n) rob.(!rob_idx);
        if st.instrs > config.max_instructions then raise (Fuse_blown st.instrs);
        check_deadline config st.cycle;
        (match sampler with
        | Some s -> Sampler.on_cycle s ~cycle:st.cycle
        | None -> ());
        tick st
  in
  let retire completion =
    rob.(!rob_idx) <- completion;
    rob_idx := (!rob_idx + 1) mod Array.length rob
  in
  let op_ready = function Ir.Reg r -> ready.(r) | Ir.Imm _ -> 0 in
  let ops_ready ops = List.fold_left (fun m o -> max m (op_ready o)) 0 ops in
  let wait_for ops = st.cycle <- max st.cycle (ops_ready ops) in
  let run_block cur prev =
    let blk = f.Ir.blocks.(cur) in
    (* Phi values inherit the readiness of the taken edge's source, so
       a loop-carried dependence (e.g. a pointer chase) serialises
       correctly. Parallel evaluation as in the blocking core. *)
    let plan = plans.(cur) in
    let nphi = Array.length plan.pp_dsts in
    if nphi > 0 then begin
      let row = phi_row plan prev in
      if row < 0 then missing_phi_edge f ~cur ~prev;
      let ops = plan.pp_ops.(row) in
      for k = 0 to nphi - 1 do
        let op = ops.(k) in
        scratch.(k) <- eval op;
        scratch_ready.(k) <- op_ready op
      done;
      for k = 0 to nphi - 1 do
        let r = plan.pp_dsts.(k) in
        regs.(r) <- scratch.(k);
        ready.(r) <- scratch_ready.(k)
      done
    end;
    let n = Array.length blk.Ir.instrs in
    for ii = 0 to n - 1 do
      let i = blk.Ir.instrs.(ii) in
      match i.Ir.kind with
      | Ir.Binop (op, a, b) ->
        issue ();
        let start = max st.cycle (ops_ready [ a; b ]) in
        regs.(i.Ir.dst) <- eval_binop op (eval a) (eval b);
        ready.(i.Ir.dst) <- start + 1;
        retire (start + 1)
      | Ir.Cmp (op, a, b) ->
        issue ();
        let start = max st.cycle (ops_ready [ a; b ]) in
        regs.(i.Ir.dst) <- eval_cmp op (eval a) (eval b);
        ready.(i.Ir.dst) <- start + 1;
        retire (start + 1)
      | Ir.Select (c, a, b) ->
        issue ();
        let start = max st.cycle (ops_ready [ c; a; b ]) in
        regs.(i.Ir.dst) <- (if eval c <> 0 then eval a else eval b);
        ready.(i.Ir.dst) <- start + 1;
        retire (start + 1)
      | Ir.Load a ->
        issue ();
        let start = max st.cycle (op_ready a) in
        let addr = eval a in
        let pc = Layout.pc_of_instr cur ii in
        let access = Hierarchy.demand_load hier ~pc ~addr ~cycle:start in
        regs.(i.Ir.dst) <- Memory.get mem addr;
        st.loads <- st.loads + 1;
        (match sampler with
        | Some s when access.Hierarchy.served_from = Hierarchy.Dram ->
          Sampler.on_llc_miss s ~load_pc:pc ~cycle:start
        | _ -> ());
        let completion = start + 1 + max 0 (access.Hierarchy.latency - l1_lat) in
        ready.(i.Ir.dst) <- completion;
        retire completion
      | Ir.Store (a, v) ->
        issue ();
        (* Stores drain through the store buffer; the written value's
           readiness is irrelevant to timing. *)
        Memory.set mem (eval a) (eval v);
        retire (st.cycle + 1)
      | Ir.Prefetch a ->
        issue ();
        let start = max st.cycle (op_ready a) in
        let addr = eval a in
        if addr >= 0 then Hierarchy.sw_prefetch hier ~addr ~cycle:start;
        st.prefetches <- st.prefetches + 1;
        retire (start + 1)
      | Ir.Work n ->
        let n = max 0 (eval n) in
        if n > 0 then issue ~n ();
        retire st.cycle
    done;
    let record_branch ~cond target =
      issue ();
      (* No speculation: the branch resolves before the next block. *)
      wait_for cond;
      retire (st.cycle + 1);
      (match sampler with
      | Some s ->
        Sampler.on_branch s ~branch_pc:(Layout.pc_of_term cur)
          ~target_pc:(Layout.pc_of_instr target 0) ~cycle:st.cycle
      | None -> ())
    in
    match blk.Ir.term with
    | Ir.Jmp l ->
      record_branch ~cond:[] l;
      `Goto l
    | Ir.Br (c, t, e) ->
      let target = if eval c <> 0 then t else e in
      record_branch ~cond:[ c ] target;
      `Goto target
    | Ir.Ret v ->
      issue ();
      (match v with Some o -> wait_for [ o ] | None -> ());
      `Done (Option.map eval v)
  in
  let rec loop cur prev =
    match run_block cur prev with
    | `Goto next -> loop next cur
    | `Done v -> v
  in
  let ret = loop f.Ir.entry (-1) in
  (st, ret)

let execute ?(config = default_config) ?hierarchy ?sampler ?window_cycles
    ?on_window ?(args = []) ~mem (f : Ir.func) =
  let hier =
    match hierarchy with Some h -> h | None -> Hierarchy.create config.hierarchy
  in
  let windowing =
    match (window_cycles, on_window) with
    | Some w, Some fn when w > 0 ->
      Some (make_windowing ~hier ~window_cycles:w ~on_window:fn)
    | _ -> None
  in
  let wtick = Option.map fst windowing in
  let regs = Array.make (max 1 f.Ir.next_reg) 0 in
  bind_params f regs args;
  let plans = build_phi_plans f in
  let st, ret =
    match config.core with
    | Blocking ->
      execute_blocking ~config ~hier ~sampler ~wtick ~mem ~regs ~plans f
    | Stall_on_use { window } ->
      execute_stall_on_use ~config ~hier ~sampler ~wtick ~mem ~regs ~window
        ~plans f
  in
  (match windowing with Some (_, finish) -> finish st | None -> ());
  {
    cycles = st.cycle;
    instructions = st.instrs;
    dyn_loads = st.loads;
    dyn_prefetches = st.prefetches;
    ret;
    counters = Hierarchy.counters hier;
  }
