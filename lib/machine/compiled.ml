(* Closure-compiled execution engine.

   Where the interpreter re-matches every instruction on every visit,
   this engine makes one pass over the {!Compile.t} plan and lowers
   each basic block into an array of OCaml closures with everything
   runtime-invariant pre-resolved: operand shapes (register slot vs
   immediate), layout PCs, branch target PCs, constant folds of
   immediate-only ALU ops. Dispatch is then a tight loop over closure
   arrays — no tag tests, no operand matches, no list traffic.

   Two lowering variants keep the engine byte-identical to the
   interpreter (same cycles, same counters, same exception payloads at
   the same points):

   - FAST: no sampler, no execution windows, no cycle deadline. Runs
     of pure ALU-class instructions (Binop/Cmp/Select — register
     writes only) are batched: the run's micro-ops execute back to
     back and the accounting (instrs/cycles/fuse) is settled once per
     run. Registers past a fuse blow are unobservable and the fuse
     payload of a 1-cycle-per-instruction run is always [fuse + 1],
     exactly what the interpreter's per-instruction charge raises.
     Loads, stores, prefetches and Work stay standalone steps so the
     cache hierarchy sees the exact same cycle stamps and no memory
     write can happen past a blown fuse.
   - GENERIC: anything with a sampler, window tick or deadline charges
     per instruction through the same charge closure shapes as the
     interpreter, so sampler cycle stamps, window boundaries and
     [Deadline_blown] payloads match byte-for-byte.

   The blocking core additionally has a superblock tier: the dispatch
   loop records (terminator PC, target PC) pairs into a private LBR
   ring during a deterministic warmup, then stitches hot edges into
   straight-line traces ({!Compile.superblocks}) whose interior blocks
   enter through a phi row pre-selected for the expected predecessor.
   A guard compares the actual successor on every hop; a mismatch side
   exits into ordinary dispatch. Traces never change semantics — only
   which closure performs the phi moves. *)

module Memory = Aptget_mem.Memory
module Hierarchy = Aptget_cache.Hierarchy
module Sampler = Aptget_pmu.Sampler
module Lbr = Aptget_pmu.Lbr
open Exec

type cblock = {
  cb_enter : int -> unit;  (* predecessor block id, -1 at entry *)
  cb_steps : (unit -> unit) array;
  cb_term : unit -> int;  (* next block id; -1 after Ret *)
}

(* One hop of a superblock trace: the expected block and its
   enter-from-known-predecessor specialization. Steps and terminator
   closures are shared with the block's ordinary [cblock]. *)
type tstep = {
  ts_block : int;
  ts_enter : unit -> unit;
  ts_steps : (unit -> unit) array;
  ts_term : unit -> int;
}

(* Dispatches recorded before the superblock tier is built. *)
let warmup_dispatches = 4096

(* Private ring for warmup edge recording; bigger than the PMU's
   32-entry default so short warmups still expose every hot edge. *)
let warmup_ring_size = 256

(* ------------------------------------------------------------------ *)
(* Blocking core                                                       *)
(* ------------------------------------------------------------------ *)

let stepper_blocking ~config ~hier ~sampler ~wtick ~superblocks ~mem ~regs
    ~(plan : Compile.t) (f : Ir.func) =
  let st = { cycle = 0; instrs = 0; loads = 0; prefetches = 0 } in
  let l1_lat = (Hierarchy.config hier).Hierarchy.l1_latency in
  let fuse = config.max_instructions in
  let nblocks = Array.length plan.Compile.cp_blocks in
  let scratch = Array.make (max 1 plan.Compile.cp_max_phis) 0 in
  let ret : int option ref = ref None in
  let fetch = function Ir.Reg r -> regs.(r) | Ir.Imm i -> i in
  let fast =
    (match wtick with None -> true | Some _ -> false)
    && (match sampler with None -> true | Some _ -> false)
    && config.max_cycles <= 0
  in
  (* Same three charge shapes as the interpreter; the generic variant
     routes every instruction through one of them. *)
  let charge =
    match (wtick, sampler) with
    | None, None ->
      fun n_instr n_cycles ->
        st.instrs <- st.instrs + n_instr;
        st.cycle <- st.cycle + n_cycles;
        if st.instrs > fuse then raise (Fuse_blown st.instrs);
        check_deadline config st.cycle
    | None, Some s ->
      fun n_instr n_cycles ->
        st.instrs <- st.instrs + n_instr;
        st.cycle <- st.cycle + n_cycles;
        if st.instrs > fuse then raise (Fuse_blown st.instrs);
        check_deadline config st.cycle;
        Sampler.on_cycle s ~cycle:st.cycle
    | Some tick, _ ->
      fun n_instr n_cycles ->
        st.instrs <- st.instrs + n_instr;
        st.cycle <- st.cycle + n_cycles;
        if st.instrs > fuse then raise (Fuse_blown st.instrs);
        check_deadline config st.cycle;
        (match sampler with
        | Some s -> Sampler.on_cycle s ~cycle:st.cycle
        | None -> ());
        tick st
  in
  (* 1-instruction-1-cycle (or n/n) accounting for effectful steps and
     terminators: inlined fuse check in the fast variant, the full
     charge otherwise. *)
  let pay =
    if fast then (fun n ->
      st.instrs <- st.instrs + n;
      st.cycle <- st.cycle + n;
      if st.instrs > fuse then raise (Fuse_blown st.instrs))
    else fun n -> charge n n
  in
  (* Pure register-write micro-op for ALU-class instructions; no
     accounting. Operand shapes and the binop/cmp selector are
     resolved here, once, instead of per visit. *)
  let alu_micro (i : Ir.instr) : unit -> unit =
    let d = i.Ir.dst in
    match i.Ir.kind with
    | Ir.Binop (op, Ir.Reg x, Ir.Reg y) -> (
      match op with
      | Ir.Add -> fun () -> regs.(d) <- regs.(x) + regs.(y)
      | Ir.Sub -> fun () -> regs.(d) <- regs.(x) - regs.(y)
      | Ir.Mul -> fun () -> regs.(d) <- regs.(x) * regs.(y)
      | Ir.Div ->
        fun () ->
          let b = regs.(y) in
          regs.(d) <- (if b = 0 then 0 else regs.(x) / b)
      | Ir.Rem ->
        fun () ->
          let b = regs.(y) in
          regs.(d) <- (if b = 0 then 0 else regs.(x) mod b)
      | Ir.And -> fun () -> regs.(d) <- regs.(x) land regs.(y)
      | Ir.Or -> fun () -> regs.(d) <- regs.(x) lor regs.(y)
      | Ir.Xor -> fun () -> regs.(d) <- regs.(x) lxor regs.(y)
      | Ir.Shl -> fun () -> regs.(d) <- regs.(x) lsl (regs.(y) land 62)
      | Ir.Shr -> fun () -> regs.(d) <- regs.(x) asr (regs.(y) land 62))
    | Ir.Binop (op, Ir.Reg x, Ir.Imm b) -> (
      match op with
      | Ir.Add -> fun () -> regs.(d) <- regs.(x) + b
      | Ir.Sub -> fun () -> regs.(d) <- regs.(x) - b
      | Ir.Mul -> fun () -> regs.(d) <- regs.(x) * b
      | Ir.Div ->
        if b = 0 then fun () -> regs.(d) <- 0
        else fun () -> regs.(d) <- regs.(x) / b
      | Ir.Rem ->
        if b = 0 then fun () -> regs.(d) <- 0
        else fun () -> regs.(d) <- regs.(x) mod b
      | Ir.And -> fun () -> regs.(d) <- regs.(x) land b
      | Ir.Or -> fun () -> regs.(d) <- regs.(x) lor b
      | Ir.Xor -> fun () -> regs.(d) <- regs.(x) lxor b
      | Ir.Shl ->
        let s = b land 62 in
        fun () -> regs.(d) <- regs.(x) lsl s
      | Ir.Shr ->
        let s = b land 62 in
        fun () -> regs.(d) <- regs.(x) asr s)
    | Ir.Binop (op, Ir.Imm a, Ir.Reg y) ->
      fun () -> regs.(d) <- eval_binop op a regs.(y)
    | Ir.Binop (op, Ir.Imm a, Ir.Imm b) ->
      let v = eval_binop op a b in
      fun () -> regs.(d) <- v
    | Ir.Cmp (op, Ir.Reg x, Ir.Reg y) -> (
      match op with
      | Ir.Eq -> fun () -> regs.(d) <- Bool.to_int (regs.(x) = regs.(y))
      | Ir.Ne -> fun () -> regs.(d) <- Bool.to_int (regs.(x) <> regs.(y))
      | Ir.Lt -> fun () -> regs.(d) <- Bool.to_int (regs.(x) < regs.(y))
      | Ir.Le -> fun () -> regs.(d) <- Bool.to_int (regs.(x) <= regs.(y))
      | Ir.Gt -> fun () -> regs.(d) <- Bool.to_int (regs.(x) > regs.(y))
      | Ir.Ge -> fun () -> regs.(d) <- Bool.to_int (regs.(x) >= regs.(y)))
    | Ir.Cmp (op, Ir.Reg x, Ir.Imm b) -> (
      match op with
      | Ir.Eq -> fun () -> regs.(d) <- Bool.to_int (regs.(x) = b)
      | Ir.Ne -> fun () -> regs.(d) <- Bool.to_int (regs.(x) <> b)
      | Ir.Lt -> fun () -> regs.(d) <- Bool.to_int (regs.(x) < b)
      | Ir.Le -> fun () -> regs.(d) <- Bool.to_int (regs.(x) <= b)
      | Ir.Gt -> fun () -> regs.(d) <- Bool.to_int (regs.(x) > b)
      | Ir.Ge -> fun () -> regs.(d) <- Bool.to_int (regs.(x) >= b))
    | Ir.Cmp (op, Ir.Imm a, Ir.Reg y) ->
      fun () -> regs.(d) <- eval_cmp op a regs.(y)
    | Ir.Cmp (op, Ir.Imm a, Ir.Imm b) ->
      let v = eval_cmp op a b in
      fun () -> regs.(d) <- v
    | Ir.Select (Ir.Reg c, a, b) ->
      fun () -> regs.(d) <- (if regs.(c) <> 0 then fetch a else fetch b)
    | Ir.Select (Ir.Imm c, a, b) -> (
      (* Constant condition: the arm is chosen at compile time; the
         other arm is never evaluated, as in the interpreter. *)
      match (if c <> 0 then a else b) with
      | Ir.Reg s -> fun () -> regs.(d) <- regs.(s)
      | Ir.Imm v -> fun () -> regs.(d) <- v)
    | Ir.Load _ | Ir.Store _ | Ir.Prefetch _ | Ir.Work _ ->
      invalid_arg "Compiled.alu_micro: not an ALU instruction"
  in
  let load_step ~pc d (a : Ir.operand) : unit -> unit =
    match (a, sampler) with
    | Ir.Reg x, None ->
      if fast then (fun () ->
        let addr = regs.(x) in
        let access = Hierarchy.demand_load hier ~pc ~addr ~cycle:st.cycle in
        regs.(d) <- Memory.get mem addr;
        st.loads <- st.loads + 1;
        st.instrs <- st.instrs + 1;
        st.cycle <- st.cycle + 1 + max 0 (access.Hierarchy.latency - l1_lat);
        if st.instrs > fuse then raise (Fuse_blown st.instrs))
      else fun () ->
        let addr = regs.(x) in
        let access = Hierarchy.demand_load hier ~pc ~addr ~cycle:st.cycle in
        regs.(d) <- Memory.get mem addr;
        st.loads <- st.loads + 1;
        charge 1 (1 + max 0 (access.Hierarchy.latency - l1_lat))
    | Ir.Reg x, Some s ->
      fun () ->
        let addr = regs.(x) in
        let access = Hierarchy.demand_load hier ~pc ~addr ~cycle:st.cycle in
        regs.(d) <- Memory.get mem addr;
        st.loads <- st.loads + 1;
        if access.Hierarchy.served_from = Hierarchy.Dram then
          Sampler.on_llc_miss s ~load_pc:pc ~cycle:st.cycle;
        charge 1 (1 + max 0 (access.Hierarchy.latency - l1_lat))
    | Ir.Imm addr, None ->
      fun () ->
        let access = Hierarchy.demand_load hier ~pc ~addr ~cycle:st.cycle in
        regs.(d) <- Memory.get mem addr;
        st.loads <- st.loads + 1;
        charge 1 (1 + max 0 (access.Hierarchy.latency - l1_lat))
    | Ir.Imm addr, Some s ->
      fun () ->
        let access = Hierarchy.demand_load hier ~pc ~addr ~cycle:st.cycle in
        regs.(d) <- Memory.get mem addr;
        st.loads <- st.loads + 1;
        if access.Hierarchy.served_from = Hierarchy.Dram then
          Sampler.on_llc_miss s ~load_pc:pc ~cycle:st.cycle;
        charge 1 (1 + max 0 (access.Hierarchy.latency - l1_lat))
  in
  let store_step (a : Ir.operand) (v : Ir.operand) : unit -> unit =
    match (a, v) with
    | Ir.Reg x, Ir.Reg y ->
      fun () ->
        Memory.set mem regs.(x) regs.(y);
        pay 1
    | _ ->
      fun () ->
        Memory.set mem (fetch a) (fetch v);
        pay 1
  in
  let prefetch_step (a : Ir.operand) : unit -> unit =
    match a with
    | Ir.Reg x ->
      fun () ->
        let addr = regs.(x) in
        if addr >= 0 then Hierarchy.sw_prefetch hier ~addr ~cycle:st.cycle;
        st.prefetches <- st.prefetches + 1;
        pay 1
    | Ir.Imm addr ->
      if addr >= 0 then fun () ->
        Hierarchy.sw_prefetch hier ~addr ~cycle:st.cycle;
        st.prefetches <- st.prefetches + 1;
        pay 1
      else fun () ->
        st.prefetches <- st.prefetches + 1;
        pay 1
  in
  let work_step (w : Ir.operand) : unit -> unit =
    match w with
    | Ir.Reg x -> fun () -> pay (max 0 regs.(x))
    | Ir.Imm i ->
      let n = max 0 i in
      fun () -> pay n
  in
  (* Terminators return the next block id (-1 = done). Branch target
     PCs are pre-resolved so the sampler hook is a straight call. *)
  let term_closure cur (t : Ir.terminator) : unit -> int =
    let term_pc = Layout.pc_of_term cur in
    let goto target =
      let tpc = Layout.pc_of_instr target 0 in
      match sampler with
      | Some s ->
        fun () ->
          Sampler.on_branch s ~branch_pc:term_pc ~target_pc:tpc
            ~cycle:st.cycle;
          charge 1 1;
          target
      | None ->
        fun () ->
          pay 1;
          target
    in
    match t with
    | Ir.Jmp l -> goto l
    | Ir.Br (Ir.Imm c, t1, e) -> goto (if c <> 0 then t1 else e)
    | Ir.Br (Ir.Reg x, t1, e) -> (
      match sampler with
      | Some s ->
        let tpc = Layout.pc_of_instr t1 0 in
        let epc = Layout.pc_of_instr e 0 in
        fun () ->
          if regs.(x) <> 0 then begin
            Sampler.on_branch s ~branch_pc:term_pc ~target_pc:tpc
              ~cycle:st.cycle;
            charge 1 1;
            t1
          end
          else begin
            Sampler.on_branch s ~branch_pc:term_pc ~target_pc:epc
              ~cycle:st.cycle;
            charge 1 1;
            e
          end
      | None ->
        fun () ->
          if regs.(x) <> 0 then begin
            pay 1;
            t1
          end
          else begin
            pay 1;
            e
          end)
    | Ir.Ret v -> (
      (* The interpreter charges before evaluating the return value, so
         a fuse blown on the Ret never reads a register. *)
      match v with
      | None ->
        fun () ->
          pay 1;
          ret := None;
          -1
      | Some (Ir.Reg x) ->
        fun () ->
          pay 1;
          ret := Some regs.(x);
          -1
      | Some (Ir.Imm i) ->
        let r = Some i in
        fun () ->
          pay 1;
          ret := r;
          -1)
  in
  let enter_closure cur (pm : Compile.phi_moves) : int -> unit =
    let dsts = pm.Compile.pm_dsts in
    let nphi = Array.length dsts in
    if nphi = 0 then fun _ -> ()
    else fun prev ->
      let row = Compile.phi_row pm prev in
      if row < 0 then Compile.missing_phi_edge f ~cur ~prev;
      let ops = pm.Compile.pm_rows.(row) in
      for k = 0 to nphi - 1 do
        scratch.(k) <- fetch ops.(k)
      done;
      for k = 0 to nphi - 1 do
        regs.(dsts.(k)) <- scratch.(k)
      done
  in
  let compile_block cur (bp : Compile.block_plan) : cblock =
    let instrs = bp.Compile.bp_instrs in
    let n = Array.length instrs in
    let steps = ref [] in
    (* reversed *)
    if fast then begin
      (* Batch runs of pure ALU micro-ops behind a single settlement of
         instrs/cycles/fuse. See the header comment for why this stays
         byte-identical. *)
      let pending = ref [] in
      let npend = ref 0 in
      let flush () =
        (match (!pending, !npend) with
        | [], _ -> ()
        | [ one ], _ ->
          steps :=
            (fun () ->
              one ();
              st.instrs <- st.instrs + 1;
              st.cycle <- st.cycle + 1;
              if st.instrs > fuse then raise (Fuse_blown st.instrs))
            :: !steps
        | many, k ->
          let ops = Array.of_list (List.rev many) in
          steps :=
            (fun () ->
              for j = 0 to k - 1 do
                (Array.unsafe_get ops j) ()
              done;
              st.instrs <- st.instrs + k;
              st.cycle <- st.cycle + k;
              if st.instrs > fuse then raise (Fuse_blown (fuse + 1)))
            :: !steps);
        pending := [];
        npend := 0
      in
      for ii = 0 to n - 1 do
        let i = instrs.(ii) in
        match i.Ir.kind with
        | Ir.Binop _ | Ir.Cmp _ | Ir.Select _ ->
          pending := alu_micro i :: !pending;
          incr npend
        | Ir.Load a ->
          flush ();
          steps :=
            load_step ~pc:(Layout.pc_of_instr cur ii) i.Ir.dst a :: !steps
        | Ir.Store (a, v) ->
          flush ();
          steps := store_step a v :: !steps
        | Ir.Prefetch a ->
          flush ();
          steps := prefetch_step a :: !steps
        | Ir.Work w ->
          flush ();
          steps := work_step w :: !steps
      done;
      flush ()
    end
    else
      for ii = 0 to n - 1 do
        let i = instrs.(ii) in
        let step =
          match i.Ir.kind with
          | Ir.Binop _ | Ir.Cmp _ | Ir.Select _ ->
            let micro = alu_micro i in
            fun () ->
              micro ();
              charge 1 1
          | Ir.Load a -> load_step ~pc:(Layout.pc_of_instr cur ii) i.Ir.dst a
          | Ir.Store (a, v) -> store_step a v
          | Ir.Prefetch a -> prefetch_step a
          | Ir.Work w -> work_step w
        in
        steps := step :: !steps
      done;
    {
      cb_enter = enter_closure cur bp.Compile.bp_phis;
      cb_steps = Array.of_list (List.rev !steps);
      cb_term = term_closure cur bp.Compile.bp_term;
    }
  in
  let blocks = Array.mapi compile_block plan.Compile.cp_blocks in
  (* Enter-from-known-predecessor specialization for trace interiors:
     the phi row is picked at stitch time, so entering is just the
     moves (with scratch-free forms for 1- and 2-phi blocks). Returns
     None when [prev] has no row — such an edge can never be part of a
     trace (taking it raises in ordinary dispatch anyway). *)
  let enter_known cur prev : (unit -> unit) option =
    let pm = plan.Compile.cp_blocks.(cur).Compile.bp_phis in
    let dsts = pm.Compile.pm_dsts in
    let nphi = Array.length dsts in
    if nphi = 0 then Some (fun () -> ())
    else
      let row = Compile.phi_row pm prev in
      if row < 0 then None
      else
        let ops = pm.Compile.pm_rows.(row) in
        if nphi = 1 then
          let d = dsts.(0) in
          match ops.(0) with
          | Ir.Reg s -> Some (fun () -> regs.(d) <- regs.(s))
          | Ir.Imm v -> Some (fun () -> regs.(d) <- v)
        else if nphi = 2 then
          let d0 = dsts.(0) and d1 = dsts.(1) in
          let o0 = ops.(0) and o1 = ops.(1) in
          Some
            (fun () ->
              (* Parallel semantics: both reads before either write. *)
              let v0 = fetch o0 and v1 = fetch o1 in
              regs.(d0) <- v0;
              regs.(d1) <- v1)
        else
          Some
            (fun () ->
              for k = 0 to nphi - 1 do
                scratch.(k) <- fetch ops.(k)
              done;
              for k = 0 to nphi - 1 do
                regs.(dsts.(k)) <- scratch.(k)
              done)
  in
  let traces : tstep array option array = Array.make (max 1 nblocks) None in
  let tiered = ref (not superblocks) in
  let ring = Lbr.create ~size:warmup_ring_size () in
  let dispatches = ref 0 in
  let tier_up () =
    tiered := true;
    let pairs =
      Array.to_list
        (Array.map
           (fun (e : Lbr.entry) -> (e.Lbr.branch_pc, e.Lbr.target_pc))
           (Lbr.snapshot ring))
    in
    let edges = Compile.edge_counts_of_branches ~nblocks pairs in
    let exception Bail in
    List.iter
      (fun (tr : Compile.trace) ->
        let bl = tr.Compile.tr_blocks in
        match
          Array.mapi
            (fun idx b ->
              let enter =
                if idx = 0 then fun () -> ()
                else
                  match enter_known b bl.(idx - 1) with
                  | Some e -> e
                  | None -> raise Bail
              in
              {
                ts_block = b;
                ts_enter = enter;
                ts_steps = blocks.(b).cb_steps;
                ts_term = blocks.(b).cb_term;
              })
            bl
        with
        | tsteps -> traces.(bl.(0)) <- Some tsteps
        | exception Bail -> ())
      (Compile.superblocks ~nblocks edges)
  in
  let run_steps (steps : (unit -> unit) array) =
    for j = 0 to Array.length steps - 1 do
      (Array.unsafe_get steps j) ()
    done
  in
  let cur = ref plan.Compile.cp_entry in
  let prev = ref (-1) in
  let running = ref true in
  (* One step = one dispatch: a single block, or — once tiered up — a
     whole trace run. With [superblocks:false] every step is exactly
     one block, matching the interpreter's dispatch granularity (the
     co-run scheduler relies on this for engine parity). *)
  let step () =
    !running
    && begin
         (match traces.(!cur) with
         | Some tr ->
           (* Trace head enters generically (any predecessor can
              arrive), then interior hops use their pre-selected phi
              rows as long as the guard holds. *)
           let head = Array.unsafe_get tr 0 in
           blocks.(head.ts_block).cb_enter !prev;
           run_steps head.ts_steps;
           let next = ref (head.ts_term ()) in
           prev := head.ts_block;
           if !next < 0 then running := false
           else begin
             let len = Array.length tr in
             let i = ref 1 in
             let go = ref true in
             while !go && !i < len do
               let ts = Array.unsafe_get tr !i in
               if !next = ts.ts_block then begin
                 ts.ts_enter ();
                 run_steps ts.ts_steps;
                 let n2 = ts.ts_term () in
                 prev := ts.ts_block;
                 if n2 < 0 then begin
                   running := false;
                   go := false
                 end
                 else next := n2;
                 incr i
               end
               else go := false (* side exit *)
             done;
             if !running then cur := !next
           end
         | None ->
           let cb = Array.unsafe_get blocks !cur in
           cb.cb_enter !prev;
           run_steps cb.cb_steps;
           let next = cb.cb_term () in
           if next < 0 then running := false
           else begin
             if not !tiered then begin
               Lbr.record ring
                 ~branch_pc:(Layout.pc_of_term !cur)
                 ~target_pc:(Layout.pc_of_instr next 0)
                 ~cycle:st.cycle;
               incr dispatches;
               if !dispatches >= warmup_dispatches then tier_up ()
             end;
             prev := !cur;
             cur := next
           end);
         !running
       end
  in
  (st, ret, step)

(* ------------------------------------------------------------------ *)
(* Stall-on-use core                                                   *)
(* ------------------------------------------------------------------ *)

let stepper_stall_on_use ~config ~hier ~sampler ~wtick ~mem ~regs ~window
    ~(plan : Compile.t) (f : Ir.func) =
  let st = { cycle = 0; instrs = 0; loads = 0; prefetches = 0 } in
  let l1_lat = (Hierarchy.config hier).Hierarchy.l1_latency in
  let fuse = config.max_instructions in
  let ready = Array.make (Array.length regs) 0 in
  let nscratch = max 1 plan.Compile.cp_max_phis in
  let scratch = Array.make nscratch 0 in
  let scratch_ready = Array.make nscratch 0 in
  let rob = Array.make (max 1 window) 0 in
  let rob_idx = ref 0 in
  let ret : int option ref = ref None in
  let fetch = function Ir.Reg r -> regs.(r) | Ir.Imm i -> i in
  let issue =
    match (wtick, sampler) with
    | None, None ->
      fun n ->
        st.instrs <- st.instrs + n;
        st.cycle <- max (st.cycle + n) rob.(!rob_idx);
        if st.instrs > fuse then raise (Fuse_blown st.instrs);
        check_deadline config st.cycle
    | None, Some s ->
      fun n ->
        st.instrs <- st.instrs + n;
        st.cycle <- max (st.cycle + n) rob.(!rob_idx);
        if st.instrs > fuse then raise (Fuse_blown st.instrs);
        check_deadline config st.cycle;
        Sampler.on_cycle s ~cycle:st.cycle
    | Some tick, _ ->
      fun n ->
        st.instrs <- st.instrs + n;
        st.cycle <- max (st.cycle + n) rob.(!rob_idx);
        if st.instrs > fuse then raise (Fuse_blown st.instrs);
        check_deadline config st.cycle;
        (match sampler with
        | Some s -> Sampler.on_cycle s ~cycle:st.cycle
        | None -> ());
        tick st
  in
  let retire completion =
    rob.(!rob_idx) <- completion;
    rob_idx := (!rob_idx + 1) mod Array.length rob
  in
  (* Readiness of an operand set, pre-shaped: [ready] entries are
     always >= 0, so the interpreter's [fold max 0] over a fresh list
     reduces to a max over the register operands. *)
  let rdy1 = function
    | Ir.Reg r -> fun () -> ready.(r)
    | Ir.Imm _ -> fun () -> 0
  in
  let rdy_of_regs = function
    | [] -> fun () -> 0
    | [ r ] -> fun () -> ready.(r)
    | [ r1; r2 ] -> fun () -> max ready.(r1) ready.(r2)
    | [ r1; r2; r3 ] -> fun () -> max (max ready.(r1) ready.(r2)) ready.(r3)
    | _ -> invalid_arg "Compiled.rdy_of_regs"
  in
  let regs_of ops =
    List.filter_map (function Ir.Reg r -> Some r | Ir.Imm _ -> None) ops
  in
  let step_closure cur ii (i : Ir.instr) : unit -> unit =
    let d = i.Ir.dst in
    match i.Ir.kind with
    | Ir.Binop (op, a, b) ->
      let r2 = rdy_of_regs (regs_of [ a; b ]) in
      let micro =
        match (a, b) with
        | Ir.Reg x, Ir.Reg y ->
          fun () -> regs.(d) <- eval_binop op regs.(x) regs.(y)
        | Ir.Reg x, Ir.Imm y -> fun () -> regs.(d) <- eval_binop op regs.(x) y
        | Ir.Imm x, Ir.Reg y -> fun () -> regs.(d) <- eval_binop op x regs.(y)
        | Ir.Imm x, Ir.Imm y ->
          let v = eval_binop op x y in
          fun () -> regs.(d) <- v
      in
      fun () ->
        issue 1;
        let start = max st.cycle (r2 ()) in
        micro ();
        ready.(d) <- start + 1;
        retire (start + 1)
    | Ir.Cmp (op, a, b) ->
      let r2 = rdy_of_regs (regs_of [ a; b ]) in
      fun () ->
        issue 1;
        let start = max st.cycle (r2 ()) in
        regs.(d) <- eval_cmp op (fetch a) (fetch b);
        ready.(d) <- start + 1;
        retire (start + 1)
    | Ir.Select (c, a, b) ->
      let r3 = rdy_of_regs (regs_of [ c; a; b ]) in
      fun () ->
        issue 1;
        let start = max st.cycle (r3 ()) in
        regs.(d) <- (if fetch c <> 0 then fetch a else fetch b);
        ready.(d) <- start + 1;
        retire (start + 1)
    | Ir.Load a -> (
      let pc = Layout.pc_of_instr cur ii in
      let r1 = rdy1 a in
      match sampler with
      | None ->
        fun () ->
          issue 1;
          let start = max st.cycle (r1 ()) in
          let addr = fetch a in
          let access = Hierarchy.demand_load hier ~pc ~addr ~cycle:start in
          regs.(d) <- Memory.get mem addr;
          st.loads <- st.loads + 1;
          let completion =
            start + 1 + max 0 (access.Hierarchy.latency - l1_lat)
          in
          ready.(d) <- completion;
          retire completion
      | Some s ->
        fun () ->
          issue 1;
          let start = max st.cycle (r1 ()) in
          let addr = fetch a in
          let access = Hierarchy.demand_load hier ~pc ~addr ~cycle:start in
          regs.(d) <- Memory.get mem addr;
          st.loads <- st.loads + 1;
          if access.Hierarchy.served_from = Hierarchy.Dram then
            Sampler.on_llc_miss s ~load_pc:pc ~cycle:start;
          let completion =
            start + 1 + max 0 (access.Hierarchy.latency - l1_lat)
          in
          ready.(d) <- completion;
          retire completion)
    | Ir.Store (a, v) ->
      fun () ->
        issue 1;
        Memory.set mem (fetch a) (fetch v);
        retire (st.cycle + 1)
    | Ir.Prefetch a ->
      let r1 = rdy1 a in
      fun () ->
        issue 1;
        let start = max st.cycle (r1 ()) in
        let addr = fetch a in
        if addr >= 0 then Hierarchy.sw_prefetch hier ~addr ~cycle:start;
        st.prefetches <- st.prefetches + 1;
        retire (start + 1)
    | Ir.Work w ->
      fun () ->
        let n = max 0 (fetch w) in
        if n > 0 then issue n;
        retire st.cycle
  in
  let term_closure cur (t : Ir.terminator) : unit -> int =
    let term_pc = Layout.pc_of_term cur in
    let branch_to ~wait target =
      let tpc = Layout.pc_of_instr target 0 in
      match (sampler, wait) with
      | None, None ->
        fun () ->
          issue 1;
          retire (st.cycle + 1);
          target
      | None, Some x ->
        fun () ->
          issue 1;
          st.cycle <- max st.cycle ready.(x);
          retire (st.cycle + 1);
          target
      | Some s, None ->
        fun () ->
          issue 1;
          retire (st.cycle + 1);
          Sampler.on_branch s ~branch_pc:term_pc ~target_pc:tpc
            ~cycle:st.cycle;
          target
      | Some s, Some x ->
        fun () ->
          issue 1;
          st.cycle <- max st.cycle ready.(x);
          retire (st.cycle + 1);
          Sampler.on_branch s ~branch_pc:term_pc ~target_pc:tpc
            ~cycle:st.cycle;
          target
    in
    match t with
    | Ir.Jmp l -> branch_to ~wait:None l
    | Ir.Br (Ir.Imm c, t1, e) -> branch_to ~wait:None (if c <> 0 then t1 else e)
    | Ir.Br (Ir.Reg x, t1, e) -> (
      let taken = branch_to ~wait:(Some x) t1 in
      let nottaken = branch_to ~wait:(Some x) e in
      fun () -> if regs.(x) <> 0 then taken () else nottaken ())
    | Ir.Ret v -> (
      match v with
      | None ->
        fun () ->
          issue 1;
          ret := None;
          -1
      | Some (Ir.Reg x) ->
        fun () ->
          issue 1;
          st.cycle <- max st.cycle ready.(x);
          ret := Some regs.(x);
          -1
      | Some (Ir.Imm i) ->
        let r = Some i in
        fun () ->
          issue 1;
          ret := r;
          -1)
  in
  let enter_closure cur (pm : Compile.phi_moves) : int -> unit =
    let dsts = pm.Compile.pm_dsts in
    let nphi = Array.length dsts in
    if nphi = 0 then fun _ -> ()
    else fun prev ->
      let row = Compile.phi_row pm prev in
      if row < 0 then Compile.missing_phi_edge f ~cur ~prev;
      let ops = pm.Compile.pm_rows.(row) in
      for k = 0 to nphi - 1 do
        let op = ops.(k) in
        scratch.(k) <- fetch op;
        scratch_ready.(k) <-
          (match op with Ir.Reg r -> ready.(r) | Ir.Imm _ -> 0)
      done;
      for k = 0 to nphi - 1 do
        let r = dsts.(k) in
        regs.(r) <- scratch.(k);
        ready.(r) <- scratch_ready.(k)
      done
  in
  let compile_block cur (bp : Compile.block_plan) : cblock =
    {
      cb_enter = enter_closure cur bp.Compile.bp_phis;
      cb_steps = Array.mapi (fun ii i -> step_closure cur ii i) bp.Compile.bp_instrs;
      cb_term = term_closure cur bp.Compile.bp_term;
    }
  in
  let blocks = Array.mapi compile_block plan.Compile.cp_blocks in
  let cur = ref plan.Compile.cp_entry in
  let prev = ref (-1) in
  let running = ref true in
  let step () =
    !running
    && begin
         let cb = Array.unsafe_get blocks !cur in
         cb.cb_enter !prev;
         let steps = cb.cb_steps in
         for j = 0 to Array.length steps - 1 do
           (Array.unsafe_get steps j) ()
         done;
         let next = cb.cb_term () in
         if next < 0 then running := false
         else begin
           prev := !cur;
           cur := next
         end;
         !running
       end
  in
  (st, ret, step)
