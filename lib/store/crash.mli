(** Deterministic crash injection for durability tests.

    A crash plan simulates the process dying at a precise, reproducible
    point: after the k-th store write (optionally tearing that write so
    only a prefix of its bytes reaches the file), or when a supervised
    simulation reaches a given cycle. Store primitives
    ({!Atomic_file.write}, {!Journal.append}) route every write through
    {!guard_write}; the watchdog maps its cycle deadline onto
    {!cycle_limit}. Raising {!Crashed} stands in for [kill -9]: no
    cleanup code runs past it, which is exactly the discipline the
    recovery paths are tested under.

    Plans are deliberately mutable single-use values: once the armed
    point fires, {!crashed} stays true and the test harness observes
    how much state survived. *)

exception Crashed of string
(** The simulated [kill -9]. Never catch this inside library code —
    recovery happens in the {e next} process (a fresh store opened on
    the same files), not in the dying one. *)

type mode =
  | Clean  (** the k-th write completes, then the process dies *)
  | Torn
      (** the process dies midway through the k-th write: only a
          prefix of its bytes reaches the file *)

type t

val none : unit -> t
(** A disarmed plan: every hook is a no-op. *)

val after_writes : ?mode:mode -> int -> t
(** [after_writes k] dies at the k-th guarded store write (1-based);
    [mode] (default {!Clean}) selects whether that write lands intact.
    @raise Invalid_argument when [k < 1]. *)

val at_cycle : int -> t
(** Die when a watchdog-supervised simulation reaches cycle [c >= 1].
    @raise Invalid_argument when [c < 1]. *)

val seeded_after_writes : ?mode:mode -> seed:int -> max_writes:int -> unit -> t
(** A reproducible kill point drawn uniformly from [1, max_writes] by a
    private {!Aptget_util.Rng} — the hook the crash-matrix CI job turns
    over different seeds. *)

val armed : t -> bool
(** A kill point is set and has not fired yet. *)

val crashed : t -> bool
(** The plan's kill point has fired. *)

val writes_seen : t -> int
(** Guarded writes observed so far (survives the crash, so a test can
    assert where the plan fired). *)

val kill_write : t -> int option
(** The armed write index, when the plan is a write plan. *)

val cycle_limit : t -> int option
(** The armed cycle, when the plan is a cycle plan. *)

val guard_write : t option -> write:(string -> unit) -> string -> unit
(** [guard_write crash ~write bytes] performs one store write through
    the plan: normally just [write bytes]; on the armed write, [Clean]
    writes everything and then raises {!Crashed}, [Torn] writes a
    strict prefix and raises mid-"syscall". [None] writes directly. *)

val crash_at_cycle : t -> cycle:int -> 'a
(** Fire a cycle plan: mark the plan crashed and raise {!Crashed}.
    Called by the watchdog when the supervised run hits
    {!cycle_limit}. *)

val is_crashed : exn -> bool
(** Recognise {!Crashed} — pipeline catch-all handlers must re-raise
    it (a dead process does not degrade gracefully). *)
