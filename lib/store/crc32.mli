(** CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over strings.

    The store's record checksum: stable across OCaml versions and
    processes (unlike [Hashtbl.hash]), cheap to compute, and strong
    enough to catch the failure mode it is aimed at — a record torn by
    a crash mid-write. Values are non-negative and fit in 32 bits, so
    they round-trip through the 8-hex-digit text form used in store
    files. *)

val string : string -> int
(** Checksum of the whole string (in [0, 2^32)). *)

val hex : int -> string
(** Fixed-width lower-case hex rendering ([%08x]). *)

val of_hex : string -> int option
(** Parse exactly eight lower-case hex digits; [None] otherwise. *)
