exception Crashed of string

let () =
  Printexc.register_printer (function
    | Crashed why -> Some (Printf.sprintf "Crash.Crashed(%s)" why)
    | _ -> None)

type mode = Clean | Torn

type point = Nothing | Write of { k : int; mode : mode } | Cycle of int

type t = {
  mutable point : point;
  mutable writes : int;
  mutable fired : bool;
}

let none () = { point = Nothing; writes = 0; fired = false }

let after_writes ?(mode = Clean) k =
  if k < 1 then invalid_arg "Crash.after_writes: k < 1";
  { point = Write { k; mode }; writes = 0; fired = false }

let at_cycle c =
  if c < 1 then invalid_arg "Crash.at_cycle: cycle < 1";
  { point = Cycle c; writes = 0; fired = false }

let seeded_after_writes ?mode ~seed ~max_writes () =
  if max_writes < 1 then invalid_arg "Crash.seeded_after_writes: max_writes < 1";
  let rng = Aptget_util.Rng.create seed in
  after_writes ?mode (1 + Aptget_util.Rng.int rng max_writes)

let armed t = (not t.fired) && t.point <> Nothing
let crashed t = t.fired
let writes_seen t = t.writes

let kill_write t =
  match t.point with Write { k; _ } -> Some k | Nothing | Cycle _ -> None

let cycle_limit t =
  match t.point with Cycle c -> Some c | Nothing | Write _ -> None

let fire t why =
  t.fired <- true;
  raise (Crashed why)

let guard_write crash ~write bytes =
  match crash with
  | None -> write bytes
  | Some t -> (
    t.writes <- t.writes + 1;
    match t.point with
    | Write { k; mode } when (not t.fired) && t.writes = k -> (
      match mode with
      | Clean ->
        write bytes;
        fire t (Printf.sprintf "killed after store write %d" k)
      | Torn ->
        (* A strict prefix: at least one byte short, so the record can
           never land intact (empty payloads just vanish). *)
        let keep = String.length bytes / 2 in
        if keep > 0 then write (String.sub bytes 0 keep);
        fire t (Printf.sprintf "killed tearing store write %d" k))
    | _ -> write bytes)

let crash_at_cycle t ~cycle =
  fire t (Printf.sprintf "killed at simulated cycle %d" cycle)

let is_crashed = function Crashed _ -> true | _ -> false
