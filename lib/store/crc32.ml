(* Table-driven CRC-32 (reflected, polynomial 0xEDB88320). *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let string s =
  let t = Lazy.force table in
  let crc = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> crc := t.((!crc lxor Char.code ch) land 0xFF) lxor (!crc lsr 8))
    s;
  !crc lxor 0xFFFFFFFF

let hex v = Printf.sprintf "%08x" (v land 0xFFFFFFFF)

let of_hex s =
  if String.length s <> 8 then None
  else if
    String.exists
      (fun c -> not (('0' <= c && c <= '9') || ('a' <= c && c <= 'f')))
      s
  then None
  else int_of_string_opt ("0x" ^ s)
