(** Atomic whole-file persistence: write-to-temp + rename.

    [open_out path] truncates in place, so a crash between the
    truncation and the final flush leaves a half-written (or empty)
    file where valid state used to be. Writing to a temporary file in
    the {e same directory} and [Sys.rename]-ing it over the target
    makes the update all-or-nothing at the filesystem level: readers
    see either the old contents or the new, never a tear. *)

val write : ?crash:Crash.t -> path:string -> string -> unit
(** Replace [path]'s contents atomically. The temporary file is
    [path ^ ".tmp"] (same directory, so the rename cannot cross a
    filesystem boundary). One guarded store write ({!Crash.guard_write});
    a crash during it leaves the destination untouched, with at most a
    stale [.tmp] beside it. On non-crash failures the temporary is
    removed. *)

val read : path:string -> (string, string) result
(** Whole-file read; I/O errors as [Error]. *)
