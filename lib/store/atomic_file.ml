let write ?crash ~path contents =
  let tmp = path ^ ".tmp" in
  (* A simulated crash must not run cleanup — the dying process gets no
     chance to unlink its temp file; recovery ignores it instead. *)
  (match
     let oc = open_out tmp in
     Fun.protect
       ~finally:(fun () -> close_out oc)
       (fun () -> Crash.guard_write crash ~write:(output_string oc) contents)
   with
  | () -> ()
  | exception e ->
    if not (Crash.is_crashed e) then (
      try Sys.remove tmp with Sys_error _ -> ());
    raise e);
  Sys.rename tmp path

let read ~path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        match really_input_string ic (in_channel_length ic) with
        | s -> Ok s
        | exception Sys_error e -> Error e)
