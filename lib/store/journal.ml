let header = "# aptget journal v1"

type recovery = {
  records : string list;
  dropped : int;
  first_error : (int * string) option;
}

(* A record line is "<crc32-hex> <len> <payload>"; [payload] is exactly
   [len] bytes, which lets a payload contain spaces (and protects
   against a tear that happens to end on a hex-looking prefix). *)
let record_to_line payload =
  Printf.sprintf "%s %d %s" (Crc32.hex (Crc32.string payload))
    (String.length payload) payload

let record_of_line line =
  match String.index_opt line ' ' with
  | None -> Error "expected '<crc> <len> <payload>'"
  | Some i -> (
    let crc_field = String.sub line 0 i in
    let rest = String.sub line (i + 1) (String.length line - i - 1) in
    match (Crc32.of_hex crc_field, String.index_opt rest ' ') with
    | None, _ -> Error (Printf.sprintf "bad checksum field %S" crc_field)
    | Some _, None -> Error "expected '<crc> <len> <payload>'"
    | Some crc, Some j -> (
      let len_field = String.sub rest 0 j in
      let payload = String.sub rest (j + 1) (String.length rest - j - 1) in
      match int_of_string_opt len_field with
      | None -> Error (Printf.sprintf "bad length field %S" len_field)
      | Some len when len <> String.length payload ->
        Error
          (Printf.sprintf "length mismatch (declared %d, got %d)" len
             (String.length payload))
      | Some _ ->
        if Crc32.string payload = crc then Ok payload
        else Error "checksum mismatch"))

let recover ~path =
  match Atomic_file.read ~path with
  | Error _ -> { records = []; dropped = 0; first_error = None }
  | Ok contents ->
    let lines = String.split_on_char '\n' contents in
    (* A file that does not end in '\n' has a torn final line; the
       split keeps that fragment as a last element, and a complete file
       yields a trailing "" we must not count as a line. *)
    let rec walk lineno acc = function
      | [] | [ "" ] -> { records = List.rev acc; dropped = 0; first_error = None }
      | line :: rest ->
        if line = "" || line.[0] = '#' then walk (lineno + 1) acc rest
        else (
          match record_of_line line with
          | Ok payload -> walk (lineno + 1) (payload :: acc) rest
          | Error why ->
            (* Drop this line and the whole suffix: after a tear there
               is no trustworthy framing. *)
            let remaining =
              List.length (List.filter (fun l -> l <> "") rest)
            in
            {
              records = List.rev acc;
              dropped = 1 + remaining;
              first_error = Some (lineno, why);
            })
    in
    walk 1 [] lines

type t = {
  j_path : string;
  mutable oc : out_channel option;
  mutable all : string list;  (* reverse order *)
  crash : Crash.t option;
}

let serialize records =
  String.concat "\n" ((header :: List.map record_to_line records) @ [ "" ])

let truncate ~path = Atomic_file.write ~path (serialize [])

let open_ ?crash ~path () =
  let r = recover ~path in
  (* Rewrite to the salvaged prefix when the tail was damaged (or the
     file is new), so subsequent appends extend a clean file. *)
  if r.dropped > 0 || not (Sys.file_exists path) then
    Atomic_file.write ~path (serialize r.records);
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  ({ j_path = path; oc = Some oc; all = List.rev r.records; crash }, r)

let append t payload =
  if String.contains payload '\n' then
    invalid_arg "Journal.append: payload contains a newline";
  match t.oc with
  | None -> invalid_arg "Journal.append: journal is closed"
  | Some oc ->
    let line = record_to_line payload ^ "\n" in
    Crash.guard_write t.crash
      ~write:(fun bytes ->
        output_string oc bytes;
        flush oc)
      line;
    t.all <- payload :: t.all

let records t = List.rev t.all
let path t = t.j_path

let close t =
  match t.oc with
  | None -> ()
  | Some oc ->
    t.oc <- None;
    close_out oc
