(** Append-only, checksummed journal with crash recovery.

    The campaign runner's checkpoint log: one flushed record per
    completed trial, so a crash loses at most the record being written.
    On-disk format is line-oriented text:

    {v
    # aptget journal v1
    9ae1c204 23 trial=micro#1 status=ok
    5b00f1d7 17 trial=micro#2 ...
    v}

    Each record line is [<crc32> <length> <payload>]: the CRC and
    explicit byte length make a torn tail (the classic crash artifact
    of an append) detectable instead of silently parseable-as-garbage.
    Recovery salvages every valid {e prefix} record — the first
    invalid line and everything after it are dropped and counted, on
    the grounds that bytes after a tear have unknown provenance. *)

type recovery = {
  records : string list;  (** the valid prefix, in append order *)
  dropped : int;  (** lines discarded (first bad line and the rest) *)
  first_error : (int * string) option;
      (** 1-based line number and reason for the first rejected line *)
}

val recover : path:string -> recovery
(** Read-only salvage of [path] (a missing file is an empty journal —
    first boot and post-crash-before-first-write look identical). *)

val truncate : path:string -> unit
(** Atomically rewrite [path] to an empty journal (header only) —
    compaction for a journal every record of which is settled, so a
    long-running appender does not replay an ever-growing history on
    each reopen. The caller must not hold the file open for append. *)

type t

val open_ : ?crash:Crash.t -> path:string -> unit -> t * recovery
(** Open (creating if needed) for appending. Recovery runs first; when
    it dropped anything, the file is rewritten to the salvaged prefix
    via {!Atomic_file.write} so the tear cannot shadow later appends.
    The returned {!recovery} reports what was salvaged and dropped. *)

val append : t -> string -> unit
(** Append one record and flush, as a single guarded store write
    ({!Crash.guard_write}), so the crash-after-k-writes plans count
    exactly the records. The payload must be newline-free.
    @raise Invalid_argument on a payload containing ['\n']. *)

val records : t -> string list
(** Every record this handle knows of: salvaged at open plus appended
    since, in order. *)

val path : t -> string

val close : t -> unit
