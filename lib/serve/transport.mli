(** Transports for the serve daemon: the file spool and a live socket.

    The wire protocol ({!Frame} + {!Wire}) and the batch-processing
    core ({!Server.process}) are transport-agnostic; this module owns
    the two ways bytes actually arrive:

    - the {e spool}: clients append frames to [<spool>/requests.q]
      under an fcntl lock and read [<spool>/responses.q]. Byte-for-byte
      the PR 6 transport — the primitives here are the same code,
      relocated below {!Server} so both transports can share them.
    - a {e socket listener}: a Unix-domain or TCP stream speaking the
      same frames. Connections are capped (over-cap connects are
      answered with a pre-framed shed payload and closed), each
      connection's partial frame is subject to a read deadline (the
      slow-loris guard), and a corrupt region inside a connection's
      stream is skipped with exactly {!Frame.decode_stream}'s
      resync — a torn or bit-flipped frame degrades the stream, it
      never kills the daemon.

    Every syscall loop here retries [EINTR]: a signal landing during a
    drain must never surface as a spurious crash exit. *)

val retry_intr : (unit -> 'a) -> 'a
(** Re-run [f] until it completes without [Unix.EINTR]. *)

val sleep : float -> unit
(** [sleepf] that re-sleeps the remainder after [EINTR]. *)

(** {1 Addresses} *)

type addr =
  | Unix_path of string  (** Unix-domain socket at this path *)
  | Tcp of string * int  (** numeric IPv4 host (or [localhost]) and port *)

val addr_of_string : string -> (addr, string) result
(** [unix:PATH] or [tcp:HOST:PORT] ([tcp:PORT] = [localhost]). *)

val addr_to_string : addr -> string

val connect : addr -> (Unix.file_descr, string) result
(** Client side: a connected stream socket to [addr] ([Error] for a
    bad host or a connection failure — retryable, never raised). *)

(** {1 Spool primitives} *)

val requests_path : spool:string -> string
val responses_path : spool:string -> string
val journal_path : spool:string -> string

val mkdir_p : string -> unit

val with_spool_lock : string -> (unit -> 'a) -> 'a
(** Hold the spool's fcntl lock ([<spool>/.lock], creating the spool
    first if needed) around [f]: serializes client appends to
    [requests.q] against the drain's read-then-truncate. *)

val spool_append : spool:string -> string -> unit
(** Append pre-framed bytes to [requests.q] under the spool lock. *)

(** {1 Socket listener} *)

type socket_config = {
  sc_addr : addr;
  sc_max_conns : int;  (** connection cap (>= 1) *)
  sc_read_deadline : float;
      (** seconds a connection may sit without completing a frame
          before it is shed (> 0) *)
  sc_shed_frame : string;
      (** pre-framed payload written (best-effort) to a connection
          refused at the cap or reaped at the deadline — the server
          supplies an [overloaded] response with id ["-"] *)
  sc_faults : Net_faults.config;
      (** server-side send faults (off in production) *)
}

val default_socket_config : addr -> socket_config
(** cap 64, read deadline 2 s, empty shed frame, faults off. *)

type listener

type conn_id = int

val listen : socket_config -> (listener, string) result
(** Bind and listen (unlinking a stale Unix-domain path first), set
    [SIGPIPE] to ignore. [Error] for a bad config or bind failure. *)

val listener_addr : listener -> addr

type poll = {
  p_payloads : (conn_id * string) list;
      (** whole decoded frame payloads, in arrival order *)
  p_conn_shed : int;  (** connections refused at the cap *)
  p_expired : int;  (** connections reaped at the read deadline *)
  p_resynced : int;
      (** corrupt in-stream regions skipped via frame-magic resync *)
  p_skipped_bytes : int;
  p_closed : int;  (** connections that disconnected on their own *)
}

val poll : listener -> timeout:float -> poll
(** One event-loop step: accept (shedding over the cap), read every
    ready connection, extract whole frames (keeping each connection's
    incomplete tail, including a partial frame magic split across
    reads), reap deadline-blown connections. Never raises on
    connection-level errors — a broken peer is counted in [p_closed],
    not thrown. *)

val respond : listener -> conn_id -> string -> unit
(** Best-effort framed write to a connection (the stream's seeded
    send faults apply); a write failure just closes the connection —
    the response is already durable in [responses.q], and a
    reconnecting client gets it replayed. *)

val finish : listener -> conn_id -> unit
(** One of the connection's outstanding payloads has been answered;
    when none remain the connection is closed (the transport is
    one-shot per request batch, like HTTP/1.0). *)

val conn_count : listener -> int

val close_listener : listener -> unit
(** Close every connection and the listening socket; unlink a
    Unix-domain path. Idempotent. *)
