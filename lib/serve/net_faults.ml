module Rng = Aptget_util.Rng

exception Disconnected of string

type config = {
  seed : int;
  disconnect_rate : float;
  short_write_rate : float;
  delay_rate : float;
  max_delay : float;
  duplicate_rate : float;
}

let off =
  {
    seed = 0;
    disconnect_rate = 0.;
    short_write_rate = 0.;
    delay_rate = 0.;
    max_delay = 0.;
    duplicate_rate = 0.;
  }

let active c =
  c.disconnect_rate > 0. || c.short_write_rate > 0. || c.delay_rate > 0.
  || c.duplicate_rate > 0.

let validate c =
  let rate name v =
    if v >= 0. && v <= 1. then Ok ()
    else Error (Printf.sprintf "%s rate %g outside [0, 1]" name v)
  in
  let ( let* ) = Result.bind in
  let* () = rate "disconnect" c.disconnect_rate in
  let* () = rate "short-write" c.short_write_rate in
  let* () = rate "delay" c.delay_rate in
  let* () = rate "duplicate" c.duplicate_rate in
  if c.max_delay >= 0. then Ok () else Error "max delay must be >= 0"

type t = { config : config; rng : Rng.t option }

let disabled = { config = off; rng = None }

let create config ~stream =
  (match validate config with
  | Ok () -> ()
  | Error e -> invalid_arg ("Net_faults.create: " ^ e));
  if not (active config) then disabled
  else
    (* Mix the stream index into the seed the same way the crash plans
       do: distinct connections draw independent but reproducible
       schedules. *)
    { config; rng = Some (Rng.create ((config.seed * 1_000_003) + stream)) }

type plan = {
  p_delay : float;
  p_duplicate : bool;
  p_cut_at : int option;
  p_short : bool;
}

let neutral = { p_delay = 0.; p_duplicate = false; p_cut_at = None; p_short = false }

(* Draw order is fixed (delay, duplicate, cut, short) so a schedule is
   a pure function of (config, stream, frame sequence). Each decision
   guards on its rate before drawing, so a zero-rate knob neither
   fires nor perturbs the stream of the others. *)
let plan t ~len =
  match t.rng with
  | None -> neutral
  | Some rng ->
    let fires rate = rate > 0. && Rng.float rng 1.0 < rate in
    let c = t.config in
    let p_delay =
      if fires c.delay_rate && c.max_delay > 0. then Rng.float rng c.max_delay
      else 0.
    in
    let p_duplicate = fires c.duplicate_rate in
    let p_cut_at =
      if fires c.disconnect_rate && len > 0 then Some (Rng.int rng len)
      else None
    in
    let p_short = fires c.short_write_rate in
    { p_delay; p_duplicate; p_cut_at; p_short }

let rec retry_intr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> retry_intr f

(* sleepf can be interrupted by a signal; re-sleep the remainder so an
   injected delay is a delay, not a coin flip. *)
let sleep seconds =
  if seconds > 0. then begin
    let until = Unix.gettimeofday () +. seconds in
    let rec go () =
      let left = until -. Unix.gettimeofday () in
      if left > 0. then begin
        (try Unix.sleepf left
         with Unix.Unix_error (Unix.EINTR, _, _) -> ());
        go ()
      end
    in
    go ()
  end

let broken_pipe = function
  | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.ESHUTDOWN), _, _) ->
    true
  | _ -> false

let write_all fd s ~pos ~len =
  let rec go pos len =
    if len > 0 then begin
      let n =
        try retry_intr (fun () -> Unix.write_substring fd s pos len)
        with e when broken_pipe e -> raise (Disconnected "peer closed mid-write")
      in
      go (pos + n) (len - n)
    end
  in
  go pos len

let write_short rng fd s ~pos ~len =
  let rec go pos len =
    if len > 0 then begin
      let chunk = min len (1 + Rng.int rng 16) in
      write_all fd s ~pos ~len:chunk;
      go (pos + chunk) (len - chunk)
    end
  in
  go pos len

let send_once t fd frame p =
  let len = String.length frame in
  (match p.p_cut_at with
  | Some k ->
    (* transmit only the prefix; the caller's connection is dead *)
    write_all fd frame ~pos:0 ~len:(min k len);
    raise (Disconnected (Printf.sprintf "injected disconnect at byte %d" k))
  | None ->
    if p.p_short then
      match t.rng with
      | Some rng -> write_short rng fd frame ~pos:0 ~len
      | None -> write_all fd frame ~pos:0 ~len
    else write_all fd frame ~pos:0 ~len)

let send_frame t fd frame =
  match t.rng with
  | None -> write_all fd frame ~pos:0 ~len:(String.length frame)
  | Some _ ->
    let p = plan t ~len:(String.length frame) in
    sleep p.p_delay;
    send_once t fd frame p;
    if p.p_duplicate then
      (* the retransmit travels clean: the duplicate-absorption path is
         what is under test, not a second fault *)
      write_all fd frame ~pos:0 ~len:(String.length frame)

let recv t fd buf =
  (match t.rng with
  | None -> ()
  | Some rng ->
    let c = t.config in
    if c.delay_rate > 0. && Rng.float rng 1.0 < c.delay_rate && c.max_delay > 0.
    then sleep (Rng.float rng c.max_delay));
  try retry_intr (fun () -> Unix.read fd buf 0 (Bytes.length buf))
  with e when broken_pipe e -> raise (Disconnected "peer reset mid-read")
