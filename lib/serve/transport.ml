module Clock = Aptget_util.Clock

(* ---------------- EINTR hardening ---------------- *)

let rec retry_intr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> retry_intr f

let sleep seconds =
  if seconds > 0. then begin
    let until = Unix.gettimeofday () +. seconds in
    let rec go () =
      let left = until -. Unix.gettimeofday () in
      if left > 0. then begin
        (try Unix.sleepf left with Unix.Unix_error (Unix.EINTR, _, _) -> ());
        go ()
      end
    in
    go ()
  end

(* ---------------- addresses ---------------- *)

type addr = Unix_path of string | Tcp of string * int

let addr_of_string s =
  let prefix p =
    let n = String.length p in
    if String.length s > n && String.sub s 0 n = p then
      Some (String.sub s n (String.length s - n))
    else None
  in
  match prefix "unix:" with
  | Some path -> Ok (Unix_path path)
  | None -> (
    match prefix "tcp:" with
    | Some rest -> (
      let port_of p =
        match int_of_string_opt p with
        | Some n when n >= 0 && n <= 65_535 -> Ok n
        | Some _ | None -> Error (Printf.sprintf "bad port %S" p)
      in
      match String.rindex_opt rest ':' with
      | None -> Result.map (fun p -> Tcp ("localhost", p)) (port_of rest)
      | Some i ->
        let host = String.sub rest 0 i in
        let port = String.sub rest (i + 1) (String.length rest - i - 1) in
        if host = "" then Error "empty tcp host"
        else Result.map (fun p -> Tcp (host, p)) (port_of port))
    | None ->
      Error
        (Printf.sprintf
           "bad address %S: expected unix:PATH or tcp:[HOST:]PORT" s))

let addr_to_string = function
  | Unix_path p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

let resolve_host h =
  if h = "localhost" then Ok Unix.inet_addr_loopback
  else
    match Unix.inet_addr_of_string h with
    | a -> Ok a
    | exception Failure _ -> Error (Printf.sprintf "bad host %S" h)

let sockaddr_of_addr = function
  | Unix_path p -> Ok (Unix.PF_UNIX, Unix.ADDR_UNIX p)
  | Tcp (h, port) ->
    Result.map (fun ip -> (Unix.PF_INET, Unix.ADDR_INET (ip, port))) (resolve_host h)

let connect addr =
  match sockaddr_of_addr addr with
  | Error e -> Error e
  | Ok (domain, sockaddr) -> (
    (* A peer that hangs up before we write must surface as EPIPE on
       the write, never as a process-killing SIGPIPE. *)
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
    match retry_intr (fun () -> Unix.connect fd sockaddr) with
    | () -> Ok fd
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot connect to %s: %s" (addr_to_string addr)
           (Unix.error_message e)))

(* ---------------- spool primitives ---------------- *)

let requests_path ~spool = Filename.concat spool "requests.q"

let responses_path ~spool = Filename.concat spool "responses.q"

let journal_path ~spool = Filename.concat spool "serve.journal"

let lock_path spool = Filename.concat spool ".lock"

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* The spool lock (fcntl, so it also works across processes)
   serializes client appends to [requests.q] against the drain's
   read-then-truncate of it. Without it a frame appended between the
   drain's snapshot and its truncate — or the half-written state of an
   append caught mid-write — would be destroyed with no response.
   The queue file is only ever opened {e after} the lock is held: an
   fd obtained before the truncate's rename would append to the
   replaced, unlinked inode. *)
let with_spool_lock spool f =
  mkdir_p spool;
  let fd =
    retry_intr (fun () ->
        Unix.openfile (lock_path spool) [ Unix.O_RDWR; Unix.O_CREAT ] 0o644)
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      retry_intr (fun () -> Unix.lockf fd Unix.F_LOCK 0);
      Fun.protect
        ~finally:(fun () -> retry_intr (fun () -> Unix.lockf fd Unix.F_ULOCK 0))
        f)

let spool_append ~spool frame =
  with_spool_lock spool @@ fun () ->
  let oc =
    open_out_gen
      [ Open_append; Open_creat; Open_binary ]
      0o644 (requests_path ~spool)
  in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc frame)

(* ---------------- socket listener ---------------- *)

type socket_config = {
  sc_addr : addr;
  sc_max_conns : int;
  sc_read_deadline : float;
  sc_shed_frame : string;
  sc_faults : Net_faults.config;
}

let default_socket_config addr =
  {
    sc_addr = addr;
    sc_max_conns = 64;
    sc_read_deadline = 2.0;
    sc_shed_frame = "";
    sc_faults = Net_faults.off;
  }

type conn_id = int

type conn = {
  c_id : conn_id;
  c_fd : Unix.file_descr;
  c_buf : Buffer.t;  (* undecoded stream tail *)
  mutable c_last : float;  (* stamp of the last byte of progress *)
  mutable c_pending : int;  (* whole frames delivered upward, unanswered *)
  c_faults : Net_faults.t;  (* server-side send fault stream *)
}

type listener = {
  config : socket_config;
  fd : Unix.file_descr;
  mutable conns : conn list;  (* accept order *)
  mutable next_id : int;
  mutable closed : bool;
  chunk : bytes;
}

let resolve_host h =
  if h = "localhost" then Ok Unix.inet_addr_loopback
  else
    match Unix.inet_addr_of_string h with
    | a -> Ok a
    | exception Failure _ -> Error (Printf.sprintf "bad host %S" h)

let listen config =
  if config.sc_max_conns < 1 then Error "max connections must be >= 1"
  else if not (config.sc_read_deadline > 0.) then
    Error "read deadline must be > 0"
  else
    match Net_faults.validate config.sc_faults with
    | Error e -> Error ("net faults: " ^ e)
    | Ok () -> (
      (* A peer that closes mid-response must surface as EPIPE on the
         write, never as a process-killing SIGPIPE. *)
      Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
      let bind_addr =
        match config.sc_addr with
        | Unix_path p ->
          if String.length p >= 100 then
            Error (Printf.sprintf "unix socket path too long: %s" p)
          else begin
            (try Unix.unlink p with Unix.Unix_error _ | Sys_error _ -> ());
            Ok (Unix.PF_UNIX, Unix.ADDR_UNIX p)
          end
        | Tcp (h, port) ->
          Result.map
            (fun ip -> (Unix.PF_INET, Unix.ADDR_INET (ip, port)))
            (resolve_host h)
      in
      match bind_addr with
      | Error e -> Error e
      | Ok (domain, sockaddr) -> (
        let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
        match
          if domain = Unix.PF_INET then
            Unix.setsockopt fd Unix.SO_REUSEADDR true;
          Unix.bind fd sockaddr;
          Unix.listen fd 64;
          Unix.set_nonblock fd
        with
        | () ->
          Ok
            {
              config;
              fd;
              conns = [];
              next_id = 0;
              closed = false;
              chunk = Bytes.create 65_536;
            }
        | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error
            (Printf.sprintf "cannot listen on %s: %s"
               (addr_to_string config.sc_addr)
               (Unix.error_message e))))

let listener_addr l = l.config.sc_addr

let conn_count l = List.length l.conns

let best_effort_write fd bytes =
  if bytes <> "" then
    try
      let rec go pos len =
        if len > 0 then begin
          let n = retry_intr (fun () -> Unix.write_substring fd bytes pos len) in
          go (pos + n) (len - n)
        end
      in
      go 0 (String.length bytes)
    with Unix.Unix_error _ | Net_faults.Disconnected _ -> ()

let close_conn l c =
  (try Unix.close c.c_fd with Unix.Unix_error _ -> ());
  l.conns <- List.filter (fun x -> x.c_id <> c.c_id) l.conns

(* Length of the longest proper suffix of [s] that is a prefix of the
   frame magic. A resync skip that runs to the end of the buffer must
   not consume such a suffix: it may be the first bytes of the next
   frame's magic split across two reads. *)
let magic_holdback s =
  let len = String.length s in
  let is_prefix n =
    n <= len && String.sub s (len - n) n = String.sub Frame.magic 0 n
  in
  if is_prefix 3 then 3 else if is_prefix 2 then 2 else if is_prefix 1 then 1 else 0

(* Extract every whole frame buffered on [c], dropping consumed bytes
   (decoded frames and settled corrupt regions) and keeping the
   incomplete tail. Returns payloads in stream order plus resync
   accounting. *)
let extract_frames c =
  let s = Buffer.contents c.c_buf in
  if s = "" then ([], 0, 0)
  else begin
    let st = Frame.decode_stream s in
    let holdback =
      (* only when the final skip region ran to end-of-buffer: its far
         edge is provisional until more bytes arrive *)
      match (st.Frame.trailing, List.rev st.Frame.skipped) with
      | None, k :: _ when k.Frame.skip_pos + k.Frame.skip_len = String.length s
        ->
        magic_holdback s
      | _ -> 0
    in
    let consumed = st.Frame.consumed - holdback in
    Buffer.clear c.c_buf;
    Buffer.add_substring c.c_buf s consumed (String.length s - consumed);
    let n = List.length st.Frame.frames in
    c.c_pending <- c.c_pending + n;
    ( st.Frame.frames,
      List.length st.Frame.skipped,
      max 0 (Frame.skipped_bytes st - holdback) )
  end

type poll = {
  p_payloads : (conn_id * string) list;
  p_conn_shed : int;
  p_expired : int;
  p_resynced : int;
  p_skipped_bytes : int;
  p_closed : int;
}

let empty_poll =
  {
    p_payloads = [];
    p_conn_shed = 0;
    p_expired = 0;
    p_resynced = 0;
    p_skipped_bytes = 0;
    p_closed = 0;
  }

let accept_burst l =
  let rec go shed =
    match Unix.accept ~cloexec:true l.fd with
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNABORTED), _, _)
      ->
      shed
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go shed
    | fd, _ ->
      if List.length l.conns >= l.config.sc_max_conns then begin
        (* refuse at the cap: tell the client it was shed, then hang up *)
        best_effort_write fd l.config.sc_shed_frame;
        (try Unix.close fd with Unix.Unix_error _ -> ());
        go (shed + 1)
      end
      else begin
        let c =
          {
            c_id = l.next_id;
            c_fd = fd;
            c_buf = Buffer.create 512;
            c_last = Clock.now ();
            c_pending = 0;
            c_faults = Net_faults.create l.config.sc_faults ~stream:l.next_id;
          }
        in
        l.next_id <- l.next_id + 1;
        l.conns <- l.conns @ [ c ];
        go shed
      end
  in
  go 0

let poll l ~timeout =
  if l.closed then empty_poll
  else begin
    let now = Clock.now () in
    (* wake for the nearest read-deadline even if no bytes arrive *)
    let deadline = l.config.sc_read_deadline in
    let wake =
      List.fold_left
        (fun acc c ->
          if c.c_pending > 0 then acc
          else Float.min acc (c.c_last +. deadline -. now))
        timeout l.conns
    in
    let fds = l.fd :: List.map (fun c -> c.c_fd) l.conns in
    let readable, _, _ =
      retry_intr (fun () -> Unix.select fds [] [] (Float.max 0. wake))
    in
    let conn_shed =
      if List.mem l.fd readable then accept_burst l else 0
    in
    let payloads = ref [] in
    let resynced = ref 0 in
    let skipped = ref 0 in
    let closed = ref 0 in
    (* read in accept order so arrival order within a poll round is a
       function of connection order, not of fd numbering *)
    List.iter
      (fun c ->
        if List.memq c.c_fd readable then begin
          match retry_intr (fun () -> Unix.read c.c_fd l.chunk 0 (Bytes.length l.chunk)) with
          | exception Unix.Unix_error _ ->
            incr closed;
            close_conn l c
          | 0 ->
            (* EOF: a connection abandoned with a partial frame buffered
               is a tear that can never complete — just drop it *)
            incr closed;
            close_conn l c
          | n ->
            Buffer.add_subbytes c.c_buf l.chunk 0 n;
            c.c_last <- Clock.now ();
            let frames, r, sk = extract_frames c in
            resynced := !resynced + r;
            skipped := !skipped + sk;
            payloads :=
              List.rev_append (List.map (fun p -> (c.c_id, p)) frames) !payloads
        end)
      l.conns;
    (* slow-loris guard: a connection with no outstanding request that
       has not completed a frame within the deadline is shed. A
       connection with [c_pending > 0] is waiting on us, not us on it. *)
    let now = Clock.now () in
    let expired =
      List.filter
        (fun c -> c.c_pending = 0 && now -. c.c_last > deadline)
        l.conns
    in
    List.iter
      (fun c ->
        best_effort_write c.c_fd l.config.sc_shed_frame;
        close_conn l c)
      expired;
    {
      p_payloads = List.rev !payloads;
      p_conn_shed = conn_shed;
      p_expired = List.length expired;
      p_resynced = !resynced;
      p_skipped_bytes = !skipped;
      p_closed = !closed;
    }
  end

let find_conn l cid = List.find_opt (fun c -> c.c_id = cid) l.conns

let respond l cid frame =
  match find_conn l cid with
  | None -> ()
  | Some c -> (
    try Net_faults.send_frame c.c_faults c.c_fd frame
    with Net_faults.Disconnected _ | Unix.Unix_error _ ->
      (* the durable copy in responses.q is the real answer; a
         reconnecting client gets it replayed *)
      close_conn l c)

let finish l cid =
  match find_conn l cid with
  | None -> ()
  | Some c ->
    c.c_pending <- c.c_pending - 1;
    if c.c_pending <= 0 then close_conn l c

let close_listener l =
  if not l.closed then begin
    l.closed <- true;
    List.iter (fun c -> try Unix.close c.c_fd with Unix.Unix_error _ -> ()) l.conns;
    l.conns <- [];
    (try Unix.close l.fd with Unix.Unix_error _ -> ());
    match l.config.sc_addr with
    | Unix_path p -> (
      try Unix.unlink p with Unix.Unix_error _ | Sys_error _ -> ())
    | Tcp _ -> ()
  end
