(** Length-prefixed, checksummed frames for the serve wire protocol.

    A frame is a 20-byte ASCII header followed by the raw payload:

    {v
    APTG <8 hex chars: CRC-32 of payload> <8 hex chars: payload length>
    v}

    (no separators — ["APTG" ^ crc ^ len ^ payload]). The explicit
    length makes the stream self-delimiting without any payload
    escaping, and the CRC makes a torn or bit-rotted frame detectable
    instead of silently parseable as garbage. Decoding never raises:
    a frame cut short by a torn append comes back as {!Incomplete}
    (the clean "stop here, the tail is unusable" signal) and a frame
    whose header or checksum is wrong comes back as {!Malformed}. *)

val max_payload : int
(** Upper bound on a payload's length (16 MiB). A length field above
    it is treated as {!Malformed} rather than as an instruction to
    wait for gigabytes that will never come. *)

val encode : string -> string
(** Frame one payload.
    @raise Invalid_argument when the payload exceeds {!max_payload}. *)

type error =
  | Incomplete of { have : int; need : int }
      (** The buffer ends mid-frame: only [have] of the [need] bytes
          this frame requires are present. At the end of a stream this
          is the torn-append artifact. *)
  | Malformed of string  (** bad magic, bad hex field, oversized
          length, or checksum mismatch *)

val error_to_string : error -> string

val decode : buf:string -> pos:int -> (string * int, error) result
(** Decode the frame starting at byte [pos] of [buf]: the payload and
    the offset of the next frame. Never raises (a [pos] outside the
    buffer is simply an empty suffix, i.e. [Incomplete]). *)

type stream = {
  frames : string list;  (** decoded payloads, in stream order *)
  consumed : int;  (** bytes covered by the decoded frames *)
  trailing : (int * error) option;
      (** when the stream did not end exactly on a frame boundary: the
          offset where decoding stopped and why. The bytes from there
          on are dropped — after a tear there is no trustworthy
          framing. *)
}

val decode_stream : string -> stream
(** Decode every whole frame from the front of the buffer. Never
    raises. *)
