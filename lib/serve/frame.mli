(** Length-prefixed, checksummed frames for the serve wire protocol.

    A frame is a 20-byte ASCII header followed by the raw payload:

    {v
    APTG <8 hex chars: CRC-32 of payload> <8 hex chars: payload length>
    v}

    (no separators — ["APTG" ^ crc ^ len ^ payload]). The explicit
    length makes the stream self-delimiting without any payload
    escaping, and the CRC makes a torn or bit-rotted frame detectable
    instead of silently parseable as garbage. Decoding never raises:
    a frame cut short by a torn append comes back as {!Incomplete}
    (the clean "stop here, the tail is unusable" signal) and a frame
    whose header or checksum is wrong comes back as {!Malformed}. *)

val magic : string
(** ["APTG"] — the 4-byte frame marker (exposed for transports that
    must recognise a partial magic split across stream reads). *)

val header_len : int
(** Fixed header size in bytes (20). *)

val max_payload : int
(** Upper bound on a payload's length (16 MiB). A length field above
    it is treated as {!Malformed} rather than as an instruction to
    wait for gigabytes that will never come. *)

val encode : string -> string
(** Frame one payload.
    @raise Invalid_argument when the payload exceeds {!max_payload}. *)

type error =
  | Incomplete of { have : int; need : int }
      (** The buffer ends mid-frame: only [have] of the [need] bytes
          this frame requires are present. At the end of a stream this
          is the torn-append artifact. *)
  | Malformed of string  (** bad magic, bad hex field, oversized
          length, or checksum mismatch *)

val error_to_string : error -> string

val decode : buf:string -> pos:int -> (string * int, error) result
(** Decode the frame starting at byte [pos] of [buf]: the payload and
    the offset of the next frame. Never raises (a [pos] outside the
    buffer is simply an empty suffix, i.e. [Incomplete]). *)

type skip = {
  skip_pos : int;  (** offset of the malformed region *)
  skip_len : int;  (** bytes skipped before the next magic (or end) *)
  skip_error : error;  (** why decoding failed there (always [Malformed]) *)
}

type stream = {
  frames : string list;  (** decoded payloads, in stream order *)
  consumed : int;
      (** bytes fully dealt with: decoded frames plus skipped garbage —
          everything except a trailing [Incomplete] tail *)
  skipped : skip list;
      (** malformed regions resynced past, in stream order. Skipped
          bytes are consumed (they are permanently damaged — the frame
          is wholly present and wrong, or its header is garbage), but
          the frames behind them still decode. *)
  trailing : (int * error) option;
      (** an [Incomplete] tail: the stream ends mid-frame. Those bytes
          are {e not} consumed — they may be an append still in
          progress, so the next decode of a longer buffer picks them
          up (and if they never complete into a valid frame, a later
          append turns them into a [Malformed] skip). *)
}

val skipped_bytes : stream -> int
(** Total bytes covered by [skipped]. *)

val decode_stream : string -> stream
(** Decode every whole frame in the buffer, resyncing at the next
    ["APTG"] magic after a malformed region. Never raises. *)
