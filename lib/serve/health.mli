(** Liveness/readiness state file for the serve daemon.

    The daemon publishes its state to [<spool>/health] (atomically,
    temp + rename) at every transition: [ready] when it starts a
    drain, [draining] when a shutdown marker is seen, and
    [stopped] (with its exit code) when it exits. A supervisor — or
    [aptget serve --health] — probes by reading the file: no daemon
    process introspection, no signals, works across restarts.

    Two heartbeat fields distinguish a {e live idle} daemon from a
    dead one whose file still says [ready]: [beat=] is bumped
    monotonically on every publish (including idle [--watch] polls),
    and [pid=] names the writer so the probe can ask the kernel
    whether it still exists. Both are absent from older files and read
    leniently, like [resynced=]/[salvage.*].

    Besides liveness, the file carries the daemon's cumulative
    robustness evidence: corrupt queue regions skipped ([resynced=])
    and per-store salvage counts ([salvage.<store>=], e.g.
    [salvage.journal]), so a supervisor can tell a clean daemon from
    one that has been quietly repairing damage. The parser ignores
    unknown keys, so probes keep working across versions. *)

type state =
  | Ready
  | Draining
  | Stopped of int  (** exit code the daemon stopped with *)

type info = {
  i_state : state;
  i_processed : int;  (** cumulative requests answered *)
  i_resynced : int;
      (** cumulative corrupt request-queue regions skipped past *)
  i_salvage : (string * int) list;
      (** store name -> records salvaged, sorted by name ([journal] is
          always present in files this version writes; other
          [store.salvage.*] counters ride along when metrics are on) *)
  i_beat : int;
      (** publish counter, monotonic per daemon instance; 0 in older
          files *)
  i_pid : int option;  (** writing process, absent in older files *)
}

val state_to_string : state -> string

val write :
  spool:string ->
  ?processed:int ->
  ?resynced:int ->
  ?salvage:(string * int) list ->
  ?beat:int ->
  ?pid:int ->
  state ->
  unit
(** Atomic publish; [processed] is the cumulative request count, a
    cheap progress signal for "is it live or wedged". [resynced] and
    [salvage] (written sorted) are the cumulative damage-repair
    counts; [beat]/[pid] are the heartbeat (omitted = not written,
    for byte-compatibility in tests that pin older shapes). *)

val read : spool:string -> (info, string) result
(** The published state and counts. Missing
    [resynced]/[salvage.*]/[beat]/[pid] lines (older files) read as
    zero/empty/absent. [Error] for a missing or unparseable file (a
    supervisor treats both as unhealthy). *)

val probe : spool:string -> Exit_code.t
(** The [--health] verdict: [Ok_] when the daemon is [Ready] or
    [Draining] {e and}, if the file names a [pid], that process still
    exists (a ready-claiming file left by a dead daemon probes
    [Crashed]); [Ok_] for [Stopped] with code 0; [Degraded] when it
    stopped degraded ([1]/[4]); [Crashed] for a crashed stop, a
    missing spool or a corrupt health file. *)
