(** Liveness/readiness state file for the serve daemon.

    The daemon publishes its state to [<spool>/health] (atomically,
    temp + rename) at every transition: [ready] when it starts a
    drain, [draining] when a shutdown marker is seen, and
    [stopped] (with its exit code) when it exits. A supervisor — or
    [aptget serve --health] — probes by reading the file: no daemon
    process introspection, no signals, works across restarts. *)

type state =
  | Ready
  | Draining
  | Stopped of int  (** exit code the daemon stopped with *)

val state_to_string : state -> string

val write : spool:string -> ?processed:int -> state -> unit
(** Atomic publish; [processed] is the cumulative request count, a
    cheap progress signal for "is it live or wedged". *)

val read : spool:string -> (state * int, string) result
(** The published state and processed count. [Error] for a missing or
    unparseable file (a supervisor treats both as unhealthy). *)

val probe : spool:string -> Exit_code.t
(** The [--health] verdict: [Ok_] when the daemon is [Ready] or
    [Draining], or [Stopped] with code 0; [Degraded] when it stopped
    degraded ([1]/[4]); [Crashed] for a crashed stop, a missing spool
    or a corrupt health file. *)
