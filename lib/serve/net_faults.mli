(** Seeded network-fault injection for the socket transport.

    The byte stream a real service lives on fails in ways a file spool
    never shows: a [write(2)] lands fewer bytes than asked, the peer
    vanishes after byte [k] of a frame, delivery stalls, a retransmit
    duplicates a frame. This module injects exactly those faults,
    deterministically from a seed, in the same off-by-default
    bit-identical-when-off design as the PMU fault layer (PR 1) and
    the crash plans (PR 3): with every rate at zero the send/recv
    helpers are plain EINTR-safe syscall loops that never consult the
    generator.

    A {!t} is one {e stream} of scheduled faults — one per connection
    (server side) or per attempt (client side) — derived from the
    config seed and a caller-chosen stream index, so fault schedules
    are reproducible per connection regardless of interleaving. *)

exception Disconnected of string
(** The connection died under the caller: an injected cut, or a real
    [EPIPE]/[ECONNRESET]/EOF-mid-frame surfaced by the helpers.
    Callers (client retries, the server's per-connection guards) treat
    it as data, never let it escape as a crash. *)

type config = {
  seed : int;
  disconnect_rate : float;
      (** chance a frame's transmission is cut after a uniformly
          chosen prefix of its bytes (the mid-flight disconnect) *)
  short_write_rate : float;
      (** chance a frame is dribbled out in short chunks instead of
          one write — exercises every reassembly path downstream *)
  delay_rate : float;  (** chance delivery of a frame is delayed *)
  max_delay : float;  (** upper bound (seconds) on an injected delay *)
  duplicate_rate : float;
      (** chance a frame is transmitted twice (the retransmit
          duplicate an idempotent server must absorb) *)
}

val off : config
(** All rates (and the seed) zero: the do-nothing layer. *)

val active : config -> bool
(** True when any rate is positive. *)

val validate : config -> (unit, string) result
(** Rates in [0, 1], [max_delay >= 0]. *)

type t

val disabled : t
(** A stream that never fires (what [create off ~stream] builds, kept
    allocation-free for the common path). *)

val create : config -> stream:int -> t
(** The fault schedule for stream [stream] (a connection or attempt
    index). Same config and stream index => same schedule.
    @raise Invalid_argument when the config does not validate. *)

(** One frame's transmission plan, drawn by {!plan}: *)
type plan = {
  p_delay : float;  (** seconds to stall before transmitting (0 = none) *)
  p_duplicate : bool;  (** transmit the frame twice *)
  p_cut_at : int option;
      (** stop (and raise {!Disconnected}) after this many bytes *)
  p_short : bool;  (** dribble the bytes out in short chunks *)
}

val plan : t -> len:int -> plan
(** Draw the plan for one [len]-byte frame. A disabled stream returns
    the neutral plan without advancing any generator. *)

val send_frame : t -> Unix.file_descr -> string -> unit
(** Transmit one encoded frame according to its {!plan}: delay, then
    write all bytes (short-chunked if planned, cut with
    {!Disconnected} if planned, duplicated if planned). EINTR-safe;
    real [EPIPE]/[ECONNRESET] also surface as {!Disconnected}. With
    faults off this is exactly the plain write-all loop. *)

val recv : t -> Unix.file_descr -> bytes -> int
(** [read(2)] into the buffer with EINTR retry; [0] at EOF. An
    injected delay may stall first; real [ECONNRESET] surfaces as
    {!Disconnected}. *)
