module Quarantine = Aptget_core.Quarantine
module Meas_cache = Aptget_core.Meas_cache
module Breaker = Aptget_core.Breaker

type t = {
  id : string;
  dir : string;
  quarantine : Quarantine.t;
  cache : Meas_cache.scope option;
  breaker : Breaker.t;
}

type registry = {
  root : string;
  breaker : Breaker.config;
  cache : bool;
  table : (string, t) Hashtbl.t;
  mutex : Mutex.t;
}

let registry ~root ?(breaker = Breaker.default_config) ?(cache = true) () =
  { root; breaker; cache; table = Hashtbl.create 8; mutex = Mutex.create () }

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let materialize reg id =
  let dir = Filename.concat (Filename.concat reg.root "tenants") id in
  mkdir_p dir;
  let quarantine =
    Quarantine.create ~path:(Filename.concat dir "quarantine") ()
  in
  let cache =
    if reg.cache then begin
      let cache_dir = Filename.concat dir "cache" in
      mkdir_p cache_dir;
      Some { Meas_cache.dir = cache_dir; namespace = id }
    end
    else None
  in
  { id; dir; quarantine; cache; breaker = Breaker.create ~config:reg.breaker () }

let find_or_create reg id =
  match Wire.valid_id id with
  | Error e -> Error ("tenant: " ^ e)
  | Ok () ->
    Mutex.lock reg.mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock reg.mutex)
      (fun () ->
        match Hashtbl.find_opt reg.table id with
        | Some t -> Ok t
        | None ->
          let t = materialize reg id in
          Hashtbl.add reg.table id t;
          Ok t)

let known reg =
  Mutex.lock reg.mutex;
  let ts = Hashtbl.fold (fun _ t acc -> t :: acc) reg.table [] in
  Mutex.unlock reg.mutex;
  List.sort (fun a b -> compare a.id b.id) ts
