module Backoff = Aptget_util.Backoff
module Atomic_file = Aptget_store.Atomic_file

type target = Spool of string | Socket of Transport.addr

type config = {
  target : target;
  attempts : int;
  timeout : float;
  retry_unit : float;
  backoff : Backoff.config;
  seed : int;
  faults : Net_faults.config;
}

let default_config target =
  {
    target;
    attempts = 5;
    timeout = 5.0;
    retry_unit = 0.01;
    backoff = Backoff.default;
    seed = 0;
    faults = Net_faults.off;
  }

let validate c =
  let ( let* ) = Result.bind in
  let* () = if c.attempts >= 1 then Ok () else Error "attempts must be >= 1" in
  let* () = if c.timeout > 0. then Ok () else Error "timeout must be > 0" in
  let* () =
    if c.retry_unit >= 0. then Ok () else Error "retry unit must be >= 0"
  in
  let* () = Backoff.validate c.backoff in
  Net_faults.validate c.faults

type t = { config : config; stream : int; backoff : Backoff.t }

let create ?(stream = 0) config =
  (match validate config with
  | Ok () -> ()
  | Error e -> invalid_arg ("Client.create: " ^ e));
  {
    config;
    stream;
    (* distinct clients under one seed draw independent jitter *)
    backoff = Backoff.create ~seed:((config.seed * 9_176_201) + stream) config.backoff;
  }

type outcome = { response : Wire.response; attempts : int }

(* Each attempt gets its own fault stream: a retried frame must not
   replay the fault that killed its predecessor, or no retry could
   ever land. *)
let attempt_faults t ~attempt =
  Net_faults.create t.config.faults ~stream:((t.stream * 131) + attempt)

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* ---------------- socket attempts ---------------- *)

let read_response faults fd ~deadline ~id =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 65_536 in
  let rec scan () =
    let s = Frame.decode_stream (Buffer.contents buf) in
    let hit =
      List.find_map
        (fun payload ->
          match Wire.response_of_string payload with
          | Ok r when r.Wire.rsp_id = id || r.Wire.rsp_id = "-" -> Some r
          | Ok _ | Error _ -> None)
        s.Frame.frames
    in
    match hit with Some r -> Ok r | None -> wait ()
  and wait () =
    let left = deadline -. Unix.gettimeofday () in
    if left <= 0. then Error "timed out waiting for response"
    else begin
      let readable, _, _ =
        Transport.retry_intr (fun () -> Unix.select [ fd ] [] [] left)
      in
      if readable = [] then Error "timed out waiting for response"
      else
        match Net_faults.recv faults fd chunk with
        | exception Net_faults.Disconnected m -> Error m
        | 0 -> Error "connection closed before response"
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          scan ()
    end
  in
  wait ()

let socket_attempt t addr req ~attempt =
  match Transport.connect addr with
  | Error e -> Error e
  | Ok fd ->
    Fun.protect ~finally:(fun () -> close_quietly fd) @@ fun () ->
    let faults = attempt_faults t ~attempt in
    let frame = Frame.encode (Wire.body_to_string (Wire.Run req)) in
    (match Net_faults.send_frame faults fd frame with
    | exception Net_faults.Disconnected m -> Error m
    | () ->
      read_response faults fd
        ~deadline:(Unix.gettimeofday () +. t.config.timeout)
        ~id:req.Wire.req_id)

(* ---------------- spool attempts ---------------- *)

(* The first recorded response for an id is the authoritative one (a
   later record for the same id can only be the daemon's duplicate
   reject). *)
let spool_find spool id =
  match Atomic_file.read ~path:(Transport.responses_path ~spool) with
  | Error _ -> None
  | Ok b ->
    List.find_map
      (fun payload ->
        match Wire.response_of_string payload with
        | Ok r when r.Wire.rsp_id = id -> Some r
        | Ok _ | Error _ -> None)
      (Frame.decode_stream b).Frame.frames

let spool_attempt t spool req ~attempt =
  let faults = attempt_faults t ~attempt in
  let frame = Frame.encode (Wire.body_to_string (Wire.Run req)) in
  let p = Net_faults.plan faults ~len:(String.length frame) in
  Transport.sleep p.p_delay;
  match p.p_cut_at with
  | Some k ->
    (* a torn append: the daemon sees a malformed region and resyncs
       past it; the request itself never arrived *)
    Transport.spool_append ~spool (String.sub frame 0 (min k (String.length frame)));
    Error (Printf.sprintf "injected cut at byte %d of spool append" k)
  | None ->
    Transport.spool_append ~spool frame;
    if p.p_duplicate then Transport.spool_append ~spool frame;
    let deadline = Unix.gettimeofday () +. t.config.timeout in
    let rec wait () =
      match spool_find spool req.Wire.req_id with
      | Some r -> Ok r
      | None ->
        if Unix.gettimeofday () >= deadline then
          Error "timed out waiting for response"
        else begin
          Transport.sleep 0.01;
          wait ()
        end
    in
    wait ()

(* ---------------- the retry loop ---------------- *)

let call t req =
  let attempt_once ~attempt =
    match t.config.target with
    | Spool spool -> spool_attempt t spool req ~attempt
    | Socket addr -> socket_attempt t addr req ~attempt
  in
  let rec go attempt =
    match attempt_once ~attempt with
    | Ok response -> Ok { response; attempts = attempt }
    | Error e ->
      if attempt >= t.config.attempts then
        Error (Printf.sprintf "gave up after %d attempts: %s" attempt e)
      else begin
        Transport.sleep (t.config.retry_unit *. Backoff.next t.backoff ~attempt);
        go (attempt + 1)
      end
  in
  go 1

let shutdown t =
  let frame = Frame.encode (Wire.body_to_string Wire.Shutdown) in
  match t.config.target with
  | Spool spool ->
    Transport.spool_append ~spool frame;
    Ok ()
  | Socket addr -> (
    match Transport.connect addr with
    | Error e -> Error e
    | Ok fd ->
      Fun.protect ~finally:(fun () -> close_quietly fd) @@ fun () ->
      (match Net_faults.send_frame Net_faults.disabled fd frame with
      | exception Net_faults.Disconnected m -> Error m
      | () -> Ok ()))
