module Atomic_file = Aptget_store.Atomic_file

type state = Ready | Draining | Stopped of int

type info = {
  i_state : state;
  i_processed : int;
  i_resynced : int;
  i_salvage : (string * int) list;
  i_beat : int;
  i_pid : int option;
}

let state_to_string = function
  | Ready -> "ready"
  | Draining -> "draining"
  | Stopped _ -> "stopped"

let magic = "# aptget serve health v1"

let path ~spool = Filename.concat spool "health"

let write ~spool ?(processed = 0) ?(resynced = 0) ?(salvage = []) ?beat ?pid
    state =
  let code = match state with Stopped c -> c | Ready | Draining -> 0 in
  let salvage_lines =
    List.sort compare salvage
    |> List.map (fun (k, v) -> Printf.sprintf "salvage.%s=%d\n" k v)
    |> String.concat ""
  in
  let heartbeat_lines =
    (* beat: bumped on every publish, so a supervisor can tell a live
       idle daemon (beat advances between probes) from a dead one (it
       does not). pid lets the probe ask the kernel directly. *)
    (match beat with Some b -> Printf.sprintf "beat=%d\n" b | None -> "")
    ^ match pid with Some p -> Printf.sprintf "pid=%d\n" p | None -> ""
  in
  Atomic_file.write ~path:(path ~spool)
    (Printf.sprintf "%s\nstate=%s\ncode=%d\nprocessed=%d\nresynced=%d\n%s%s"
       magic (state_to_string state) code processed resynced heartbeat_lines
       salvage_lines)

let read ~spool =
  match Atomic_file.read ~path:(path ~spool) with
  | Error e -> Error ("no health file: " ^ e)
  | Ok text -> (
    let kvs =
      List.filter_map
        (fun line ->
          match String.index_opt line '=' with
          | Some i ->
            Some
              ( String.sub line 0 i,
                String.sub line (i + 1) (String.length line - i - 1) )
          | None -> None)
        (String.split_on_char '\n' text)
    in
    let field k = List.assoc_opt k kvs in
    (* Older files have no resynced/salvage/beat/pid lines; read them
       as absent so a probe across a version upgrade keeps working. *)
    let int_field k dflt =
      match Option.bind (field k) int_of_string_opt with
      | Some v -> v
      | None -> dflt
    in
    let salvage =
      List.filter_map
        (fun (k, v) ->
          match String.index_opt k '.' with
          | Some i when String.sub k 0 i = "salvage" ->
            Option.map
              (fun n -> (String.sub k (i + 1) (String.length k - i - 1), n))
              (int_of_string_opt v)
          | _ -> None)
        kvs
      |> List.sort compare
    in
    match (field "state", field "code", field "processed") with
    | Some state_s, Some code_s, Some processed_s -> (
      match (int_of_string_opt code_s, int_of_string_opt processed_s) with
      | Some code, Some processed -> (
        let info st =
          Ok
            {
              i_state = st;
              i_processed = processed;
              i_resynced = int_field "resynced" 0;
              i_salvage = salvage;
              i_beat = int_field "beat" 0;
              i_pid = Option.bind (field "pid") int_of_string_opt;
            }
        in
        match state_s with
        | "ready" -> info Ready
        | "draining" -> info Draining
        | "stopped" -> info (Stopped code)
        | _ -> Error ("unknown state " ^ state_s))
      | _ -> Error "bad code/processed field")
    | _ -> Error "missing health fields")

let pid_alive pid =
  match Unix.kill pid 0 with
  | () -> true
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
  | exception Unix.Unix_error (Unix.EPERM, _, _) ->
    (* exists, owned by someone else *)
    true
  | exception Unix.Unix_error _ -> true

let probe ~spool =
  match read ~spool with
  | Error _ -> Exit_code.Crashed
  | Ok { i_state = Ready | Draining; i_pid; _ } -> (
    (* A ready-claiming file whose writer is gone is a daemon that died
       without publishing a stop: distinguish it from a live idle one. *)
    match i_pid with
    | Some pid when not (pid_alive pid) -> Exit_code.Crashed
    | Some _ | None -> Exit_code.Ok_)
  | Ok { i_state = Stopped code; _ } -> (
    match Exit_code.of_int code with
    | Some Exit_code.Ok_ -> Exit_code.Ok_
    | Some (Exit_code.Degraded | Exit_code.Overloaded) -> Exit_code.Degraded
    | Some (Exit_code.Usage | Exit_code.Crashed) | None -> Exit_code.Crashed)
