module Atomic_file = Aptget_store.Atomic_file

type state = Ready | Draining | Stopped of int

let state_to_string = function
  | Ready -> "ready"
  | Draining -> "draining"
  | Stopped _ -> "stopped"

let magic = "# aptget serve health v1"

let path ~spool = Filename.concat spool "health"

let write ~spool ?(processed = 0) state =
  let code = match state with Stopped c -> c | Ready | Draining -> 0 in
  Atomic_file.write ~path:(path ~spool)
    (Printf.sprintf "%s\nstate=%s\ncode=%d\nprocessed=%d\n" magic
       (state_to_string state) code processed)

let read ~spool =
  match Atomic_file.read ~path:(path ~spool) with
  | Error e -> Error ("no health file: " ^ e)
  | Ok text -> (
    let kvs =
      List.filter_map
        (fun line ->
          match String.index_opt line '=' with
          | Some i ->
            Some
              ( String.sub line 0 i,
                String.sub line (i + 1) (String.length line - i - 1) )
          | None -> None)
        (String.split_on_char '\n' text)
    in
    let field k = List.assoc_opt k kvs in
    match (field "state", field "code", field "processed") with
    | Some state_s, Some code_s, Some processed_s -> (
      match (int_of_string_opt code_s, int_of_string_opt processed_s) with
      | Some code, Some processed -> (
        match state_s with
        | "ready" -> Ok (Ready, processed)
        | "draining" -> Ok (Draining, processed)
        | "stopped" -> Ok (Stopped code, processed)
        | _ -> Error ("unknown state " ^ state_s))
      | _ -> Error "bad code/processed field")
    | _ -> Error "missing health fields")

let probe ~spool =
  match read ~spool with
  | Error _ -> Exit_code.Crashed
  | Ok ((Ready | Draining), _) -> Exit_code.Ok_
  | Ok (Stopped code, _) -> (
    match Exit_code.of_int code with
    | Some Exit_code.Ok_ -> Exit_code.Ok_
    | Some (Exit_code.Degraded | Exit_code.Overloaded) -> Exit_code.Degraded
    | Some (Exit_code.Usage | Exit_code.Crashed) | None -> Exit_code.Crashed)
