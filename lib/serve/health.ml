module Atomic_file = Aptget_store.Atomic_file

type state = Ready | Draining | Stopped of int

type info = {
  i_state : state;
  i_processed : int;
  i_resynced : int;
  i_salvage : (string * int) list;
}

let state_to_string = function
  | Ready -> "ready"
  | Draining -> "draining"
  | Stopped _ -> "stopped"

let magic = "# aptget serve health v1"

let path ~spool = Filename.concat spool "health"

let write ~spool ?(processed = 0) ?(resynced = 0) ?(salvage = []) state =
  let code = match state with Stopped c -> c | Ready | Draining -> 0 in
  let salvage_lines =
    List.sort compare salvage
    |> List.map (fun (k, v) -> Printf.sprintf "salvage.%s=%d\n" k v)
    |> String.concat ""
  in
  Atomic_file.write ~path:(path ~spool)
    (Printf.sprintf "%s\nstate=%s\ncode=%d\nprocessed=%d\nresynced=%d\n%s"
       magic (state_to_string state) code processed resynced salvage_lines)

let read ~spool =
  match Atomic_file.read ~path:(path ~spool) with
  | Error e -> Error ("no health file: " ^ e)
  | Ok text -> (
    let kvs =
      List.filter_map
        (fun line ->
          match String.index_opt line '=' with
          | Some i ->
            Some
              ( String.sub line 0 i,
                String.sub line (i + 1) (String.length line - i - 1) )
          | None -> None)
        (String.split_on_char '\n' text)
    in
    let field k = List.assoc_opt k kvs in
    (* Older files have no resynced/salvage lines; read them as 0 so a
       probe across a version upgrade keeps working. *)
    let int_field k dflt =
      match Option.bind (field k) int_of_string_opt with
      | Some v -> v
      | None -> dflt
    in
    let salvage =
      List.filter_map
        (fun (k, v) ->
          match String.index_opt k '.' with
          | Some i when String.sub k 0 i = "salvage" ->
            Option.map
              (fun n -> (String.sub k (i + 1) (String.length k - i - 1), n))
              (int_of_string_opt v)
          | _ -> None)
        kvs
      |> List.sort compare
    in
    match (field "state", field "code", field "processed") with
    | Some state_s, Some code_s, Some processed_s -> (
      match (int_of_string_opt code_s, int_of_string_opt processed_s) with
      | Some code, Some processed -> (
        let info st =
          Ok
            {
              i_state = st;
              i_processed = processed;
              i_resynced = int_field "resynced" 0;
              i_salvage = salvage;
            }
        in
        match state_s with
        | "ready" -> info Ready
        | "draining" -> info Draining
        | "stopped" -> info (Stopped code)
        | _ -> Error ("unknown state " ^ state_s))
      | _ -> Error "bad code/processed field")
    | _ -> Error "missing health fields")

let probe ~spool =
  match read ~spool with
  | Error _ -> Exit_code.Crashed
  | Ok { i_state = Ready | Draining; _ } -> Exit_code.Ok_
  | Ok { i_state = Stopped code; _ } -> (
    match Exit_code.of_int code with
    | Some Exit_code.Ok_ -> Exit_code.Ok_
    | Some (Exit_code.Degraded | Exit_code.Overloaded) -> Exit_code.Degraded
    | Some (Exit_code.Usage | Exit_code.Crashed) | None -> Exit_code.Crashed)
