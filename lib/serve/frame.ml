(* Framing. The header is fixed-width ASCII so a human can read a
   spool file with [xxd] (or plain [less]), and so decode needs no
   state beyond an offset. *)

module Crc32 = Aptget_store.Crc32

let magic = "APTG"

let header_len = 20 (* 4 magic + 8 crc + 8 len *)

let max_payload = 16 * 1024 * 1024

let encode payload =
  let n = String.length payload in
  if n > max_payload then invalid_arg "Frame.encode: payload too large";
  String.concat ""
    [ magic; Crc32.hex (Crc32.string payload); Printf.sprintf "%08x" n; payload ]

type error =
  | Incomplete of { have : int; need : int }
  | Malformed of string

let error_to_string = function
  | Incomplete { have; need } ->
    Printf.sprintf "incomplete frame: %d of %d bytes" have need
  | Malformed why -> "malformed frame: " ^ why

let decode ~buf ~pos =
  let len = String.length buf in
  let avail = if pos >= len then 0 else len - pos in
  if avail < header_len then Error (Incomplete { have = avail; need = header_len })
  else if String.sub buf pos 4 <> magic then Error (Malformed "bad magic")
  else
    match
      ( Crc32.of_hex (String.sub buf (pos + 4) 8),
        Crc32.of_hex (String.sub buf (pos + 12) 8) )
    with
    | None, _ -> Error (Malformed "bad checksum field")
    | _, None -> Error (Malformed "bad length field")
    | Some crc, Some n ->
      if n > max_payload then Error (Malformed "oversized payload")
      else if avail < header_len + n then
        Error (Incomplete { have = avail; need = header_len + n })
      else
        let payload = String.sub buf (pos + header_len) n in
        if Crc32.string payload <> crc then Error (Malformed "checksum mismatch")
        else Ok (payload, pos + header_len + n)

type skip = { skip_pos : int; skip_len : int; skip_error : error }

type stream = {
  frames : string list;
  consumed : int;
  skipped : skip list;
  trailing : (int * error) option;
}

let skipped_bytes s = List.fold_left (fun n k -> n + k.skip_len) 0 s.skipped

(* First occurrence of the magic at or after [pos] (candidate resync
   point after corruption). *)
let find_magic buf pos =
  let last = String.length buf - String.length magic in
  let rec go i =
    if i > last then None
    else if
      buf.[i] = 'A' && buf.[i + 1] = 'P' && buf.[i + 2] = 'T' && buf.[i + 3] = 'G'
    then Some i
    else go (i + 1)
  in
  go (max pos 0)

let decode_stream buf =
  let len = String.length buf in
  let rec go acc skips pos =
    if pos >= len then
      { frames = List.rev acc; consumed = len; skipped = List.rev skips;
        trailing = None }
    else
      match decode ~buf ~pos with
      | Ok (payload, next) -> go (payload :: acc) skips next
      | Error (Incomplete _ as e) ->
        (* Only ever at the tail: the bytes may still be an append in
           progress, so they are left unconsumed for the next look. *)
        { frames = List.rev acc; consumed = pos; skipped = List.rev skips;
          trailing = Some (pos, e) }
      | Error (Malformed _ as e) ->
        (* Permanent damage (the whole frame is present and wrong, or
           the header is garbage): resync at the next magic so one
           corrupted frame cannot swallow every request behind it. *)
        let next = match find_magic buf (pos + 1) with Some i -> i | None -> len in
        go acc ({ skip_pos = pos; skip_len = next - pos; skip_error = e } :: skips)
          next
  in
  go [] [] 0
