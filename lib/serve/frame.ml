(* Framing. The header is fixed-width ASCII so a human can read a
   spool file with [xxd] (or plain [less]), and so decode needs no
   state beyond an offset. *)

module Crc32 = Aptget_store.Crc32

let magic = "APTG"

let header_len = 20 (* 4 magic + 8 crc + 8 len *)

let max_payload = 16 * 1024 * 1024

let encode payload =
  let n = String.length payload in
  if n > max_payload then invalid_arg "Frame.encode: payload too large";
  String.concat ""
    [ magic; Crc32.hex (Crc32.string payload); Printf.sprintf "%08x" n; payload ]

type error =
  | Incomplete of { have : int; need : int }
  | Malformed of string

let error_to_string = function
  | Incomplete { have; need } ->
    Printf.sprintf "incomplete frame: %d of %d bytes" have need
  | Malformed why -> "malformed frame: " ^ why

let decode ~buf ~pos =
  let len = String.length buf in
  let avail = if pos >= len then 0 else len - pos in
  if avail < header_len then Error (Incomplete { have = avail; need = header_len })
  else if String.sub buf pos 4 <> magic then Error (Malformed "bad magic")
  else
    match
      ( Crc32.of_hex (String.sub buf (pos + 4) 8),
        Crc32.of_hex (String.sub buf (pos + 12) 8) )
    with
    | None, _ -> Error (Malformed "bad checksum field")
    | _, None -> Error (Malformed "bad length field")
    | Some crc, Some n ->
      if n > max_payload then Error (Malformed "oversized payload")
      else if avail < header_len + n then
        Error (Incomplete { have = avail; need = header_len + n })
      else
        let payload = String.sub buf (pos + header_len) n in
        if Crc32.string payload <> crc then Error (Malformed "checksum mismatch")
        else Ok (payload, pos + header_len + n)

type stream = {
  frames : string list;
  consumed : int;
  trailing : (int * error) option;
}

let decode_stream buf =
  let len = String.length buf in
  let rec go acc pos =
    if pos = len then { frames = List.rev acc; consumed = pos; trailing = None }
    else
      match decode ~buf ~pos with
      | Ok (payload, next) -> go (payload :: acc) next
      | Error e ->
        { frames = List.rev acc; consumed = pos; trailing = Some (pos, e) }
  in
  go [] 0
