module Pool = Aptget_util.Pool
module Clock = Aptget_util.Clock
module Atomic_file = Aptget_store.Atomic_file
module Crash = Aptget_store.Crash
module Journal = Aptget_store.Journal
module Breaker = Aptget_core.Breaker
module Metrics = Aptget_obs.Metrics
module Trace = Aptget_obs.Trace

type config = {
  spool : string;
  capacity : int;
  jobs : int option;
  default_deadline : int option;
  handler : Handler.config;
  breaker : Breaker.config;
  cache : bool;
}

let default_config ~spool =
  {
    spool;
    capacity = 64;
    jobs = None;
    default_deadline = None;
    handler = Handler.default_config;
    breaker = Breaker.default_config;
    cache = true;
  }

type report = {
  s_frames : int;
  s_torn : int;
  s_resynced : int;
  s_ok : int;
  s_shed : int;
  s_timed_out : int;
  s_rejected : int;
  s_failed : int;
  s_malformed : int;
  s_aborted : int;
  s_resumed : int;
  s_replayed : int;
  s_drained : bool;
  s_salvaged : int;
}

let empty_report =
  {
    s_frames = 0;
    s_torn = 0;
    s_resynced = 0;
    s_ok = 0;
    s_shed = 0;
    s_timed_out = 0;
    s_rejected = 0;
    s_failed = 0;
    s_malformed = 0;
    s_aborted = 0;
    s_resumed = 0;
    s_replayed = 0;
    s_drained = false;
    s_salvaged = 0;
  }

let combine a b =
  {
    s_frames = a.s_frames + b.s_frames;
    s_torn = a.s_torn + b.s_torn;
    s_resynced = a.s_resynced + b.s_resynced;
    s_ok = a.s_ok + b.s_ok;
    s_shed = a.s_shed + b.s_shed;
    s_timed_out = a.s_timed_out + b.s_timed_out;
    s_rejected = a.s_rejected + b.s_rejected;
    s_failed = a.s_failed + b.s_failed;
    s_malformed = a.s_malformed + b.s_malformed;
    s_aborted = a.s_aborted + b.s_aborted;
    s_resumed = a.s_resumed + b.s_resumed;
    s_replayed = a.s_replayed + b.s_replayed;
    s_drained = a.s_drained || b.s_drained;
    s_salvaged = a.s_salvaged + b.s_salvaged;
  }

let exit_code r =
  if r.s_shed > 0 then Exit_code.Overloaded
  else if
    r.s_failed + r.s_timed_out + r.s_rejected + r.s_malformed + r.s_aborted
    + r.s_torn + r.s_resynced
    > 0
  then Exit_code.Degraded
  else Exit_code.Ok_

type t = {
  config : config;
  registry : Tenant.registry;
  mutable processed : int;
  mutable resynced : int;  (* cumulative corrupt queue regions skipped *)
  mutable salvaged : int;  (* cumulative journal records salvaged *)
  mutable beat : int;  (* health heartbeat: bumped on every publish *)
  mutable last_torn : string option;
      (* the trailing incomplete tail this instance last saw, so a tear
         that persists across --watch polls is counted once, not once
         per poll *)
}

let requests_path spool = Transport.requests_path ~spool

let responses_path spool = Transport.responses_path ~spool

let journal_path spool = Transport.journal_path ~spool

let with_spool_lock = Transport.with_spool_lock

let create config =
  {
    config;
    registry =
      Tenant.registry ~root:config.spool ~breaker:config.breaker
        ~cache:config.cache ();
    processed = 0;
    resynced = 0;
    salvaged = 0;
    beat = 0;
    last_torn = None;
  }

(* Cumulative damage-repair evidence published with every health
   write. Journal salvage is tracked directly on [t] (the metrics
   registry is off by default); any other [store.salvage.*] counters
   (quarantine, hints_file) ride along when metrics are enabled. *)
let salvage_counts t =
  let prefix = "store.salvage." in
  let plen = String.length prefix in
  let from_metrics =
    List.filter_map
      (fun (k, v) ->
        if String.length k > plen && String.sub k 0 plen = prefix then
          let name = String.sub k plen (String.length k - plen) in
          if name = "journal" then None else Some (name, v)
        else None)
      (Metrics.snapshot ()).Metrics.counters
  in
  ("journal", t.salvaged) :: from_metrics

let publish t state =
  t.beat <- t.beat + 1;
  Health.write ~spool:t.config.spool ~processed:t.processed
    ~resynced:t.resynced ~salvage:(salvage_counts t) ~beat:t.beat
    ~pid:(Unix.getpid ()) state

let submit ~spool body =
  Transport.spool_append ~spool (Frame.encode (Wire.body_to_string body))

let responses ~spool =
  match Atomic_file.read ~path:(responses_path spool) with
  | Error e -> Error e
  | Ok buf ->
    let s = Frame.decode_stream buf in
    Ok (List.map Wire.response_of_string s.Frame.frames)

type work = { w_order : int; w_req : Wire.request; w_tenant : Tenant.t }

let response_of_outcome (req : Wire.request) (o : Handler.outcome) =
  {
    Wire.rsp_id = req.Wire.req_id;
    rsp_tenant = req.Wire.tenant;
    rsp_status = o.Handler.h_status;
    rsp_reason = o.Handler.h_reason;
    rsp_body = o.Handler.h_body;
  }

let reject (req : Wire.request) reason =
  {
    Wire.rsp_id = req.Wire.req_id;
    rsp_tenant = req.Wire.tenant;
    rsp_status = Wire.Rejected;
    rsp_reason = reason;
    rsp_body = "";
  }

type processed = {
  pr_report : report;
  pr_deliveries : (int option * Wire.response) list;
}

(* The transport-agnostic batch core: takes decoded frame payloads (in
   arrival order) plus the transport's damage accounting, and performs
   everything both transports share — journal recovery, the
   duplicate-id ledger, admission in arrival order, per-tenant
   parallel execution, the atomic response-record append and journal
   compaction. [ack] runs right after the responses land (the spool
   transport truncates its consumed queue prefix there). With
   [replay], an id that already has a durable answer is re-delivered
   (not re-executed and not re-recorded) instead of rejected — the
   socket transport's idempotent-retry semantics; the spool transport
   keeps its historical reject. *)
let process ?crash ?(replay = false) ?(ack = fun () -> ()) t ~payloads ~torn
    ~resynced ~skipped_bytes =
  let cfg = t.config in
  let inflight, orphans, recovery =
    Inflight.open_ ?crash ~path:(journal_path cfg.spool) ()
  in
  let journal_records = ref (recovery.Journal.records <> []) in
  let report, deliveries =
    Fun.protect ~finally:(fun () -> Inflight.close inflight) @@ fun () ->
  let frames = payloads in
  let n_frames = List.length frames in
  if n_frames > 0 then Metrics.incr ~by:n_frames "serve.requests";
  if torn > 0 then Metrics.incr "serve.frame.torn";
  if resynced > 0 then begin
    Metrics.incr ~by:resynced "serve.frame.resync";
    Metrics.incr ~by:skipped_bytes "serve.frame.skipped_bytes"
  end;
  (* Ids already answered in responses.q: the duplicate detector that
     survives restarts and journal compaction. An id the journal says
     finished but that has no answer is crash recovery (the kill hit
     between the [done] record and the response write) and is
     re-executed; an answered id is client id reuse — rejected on the
     spool path, replayed (idempotent retry) on the socket path. The
     first recorded response for an id is the authoritative one. *)
  let answered : (string, Wire.response) Hashtbl.t = Hashtbl.create 16 in
  (match Atomic_file.read ~path:(responses_path cfg.spool) with
  | Error _ -> ()
  | Ok b ->
    List.iter
      (fun payload ->
        match Wire.response_of_string payload with
        | Ok r ->
          if not (Hashtbl.mem answered r.Wire.rsp_id) then
            Hashtbl.add answered r.Wire.rsp_id r
        | Error _ -> ())
      (Frame.decode_stream b).Frame.frames);
  (* Recovery first: every orphan gets a clean [aborted] answer, and a
     [done] record so the answer is not repeated on the next drain. *)
  let aborted_ids = Hashtbl.create 8 in
  let aborted_responses =
    List.map
      (fun (o : Inflight.orphan) ->
        Hashtbl.replace aborted_ids o.Inflight.o_id ();
        Inflight.finish inflight ~id:o.Inflight.o_id ~status:"aborted";
        {
          Wire.rsp_id = o.Inflight.o_id;
          rsp_tenant = o.Inflight.o_tenant;
          rsp_status = Wire.Aborted;
          rsp_reason = "in flight when the daemon died; resubmit under a new id";
          rsp_body = "";
        })
      orphans
  in
  if aborted_responses <> [] then
    Metrics.incr ~by:(List.length aborted_responses) "serve.aborted";
  (* Admission walk, strictly in arrival order: shedding is a function
     of the request sequence, never of worker timing. *)
  let admission = Admission.create ~capacity:cfg.capacity in
  let seen = Hashtbl.create 16 in
  let immediate = ref [] in
  let push order rsp = immediate := (order, rsp) :: !immediate in
  (* Replay-mode deliveries that must NOT be re-recorded: answered ids
     re-sent to a retrying client, and in-batch duplicates (a
     retransmitted frame) answered with their sibling's response. *)
  let replays = ref [] in
  let dup_pending = ref [] in
  let resumed = ref 0 in
  let drained = ref false in
  List.iteri
    (fun i payload ->
      match Wire.body_of_string payload with
      | Error e ->
        push i
          {
            Wire.rsp_id = Printf.sprintf "frame-%d" (i + 1);
            rsp_tenant = "-";
            rsp_status = Wire.Malformed;
            rsp_reason = e;
            rsp_body = "";
          }
      | Ok Wire.Shutdown -> drained := true
      | Ok (Wire.Run req) ->
        if Hashtbl.mem aborted_ids req.Wire.req_id then
          (* the orphan response above already answers this id; on the
             socket path the waiting connection gets a copy *)
          (if replay then dup_pending := (i, req) :: !dup_pending)
        else if Hashtbl.mem seen req.Wire.req_id then
          if replay then dup_pending := (i, req) :: !dup_pending
          else push i (reject req "duplicate request id in batch")
        else begin
          Hashtbl.replace seen req.Wire.req_id ();
          match Hashtbl.find_opt answered req.Wire.req_id with
          | Some recorded when replay ->
            Metrics.incr "serve.replayed";
            replays := (i, recorded) :: !replays
          | Some _ ->
            push i
              (reject req
                 "request id already answered in a previous drain; use a \
                  fresh id")
          | None ->
            if !drained then
              push i (reject req "daemon draining; resubmit to the next incarnation")
            else begin
              if Option.is_some (Inflight.finished inflight ~id:req.Wire.req_id)
              then incr resumed;
              match Tenant.find_or_create t.registry req.Wire.tenant with
              | Error e -> push i (reject req e)
              | Ok tenant -> (
                let req =
                  match req.Wire.deadline_cycles with
                  | None -> { req with Wire.deadline_cycles = cfg.default_deadline }
                  | Some _ -> req
                in
                match
                  Admission.offer admission
                    { w_order = i; w_req = req; w_tenant = tenant }
                with
                | Admission.Admitted -> ()
                | Admission.Shed ->
                  push i
                    {
                      Wire.rsp_id = req.Wire.req_id;
                      rsp_tenant = req.Wire.tenant;
                      rsp_status = Wire.Overloaded;
                      rsp_reason =
                        Printf.sprintf "admission queue full (capacity %d)"
                          cfg.capacity;
                      rsp_body = "";
                    })
            end
        end)
    frames;
  let rec collect () =
    match Admission.take admission with
    | Some w -> w :: collect ()
    | None -> []
  in
  let admitted = collect () in
  (* Journal every admission before anything runs, serially, in
     arrival order — the crash-recovery ground truth. *)
  if admitted <> [] then journal_records := true;
  List.iter
    (fun w ->
      Inflight.admit inflight ~id:w.w_req.Wire.req_id
        ~tenant:w.w_req.Wire.tenant)
    admitted;
  (* Per-tenant serial groups (first-appearance order), parallel across
     tenants. An armed crash plan forces serial execution so the
     journal's write ordering — which the plan counts — is exactly the
     admission order. *)
  let group_tbl : (string, work list ref) Hashtbl.t = Hashtbl.create 8 in
  let group_keys = ref [] in
  List.iter
    (fun w ->
      let key = w.w_tenant.Tenant.id in
      match Hashtbl.find_opt group_tbl key with
      | Some r -> r := w :: !r
      | None ->
        group_keys := key :: !group_keys;
        Hashtbl.add group_tbl key (ref [ w ]))
    admitted;
  let groups =
    List.rev_map (fun k -> List.rev !(Hashtbl.find group_tbl k)) !group_keys
  in
  let jobs =
    match crash with
    | Some c when Crash.armed c -> Some 1
    | _ -> cfg.jobs
  in
  let inflight_n = Atomic.make (List.length admitted) in
  Metrics.set_gauge "serve.inflight" (float_of_int (List.length admitted));
  let process_group group =
    List.map
      (fun w ->
        let req = w.w_req in
        let outcome =
          Trace.with_span ~name:"serve.request"
            ~attrs:
              [
                ("tenant", req.Wire.tenant);
                ("id", req.Wire.req_id);
                ("workload", req.Wire.workload);
              ]
            (fun () -> Handler.run ?crash cfg.handler ~tenant:w.w_tenant req)
        in
        Inflight.finish inflight ~id:req.Wire.req_id
          ~status:(Wire.status_to_string outcome.Handler.h_status);
        Metrics.set_gauge "serve.inflight"
          (float_of_int (Atomic.fetch_and_add inflight_n (-1) - 1));
        (w.w_order, response_of_outcome req outcome))
      group
  in
  let results = Pool.run ?jobs process_group groups in
  let ordered =
    List.sort
      (fun (a, _) (b, _) -> compare (a : int) b)
      (List.concat results @ !immediate)
  in
  let all_responses = aborted_responses @ List.map snd ordered in
  (* In-batch duplicates (and requests covered by an orphan abort) are
     answered with the authoritative response for their id — delivered
     to the waiting connection, never re-recorded. *)
  let by_id = Hashtbl.create 16 in
  List.iter
    (fun r ->
      if not (Hashtbl.mem by_id r.Wire.rsp_id) then
        Hashtbl.add by_id r.Wire.rsp_id r)
    all_responses;
  List.iter
    (fun (i, req) ->
      let rsp =
        match Hashtbl.find_opt by_id req.Wire.req_id with
        | Some r -> r
        | None -> (
          match Hashtbl.find_opt answered req.Wire.req_id with
          | Some r -> r
          | None -> reject req "duplicate request id in batch")
      in
      Metrics.incr "serve.replayed";
      replays := (i, rsp) :: !replays)
    !dup_pending;
  let count st =
    List.length
      (List.filter (fun r -> r.Wire.rsp_status = st) all_responses)
  in
  List.iter
    (fun st ->
      let n = count st in
      if n > 0 then
        Metrics.incr ~by:n ("serve.responses." ^ Wire.status_to_string st))
    [
      Wire.Ok_;
      Wire.Overloaded;
      Wire.Timed_out;
      Wire.Malformed;
      Wire.Rejected;
      Wire.Failed;
      Wire.Aborted;
    ];
  (* Responses land with one atomic append-rewrite, and only then does
     the transport acknowledge the batch (the spool truncates its
     consumed queue prefix): a crash between the two duplicates work,
     never loses it. Neither write is routed through the crash plan —
     simulated kills target the journal, which is what recovery is
     tested against. *)
  if all_responses <> [] then begin
    let existing =
      match Atomic_file.read ~path:(responses_path cfg.spool) with
      | Ok b -> b
      | Error _ -> ""
    in
    let fresh =
      String.concat ""
        (List.map
           (fun r -> Frame.encode (Wire.response_to_string r))
           all_responses)
    in
    Atomic_file.write ~path:(responses_path cfg.spool) (existing ^ fresh)
  end;
  ack ();
  t.processed <- t.processed + List.length all_responses;
  let deliveries =
    List.map (fun r -> (None, r)) aborted_responses
    @ List.map
        (fun (i, r) -> (Some i, r))
        (List.sort
           (fun (a, _) (b, _) -> compare (a : int) b)
           (ordered @ !replays))
  in
  ( {
      s_frames = n_frames;
      s_torn = torn;
      s_resynced = resynced;
      s_ok = count Wire.Ok_;
      s_shed = Admission.shed admission;
      s_timed_out = count Wire.Timed_out;
      s_rejected = count Wire.Rejected;
      s_failed = count Wire.Failed;
      s_malformed = count Wire.Malformed;
      s_aborted = List.length aborted_responses;
      s_resumed = !resumed;
      s_replayed = List.length !replays;
      s_drained = !drained;
      s_salvaged = recovery.Journal.dropped;
    },
    deliveries )
  in
  (* The batch completed, so every record in the journal is settled:
     each admit has its done, each orphan was answered and marked done,
     and the responses have landed. Compact, so a long-running --watch
     daemon does not replay an ever-growing history on every drain.
     Duplicate-id detection does not depend on the journal: it reads
     responses.q. A crash mid-drain raises past this point and leaves
     the journal for the next incarnation to recover. *)
  if !journal_records then begin
    Journal.truncate ~path:(journal_path cfg.spool);
    Metrics.incr "serve.journal.compactions"
  end;
  t.resynced <- t.resynced + report.s_resynced;
  t.salvaged <- t.salvaged + report.s_salvaged;
  { pr_report = report; pr_deliveries = deliveries }

(* ---------------- spool transport ---------------- *)

let drain ?crash t =
  let cfg = t.config in
  Transport.mkdir_p cfg.spool;
  publish t Health.Ready;
  Metrics.incr "serve.drains";
  let buf =
    with_spool_lock cfg.spool (fun () ->
        match Atomic_file.read ~path:(requests_path cfg.spool) with
        | Ok b -> b
        | Error _ -> "")
  in
  let stream = Frame.decode_stream buf in
  (* A trailing incomplete tail is preserved (it may be an append still
     in progress), so a tear that persists across --watch polls is
     counted the first time this instance sees it, not once per poll. *)
  let torn =
    match stream.Frame.trailing with
    | None ->
      t.last_torn <- None;
      0
    | Some (pos, _) ->
      let tail = String.sub buf pos (String.length buf - pos) in
      if t.last_torn = Some tail then 0
      else begin
        t.last_torn <- Some tail;
        1
      end
  in
  (* Under the spool lock, drop exactly the prefix this drain consumed:
     frames a client appended after our snapshot — and a torn trailing
     append that may yet complete — survive to the next drain. If the
     file no longer extends our snapshot (external tampering), leave it
     whole: duplicated work beats lost work. *)
  let ack () =
    match stream.Frame.consumed with
    | 0 -> ()
    | consumed ->
      with_spool_lock cfg.spool (fun () ->
          let path = requests_path cfg.spool in
          let current =
            match Atomic_file.read ~path with Ok b -> b | Error _ -> ""
          in
          if
            String.length current >= consumed
            && String.sub current 0 consumed = String.sub buf 0 consumed
          then
            Atomic_file.write ~path
              (String.sub current consumed (String.length current - consumed)))
  in
  let p =
    process ?crash ~replay:false ~ack t ~payloads:stream.Frame.frames ~torn
      ~resynced:(List.length stream.Frame.skipped)
      ~skipped_bytes:(Frame.skipped_bytes stream)
  in
  (* Re-publish after the batch so a probe between drains sees the
     damage this drain found, not just that the daemon is alive. *)
  publish t Health.Ready;
  p.pr_report

let stop t ~code = publish t (Health.Stopped (Exit_code.to_int code))

let serve ?crash ?(poll = 0.05) ?max_drains t =
  let rec go acc n =
    let r = drain ?crash t in
    let acc = combine acc r in
    let n = n + 1 in
    if r.s_drained || match max_drains with Some m -> n >= m | None -> false
    then acc
    else begin
      if r.s_frames = 0 then Transport.sleep poll;
      go acc n
    end
  in
  let report = go empty_report 0 in
  stop t ~code:(exit_code report);
  report

(* ---------------- socket transport ---------------- *)

type socket_config = {
  sk_addr : Transport.addr;
  sk_max_conns : int;
  sk_read_deadline : float;
  sk_poll : float;
  sk_heartbeat : float;
  sk_faults : Net_faults.config;
}

let default_socket_config addr =
  {
    sk_addr = addr;
    sk_max_conns = 64;
    sk_read_deadline = 2.0;
    sk_poll = 0.02;
    sk_heartbeat = 0.5;
    sk_faults = Net_faults.off;
  }

(* A connection refused at the cap (or reaped at the read deadline)
   never delivered a request id, so the shed notice carries "-": the
   client treats it as a terminal admission-level shed, exactly like a
   queue-level [overloaded] response. *)
let shed_response =
  {
    Wire.rsp_id = "-";
    rsp_tenant = "-";
    rsp_status = Wire.Overloaded;
    rsp_reason = "connection shed: cap reached or read deadline blown";
    rsp_body = "";
  }

let serve_socket ?crash ?max_batches t sc =
  let cfg = t.config in
  Transport.mkdir_p cfg.spool;
  let tconfig =
    {
      Transport.sc_addr = sc.sk_addr;
      sc_max_conns = sc.sk_max_conns;
      sc_read_deadline = sc.sk_read_deadline;
      sc_shed_frame = Frame.encode (Wire.response_to_string shed_response);
      sc_faults = sc.sk_faults;
    }
  in
  match Transport.listen tconfig with
  | Error e -> Error e
  | Ok listener ->
    Fun.protect ~finally:(fun () -> Transport.close_listener listener)
    @@ fun () ->
    publish t Health.Ready;
    (* Recovery runs up front, not lazily on the first request: orphans
       of a crashed incarnation get their [aborted] answers (and the
       journal its compaction) immediately, so a client retrying into
       the restarted daemon is replayed the abort rather than hanging. *)
    let r0 =
      (process ?crash ~replay:true t ~payloads:[] ~torn:0 ~resynced:0
         ~skipped_bytes:0)
        .pr_report
    in
    let last_beat = ref (Clock.now ()) in
    let deliver conns p =
      List.iter
        (fun (idx, rsp) ->
          match idx with
          | None -> () (* orphan abort: durable in responses.q only *)
          | Some i ->
            let cid = conns.(i) in
            Transport.respond listener cid
              (Frame.encode (Wire.response_to_string rsp));
            Transport.finish listener cid)
        p.pr_deliveries
    in
    let rec loop acc batches =
      let pr = Transport.poll listener ~timeout:sc.sk_poll in
      let conn_shed = pr.Transport.p_conn_shed + pr.Transport.p_expired in
      if pr.Transport.p_conn_shed > 0 then
        Metrics.incr ~by:pr.Transport.p_conn_shed "serve.conn.shed";
      if pr.Transport.p_expired > 0 then
        Metrics.incr ~by:pr.Transport.p_expired "serve.conn.expired";
      if pr.Transport.p_payloads <> [] || pr.Transport.p_resynced > 0 then begin
        Metrics.incr "serve.batches";
        let conns = Array.of_list (List.map fst pr.Transport.p_payloads) in
        let p =
          process ?crash ~replay:true t
            ~payloads:(List.map snd pr.Transport.p_payloads)
            ~torn:0 ~resynced:pr.Transport.p_resynced
            ~skipped_bytes:pr.Transport.p_skipped_bytes
        in
        deliver conns p;
        publish t Health.Ready;
        last_beat := Clock.now ();
        let acc =
          combine acc
            {
              p.pr_report with
              s_shed = p.pr_report.s_shed + conn_shed;
            }
        in
        let batches = batches + 1 in
        if
          p.pr_report.s_drained
          || match max_batches with Some m -> batches >= m | None -> false
        then acc
        else loop acc batches
      end
      else begin
        let acc =
          if conn_shed > 0 then
            combine acc { empty_report with s_shed = conn_shed }
          else acc
        in
        (* idle heartbeat: a supervisor polling the health file sees the
           beat advance even when no requests arrive *)
        let now = Clock.now () in
        if now -. !last_beat >= sc.sk_heartbeat then begin
          publish t Health.Ready;
          last_beat := now
        end;
        loop acc batches
      end
    in
    let report = combine r0 (loop empty_report 0) in
    stop t ~code:(exit_code report);
    Ok report
