module Pool = Aptget_util.Pool
module Atomic_file = Aptget_store.Atomic_file
module Crash = Aptget_store.Crash
module Journal = Aptget_store.Journal
module Breaker = Aptget_core.Breaker
module Metrics = Aptget_obs.Metrics
module Trace = Aptget_obs.Trace

type config = {
  spool : string;
  capacity : int;
  jobs : int option;
  default_deadline : int option;
  handler : Handler.config;
  breaker : Breaker.config;
  cache : bool;
}

let default_config ~spool =
  {
    spool;
    capacity = 64;
    jobs = None;
    default_deadline = None;
    handler = Handler.default_config;
    breaker = Breaker.default_config;
    cache = true;
  }

type report = {
  s_frames : int;
  s_torn : int;
  s_resynced : int;
  s_ok : int;
  s_shed : int;
  s_timed_out : int;
  s_rejected : int;
  s_failed : int;
  s_malformed : int;
  s_aborted : int;
  s_resumed : int;
  s_drained : bool;
  s_salvaged : int;
}

let empty_report =
  {
    s_frames = 0;
    s_torn = 0;
    s_resynced = 0;
    s_ok = 0;
    s_shed = 0;
    s_timed_out = 0;
    s_rejected = 0;
    s_failed = 0;
    s_malformed = 0;
    s_aborted = 0;
    s_resumed = 0;
    s_drained = false;
    s_salvaged = 0;
  }

let combine a b =
  {
    s_frames = a.s_frames + b.s_frames;
    s_torn = a.s_torn + b.s_torn;
    s_resynced = a.s_resynced + b.s_resynced;
    s_ok = a.s_ok + b.s_ok;
    s_shed = a.s_shed + b.s_shed;
    s_timed_out = a.s_timed_out + b.s_timed_out;
    s_rejected = a.s_rejected + b.s_rejected;
    s_failed = a.s_failed + b.s_failed;
    s_malformed = a.s_malformed + b.s_malformed;
    s_aborted = a.s_aborted + b.s_aborted;
    s_resumed = a.s_resumed + b.s_resumed;
    s_drained = a.s_drained || b.s_drained;
    s_salvaged = a.s_salvaged + b.s_salvaged;
  }

let exit_code r =
  if r.s_shed > 0 then Exit_code.Overloaded
  else if
    r.s_failed + r.s_timed_out + r.s_rejected + r.s_malformed + r.s_aborted
    + r.s_torn + r.s_resynced
    > 0
  then Exit_code.Degraded
  else Exit_code.Ok_

type t = {
  config : config;
  registry : Tenant.registry;
  mutable processed : int;
  mutable resynced : int;  (* cumulative corrupt queue regions skipped *)
  mutable salvaged : int;  (* cumulative journal records salvaged *)
  mutable last_torn : string option;
      (* the trailing incomplete tail this instance last saw, so a tear
         that persists across --watch polls is counted once, not once
         per poll *)
}

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let requests_path spool = Filename.concat spool "requests.q"

let responses_path spool = Filename.concat spool "responses.q"

let journal_path spool = Filename.concat spool "serve.journal"

let lock_path spool = Filename.concat spool ".lock"

(* The spool lock (fcntl, so it also works across processes)
   serializes client appends to [requests.q] against the drain's
   read-then-truncate of it. Without it a frame appended between the
   drain's snapshot and its truncate — or the half-written state of an
   append caught mid-write — would be destroyed with no response.
   The queue file is only ever opened {e after} the lock is held: an
   fd obtained before the truncate's rename would append to the
   replaced, unlinked inode. *)
let with_spool_lock spool f =
  mkdir_p spool;
  let fd = Unix.openfile (lock_path spool) [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      Unix.lockf fd Unix.F_LOCK 0;
      Fun.protect ~finally:(fun () -> Unix.lockf fd Unix.F_ULOCK 0) f)

let create config =
  {
    config;
    registry =
      Tenant.registry ~root:config.spool ~breaker:config.breaker
        ~cache:config.cache ();
    processed = 0;
    resynced = 0;
    salvaged = 0;
    last_torn = None;
  }

(* Cumulative damage-repair evidence published with every health
   write. Journal salvage is tracked directly on [t] (the metrics
   registry is off by default); any other [store.salvage.*] counters
   (quarantine, hints_file) ride along when metrics are enabled. *)
let salvage_counts t =
  let prefix = "store.salvage." in
  let plen = String.length prefix in
  let from_metrics =
    List.filter_map
      (fun (k, v) ->
        if String.length k > plen && String.sub k 0 plen = prefix then
          let name = String.sub k plen (String.length k - plen) in
          if name = "journal" then None else Some (name, v)
        else None)
      (Metrics.snapshot ()).Metrics.counters
  in
  ("journal", t.salvaged) :: from_metrics

let publish t state =
  Health.write ~spool:t.config.spool ~processed:t.processed
    ~resynced:t.resynced ~salvage:(salvage_counts t) state

let submit ~spool body =
  let frame = Frame.encode (Wire.body_to_string body) in
  with_spool_lock spool @@ fun () ->
  let oc =
    open_out_gen
      [ Open_append; Open_creat; Open_binary ]
      0o644 (requests_path spool)
  in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc frame)

let responses ~spool =
  match Atomic_file.read ~path:(responses_path spool) with
  | Error e -> Error e
  | Ok buf ->
    let s = Frame.decode_stream buf in
    Ok (List.map Wire.response_of_string s.Frame.frames)

type work = { w_order : int; w_req : Wire.request; w_tenant : Tenant.t }

let response_of_outcome (req : Wire.request) (o : Handler.outcome) =
  {
    Wire.rsp_id = req.Wire.req_id;
    rsp_tenant = req.Wire.tenant;
    rsp_status = o.Handler.h_status;
    rsp_reason = o.Handler.h_reason;
    rsp_body = o.Handler.h_body;
  }

let reject (req : Wire.request) reason =
  {
    Wire.rsp_id = req.Wire.req_id;
    rsp_tenant = req.Wire.tenant;
    rsp_status = Wire.Rejected;
    rsp_reason = reason;
    rsp_body = "";
  }

let drain ?crash t =
  let cfg = t.config in
  mkdir_p cfg.spool;
  publish t Health.Ready;
  Metrics.incr "serve.drains";
  let inflight, orphans, recovery =
    Inflight.open_ ?crash ~path:(journal_path cfg.spool) ()
  in
  let journal_records = ref (recovery.Journal.records <> []) in
  let report =
    Fun.protect ~finally:(fun () -> Inflight.close inflight) @@ fun () ->
  let buf =
    with_spool_lock cfg.spool (fun () ->
        match Atomic_file.read ~path:(requests_path cfg.spool) with
        | Ok b -> b
        | Error _ -> "")
  in
  let stream = Frame.decode_stream buf in
  let frames = stream.Frame.frames in
  let n_frames = List.length frames in
  if n_frames > 0 then Metrics.incr ~by:n_frames "serve.requests";
  (* A trailing incomplete tail is preserved (it may be an append still
     in progress), so a tear that persists across --watch polls is
     counted the first time this instance sees it, not once per poll. *)
  let torn =
    match stream.Frame.trailing with
    | None ->
      t.last_torn <- None;
      0
    | Some (pos, _) ->
      let tail = String.sub buf pos (String.length buf - pos) in
      if t.last_torn = Some tail then 0
      else begin
        t.last_torn <- Some tail;
        1
      end
  in
  if torn > 0 then Metrics.incr "serve.frame.torn";
  let resynced = List.length stream.Frame.skipped in
  if resynced > 0 then begin
    Metrics.incr ~by:resynced "serve.frame.resync";
    Metrics.incr ~by:(Frame.skipped_bytes stream) "serve.frame.skipped_bytes"
  end;
  (* Ids already answered in responses.q: the duplicate detector that
     survives restarts and journal compaction. An id the journal says
     finished but that has no answer is crash recovery (the kill hit
     between the [done] record and the response write) and is
     re-executed; an answered id is client id reuse and is rejected. *)
  let answered = Hashtbl.create 16 in
  (match Atomic_file.read ~path:(responses_path cfg.spool) with
  | Error _ -> ()
  | Ok b ->
    List.iter
      (fun payload ->
        match Wire.response_of_string payload with
        | Ok r -> Hashtbl.replace answered r.Wire.rsp_id ()
        | Error _ -> ())
      (Frame.decode_stream b).Frame.frames);
  (* Recovery first: every orphan gets a clean [aborted] answer, and a
     [done] record so the answer is not repeated on the next drain. *)
  let aborted_ids = Hashtbl.create 8 in
  let aborted_responses =
    List.map
      (fun (o : Inflight.orphan) ->
        Hashtbl.replace aborted_ids o.Inflight.o_id ();
        Inflight.finish inflight ~id:o.Inflight.o_id ~status:"aborted";
        {
          Wire.rsp_id = o.Inflight.o_id;
          rsp_tenant = o.Inflight.o_tenant;
          rsp_status = Wire.Aborted;
          rsp_reason = "in flight when the daemon died; resubmit under a new id";
          rsp_body = "";
        })
      orphans
  in
  if aborted_responses <> [] then
    Metrics.incr ~by:(List.length aborted_responses) "serve.aborted";
  (* Admission walk, strictly in arrival order: shedding is a function
     of the request sequence, never of worker timing. *)
  let admission = Admission.create ~capacity:cfg.capacity in
  let seen = Hashtbl.create 16 in
  let immediate = ref [] in
  let push order rsp = immediate := (order, rsp) :: !immediate in
  let resumed = ref 0 in
  let drained = ref false in
  List.iteri
    (fun i payload ->
      match Wire.body_of_string payload with
      | Error e ->
        push i
          {
            Wire.rsp_id = Printf.sprintf "frame-%d" (i + 1);
            rsp_tenant = "-";
            rsp_status = Wire.Malformed;
            rsp_reason = e;
            rsp_body = "";
          }
      | Ok Wire.Shutdown -> drained := true
      | Ok (Wire.Run req) ->
        if Hashtbl.mem aborted_ids req.Wire.req_id then
          (* the orphan response above already answers this id *)
          ()
        else if Hashtbl.mem seen req.Wire.req_id then
          push i (reject req "duplicate request id in batch")
        else begin
          Hashtbl.replace seen req.Wire.req_id ();
          if Hashtbl.mem answered req.Wire.req_id then
            push i
              (reject req
                 "request id already answered in a previous drain; use a \
                  fresh id")
          else if !drained then
            push i (reject req "daemon draining; resubmit to the next incarnation")
          else begin
            if Option.is_some (Inflight.finished inflight ~id:req.Wire.req_id)
            then incr resumed;
            match Tenant.find_or_create t.registry req.Wire.tenant with
            | Error e -> push i (reject req e)
            | Ok tenant -> (
              let req =
                match req.Wire.deadline_cycles with
                | None -> { req with Wire.deadline_cycles = cfg.default_deadline }
                | Some _ -> req
              in
              match
                Admission.offer admission
                  { w_order = i; w_req = req; w_tenant = tenant }
              with
              | Admission.Admitted -> ()
              | Admission.Shed ->
                push i
                  {
                    Wire.rsp_id = req.Wire.req_id;
                    rsp_tenant = req.Wire.tenant;
                    rsp_status = Wire.Overloaded;
                    rsp_reason =
                      Printf.sprintf "admission queue full (capacity %d)"
                        cfg.capacity;
                    rsp_body = "";
                  })
          end
        end)
    frames;
  let rec collect () =
    match Admission.take admission with
    | Some w -> w :: collect ()
    | None -> []
  in
  let admitted = collect () in
  (* Journal every admission before anything runs, serially, in
     arrival order — the crash-recovery ground truth. *)
  if admitted <> [] then journal_records := true;
  List.iter
    (fun w ->
      Inflight.admit inflight ~id:w.w_req.Wire.req_id
        ~tenant:w.w_req.Wire.tenant)
    admitted;
  (* Per-tenant serial groups (first-appearance order), parallel across
     tenants. An armed crash plan forces serial execution so the
     journal's write ordering — which the plan counts — is exactly the
     admission order. *)
  let group_tbl : (string, work list ref) Hashtbl.t = Hashtbl.create 8 in
  let group_keys = ref [] in
  List.iter
    (fun w ->
      let key = w.w_tenant.Tenant.id in
      match Hashtbl.find_opt group_tbl key with
      | Some r -> r := w :: !r
      | None ->
        group_keys := key :: !group_keys;
        Hashtbl.add group_tbl key (ref [ w ]))
    admitted;
  let groups =
    List.rev_map (fun k -> List.rev !(Hashtbl.find group_tbl k)) !group_keys
  in
  let jobs =
    match crash with
    | Some c when Crash.armed c -> Some 1
    | _ -> cfg.jobs
  in
  let inflight_n = Atomic.make (List.length admitted) in
  Metrics.set_gauge "serve.inflight" (float_of_int (List.length admitted));
  let process_group group =
    List.map
      (fun w ->
        let req = w.w_req in
        let outcome =
          Trace.with_span ~name:"serve.request"
            ~attrs:
              [
                ("tenant", req.Wire.tenant);
                ("id", req.Wire.req_id);
                ("workload", req.Wire.workload);
              ]
            (fun () -> Handler.run ?crash cfg.handler ~tenant:w.w_tenant req)
        in
        Inflight.finish inflight ~id:req.Wire.req_id
          ~status:(Wire.status_to_string outcome.Handler.h_status);
        Metrics.set_gauge "serve.inflight"
          (float_of_int (Atomic.fetch_and_add inflight_n (-1) - 1));
        (w.w_order, response_of_outcome req outcome))
      group
  in
  let results = Pool.run ?jobs process_group groups in
  let ordered =
    List.sort
      (fun (a, _) (b, _) -> compare (a : int) b)
      (List.concat results @ !immediate)
  in
  let all_responses = aborted_responses @ List.map snd ordered in
  let count st =
    List.length
      (List.filter (fun r -> r.Wire.rsp_status = st) all_responses)
  in
  List.iter
    (fun st ->
      let n = count st in
      if n > 0 then
        Metrics.incr ~by:n ("serve.responses." ^ Wire.status_to_string st))
    [
      Wire.Ok_;
      Wire.Overloaded;
      Wire.Timed_out;
      Wire.Malformed;
      Wire.Rejected;
      Wire.Failed;
      Wire.Aborted;
    ];
  (* Responses land with one atomic append-rewrite, and only then is
     the request queue emptied: a crash between the two duplicates
     work, never loses it. Neither write is routed through the crash
     plan — simulated kills target the journal, which is what recovery
     is tested against. *)
  if all_responses <> [] then begin
    let existing =
      match Atomic_file.read ~path:(responses_path cfg.spool) with
      | Ok b -> b
      | Error _ -> ""
    in
    let fresh =
      String.concat ""
        (List.map
           (fun r -> Frame.encode (Wire.response_to_string r))
           all_responses)
    in
    Atomic_file.write ~path:(responses_path cfg.spool) (existing ^ fresh)
  end;
  (* Under the spool lock, drop exactly the prefix this drain consumed:
     frames a client appended after our snapshot — and a torn trailing
     append that may yet complete — survive to the next drain. If the
     file no longer extends our snapshot (external tampering), leave it
     whole: duplicated work beats lost work. *)
  (match stream.Frame.consumed with
  | 0 -> ()
  | consumed ->
    with_spool_lock cfg.spool (fun () ->
        let path = requests_path cfg.spool in
        let current =
          match Atomic_file.read ~path with Ok b -> b | Error _ -> ""
        in
        if
          String.length current >= consumed
          && String.sub current 0 consumed = String.sub buf 0 consumed
        then
          Atomic_file.write ~path
            (String.sub current consumed (String.length current - consumed))));
  t.processed <- t.processed + List.length all_responses;
  {
    s_frames = n_frames;
    s_torn = torn;
    s_resynced = resynced;
    s_ok = count Wire.Ok_;
    s_shed = Admission.shed admission;
    s_timed_out = count Wire.Timed_out;
    s_rejected = count Wire.Rejected;
    s_failed = count Wire.Failed;
    s_malformed = count Wire.Malformed;
    s_aborted = List.length aborted_responses;
    s_resumed = !resumed;
    s_drained = !drained;
    s_salvaged = recovery.Journal.dropped;
  }
  in
  (* The drain completed, so every record in the journal is settled:
     each admit has its done, each orphan was answered and marked done,
     and the responses have landed. Compact, so a long-running --watch
     daemon does not replay an ever-growing history on every drain.
     Duplicate-id detection does not depend on the journal: it reads
     responses.q. A crash mid-drain raises past this point and leaves
     the journal for the next incarnation to recover. *)
  if !journal_records then begin
    Journal.truncate ~path:(journal_path cfg.spool);
    Metrics.incr "serve.journal.compactions"
  end;
  (* Re-publish after the batch so a probe between drains sees the
     damage this drain found, not just that the daemon is alive. *)
  t.resynced <- t.resynced + report.s_resynced;
  t.salvaged <- t.salvaged + report.s_salvaged;
  publish t Health.Ready;
  report

let stop t ~code = publish t (Health.Stopped (Exit_code.to_int code))

let serve ?crash ?(poll = 0.05) ?max_drains t =
  let rec go acc n =
    let r = drain ?crash t in
    let acc = combine acc r in
    let n = n + 1 in
    if r.s_drained || match max_drains with Some m -> n >= m | None -> false
    then acc
    else begin
      if r.s_frames = 0 then Unix.sleepf poll;
      go acc n
    end
  in
  let report = go empty_report 0 in
  stop t ~code:(exit_code report);
  report
