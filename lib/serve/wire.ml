module Hints_file = Aptget_profile.Hints_file

type request = {
  req_id : string;
  tenant : string;
  workload : string;
  deadline_cycles : int option;
  guard_floor : float option;
  remap : bool;
  hints : Hints_file.doc option;
  program : string option;
}

type body = Run of request | Shutdown

let request_magic = "# aptget serve request v1"

let shutdown_magic = "# aptget serve shutdown v1"

let response_magic = "# aptget serve response v1"

let id_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '.' || c = '_' || c = '-'

let valid_id s =
  let n = String.length s in
  if n = 0 then Error "empty identifier"
  else if n > 64 then Error "identifier longer than 64 chars"
  else if s.[0] = '.' then Error "identifier starts with '.'"
  else if String.for_all id_char s then Ok ()
  else Error "identifier has chars outside [A-Za-z0-9._-]"

(* Strict decimal: [int_of_string] accepts "0x2a", "1_000" and a sign,
   none of which belong on the wire. *)
let strict_int s =
  if s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s then
    int_of_string_opt s
  else None

(* Section payloads are reassembled line-wise, so a line of a nested
   document must never look like a section marker. Hints docs and IR
   text never start lines with "--- ", which is all the framing
   needs. *)
let section_prefix = "--- "

let is_marker line =
  String.length line >= String.length section_prefix
  && String.sub line 0 (String.length section_prefix) = section_prefix

let section name body_lines =
  if body_lines = [] then section_prefix ^ name ^ "\n"
  else section_prefix ^ name ^ "\n" ^ String.concat "\n" body_lines ^ "\n"

let split_lines s =
  match String.split_on_char '\n' s with
  | [] -> []
  | lines -> (
    (* a trailing newline yields one empty trailing element; drop it *)
    match List.rev lines with
    | "" :: rest -> List.rev rest
    | _ -> lines)

let request_to_string r =
  let b = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "%s" request_magic;
  line "id=%s" r.req_id;
  line "tenant=%s" r.tenant;
  line "workload=%s" r.workload;
  (match r.deadline_cycles with
  | Some c -> line "deadline-cycles=%d" c
  | None -> ());
  (match r.guard_floor with
  | Some f -> line "guard-floor=%.17g" f
  | None -> ());
  if not r.remap then line "remap=false";
  (match r.hints with
  | Some doc ->
    Buffer.add_string b (section "hints" (split_lines (Hints_file.doc_to_string doc)))
  | None -> ());
  (match r.program with
  | Some ir -> Buffer.add_string b (section "program" (split_lines ir))
  | None -> ());
  Buffer.contents b

let body_to_string = function
  | Run r -> request_to_string r
  | Shutdown -> shutdown_magic ^ "\n"

(* Split [lines] into header key=value lines and named sections. *)
let split_sections lines =
  let rec sections acc name body = function
    | [] -> Ok (List.rev ((name, List.rev body) :: acc))
    | line :: rest when is_marker line ->
      let next = String.sub line 4 (String.length line - 4) in
      sections ((name, List.rev body) :: acc) next [] rest
    | line :: rest -> sections acc name (line :: body) rest
  in
  let rec header acc = function
    | [] -> Ok (List.rev acc, [])
    | line :: rest when is_marker line -> (
      match sections [] (String.sub line 4 (String.length line - 4)) [] rest with
      | Ok secs -> Ok (List.rev acc, secs)
      | Error _ as e -> e)
    | "" :: _ -> Error "blank line in header"
    | line :: rest -> header (line :: acc) rest
  in
  header [] lines

let parse_header lines =
  let seen = Hashtbl.create 8 in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      match String.index_opt line '=' with
      | None -> Error (Printf.sprintf "expected key=value, got %S" line)
      | Some i ->
        let k = String.sub line 0 i in
        let v = String.sub line (i + 1) (String.length line - i - 1) in
        if Hashtbl.mem seen k then Error (Printf.sprintf "duplicate key %S" k)
        else begin
          Hashtbl.add seen k ();
          go ((k, v) :: acc) rest
        end)
  in
  go [] lines

let parse_request lines =
  let ( let* ) = Result.bind in
  let* header, secs = split_sections lines in
  let* kvs = parse_header header in
  let field k = List.assoc_opt k kvs in
  let* () =
    List.fold_left
      (fun acc (k, _) ->
        let* () = acc in
        match k with
        | "id" | "tenant" | "workload" | "deadline-cycles" | "guard-floor"
        | "remap" ->
          Ok ()
        | _ -> Error (Printf.sprintf "unknown key %S" k))
      (Ok ()) kvs
  in
  let require k =
    match field k with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing key %S" k)
  in
  let* req_id = require "id" in
  let* () = Result.map_error (fun e -> "id: " ^ e) (valid_id req_id) in
  let* tenant = require "tenant" in
  let* () = Result.map_error (fun e -> "tenant: " ^ e) (valid_id tenant) in
  let* workload = require "workload" in
  let* () = if workload = "" then Error "empty workload" else Ok () in
  let* deadline_cycles =
    match field "deadline-cycles" with
    | None -> Ok None
    | Some v -> (
      match strict_int v with
      | Some c when c > 0 -> Ok (Some c)
      | Some _ | None -> Error "deadline-cycles: expected a positive integer")
  in
  let* guard_floor =
    match field "guard-floor" with
    | None -> Ok None
    | Some v -> (
      match float_of_string_opt v with
      | Some f when f > 0. -> Ok (Some f)
      | Some _ | None -> Error "guard-floor: expected a positive float")
  in
  let* remap =
    match field "remap" with
    | None -> Ok true
    | Some "true" -> Ok true
    | Some "false" -> Ok false
    | Some _ -> Error "remap: expected true or false"
  in
  let* () =
    List.fold_left
      (fun acc (name, _) ->
        let* () = acc in
        match name with
        | "hints" | "program" -> Ok ()
        | _ -> Error (Printf.sprintf "unknown section %S" name))
      (Ok ()) secs
  in
  let* () =
    if List.length secs = List.length (List.sort_uniq compare (List.map fst secs))
    then Ok ()
    else Error "duplicate section"
  in
  let sec name =
    match List.assoc_opt name secs with
    | None -> None
    | Some lines -> Some (String.concat "\n" lines ^ "\n")
  in
  let* hints =
    match sec "hints" with
    | None -> Ok None
    | Some text -> (
      match Hints_file.doc_of_string text with
      | Ok doc -> Ok (Some doc)
      | Error e -> Error ("hints: " ^ e))
  in
  let program = sec "program" in
  Ok
    {
      req_id;
      tenant;
      workload;
      deadline_cycles;
      guard_floor;
      remap;
      hints;
      program;
    }

let body_of_string payload =
  match split_lines payload with
  | [] -> Error "empty payload"
  | magic :: rest ->
    if magic = shutdown_magic then
      if rest = [] then Ok Shutdown else Error "trailing data after shutdown"
    else if magic = request_magic then
      Result.map (fun r -> Run r) (parse_request rest)
    else Error (Printf.sprintf "unrecognized payload magic %S" magic)

type status =
  | Ok_
  | Overloaded
  | Timed_out
  | Malformed
  | Rejected
  | Failed
  | Aborted

let status_to_string = function
  | Ok_ -> "ok"
  | Overloaded -> "overloaded"
  | Timed_out -> "timed-out"
  | Malformed -> "malformed"
  | Rejected -> "rejected"
  | Failed -> "failed"
  | Aborted -> "aborted"

let status_of_string = function
  | "ok" -> Some Ok_
  | "overloaded" -> Some Overloaded
  | "timed-out" -> Some Timed_out
  | "malformed" -> Some Malformed
  | "rejected" -> Some Rejected
  | "failed" -> Some Failed
  | "aborted" -> Some Aborted
  | _ -> None

type response = {
  rsp_id : string;
  rsp_tenant : string;
  rsp_status : status;
  rsp_reason : string;
  rsp_body : string;
}

let body_marker = "--- body\n"

let response_to_string r =
  let header =
    Printf.sprintf "%s\nid=%s\ntenant=%s\nstatus=%s\nreason=%s\n" response_magic
      r.rsp_id r.rsp_tenant
      (status_to_string r.rsp_status)
      (String.escaped r.rsp_reason)
  in
  if r.rsp_body = "" then header else header ^ body_marker ^ r.rsp_body

let response_of_string payload =
  let ( let* ) = Result.bind in
  (* The body is raw text (it is the last section), so split it off
     byte-wise before any line parsing. *)
  let header, body =
    let rec find i =
      if i + String.length body_marker > String.length payload then None
      else if String.sub payload i (String.length body_marker) = body_marker
              && (i = 0 || payload.[i - 1] = '\n')
      then Some i
      else find (i + 1)
    in
    match find 0 with
    | None -> (payload, "")
    | Some i ->
      ( String.sub payload 0 i,
        String.sub payload
          (i + String.length body_marker)
          (String.length payload - i - String.length body_marker) )
  in
  match split_lines header with
  | magic :: rest when magic = response_magic ->
    let* kvs = parse_header rest in
    let require k =
      match List.assoc_opt k kvs with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "missing key %S" k)
    in
    let* rsp_id = require "id" in
    let* rsp_tenant = require "tenant" in
    let* status_s = require "status" in
    let* rsp_status =
      match status_of_string status_s with
      | Some s -> Ok s
      | None -> Error (Printf.sprintf "unknown status %S" status_s)
    in
    let* reason_s = require "reason" in
    let* rsp_reason =
      match Scanf.unescaped reason_s with
      | s -> Ok s
      | exception Scanf.Scan_failure _ -> Error "unparseable reason escape"
    in
    Ok { rsp_id; rsp_tenant; rsp_status; rsp_reason; rsp_body = body }
  | _ -> Error "unrecognized response payload"
