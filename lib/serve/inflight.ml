module Journal = Aptget_store.Journal
module Metrics = Aptget_obs.Metrics

type t = {
  journal : Journal.t;
  mutex : Mutex.t;
  finished : (string, string) Hashtbl.t;
}

type orphan = { o_id : string; o_tenant : string }

let strip prefix s =
  let n = String.length prefix in
  if String.length s >= n && String.sub s 0 n = prefix then
    Some (String.sub s n (String.length s - n))
  else None

type record =
  | Admit of { id : string; tenant : string }
  | Done of { id : string; status : string }

let parse_record r =
  match String.split_on_char ' ' r with
  | [ "admit"; id_f; tenant_f ] -> (
    match (strip "id=" id_f, strip "tenant=" tenant_f) with
    | Some id, Some tenant -> Some (Admit { id; tenant })
    | _ -> None)
  | [ "done"; id_f; status_f ] -> (
    match (strip "id=" id_f, strip "status=" status_f) with
    | Some id, Some status -> Some (Done { id; status })
    | _ -> None)
  | _ -> None

let replay records =
  let finished = Hashtbl.create 16 in
  let pending = ref [] in
  List.iter
    (fun r ->
      match parse_record r with
      | Some (Admit { id; tenant }) ->
        if not (List.exists (fun o -> o.o_id = id) !pending) then
          pending := !pending @ [ { o_id = id; o_tenant = tenant } ]
      | Some (Done { id; status }) ->
        Hashtbl.replace finished id status;
        pending := List.filter (fun o -> o.o_id <> id) !pending
      | None -> ())
    records;
  (!pending, finished)

let open_ ?crash ~path () =
  let journal, recovery = Journal.open_ ?crash ~path () in
  if recovery.Journal.dropped > 0 then
    Metrics.incr ~by:recovery.Journal.dropped "store.salvage.journal";
  let orphans, finished = replay recovery.Journal.records in
  ({ journal; mutex = Mutex.create (); finished }, orphans, recovery)

let append t record =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () -> Journal.append t.journal record)

let admit t ~id ~tenant = append t (Printf.sprintf "admit id=%s tenant=%s" id tenant)

let finish t ~id ~status = append t (Printf.sprintf "done id=%s status=%s" id status)

let finished t ~id = Hashtbl.find_opt t.finished id

let close t = Journal.close t.journal
