(** Request/response payloads carried inside {!Frame}s.

    Both directions are line-oriented text documents in the same
    family as the hints file: a versioned magic comment, [key=value]
    header lines, then optional [--- <name>] sections whose raw
    contents run to the next section marker. Text keeps spool files
    inspectable with a pager and diffable in CI; the frame layer
    already guarantees integrity, so the payload does not re-checksum
    itself.

    Parsing is strict and total: any deviation is an [Error], never an
    exception, and the server answers it with a [Malformed] response
    rather than dying. *)

type request = {
  req_id : string;
      (** client-chosen identifier, unique per spool; also the journal
          key for crash recovery *)
  tenant : string;  (** namespace for quarantine/cache/breaker state *)
  workload : string;  (** suite name to run *)
  deadline_cycles : int option;
      (** per-request budget: caps the watchdog's profile and measure
          cycle deadlines *)
  guard_floor : float option;  (** override the guard's speedup floor *)
  remap : bool;  (** validate-and-remap stale hints (default [true]) *)
  hints : Aptget_profile.Hints_file.doc option;
      (** stale hints to reuse; absent = profile from scratch *)
  program : string option;
      (** textual IR overriding the workload's kernel (the "client
          ships its program" path) *)
}

type body =
  | Run of request
  | Shutdown  (** drain marker: requests framed after it are rejected *)

val valid_id : string -> (unit, string) result
(** Request and tenant identifiers double as path components under the
    spool, so they are restricted to 1–64 chars of
    [[A-Za-z0-9._-]], must not start with [.] (which also rules out
    ["."], [".."] and hidden files). *)

val request_to_string : request -> string
val body_to_string : body -> string

val body_of_string : string -> (body, string) result
(** Strict parse: unknown or duplicate keys, a bad magic line, an
    invalid id, or an unparseable hints section are all [Error]. *)

type status =
  | Ok_
  | Overloaded  (** shed by admission control; retry later/elsewhere *)
  | Timed_out  (** the per-request deadline fired *)
  | Malformed  (** the payload did not parse *)
  | Rejected
      (** well-formed but refused: unknown workload, bad program IR,
          open tenant breaker, or the daemon was draining *)
  | Failed  (** ran, but the pipeline errored or verification failed *)
  | Aborted
      (** in flight when the daemon crashed; rolled back on recovery,
          safe to resubmit under a new id *)

val status_to_string : status -> string
val status_of_string : string -> status option

type response = {
  rsp_id : string;
  rsp_tenant : string;
  rsp_status : status;
  rsp_reason : string;  (** empty on [Ok_]; single line, why otherwise *)
  rsp_body : string;
      (** canonical result text on [Ok_] — byte-identical to the
          one-shot CLI for the same request, whatever [--jobs] *)
}

val response_to_string : response -> string
val response_of_string : string -> (response, string) result
