type t = Ok_ | Degraded | Usage | Crashed | Overloaded

let to_int = function
  | Ok_ -> 0
  | Degraded -> 1
  | Usage -> 2
  | Crashed -> 3
  | Overloaded -> 4

let of_int = function
  | 0 -> Some Ok_
  | 1 -> Some Degraded
  | 2 -> Some Usage
  | 3 -> Some Crashed
  | 4 -> Some Overloaded
  | _ -> None

let to_string = function
  | Ok_ -> "ok"
  | Degraded -> "degraded"
  | Usage -> "usage"
  | Crashed -> "crashed"
  | Overloaded -> "overloaded"

(* Severity for [worst]: overload must win even over a crash — the
   supervisor's first question is "do I need to move traffic?". *)
let rank = function
  | Ok_ -> 0
  | Degraded -> 1
  | Usage -> 2
  | Crashed -> 3
  | Overloaded -> 4

let worst a b = if rank a >= rank b then a else b

let exit t = Stdlib.exit (to_int t)
