(** Journaled in-flight request tracking for crash recovery.

    Every admitted request writes an [admit] record before it runs and
    a [done] record when it finishes, both to the spool's CRC'd
    {!Aptget_store.Journal}. On restart after a crash the journal
    replays to three facts per request id: never seen, finished (with
    its status), or {e orphaned} — admitted with no [done]. The server
    answers every orphan with a clean [aborted] response (and writes
    its [done aborted] record so the answer is not repeated on the
    next restart), which is the "recover or cleanly reject, never
    hang, never double-run" contract.

    Record grammar (one journal record each):
    {v
    admit id=<id> tenant=<tenant>
    done id=<id> status=<status>
    v} *)

type t

type orphan = { o_id : string; o_tenant : string }

val open_ :
  ?crash:Aptget_store.Crash.t ->
  path:string ->
  unit ->
  t * orphan list * Aptget_store.Journal.recovery
(** Open (or create) the journal and replay it. Orphans are returned
    in admit order. Salvaged-away corrupt records are counted into the
    [store.salvage.journal] metric. *)

val admit : t -> id:string -> tenant:string -> unit

val finish : t -> id:string -> status:string -> unit
(** Thread-safe: workers finishing on different domains serialise on
    an internal mutex (journal append order between tenants is not
    part of the deterministic surface; the response file order is). *)

val finished : t -> id:string -> string option
(** Status recorded for [id] by a {e previous} incarnation, if any —
    the resume-skip check. *)

val close : t -> unit
