(** Bounded admission queue with explicit, deterministic shedding.

    The daemon's overload policy is decided here and nowhere else: a
    drain offers requests in arrival order, the first [capacity] fit,
    and every later offer is {!Shed} — a deterministic function of the
    arrival sequence, never of worker timing. A shed request gets a
    distinct [overloaded] response (and exit code) so clients can tell
    "try again later" from "your input is bad".

    Counters [serve.admitted] / [serve.shed] and the
    [serve.queue_depth] gauge are emitted from {!offer}/{!take} when
    metrics are enabled. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument when [capacity < 1]. *)

type verdict = Admitted | Shed

val offer : 'a t -> 'a -> verdict
(** Enqueue if there is room, shed otherwise. *)

val take : 'a t -> 'a option
(** Dequeue in FIFO order. *)

val depth : 'a t -> int
val capacity : 'a t -> int

val admitted : 'a t -> int
(** Total offers accepted over the queue's lifetime. *)

val shed : 'a t -> int
(** Total offers refused over the queue's lifetime. *)
