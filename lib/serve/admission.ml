module Metrics = Aptget_obs.Metrics

type 'a t = {
  queue : 'a Queue.t;
  cap : int;
  mutable admitted : int;
  mutable shed : int;
}

type verdict = Admitted | Shed

let create ~capacity =
  if capacity < 1 then invalid_arg "Admission.create: capacity < 1";
  { queue = Queue.create (); cap = capacity; admitted = 0; shed = 0 }

let depth t = Queue.length t.queue

let capacity t = t.cap

let gauge t = Metrics.set_gauge "serve.queue_depth" (float_of_int (depth t))

let offer t x =
  if Queue.length t.queue >= t.cap then begin
    t.shed <- t.shed + 1;
    Metrics.incr "serve.shed";
    Shed
  end
  else begin
    Queue.push x t.queue;
    t.admitted <- t.admitted + 1;
    Metrics.incr "serve.admitted";
    gauge t;
    Admitted
  end

let take t =
  let x = Queue.take_opt t.queue in
  if Option.is_some x then gauge t;
  x

let admitted t = t.admitted

let shed t = t.shed
