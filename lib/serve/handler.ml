module Machine = Aptget_machine.Machine
module Workload = Aptget_workloads.Workload
module Suite = Aptget_workloads.Suite
module Profiler = Aptget_profile.Profiler
module Hints_file = Aptget_profile.Hints_file
module Remap = Aptget_profile.Remap
module Pipeline = Aptget_core.Pipeline
module Watchdog = Aptget_core.Watchdog
module Breaker = Aptget_core.Breaker
module Meas_cache = Aptget_core.Meas_cache
module Crash = Aptget_store.Crash
module Metrics = Aptget_obs.Metrics
module Table = Aptget_util.Table

type outcome = { h_status : Wire.status; h_reason : string; h_body : string }

type config = {
  machine : Machine.config;
  watchdog : Watchdog.config;
  guard : Pipeline.guard_config;
  resolve : string -> Workload.t option;
}

let default_config =
  {
    machine = Machine.default_config;
    watchdog = Watchdog.default;
    guard = Pipeline.default_guard;
    resolve = Suite.find;
  }

let rejected reason = { h_status = Wire.Rejected; h_reason = reason; h_body = "" }

let failed reason = { h_status = Wire.Failed; h_reason = reason; h_body = "" }

let timed_out reason = { h_status = Wire.Timed_out; h_reason = reason; h_body = "" }

(* A client-shipped program re-parses on every build: injection passes
   mutate the IR in place, so handing out one shared [Ir.func] would
   leak one run's prefetches into the next. *)
let prepare w = function
  | None -> Ok w
  | Some ir_text -> (
    match Parser.func ir_text with
    | Error e -> Error e
    | Ok _ ->
      Ok
        {
          w with
          Workload.build =
            (fun () ->
              let inst = w.Workload.build () in
              { inst with Workload.func = Parser.func_exn ir_text });
        })

(* The request deadline caps the simulated stages' cycle budgets (a
   tighter base budget still wins). *)
let tighten (wd : Watchdog.config) = function
  | None -> wd
  | Some deadline ->
    let cap (b : Watchdog.budget) =
      {
        b with
        Watchdog.max_cycles =
          (if b.Watchdog.max_cycles = 0 then deadline
           else min b.Watchdog.max_cycles deadline);
      }
    in
    {
      wd with
      Watchdog.profile_budget = cap wd.Watchdog.profile_budget;
      measure_budget = cap wd.Watchdog.measure_budget;
    }

let render_measurement label (m : Pipeline.measurement) =
  (* Same shape as the one-shot CLI's outcome lines; wall time is
     deliberately absent, it is the one nondeterministic field. *)
  Printf.sprintf
    "%-10s cycles=%-12d instrs=%-10d IPC=%.3f MPKI=%.2f mem-stall=%s \
     prefetches=%d verified=%s\n"
    label m.Pipeline.outcome.Machine.cycles
    m.Pipeline.outcome.Machine.instructions
    (Machine.ipc m.Pipeline.outcome)
    (Machine.mpki m.Pipeline.outcome)
    (Table.fmt_pct (Machine.memory_stall_fraction m.Pipeline.outcome))
    m.Pipeline.outcome.Machine.dyn_prefetches
    (match m.Pipeline.verified with Ok () -> "ok" | Error e -> "FAILED: " ^ e)

let render_guarded ~tenant ~guard (g : Pipeline.guarded) =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "workload=%s tenant=%s program=%s\n" g.Pipeline.g_workload
       tenant
       (Fingerprint.hex g.Pipeline.g_program));
  Buffer.add_string b (render_measurement "baseline" g.Pipeline.g_baseline);
  Buffer.add_string b (render_measurement "APT-GET" g.Pipeline.g_final);
  (match g.Pipeline.g_remap with
  | Some r ->
    Buffer.add_string b
      (Printf.sprintf "remap: %d kept, %d remapped, %d rescaled, %d dropped\n"
         r.Remap.kept r.Remap.remapped r.Remap.rescaled r.Remap.dropped)
  | None -> ());
  Buffer.add_string b
    (Printf.sprintf "guard: %s (floor %.2fx)\n"
       (Pipeline.guard_outcome_to_string g.Pipeline.g_outcome)
       guard.Pipeline.floor);
  Buffer.add_string b
    (Printf.sprintf "speedup: %s (%d hint(s))\n"
       (Table.fmt_speedup g.Pipeline.g_speedup)
       (List.length g.Pipeline.g_hints));
  Buffer.add_string b (Hints_file.to_string g.Pipeline.g_hints);
  Buffer.contents b

let execute ?crash config ~(tenant : Tenant.t) (req : Wire.request) =
  match config.resolve req.Wire.workload with
  | None -> rejected (Printf.sprintf "unknown workload %S" req.Wire.workload)
  | Some w -> (
    match prepare w req.Wire.program with
    | Error e -> rejected ("program: " ^ e)
    | Ok w -> (
      let watchdog = tighten config.watchdog req.Wire.deadline_cycles in
      let guard =
        match req.Wire.guard_floor with
        | Some floor -> { config.guard with Pipeline.floor = floor }
        | None -> config.guard
      in
      try
        let doc =
          match req.Wire.hints with
          | Some doc -> doc
          | None ->
            let options =
              { Profiler.default_options with Profiler.machine = config.machine }
            in
            let prof =
              Watchdog.run ~config:watchdog ?crash ~machine:config.machine
                Watchdog.Profile (fun capped ->
                  Pipeline.profile
                    ~options:{ options with Profiler.machine = capped }
                    w)
            in
            Profiler.to_doc ~options prof
        in
        let measure_cache =
          match tenant.Tenant.cache with
          | None -> None
          | Some scope ->
            let program = (Fingerprint.fingerprint (w.Workload.build ()).Workload.func).Fingerprint.program in
            (* The effective watchdog budgets — the daemon's base config
               with the request deadline folded in — are part of the
               key: a measurement taken under loose budgets must not
               answer from a persistent tenant cache for a request (or
               a restarted daemon) whose tighter ones would have
               fired. *)
            let options =
              let b (x : Watchdog.budget) =
                Printf.sprintf "%d/%d" x.Watchdog.max_cycles
                  x.Watchdog.max_steps
              in
              Printf.sprintf "wd=%s,%s,%s%s"
                (b watchdog.Watchdog.profile_budget)
                (b watchdog.Watchdog.inject_budget)
                (b watchdog.Watchdog.measure_budget)
                (match req.Wire.deadline_cycles with
                | Some d -> Printf.sprintf ";deadline=%d" d
                | None -> "")
            in
            Some
              (fun ~variant f ->
                Meas_cache.cached scope ~variant ~workload:w.Workload.name
                  ~program ~config:config.machine ~options f)
        in
        let g =
          Pipeline.run_guarded ~config:config.machine ~guard
            ~quarantine:tenant.Tenant.quarantine
            ?remap:(if req.Wire.remap then Some Remap.default_config else None)
            ~watchdog ?crash ?measure_cache ~doc w
        in
        match g.Pipeline.g_final.Pipeline.verified with
        | Error e ->
          failed ("semantic verification failed: " ^ e)
        | Ok () ->
          {
            h_status = Wire.Ok_;
            h_reason = "";
            h_body = render_guarded ~tenant:tenant.Tenant.id ~guard g;
          }
      with
      | Watchdog.Timed_out t -> timed_out (Watchdog.timeout_to_string t)
      | e when Crash.is_crashed e -> raise e
      | e -> failed (Printexc.to_string e)))

let run ?crash config ~tenant (req : Wire.request) =
  let breaker = tenant.Tenant.breaker in
  match Breaker.acquire breaker with
  | Breaker.Refuse left ->
    Metrics.incr "serve.breaker.refused";
    rejected
      (Printf.sprintf "tenant circuit breaker open (%d refusal(s) left)" left)
  | Breaker.Run | Breaker.Probe ->
    let before = Breaker.opened_count breaker in
    let outcome = execute ?crash config ~tenant req in
    Breaker.record breaker ~ok:(outcome.h_status = Wire.Ok_);
    if Breaker.opened_count breaker > before then
      Metrics.incr "serve.breaker.opened";
    outcome
