(** The one process-exit vocabulary every aptget subcommand speaks.

    Before this module each command improvised its own codes, which
    made the CLI unusable from supervisors ("is 3 a crash or a partial
    campaign?"). The contract, pinned by tests and documented in the
    README:

    - [0] ok — the command did everything it was asked.
    - [1] degraded — it ran to completion but some work failed,
      timed out, was quarantined or was rejected; results are partial
      yet trustworthy about their own status.
    - [2] usage — bad flags or malformed invocation; nothing ran.
    - [3] crashed — a simulated crash plan fired or supervision gave
      up; on-disk state is whatever the journal says.
    - [4] overloaded — admission control shed work. Distinct from
      [1] so a load balancer can tell "retry elsewhere" from "this
      input is bad". *)

type t = Ok_ | Degraded | Usage | Crashed | Overloaded

val to_int : t -> int
val of_int : int -> t option
val to_string : t -> string

val worst : t -> t -> t
(** Combine two outcomes into the one the process should report:
    [Overloaded] dominates, then [Crashed], [Usage], [Degraded],
    [Ok_]. *)

val exit : t -> 'a
(** [Stdlib.exit (to_int t)]. *)
