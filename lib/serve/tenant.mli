(** Per-tenant namespaces: the isolation unit of the serve daemon.

    A tenant owns a private subtree of the spool —
    [<spool>/tenants/<id>/quarantine] and
    [<spool>/tenants/<id>/cache/] — plus an in-memory circuit breaker.
    One tenant's poisonous workload can therefore trip only its own
    breaker, quarantine only its own hint sets, and never read (or
    taint) another tenant's cached measurements: the cache scope also
    namespaces keys by tenant id, so even bit-identical requests from
    two tenants hit disjoint records.

    Requests for a tenant are processed serially (the server builds
    per-tenant groups, like the campaign runner's per-workload
    groups), so tenant state needs no locking and breaker transitions
    are deterministic at any [--jobs]. *)

type t = {
  id : string;
  dir : string;  (** [<root>/tenants/<id>] *)
  quarantine : Aptget_core.Quarantine.t;
  cache : Aptget_core.Meas_cache.scope option;
  breaker : Aptget_core.Breaker.t;
}

type registry

val registry :
  root:string ->
  ?breaker:Aptget_core.Breaker.config ->
  ?cache:bool ->
  unit ->
  registry
(** [root] is the spool directory. [breaker] defaults to
    {!Aptget_core.Breaker.default_config}; [cache] (default [true])
    controls whether tenants get a measurement-cache scope. *)

val find_or_create : registry -> string -> (t, string) result
(** Look up or materialise a tenant. The id is validated with
    {!Wire.valid_id} (it becomes a path component); loading the
    tenant's quarantine store emits [store.salvage.quarantine] for any
    corrupt records salvaged. *)

val known : registry -> t list
(** All tenants materialised so far, sorted by id. *)
