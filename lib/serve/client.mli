(** A retrying, idempotent serve client for both transports.

    One {!call} is one request answered {e exactly once} no matter how
    the transport misbehaves underneath: the request id doubles as the
    idempotency key, so a retry after a mid-flight disconnect either
    re-submits work the daemon never saw, or — when the first attempt
    did land — is answered with the daemon's recorded response (socket
    transport replays it; on the spool the client simply reads the
    first recorded answer for the id). The daemon never executes the
    id twice, and the client never returns two answers for it.

    Retries sleep [retry_unit * Backoff.next] between attempts —
    capped exponential with seeded jitter ({!Aptget_util.Backoff}), so
    a thundering herd of failed clients decorrelates deterministically
    under a fixed seed.

    What retries and what does not:
    - transport failures (connect refused, injected or real
      disconnect, per-attempt timeout) retry until [attempts] is
      exhausted — then {!call} returns [Error];
    - an [overloaded] response — including the id-less ["-"] shed
      notice a capped listener sends before hanging up — is a
      {e terminal} answer, not a failure: the daemon told us to go
      away, and hammering it defeats admission control;
    - any other response is terminal by definition.

    The client can also inject its own seeded send faults
    ({!Net_faults}) to exercise the daemon's torn-frame resync and
    duplicate absorption: a cut spool append leaves a torn frame for
    the daemon to resync past; a duplicated socket frame must be
    absorbed by the id ledger. *)

type target =
  | Spool of string  (** spool directory (file transport) *)
  | Socket of Transport.addr

type config = {
  target : target;
  attempts : int;  (** max attempts per call, >= 1 *)
  timeout : float;  (** per-attempt seconds to wait for the response *)
  retry_unit : float;
      (** seconds multiplied by the backoff factor between attempts *)
  backoff : Aptget_util.Backoff.config;
  seed : int;  (** seeds backoff jitter and the client fault streams *)
  faults : Net_faults.config;  (** client-side injected send faults *)
}

val default_config : target -> config
(** 5 attempts, 5 s per-attempt timeout, 10 ms retry unit,
    {!Aptget_util.Backoff.default}, seed 0, faults off. *)

val validate : config -> (unit, string) result

type t

val create : ?stream:int -> config -> t
(** A client handle; [stream] (default 0) indexes this client's fault
    and jitter streams so concurrent clients under one seed draw
    independent but reproducible schedules.
    @raise Invalid_argument when the config does not validate. *)

type outcome = {
  response : Wire.response;
  attempts : int;  (** attempts consumed, >= 1 (retries = attempts - 1) *)
}

val call : t -> Wire.request -> (outcome, string) result
(** Submit [req] and wait for its answer (see above). [Error] only
    when every attempt failed at the transport layer — the request's
    fate at the daemon is then unknown, but thanks to the id ledger a
    later call under the same id cannot make it execute twice. *)

val shutdown : t -> (unit, string) result
(** Deliver a shutdown marker (graceful drain). Best-effort single
    attempt on sockets (the daemon closes the listener on its way
    out, so a response is not guaranteed); a plain append on the
    spool. *)
