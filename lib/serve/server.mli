(** The serve daemon: a supervised, file-queue-backed batch server.

    Transport is a spool directory rather than a socket — deliberately:
    every byte of daemon I/O is then a plain file, so tests and CI can
    drive it deterministically, inspect it with a pager, and crash it
    mid-flight with the store's simulated kill plans.

    {v
    <spool>/requests.q     framed Wire.body payloads (clients append)
    <spool>/responses.q    framed Wire.response payloads (daemon appends)
    <spool>/serve.journal  in-flight admit/done records (CRC'd)
    <spool>/health         liveness/readiness state file
    <spool>/.lock          fcntl lock serializing appends vs truncation
    <spool>/tenants/<id>/  per-tenant quarantine + measurement cache
    v}

    A {e drain} is the unit of service: decode every whole frame in
    [requests.q], answer recovery orphans with [aborted], offer the
    batch to admission control in arrival order (the first [capacity]
    are admitted, the rest shed with [overloaded]), journal the
    admissions, run them grouped per tenant — groups in parallel on
    the domain {!Aptget_util.Pool}, requests within a group serially —
    and append every response, in arrival order, to [responses.q] with
    one atomic write. Response bytes are therefore a function of the
    request sequence alone, identical at any [--jobs].

    Queue truncation is loss-proof: the drain removes exactly the
    prefix of [requests.q] it consumed, under the spool lock that
    {!submit} also takes, so frames appended after the drain's
    snapshot — and a trailing torn append that may still be in
    progress — survive to the next drain. A corrupted region inside
    the queue is skipped by resyncing to the next frame magic
    (counted, degraded exit), so one flipped byte cannot swallow the
    requests behind it. An id that already has a response in
    [responses.q] is rejected as a duplicate rather than re-executed;
    only an id the journal marks finished {e without} an answer (the
    crash hit between the [done] record and the response write) is
    resumed.

    Crash safety: an armed {!Aptget_store.Crash} plan (which also
    forces [jobs:1], like the campaign runner) raises mid-drain before
    the response write; the next drain replays the journal, aborts the
    orphans and re-executes the rest against the tenants' persistent
    stores. [requests.q] is truncated only after the responses land.
    After a completed drain every journal record is settled, so the
    journal is compacted to empty — a long-running [--watch] daemon
    replays a bounded, not ever-growing, history. *)

type config = {
  spool : string;
  capacity : int;  (** admission bound per drain (default 64) *)
  jobs : int option;  (** pool width; [None] = {!Aptget_util.Pool.default_jobs} *)
  default_deadline : int option;
      (** deadline-cycles applied to requests that carry none *)
  handler : Handler.config;
  breaker : Aptget_core.Breaker.config;  (** per-tenant breaker policy *)
  cache : bool;  (** give tenants measurement-cache scopes (default true) *)
}

val default_config : spool:string -> config

type report = {
  s_frames : int;  (** whole frames decoded this drain *)
  s_torn : int;
      (** 1 when a trailing incomplete tail was (newly) observed. The
          tail itself is left in [requests.q] — it may be an append in
          progress — and is not re-counted by this instance until it
          changes. *)
  s_resynced : int;
      (** corrupted regions inside the queue skipped by resyncing to
          the next frame magic (their bytes are consumed — they are
          permanently damaged, unlike a trailing tear) *)
  s_ok : int;
  s_shed : int;
  s_timed_out : int;
  s_rejected : int;
  s_failed : int;
  s_malformed : int;
  s_aborted : int;  (** recovery orphans answered [aborted] *)
  s_resumed : int;
      (** requests re-executed because a previous incarnation had
          finished them but crashed before responding (finished in the
          journal, no answer in [responses.q]; an {e answered} id is
          rejected as a duplicate instead) *)
  s_drained : bool;  (** a shutdown marker was processed *)
  s_salvaged : int;  (** corrupt journal records dropped at recovery *)
}

val empty_report : report
val combine : report -> report -> report

val exit_code : report -> Exit_code.t
(** [Overloaded] if anything was shed; else [Degraded] if any request
    failed, timed out, was rejected, malformed, torn, resynced-past or
    aborted; else [Ok_]. (A crash never reaches this: it propagates as
    {!Aptget_store.Crash.Crashed}.) *)

type t
(** A daemon instance: config plus the tenant registry (breaker state
    lives across drains of the same instance, like any resident
    daemon's; it is rebuilt deterministically after a restart). *)

val create : config -> t

val drain : ?crash:Aptget_store.Crash.t -> t -> report
(** One batch (see above). Publishes [ready] to the health file on
    entry. Raises {!Aptget_store.Crash.Crashed} only via an armed
    [crash] plan. *)

val serve :
  ?crash:Aptget_store.Crash.t -> ?poll:float -> ?max_drains:int -> t -> report
(** Drain repeatedly (sleeping [poll] seconds, default 0.05, between
    empty polls) until a drain processes a shutdown marker — the
    graceful-drain path — or [max_drains] batches have run. Publishes
    [stopped] with the combined report's exit code before returning. *)

val stop : t -> code:Exit_code.t -> unit
(** Publish [stopped] with [code] (used by the CLI when a crash plan
    fired: the supervisor's record of the death). *)

val submit : spool:string -> Wire.body -> unit
(** Client side: append one framed payload to [requests.q] under the
    spool lock (so a concurrent drain's truncation cannot observe, or
    destroy, a half-written frame), creating the spool on first
    use. *)

val responses :
  spool:string -> ((Wire.response, string) result list, string) result
(** Client side: decode [responses.q] — one entry per frame, [Error]
    for a payload that does not parse as a response. *)
