(** The serve daemon: a supervised batch server over two transports.

    The original — and still canonical for tests — transport is a
    spool directory: every byte of daemon I/O is a plain file, so CI
    can drive it deterministically, inspect it with a pager, and crash
    it mid-flight with the store's simulated kill plans.

    {v
    <spool>/requests.q     framed Wire.body payloads (clients append)
    <spool>/responses.q    framed Wire.response payloads (daemon appends)
    <spool>/serve.journal  in-flight admit/done records (CRC'd)
    <spool>/health         liveness/readiness state file (with heartbeat)
    <spool>/.lock          fcntl lock serializing appends vs truncation
    <spool>/tenants/<id>/  per-tenant quarantine + measurement cache
    v}

    The second transport ({!serve_socket}) is a live Unix-domain or
    TCP listener ({!Transport}) speaking the same ["APTG"] frames over
    a stream. It shares everything below the wire with the spool path
    — the same spool directory still holds the journal, the durable
    response record and the health file — so crash recovery and the
    duplicate ledger are transport-independent.

    A {e batch} is the unit of service: decode every whole frame,
    answer recovery orphans with [aborted], offer the batch to
    admission control in arrival order (the first [capacity] are
    admitted, the rest shed with [overloaded]), journal the
    admissions, run them grouped per tenant — groups in parallel on
    the domain {!Aptget_util.Pool}, requests within a group serially —
    and append every response, in arrival order, to [responses.q] with
    one atomic write. Response bytes are therefore a function of the
    request sequence alone, identical at any [--jobs] and identical
    across the two transports.

    Spool-queue truncation is loss-proof: the drain removes exactly
    the prefix of [requests.q] it consumed, under the spool lock that
    {!submit} also takes, so frames appended after the drain's
    snapshot — and a trailing torn append that may still be in
    progress — survive to the next drain. A corrupted region inside
    the queue (or inside a socket stream) is skipped by resyncing to
    the next frame magic (counted, degraded exit), so one flipped byte
    cannot swallow the requests behind it.

    Duplicate ids: on the spool path an id that already has a response
    in [responses.q] is rejected as a duplicate rather than
    re-executed. On the socket path the same id is {e replayed} — the
    recorded response is re-sent, not re-recorded and not re-executed
    — because there a duplicate is almost always a client retry after
    a torn connection, and the id doubles as an idempotency key:
    exactly-once execution, at-least-once delivery. Only an id the
    journal marks finished {e without} an answer (the crash hit
    between the [done] record and the response write) is resumed.

    Crash safety: an armed {!Aptget_store.Crash} plan (which also
    forces [jobs:1], like the campaign runner) raises mid-batch before
    the response write; the next incarnation replays the journal,
    aborts the orphans and re-executes the rest against the tenants'
    persistent stores. After a completed batch every journal record is
    settled, so the journal is compacted to empty. *)

type config = {
  spool : string;
  capacity : int;  (** admission bound per drain (default 64) *)
  jobs : int option;  (** pool width; [None] = {!Aptget_util.Pool.default_jobs} *)
  default_deadline : int option;
      (** deadline-cycles applied to requests that carry none *)
  handler : Handler.config;
  breaker : Aptget_core.Breaker.config;  (** per-tenant breaker policy *)
  cache : bool;  (** give tenants measurement-cache scopes (default true) *)
}

val default_config : spool:string -> config

type report = {
  s_frames : int;  (** whole frames decoded this drain *)
  s_torn : int;
      (** 1 when a trailing incomplete tail was (newly) observed. The
          tail itself is left in [requests.q] — it may be an append in
          progress — and is not re-counted by this instance until it
          changes. *)
  s_resynced : int;
      (** corrupted regions inside the queue (or a socket stream)
          skipped by resyncing to the next frame magic (their bytes
          are consumed — they are permanently damaged, unlike a
          trailing tear) *)
  s_ok : int;
  s_shed : int;
      (** admission-queue sheds, plus (socket transport) connections
          refused at the cap or reaped at the read deadline *)
  s_timed_out : int;
  s_rejected : int;
  s_failed : int;
  s_malformed : int;
  s_aborted : int;  (** recovery orphans answered [aborted] *)
  s_resumed : int;
      (** requests re-executed because a previous incarnation had
          finished them but crashed before responding (finished in the
          journal, no answer in [responses.q]) *)
  s_replayed : int;
      (** socket transport only: already-answered ids whose recorded
          response was re-delivered to a retrying client (idempotent
          retry), plus in-batch duplicate frames answered with their
          sibling's response. Never re-executed, never re-recorded. *)
  s_drained : bool;  (** a shutdown marker was processed *)
  s_salvaged : int;  (** corrupt journal records dropped at recovery *)
}

val empty_report : report
val combine : report -> report -> report

val exit_code : report -> Exit_code.t
(** [Overloaded] if anything was shed; else [Degraded] if any request
    failed, timed out, was rejected, malformed, torn, resynced-past or
    aborted; else [Ok_]. (Replays are clean: a successfully retried
    request is a success.) A crash never reaches this: it propagates
    as {!Aptget_store.Crash.Crashed}. *)

type t
(** A daemon instance: config plus the tenant registry (breaker state
    lives across drains of the same instance, like any resident
    daemon's; it is rebuilt deterministically after a restart). *)

val create : config -> t

val drain : ?crash:Aptget_store.Crash.t -> t -> report
(** One spool batch (see above). Publishes [ready] to the health file
    on entry and again after the batch. Raises
    {!Aptget_store.Crash.Crashed} only via an armed [crash] plan. *)

val serve :
  ?crash:Aptget_store.Crash.t -> ?poll:float -> ?max_drains:int -> t -> report
(** Drain repeatedly (sleeping [poll] seconds, default 0.05, between
    empty polls) until a drain processes a shutdown marker — the
    graceful-drain path — or [max_drains] batches have run. Publishes
    [stopped] with the combined report's exit code before returning. *)

type socket_config = {
  sk_addr : Transport.addr;
  sk_max_conns : int;  (** connection cap; over-cap accepts are shed *)
  sk_read_deadline : float;
      (** seconds a connection may sit without completing a frame
          before it is shed (slow-loris guard) *)
  sk_poll : float;  (** select timeout between batches (seconds) *)
  sk_heartbeat : float;
      (** max seconds between idle health-file publishes *)
  sk_faults : Net_faults.config;  (** server-side injected faults *)
}

val default_socket_config : Transport.addr -> socket_config
(** cap 64, deadline 2 s, poll 20 ms, heartbeat 0.5 s, faults off. *)

val serve_socket :
  ?crash:Aptget_store.Crash.t ->
  ?max_batches:int ->
  t ->
  socket_config ->
  (report, string) result
(** Listen on [sk_addr] and serve batches until a shutdown request is
    processed (or [max_batches] non-empty batches have run, a test
    knob). Each poll round's completed frames form one batch through
    the same core as {!drain} — responses are recorded durably in
    [responses.q] {e before} they are written back to connections, so
    a connection lost mid-response never loses the answer: the client
    retries under the same id and the recorded response is replayed.
    Recovery (journal orphans) runs once at startup. The health file
    heartbeat is bumped at least every [sk_heartbeat] seconds while
    idle. [Error] when the listener cannot be established. *)

val stop : t -> code:Exit_code.t -> unit
(** Publish [stopped] with [code] (used by the CLI when a crash plan
    fired: the supervisor's record of the death). *)

val submit : spool:string -> Wire.body -> unit
(** Client side: append one framed payload to [requests.q] under the
    spool lock (so a concurrent drain's truncation cannot observe, or
    destroy, a half-written frame), creating the spool on first
    use. *)

val responses :
  spool:string -> ((Wire.response, string) result list, string) result
(** Client side: decode [responses.q] — one entry per frame, [Error]
    for a payload that does not parse as a response. *)
