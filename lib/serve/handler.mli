(** Execute one admitted request inside its tenant's namespace.

    This is the serve daemon's unit of work: resolve the workload
    (optionally substituting client-shipped program IR), obtain a
    hints document (the request's stale hints, or a fresh profiling
    run), and run the guarded pipeline under the request's deadline —
    with the tenant's quarantine store, measurement-cache scope and
    circuit breaker plugged in.

    The result is a total {!outcome}: pipeline failures, blown
    deadlines and bad inputs all come back as structured statuses.
    The only exception allowed to escape is
    {!Aptget_store.Crash.Crashed} from an armed crash plan — a dead
    process cannot respond.

    Success bodies are rendered by {!render_guarded} with {e no}
    wall-clock content, so the same request yields byte-identical
    bytes from the daemon at any [--jobs] and from the one-shot
    [aptget serve --once] path. *)

type outcome = {
  h_status : Wire.status;
      (** [Ok_], [Timed_out], [Rejected] or [Failed] (admission-level
          statuses are decided by the server, not here) *)
  h_reason : string;
  h_body : string;
}

type config = {
  machine : Aptget_machine.Machine.config;
  watchdog : Aptget_core.Watchdog.config;
      (** base per-stage budgets; a request deadline tightens the
          cycle budgets of the simulated stages *)
  guard : Aptget_core.Pipeline.guard_config;
  resolve : string -> Aptget_workloads.Workload.t option;
      (** workload lookup, {!Aptget_workloads.Suite.find} by default
          (tests inject synthetic workloads here) *)
}

val default_config : config

val run :
  ?crash:Aptget_store.Crash.t -> config -> tenant:Tenant.t -> Wire.request -> outcome
(** Acquires the tenant breaker first: an open breaker refuses with
    [Rejected] (and [serve.breaker.refused]) without running anything.
    Every executed request records its outcome with the breaker, so a
    tenant whose requests keep failing trips only its own breaker
    ([serve.breaker.opened]). *)

val render_guarded :
  tenant:string ->
  guard:Aptget_core.Pipeline.guard_config ->
  Aptget_core.Pipeline.guarded ->
  string
(** The canonical response body (exposed for the one-shot CLI path). *)
