module Table = Aptget_util.Table
module Pipeline = Aptget_core.Pipeline
module Workload = Aptget_workloads.Workload
module Micro = Aptget_workloads.Micro
module Hashjoin = Aptget_workloads.Hashjoin
module Profiler = Aptget_profile.Profiler
module Faults = Aptget_pmu.Faults

let micro_w lab ~inner =
  let p = { (Lab.micro_params lab) with Micro.inner } in
  Micro.workload ~params:p ~name:(Printf.sprintf "micro-i%d" inner) ()

let hj_w lab =
  if Lab.quick lab then
    Hashjoin.workload
      ~params:
        {
          Hashjoin.hj8_params with
          Hashjoin.n_build = 65_536;
          n_probe = 32_768;
          n_buckets = 1 lsl 14;
        }
      ~name:"HJ8-rob" ()
  else Hashjoin.workload ~params:Hashjoin.hj8_params ~name:"HJ8-rob" ()

let fmt_speedup_opt base (r : Pipeline.robust) =
  match r.Pipeline.r_measurement with
  | Some m -> Table.fmt_speedup (Pipeline.speedup ~baseline:base m)
  | None -> "-"

let robust_row lab w label faults =
  let base = Lab.baseline lab w in
  let r = Pipeline.run_robust ~faults w in
  [
    w.Workload.name;
    label;
    Printf.sprintf "%d/%d"
      (List.length r.Pipeline.r_hints_used)
      (List.length r.Pipeline.r_hints_dropped);
    string_of_int (List.length r.Pipeline.r_degradations);
    fmt_speedup_opt base r;
  ]

(* Every knob sweep shares one seed per (knob, level) so the fault
   schedule is reproducible run to run. *)
let knobs =
  [
    ( "lbr-drop",
      List.map
        (fun rate ->
          ( Printf.sprintf "%.2f" rate,
            { Faults.none with Faults.lbr_drop_rate = rate } ))
        [ 0.0; 0.25; 0.5; 0.9 ] );
    ( "cycle-jitter",
      List.map
        (fun j ->
          (string_of_int j, { Faults.none with Faults.cycle_jitter = j }))
        [ 0; 8; 64; 512 ] );
    ( "lbr-truncate",
      List.map
        (fun rate ->
          ( Printf.sprintf "%.2f" rate,
            { Faults.none with Faults.lbr_truncate_rate = rate } ))
        [ 0.0; 0.25; 0.75 ] );
    ( "pebs-skid",
      List.map
        (fun rate ->
          ( Printf.sprintf "%.2f" rate,
            {
              Faults.none with
              Faults.pebs_skid_rate = rate;
              pebs_skid_max = 3;
            } ))
        [ 0.0; 0.25; 0.75; 1.0 ] );
    ( "throttle-budget",
      List.map
        (fun budget ->
          ( string_of_int budget,
            { Faults.none with Faults.throttle_budget = budget } ))
        [ 0; 64; 16; 4 ] );
  ]

let fault_knobs lab =
  let ws = [ micro_w lab ~inner:256; hj_w lab ] in
  List.map
    (fun (knob, levels) ->
      let t =
        Table.create
          ~title:
            (Printf.sprintf
               "Robustness: speedup vs %s (APT-GET under a corrupted profile, \
                run_robust)"
               knob)
          ~header:
            [ "workload"; knob; "hints used/dropped"; "degradations"; "speedup" ]
      in
      List.iter
        (fun w ->
          List.iter
            (fun (label, faults) ->
              Table.add_row t (robust_row lab w label faults))
            levels)
        ws;
      t)
    knobs

let suite_under_default_faults lab =
  let t =
    Table.create
      ~title:
        "Robustness: evaluation suite under the default fault mix (10% LBR \
         drop, +/-8 jitter, 5% truncation, 20% skid, throttling)"
      ~header:
        [
          "workload";
          "clean speedup";
          "faulted speedup";
          "hints used/dropped";
          "degradations";
          "verified";
        ]
  in
  List.iter
    (fun w ->
      let base = Lab.baseline lab w in
      let clean = Lab.aptget lab w in
      let r = Pipeline.run_robust ~faults:Faults.default_faulty w in
      Table.add_row t
        [
          w.Workload.name;
          Table.fmt_speedup (Pipeline.speedup ~baseline:base clean);
          fmt_speedup_opt base r;
          Printf.sprintf "%d/%d"
            (List.length r.Pipeline.r_hints_used)
            (List.length r.Pipeline.r_hints_dropped);
          string_of_int (List.length r.Pipeline.r_degradations);
          (match r.Pipeline.r_measurement with
          | Some m -> ( match m.Pipeline.verified with Ok () -> "ok" | Error _ -> "FAILED")
          | None -> "-");
        ])
    (Lab.suite lab);
  [ t ]

let all lab = fault_knobs lab @ suite_under_default_faults lab
