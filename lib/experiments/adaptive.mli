(** Online re-optimization study: {!Aptget_adapt.Adapt} vs the one-shot
    pipeline on the phase-change workload, both arms starting from the
    same aging whole-program profile. Records a synthetic
    ["phased-online"] baseline/aptget pair via {!Lab.record} (the online
    arm charged for its retune overhead) so the BENCH output carries the
    online-vs-one-shot speedup. *)

val all : Lab.t -> Aptget_util.Table.t list
