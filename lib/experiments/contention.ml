(* Shared-LLC contention study: what happens to a solo-tuned profile
   when the tenant no longer owns the machine.

   Each tenant is measured four ways against a streaming cache-thrasher
   co-runner on the shared LLC/DRAM hierarchy ({!Aptget_machine.Corun}):

   - solo baseline and solo APT-GET (the numbers every other experiment
     reports);
   - co-run baseline: tenant and thrasher interleaved round-robin, no
     hints — how much the co-runner alone costs;
   - co-run with the *stale* solo-tuned hints: the deployed-binary
     scenario. The shared DRAM channel queues the thrasher's misses in
     front of the tenant's, so the solo distance is now too short and
     prefetches arrive late; the thrasher's LLC insertions also evict
     prefetched lines early via inclusion.
   - co-run online: the drift detector (PR 7) judges the stale plan
     from its counter windows, a re-fit from a sampler that rode along
     the *unhinted* co-run re-solves Eq. 1 under contention (its hint
     PCs address the unmodified kernel, so no remap is needed), and a
     regression guard admits the retuned plan only if it clears the
     floor — otherwise the tenant is pinned to its co-run baseline.

   All co-run simulations are serial and the scheduler interleave is
   deterministic, so every table and BENCH row is byte-identical
   across --jobs and across engines (Corun already forces the
   superblock-free compiled engine for multi-stream runs). *)

module Table = Aptget_util.Table
module Clock = Aptget_util.Clock
module Pipeline = Aptget_core.Pipeline
module Machine = Aptget_machine.Machine
module Corun = Aptget_machine.Corun
module Drift = Aptget_adapt.Drift
module Profiler = Aptget_profile.Profiler
module Sampler = Aptget_pmu.Sampler
module Aptget_pass = Aptget_passes.Aptget_pass
module Workload = Aptget_workloads.Workload
module Randacc = Aptget_workloads.Randacc
module Btree = Aptget_workloads.Btree
module Thrash = Aptget_workloads.Thrash

type pair = {
  tenant : Workload.t;
  corunner : Workload.t;
  sweep : int list; (* forced distances; empty = skip the sweep table *)
}

(* The thrasher is sized per tenant so its block-dispatch count at
   least matches the tenant's: round-robin advances one block per
   stream per turn, so a co-runner that retires first would leave the
   tenant's tail uncontended. *)
let pairs lab =
  if Lab.quick lab then
    [
      {
        tenant =
          Randacc.workload
            ~params:
              { Randacc.table_words = 1 lsl 20; updates = 65_536; seed = 31 }
            ~name:"randAcc-ct" ();
        corunner =
          Thrash.workload
            ~params:{ Thrash.words = 1 lsl 19; passes = 4 }
            ~name:"thrash-ct" ();
        sweep = [ 1; 2; 4; 8; 16; 32 ];
      };
      {
        tenant =
          Btree.workload
            ~params:{ Btree.levels = 4; queries = 8_192; seed = 11 }
            ~name:"btree-ct" ();
        corunner =
          Thrash.workload
            ~params:{ Thrash.words = 1 lsl 19; passes = 8 }
            ~name:"thrash-ct" ();
        sweep = [];
      };
    ]
  else
    [
      {
        tenant =
          Randacc.workload
            ~params:
              { Randacc.table_words = 1 lsl 22; updates = 262_144; seed = 31 }
            ~name:"randAcc-ct" ();
        corunner =
          Thrash.workload
            ~params:{ Thrash.words = 1 lsl 19; passes = 8 }
            ~name:"thrash-ct" ();
        sweep = [ 1; 2; 4; 8; 16; 32; 64 ];
      };
      {
        tenant =
          Btree.workload
            ~params:{ Btree.levels = 4; queries = 32_768; seed = 11 }
            ~name:"btree-ct" ();
        corunner =
          Thrash.workload
            ~params:{ Thrash.words = 1 lsl 19; passes = 24 }
            ~name:"thrash-ct" ();
        sweep = [];
      };
    ]

let window_cycles lab = if Lab.quick lab then 250_000 else 1_000_000

(* Every arm of this experiment (solo included, so comparisons are
   fair) runs with a DRAM bandwidth bound: the default model's
   unlimited channel would let a prefetch stream and a thrasher fill
   concurrently for free, hiding exactly the queueing that makes a
   solo-tuned distance stale under co-running. *)
let config =
  let h = Machine.default_config.Machine.hierarchy in
  {
    Machine.default_config with
    Machine.hierarchy = { h with Aptget_cache.Hierarchy.dram_min_gap = 24 };
  }

let profile_options =
  { Profiler.default_options with Profiler.machine = config }

(* One co-run of [tenant_inst] against a *fresh* co-runner instance,
   returning the tenant's measurement (its stream outcome, verified
   against the tenant's own memory — the co-runner is verified too;
   cache sharing must never change semantics). *)
let corun_tenant ?policy ?sampler ?window_cycles ?on_window ~label
    (pair : pair) (tenant_inst : Workload.instance) =
  let ci = pair.corunner.Workload.build () in
  let streams =
    [
      Corun.stream ?sampler ?window_cycles ?on_window
        ~args:tenant_inst.Workload.args ~name:pair.tenant.Workload.name
        ~mem:tenant_inst.Workload.mem tenant_inst.Workload.func;
      Corun.stream ~args:ci.Workload.args ~name:pair.corunner.Workload.name
        ~mem:ci.Workload.mem ci.Workload.func;
    ]
  in
  let outcomes, wall = Clock.wall (fun () -> Corun.run ~config ?policy streams) in
  let tenant_o, corunner_o =
    match outcomes with
    | [ t; c ] -> (t.Corun.so_outcome, c.Corun.so_outcome)
    | _ -> assert false
  in
  (match ci.Workload.verify ci.Workload.mem corunner_o.Machine.ret with
  | Ok () -> ()
  | Error e -> failwith (label ^ ": co-runner verification failed: " ^ e));
  {
    Pipeline.workload = label;
    outcome = tenant_o;
    verified =
      tenant_inst.Workload.verify tenant_inst.Workload.mem
        tenant_o.Machine.ret;
    injected = [];
    skipped = [];
    wall_seconds = wall;
  }

(* Fresh tenant instance with [hints] injected (validated first, so a
   stale subset degrades exactly like the adaptive pipeline's rung). *)
let hinted_instance (pair : pair) hints =
  let inst = pair.tenant.Workload.build () in
  let used, _dropped = Profiler.validate_hints inst.Workload.func hints in
  ignore (Aptget_pass.run inst.Workload.func ~hints:used);
  Verify.check_exn inst.Workload.func;
  inst

let cycles (m : Pipeline.measurement) = m.Pipeline.outcome.Machine.cycles

let speedup ~base m =
  float_of_int (cycles base) /. float_of_int (cycles m)

type study = {
  st_name : string;
  st_solo_base : Pipeline.measurement;
  st_solo_tuned : Pipeline.measurement;
  st_corun_base : Pipeline.measurement;
  st_corun_stale : Pipeline.measurement;
  st_corun_final : Pipeline.measurement;
  st_action : string; (* "retuned" | "pinned" | "kept" *)
  st_verdict : Drift.verdict;
  st_eval : Drift.epoch_eval;
  st_retuned_distances : int list; (* distances of the re-fit hints *)
  st_solo_hints : Aptget_pass.hint list; (* the solo profile's hints *)
}

let study lab (pair : pair) =
  let name = pair.tenant.Workload.name in
  let wc = window_cycles lab in
  (* Solo arms. The solo hinted run collects counter windows: they are
     the drift detector's calibration epoch (the reference must
     describe the *hinted* program running alone). *)
  let solo_base = Lab.check (Pipeline.baseline ~config pair.tenant) in
  let prof = Pipeline.profile ~options:profile_options pair.tenant in
  let solo_epoch =
    Pipeline.run_adaptive ~config ~options:profile_options ~window_cycles:wc
      ~hints:prof.Profiler.hints pair.tenant
  in
  let solo_tuned = Lab.check solo_epoch.Pipeline.e_measurement in
  (* Co-run baseline, with a sampler riding on the unhinted tenant:
     its LBR sees iteration times inflated by the shared DRAM queue,
     which is exactly the evidence the Eq. 1 re-fit needs. *)
  let sampler =
    Sampler.create
      ~lbr_period:Profiler.default_options.Profiler.lbr_period
      ~pebs_period:Profiler.default_options.Profiler.pebs_period ()
  in
  let base_inst = pair.tenant.Workload.build () in
  let corun_base =
    Lab.check
      (corun_tenant ~sampler ~label:(name ^ "@corun") pair base_inst)
  in
  let refit =
    try
      Some
        (Profiler.refit ~options:profile_options
           ~baseline:corun_base.Pipeline.outcome sampler
           base_inst.Workload.func)
    with _ -> None
  in
  (* Co-run with the stale solo hints, windows feeding the detector. *)
  let windows = ref [] in
  let corun_stale =
    Lab.check
      (corun_tenant ~window_cycles:wc
         ~on_window:(fun w -> windows := w :: !windows)
         ~label:(name ^ "@corun-stale") pair
         (hinted_instance pair prof.Profiler.hints))
  in
  let corun_windows = List.rev !windows in
  (* Drift: epoch 1 (solo hinted) calibrates, epoch 2 (co-run) rules. *)
  let det =
    Drift.create
      {
        Drift.ref_mpki = Machine.mpki solo_tuned.Pipeline.outcome;
        ref_iter = None;
      }
  in
  Drift.begin_epoch det;
  List.iter (Drift.observe_window det) solo_epoch.Pipeline.e_windows;
  ignore (Drift.end_epoch det ());
  Drift.begin_epoch det;
  List.iter (Drift.observe_window det) corun_windows;
  let verdict, eval = Drift.end_epoch det () in
  (* Retune: re-fit hints, measured under the co-runner, admitted by a
     regression guard against the co-run baseline (floor as in
     Pipeline.default_guard). *)
  let retuned_hints =
    match refit with Some r -> r.Profiler.hints | None -> []
  in
  let corun_retuned =
    match retuned_hints with
    | [] -> None
    | hints ->
      Some
        (Lab.check
           (corun_tenant ~label:(name ^ "@corun-retuned") pair
              (hinted_instance pair hints)))
  in
  let floor = Pipeline.default_guard.Pipeline.floor in
  let final, action =
    match corun_retuned with
    | Some m
      when speedup ~base:corun_base m >= floor
           && cycles m <= cycles corun_stale ->
      (m, "retuned")
    | _ ->
      if speedup ~base:corun_base corun_stale >= 1.0 then
        (corun_stale, "kept")
      else (corun_base, "pinned")
  in
  Lab.record lab ~workload:(name ^ "@solo") ~variant:"baseline" solo_base;
  Lab.record lab ~workload:(name ^ "@solo") ~variant:"aptget" solo_tuned;
  Lab.record lab ~workload:(name ^ "@corun") ~variant:"baseline" corun_base;
  Lab.record lab ~workload:(name ^ "@corun") ~variant:"aptget" corun_stale;
  Lab.record lab
    ~workload:(name ^ "@corun-online")
    ~variant:"baseline" corun_base;
  Lab.record lab ~workload:(name ^ "@corun-online") ~variant:"aptget" final;
  {
    st_name = name;
    st_solo_base = solo_base;
    st_solo_tuned = solo_tuned;
    st_corun_base = corun_base;
    st_corun_stale = corun_stale;
    st_corun_final = final;
    st_action = action;
    st_verdict = verdict;
    st_eval = eval;
    st_retuned_distances =
      List.map (fun h -> h.Aptget_pass.distance) retuned_hints;
    st_solo_hints = prof.Profiler.hints;
  }

let fmt_counters (m : Pipeline.measurement) =
  let c = m.Pipeline.outcome.Machine.counters in
  Printf.sprintf "late=%.2f early=%.2f"
    (Machine.late_prefetch_ratio c)
    (Machine.early_evict_ratio c)

let arms_table studies =
  let t =
    Table.create ~title:"Solo-tuned hints under a shared-LLC co-runner"
      ~header:[ "tenant"; "arm"; "cycles"; "speedup"; "prefetch timing" ]
  in
  List.iter
    (fun s ->
      let row arm m ~base =
        Table.add_row t
          [
            s.st_name;
            arm;
            string_of_int (cycles m);
            Table.fmt_speedup (speedup ~base m);
            fmt_counters m;
          ]
      in
      row "solo baseline" s.st_solo_base ~base:s.st_solo_base;
      row "solo APT-GET" s.st_solo_tuned ~base:s.st_solo_base;
      row "co-run baseline" s.st_corun_base ~base:s.st_corun_base;
      row "co-run stale hints" s.st_corun_stale ~base:s.st_corun_base;
      row
        (Printf.sprintf "co-run online (%s)" s.st_action)
        s.st_corun_final ~base:s.st_corun_base)
    studies;
  t

let drift_table studies =
  let t =
    Table.create ~title:"Drift verdicts and recovery (co-run epoch)"
      ~header:
        [
          "tenant"; "windows"; "drifted"; "score"; "cause"; "verdict";
          "action"; "stale loss"; "retuned distances";
        ]
  in
  List.iter
    (fun s ->
      (* Headline criterion: how much of the solo speedup survives the
         co-runner when the hints are not retuned. *)
      let solo_sp = speedup ~base:s.st_solo_base s.st_solo_tuned in
      let stale_sp = speedup ~base:s.st_corun_base s.st_corun_stale in
      let loss = 1.0 -. (stale_sp /. solo_sp) in
      Table.add_row t
        [
          s.st_name;
          string_of_int s.st_eval.Drift.ev_windows;
          string_of_int s.st_eval.Drift.ev_drifted;
          Printf.sprintf "%.4f" s.st_eval.Drift.ev_score;
          s.st_eval.Drift.ev_cause;
          Drift.verdict_to_string s.st_verdict;
          s.st_action;
          Printf.sprintf "%.1f%%" (100.0 *. loss);
          (match s.st_retuned_distances with
          | [] -> "-"
          | ds -> String.concat "," (List.map string_of_int ds));
        ])
    studies;
  t

(* Forced-distance sweep, solo vs co-run: the co-run optimum sits at a
   longer distance than the solo one because the shared DRAM channel
   stretches the memory component of Eq. 1. *)
let sweep_table ((pair : pair), (s : study)) =
  match pair.sweep with
  | [] -> None
  | distances ->
    let name = pair.tenant.Workload.name in
    let solo_base = s.st_solo_base in
    let corun_base = s.st_corun_base in
    let t =
      Table.create
        ~title:
          (Printf.sprintf "%s: forced distance, solo vs co-run" name)
        ~header:
          [ "distance"; "solo cycles"; "solo speedup"; "co-run cycles";
            "co-run speedup" ]
    in
    List.iter
      (fun d ->
        let hints = Pipeline.force_distance d s.st_solo_hints in
        let solo =
          Lab.check (Pipeline.with_hints ~config ~hints pair.tenant)
        in
        let corun =
          Lab.check
            (corun_tenant
               ~label:(Printf.sprintf "%s@corun-d%d" name d)
               pair (hinted_instance pair hints))
        in
        Table.add_row t
          [
            string_of_int d;
            string_of_int (cycles solo);
            Table.fmt_speedup (speedup ~base:solo_base solo);
            string_of_int (cycles corun);
            Table.fmt_speedup (speedup ~base:corun_base corun);
          ])
      distances;
    Some t

(* Scheduler-policy comparison on one pair: the cycle-ratio policy
   shifts dispatch turns between the streams, which moves each
   stream's own cycle count because the shared LLC/DRAM interleaving
   changes with it. *)
let policy_table (pair : pair) =
  let run policy =
    let ti = pair.tenant.Workload.build () in
    let ci = pair.corunner.Workload.build () in
    let outs =
      Corun.run ~config ~policy
        [
          Corun.stream ~args:ti.Workload.args ~name:pair.tenant.Workload.name
            ~mem:ti.Workload.mem ti.Workload.func;
          Corun.stream ~args:ci.Workload.args
            ~name:pair.corunner.Workload.name ~mem:ci.Workload.mem
            ci.Workload.func;
        ]
    in
    match outs with
    | [ t; c ] -> (t.Corun.so_outcome, c.Corun.so_outcome)
    | _ -> assert false
  in
  let t =
    Table.create
      ~title:
        (Printf.sprintf "Scheduler policies: %s vs %s"
           pair.tenant.Workload.name pair.corunner.Workload.name)
      ~header:[ "policy"; "tenant cycles"; "co-runner cycles" ]
  in
  List.iter
    (fun policy ->
      let tenant_o, corunner_o = run policy in
      Table.add_row t
        [
          Corun.policy_to_string policy;
          string_of_int tenant_o.Machine.cycles;
          string_of_int corunner_o.Machine.cycles;
        ])
    [
      Corun.Round_robin;
      Corun.Cycle_ratio [ 1; 1 ];
      Corun.Cycle_ratio [ 4; 1 ];
    ];
  t

let all lab =
  let ps = pairs lab in
  let studies = List.map (study lab) ps in
  let sweeps = List.filter_map sweep_table (List.combine ps studies) in
  let policies = match ps with [] -> [] | p :: _ -> [ policy_table p ] in
  (arms_table studies :: drift_table studies :: sweeps) @ policies
