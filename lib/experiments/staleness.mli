(** Stale-profile study: what happens when a checked-in profile
    outlives the program it described.

    Each scenario profiles a workload, then mutates the workload's IR
    (or its inputs) the way a recompile would — PC renumbering, edits
    above the load, loop splitting, an adversarial load collision, a
    trip-count change — and compares three ways of consuming the now
    stale hints: blindly by PC (the paper's behaviour), remapped by
    structural fingerprint ({!Aptget_profile.Remap}), and remapped
    under the regression guard
    ({!Aptget_core.Pipeline.run_guarded}). A second table demonstrates
    quarantine persistence: the first guarded run measures and
    quarantines a harmful hint set, the second recognises it and spends
    no candidate simulation. *)

val all : Lab.t -> Aptget_util.Table.t list
