module Table = Aptget_util.Table
module Pipeline = Aptget_core.Pipeline
module Campaign = Aptget_core.Campaign
module Watchdog = Aptget_core.Watchdog
module Workload = Aptget_workloads.Workload
module Micro = Aptget_workloads.Micro
module Crash = Aptget_store.Crash
module Journal = Aptget_store.Journal

let micro_w lab ~name =
  Micro.workload ~params:(Lab.micro_params lab) ~name ()

(* A workload whose build fails transiently: the first [fail_first]
   builds raise, later ones succeed. Exercises the retry ladder — the
   failure is gone by the second attempt. *)
let flaky (w : Workload.t) ~fail_first =
  let calls = ref 0 in
  {
    w with
    Workload.name = w.Workload.name ^ "-flaky";
    build =
      (fun () ->
        incr calls;
        if !calls <= fail_first then
          failwith "transient build failure (injected)"
        else w.Workload.build ());
  }

(* A workload whose semantic verifier always rejects: no retry can fix
   it, so its trials grind down the circuit breaker. *)
let broken (w : Workload.t) =
  {
    w with
    Workload.name = w.Workload.name ^ "-broken";
    build =
      (fun () ->
        let inst = w.Workload.build () in
        {
          inst with
          Workload.verify =
            (fun _ _ -> Error "injected verification failure");
        });
  }

let with_temp_store f =
  let path = Filename.temp_file "aptget-campaign" ".journal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

(* Tight enough that the broken workload trips its breaker inside a
   short plan, loose enough that one retry saves the flaky one. *)
let demo_config =
  {
    Campaign.default_config with
    Campaign.max_retries = 1;
    breaker_threshold = 2;
    breaker_cooldown = 2;
  }

let supervised lab =
  let ws =
    [
      micro_w lab ~name:"micro-camp";
      flaky (micro_w lab ~name:"micro-camp") ~fail_first:1;
      broken (micro_w lab ~name:"micro-camp");
    ]
  in
  let trials = Campaign.plan ~trials_per_workload:6 ws in
  let report =
    with_temp_store (fun store -> Campaign.run ~config:demo_config ~store trials)
  in
  let t =
    Table.create
      ~title:
        "Supervised campaign: retries save transient failures, the circuit \
         breaker contains persistent ones (max_retries=1, threshold=2, \
         cooldown=2)"
      ~header:[ "trial"; "status"; "attempts"; "backoff" ]
  in
  List.iter
    (fun (r : Campaign.trial_result) ->
      Table.add_row t
        [
          r.Campaign.tr_id;
          Campaign.status_to_string r.Campaign.tr_status;
          string_of_int r.Campaign.tr_attempts;
          Printf.sprintf "%.1f" r.Campaign.tr_backoff;
        ])
    report.Campaign.c_results;
  let s =
    Table.create ~title:"Campaign summary"
      ~header:
        [
          "completed"; "resumed"; "retried"; "failed"; "skipped";
          "breakers opened"; "exit";
        ]
  in
  Table.add_row s
    [
      string_of_int report.Campaign.c_completed;
      string_of_int report.Campaign.c_resumed;
      string_of_int report.Campaign.c_retried;
      string_of_int report.Campaign.c_failed;
      string_of_int report.Campaign.c_skipped;
      String.concat ", "
        (List.map
           (fun (w, n) -> Printf.sprintf "%s x%d" w n)
           report.Campaign.c_breakers_opened);
      (if Campaign.ok report then "0 (ok)" else "3 (partial)");
    ];
  [ t; s ]

(* Kill the campaign at a fixed checkpoint write, resume it on the
   same store, and compare against an uninterrupted run of the same
   plan: the resumed run must re-execute only the unjournaled trials
   and end with the same completed set, with zero corrupt records. *)
let crash_resume lab =
  let ws = [ micro_w lab ~name:"micro-crash" ] in
  let trials = Campaign.plan ~trials_per_workload:4 ws in
  let t =
    Table.create
      ~title:
        "Crash/resume: kill -9 after the 2nd checkpoint write, reopen the \
         journal, resume the same plan"
      ~header:
        [ "phase"; "completed"; "resumed"; "journal records"; "dropped" ]
  in
  let add phase (r : Campaign.report option) ~records ~dropped =
    Table.add_row t
      [
        phase;
        (match r with
        | Some r -> string_of_int r.Campaign.c_completed
        | None -> "killed");
        (match r with
        | Some r -> string_of_int r.Campaign.c_resumed
        | None -> "-");
        string_of_int records;
        string_of_int dropped;
      ]
  in
  with_temp_store (fun store ->
      let crash = Crash.after_writes 2 in
      (match Campaign.run ~store ~crash trials with
      | (_ : Campaign.report) ->
        failwith "campaign_exp: crash plan never fired"
      | exception Crash.Crashed _ -> ());
      let salvage = Journal.recover ~path:store in
      add "interrupted" None
        ~records:(List.length salvage.Journal.records)
        ~dropped:salvage.Journal.dropped;
      let resumed = Campaign.run ~store trials in
      add "resumed" (Some resumed)
        ~records:
          (List.length resumed.Campaign.c_store_recovery.Journal.records)
        ~dropped:resumed.Campaign.c_store_recovery.Journal.dropped;
      let uninterrupted =
        with_temp_store (fun store2 -> Campaign.run ~store:store2 trials)
      in
      add "uninterrupted" (Some uninterrupted) ~records:0 ~dropped:0;
      [ t ])

(* A starved watchdog: the profile stage gets a budget no real profile
   fits in, so the pipeline degrades to a hint-less run instead of
   hanging the campaign. *)
let watchdog_degradation lab =
  let w = micro_w lab ~name:"micro-wdog" in
  let starved =
    {
      Watchdog.default with
      Watchdog.profile_budget =
        { Watchdog.max_cycles = 1_000; max_steps = 0 };
    }
  in
  let r = Pipeline.run_robust ~watchdog:starved w in
  let t =
    Table.create
      ~title:
        "Watchdog: a 1k-cycle profile deadline degrades the stage (the run \
         continues unprofiled)"
      ~header:[ "workload"; "degradation"; "measured" ]
  in
  (match r.Pipeline.r_degradations with
  | [] -> Table.add_row t [ w.Workload.name; "(none)"; "-" ]
  | ds ->
    List.iter
      (fun d ->
        Table.add_row t
          [
            w.Workload.name;
            Pipeline.degradation_to_string d;
            (match r.Pipeline.r_measurement with
            | Some _ -> "yes"
            | None -> "no");
          ])
      ds);
  [ t ]

let all lab = supervised lab @ crash_resume lab @ watchdog_degradation lab
