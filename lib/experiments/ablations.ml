module Table = Aptget_util.Table
module Machine = Aptget_machine.Machine
module Hierarchy = Aptget_cache.Hierarchy
module Pipeline = Aptget_core.Pipeline
module Workload = Aptget_workloads.Workload
module Micro = Aptget_workloads.Micro
module Hashjoin = Aptget_workloads.Hashjoin
module Profiler = Aptget_profile.Profiler
module Model = Aptget_profile.Model
module Aptget_pass = Aptget_passes.Aptget_pass
module Inject = Aptget_passes.Inject

let micro_w lab ~inner =
  let p = { (Lab.micro_params lab) with Micro.inner } in
  Micro.workload ~params:p ~name:(Printf.sprintf "micro-i%d" inner) ()

let hj_w lab =
  if Lab.quick lab then
    Hashjoin.workload
      ~params:
        {
          Hashjoin.hj8_params with
          Hashjoin.n_build = 65_536;
          n_probe = 32_768;
          n_buckets = 1 lsl 14;
        }
      ~name:"HJ8-abl" ()
  else Hashjoin.workload ~params:Hashjoin.hj8_params ~name:"HJ8-abl" ()

let speedup_with_options lab w options =
  let prof = Pipeline.profile ~options w in
  let base = Lab.baseline lab w in
  let m = Lab.check (Pipeline.with_hints ~hints:prof.Profiler.hints w) in
  (Pipeline.speedup ~baseline:base m, prof)

let peak_finder lab =
  let t =
    Table.create
      ~title:
        "Ablation: peak finder — CWT ridge lines vs naive smoothed argmax"
      ~header:[ "workload"; "finder"; "chosen distance(s)"; "speedup" ]
  in
  let ws = [ micro_w lab ~inner:256; hj_w lab ] in
  List.iter
    (fun w ->
      List.iter
        (fun (label, finder) ->
          let options = { Profiler.default_options with Profiler.finder } in
          let s, prof = speedup_with_options lab w options in
          let ds =
            String.concat ","
              (List.map
                 (fun (h : Aptget_pass.hint) -> string_of_int h.Aptget_pass.distance)
                 prof.Profiler.hints)
          in
          Table.add_row t [ w.Workload.name; label; ds; Table.fmt_speedup s ])
        [ ("cwt", Model.Cwt); ("naive", Model.Naive) ])
    ws;
  [ t ]

let k_constant lab =
  let t =
    Table.create
      ~title:"Ablation: Equation (2) constant k (site decision threshold)"
      ~header:[ "workload"; "k"; "sites chosen"; "speedup" ]
  in
  let ws = [ micro_w lab ~inner:4; hj_w lab ] in
  List.iter
    (fun w ->
      List.iter
        (fun k ->
          let options = { Profiler.default_options with Profiler.k } in
          let s, prof = speedup_with_options lab w options in
          let sites =
            String.concat ","
              (List.map
                 (fun (h : Aptget_pass.hint) ->
                   Inject.site_to_string h.Aptget_pass.site)
                 prof.Profiler.hints)
          in
          Table.add_row t
            [ w.Workload.name; string_of_int k; sites; Table.fmt_speedup s ])
        [ 1; 3; 5; 8 ])
    ws;
  [ t ]

let mshr lab =
  let t =
    Table.create
      ~title:"Ablation: fill-buffer (MSHR) capacity vs prefetching gains"
      ~header:[ "MSHRs"; "baseline cycles"; "APT-GET cycles"; "speedup"; "dropped" ]
  in
  let w = micro_w lab ~inner:256 in
  List.iter
    (fun capacity ->
      let config =
        {
          Machine.default_config with
          Machine.hierarchy =
            { Hierarchy.default_config with Hierarchy.mshr_capacity = capacity };
        }
      in
      let base = Lab.check (Pipeline.baseline ~config w) in
      let prof =
        Pipeline.profile
          ~options:{ Profiler.default_options with Profiler.machine = config }
          w
      in
      let m =
        Lab.check (Pipeline.with_hints ~config ~hints:prof.Profiler.hints w)
      in
      Table.add_row t
        [
          string_of_int capacity;
          string_of_int base.Pipeline.outcome.Machine.cycles;
          string_of_int m.Pipeline.outcome.Machine.cycles;
          Table.fmt_speedup (Pipeline.speedup ~baseline:base m);
          string_of_int
            m.Pipeline.outcome.Machine.counters.Hierarchy.sw_prefetch_dropped;
        ])
    [ 2; 4; 8; 16; 32 ];
  [ t ]

let clamping lab =
  let t =
    Table.create
      ~title:
        "Ablation: clamping the advanced induction value (Listing 4 select) \
         vs leaving it unclamped"
      ~header:[ "distance"; "variant"; "speedup"; "verified" ]
  in
  let w = micro_w lab ~inner:64 in
  let base = Lab.baseline lab w in
  List.iter
    (fun d ->
      List.iter
        (fun (label, clamp) ->
          let inst = w.Workload.build () in
          let pc = Micro.delinquent_load_pc inst in
          (match
             Inject.inject ~clamp inst.Workload.func
               { Inject.load_pc = pc; distance = d; site = Inject.Inner; sweep = 1 }
           with
          | Ok _ -> ()
          | Error e -> failwith e);
          let out =
            Machine.execute ~args:inst.Workload.args ~mem:inst.Workload.mem
              inst.Workload.func
          in
          let verified =
            match inst.Workload.verify inst.Workload.mem out.Machine.ret with
            | Ok () -> "ok"
            | Error _ -> "FAILED"
          in
          let s =
            float_of_int base.Pipeline.outcome.Machine.cycles
            /. float_of_int out.Machine.cycles
          in
          Table.add_row t
            [ string_of_int d; label; Table.fmt_speedup s; verified ])
        [ ("clamped", true); ("unclamped", false) ])
    [ 8; 32 ];
  [ t ]

let sweep lab =
  let t =
    Table.create
      ~title:
        "Ablation: outer-site sweep width (inner iterations prefetched per \
         outer-loop prefetch) on the 8-slot hash join"
      ~header:[ "sweep"; "speedup"; "instr overhead" ]
  in
  let w = hj_w lab in
  let base = Lab.baseline lab w in
  let prof = Lab.profiled lab w in
  List.iter
    (fun sweep ->
      let hints =
        List.map
          (fun (h : Aptget_pass.hint) ->
            { h with Aptget_pass.site = Inject.Outer; sweep })
          prof.Profiler.hints
      in
      let m = Lab.check (Pipeline.with_hints ~hints w) in
      Table.add_row t
        [
          string_of_int sweep;
          Table.fmt_speedup (Pipeline.speedup ~baseline:base m);
          Table.fmt_float (Pipeline.instruction_overhead ~baseline:base m) ^ "x";
        ])
    [ 1; 2; 4; 8 ];
  [ t ]

let core_model lab =
  let t =
    Table.create
      ~title:
        "Ablation: core model — blocking (reproduction default) vs \

         stall-on-use with a 64-entry window (out-of-order stand-in, \

         no speculation)"
      ~header:
        [ "workload"; "core"; "baseline cycles"; "APT-GET cycles"; "speedup" ]
  in
  let ws = [ micro_w lab ~inner:256; hj_w lab ] in
  List.iter
    (fun w ->
      List.iter
        (fun (label, config) ->
          let base = Lab.check (Pipeline.baseline ~config w) in
          let prof =
            Pipeline.profile
              ~options:{ Profiler.default_options with Profiler.machine = config }
              w
          in
          let m =
            Lab.check (Pipeline.with_hints ~config ~hints:prof.Profiler.hints w)
          in
          Table.add_row t
            [
              w.Workload.name;
              label;
              string_of_int base.Pipeline.outcome.Machine.cycles;
              string_of_int m.Pipeline.outcome.Machine.cycles;
              Table.fmt_speedup (Pipeline.speedup ~baseline:base m);
            ])
        [
          ("blocking", Machine.default_config);
          ("stall-on-use", Machine.stall_on_use_config ());
        ])
    ws;
  [ t ]

let cse lab =
  let t =
    Table.create
      ~title:
        "Ablation: local CSE cleanup after injection (stands in for LLVM's \
         scalar optimisations)"
      ~header:
        [ "workload"; "variant"; "instr overhead"; "speedup" ]
  in
  let ws = [ micro_w lab ~inner:256; hj_w lab ] in
  List.iter
    (fun w ->
      let base = Lab.baseline lab w in
      let prof = Lab.profiled lab w in
      List.iter
        (fun (label, cse) ->
          let m =
            Lab.check (Pipeline.with_hints ~cse ~hints:prof.Profiler.hints w)
          in
          Table.add_row t
            [
              w.Workload.name;
              label;
              Table.fmt_float (Pipeline.instruction_overhead ~baseline:base m)
              ^ "x";
              Table.fmt_speedup (Pipeline.speedup ~baseline:base m);
            ])
        [ ("no cse", false); ("cse", true) ])
    ws;
  [ t ]

let bandwidth lab =
  let t =
    Table.create
      ~title:
        "Ablation: DRAM bandwidth bound (min cycles between fills; 0 = \
         unlimited, the reproduction default)"
      ~header:[ "min gap"; "baseline cycles"; "APT-GET cycles"; "speedup" ]
  in
  let w = micro_w lab ~inner:256 in
  List.iter
    (fun gap ->
      let config =
        {
          Machine.default_config with
          Machine.hierarchy =
            { Hierarchy.default_config with Hierarchy.dram_min_gap = gap };
        }
      in
      let base = Lab.check (Pipeline.baseline ~config w) in
      let prof =
        Pipeline.profile
          ~options:{ Profiler.default_options with Profiler.machine = config }
          w
      in
      let m =
        Lab.check (Pipeline.with_hints ~config ~hints:prof.Profiler.hints w)
      in
      Table.add_row t
        [
          string_of_int gap;
          string_of_int base.Pipeline.outcome.Machine.cycles;
          string_of_int m.Pipeline.outcome.Machine.cycles;
          Table.fmt_speedup (Pipeline.speedup ~baseline:base m);
        ])
    [ 0; 4; 16; 64 ];
  [ t ]

let all lab =
  peak_finder lab @ k_constant lab @ mshr lab @ clamping lab @ sweep lab
  @ core_model lab @ cse lab @ bandwidth lab
