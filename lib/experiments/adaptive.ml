(* Online re-optimization study: the self-healing loop (Aptget_adapt)
   against the one-shot pipeline on the phase-change workload.

   Both arms start from the same aging profile — one whole-program
   profile of the fused kernel, whose hints are live through every
   later phase. The one-shot arm applies those hints to each phase
   unconditionally (what a deployed binary does until someone
   re-profiles); the online arm notices the drift and retunes. The
   headline speedup charges the online arm for its retune overhead
   (every supervised guard simulation), so the row is a lower bound. *)

module Table = Aptget_util.Table
module Pool = Aptget_util.Pool
module Pipeline = Aptget_core.Pipeline
module Adapt = Aptget_adapt.Adapt
module Drift = Aptget_adapt.Drift
module Phased = Aptget_workloads.Phased
module Workload = Aptget_workloads.Workload
module Machine = Aptget_machine.Machine
module Hierarchy = Aptget_cache.Hierarchy
module Profiler = Aptget_profile.Profiler

let params lab =
  if Lab.quick lab then
    {
      Phased.default_params with
      Phased.table_words = 1 lsl 19;
      phases =
        (Phased.Cold, 8_192) :: List.init 22 (fun _ -> (Phased.Hot, 24_576));
    }
  else Phased.default_params

let sum_measurements ~workload (ms : Pipeline.measurement list) =
  match ms with
  | [] -> invalid_arg "Adaptive.sum_measurements: empty"
  | first :: _ ->
      let zero =
        Hierarchy.sub_counters first.Pipeline.outcome.Machine.counters
          first.Pipeline.outcome.Machine.counters
      in
      let outcome =
        List.fold_left
          (fun acc (m : Pipeline.measurement) ->
            let o = m.Pipeline.outcome in
            {
              Machine.cycles = acc.Machine.cycles + o.Machine.cycles;
              instructions = acc.Machine.instructions + o.Machine.instructions;
              dyn_loads = acc.Machine.dyn_loads + o.Machine.dyn_loads;
              dyn_prefetches =
                acc.Machine.dyn_prefetches + o.Machine.dyn_prefetches;
              ret = None;
              counters =
                Hierarchy.add_counters acc.Machine.counters o.Machine.counters;
            })
          {
            Machine.cycles = 0;
            instructions = 0;
            dyn_loads = 0;
            dyn_prefetches = 0;
            ret = None;
            counters = zero;
          }
          ms
      in
      {
        Pipeline.workload;
        outcome;
        verified = Ok ();
        injected = [];
        skipped = [];
        wall_seconds =
          List.fold_left
            (fun acc m -> acc +. m.Pipeline.wall_seconds)
            0.0 ms;
      }

let all lab =
  let p = params lab in
  let fused = Phased.workload ~params:p ~name:"phased" () in
  let segments = Phased.segments ~params:p ~name:"phased" () in
  let seg_ws = List.map snd segments in
  let profile = Adapt.prime fused in
  (* One-shot arm: fused hints on every segment, fanned across domains
     (Pool.run preserves submission order, so the arm is byte-stable
     across --jobs). *)
  let oneshot =
    Pool.run
      (fun w ->
        Lab.check (Pipeline.with_hints ~hints:profile.Profiler.hints w))
      seg_ws
  in
  let online = Adapt.run ~profile ~name:"phased" seg_ws in
  let oneshot_sum = sum_measurements ~workload:"phased-online" oneshot in
  let online_sum =
    sum_measurements ~workload:"phased-online"
      (List.map
         (fun (s : Adapt.segment_result) ->
           s.Adapt.s_epoch.Pipeline.e_measurement)
         online.Adapt.a_segments)
  in
  (* Charge the online arm for its retune overhead: the recorded cycle
     count is application cycles plus every supervised guard run. *)
  let online_charged =
    {
      online_sum with
      Pipeline.outcome =
        {
          online_sum.Pipeline.outcome with
          Machine.cycles =
            online_sum.Pipeline.outcome.Machine.cycles
            + online.Adapt.a_retune_cycles;
        };
    }
  in
  Lab.record lab ~workload:"phased-online" ~variant:"baseline" oneshot_sum;
  Lab.record lab ~workload:"phased-online" ~variant:"aptget" online_charged;
  let oneshot_cycles = oneshot_sum.Pipeline.outcome.Machine.cycles in
  let app_cycles = online.Adapt.a_app_cycles in
  let total_cycles = app_cycles + online.Adapt.a_retune_cycles in
  let arms = Table.create ~title:"Online re-optimization vs one-shot (phase-change workload)"
      ~header:[ "arm"; "cycles"; "speedup vs one-shot" ] in
  Table.add_row arms
    [ "one-shot (aging profile)"; string_of_int oneshot_cycles; "1.00x" ];
  Table.add_row arms
    [
      "online (application)";
      string_of_int app_cycles;
      Table.fmt_speedup (float_of_int oneshot_cycles /. float_of_int app_cycles);
    ];
  Table.add_row arms
    [
      "online (incl. retune overhead)";
      string_of_int total_cycles;
      Table.fmt_speedup
        (float_of_int oneshot_cycles /. float_of_int total_cycles);
    ];
  let summary =
    Table.create ~title:"Adaptation summary"
      ~header:[ "metric"; "value" ]
  in
  Table.add_row summary [ "segments"; string_of_int (List.length seg_ws) ];
  Table.add_row summary [ "retunes"; string_of_int online.Adapt.a_retunes ];
  List.iter
    (fun (label, n) ->
      Table.add_row summary [ "ladder " ^ label; string_of_int n ])
    online.Adapt.a_ladder;
  Table.add_row summary
    [ "dwell-suppressed"; string_of_int online.Adapt.a_suppressed_dwell ];
  Table.add_row summary
    [ "breaker-suppressed"; string_of_int online.Adapt.a_suppressed_breaker ];
  Table.add_row summary
    [ "retune overhead cycles"; string_of_int online.Adapt.a_retune_cycles ];
  Table.add_row summary [ "final plan"; online.Adapt.a_final_plan ];
  let log =
    Table.create ~title:"Retune log (deterministic across --jobs)"
      ~header:
        [
          "segment"; "plan"; "windows"; "drifted"; "score"; "streak";
          "verdict"; "action"; "cycles";
        ]
  in
  List.iter
    (fun (s : Adapt.segment_result) ->
      Table.add_row log
        [
          Printf.sprintf "%d:%s" s.Adapt.s_index s.Adapt.s_workload;
          s.Adapt.s_plan;
          string_of_int s.Adapt.s_eval.Drift.ev_windows;
          string_of_int s.Adapt.s_eval.Drift.ev_drifted;
          Printf.sprintf "%.4f" s.Adapt.s_eval.Drift.ev_score;
          string_of_int s.Adapt.s_eval.Drift.ev_streak;
          Drift.verdict_to_string s.Adapt.s_verdict;
          Adapt.action_to_string s.Adapt.s_action;
          string_of_int s.Adapt.s_cycles;
        ])
    online.Adapt.a_segments;
  [ arms; summary; log ]
