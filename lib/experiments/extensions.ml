module Table = Aptget_util.Table
module Machine = Aptget_machine.Machine
module Hierarchy = Aptget_cache.Hierarchy
module Pipeline = Aptget_core.Pipeline
module Workload = Aptget_workloads.Workload
module Micro = Aptget_workloads.Micro
module Profiler = Aptget_profile.Profiler
module Aptget_pass = Aptget_passes.Aptget_pass
module Loops = Aptget_passes.Loops
module Costmodel = Aptget_passes.Costmodel
module Layout = Aptget_ir.Layout

let micro_w lab ~complexity =
  let p = { (Lab.micro_params lab) with Micro.complexity } in
  Micro.workload ~params:p ~name:(Printf.sprintf "micro-c%d" complexity) ()

let cost_model lab =
  let t =
    Table.create
      ~title:
        "Extension (paper §2.5): static cost-model distance vs LBR distance \
         under varying (input-dependent) work complexity"
      ~header:
        [ "complexity"; "static IC est."; "measured IC"; "IC error"; "static D";
          "LBR D"; "static speedup"; "LBR speedup" ]
  in
  let dram =
    Machine.default_config.Machine.hierarchy.Hierarchy.dram_latency
  in
  List.iter
    (fun complexity ->
      let w = micro_w lab ~complexity in
      let base = Lab.baseline lab w in
      (* Static estimate: the loop containing the indirect load, with
         the Work amount unknown at compile time. *)
      let inst = w.Workload.build () in
      let f = inst.Workload.func in
      let loops = Loops.analyze f in
      let pc = Micro.delinquent_load_pc inst in
      let li =
        Option.get (Loops.loop_containing loops (Layout.block_of_pc pc))
      in
      let static_ic = Costmodel.loop_iteration_cost f loops.(li) in
      let static_d = Costmodel.static_distance ~dram_latency:dram f loops.(li) in
      let m_static = Lab.static_distance lab ~distance:static_d w in
      let apt = Lab.aptget lab w in
      let prof = Lab.profiled lab w in
      let lbr_d =
        match prof.Profiler.hints with
        | h :: _ -> string_of_int h.Aptget_pass.distance
        | [] -> "-"
      in
      let measured_ic =
        List.find_map
          (fun (p : Profiler.load_profile) ->
            Option.map (fun m -> m.Aptget_profile.Model.ic_latency) p.Profiler.model)
          prof.Profiler.profiles
      in
      let ic_cell, err_cell =
        match measured_ic with
        | Some ic ->
          ( Printf.sprintf "%.0f" ic,
            Table.fmt_pct (abs_float (float_of_int static_ic -. ic) /. ic) )
        | None -> ("-", "-")
      in
      Table.add_row t
        [
          string_of_int complexity;
          string_of_int static_ic;
          ic_cell;
          err_cell;
          string_of_int static_d;
          lbr_d;
          Table.fmt_speedup (Pipeline.speedup ~baseline:base m_static);
          Table.fmt_speedup (Pipeline.speedup ~baseline:base apt);
        ])
    [ 0; 30; 120 ];
  [ t ]

let overhead_filter lab =
  let t =
    Table.create
      ~title:
        "Extension (paper §4.8): conditional injection — drop hints whose \
         predicted instruction overhead exceeds the measured IC"
      ~header:
        [ "workload"; "APT-GET"; "APT-GET+filter"; "hints kept"; "instr overhead" ]
  in
  List.iter
    (fun w ->
      let base = Lab.baseline lab w in
      let apt = Lab.aptget lab w in
      let options =
        { Profiler.default_options with Profiler.max_overhead_frac = 1.0 }
      in
      let prof = Pipeline.profile ~options w in
      let filtered =
        Lab.check (Pipeline.with_hints ~hints:prof.Profiler.hints w)
      in
      Table.add_row t
        [
          w.Workload.name;
          Table.fmt_speedup (Pipeline.speedup ~baseline:base apt);
          Table.fmt_speedup (Pipeline.speedup ~baseline:base filtered);
          Printf.sprintf "%d/%d"
            (List.length prof.Profiler.hints)
            (List.length prof.Profiler.profiles);
          Table.fmt_float (Pipeline.instruction_overhead ~baseline:base filtered)
          ^ "x";
        ])
    (Lab.suite lab);
  [ t ]

let hw_sw_interplay lab =
  let t =
    Table.create
      ~title:
        "Extension (paper §4.4): hardware/software prefetch interplay \
         (cycles normalised to baseline with HW prefetch ON)"
      ~header:
        [ "workload"; "base HW-off"; "base HW-on"; "APT-GET HW-off"; "APT-GET HW-on" ]
  in
  let config_off =
    {
      Machine.default_config with
      Machine.hierarchy =
        { Hierarchy.default_config with Hierarchy.hw_prefetch = false };
    }
  in
  List.iter
    (fun w ->
      let base_on = Lab.baseline lab w in
      let base_off = Lab.check (Pipeline.baseline ~config:config_off w) in
      let apt_on = Lab.aptget lab w in
      let prof_off =
        Pipeline.profile
          ~options:
            { Profiler.default_options with Profiler.machine = config_off }
          w
      in
      let apt_off =
        Lab.check
          (Pipeline.with_hints ~config:config_off
             ~hints:prof_off.Profiler.hints w)
      in
      let rel m = Pipeline.speedup ~baseline:base_on m in
      Table.add_row t
        [
          w.Workload.name;
          Table.fmt_speedup (rel base_off);
          Table.fmt_speedup (rel base_on);
          Table.fmt_speedup (rel apt_off);
          Table.fmt_speedup (rel apt_on);
        ])
    (Lab.nested_suite lab);
  [ t ]

let all lab = cost_model lab @ overhead_filter lab @ hw_sw_interplay lab
