(** Ablation studies for the design choices called out in DESIGN.md. *)

val peak_finder : Lab.t -> Aptget_util.Table.t list
(** CWT ridge-line peak detection vs the naive smoothed-argmax. *)

val k_constant : Lab.t -> Aptget_util.Table.t list
(** Sweep of Equation (2)'s k over {1, 3, 5, 8}. *)

val mshr : Lab.t -> Aptget_util.Table.t list
(** Sensitivity of prefetching gains to fill-buffer capacity. *)

val clamping : Lab.t -> Aptget_util.Table.t list
(** Bound-clamped vs unclamped prefetch indices. *)

val sweep : Lab.t -> Aptget_util.Table.t list
(** Outer-site inner-iteration sweep width on the hash join. *)

val core_model : Lab.t -> Aptget_util.Table.t list
(** Blocking core vs the stall-on-use (OoO stand-in) core: do the
    headline shapes survive latency overlap? *)

val cse : Lab.t -> Aptget_util.Table.t list
(** Instruction-overhead effect of the post-injection CSE cleanup. *)

val bandwidth : Lab.t -> Aptget_util.Table.t list
(** DRAM bandwidth sensitivity: prefetching cannot beat the channel. *)

val all : Lab.t -> Aptget_util.Table.t list
