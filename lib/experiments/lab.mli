(** Measurement cache shared by all experiments.

    Several figures reuse the same runs (baseline, A&J, APT-GET,
    distance sweeps); the lab memoizes each (workload, variant) pair so
    a full benchmark invocation executes every simulation exactly
    once. *)

type t

val create : ?quick:bool -> ?cache_dir:string -> unit -> t
(** [quick] shrinks the suite and the microbenchmark so the whole
    harness finishes in well under a minute (used by tests and
    [--quick]). [cache_dir] enables the persistent measurement cache
    ({!Aptget_core.Meas_cache}); when omitted, the [APTGET_CACHE]
    environment variable is consulted, and when that is unset too the
    lab memoizes in memory only. *)

val quick : t -> bool

val suite : t -> Aptget_workloads.Workload.t list
(** The evaluation suite (possibly reduced in quick mode). *)

val nested_suite : t -> Aptget_workloads.Workload.t list

val micro_params : t -> Aptget_workloads.Micro.params
(** Microbenchmark sizing for §2 experiments. *)

val baseline : t -> Aptget_workloads.Workload.t -> Aptget_core.Pipeline.measurement
val aj : t -> ?distance:int -> Aptget_workloads.Workload.t -> Aptget_core.Pipeline.measurement
val aptget : t -> Aptget_workloads.Workload.t -> Aptget_core.Pipeline.measurement
val profiled : t -> Aptget_workloads.Workload.t -> Aptget_profile.Profiler.t

val static_distance : t -> distance:int -> Aptget_workloads.Workload.t -> Aptget_core.Pipeline.measurement
(** Profiled injection sites with a forced static distance (Fig. 8–9). *)

val forced_site :
  t -> Aptget_passes.Inject.site -> Aptget_workloads.Workload.t ->
  Aptget_core.Pipeline.measurement
(** Profiled hints with a forced injection site (Fig. 10). *)

val record :
  t -> workload:string -> variant:string -> Aptget_core.Pipeline.measurement -> unit
(** Insert an externally computed measurement under the
    ["<workload>/<variant>"] memo key (first insertion wins; never
    persisted to the on-disk cache). The adaptive experiment sums its
    one-shot and online arms into synthetic ["baseline"]/["aptget"]
    records so {!summary} carries the online-vs-one-shot speedup into
    the BENCH output. *)

val summary : t -> (string * float * float) list
(** [(workload, speedup, mpki_reduction)] for every workload whose
    baseline and APT-GET runs are both already in the cache, sorted by
    name. Never triggers a simulation — the bench harness calls this
    after each experiment to emit machine-readable results. *)

val check : Aptget_core.Pipeline.measurement -> Aptget_core.Pipeline.measurement
(** Assert semantic verification passed (all experiments run through
    this, so a miscompiling pass aborts the harness loudly). *)

(** {2 Batched, parallel prewarming}

    A [job] names one memoized measurement; [run_batch] computes the
    ones not yet memoized (or loadable from the persistent cache) in
    parallel across domains and stores them in the memo tables. The
    experiments prewarm their full job list at entry and then render
    tables serially through the memoized getters, so parallel and
    serial runs produce byte-identical output. *)

type job =
  | Baseline of Aptget_workloads.Workload.t
  | Aj of { distance : int option; w : Aptget_workloads.Workload.t }
  | Aptget of Aptget_workloads.Workload.t
  | Static of { distance : int; w : Aptget_workloads.Workload.t }
  | Site of { site : Aptget_passes.Inject.site; w : Aptget_workloads.Workload.t }

val run_batch : ?jobs:int -> t -> job list -> unit
(** Measure every not-yet-cached job, fanning across
    [jobs] domains (default {!Aptget_util.Pool.default_jobs}).
    Duplicate jobs are deduplicated; profiles required by
    profile-guided jobs are computed first (once per workload). The
    first failing job's exception propagates in deterministic
    (submission) order. *)
