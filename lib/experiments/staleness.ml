module Table = Aptget_util.Table
module Pipeline = Aptget_core.Pipeline
module Quarantine = Aptget_core.Quarantine
module Workload = Aptget_workloads.Workload
module Micro = Aptget_workloads.Micro
module Hashjoin = Aptget_workloads.Hashjoin
module Profiler = Aptget_profile.Profiler
module Remap = Aptget_profile.Remap
module Hints_file = Aptget_profile.Hints_file

let micro_w lab = Micro.workload ~params:(Lab.micro_params lab) ~name:"micro-stale" ()

let hj_w lab =
  if Lab.quick lab then
    Hashjoin.workload
      ~params:
        {
          Hashjoin.hj8_params with
          Hashjoin.n_build = 65_536;
          n_probe = 32_768;
          n_buckets = 1 lsl 14;
        }
      ~name:"HJ8-stale" ()
  else Hashjoin.workload ~params:Hashjoin.hj8_params ~name:"HJ8-stale" ()

(* A mutated variant of [w]: same data, same semantics, different code
   layout. The mutation sees the built instance so it can aim at a
   profiled PC; [None] means the mutation does not apply (the scenario
   is skipped for that workload). *)
let mutated (w : Workload.t) ~tag mutate =
  let applicable =
    match mutate (w.Workload.build ()).Workload.func with
    | Some _ -> true
    | None -> false
  in
  if not applicable then None
  else
    Some
      {
        w with
        Workload.name = w.Workload.name ^ "~" ^ tag;
        build =
          (fun () ->
            let inst = w.Workload.build () in
            match mutate inst.Workload.func with
            | Some f -> { inst with Workload.func = f }
            | None -> inst);
      }

let first_hint_pc (doc : Hints_file.doc) =
  match doc.Hints_file.entries with
  | e :: _ -> Some e.Hints_file.e_hint.Aptget_passes.Aptget_pass.load_pc
  | [] -> None

(* The recompile scenarios. [load-collide] is the adversarial one: the
   profiled PC ends up naming a *different* (direct, hardware-covered)
   load, so blind application injects pure overhead. *)
let mutations doc =
  [
    ("pc-shift", fun f -> Some (Mutate.pad_entry f));
    ( "nop-slide",
      fun f ->
        Option.map
          (fun pc ->
            Mutate.insert_dead f ~block:(Layout.block_of_pc pc) ~index:0
              ~count:3)
          (first_hint_pc doc) );
    ("loop-split", fun f -> Some (Mutate.split_all f));
    ( "load-collide",
      fun f -> Option.bind (first_hint_pc doc) (fun pc -> Mutate.collide_load f ~pc)
    );
  ]

let recovered (r : Remap.t) =
  Printf.sprintf "%d/%d"
    (r.Remap.kept + r.Remap.remapped + r.Remap.rescaled)
    (List.length r.Remap.report)

let scenario_rows t quarantine (w : Workload.t) (doc : Hints_file.doc) =
  List.iter
    (fun (tag, mutate) ->
      match mutated w ~tag mutate with
      | None -> ()
      | Some mw ->
        let base = Pipeline.baseline mw in
        let blind =
          Pipeline.with_hints ~hints:(Hints_file.hints_of_doc doc) mw
        in
        let g =
          Pipeline.run_guarded ~quarantine ~remap:Remap.default_config ~doc mw
        in
        let remap_str =
          match g.Pipeline.g_remap with Some r -> recovered r | None -> "-"
        in
        Table.add_row t
          [
            w.Workload.name;
            tag;
            Table.fmt_speedup (Pipeline.speedup ~baseline:base blind);
            remap_str;
            Table.fmt_speedup
              (match g.Pipeline.g_candidate with
              | Some m -> Pipeline.speedup ~baseline:g.Pipeline.g_baseline m
              | None -> g.Pipeline.g_speedup);
            Table.fmt_speedup g.Pipeline.g_speedup;
            Pipeline.guard_outcome_to_string g.Pipeline.g_outcome;
          ])
    (mutations doc)

let mutation_table lab =
  let t =
    Table.create
      ~title:
        "Staleness: stale hints applied blindly vs fingerprint-remapped \
         under the regression guard (floor 0.98x)"
      ~header:
        [
          "workload";
          "mutation";
          "blind";
          "recovered";
          "remapped";
          "guarded";
          "guard outcome";
        ]
  in
  let quarantine = Quarantine.create () in
  List.iter
    (fun w ->
      let doc = Profiler.to_doc (Lab.profiled lab w) in
      scenario_rows t quarantine w doc)
    [ micro_w lab; hj_w lab ];
  t

(* Same IR, different inputs: the micro kernel's trip counts are
   runtime arguments, so the hints' PCs stay exact but the distances
   were modelled on the wrong iteration time. Remapping keeps them
   (structurally nothing moved); the guard decides whether the stale
   timing still clears the floor. *)
let trip_change_table lab =
  let p = Lab.micro_params lab in
  let w = Micro.workload ~params:p ~name:"micro-stale" () in
  let doc = Profiler.to_doc (Lab.profiled lab w) in
  let t =
    Table.create
      ~title:
        "Staleness: trip-count change (same IR, inner trip count altered \
         after profiling)"
      ~header:[ "workload"; "inner"; "blind"; "guarded"; "guard outcome" ]
  in
  List.iter
    (fun inner ->
      let p' = { p with Micro.inner } in
      let mw =
        Micro.workload ~params:p'
          ~name:(Printf.sprintf "micro-stale-i%d" inner)
          ()
      in
      let base = Pipeline.baseline mw in
      let blind = Pipeline.with_hints ~hints:(Hints_file.hints_of_doc doc) mw in
      let g = Pipeline.run_guarded ~remap:Remap.default_config ~doc mw in
      Table.add_row t
        [
          mw.Workload.name;
          string_of_int inner;
          Table.fmt_speedup (Pipeline.speedup ~baseline:base blind);
          Table.fmt_speedup g.Pipeline.g_speedup;
          Pipeline.guard_outcome_to_string g.Pipeline.g_outcome;
        ])
    [ p.Micro.inner / 4; p.Micro.inner * 4 ];
  t

(* Quarantine persistence: the first guarded run of a harmful hint set
   pays one candidate simulation and records the verdict; the second
   run recognises the key and goes straight to the fallback. *)
let quarantine_table lab =
  let t =
    Table.create
      ~title:
        "Staleness: quarantine persistence (guarded runs of the load-collide \
         hint set, shared store)"
      ~header:[ "run"; "candidate simulated"; "final"; "guard outcome" ]
  in
  let w = micro_w lab in
  let doc = Profiler.to_doc (Lab.profiled lab w) in
  (match
     Option.bind (first_hint_pc doc) (fun pc ->
         mutated w ~tag:"load-collide" (fun f -> Mutate.collide_load f ~pc))
   with
  | None -> ()
  | Some mw ->
    let path = Filename.temp_file "aptget-quarantine" ".txt" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        List.iter
          (fun run ->
            (* A fresh store per run: persistence must come from the
               file, not from the in-memory table. *)
            let quarantine = Quarantine.create ~path () in
            let g = Pipeline.run_guarded ~quarantine ~doc mw in
            Table.add_row t
              [
                run;
                (match g.Pipeline.g_candidate with
                | Some _ -> "yes"
                | None -> "no");
                Table.fmt_speedup g.Pipeline.g_speedup;
                Pipeline.guard_outcome_to_string g.Pipeline.g_outcome;
              ])
          [ "first"; "second" ]));
  t

let all lab =
  [ mutation_table lab; trip_change_table lab; quarantine_table lab ]
