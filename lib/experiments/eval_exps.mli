(** §4 evaluation experiments over the full application suite. *)

val table2 : Lab.t -> Aptget_util.Table.t list
(** Machine configuration. *)

val table3 : Lab.t -> Aptget_util.Table.t list
(** Application list. *)

val table4 : Lab.t -> Aptget_util.Table.t list
(** Graph dataset registry (paper sizes and scaled stand-ins). *)

val fig5 : Lab.t -> Aptget_util.Table.t list
(** Fraction of cycles stalled on L3/DRAM per application (baseline). *)

val fig6 : Lab.t -> Aptget_util.Table.t list
(** Execution-time speedup of APT-GET and Ainsworth & Jones over the
    non-prefetching baseline, with geometric means. *)

val fig7 : Lab.t -> Aptget_util.Table.t list
(** LLC MPKI per build and the reduction over baseline. *)

val fig8 : Lab.t -> Aptget_util.Table.t list
(** LBR-selected distance vs the best of an exhaustive sweep over
    D = {1,2,4,...,128}. *)

val fig9 : Lab.t -> Aptget_util.Table.t list
(** Static distances {4,16,64} vs the LBR-selected distance. *)

val fig10 : Lab.t -> Aptget_util.Table.t list
(** Inner- vs outer-loop injection for the nested-loop applications. *)

val fig11 : Lab.t -> Aptget_util.Table.t list
(** Dynamic instruction overhead of the injected prefetch slices. *)

val fig12 : Lab.t -> Aptget_util.Table.t list
(** Train-input vs test-input generalization: hints profiled on one
    input applied to another. *)

val datasets : Lab.t -> Aptget_util.Table.t list
(** BFS across every Table-4 dataset stand-in — the per-input axis of
    the paper's bar charts. *)
