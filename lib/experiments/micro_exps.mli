(** §2 motivation experiments on the Listing-1 microbenchmark. *)

val median_snapshot :
  Aptget_pmu.Sampler.lbr_sample list -> Aptget_pmu.Sampler.lbr_sample
(** The snapshot with the median capture cycle: sorts by [at_cycle]
    before indexing, so the result does not depend on the input order.
    Raises [Invalid_argument] on the empty list. *)

val table1 : Lab.t -> Aptget_util.Table.t list
(** Prefetch accuracy and timeliness vs distance {none, 1, 64, 1024}. *)

val fig1 : Lab.t -> Aptget_util.Table.t list
(** Speedup vs prefetch distance for low/medium/high work complexity,
    INNER = 256. *)

val fig2 : Lab.t -> Aptget_util.Table.t list
(** Speedup vs prefetch distance for inner trip counts {4, 16, 64}. *)

val fig3 : Lab.t -> Aptget_util.Table.t list
(** An LBR snapshot rendered as in Fig. 3, plus the loop statistics
    (trip count, iteration time) recovered from it. *)

val fig4 : Lab.t -> Aptget_util.Table.t list
(** Loop execution-time distribution of a delinquent load with the
    CWT-detected peaks. *)
