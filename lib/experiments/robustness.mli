(** Robustness ablation: speedup vs profile corruption.

    The paper assumes clean profiles — exact PEBS attribution, precise
    LBR cycle stamps, no sample loss. This experiment relaxes each
    assumption in turn through {!Aptget_pmu.Faults} and measures how
    the APT-GET speedup degrades as the fault rate grows, running every
    configuration through {!Aptget_core.Pipeline.run_robust} so a
    corrupted profile degrades the plan instead of crashing the
    harness. *)

val fault_knobs : Lab.t -> Aptget_util.Table.t list
(** One sweep per fault knob (LBR snapshot drops, cycle-stamp jitter,
    ring truncation, PEBS skid, adaptive throttling): speedup, hint
    counts and degradation counts per fault rate, on a reduced workload
    pair. *)

val suite_under_default_faults : Lab.t -> Aptget_util.Table.t list
(** The whole evaluation suite under {!Aptget_pmu.Faults.default_faulty}:
    per workload, the clean vs faulted speedup and the degradation
    report size — the headline "how much corruption can APT-GET
    absorb" table. *)

val all : Lab.t -> Aptget_util.Table.t list
