(** Extension studies beyond the paper's evaluation: the §2.5
    static-cost-model comparison, the §4.8 conditional-injection
    future work, and the hardware/software prefetch interplay the
    paper explicitly leaves open (§4.4). *)

val cost_model : Lab.t -> Aptget_util.Table.t list
(** Distances a profile-free static cost model would choose vs the
    LBR-derived ones, across work-function complexities — reproducing
    §2.5's argument that compile-time latency estimation cannot adapt
    to input-dependent work or cache behaviour. *)

val overhead_filter : Lab.t -> Aptget_util.Table.t list
(** APT-GET with and without the predicted-overhead hint filter
    (§4.8 "conditional prefetch slice injection"). *)

val hw_sw_interplay : Lab.t -> Aptget_util.Table.t list
(** Baseline and APT-GET with the hardware prefetchers on and off:
    how much of each app's gain is contested between HW and SW
    prefetching (left as future work in §4.4). *)

val all : Lab.t -> Aptget_util.Table.t list
