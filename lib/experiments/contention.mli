(** Shared-LLC contention: solo-tuned prefetch hints under a
    cache-thrashing co-runner, with drift detection and online retune.

    Per tenant (RandomAccess and the pointer-chasing B-tree), measures
    solo baseline/APT-GET, co-run baseline, co-run with stale solo
    hints, and a co-run online arm (drift verdict from counter
    windows, Eq. 1 re-fit from a sampler that rode the unhinted
    co-run, regression-guarded adoption). Also emits a forced-distance
    solo-vs-co-run sweep and a scheduler-policy comparison. All
    simulations are serial and deterministic: BENCH rows are
    byte-identical across [--jobs] and engines. *)

val all : Lab.t -> Aptget_util.Table.t list
