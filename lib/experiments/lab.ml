module Pipeline = Aptget_core.Pipeline
module Profiler = Aptget_profile.Profiler
module Workload = Aptget_workloads.Workload
module Suite = Aptget_workloads.Suite
module Micro = Aptget_workloads.Micro
module Inject = Aptget_passes.Inject

type t = {
  quick : bool;
  measurements : (string, Pipeline.measurement) Hashtbl.t;
  profiles : (string, Profiler.t) Hashtbl.t;
}

let create ?(quick = false) () =
  { quick; measurements = Hashtbl.create 64; profiles = Hashtbl.create 16 }

let quick t = t.quick

let suite t =
  if not t.quick then Suite.default
  else
    [
      Suite.bfs ~name:"BFS-20K8"
        ~graph:(fun () -> Aptget_graph.Datasets.synthetic ~nodes:20_000 ~degree:8 ())
        ~input:"20K-d8";
      Aptget_workloads.Is.workload
        ~params:
          {
            Aptget_workloads.Is.n_keys = 65_536;
            key_range = 262_144;
            iterations = 1;
            seed = 11;
          }
        ~name:"IS-quick" ();
      Aptget_workloads.Hashjoin.workload
        ~params:
          {
            Aptget_workloads.Hashjoin.hj2_params with
            Aptget_workloads.Hashjoin.n_build = 65_536;
            n_probe = 32_768;
            n_buckets = 1 lsl 16;
          }
        ~name:"HJ2-quick" ();
      Aptget_workloads.Randacc.workload
        ~params:
          { Aptget_workloads.Randacc.table_words = 1 lsl 20;
            updates = 65_536;
            seed = 31;
          }
        ~name:"randAcc-quick" ();
    ]

let nested_suite t = List.filter (fun w -> w.Workload.nested) (suite t)

let micro_params t =
  if t.quick then
    { Micro.default_params with Micro.total = 32_768; table_words = 1 lsl 20 }
  else { Micro.default_params with Micro.total = 131_072; table_words = 1 lsl 22 }

let check (m : Pipeline.measurement) = Pipeline.verified_exn m

let memo t key f =
  match Hashtbl.find_opt t.measurements key with
  | Some m -> m
  | None ->
    let m = check (f ()) in
    Hashtbl.add t.measurements key m;
    m

let baseline t w =
  memo t (w.Workload.name ^ "/baseline") (fun () -> Pipeline.baseline w)

let aj t ?distance w =
  let d = Option.value ~default:Aptget_passes.Aj.default_distance distance in
  memo t (Printf.sprintf "%s/aj-%d" w.Workload.name d) (fun () ->
      Pipeline.aj ~distance:d w)

let profiled t w =
  match Hashtbl.find_opt t.profiles w.Workload.name with
  | Some p -> p
  | None ->
    let p = Pipeline.profile w in
    Hashtbl.add t.profiles w.Workload.name p;
    p

let aptget t w =
  memo t (w.Workload.name ^ "/aptget") (fun () ->
      let prof = profiled t w in
      Pipeline.with_hints ~hints:prof.Profiler.hints w)

let static_distance t ~distance w =
  memo t (Printf.sprintf "%s/static-%d" w.Workload.name distance) (fun () ->
      let prof = profiled t w in
      Pipeline.with_hints
        ~hints:(Pipeline.force_distance distance prof.Profiler.hints)
        w)

(* Derived purely from the memo caches: a workload appears once both
   its baseline and its APT-GET runs have been measured, so the bench
   harness can snapshot headline numbers without triggering new
   simulations. *)
let summary t =
  Hashtbl.fold
    (fun key m acc ->
      match Filename.chop_suffix_opt ~suffix:"/aptget" key with
      | None -> acc
      | Some name -> (
        match Hashtbl.find_opt t.measurements (name ^ "/baseline") with
        | None -> acc
        | Some base ->
          ( name,
            Pipeline.speedup ~baseline:base m,
            Pipeline.mpki_reduction ~baseline:base m )
          :: acc))
    t.measurements []
  |> List.sort compare

let forced_site t site w =
  memo t
    (Printf.sprintf "%s/site-%s" w.Workload.name (Inject.site_to_string site))
    (fun () ->
      let prof = profiled t w in
      Pipeline.with_hints ~hints:(Pipeline.force_site site prof.Profiler.hints) w)
