module Pipeline = Aptget_core.Pipeline
module Meas_cache = Aptget_core.Meas_cache
module Profiler = Aptget_profile.Profiler
module Workload = Aptget_workloads.Workload
module Suite = Aptget_workloads.Suite
module Micro = Aptget_workloads.Micro
module Inject = Aptget_passes.Inject
module Machine = Aptget_machine.Machine
module Pool = Aptget_util.Pool
module Fingerprint = Aptget_ir.Fingerprint

type t = {
  quick : bool;
  lock : Mutex.t;
      (* guards the three tables below; simulations run outside it *)
  measurements : (string, Pipeline.measurement) Hashtbl.t;
  profiles : (string, Profiler.t) Hashtbl.t;
  programs : (string, int) Hashtbl.t; (* workload -> program fingerprint *)
  cache_dir : string option;
}

let create ?(quick = false) ?cache_dir () =
  let cache_dir =
    match cache_dir with Some _ as d -> d | None -> Meas_cache.dir_from_env ()
  in
  {
    quick;
    lock = Mutex.create ();
    measurements = Hashtbl.create 64;
    profiles = Hashtbl.create 16;
    programs = Hashtbl.create 16;
    cache_dir;
  }

let quick t = t.quick

let suite t =
  if not t.quick then Suite.default
  else
    [
      Suite.bfs ~name:"BFS-20K8"
        ~graph:(fun () -> Aptget_graph.Datasets.synthetic ~nodes:20_000 ~degree:8 ())
        ~input:"20K-d8";
      Aptget_workloads.Is.workload
        ~params:
          {
            Aptget_workloads.Is.n_keys = 65_536;
            key_range = 262_144;
            iterations = 1;
            seed = 11;
          }
        ~name:"IS-quick" ();
      Aptget_workloads.Hashjoin.workload
        ~params:
          {
            Aptget_workloads.Hashjoin.hj2_params with
            Aptget_workloads.Hashjoin.n_build = 65_536;
            n_probe = 32_768;
            n_buckets = 1 lsl 16;
          }
        ~name:"HJ2-quick" ();
      Aptget_workloads.Randacc.workload
        ~params:
          { Aptget_workloads.Randacc.table_words = 1 lsl 20;
            updates = 65_536;
            seed = 31;
          }
        ~name:"randAcc-quick" ();
    ]

let nested_suite t = List.filter (fun w -> w.Workload.nested) (suite t)

let micro_params t =
  if t.quick then
    { Micro.default_params with Micro.total = 32_768; table_words = 1 lsl 20 }
  else { Micro.default_params with Micro.total = 131_072; table_words = 1 lsl 22 }

let check (m : Pipeline.measurement) = Pipeline.verified_exn m

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let find_memo t key = locked t (fun () -> Hashtbl.find_opt t.measurements key)

(* First insertion wins so concurrent duplicate computations (possible
   only for callers bypassing [run_batch]'s dedup) converge on one
   record. The simulator is deterministic, so the loser computed the
   same numbers anyway. *)
let add_memo t key m =
  locked t (fun () ->
      match Hashtbl.find_opt t.measurements key with
      | Some m' -> m'
      | None ->
        Hashtbl.add t.measurements key m;
        m)

let program t (w : Workload.t) =
  match locked t (fun () -> Hashtbl.find_opt t.programs w.Workload.name) with
  | Some p -> p
  | None ->
    let p =
      (Fingerprint.fingerprint (w.Workload.build ()).Workload.func)
        .Fingerprint.program
    in
    locked t (fun () ->
        match Hashtbl.find_opt t.programs w.Workload.name with
        | Some p' -> p'
        | None ->
          Hashtbl.add t.programs w.Workload.name p;
          p)

(* Lab runs always use the default machine config and default profiler
   options, so those key components are constants here. *)
let profile_options = Profiler.options_summary Profiler.default_options

let cache_key t ~variant ~options (w : Workload.t) =
  Meas_cache.key ~variant ~workload:w.Workload.name ~program:(program t w)
    ~config:Machine.default_config ~options ()

let disk_load t ~variant ~options w =
  match t.cache_dir with
  | None -> None
  | Some dir -> Meas_cache.load ~dir (cache_key t ~variant ~options w)

let disk_store t ~variant ~options w m =
  match t.cache_dir with
  | None -> ()
  | Some dir -> Meas_cache.store ~dir (cache_key t ~variant ~options w) m

(* Memo key is "<workload>/<variant>" — the same [variant] string feeds
   the persistent cache key. *)
let memo t ~variant ?(options = "") (w : Workload.t) f =
  let key = w.Workload.name ^ "/" ^ variant in
  match find_memo t key with
  | Some m -> m
  | None ->
    let m =
      match disk_load t ~variant ~options w with
      | Some m -> check m
      | None ->
        let m = check (f ()) in
        disk_store t ~variant ~options w m;
        m
    in
    add_memo t key m

let baseline t w = memo t ~variant:"baseline" w (fun () -> Pipeline.baseline w)

let aj t ?distance w =
  let d = Option.value ~default:Aptget_passes.Aj.default_distance distance in
  memo t ~variant:(Printf.sprintf "aj-%d" d) w (fun () ->
      Pipeline.aj ~distance:d w)

let profiled t (w : Workload.t) =
  match locked t (fun () -> Hashtbl.find_opt t.profiles w.Workload.name) with
  | Some p -> p
  | None ->
    let p = Pipeline.profile w in
    locked t (fun () ->
        match Hashtbl.find_opt t.profiles w.Workload.name with
        | Some p' -> p'
        | None ->
          Hashtbl.add t.profiles w.Workload.name p;
          p)

let aptget t w =
  memo t ~variant:"aptget" ~options:profile_options w (fun () ->
      let prof = profiled t w in
      Pipeline.with_hints ~hints:prof.Profiler.hints w)

let static_distance t ~distance w =
  memo t
    ~variant:(Printf.sprintf "static-%d" distance)
    ~options:profile_options w
    (fun () ->
      let prof = profiled t w in
      Pipeline.with_hints
        ~hints:(Pipeline.force_distance distance prof.Profiler.hints)
        w)

let forced_site t site w =
  memo t
    ~variant:(Printf.sprintf "site-%s" (Inject.site_to_string site))
    ~options:profile_options w
    (fun () ->
      let prof = profiled t w in
      Pipeline.with_hints ~hints:(Pipeline.force_site site prof.Profiler.hints) w)

(* Externally computed measurements (e.g. the adaptive experiment's
   summed online/one-shot arms) enter the memo tables here so [summary]
   can surface them; they stay out of the persistent cache, whose keys
   describe single pipeline runs. *)
let record t ~workload ~variant m =
  ignore (add_memo t (workload ^ "/" ^ variant) (check m))

(* Derived purely from the memo caches: a workload appears once both
   its baseline and its APT-GET runs have been measured, so the bench
   harness can snapshot headline numbers without triggering new
   simulations. *)
let summary t =
  locked t (fun () ->
      Hashtbl.fold
        (fun key m acc ->
          match Filename.chop_suffix_opt ~suffix:"/aptget" key with
          | None -> acc
          | Some name -> (
            match Hashtbl.find_opt t.measurements (name ^ "/baseline") with
            | None -> acc
            | Some base ->
              ( name,
                Pipeline.speedup ~baseline:base m,
                Pipeline.mpki_reduction ~baseline:base m )
              :: acc))
        t.measurements [])
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Batched, parallel prewarming                                        *)
(* ------------------------------------------------------------------ *)

type job =
  | Baseline of Workload.t
  | Aj of { distance : int option; w : Workload.t }
  | Aptget of Workload.t
  | Static of { distance : int; w : Workload.t }
  | Site of { site : Inject.site; w : Workload.t }

let job_workload = function
  | Baseline w | Aj { w; _ } | Aptget w | Static { w; _ } | Site { w; _ } -> w

let job_variant = function
  | Baseline _ -> "baseline"
  | Aj { distance; _ } ->
    Printf.sprintf "aj-%d"
      (Option.value ~default:Aptget_passes.Aj.default_distance distance)
  | Aptget _ -> "aptget"
  | Static { distance; _ } -> Printf.sprintf "static-%d" distance
  | Site { site; _ } -> "site-" ^ Inject.site_to_string site

let job_options = function
  | Baseline _ | Aj _ -> ""
  | Aptget _ | Static _ | Site _ -> profile_options

let job_needs_profile = function
  | Baseline _ | Aj _ -> false
  | Aptget _ | Static _ | Site _ -> true

let run_job t = function
  | Baseline w -> ignore (baseline t w)
  | Aj { distance; w } -> ignore (aj t ?distance w)
  | Aptget w -> ignore (aptget t w)
  | Static { distance; w } -> ignore (static_distance t ~distance w)
  | Site { site; w } -> ignore (forced_site t site w)

(* Fan a batch of independent measurements across domains. Results land
   in the memo tables, so the subsequent (serial) table/JSON rendering
   reads exactly what a serial run would have computed: each memo key
   is measured at most once, by a deterministic simulation, and the
   persistent cache stores bit-identical records either way.

   Two stages keep the workers from racing on shared inputs: profiles
   (one per workload that any profile-guided job needs and neither the
   memo nor the persistent cache can supply) are computed first, then
   the measurements — each worker building its own memory, hierarchy
   and sampler via the pipeline. *)
let run_batch ?jobs t js =
  let seen = Hashtbl.create 16 in
  let todo =
    List.filter
      (fun j ->
        let key = (job_workload j).Workload.name ^ "/" ^ job_variant j in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          find_memo t key = None
        end)
      js
  in
  (* Preload persistent-cache hits so stage sizing below reflects only
     real simulation work. *)
  let todo =
    List.filter
      (fun j ->
        match
          disk_load t ~variant:(job_variant j) ~options:(job_options j)
            (job_workload j)
        with
        | Some m ->
          let key = (job_workload j).Workload.name ^ "/" ^ job_variant j in
          ignore (add_memo t key (check m));
          false
        | None -> true)
      todo
  in
  let profile_needed =
    let names = Hashtbl.create 8 in
    List.filter_map
      (fun j ->
        let w = job_workload j in
        if
          job_needs_profile j
          && (not (Hashtbl.mem names w.Workload.name))
          && locked t (fun () ->
                 not (Hashtbl.mem t.profiles w.Workload.name))
        then begin
          Hashtbl.add names w.Workload.name ();
          Some w
        end
        else None)
      todo
  in
  List.iter
    (fun ((w : Workload.t), p) ->
      locked t (fun () ->
          if not (Hashtbl.mem t.profiles w.Workload.name) then
            Hashtbl.add t.profiles w.Workload.name p))
    (Pool.run ?jobs (fun w -> (w, Pipeline.profile w)) profile_needed);
  ignore (Pool.run ?jobs (fun j -> run_job t j) todo)
