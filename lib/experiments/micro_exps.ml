module Table = Aptget_util.Table
module Histogram = Aptget_util.Histogram
module Stats = Aptget_util.Stats
module Machine = Aptget_machine.Machine
module Hierarchy = Aptget_cache.Hierarchy
module Pipeline = Aptget_core.Pipeline
module Micro = Aptget_workloads.Micro
module Suite = Aptget_workloads.Suite
module Workload = Aptget_workloads.Workload
module Profiler = Aptget_profile.Profiler
module Model = Aptget_profile.Model
module Sampler = Aptget_pmu.Sampler
module Lbr = Aptget_pmu.Lbr
module Loops = Aptget_passes.Loops
module Loop_stats = Aptget_profile.Loop_stats

let micro_workload lab ~inner ~complexity =
  let p = Lab.micro_params lab in
  let p = { p with Micro.inner; complexity } in
  Micro.workload ~params:p
    ~name:(Printf.sprintf "micro-i%d-c%d" inner complexity)
    ()

let counters (m : Pipeline.measurement) = m.Pipeline.outcome.Machine.counters

(* The median-time snapshot. [Sampler.lbr_samples] happens to return
   snapshots chronologically, but indexing an unsorted list at [len/2]
   is only the median by accident — sort by capture cycle first so the
   choice is the median by construction, whatever the input order. *)
let median_snapshot (samples : Sampler.lbr_sample list) =
  match samples with
  | [] -> invalid_arg "Micro_exps.median_snapshot: no snapshots"
  | _ ->
    let sorted =
      List.sort
        (fun (a : Sampler.lbr_sample) b ->
          compare a.Sampler.at_cycle b.Sampler.at_cycle)
        samples
    in
    List.nth sorted (List.length sorted / 2)

let accuracy m =
  let c = counters m in
  if c.Hierarchy.offcore_all_data_rd = 0 then 0.
  else
    float_of_int
      (c.Hierarchy.offcore_all_data_rd - c.Hierarchy.offcore_demand_data_rd)
    /. float_of_int c.Hierarchy.offcore_all_data_rd

let late_ratio m =
  let c = counters m in
  let issued = c.Hierarchy.sw_prefetch_issued in
  if issued = 0 then 0.
  else float_of_int c.Hierarchy.load_hit_pre_sw_pf /. float_of_int issued

let table1 lab =
  let w = micro_workload lab ~inner:256 ~complexity:0 in
  Lab.run_batch lab
    (Lab.Baseline w
    :: List.map (fun d -> Lab.Aj { distance = Some d; w }) [ 1; 64; 1024 ]);
  let base = Lab.baseline lab w in
  let t =
    Table.create
      ~title:
        "Table 1: prefetch accuracy and timeliness vs prefetch-distance \
         (micro, INNER=256, low complexity)"
      ~header:[ "Prefetch"; "IPC"; "Prefetch Accuracy"; "Late Prefetch" ]
  in
  Table.add_row t
    [
      "None";
      Table.fmt_float (Machine.ipc base.Pipeline.outcome);
      Table.fmt_pct (accuracy base);
      Table.fmt_pct (late_ratio base);
    ];
  List.iter
    (fun d ->
      let m = Lab.aj lab ~distance:d w in
      Table.add_row t
        [
          Printf.sprintf "Dist-%d" d;
          Table.fmt_float (Machine.ipc m.Pipeline.outcome);
          Table.fmt_pct (accuracy m);
          Table.fmt_pct (late_ratio m);
        ])
    [ 1; 64; 1024 ];
  [ t ]

let distance_sweep lab ~title ~configs ~distances =
  Lab.run_batch lab
    (List.concat_map
       (fun (_, w) ->
         Lab.Baseline w
         :: List.map (fun d -> Lab.Aj { distance = Some d; w }) distances)
       configs);
  let t =
    Table.create ~title
      ~header:
        ("distance"
        :: List.map (fun (label, _) -> label) configs)
  in
  let bases =
    List.map (fun (_, w) -> Lab.baseline lab w) configs
  in
  List.iter
    (fun d ->
      let row =
        List.map2
          (fun (_, w) base ->
            let m = Lab.aj lab ~distance:d w in
            Table.fmt_speedup (Pipeline.speedup ~baseline:base m))
          configs bases
      in
      Table.add_row t (string_of_int d :: row))
    distances;
  [ t ]

let fig1 lab =
  let configs =
    [
      ("low", micro_workload lab ~inner:256 ~complexity:0);
      ("medium", micro_workload lab ~inner:256 ~complexity:30);
      ("high", micro_workload lab ~inner:256 ~complexity:120);
    ]
  in
  distance_sweep lab
    ~title:
      "Figure 1: speedup vs prefetch-distance per work-function complexity \
       (micro, INNER=256)"
    ~configs
    ~distances:[ 1; 2; 4; 8; 16; 32; 64; 256; 1024 ]

let fig2 lab =
  let configs =
    [
      ("INNER=4", micro_workload lab ~inner:4 ~complexity:0);
      ("INNER=16", micro_workload lab ~inner:16 ~complexity:0);
      ("INNER=64", micro_workload lab ~inner:64 ~complexity:0);
    ]
  in
  distance_sweep lab
    ~title:
      "Figure 2: speedup vs prefetch-distance per inner trip count (micro, \
       low complexity, inner-loop injection)"
    ~configs
    ~distances:[ 1; 2; 4; 8; 16; 32; 64 ]

let fig3 lab =
  let w = micro_workload lab ~inner:4 ~complexity:0 in
  let inst = w.Workload.build () in
  let sampler = Sampler.create ~lbr_period:20_000 () in
  ignore
    (Machine.execute ~sampler ~args:inst.Workload.args ~mem:inst.Workload.mem
       inst.Workload.func);
  let samples = Sampler.lbr_samples sampler in
  let sample = median_snapshot samples in
  let t =
    Table.create
      ~title:
        "Figure 3: one LBR snapshot (32 most recent taken branches; branch \
         PC, target PC, cycle)"
      ~header:[ "#"; "branch PC"; "target PC"; "cycle" ]
  in
  Array.iteri
    (fun i (e : Lbr.entry) ->
      if i >= Array.length sample.Sampler.entries - 12 then
        Table.add_row t
          [
            string_of_int i;
            string_of_int e.Lbr.branch_pc;
            string_of_int e.Lbr.target_pc;
            string_of_int e.Lbr.cycle;
          ])
    sample.Sampler.entries;
  (* Recover the loop statistics from all snapshots, as §3.1 does. *)
  let loops = Loops.analyze inst.Workload.func in
  let inner_loop =
    Array.to_list loops
    |> List.filter (fun (l : Loops.loop) -> l.Loops.parent <> None)
    |> List.hd
  in
  let outer_loop =
    loops.(Option.get inner_loop.Loops.parent)
  in
  let times =
    Loop_stats.iteration_times samples ~latch_pc:inner_loop.Loops.latch_pc
      ~in_loop:(fun pc ->
        List.mem (Layout.block_of_pc pc) inner_loop.Loops.blocks)
  in
  let trips =
    Loop_stats.trip_counts samples ~inner_latch_pc:inner_loop.Loops.latch_pc
      ~outer_latch_pc:outer_loop.Loops.latch_pc
  in
  let s =
    Table.create ~title:"Loop statistics recovered from the LBR (paper §3.1)"
      ~header:[ "metric"; "value" ]
  in
  Table.add_row s [ "LBR snapshots"; string_of_int (List.length samples) ];
  Table.add_row s
    [ "inner-loop iteration time (avg cycles)"; Table.fmt_float (Stats.mean times) ];
  Table.add_row s
    [ "inner-loop trip count (avg)"; Table.fmt_float (Stats.mean trips) ];
  Table.add_row s [ "true trip count"; "4" ];
  [ t; s ]

let fig4 lab =
  let w = List.hd (Lab.suite lab) in
  let prof = Lab.profiled lab w in
  match
    List.find_opt
      (fun (p : Profiler.load_profile) ->
        Array.length p.Profiler.iteration_times > 64 && p.Profiler.model <> None)
      prof.Profiler.profiles
  with
  | None ->
    let t =
      Table.create ~title:"Figure 4: (no delinquent loop captured)" ~header:[ "-" ]
    in
    [ t ]
  | Some p ->
    let times = p.Profiler.iteration_times in
    let hist = Histogram.of_samples ~bins:24 times in
    let counts = Histogram.counts hist in
    let maxc = Array.fold_left max 1. counts in
    let model = Option.get p.Profiler.model in
    let t =
      Table.create
        ~title:
          (Printf.sprintf
             "Figure 4: iteration-time distribution of the loop containing \
              delinquent load PC %d (%s)"
             p.Profiler.load_pc w.Workload.name)
        ~header:[ "cycles"; "count"; "histogram" ]
    in
    Array.iteri
      (fun i c ->
        let bar_len = int_of_float (c /. maxc *. 40.) in
        Table.add_row t
          [
            Printf.sprintf "%.0f" (Histogram.bin_center hist i);
            Printf.sprintf "%.0f" c;
            String.make bar_len '#';
          ])
      counts;
    let s =
      Table.create ~title:"Model derived from the distribution (Eq. 1)"
        ~header:[ "metric"; "value" ]
    in
    Table.add_row s
      [
        "peaks (cycles)";
        String.concat ", "
          (List.map (fun x -> Printf.sprintf "%.0f" x) model.Model.peaks);
      ];
    Table.add_row s [ "IC latency"; Table.fmt_float model.Model.ic_latency ];
    Table.add_row s [ "MC latency"; Table.fmt_float model.Model.mc_latency ];
    Table.add_row s [ "prefetch distance"; string_of_int model.Model.distance ];
    [ t; s ]
