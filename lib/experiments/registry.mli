(** Name -> experiment dispatch for the bench harness and the CLI. *)

type experiment = {
  id : string;          (** e.g. "fig6" *)
  title : string;
  run : Lab.t -> Aptget_util.Table.t list;
}

val all : experiment list
(** Every table, figure and ablation, in paper order. *)

val find : string -> experiment option

val run_timed : Lab.t -> experiment -> Aptget_util.Table.t list * float
(** Execute, returning the tables and the elapsed wall seconds
    (monotonic {!Aptget_util.Clock}). *)

val run_and_print : Lab.t -> experiment -> unit
(** Execute and print each produced table, with timing. *)
