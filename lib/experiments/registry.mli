(** Name -> experiment dispatch for the bench harness and the CLI. *)

type experiment = {
  id : string;          (** e.g. "fig6" *)
  title : string;
  run : Lab.t -> Aptget_util.Table.t list;
}

val all : experiment list
(** Every table, figure and ablation, in paper order. *)

val find : string -> experiment option

val run_and_print : Lab.t -> experiment -> unit
(** Execute and print each produced table, with timing. *)
