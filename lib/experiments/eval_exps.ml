module Table = Aptget_util.Table
module Stats = Aptget_util.Stats
module Machine = Aptget_machine.Machine
module Hierarchy = Aptget_cache.Hierarchy
module Pipeline = Aptget_core.Pipeline
module Config = Aptget_core.Config
module Workload = Aptget_workloads.Workload
module Suite = Aptget_workloads.Suite
module Hashjoin = Aptget_workloads.Hashjoin
module Datasets = Aptget_graph.Datasets
module Profiler = Aptget_profile.Profiler
module Inject = Aptget_passes.Inject

let table2 _lab =
  let t =
    Table.create ~title:"Table 2: the (simulated) machine configuration"
      ~header:[ "Component"; "Parameters" ]
  in
  List.iter (fun (c, p) -> Table.add_row t [ c; p ]) (Config.rows ());
  let note = Table.create ~title:Config.scale_note ~header:[ "" ] in
  [ t; note ]

let table3 lab =
  let t =
    Table.create ~title:"Table 3: the list of applications"
      ~header:[ "App"; "Input"; "Description" ]
  in
  List.iter
    (fun (w : Workload.t) ->
      Table.add_row t [ w.Workload.app; w.Workload.input; w.Workload.description ])
    (Lab.suite lab);
  [ t ]

let table4 _lab =
  let t =
    Table.create
      ~title:
        "Table 4: graph data-sets (paper's SNAP sizes and this repo's scaled \
         synthetic stand-ins)"
      ~header:
        [ "Data-set"; "#Vertices"; "#Edges"; "scaled #V"; "generator family" ]
  in
  List.iter
    (fun (s : Datasets.spec) ->
      Table.add_row t
        [
          Printf.sprintf "%s (%s)" s.Datasets.name s.Datasets.short;
          string_of_int s.Datasets.paper_vertices;
          string_of_int s.Datasets.paper_edges;
          string_of_int s.Datasets.scaled_vertices;
          (match s.Datasets.family with
          | `Web -> "preferential (web)"
          | `P2p -> "uniform (p2p)"
          | `Road -> "grid+shortcuts (road)"
          | `Social -> "preferential (social)");
        ])
    Datasets.all;
  [ t ]

(* Each figure prewarms its full measurement list up front —
   [Lab.run_batch] fans the missing ones across domains — and then
   renders serially through the memoized getters, so the table is
   byte-identical to a serial run's. *)

let fig5 lab =
  Lab.run_batch lab (List.map (fun w -> Lab.Baseline w) (Lab.suite lab));
  let t =
    Table.create
      ~title:
        "Figure 5: fraction of cycles stalled on the memory system \
         (non-prefetching baseline)"
      ~header:[ "App"; "L3 stalls"; "DRAM stalls"; "total" ]
  in
  let totals = ref [] in
  List.iter
    (fun w ->
      let m = Lab.baseline lab w in
      let c = m.Pipeline.outcome.Machine.counters in
      let cyc = float_of_int m.Pipeline.outcome.Machine.cycles in
      let llc = float_of_int c.Hierarchy.stall_cycles_llc /. cyc in
      let dram = float_of_int c.Hierarchy.stall_cycles_dram /. cyc in
      totals := (llc +. dram) :: !totals;
      Table.add_row t
        [
          w.Workload.name;
          Table.fmt_pct llc;
          Table.fmt_pct dram;
          Table.fmt_pct (llc +. dram);
        ])
    (Lab.suite lab);
  Table.add_row t
    [
      "average";
      "";
      "";
      Table.fmt_pct (Stats.mean (Array.of_list !totals));
    ];
  [ t ]

let prewarm_headline lab ws =
  Lab.run_batch lab
    (List.concat_map
       (fun w -> [ Lab.Baseline w; Lab.Aj { distance = None; w }; Lab.Aptget w ])
       ws)

let fig6 lab =
  prewarm_headline lab (Lab.suite lab);
  let t =
    Table.create
      ~title:
        "Figure 6: execution-time speedup over the non-prefetching baseline"
      ~header:[ "App"; "Ainsworth & Jones"; "APT-GET" ]
  in
  let ajs = ref [] and apts = ref [] in
  List.iter
    (fun w ->
      let base = Lab.baseline lab w in
      let aj = Lab.aj lab w in
      let apt = Lab.aptget lab w in
      let s_aj = Pipeline.speedup ~baseline:base aj in
      let s_apt = Pipeline.speedup ~baseline:base apt in
      ajs := s_aj :: !ajs;
      apts := s_apt :: !apts;
      Table.add_row t
        [ w.Workload.name; Table.fmt_speedup s_aj; Table.fmt_speedup s_apt ])
    (Lab.suite lab);
  Table.add_row t
    [
      "geomean";
      Table.fmt_speedup (Stats.geomean (Array.of_list !ajs));
      Table.fmt_speedup (Stats.geomean (Array.of_list !apts));
    ];
  [ t ]

let fig7 lab =
  prewarm_headline lab (Lab.suite lab);
  let t =
    Table.create
      ~title:
        "Figure 7: LLC MPKI (offcore_requests.demand_data_rd per kilo \
         instruction; lower is better)"
      ~header:
        [ "App"; "baseline"; "A&J"; "APT-GET"; "A&J redu."; "APT-GET redu." ]
  in
  let r_aj = ref [] and r_apt = ref [] in
  List.iter
    (fun w ->
      let base = Lab.baseline lab w in
      let aj = Lab.aj lab w in
      let apt = Lab.aptget lab w in
      let red_aj = Pipeline.mpki_reduction ~baseline:base aj in
      let red_apt = Pipeline.mpki_reduction ~baseline:base apt in
      r_aj := red_aj :: !r_aj;
      r_apt := red_apt :: !r_apt;
      Table.add_row t
        [
          w.Workload.name;
          Table.fmt_float (Machine.mpki base.Pipeline.outcome);
          Table.fmt_float (Machine.mpki aj.Pipeline.outcome);
          Table.fmt_float (Machine.mpki apt.Pipeline.outcome);
          Table.fmt_pct red_aj;
          Table.fmt_pct red_apt;
        ])
    (Lab.suite lab);
  Table.add_row t
    [
      "average";
      "";
      "";
      "";
      Table.fmt_pct (Stats.mean (Array.of_list !r_aj));
      Table.fmt_pct (Stats.mean (Array.of_list !r_apt));
    ];
  [ t ]

(* The paper's per-figure bars carry one entry per (app, input); this
   sweep runs BFS across every Table-4 dataset stand-in, the axis the
   main suite samples only twice. *)
let datasets lab =
  let t =
    Table.create
      ~title:
        "Per-dataset study: BFS over every Table-4 graph stand-in \
         (speedup over each graph's baseline)"
      ~header:[ "data-set"; "#V (scaled)"; "avg deg"; "A&J"; "APT-GET" ]
  in
  let specs =
    if Lab.quick lab then
      [ Option.get (Datasets.find "P2P"); Option.get (Datasets.find "LBE") ]
    else Datasets.all
  in
  let entries =
    List.map
      (fun (spec : Datasets.spec) ->
        let graph () = Aptget_graph.Csr.symmetrize (Datasets.build spec) in
        let w =
          Suite.bfs
            ~name:("BFS-" ^ spec.Datasets.short)
            ~graph ~input:spec.Datasets.name
        in
        (spec, graph, w))
      specs
  in
  prewarm_headline lab (List.map (fun (_, _, w) -> w) entries);
  List.iter
    (fun ((spec : Datasets.spec), graph, w) ->
      let g = graph () in
      let base = Lab.baseline lab w in
      let aj = Lab.aj lab w in
      let apt = Lab.aptget lab w in
      Table.add_row t
        [
          spec.Datasets.name;
          string_of_int g.Aptget_graph.Csr.n;
          Printf.sprintf "%.1f" (Aptget_graph.Csr.avg_degree g);
          Table.fmt_speedup (Pipeline.speedup ~baseline:base aj);
          Table.fmt_speedup (Pipeline.speedup ~baseline:base apt);
        ])
    entries;
  [ t ]

let exhaustive_distances = [ 1; 2; 4; 8; 16; 32; 64; 128 ]

let fig8 lab =
  Lab.run_batch lab
    (List.concat_map
       (fun w ->
         (Lab.Baseline w :: Lab.Aptget w
         :: List.map (fun d -> Lab.Static { distance = d; w }) exhaustive_distances))
       (Lab.suite lab));
  let t =
    Table.create
      ~title:
        "Figure 8: LBR-selected prefetch distance vs the best of the \
         exhaustive sweep D={1..128}"
      ~header:
        [ "App"; "best static D"; "best static"; "APT-GET"; "APT-GET/best" ]
  in
  let lbrs = ref [] and bests = ref [] in
  List.iter
    (fun w ->
      let base = Lab.baseline lab w in
      let best_d, best =
        List.fold_left
          (fun (bd, bm) d ->
            let m = Lab.static_distance lab ~distance:d w in
            match bm with
            | Some b
              when Pipeline.speedup ~baseline:base b
                   >= Pipeline.speedup ~baseline:base m ->
              (bd, bm)
            | _ -> (d, Some m))
          (0, None) exhaustive_distances
      in
      let best = Option.get best in
      let apt = Lab.aptget lab w in
      let s_best = Pipeline.speedup ~baseline:base best in
      let s_apt = Pipeline.speedup ~baseline:base apt in
      lbrs := s_apt :: !lbrs;
      bests := s_best :: !bests;
      Table.add_row t
        [
          w.Workload.name;
          string_of_int best_d;
          Table.fmt_speedup s_best;
          Table.fmt_speedup s_apt;
          Table.fmt_float (s_apt /. s_best);
        ])
    (Lab.suite lab);
  Table.add_row t
    [
      "geomean";
      "";
      Table.fmt_speedup (Stats.geomean (Array.of_list !bests));
      Table.fmt_speedup (Stats.geomean (Array.of_list !lbrs));
    ];
  [ t ]

let fig9 lab =
  let distances = [ 4; 16; 64 ] in
  Lab.run_batch lab
    (List.concat_map
       (fun w ->
         (Lab.Baseline w :: Lab.Aptget w
         :: List.map (fun d -> Lab.Static { distance = d; w }) distances))
       (Lab.suite lab));
  let t =
    Table.create
      ~title:
        "Figure 9: static prefetch-distances vs the LBR-selected distance \
         (speedup over baseline)"
      ~header:
        ("App"
        :: (List.map (fun d -> Printf.sprintf "D=%d" d) distances @ [ "LBR" ]))
  in
  let acc = Array.make (List.length distances + 1) [] in
  List.iter
    (fun w ->
      let base = Lab.baseline lab w in
      let statics =
        List.map
          (fun d ->
            Pipeline.speedup ~baseline:base (Lab.static_distance lab ~distance:d w))
          distances
      in
      let apt = Pipeline.speedup ~baseline:base (Lab.aptget lab w) in
      List.iteri (fun i s -> acc.(i) <- s :: acc.(i)) (statics @ [ apt ]);
      Table.add_row t
        (w.Workload.name :: List.map Table.fmt_speedup (statics @ [ apt ])))
    (Lab.suite lab);
  Table.add_row t
    ("geomean"
    :: Array.to_list
         (Array.map (fun l -> Table.fmt_speedup (Stats.geomean (Array.of_list l))) acc));
  [ t ]

let fig10 lab =
  Lab.run_batch lab
    (List.concat_map
       (fun w ->
         [
           Lab.Baseline w;
           Lab.Site { site = Inject.Inner; w };
           Lab.Site { site = Inject.Outer; w };
           Lab.Aptget w;
         ])
       (Lab.nested_suite lab));
  let t =
    Table.create
      ~title:
        "Figure 10: injection-site study on the nested-loop applications \
         (speedup over baseline)"
      ~header:[ "App"; "inner site"; "outer site"; "APT-GET choice" ]
  in
  List.iter
    (fun w ->
      let base = Lab.baseline lab w in
      let inner = Lab.forced_site lab Inject.Inner w in
      let outer = Lab.forced_site lab Inject.Outer w in
      let apt = Lab.aptget lab w in
      Table.add_row t
        [
          w.Workload.name;
          Table.fmt_speedup (Pipeline.speedup ~baseline:base inner);
          Table.fmt_speedup (Pipeline.speedup ~baseline:base outer);
          Table.fmt_speedup (Pipeline.speedup ~baseline:base apt);
        ])
    (Lab.nested_suite lab);
  [ t ]

let fig11 lab =
  prewarm_headline lab (Lab.suite lab);
  let t =
    Table.create
      ~title:
        "Figure 11: dynamic instruction overhead of injected prefetch slices \
         (executed instructions / baseline)"
      ~header:[ "App"; "A&J"; "APT-GET" ]
  in
  let ajs = ref [] and apts = ref [] in
  List.iter
    (fun w ->
      let base = Lab.baseline lab w in
      let aj = Lab.aj lab w in
      let apt = Lab.aptget lab w in
      let o_aj = Pipeline.instruction_overhead ~baseline:base aj in
      let o_apt = Pipeline.instruction_overhead ~baseline:base apt in
      ajs := o_aj :: !ajs;
      apts := o_apt :: !apts;
      Table.add_row t
        [
          w.Workload.name;
          Table.fmt_float o_aj ^ "x";
          Table.fmt_float o_apt ^ "x";
        ])
    (Lab.suite lab);
  Table.add_row t
    [
      "geomean";
      Table.fmt_float (Stats.geomean (Array.of_list !ajs)) ^ "x";
      Table.fmt_float (Stats.geomean (Array.of_list !apts)) ^ "x";
    ];
  [ t ]

let fig12 lab =
  let pairs =
    if Lab.quick lab then
      [
        ( Hashjoin.workload
            ~params:
              {
                Hashjoin.hj8_params with
                Hashjoin.n_build = 65_536;
                n_probe = 32_768;
                n_buckets = 1 lsl 14;
              }
            ~name:"HJ8-train" (),
          Hashjoin.workload
            ~params:
              {
                Hashjoin.hj8_params with
                Hashjoin.n_build = 65_536;
                n_probe = 32_768;
                n_buckets = 1 lsl 14;
                seed = 77;
              }
            ~name:"HJ8-test" () );
      ]
    else Suite.train_test
  in
  let t =
    Table.create
      ~title:
        "Figure 12: input sensitivity — hints profiled on the TRAIN input, \
         applied to both inputs (speedup over each input's baseline)"
      ~header:[ "App (train -> test)"; "TRAIN-DATA"; "TEST-DATA" ]
  in
  (* The cross-input runs are not memoizable (hints come from a
     different workload's profile), so this figure fans the whole
     per-pair body across domains; [Pool.run] returns rows in pair
     order, so rendering matches a serial run exactly. *)
  let rows =
    Aptget_util.Pool.run
      (fun (train_w, test_w) ->
        let prof = Lab.profiled lab train_w in
        let hints = prof.Profiler.hints in
        let base_train = Lab.baseline lab train_w in
        let base_test = Lab.baseline lab test_w in
        let m_train = Lab.check (Pipeline.with_hints ~hints train_w) in
        let m_test = Lab.check (Pipeline.with_hints ~hints test_w) in
        ( Printf.sprintf "%s -> %s" train_w.Workload.name test_w.Workload.name,
          Pipeline.speedup ~baseline:base_train m_train,
          Pipeline.speedup ~baseline:base_test m_test ))
      pairs
  in
  let trains = ref [] and tests = ref [] in
  List.iter
    (fun (name, s_train, s_test) ->
      trains := s_train :: !trains;
      tests := s_test :: !tests;
      Table.add_row t
        [ name; Table.fmt_speedup s_train; Table.fmt_speedup s_test ])
    rows;
  Table.add_row t
    [
      "geomean";
      Table.fmt_speedup (Stats.geomean (Array.of_list !trains));
      Table.fmt_speedup (Stats.geomean (Array.of_list !tests));
    ];
  [ t ]
