module Table = Aptget_util.Table

type experiment = {
  id : string;
  title : string;
  run : Lab.t -> Table.t list;
}

let all =
  [
    { id = "table1"; title = "Prefetch accuracy/timeliness vs distance"; run = Micro_exps.table1 };
    { id = "fig1"; title = "Speedup vs distance per work complexity"; run = Micro_exps.fig1 };
    { id = "fig2"; title = "Speedup vs distance per trip count"; run = Micro_exps.fig2 };
    { id = "fig3"; title = "LBR snapshot and recovered loop statistics"; run = Micro_exps.fig3 };
    { id = "fig4"; title = "Loop latency distribution and peaks"; run = Micro_exps.fig4 };
    { id = "table2"; title = "Machine configuration"; run = Eval_exps.table2 };
    { id = "table3"; title = "Application list"; run = Eval_exps.table3 };
    { id = "table4"; title = "Graph data-sets"; run = Eval_exps.table4 };
    { id = "fig5"; title = "Memory-bound stall fractions"; run = Eval_exps.fig5 };
    { id = "fig6"; title = "Speedup vs the state of the art"; run = Eval_exps.fig6 };
    { id = "fig7"; title = "LLC MPKI reduction"; run = Eval_exps.fig7 };
    { id = "fig8"; title = "LBR distance vs exhaustive best"; run = Eval_exps.fig8 };
    { id = "fig9"; title = "Static distances vs LBR distance"; run = Eval_exps.fig9 };
    { id = "fig10"; title = "Injection-site study"; run = Eval_exps.fig10 };
    { id = "fig11"; title = "Instruction overhead"; run = Eval_exps.fig11 };
    { id = "fig12"; title = "Train/test input sensitivity"; run = Eval_exps.fig12 };
    { id = "datasets"; title = "BFS across all Table-4 graphs"; run = Eval_exps.datasets };
    { id = "ablations"; title = "Design-choice ablations"; run = Ablations.all };
    { id = "robustness"; title = "Speedup vs PMU fault rate (profile corruption tolerance)"; run = Robustness.all };
    { id = "staleness"; title = "Stale profiles: fingerprint remapping and the regression guard"; run = Staleness.all };
    { id = "extensions"; title = "Extension studies (cost model, conditional injection, HW/SW interplay)"; run = Extensions.all };
    { id = "campaign"; title = "Crash-safe campaigns: checkpoint/resume, watchdog and circuit breakers"; run = Campaign_exp.all };
    { id = "adaptive"; title = "Online drift detection and mid-run re-optimization"; run = Adaptive.all };
    { id = "contention"; title = "Shared-LLC co-running tenants: stale hints, drift and recovery"; run = Contention.all };
  ]

let find id =
  let k = String.lowercase_ascii id in
  List.find_opt (fun e -> String.lowercase_ascii e.id = k) all

let run_timed lab e = Aptget_util.Clock.wall (fun () -> e.run lab)

let run_and_print lab e =
  Printf.printf "== %s: %s ==\n%!" e.id e.title;
  let tables, elapsed = run_timed lab e in
  List.iter Table.print tables;
  Printf.printf "(%s finished in %.1fs wall)\n\n%!" e.id elapsed
