(** Crash-safe campaign studies: supervised trials (retry ladder +
    circuit breakers), deterministic kill/resume against the journaled
    checkpoint store, and watchdog degradation of a starved stage. *)

val all : Lab.t -> Aptget_util.Table.t list
