type site = Param | Phi of Ir.label * Ir.phi | Instr of Ir.label * int
type t = site option array

let build (f : Ir.func) : t =
  let defs = Array.make (max 1 f.Ir.next_reg) None in
  List.iter (fun r -> defs.(r) <- Some Param) f.Ir.params;
  Array.iteri
    (fun bi (b : Ir.block) ->
      List.iter (fun (p : Ir.phi) -> defs.(p.Ir.phi_dst) <- Some (Phi (bi, p))) b.Ir.phis;
      Array.iteri
        (fun ii (i : Ir.instr) ->
          if Ir.defines i then defs.(i.Ir.dst) <- Some (Instr (bi, ii)))
        b.Ir.instrs)
    f.Ir.blocks;
  defs

let find (t : t) r = if r < 0 || r >= Array.length t then None else t.(r)
let instr (f : Ir.func) b i = f.Ir.blocks.(b).Ir.instrs.(i)
