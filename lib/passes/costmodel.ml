type config = {
  assumed_load_latency : int;
  assumed_work : int;
}

let default_config = { assumed_load_latency = 4; assumed_work = 0 }

let instr_cost cfg (i : Ir.instr) =
  match i.Ir.kind with
  | Ir.Binop _ | Ir.Cmp _ | Ir.Select _ | Ir.Store _ | Ir.Prefetch _ -> 1
  | Ir.Load _ -> cfg.assumed_load_latency
  | Ir.Work (Ir.Imm n) -> max 0 n
  | Ir.Work (Ir.Reg _) -> cfg.assumed_work

let loop_iteration_cost ?(config = default_config) (f : Ir.func)
    (loop : Loops.loop) =
  List.fold_left
    (fun acc b ->
      let blk = f.Ir.blocks.(b) in
      Array.fold_left (fun acc i -> acc + instr_cost config i) (acc + 1)
        blk.Ir.instrs)
    0 loop.Loops.blocks

let static_distance ?(config = default_config) ~dram_latency f loop =
  let ic = max 1 (loop_iteration_cost ~config f loop) in
  max 1 (min 128 ((dram_latency + ic - 1) / ic))
