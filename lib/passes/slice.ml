type t = {
  target_block : Ir.label;
  target_index : int;
  instrs : (Ir.label * int) list;
  phis : Ir.reg list;
  loads : int;
}

module Pset = Set.Make (struct
  type t = int * int

  let compare = compare
end)

let walk_from (f : Ir.func) (defs : Defs.t) root =
  let sites = ref Pset.empty in
  let phis = ref [] in
  let ok = ref true in
  let rec walk (operand : Ir.operand) =
    match operand with
    | Ir.Imm _ -> ()
    | Ir.Reg r -> (
      match Defs.find defs r with
      | None -> ok := false
      | Some Defs.Param -> ()
      | Some (Defs.Phi (_, p)) ->
        if not (List.mem p.Ir.phi_dst !phis) then phis := p.Ir.phi_dst :: !phis
      | Some (Defs.Instr (bi, ii)) ->
        if not (Pset.mem (bi, ii) !sites) then begin
          sites := Pset.add (bi, ii) !sites;
          let i = Defs.instr f bi ii in
          List.iter walk (Ir.operands i.Ir.kind)
        end)
  in
  walk root;
  if not !ok then None
  else begin
    let loads =
      Pset.fold
        (fun (bi, ii) acc ->
          match (Defs.instr f bi ii).Ir.kind with
          | Ir.Load _ -> acc + 1
          | _ -> acc)
        !sites 0
    in
    Some (Pset.elements !sites, List.rev !phis, loads)
  end

let of_operand (f : Ir.func) operand =
  let defs = Defs.build f in
  match walk_from f defs operand with
  | None -> None
  | Some (instrs, phis, loads) ->
    Some { target_block = -1; target_index = -1; instrs; phis; loads }

let extract (f : Ir.func) ~block ~index =
  let blk = f.Ir.blocks.(block) in
  if index >= Array.length blk.Ir.instrs then None
  else begin
    match blk.Ir.instrs.(index).Ir.kind with
    | Ir.Load addr -> (
      let defs = Defs.build f in
      match walk_from f defs addr with
      | None -> None
      | Some (instrs, phis, loads) ->
        Some { target_block = block; target_index = index; instrs; phis; loads })
    | _ -> None
  end

let is_indirect t = t.loads > 0
let depends_on_phi t r = List.mem r t.phis
