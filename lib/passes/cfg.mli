(** Control-flow-graph analyses: reverse postorder and dominators.

    Dominator computation uses the Cooper–Harvey–Kennedy iterative
    algorithm; it underpins natural-loop detection. *)

type t

val build : Ir.func -> t

val rpo : t -> Ir.label array
(** Reachable blocks in reverse postorder (entry first). *)

val reachable : t -> Ir.label -> bool

val idom : t -> Ir.label -> Ir.label option
(** Immediate dominator; [None] for the entry block and unreachable
    blocks. *)

val dominates : t -> Ir.label -> Ir.label -> bool
(** [dominates t a b] — every path from entry to [b] passes [a].
    Reflexive. False when either block is unreachable. *)

val preds : t -> Ir.label -> Ir.label list
val succs : t -> Ir.label -> Ir.label list
