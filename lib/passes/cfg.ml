type t = {
  rpo : Ir.label array;
  rpo_index : int array; (* -1 when unreachable *)
  idom : int array;      (* -1 when none *)
  preds : Ir.label list array;
  succs : Ir.label list array;
}

let build (f : Ir.func) =
  let n = Array.length f.Ir.blocks in
  let succs = Array.init n (fun i -> Ir.successors f.Ir.blocks.(i).Ir.term) in
  let preds = Array.make n [] in
  Array.iteri
    (fun i ss -> List.iter (fun s -> preds.(s) <- i :: preds.(s)) ss)
    succs;
  Array.iteri (fun i l -> preds.(i) <- List.rev l) preds;
  (* Postorder DFS from entry. *)
  let visited = Array.make n false in
  let post = ref [] in
  let rec dfs b =
    if not visited.(b) then begin
      visited.(b) <- true;
      List.iter dfs succs.(b);
      post := b :: !post
    end
  in
  dfs f.Ir.entry;
  let rpo = Array.of_list !post in
  let rpo_index = Array.make n (-1) in
  Array.iteri (fun i b -> rpo_index.(b) <- i) rpo;
  (* Cooper-Harvey-Kennedy. *)
  let idom = Array.make n (-1) in
  idom.(f.Ir.entry) <- f.Ir.entry;
  let intersect b1 b2 =
    let f1 = ref b1 and f2 = ref b2 in
    while !f1 <> !f2 do
      while rpo_index.(!f1) > rpo_index.(!f2) do
        f1 := idom.(!f1)
      done;
      while rpo_index.(!f2) > rpo_index.(!f1) do
        f2 := idom.(!f2)
      done
    done;
    !f1
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun b ->
        if b <> f.Ir.entry then begin
          let processed =
            List.filter (fun p -> rpo_index.(p) >= 0 && idom.(p) >= 0) preds.(b)
          in
          match processed with
          | [] -> ()
          | first :: rest ->
            let new_idom = List.fold_left intersect first rest in
            if idom.(b) <> new_idom then begin
              idom.(b) <- new_idom;
              changed := true
            end
        end)
      rpo
  done;
  { rpo; rpo_index; idom; preds; succs }

let rpo t = t.rpo
let reachable t b = b >= 0 && b < Array.length t.rpo_index && t.rpo_index.(b) >= 0

let idom t b =
  if not (reachable t b) then None
  else begin
    let d = t.idom.(b) in
    if d = b then None else Some d
  end

let dominates t a b =
  if not (reachable t a) || not (reachable t b) then false
  else begin
    let rec climb x = if x = a then true else if t.idom.(x) = x then false else climb t.idom.(x) in
    climb b
  end

let preds t b = t.preds.(b)
let succs t b = t.succs.(b)
