(** Natural-loop detection and canonical induction variables.

    The injection passes need, per loop: its header, its latch (the
    block carrying the back-edge branch — the PC the LBR-based profiler
    keys iteration times on), its body, its nesting, and its induction
    variable with initial value, step and bound (paper §3.5, including
    non-unit steps like [i *= 2]). *)

type step =
  | Step_add of int   (** iv' = iv + c *)
  | Step_mul of int   (** iv' = iv * c *)
  | Step_other        (** some other update; distance arithmetic
                          unavailable *)

type indvar = {
  iv_reg : Ir.reg;           (** the header phi *)
  init : Ir.operand;
  step : step;
  update_reg : Ir.reg;       (** register carrying the next value *)
  bound : Ir.operand option; (** from the header's exit test, if found *)
}

type loop = {
  header : Ir.label;
  latch : Ir.label;           (** source of the back edge *)
  blocks : Ir.label list;     (** all blocks of the natural loop *)
  preheader : Ir.label option;(** unique out-of-loop predecessor *)
  depth : int;                (** 1 = outermost *)
  parent : int option;        (** index of the enclosing loop *)
  indvar : indvar option;
  latch_pc : int;             (** Layout PC of the latch terminator *)
  header_pc : int;            (** Layout PC of the header terminator *)
}

val analyze : Ir.func -> loop array
(** All natural loops, outermost first. Loops sharing a header are
    merged. Functions built with {!Builder.for_loop} always yield
    single-latch loops with recognised induction variables. *)

val loop_containing : loop array -> Ir.label -> int option
(** Index of the innermost loop whose body contains a block. *)

val innermost_of_phi : Ir.func -> loop array -> Ir.reg -> int option
(** Index of the loop whose header defines this phi register. *)

val loop_of_latch_pc : loop array -> int -> int option
(** Index of the loop whose latch terminator has this PC. *)
