(** The APT-GET profile-guided injection pass (paper Algorithm 2).

    Consumes per-load hints computed by the profiler
    ({!Aptget_profile}): each delinquent load PC carries its own
    prefetch distance and injection site. Loads without hints are left
    alone (they were not delinquent); if the whole hint list is empty
    — "no samples found" in Algorithm 2, lines 35–38 — the pass falls
    back to the static Ainsworth & Jones scheme. *)

type hint = {
  load_pc : int;
  distance : int;
  site : Inject.site;
  sweep : int;
}

type report = {
  injected : Inject.injected list;
  skipped : (int * string) list;
  fellback : bool;  (** true when the static fallback ran instead *)
}

val run :
  ?fallback_distance:int ->
  ?veto:(hint -> string option) ->
  Ir.func ->
  hints:hint list ->
  report
(** Transform [f] in place according to [hints]. Hints are deduplicated
    by PC (first wins) and applied in descending PC order so that each
    splice leaves remaining targets' PCs intact.

    [veto] (default: veto nothing) is consulted per hint before
    injection; [Some reason] records the hint as skipped with that
    reason. A non-empty hint list that ends up fully vetoed does {e
    not} trigger the empty-list static fallback — vetoing exists so
    the regression guard ({!Aptget_core.Pipeline}) can hold a
    quarantined hint set at the plain baseline, which an implicit
    A&J run would defeat. *)
