type step = Step_add of int | Step_mul of int | Step_other

type indvar = {
  iv_reg : Ir.reg;
  init : Ir.operand;
  step : step;
  update_reg : Ir.reg;
  bound : Ir.operand option;
}

type loop = {
  header : Ir.label;
  latch : Ir.label;
  blocks : Ir.label list;
  preheader : Ir.label option;
  depth : int;
  parent : int option;
  indvar : indvar option;
  latch_pc : int;
  header_pc : int;
}

module Iset = Set.Make (Int)

let natural_loop cfg ~header ~latch =
  let body = ref (Iset.singleton header) in
  let stack = ref [ latch ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | b :: rest ->
      stack := rest;
      if not (Iset.mem b !body) then begin
        body := Iset.add b !body;
        List.iter (fun p -> stack := p :: !stack) (Cfg.preds cfg b)
      end
  done;
  !body

(* Recognise iv' = f(iv). *)
let classify_step (f : Ir.func) (defs : Defs.t) ~iv_reg ~update_reg =
  match Defs.find defs update_reg with
  | Some (Defs.Instr (bi, ii)) -> (
    let i = Defs.instr f bi ii in
    match i.Ir.kind with
    | Ir.Binop (Ir.Add, Ir.Reg r, Ir.Imm c) when r = iv_reg -> Step_add c
    | Ir.Binop (Ir.Add, Ir.Imm c, Ir.Reg r) when r = iv_reg -> Step_add c
    | Ir.Binop (Ir.Sub, Ir.Reg r, Ir.Imm c) when r = iv_reg -> Step_add (-c)
    | Ir.Binop (Ir.Mul, Ir.Reg r, Ir.Imm c) when r = iv_reg -> Step_mul c
    | Ir.Binop (Ir.Mul, Ir.Imm c, Ir.Reg r) when r = iv_reg -> Step_mul c
    | Ir.Binop (Ir.Shl, Ir.Reg r, Ir.Imm c) when r = iv_reg -> Step_mul (1 lsl c)
    | _ -> Step_other)
  | _ -> Step_other

(* Find the loop bound from the header's exit branch: a comparison
   involving the induction phi (or its update register). *)
let find_bound (f : Ir.func) (defs : Defs.t) ~header ~iv_reg ~update_reg =
  let blk = f.Ir.blocks.(header) in
  match blk.Ir.term with
  | Ir.Br (Ir.Reg c, _, _) -> (
    match Defs.find defs c with
    | Some (Defs.Instr (bi, ii)) -> (
      let i = Defs.instr f bi ii in
      match i.Ir.kind with
      | Ir.Cmp ((Ir.Lt | Ir.Le), Ir.Reg r, bound)
        when r = iv_reg || r = update_reg ->
        Some bound
      | Ir.Cmp ((Ir.Gt | Ir.Ge), bound, Ir.Reg r)
        when r = iv_reg || r = update_reg ->
        Some bound
      | _ -> None)
    | _ -> None)
  | _ -> None

let find_indvar (f : Ir.func) (defs : Defs.t) ~header ~latch =
  let blk = f.Ir.blocks.(header) in
  let candidates =
    List.filter_map
      (fun (p : Ir.phi) ->
        match p.Ir.incoming with
        | [ (l1, v1); (l2, v2) ] ->
          let from_latch, init =
            if l1 = latch then (Some v1, v2)
            else if l2 = latch then (Some v2, v1)
            else (None, v1)
          in
          (match from_latch with
          | Some (Ir.Reg update_reg) ->
            let step = classify_step f defs ~iv_reg:p.Ir.phi_dst ~update_reg in
            let bound = find_bound f defs ~header ~iv_reg:p.Ir.phi_dst ~update_reg in
            Some { iv_reg = p.Ir.phi_dst; init; step; update_reg; bound }
          | _ -> None)
        | _ -> None)
      blk.Ir.phis
  in
  (* Prefer a phi with a recognised step and a bound. *)
  let score v =
    (match v.step with Step_other -> 0 | _ -> 2)
    + match v.bound with Some _ -> 1 | None -> 0
  in
  match List.sort (fun a b -> compare (score b) (score a)) candidates with
  | [] -> None
  | best :: _ -> Some best

let analyze (f : Ir.func) =
  let cfg = Cfg.build f in
  let defs = Defs.build f in
  let n = Array.length f.Ir.blocks in
  (* Back edges. *)
  let back_edges = ref [] in
  for u = 0 to n - 1 do
    if Cfg.reachable cfg u then
      List.iter
        (fun h -> if Cfg.dominates cfg h u then back_edges := (u, h) :: !back_edges)
        (Cfg.succs cfg u)
  done;
  (* Group by header, merging bodies. *)
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (latch, header) ->
      let body = natural_loop cfg ~header ~latch in
      match Hashtbl.find_opt tbl header with
      | None -> Hashtbl.add tbl header (latch, body)
      | Some (l0, b0) -> Hashtbl.replace tbl header (max l0 latch, Iset.union b0 body))
    !back_edges;
  let raw =
    Hashtbl.fold (fun header (latch, body) acc -> (header, latch, body) :: acc) tbl []
  in
  (* Nesting. *)
  let contains (_, _, body_a) (header_b, _, _) = Iset.mem header_b body_a in
  let raw = Array.of_list raw in
  let n_loops = Array.length raw in
  let depth = Array.make n_loops 1 in
  let parent = Array.make n_loops None in
  for i = 0 to n_loops - 1 do
    let (header_i, _, _) = raw.(i) in
    ignore header_i;
    let best = ref None in
    for j = 0 to n_loops - 1 do
      if i <> j && contains raw.(j) raw.(i) then begin
        let (_, _, body_j) = raw.(j) in
        match !best with
        | None -> best := Some (j, Iset.cardinal body_j)
        | Some (_, card) ->
          if Iset.cardinal body_j < card then best := Some (j, Iset.cardinal body_j)
      end
    done;
    (match !best with
    | Some (j, _) -> parent.(i) <- Some j
    | None -> ());
    let d = ref 1 in
    for j = 0 to n_loops - 1 do
      if i <> j && contains raw.(j) raw.(i) then incr d
    done;
    depth.(i) <- !d
  done;
  let order = Array.init n_loops (fun i -> i) in
  Array.sort (fun a b -> compare depth.(a) depth.(b)) order;
  (* Remap parent indices through the sort. *)
  let new_index = Array.make n_loops 0 in
  Array.iteri (fun pos old -> new_index.(old) <- pos) order;
  Array.map
    (fun old ->
      let header, latch, body = raw.(old) in
      let body_list = Iset.elements body in
      let outside_preds =
        List.filter (fun p -> not (Iset.mem p body)) (Cfg.preds cfg header)
      in
      let preheader = match outside_preds with [ p ] -> Some p | _ -> None in
      {
        header;
        latch;
        blocks = body_list;
        preheader;
        depth = depth.(old);
        parent = Option.map (fun j -> new_index.(j)) parent.(old);
        indvar = find_indvar f defs ~header ~latch;
        latch_pc = Layout.pc_of_term latch;
        header_pc = Layout.pc_of_term header;
      })
    order

let loop_containing loops label =
  let best = ref None in
  Array.iteri
    (fun i l ->
      if List.mem label l.blocks then
        match !best with
        | None -> best := Some (i, l.depth)
        | Some (_, d) -> if l.depth > d then best := Some (i, l.depth))
    loops;
  Option.map fst !best

let innermost_of_phi (f : Ir.func) loops reg =
  let found = ref None in
  Array.iteri
    (fun i l ->
      let blk = f.Ir.blocks.(l.header) in
      if List.exists (fun (p : Ir.phi) -> p.Ir.phi_dst = reg) blk.Ir.phis then
        found := Some i)
    loops;
  !found

let loop_of_latch_pc loops pc =
  let found = ref None in
  Array.iteri (fun i l -> if l.latch_pc = pc then found := Some i) loops;
  !found
