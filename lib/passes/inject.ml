type site = Inner | Outer

let site_to_string = function Inner -> "inner" | Outer -> "outer"

type spec = { load_pc : int; distance : int; site : site; sweep : int }
type injected = { spec : spec; cloned_instrs : int }

let ( let* ) = Result.bind
let opt ~err = function Some v -> Ok v | None -> Error err

let subst env = function
  | Ir.Reg r -> (
    match Hashtbl.find_opt env r with Some o -> o | None -> Ir.Reg r)
  | Ir.Imm _ as imm -> imm

(* Clone the instructions at [sites] (in order), remapping operands
   through [env] and extending [env] with dst -> clone mappings.
   Accumulates clones (reversed) into [out]. *)
let clone_sites (f : Ir.func) sites env out =
  List.iter
    (fun (bi, ii) ->
      let i = Defs.instr f bi ii in
      let kind = Ir.map_operands (subst env) i.Ir.kind in
      let dst = Ir.fresh_reg f in
      Hashtbl.replace env i.Ir.dst (Ir.Reg dst);
      out := { Ir.dst; kind } :: !out)
    sites

(* Emit [iv_future = clamp (advance iv distance)] instructions into
   [out]; returns the future operand. *)
let future_value (f : Ir.func) (iv : Loops.indvar) ~distance ~clamp out =
  let emit kind =
    let dst = Ir.fresh_reg f in
    out := { Ir.dst; kind } :: !out;
    Ir.Reg dst
  in
  let advanced =
    match iv.Loops.step with
    | Loops.Step_add s ->
      Ok (emit (Ir.Binop (Ir.Add, Ir.Reg iv.Loops.iv_reg, Ir.Imm (s * distance))))
    | Loops.Step_mul s ->
      let factor = ref 1 in
      for _ = 1 to min distance 40 do
        factor := !factor * s
      done;
      Ok (emit (Ir.Binop (Ir.Mul, Ir.Reg iv.Loops.iv_reg, Ir.Imm !factor)))
    | Loops.Step_other -> Error "unsupported induction-variable step"
  in
  let* advanced in
  match (if clamp then iv.Loops.bound else None) with
  | None -> Ok advanced
  | Some bound ->
    (* future = min (advanced, bound - 1), as Listing 4's select. *)
    let cond = emit (Ir.Cmp (Ir.Lt, advanced, bound)) in
    let bm1 = emit (Ir.Binop (Ir.Sub, bound, Ir.Imm 1)) in
    Ok (emit (Ir.Select (cond, advanced, bm1)))

let splice (blk : Ir.block) ~at clones =
  let before = Array.sub blk.Ir.instrs 0 at in
  let after =
    Array.sub blk.Ir.instrs at (Array.length blk.Ir.instrs - at)
  in
  blk.Ir.instrs <- Array.concat [ before; Array.of_list clones; after ]

let phis_of_loop (f : Ir.func) (l : Loops.loop) =
  List.concat_map
    (fun b -> List.map (fun (p : Ir.phi) -> p.Ir.phi_dst) f.Ir.blocks.(b).Ir.phis)
    l.Loops.blocks

let inject ?(clamp = true) (f : Ir.func) spec =
  let* () =
    if spec.distance >= 1 then Ok () else Error "distance must be >= 1"
  in
  let* () = if spec.sweep >= 1 then Ok () else Error "sweep must be >= 1" in
  let bi = Layout.block_of_pc spec.load_pc in
  let* ii =
    match Layout.slot_of_pc spec.load_pc with
    | `Instr i -> Ok i
    | `Term -> Error "PC addresses a terminator, not a load"
  in
  let* () =
    if bi >= 0 && bi < Array.length f.Ir.blocks then Ok ()
    else Error "PC out of range"
  in
  let blk = f.Ir.blocks.(bi) in
  let* addr =
    if ii < Array.length blk.Ir.instrs then begin
      match blk.Ir.instrs.(ii).Ir.kind with
      | Ir.Load a -> Ok a
      | _ -> Error "PC does not address a load"
    end
    else Error "PC out of range"
  in
  let loops = Loops.analyze f in
  let* li = opt ~err:"load is not inside a loop" (Loops.loop_containing loops bi) in
  let inner = loops.(li) in
  let* ivi = opt ~err:"loop has no recognisable induction variable" inner.Loops.indvar in
  let* slice =
    opt ~err:"load slice escapes the function" (Slice.extract f ~block:bi ~index:ii)
  in
  let* () =
    if Slice.depends_on_phi slice ivi.Loops.iv_reg then Ok ()
    else Error "load address does not depend on the loop induction variable"
  in
  match spec.site with
  | Inner ->
    let* () =
      match ivi.Loops.step with
      | Loops.Step_other -> Error "unsupported induction-variable step"
      | _ -> Ok ()
    in
    let out = ref [] in
    let* fut = future_value f ivi ~distance:spec.distance ~clamp out in
    let env = Hashtbl.create 16 in
    Hashtbl.replace env ivi.Loops.iv_reg fut;
    clone_sites f slice.Slice.instrs env out;
    let pf_addr = subst env addr in
    out := { Ir.dst = Ir.no_dst; kind = Ir.Prefetch pf_addr } :: !out;
    let clones = List.rev !out in
    let* () =
      if Array.length blk.Ir.instrs + List.length clones < Layout.term_offset
      then Ok ()
      else Error "block too large after injection"
    in
    splice blk ~at:ii clones;
    Ok { spec; cloned_instrs = List.length clones }
  | Outer ->
    let* pi = opt ~err:"no enclosing outer loop" inner.Loops.parent in
    let outer = loops.(pi) in
    let* ivo =
      opt ~err:"outer loop has no recognisable induction variable"
        outer.Loops.indvar
    in
    let* () =
      match ivo.Loops.step with
      | Loops.Step_other -> Error "unsupported outer induction-variable step"
      | _ -> Ok ()
    in
    let* pre =
      opt ~err:"inner loop has no preheader" inner.Loops.preheader
    in
    let* () =
      if List.mem pre outer.Loops.blocks then Ok ()
      else Error "inner preheader lies outside the outer loop"
    in
    (* Any slice phi defined by the *inner* loop other than the inner
       induction variable cannot be re-materialised in the preheader. *)
    let inner_phis = phis_of_loop f inner in
    let* () =
      let bad =
        List.filter
          (fun p -> p <> ivi.Loops.iv_reg && List.mem p inner_phis)
          slice.Slice.phis
      in
      if bad = [] then Ok ()
      else Error "slice depends on inner-loop values beyond the induction variable"
    in
    let* init_slice =
      opt ~err:"inner initial value not sliceable" (Slice.of_operand f ivi.Loops.init)
    in
    let* () =
      let bad = List.filter (fun p -> List.mem p inner_phis) init_slice.Slice.phis in
      if bad = [] then Ok ()
      else Error "inner initial value depends on inner-loop state"
    in
    (* The future outer iteration must actually influence the prefetch
       address — either directly (the address slice reaches the outer
       phi) or through the inner loop's initial value (the CSR shape:
       [e] starts at [offsets[v]]). *)
    let* () =
      if
        Slice.depends_on_phi slice ivo.Loops.iv_reg
        || Slice.depends_on_phi init_slice ivo.Loops.iv_reg
      then Ok ()
      else Error "load address does not depend on the outer induction variable"
    in
    let* step_add =
      match ivi.Loops.step with
      | Loops.Step_add s -> Ok s
      | Loops.Step_mul _ | Loops.Step_other ->
        if spec.sweep = 1 then Ok 0
        else Error "sweep requires an additive inner induction variable"
    in
    let out = ref [] in
    let* fut_o = future_value f ivo ~distance:spec.distance ~clamp out in
    let env = Hashtbl.create 16 in
    Hashtbl.replace env ivo.Loops.iv_reg fut_o;
    (* Re-materialise the init value of the inner loop under the future
       outer iteration. *)
    let init_sites = init_slice.Slice.instrs in
    clone_sites f init_sites env out;
    let init_op = subst env ivi.Loops.init in
    let module Pset = Set.Make (struct
      type t = int * int

      let compare = compare
    end) in
    let init_set = Pset.of_list init_sites in
    let body_sites =
      List.filter (fun s -> not (Pset.mem s init_set)) slice.Slice.instrs
    in
    (* Only the part of the slice that (transitively) depends on the
       inner induction variable changes across swept iterations; the
       rest — typically the whole outer-indexed address chain — is
       cloned once. *)
    let iv_dependent = Hashtbl.create 8 in
    let depends_on_iv = function
      | Ir.Reg r -> r = ivi.Loops.iv_reg || Hashtbl.mem iv_dependent r
      | Ir.Imm _ -> false
    in
    let per_sweep_sites, shared_sites =
      List.partition
        (fun (bi2, ii2) ->
          let i = Defs.instr f bi2 ii2 in
          let dep = List.exists depends_on_iv (Ir.operands i.Ir.kind) in
          if dep && Ir.defines i then Hashtbl.replace iv_dependent i.Ir.dst ();
          dep)
        body_sites
    in
    clone_sites f shared_sites env out;
    let emit kind =
      let dst = Ir.fresh_reg f in
      out := { Ir.dst; kind } :: !out;
      Ir.Reg dst
    in
    for s = 0 to spec.sweep - 1 do
      let iv_val =
        if s = 0 then init_op
        else emit (Ir.Binop (Ir.Add, init_op, Ir.Imm (s * step_add)))
      in
      let env_s = Hashtbl.copy env in
      Hashtbl.replace env_s ivi.Loops.iv_reg iv_val;
      clone_sites f per_sweep_sites env_s out;
      let pf_addr = subst env_s addr in
      out := { Ir.dst = Ir.no_dst; kind = Ir.Prefetch pf_addr } :: !out
    done;
    let clones = List.rev !out in
    let pre_blk = f.Ir.blocks.(pre) in
    let* () =
      if Array.length pre_blk.Ir.instrs + List.length clones < Layout.term_offset
      then Ok ()
      else Error "preheader too large after injection"
    in
    splice pre_blk ~at:(Array.length pre_blk.Ir.instrs) clones;
    Ok { spec; cloned_instrs = List.length clones }
