type report = {
  injected : Inject.injected list;
  skipped : (int * string) list;
}

let default_distance = 32

let candidate_loads (f : Ir.func) =
  let loops = Loops.analyze f in
  List.filter_map
    (fun (pc, _) ->
      let bi = Layout.block_of_pc pc in
      match Layout.slot_of_pc pc with
      | `Term -> None
      | `Instr ii -> (
        match Loops.loop_containing loops bi with
        | None -> None
        | Some li -> (
          match loops.(li).Loops.indvar with
          | None -> None
          | Some iv -> (
            match Slice.extract f ~block:bi ~index:ii with
            | None -> None
            | Some s ->
              if Slice.is_indirect s && Slice.depends_on_phi s iv.Loops.iv_reg
              then Some pc
              else None))))
    (Layout.pcs_of_loads f)

let run ?(distance = default_distance) (f : Ir.func) =
  let candidates = candidate_loads f in
  (* Descending PC order keeps earlier candidates' positions valid while
     later (higher-PC) ones splice instructions in front of themselves. *)
  let candidates = List.sort (fun a b -> compare b a) candidates in
  List.fold_left
    (fun report pc ->
      match
        Inject.inject f
          { Inject.load_pc = pc; distance; site = Inject.Inner; sweep = 1 }
      with
      | Ok inj -> { report with injected = inj :: report.injected }
      | Error e -> { report with skipped = (pc, e) :: report.skipped })
    { injected = []; skipped = [] }
    candidates
