(** Prefetch-slice injection (paper §3.5, Listings 3–4).

    Given a target load and a prefetch specification, clone the load's
    backward slice, re-anchor it [distance] iterations into the future
    (clamped to the loop bound with a [select], as in Listing 4), turn
    the final load into a [Prefetch], and splice the clone into the
    function:

    - {b Inner} site: immediately before the original load, with the
      inner induction variable advanced by [distance].
    - {b Outer} site: at the end of the inner loop's preheader (inside
      the outer loop), with the outer induction variable advanced by
      [distance] and the inner one re-materialised at its initial
      value — optionally swept over the first [sweep] iterations to
      improve coverage (§3.5). *)

type site = Inner | Outer

val site_to_string : site -> string

type spec = {
  load_pc : int;    (** layout PC of the target load *)
  distance : int;   (** prefetch distance in iterations, >= 1 *)
  site : site;
  sweep : int;      (** outer site: inner iterations prefetched, >= 1 *)
}

type injected = {
  spec : spec;
  cloned_instrs : int;  (** static instructions added *)
}

val inject : ?clamp:bool -> Ir.func -> spec -> (injected, string) result
(** Mutates [f] in place. [clamp] (default true) bounds the advanced
    induction value with the Listing-4 [select]; disabling it exists
    only for the DESIGN.md clamping ablation. Errors (load not found, no loop, unsupported
    induction, slice escape, missing nest for [Outer], ...) leave [f]
    unchanged and explain why. The result verifies under
    {!Aptget_ir.Verify}. *)
