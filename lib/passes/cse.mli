(** Block-local common-subexpression elimination.

    Injected prefetch slices duplicate address arithmetic that often
    already exists in the block (the original slice, or a second hint's
    clone). LLVM's scalar cleanups would fold these; this pass plays
    that role so the reproduction's instruction-overhead numbers
    (Fig. 11) are not inflated by trivially removable duplicates.

    Scope and safety:
    - pure instructions (arithmetic, compares, selects) are value
      -numbered within a block, with commutative operands canonicalised;
    - loads are reused only when the same address is re-loaded with no
      intervening store (a conservative, block-local memory epoch);
    - stores, prefetches and [Work] are never removed;
    - removed registers are substituted function-wide (definitions
      dominate uses, so a kept value is available wherever the removed
      duplicate was). *)

val run : Ir.func -> int
(** Transform in place; returns the number of instructions removed.
    The result verifies under {!Aptget_ir.Verify}. *)
