(** The Ainsworth & Jones (CGO'17) static software-prefetching pass —
    the paper's baseline.

    Statically finds every *indirect* load inside a loop (a load whose
    address slice contains another load and depends on the loop's
    induction variable), and injects its prefetch slice into the inner
    loop with one global, compile-time prefetch distance — the
    [-DFETCHDIST] flag of §2.1. No profile, no timeliness reasoning,
    no outer-loop injection. *)

type report = {
  injected : Inject.injected list;
  skipped : (int * string) list;  (** (load PC, reason) *)
}

val default_distance : int
(** 32, a typical static choice. *)

val candidate_loads : Ir.func -> int list
(** PCs of the loads the pass would target: indirect loads in loops
    whose address depends on the loop induction variable. *)

val run : ?distance:int -> Ir.func -> report
(** Transform [f] in place, injecting an inner-loop prefetch for every
    candidate load with the given static distance. *)
