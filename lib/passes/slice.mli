(** Backward load-slice extraction (paper §2.1, §3.5).

    Starting from a load's address operand, walk the use-def chains
    backwards, collecting every instruction the address depends on. The
    walk terminates at phi nodes (loop induction variables), function
    parameters and immediates — like the DFS of Ainsworth & Jones,
    extended (as APT-GET does) to keep walking past the first induction
    variable so the slice can also be re-anchored in the outer loop. *)

type t = {
  target_block : Ir.label;
  target_index : int;        (** position of the sliced load *)
  instrs : (Ir.label * int) list;
      (** slice instructions in dependency (= layout) order, the target
          load excluded *)
  phis : Ir.reg list;         (** phi registers the slice terminates at *)
  loads : int;                (** intermediate loads inside the slice *)
}

val extract : Ir.func -> block:Ir.label -> index:int -> t option
(** Slice of the load at [block.index]. [None] if that instruction is
    not a load, or the slice escapes through an unsupported definition
    (e.g. a value defined by another function). *)

val of_operand : Ir.func -> Ir.operand -> t option
(** Backward slice of an arbitrary value (used to re-materialise an
    inner loop's initial value inside the outer loop). The
    [target_block]/[target_index] fields are set to [-1]. *)

val is_indirect : t -> bool
(** At least one intermediate load in the slice: the classic
    [A[B[i]]] shape that hardware prefetchers cannot cover. *)

val depends_on_phi : t -> Ir.reg -> bool
