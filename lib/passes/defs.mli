(** Use-def map: where each virtual register is defined. *)

type site =
  | Param
  | Phi of Ir.label * Ir.phi
  | Instr of Ir.label * int  (** block, instruction index *)

type t

val build : Ir.func -> t

val find : t -> Ir.reg -> site option
(** Definition site of a register, [None] if undefined. *)

val instr : Ir.func -> Ir.label -> int -> Ir.instr
(** Convenience accessor. *)
