type key =
  | Kbinop of Ir.binop * Ir.operand * Ir.operand
  | Kcmp of Ir.cmp_op * Ir.operand * Ir.operand
  | Kselect of Ir.operand * Ir.operand * Ir.operand
  | Kload of Ir.operand * int  (** address, memory epoch *)

let commutative = function
  | Ir.Add | Ir.Mul | Ir.And | Ir.Or | Ir.Xor -> true
  | Ir.Sub | Ir.Div | Ir.Rem | Ir.Shl | Ir.Shr -> false

let canonical op a b =
  if commutative op && b < a then (b, a) else (a, b)

let run (f : Ir.func) =
  (* removed register -> surviving replacement *)
  let subst : (Ir.reg, Ir.reg) Hashtbl.t = Hashtbl.create 16 in
  let resolve o =
    match o with
    | Ir.Reg r -> (
      match Hashtbl.find_opt subst r with Some r' -> Ir.Reg r' | None -> o)
    | Ir.Imm _ -> o
  in
  let removed = ref 0 in
  Array.iter
    (fun (blk : Ir.block) ->
      let table : (key, Ir.reg) Hashtbl.t = Hashtbl.create 16 in
      let epoch = ref 0 in
      let keep = ref [] in
      Array.iter
        (fun (i : Ir.instr) ->
          let kind = Ir.map_operands resolve i.Ir.kind in
          let key =
            match kind with
            | Ir.Binop (op, a, b) ->
              let a, b = canonical op a b in
              Some (Kbinop (op, a, b))
            | Ir.Cmp (op, a, b) -> Some (Kcmp (op, a, b))
            | Ir.Select (c, a, b) -> Some (Kselect (c, a, b))
            | Ir.Load a -> Some (Kload (a, !epoch))
            | Ir.Store _ | Ir.Prefetch _ | Ir.Work _ -> None
          in
          (match kind with Ir.Store _ -> incr epoch | _ -> ());
          match key with
          | None -> keep := { i with Ir.kind } :: !keep
          | Some key -> (
            match Hashtbl.find_opt table key with
            | Some existing when Ir.defines i ->
              Hashtbl.replace subst i.Ir.dst existing;
              incr removed
            | _ ->
              if Ir.defines i then Hashtbl.replace table key i.Ir.dst;
              keep := { i with Ir.kind } :: !keep))
        blk.Ir.instrs;
      blk.Ir.instrs <- Array.of_list (List.rev !keep))
    f.Ir.blocks;
  (* Apply the substitution everywhere (phis, later blocks, terms). *)
  if Hashtbl.length subst > 0 then
    Array.iter
      (fun (blk : Ir.block) ->
        blk.Ir.instrs <-
          Array.map
            (fun (i : Ir.instr) -> { i with Ir.kind = Ir.map_operands resolve i.Ir.kind })
            blk.Ir.instrs;
        blk.Ir.phis <-
          List.map
            (fun (p : Ir.phi) ->
              { p with Ir.incoming = List.map (fun (l, v) -> (l, resolve v)) p.Ir.incoming })
            blk.Ir.phis;
        blk.Ir.term <-
          (match blk.Ir.term with
          | Ir.Jmp l -> Ir.Jmp l
          | Ir.Br (c, t, e) -> Ir.Br (resolve c, t, e)
          | Ir.Ret v -> Ir.Ret (Option.map resolve v)))
      f.Ir.blocks;
  !removed
