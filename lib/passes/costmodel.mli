(** A static, compile-time loop-latency cost model (the llvm-mca /
    IACA analog the paper argues against in §2.5).

    Estimates a loop's per-iteration execution time by summing
    per-instruction costs under fixed assumptions: every load is served
    at [assumed_load_latency] and every data-dependent [Work] amount
    (an input parameter!) is [assumed_work]. The paper's point — which
    the cost-model ablation in the bench reproduces — is that both
    assumptions are wrong exactly when they matter: cache behaviour and
    input-dependent work are only visible dynamically. *)

type config = {
  assumed_load_latency : int;  (** default 4 (an L1 hit) *)
  assumed_work : int;          (** default 0 *)
}

val default_config : config

val instr_cost : config -> Ir.instr -> int
(** Cost of a single instruction under the model's assumptions. *)

val loop_iteration_cost : ?config:config -> Ir.func -> Loops.loop -> int
(** Estimated cycles per iteration: the sum of instruction costs over
    every block of the loop body (nested-loop blocks excluded are NOT
    — a static model without trip counts must assume each block runs
    once, which is another systematic error source). Terminators cost
    one cycle each. *)

val static_distance :
  ?config:config -> dram_latency:int -> Ir.func -> Loops.loop -> int
(** The distance Equation (1) would give if [IC] were the static
    estimate and [MC] were a full DRAM miss: the best a profile-free
    compiler could do. Clamped to [1, 128]. *)
