type hint = {
  load_pc : int;
  distance : int;
  site : Inject.site;
  sweep : int;
}

type report = {
  injected : Inject.injected list;
  skipped : (int * string) list;
  fellback : bool;
}

let dedup hints =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun h ->
      if Hashtbl.mem seen h.load_pc then false
      else begin
        Hashtbl.add seen h.load_pc ();
        true
      end)
    hints

let run ?(fallback_distance = Aj.default_distance) ?(veto = fun _ -> None)
    (f : Ir.func) ~hints =
  match hints with
  | [] ->
    let r = Aj.run ~distance:fallback_distance f in
    { injected = r.Aj.injected; skipped = r.Aj.skipped; fellback = true }
  | _ :: _ ->
    let hints =
      dedup hints |> List.sort (fun a b -> compare b.load_pc a.load_pc)
    in
    (* A vetoed hint is skipped, and an all-vetoed list does NOT take
       the empty-hints static fallback: the veto exists so the guard
       can pin a quarantined hint set to the plain baseline, and a
       back-door A&J run would re-inject prefetches behind its back. *)
    List.fold_left
      (fun report h ->
        match veto h with
        | Some why -> { report with skipped = (h.load_pc, why) :: report.skipped }
        | None ->
        let spec =
          {
            Inject.load_pc = h.load_pc;
            distance = h.distance;
            site = h.site;
            sweep = h.sweep;
          }
        in
        match Inject.inject f spec with
        | Ok inj -> { report with injected = inj :: report.injected }
        | Error _ when h.site = Inject.Outer -> (
          (* An outer-site hint that cannot be realised (e.g. the outer
             loop has a data-dependent induction update, as in DFS)
             degrades to an inner-loop prefetch at the §3.6 default
             distance — the profiled distance exceeds the inner trip
             count, so reusing it would only add overhead. *)
          match
            Inject.inject f
              { spec with Inject.site = Inject.Inner; sweep = 1; distance = 1 }
          with
          | Ok inj -> { report with injected = inj :: report.injected }
          | Error e -> { report with skipped = (h.load_pc, e) :: report.skipped })
        | Error e -> { report with skipped = (h.load_pc, e) :: report.skipped })
      { injected = []; skipped = []; fellback = false }
      hints
