(** Fixed-width binned histograms.

    The profiler histograms loop-iteration latencies (in cycles) before
    running peak detection over the bin counts (paper §3.2, Fig. 4). *)

type t
(** A histogram with uniform bin width over [lo, hi). *)

val create : lo:float -> hi:float -> bins:int -> t
(** [create ~lo ~hi ~bins] builds an empty histogram. Requires
    [lo < hi] and [bins > 0]. Samples outside [lo, hi) are clamped into
    the first/last bin so no observation is silently dropped. *)

val add : t -> float -> unit
(** Record one observation. *)

val add_many : t -> float array -> unit
(** Record a batch of observations. *)

val counts : t -> float array
(** Per-bin counts, index 0 = lowest bin. A fresh copy. *)

val total : t -> int
(** Number of observations recorded. *)

val bin_center : t -> int -> float
(** [bin_center t i] is the representative value of bin [i]. *)

val bin_of_value : t -> float -> int
(** Index of the (clamped) bin a value falls into. *)

val bin_width : t -> float

val of_samples : ?bins:int -> float array -> t
(** Convenience: histogram spanning [min, max] of the samples (with a
    small margin), default 128 bins. Requires a non-empty sample set. *)
