(** Wall-clock timing for measurements and progress reporting.

    [Sys.time] measures process CPU time, which silently under-reports
    any future parallel or I/O-bound work; the harness wants elapsed
    wall time. The stdlib offers no monotonic clock, so this wraps
    [Unix.gettimeofday] behind a monotonic clamp: the reported time
    never decreases even if the system clock steps backwards. *)

val now : unit -> float
(** Monotonic non-decreasing wall-clock seconds (absolute epoch-based
    value; only differences are meaningful). *)

val observe : float -> float
(** Feed a raw timestamp through the monotonic clamp: returns the
    maximum of the argument and every previously observed time. [now]
    is [observe (Unix.gettimeofday ())]; tests drive the clamp
    directly through this seam. *)

val wall : (unit -> 'a) -> 'a * float
(** [wall f] runs [f] and returns its result with the elapsed wall
    seconds (>= 0). *)
