(** Small statistics helpers shared by the profiler and experiments.

    NaN handling: {!summarize} and {!percentile} (hence {!median})
    reject samples containing a NaN with [Invalid_argument]. A NaN
    would otherwise poison the order statistics silently — polymorphic
    comparison is inconsistent on NaN, and even a correct sort puts it
    at an arbitrary rank. Float sorts use [Float.compare]. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;  (** population: divides the squared deviations by n *)
  stddev_sample : float;
      (** sample (Bessel-corrected): divides by n-1; 0 when count < 2 *)
  min : float;
  max : float;
}
(** Moment summary of a sample set. *)

val summarize : float array -> summary
(** [summarize xs] computes count/mean/stddev/min/max. Returns a zeroed
    summary for the empty array; raises [Invalid_argument] on NaN. *)

val mean : float array -> float
(** Arithmetic mean; 0 for the empty array. *)

val geomean : float array -> float
(** Geometric mean; used for speedup averaging as in the paper (§4.3).
    Requires strictly positive entries; 0-length arrays yield 1.0. *)

val percentile : float array -> float -> float
(** [percentile xs p] for p in [0,100], linear interpolation between
    order statistics. The input need not be sorted. Raises
    [Invalid_argument] on the empty array or NaN entries. *)

val median : float array -> float
(** 50th percentile. *)

type running
(** Online mean/variance accumulator (Welford). *)

val running_create : unit -> running
val running_add : running -> float -> unit
val running_count : running -> int
val running_mean : running -> float

val running_stddev : running -> float
(** {b Population} standard deviation (divides by n), matching
    {!summary.stddev}; 0 when fewer than two values were added. *)

val running_stddev_sample : running -> float
(** {b Sample} (Bessel-corrected, divides by n-1) standard deviation,
    matching {!summary.stddev_sample}; 0 when fewer than two values
    were added. *)
