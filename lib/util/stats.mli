(** Small statistics helpers shared by the profiler and experiments. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}
(** Moment summary of a sample set. *)

val summarize : float array -> summary
(** [summarize xs] computes count/mean/stddev/min/max. Returns a zeroed
    summary for the empty array. *)

val mean : float array -> float
(** Arithmetic mean; 0 for the empty array. *)

val geomean : float array -> float
(** Geometric mean; used for speedup averaging as in the paper (§4.3).
    Requires strictly positive entries; 0-length arrays yield 1.0. *)

val percentile : float array -> float -> float
(** [percentile xs p] for p in [0,100], linear interpolation between
    order statistics. The input need not be sorted. *)

val median : float array -> float
(** 50th percentile. *)

type running
(** Online mean/variance accumulator (Welford). *)

val running_create : unit -> running
val running_add : running -> float -> unit
val running_count : running -> int
val running_mean : running -> float
val running_stddev : running -> float
