type t = {
  lo : float;
  hi : float;
  width : float;
  counts : float array;
  mutable total : int;
}

let create ~lo ~hi ~bins =
  if lo >= hi then invalid_arg "Histogram.create: lo >= hi";
  if bins <= 0 then invalid_arg "Histogram.create: bins <= 0";
  let width = (hi -. lo) /. float_of_int bins in
  { lo; hi; width; counts = Array.make bins 0.; total = 0 }

let bin_of_value t v =
  let bins = Array.length t.counts in
  let i = int_of_float ((v -. t.lo) /. t.width) in
  if i < 0 then 0 else if i >= bins then bins - 1 else i

let add t v =
  t.counts.(bin_of_value t v) <- t.counts.(bin_of_value t v) +. 1.;
  t.total <- t.total + 1

let add_many t vs = Array.iter (add t) vs
let counts t = Array.copy t.counts
let total t = t.total
let bin_center t i = t.lo +. ((float_of_int i +. 0.5) *. t.width)
let bin_width t = t.width

let of_samples ?(bins = 128) xs =
  if Array.length xs = 0 then invalid_arg "Histogram.of_samples: empty";
  let mn = Array.fold_left min xs.(0) xs in
  let mx = Array.fold_left max xs.(0) xs in
  let margin = Float.max 1.0 ((mx -. mn) *. 0.02) in
  let t = create ~lo:(mn -. margin) ~hi:(mx +. margin) ~bins in
  add_many t xs;
  t
