(** Capped exponential retry backoff with optional seeded jitter.

    Every retry ladder in the repository waits (or records, when there
    is no wall clock to sleep on) [base^(attempt-1)] units, capped at
    [cap] — the campaign runner's trial retries, the serve client's
    reconnects, the load generator. This module is that one formula,
    extracted so the ladders cannot drift apart, plus the jitter the
    networked retriers need: a fleet of clients that all lose the same
    connection must not all reconnect on the same tick.

    Jitter is drawn from the deterministic {!Rng}, so a seeded client
    retries on a reproducible schedule; with [jitter = 0.] no random
    number is drawn at all and {!next} equals {!factor} exactly (the
    campaign runner pins its historical byte-identical factors this
    way). *)

type config = {
  base : float;  (** exponential base, >= 1.0 *)
  cap : float;  (** upper bound on any single factor, >= 1.0 *)
  jitter : float;
      (** in [0, 1]: factor [f] becomes uniform in [(1-jitter)*f, f] *)
}

val default : config
(** base 2.0, cap 32.0, jitter 0.5 — the networked-client profile.
    (The campaign runner passes its own cap,
    {!Aptget_pmu.Faults.max_backoff}.) *)

val validate : config -> (unit, string) result

val factor : config -> attempt:int -> float
(** [factor config ~attempt] is
    [Float.min (base ** float (attempt - 1)) cap] — jitter-free, the
    exact expression the campaign runner has always recorded (attempt
    numbering starts at 1). *)

type t
(** A seeded jittering schedule (mutable: each {!next} advances the
    generator). *)

val create : ?seed:int -> config -> t
(** [seed] defaults to 0. Two schedules with the same seed and config
    produce identical factor sequences.
    @raise Invalid_argument when the config does not validate. *)

val next : t -> attempt:int -> float
(** The jittered factor for [attempt]: [factor * (1 - jitter * u)]
    with [u] uniform in [0, 1). With [jitter = 0.] this is exactly
    {!factor} and the generator is not advanced. *)
