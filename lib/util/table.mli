(** Plain-text table rendering for the benchmark harness.

    Every experiment in [Aptget_experiments] reduces to a header plus
    rows of strings; this module aligns and prints them so the bench
    output mirrors the paper's tables and figure series. *)

type t

val create : title:string -> header:string list -> t
(** A table with a caption line and column names. *)

val add_row : t -> string list -> unit
(** Append a row. Rows shorter than the header are right-padded with
    empty cells; longer rows raise [Invalid_argument]. *)

val render : t -> string
(** Render with aligned columns, the title, and a rule under the
    header. *)

val print : t -> unit
(** [render] to stdout followed by a blank line. *)

val fmt_float : ?decimals:int -> float -> string
(** Fixed-point formatting helper, default 2 decimals. *)

val fmt_speedup : float -> string
(** Formats a ratio as e.g. "1.30x". *)

val fmt_pct : float -> string
(** Formats a fraction as a percentage, e.g. 0.654 -> "65.4%". *)
