(** Deterministic pseudo-random number generation.

    All stochastic inputs in the repository (synthetic graphs, random
    key streams, hash-join key distributions, ...) are derived from this
    splitmix64 generator so that every experiment is reproducible from a
    seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed. Two generators
    created from the same seed produce identical streams. *)

val split : t -> t
(** [split t] derives an independent generator; [t] advances once. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniform random permutation of [0..n-1]. *)
