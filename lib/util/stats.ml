type summary = {
  count : int;
  mean : float;
  stddev : float;
  stddev_sample : float;
  min : float;
  max : float;
}

(* Floats are sorted with [Float.compare] throughout, never polymorphic
   [compare]: the two agree on non-NaN floats, but a NaN poisons a
   polymorphic sort silently (its comparisons are inconsistent), so NaN
   inputs are rejected loudly up front instead. *)
let reject_nan fn xs =
  Array.iter
    (fun x -> if Float.is_nan x then invalid_arg ("Stats." ^ fn ^ ": NaN sample"))
    xs

let summarize xs =
  let n = Array.length xs in
  if n = 0 then
    { count = 0; mean = 0.; stddev = 0.; stddev_sample = 0.; min = 0.; max = 0. }
  else begin
    reject_nan "summarize" xs;
    let sum = Array.fold_left ( +. ) 0. xs in
    let mean = sum /. float_of_int n in
    let sq = Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs in
    let stddev = sqrt (sq /. float_of_int n) in
    let stddev_sample =
      if n < 2 then 0. else sqrt (sq /. float_of_int (n - 1))
    in
    let mn = Array.fold_left min xs.(0) xs in
    let mx = Array.fold_left max xs.(0) xs in
    { count = n; mean; stddev; stddev_sample; min = mn; max = mx }
  end

let mean xs = (summarize xs).mean

let geomean xs =
  let n = Array.length xs in
  if n = 0 then 1.0
  else begin
    let log_sum =
      Array.fold_left
        (fun acc x ->
          if x <= 0. then invalid_arg "Stats.geomean: non-positive entry";
          acc +. log x)
        0. xs
    in
    exp (log_sum /. float_of_int n)
  end

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty sample";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  reject_nan "percentile" xs;
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) in
  let hi = int_of_float (ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)
  end

let median xs = percentile xs 50.

type running = {
  mutable n : int;
  mutable m : float;
  mutable s : float;
}

let running_create () = { n = 0; m = 0.; s = 0. }

let running_add r x =
  r.n <- r.n + 1;
  let delta = x -. r.m in
  r.m <- r.m +. (delta /. float_of_int r.n);
  r.s <- r.s +. (delta *. (x -. r.m))

let running_count r = r.n
let running_mean r = r.m

let running_stddev r =
  if r.n < 2 then 0. else sqrt (r.s /. float_of_int r.n)

let running_stddev_sample r =
  if r.n < 2 then 0. else sqrt (r.s /. float_of_int (r.n - 1))
