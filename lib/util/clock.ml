(* Monotonic clamp over the system clock: NTP steps or manual clock
   changes can move gettimeofday backwards, which would yield negative
   elapsed times; never report a time earlier than one already seen. *)
let last = ref neg_infinity

let observe t =
  if t > !last then last := t;
  !last

let now () = observe (Unix.gettimeofday ())

let wall f =
  let t0 = now () in
  let v = f () in
  (v, now () -. t0)
