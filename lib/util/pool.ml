(* Domain pool. One shared FIFO of closures guarded by a mutex and a
   condition variable; workers block on the condvar, the caller helps
   drain its own batch so [jobs] bounds total concurrency (not
   concurrency-plus-one). Determinism comes from keying results by
   submission index: slot [i] of the result array belongs to input [i]
   no matter which domain computes it or when it finishes. *)

type task = unit -> unit

type t = {
  n_jobs : int;
  queue : task Queue.t;
  mutex : Mutex.t;
  work : Condition.t;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let override = Atomic.make None

let set_default_jobs j = Atomic.set override j

type monitor = {
  on_task : wait_s:float -> run_s:float -> helper:bool -> unit;
  on_batch : queued:int -> jobs:int -> unit;
}

(* Observation hook installed by the obs layer (which sits above this
   library in the dependency graph, hence the indirection). [None] by
   default: the queued path then takes no timestamps at all. *)
let monitor : monitor option Atomic.t = Atomic.make None

let set_monitor m = Atomic.set monitor m

let clamp_jobs j = if j < 1 then 1 else if j > 64 then 64 else j

let default_jobs () =
  match Atomic.get override with
  | Some j -> clamp_jobs j
  | None -> (
    match Sys.getenv_opt "APTGET_JOBS" with
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> clamp_jobs j
      | Some _ | None -> 1)
    | None -> clamp_jobs (Domain.recommended_domain_count ()))

let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.stop do
    Condition.wait t.work t.mutex
  done;
  match Queue.take_opt t.queue with
  | None ->
    (* stopped and drained *)
    Mutex.unlock t.mutex
  | Some task ->
    Mutex.unlock t.mutex;
    task ();
    worker_loop t

let create ?jobs () =
  let n_jobs = clamp_jobs (match jobs with Some j -> j | None -> default_jobs ()) in
  let t =
    {
      n_jobs;
      queue = Queue.create ();
      mutex = Mutex.create ();
      work = Condition.create ();
      stop = false;
      workers = [];
    }
  in
  if n_jobs > 1 then
    t.workers <-
      List.init (n_jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let jobs t = t.n_jobs

let shutdown t =
  let ws =
    Mutex.lock t.mutex;
    t.stop <- true;
    Condition.broadcast t.work;
    let ws = t.workers in
    t.workers <- [];
    Mutex.unlock t.mutex;
    ws
  in
  List.iter Domain.join ws

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let mapi t f xs =
  let stopped =
    Mutex.lock t.mutex;
    let s = t.stop in
    Mutex.unlock t.mutex;
    s
  in
  if stopped then invalid_arg "Pool.map: pool is shut down";
  if t.n_jobs = 1 then List.mapi f xs
  else
    match xs with
    | [] -> []
    | [ x ] -> [ f 0 x ]
    | _ ->
      let arr = Array.of_list xs in
      let n = Array.length arr in
      let results = Array.make n None in
      let errors = Array.make n None in
      let done_mutex = Mutex.create () in
      let done_cond = Condition.create () in
      let remaining = ref n in
      let mon = Atomic.get monitor in
      let caller = (Domain.self () :> int) in
      let submitted = match mon with Some _ -> Clock.now () | None -> 0. in
      let body i =
        match f i arr.(i) with
        | v -> results.(i) <- Some v
        | exception e -> errors.(i) <- Some e
      in
      let task i () =
        (match mon with
        | None -> body i
        | Some m ->
          let start = Clock.now () in
          body i;
          let stop = Clock.now () in
          m.on_task ~wait_s:(start -. submitted) ~run_s:(stop -. start)
            ~helper:((Domain.self () :> int) = caller));
        Mutex.lock done_mutex;
        decr remaining;
        if !remaining = 0 then Condition.broadcast done_cond;
        Mutex.unlock done_mutex
      in
      Mutex.lock t.mutex;
      for i = 0 to n - 1 do
        Queue.push (task i) t.queue
      done;
      Condition.broadcast t.work;
      Mutex.unlock t.mutex;
      (match mon with
      | Some m -> m.on_batch ~queued:n ~jobs:t.n_jobs
      | None -> ());
      (* The calling domain drains the queue alongside the workers. *)
      let rec help () =
        Mutex.lock t.mutex;
        match Queue.take_opt t.queue with
        | Some task ->
          Mutex.unlock t.mutex;
          task ();
          help ()
        | None -> Mutex.unlock t.mutex
      in
      help ();
      (* Waiting on [done_mutex] also publishes the workers' writes to
         [results]/[errors]: each slot is written before the worker
         takes the lock to decrement, and we read after taking it. *)
      Mutex.lock done_mutex;
      while !remaining > 0 do
        Condition.wait done_cond done_mutex
      done;
      Mutex.unlock done_mutex;
      (match Array.find_map Fun.id errors with
      | Some e -> raise e
      | None -> ());
      Array.to_list (Array.map Option.get results)

let map t f xs = mapi t (fun _ x -> f x) xs

let run ?jobs f xs =
  let n = match jobs with Some j -> clamp_jobs j | None -> default_jobs () in
  if n = 1 || List.compare_length_with xs 1 <= 0 then List.map f xs
  else with_pool ~jobs:n (fun t -> map t f xs)
