type t = {
  title : string;
  header : string list;
  mutable rows : string list list; (* reversed *)
}

let create ~title ~header = { title; header; rows = [] }

let add_row t row =
  let n_header = List.length t.header in
  let n_row = List.length row in
  if n_row > n_header then invalid_arg "Table.add_row: row wider than header";
  let row =
    if n_row = n_header then row
    else row @ List.init (n_header - n_row) (fun _ -> "")
  in
  t.rows <- row :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.header :: rows in
  let ncols = List.length t.header in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
        row)
    all;
  let pad i cell =
    let w = widths.(i) in
    let len = String.length cell in
    if len >= w then cell else cell ^ String.make (w - len) ' '
  in
  let render_row row = String.concat "  " (List.mapi pad row) in
  let rule =
    String.concat "--"
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (render_row t.header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let fmt_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x
let fmt_speedup x = Printf.sprintf "%.2fx" x
let fmt_pct x = Printf.sprintf "%.1f%%" (x *. 100.)
