type config = { base : float; cap : float; jitter : float }

let default = { base = 2.0; cap = 32.0; jitter = 0.5 }

let validate c =
  if not (c.base >= 1.0) then Error "backoff base must be >= 1.0"
  else if not (c.cap >= 1.0) then Error "backoff cap must be >= 1.0"
  else if not (c.jitter >= 0.0 && c.jitter <= 1.0) then
    Error "backoff jitter must be in [0, 1]"
  else Ok ()

(* The campaign runner has recorded exactly this expression since PR 3;
   it must stay byte-identical (float-for-float) at jitter = 0. *)
let factor c ~attempt =
  Float.min (c.base ** float_of_int (attempt - 1)) c.cap

type t = { config : config; rng : Rng.t }

let create ?(seed = 0) config =
  (match validate config with
  | Ok () -> ()
  | Error e -> invalid_arg ("Backoff.create: " ^ e));
  { config; rng = Rng.create seed }

let next t ~attempt =
  let f = factor t.config ~attempt in
  if t.config.jitter <= 0. then f
  else f *. (1. -. (t.config.jitter *. Rng.float t.rng 1.0))
