(** Fixed-size domain worker pool for embarrassingly parallel batches.

    Simulation runs in this repo are fully independent (each builds its
    own memory image, cache hierarchy and sampler), so the drivers fan
    a batch of thunks out across OCaml 5 domains and join. Results are
    keyed by submission index — never by completion order — so a
    parallel batch returns exactly what the serial loop would, in the
    same order, regardless of scheduling.

    Degradation to serial is automatic and exact: with one worker
    (explicitly via [jobs:1]/[APTGET_JOBS=1], or because
    [Domain.recommended_domain_count () = 1]) the batch runs in the
    calling domain with no queue, no locks and no domains spawned. *)

type t

val create : ?jobs:int -> unit -> t
(** A pool of [jobs - 1] worker domains plus the calling domain (the
    caller participates in draining the queue, so [jobs] bounds total
    concurrency). [jobs] defaults to {!default_jobs}; values are
    clamped to [[1, 64]]. With [jobs = 1] no domain is spawned. *)

val jobs : t -> int

val shutdown : t -> unit
(** Join the worker domains. Idempotent. Outstanding batches must have
    completed; submitting to a shut-down pool raises
    [Invalid_argument]. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [create], run, then [shutdown] (also on exception). *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] is [List.map f xs], computed concurrently. Results
    are ordered by submission index. If any [f x] raises, the whole
    batch is drained and the exception of the {e lowest-indexed}
    failing item is re-raised (so error reporting is deterministic
    too). Not reentrant: [f] must not submit to the same pool. *)

val mapi : t -> (int -> 'a -> 'b) -> 'a list -> 'b list

val run : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** One-shot [with_pool] + [map]: the common driver entry point. *)

val default_jobs : unit -> int
(** Worker count used when none is given explicitly: the [--jobs]
    override if one was set, else the [APTGET_JOBS] environment
    variable, else [Domain.recommended_domain_count ()]. Malformed or
    non-positive values fall back to 1. *)

val set_default_jobs : int option -> unit
(** Process-wide override installed by the [--jobs] CLI flags;
    [None] restores env/hardware detection. *)

type monitor = {
  on_task : wait_s:float -> run_s:float -> helper:bool -> unit;
      (** Called once per {e queued} task when it finishes: queue wait
          (submit to start), run time, and whether the calling domain
          (rather than a worker) drained it. *)
  on_batch : queued:int -> jobs:int -> unit;
      (** Called once per queued batch, right after its tasks land on
          the queue: the batch size (= instantaneous queue depth, since
          batches drain fully before the next submits) and the pool
          width. The obs layer turns this into the [pool.queue_depth]
          gauge the serve dashboard reads. *)
}

val set_monitor : monitor option -> unit
(** Process-wide observation hook, [None] by default (the queued path
    then takes no timestamps at all). Serial batches — [jobs = 1] or
    at most one item — bypass the queue and are not reported. The obs
    layer installs this; it lives here only because this library sits
    below it in the dependency graph. *)
