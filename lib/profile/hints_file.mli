(** Persisting prefetch hints — the analog of the AutoFDO profile file
    that the paper's workflow hands from the profiling step to the LLVM
    pass ("a list of delinquent load PCs with their corresponding
    prefetch-distance and prefetch injection site", §3.4).

    The format is line-oriented text:
    {v
    # aptget prefetch hints v1
    pc=2051 distance=12 site=inner sweep=1
    pc=11265 distance=3 site=outer sweep=7
    v}
    Blank lines and [#] comments are ignored. *)

val to_string : Aptget_passes.Aptget_pass.hint list -> string
(** Serialise, one hint per line, with the version header. *)

val of_string : string -> (Aptget_passes.Aptget_pass.hint list, string) result
(** Parse; reports the first offending line on error. Accepts fields in
    any order; [sweep] defaults to 1 when omitted. *)

val save : path:string -> Aptget_passes.Aptget_pass.hint list -> unit
(** Write to a file (truncating). *)

val load : path:string -> (Aptget_passes.Aptget_pass.hint list, string) result
(** Read and parse a file; I/O problems are reported as [Error]. *)
