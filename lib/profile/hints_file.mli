(** Persisting prefetch hints — the analog of the AutoFDO profile file
    that the paper's workflow hands from the profiling step to the LLVM
    pass ("a list of delinquent load PCs with their corresponding
    prefetch-distance and prefetch injection site", §3.4).

    The format is line-oriented text:
    {v
    # aptget prefetch hints v1
    pc=2051 distance=12 site=inner sweep=1
    pc=11265 distance=3 site=outer sweep=7
    v}
    Blank lines and [#] comments are ignored, except that a comment
    announcing a hints-file version ([# aptget prefetch hints vN]) is
    validated: unknown versions are rejected, so a file written by a
    future format revision fails loudly instead of being half-parsed.

    Checked-in hint files go stale as the profiled program evolves, so
    there are two parsing modes: the strict one fails on the first
    malformed line, and the lenient one (for robustness runs) keeps
    every well-formed hint and reports each offending line with its
    line number. Duplicate [key=] fields within a line are an error in
    both modes rather than silently resolving to the first
    occurrence. *)

val to_string : Aptget_passes.Aptget_pass.hint list -> string
(** Serialise, one hint per line, with the version header. *)

val of_string : string -> (Aptget_passes.Aptget_pass.hint list, string) result
(** Strict parse; reports the first offending line (with its line
    number) on error. Accepts fields in any order; [sweep] defaults to
    1 when omitted. *)

val of_string_lenient :
  string -> Aptget_passes.Aptget_pass.hint list * (int * string) list
(** Lenient parse: all well-formed hints, plus a [(line_no, error)]
    record for every malformed or unsupported line. Equal to
    [of_string] composed with [Ok] when the error list is empty. *)

val save : path:string -> Aptget_passes.Aptget_pass.hint list -> unit
(** Write to a file (truncating). *)

val load : path:string -> (Aptget_passes.Aptget_pass.hint list, string) result
(** Read and strictly parse a file; I/O problems are reported as
    [Error]. *)

val load_lenient :
  path:string ->
  (Aptget_passes.Aptget_pass.hint list * (int * string) list, string) result
(** Read and leniently parse a file; only I/O problems are [Error]. *)
