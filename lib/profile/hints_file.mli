(** Persisting prefetch hints — the analog of the AutoFDO profile file
    that the paper's workflow hands from the profiling step to the LLVM
    pass ("a list of delinquent load PCs with their corresponding
    prefetch-distance and prefetch injection site", §3.4).

    The format is line-oriented text:
    {v
    # aptget prefetch hints v2
    # provenance: program=3f21c7 schema=2 options=lbr:20000,pebs:64,k:5
    pc=2051 distance=12 site=inner sweep=1 fp=9a0c1:44d2:2:7:1
    pc=11265 distance=3 site=outer sweep=7
    v}
    Blank lines and [#] comments are ignored, except that a comment
    announcing a hints-file version ([# aptget prefetch hints vN]) is
    validated — v1 (plain hints) and v2 (provenance + fingerprints) are
    accepted, anything newer is rejected so a file written by a future
    format revision fails loudly instead of being half-parsed — and a
    [# provenance:] comment is parsed as the profile's provenance
    block. The optional [fp=] field carries a load's structural
    fingerprint ([slice:shape:depth:len:loads], hashes in hex; see
    {!Aptget_ir.Fingerprint}) so {!Remap} can re-key the hint when its
    PC goes stale.

    Checked-in hint files go stale as the profiled program evolves, so
    there are two parsing modes: the strict one fails on the first
    malformed line, and the lenient one (for robustness runs) keeps
    every well-formed hint and reports each offending line with its
    line number. Duplicate [key=] fields within a line are an error in
    both modes rather than silently resolving to the first
    occurrence. *)

(** {2 Provenance and fingerprinted documents (v2)} *)

type provenance = {
  program : int;
      (** structural hash of the profiled program
          ({!Aptget_ir.Fingerprint.t.program}) — when it matches the
          current program, every PC is still exact and remapping is a
          no-op *)
  schema : int;  (** provenance-block schema version (currently 2) *)
  options : string;
      (** space-free summary of the profiler options that produced the
          hints (see {!Profiler.options_summary}) *)
}

val schema_version : int
(** Provenance-block schema version this writer emits (2). Files with a
    larger recorded schema are rejected. *)

type entry = {
  e_hint : Aptget_passes.Aptget_pass.hint;
  e_fp : Fingerprint.load_fp option;
      (** structural fingerprint of the hinted load; [lf_pc] equals the
          hint's [load_pc] *)
}

type doc = { prov : provenance option; entries : entry list }

val entries_of_hints : Aptget_passes.Aptget_pass.hint list -> entry list
(** Wrap bare hints as fingerprint-less entries. *)

val hints_of_doc : doc -> Aptget_passes.Aptget_pass.hint list

val doc_to_string : doc -> string
(** Serialise with the v2 header; the provenance comment is emitted
    when present, the [fp=] field per entry that carries one. *)

val doc_of_string : string -> (doc, string) result
(** Strict parse of either format version; reports the first offending
    line (with its line number) on error. *)

val doc_of_string_lenient : string -> doc * (int * string) list
(** Lenient parse: all well-formed entries (plus the provenance block
    if its line parsed), and a [(line_no, error)] record for every
    malformed or unsupported line. *)

val save_doc : path:string -> doc -> unit
val load_doc : path:string -> (doc, string) result
val load_doc_lenient : path:string -> (doc * (int * string) list, string) result

(** {2 Plain-hint API (v1 files; byte-compatible with earlier releases)} *)

val to_string : Aptget_passes.Aptget_pass.hint list -> string
(** Serialise, one hint per line, with the v1 version header (no
    provenance, no fingerprints — byte-identical to the historical
    writer). *)

val of_string : string -> (Aptget_passes.Aptget_pass.hint list, string) result
(** Strict parse; reports the first offending line (with its line
    number) on error. Accepts fields in any order; [sweep] defaults to
    1 when omitted. Fingerprints and provenance are accepted and
    dropped. *)

val of_string_lenient :
  string -> Aptget_passes.Aptget_pass.hint list * (int * string) list
(** Lenient parse: all well-formed hints, plus a [(line_no, error)]
    record for every malformed or unsupported line. Equal to
    [of_string] composed with [Ok] when the error list is empty. *)

val save : path:string -> Aptget_passes.Aptget_pass.hint list -> unit
(** Write to a file, atomically (write-to-temp + rename in the same
    directory, like {!save_doc}): a crash mid-save leaves the previous
    file contents intact. *)

val load : path:string -> (Aptget_passes.Aptget_pass.hint list, string) result
(** Read and strictly parse a file; I/O problems are reported as
    [Error]. *)

val load_lenient :
  path:string ->
  (Aptget_passes.Aptget_pass.hint list * (int * string) list, string) result
(** Read and leniently parse a file; only I/O problems are [Error]. *)
