module Histogram = Aptget_util.Histogram
module Stats = Aptget_util.Stats
module Peaks = Aptget_signal.Peaks

type peak_finder = Cwt | Naive

type distance_model = {
  ic_latency : float;
  mc_latency : float;
  peaks : float list;
  distance : int;
}

(* Extremes of the detected peak list, total and order-independent:
   the previous multi-peak path read the top peak with
   [List.nth peaks (len - 1)] (and the bottom as the head), silently
   assuming the list arrived sorted ascending — one re-ordered
   producer away from swapping IC and the top of MC. *)
let top_peak = function
  | [] -> None
  | peaks -> Some (List.fold_left Float.max neg_infinity peaks)

let bottom_peak = function
  | [] -> None
  | peaks -> Some (List.fold_left Float.min infinity peaks)

let distance_of_times ?(finder = Cwt) ?(bins = 96) ?(max_distance = 128)
    ?(min_samples = 8) times =
  if Array.length times < min_samples then None
  else begin
    Aptget_obs.Trace.with_span ~name:"stage.distance-solve"
      ~attrs:[ ("samples", string_of_int (Array.length times)) ]
    @@ fun () ->
    let hist = Histogram.of_samples ~bins times in
    let counts = Histogram.counts hist in
    let idxs =
      match finder with
      | Cwt -> Peaks.find_peaks_cwt counts
      | Naive -> Peaks.find_peaks_naive counts
    in
    let peak_values =
      List.map (fun i -> Histogram.bin_center hist i) idxs
      |> List.sort Float.compare
    in
    let ic, mc, peaks =
      match peak_values with
      | [] | [ _ ] ->
        (* Zero/one peak: the load misses (or hits) nearly always. Use
           the fastest observed iterations as the instruction
           component and the slowest peak (or maximum) as the
           memory-bound case. *)
        let ic = Stats.percentile times 5. in
        let top =
          match top_peak peak_values with
          | Some top -> top
          | None -> Stats.percentile times 95.
        in
        (ic, top -. ic, peak_values)
      | peaks ->
        let top = Option.get (top_peak peaks) in
        let low = Option.get (bottom_peak peaks) in
        (* The all-hit peak can sit on the histogram's lower edge where
           the CWT response is attenuated; the fastest observed
           iterations bound IC from below. *)
        let ic = Float.min low (Stats.percentile times 5.) in
        (ic, top -. ic, peaks)
    in
    if mc <= 0. || ic <= 0. then None
    else begin
      let d = int_of_float (ceil (mc /. ic)) in
      let distance = max 1 (min d max_distance) in
      Some { ic_latency = ic; mc_latency = mc; peaks; distance }
    end
  end

let choose_site ?(k = 5) ~distance ~trip_count () =
  match trip_count with
  | Some t when t < float_of_int (k * distance) -> `Outer
  | Some _ | None -> `Inner
