(** Extraction of loop statistics from LBR snapshots (paper §3.1).

    Two instances of the same back-edge branch PC in one LBR snapshot
    bracket exactly one loop iteration; subtracting their cycle stamps
    yields the iteration's execution time. Counting inner back-edge
    PCs between two outer back-edge PCs yields the inner loop's trip
    count (Fig. 3). *)

val iteration_times :
  Aptget_pmu.Sampler.lbr_sample list ->
  latch_pc:int ->
  in_loop:(int -> bool) ->
  float array
(** Cycle deltas between consecutive occurrences of [latch_pc] within a
    snapshot. A delta is kept only if every LBR entry between the two
    occurrences satisfies [in_loop] on its branch PC — otherwise the
    loop was exited and re-entered and the delta spans foreign code. *)

val trip_counts :
  Aptget_pmu.Sampler.lbr_sample list ->
  inner_latch_pc:int ->
  outer_latch_pc:int ->
  float array
(** Number of inner back-edges between consecutive outer back-edges,
    one observation per outer-iteration window fully contained in a
    snapshot. *)

val occurrences : Aptget_pmu.Sampler.lbr_sample list -> pc:int -> int
(** Total occurrences of a branch PC across all snapshots. *)
