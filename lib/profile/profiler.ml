module Machine = Aptget_machine.Machine
module Sampler = Aptget_pmu.Sampler
module Faults = Aptget_pmu.Faults
module Memory = Aptget_mem.Memory
module Loops = Aptget_passes.Loops
module Aptget_pass = Aptget_passes.Aptget_pass
module Inject = Aptget_passes.Inject
module Stats = Aptget_util.Stats
module Slice = Aptget_passes.Slice
module Trace = Aptget_obs.Trace

type options = {
  machine : Machine.config;
  lbr_period : int;
  pebs_period : int;
  top_loads : int;
  min_share : float;
  k : int;
  max_distance : int;
  max_sweep : int;
  finder : Model.peak_finder;
  default_distance : int;
  max_overhead_frac : float;
  faults : Faults.config;
}

let default_options =
  {
    machine = Machine.default_config;
    lbr_period = 20_000;
    pebs_period = 64;
    top_loads = 8;
    min_share = 0.02;
    k = 5;
    max_distance = 128;
    max_sweep = 8;
    finder = Model.Cwt;
    default_distance = 1;
    max_overhead_frac = infinity;
    faults = Faults.none;
  }

type status =
  | Hinted
  | Fallback of string
  | Skipped of string

type load_profile = {
  load_pc : int;
  pebs_count : int;
  latch_pc : int;
  iteration_times : float array;
  trip_count : float option;
  outer_times : float array;
  model : Model.distance_model option;
  hint : Aptget_pass.hint option;
  status : status;
  note : string;
}

type t = {
  hints : Aptget_pass.hint list;
  profiles : load_profile list;
  lbr_snapshots : int;
  pebs_samples : int;
  baseline : Machine.outcome;
  fault_stats : Faults.stats option;
  fingerprint : Fingerprint.t;
}

(* Space-free so it fits in a [key=value] provenance field. Only the
   options that shape which hints come out are recorded — the machine
   model is the simulator's concern, not the profile's identity. *)
let options_summary o =
  Printf.sprintf "lbr:%d,pebs:%d,top:%d,k:%d,maxd:%d,maxs:%d" o.lbr_period
    o.pebs_period o.top_loads o.k o.max_distance o.max_sweep

let in_loop_pred (loop : Loops.loop) pc =
  List.mem (Layout.block_of_pc pc) loop.Loops.blocks

let no_hint ~load_pc ~pebs_count note =
  {
    load_pc;
    pebs_count;
    latch_pc = -1;
    iteration_times = [||];
    trip_count = None;
    outer_times = [||];
    model = None;
    hint = None;
    status = Skipped note;
    note;
  }

(* Loads whose address slice contains no other load are direct (stride)
   accesses: the hardware prefetcher covers them, and injecting a
   software prefetch only adds instruction overhead. Both the paper's
   pass and Ainsworth & Jones restrict themselves to indirect loads. *)
let is_indirect_load (f : Ir.func) ~load_pc =
  let bi = Layout.block_of_pc load_pc in
  match Layout.slot_of_pc load_pc with
  | `Term -> false
  | `Instr ii -> (
    match Slice.extract f ~block:bi ~index:ii with
    | Some s -> Slice.is_indirect s
    | None -> false)

let analyze_load (f : Ir.func) (loops : Loops.loop array) opts samples ~load_pc
    ~pebs_count =
  let bi = Layout.block_of_pc load_pc in
  if not (is_indirect_load f ~load_pc) then
    no_hint ~load_pc ~pebs_count "direct access; left to the hardware prefetcher"
  else
  match Loops.loop_containing loops bi with
  | None -> no_hint ~load_pc ~pebs_count "delinquent load is not inside a loop"
  | Some li ->
    let inner = loops.(li) in
    let times =
      Loop_stats.iteration_times samples ~latch_pc:inner.Loops.latch_pc
        ~in_loop:(in_loop_pred inner)
    in
    let trip_count, outer =
      match inner.Loops.parent with
      | None -> (None, None)
      | Some pi ->
        let outer = loops.(pi) in
        let trips =
          Loop_stats.trip_counts samples ~inner_latch_pc:inner.Loops.latch_pc
            ~outer_latch_pc:outer.Loops.latch_pc
        in
        if Array.length trips = 0 then (None, Some outer)
        else (Some (Stats.mean trips), Some outer)
    in
    let model =
      Model.distance_of_times ~finder:opts.finder
        ~max_distance:opts.max_distance times
    in
    (match model with
    | None ->
      (* §3.6: too few (or degenerate) latency observations. When the
         load still samples heavily in PEBS we fall back to the default
         distance in the inner loop. *)
      let hint =
        Some
          {
            Aptget_pass.load_pc;
            distance = opts.default_distance;
            site = Inject.Inner;
            sweep = 1;
          }
      in
      {
        load_pc;
        pebs_count;
        latch_pc = inner.Loops.latch_pc;
        iteration_times = times;
        trip_count;
        outer_times = [||];
        model = None;
        hint;
        status =
          Fallback
            (Printf.sprintf
               "peak model degenerate (%d iteration samples); default \
                distance %d"
               (Array.length times) opts.default_distance);
        note = "no latency model; using default distance";
      }
    | Some m ->
      let site = Model.choose_site ~k:opts.k ~distance:m.Model.distance ~trip_count () in
      (match site with
      | `Inner ->
        {
          load_pc;
          pebs_count;
          latch_pc = inner.Loops.latch_pc;
          iteration_times = times;
          trip_count;
          outer_times = [||];
          model = Some m;
          hint =
            Some
              {
                Aptget_pass.load_pc;
                distance = m.Model.distance;
                site = Inject.Inner;
                sweep = 1;
              };
          status = Hinted;
          note = "inner-loop injection";
        }
      | `Outer ->
        (* Recompute the distance on the outer loop's latency
           distribution (§3.3). If the LBR never captured two outer
           back-edges, stay in the inner loop. *)
        let outer_times, outer_model =
          match outer with
          | None -> ([||], None)
          | Some o ->
            let ot =
              Loop_stats.iteration_times samples ~latch_pc:o.Loops.latch_pc
                ~in_loop:(in_loop_pred o)
            in
            ( ot,
              Model.distance_of_times ~finder:opts.finder
                ~max_distance:opts.max_distance ot )
        in
        (match outer_model with
        | Some om ->
          let sweep =
            match trip_count with
            | Some tc ->
              max 1 (min opts.max_sweep (int_of_float (Float.round tc)))
            | None -> 1
          in
          {
            load_pc;
            pebs_count;
            latch_pc = inner.Loops.latch_pc;
            iteration_times = times;
            trip_count;
            outer_times;
            model = Some om;
            hint =
              Some
                {
                  Aptget_pass.load_pc;
                  distance = om.Model.distance;
                  site = Inject.Outer;
                  sweep;
                };
            status = Hinted;
            note = "outer-loop injection";
          }
        | None ->
          {
            load_pc;
            pebs_count;
            latch_pc = inner.Loops.latch_pc;
            iteration_times = times;
            trip_count;
            outer_times;
            model = Some m;
            hint =
              Some
                {
                  Aptget_pass.load_pc;
                  distance = m.Model.distance;
                  site = Inject.Inner;
                  sweep = 1;
                };
            status =
              Fallback
                "outer site chosen but outer latency unavailable; inner \
                 injection with the inner-loop distance";
            note = "outer site chosen but outer latency unavailable; inner";
          })))

(* §4.8 extension: estimate the per-iteration instruction overhead a
   hint's slice would add and drop hints that are predicted to cost
   more than they can recover. *)
let slice_length (f : Ir.func) ~load_pc =
  let bi = Layout.block_of_pc load_pc in
  match Layout.slot_of_pc load_pc with
  | `Term -> 0
  | `Instr ii -> (
    match Slice.extract f ~block:bi ~index:ii with
    | Some s -> List.length s.Slice.instrs + 4 (* future value + prefetch *)
    | None -> 0)

let overhead_filter opts (f : Ir.func) profiles =
  if opts.max_overhead_frac = infinity then profiles
  else
    List.map
      (fun p ->
        match (p.hint, p.model) with
        | Some h, Some m ->
          let slice = float_of_int (slice_length f ~load_pc:p.load_pc) in
          let per_iter =
            match h.Aptget_pass.site with
            | Inject.Inner -> slice
            | Inject.Outer -> (
              match p.trip_count with
              | Some t when t >= 1. ->
                slice *. float_of_int h.Aptget_pass.sweep /. t
              | _ -> slice)
          in
          if per_iter > opts.max_overhead_frac *. m.Model.ic_latency then begin
            let why =
              Printf.sprintf
                "hint dropped: predicted +%.0f instrs/iteration vs IC %.0f"
                per_iter m.Model.ic_latency
            in
            { p with hint = None; status = Skipped why; note = why }
          end
          else p
        | _ -> p)
      profiles

(* Analysis half of [profile], reusable on any sampler that has already
   observed an execution of [f] — the one-shot profile runs the clean
   kernel; online re-fitting feeds the sampler that rode along a hinted
   run (the PCs in the resulting hints then address the *observed*
   program, and travel to a fresh build through the remap path). *)
let refit ?(options = default_options) ~baseline sampler (f : Ir.func) =
  let samples = Sampler.lbr_samples sampler in
  let pebs_total = Sampler.miss_samples sampler in
  let loops = Loops.analyze f in
  let delinquents =
    Sampler.delinquent_loads sampler
    |> List.filter (fun (_, n) ->
           float_of_int n >= options.min_share *. float_of_int pebs_total
           && n >= 2)
    |> fun l ->
    List.filteri (fun i _ -> i < options.top_loads) l
  in
  let profiles =
    List.map
      (fun (load_pc, pebs_count) ->
        Trace.with_span ~name:"stage.peak-fit"
          ~attrs:[ ("load_pc", string_of_int load_pc) ]
          (fun () -> analyze_load f loops options samples ~load_pc ~pebs_count))
      delinquents
    |> overhead_filter options f
  in
  let hints = List.filter_map (fun p -> p.hint) profiles in
  {
    hints;
    profiles;
    lbr_snapshots = List.length samples;
    pebs_samples = pebs_total;
    baseline;
    fault_stats = Sampler.fault_stats sampler;
    fingerprint = Fingerprint.fingerprint f;
  }

let profile ?(options = default_options) ?(args = []) ~mem (f : Ir.func) =
  (* An all-zero fault config gets no fault model at all, so the
     default profile path is bit-identical to the historical one. *)
  let faults =
    if Faults.enabled options.faults then Some (Faults.create options.faults)
    else None
  in
  let sampler =
    Sampler.create ~lbr_period:options.lbr_period
      ~pebs_period:options.pebs_period ?faults ()
  in
  let baseline =
    Trace.with_span ~name:"stage.profile" (fun () ->
        let o = Machine.execute ~config:options.machine ~sampler ~args ~mem f in
        Trace.set_cycles o.Machine.cycles;
        o)
  in
  Sampler.export_metrics sampler;
  refit ~options ~baseline sampler f

let to_doc ?(options = default_options) t =
  let fp_at pc =
    List.find_opt
      (fun (l : Fingerprint.load_fp) -> l.Fingerprint.lf_pc = pc)
      t.fingerprint.Fingerprint.loads
  in
  {
    Hints_file.prov =
      Some
        {
          Hints_file.program = t.fingerprint.Fingerprint.program;
          schema = Hints_file.schema_version;
          options = options_summary options;
        };
    entries =
      List.map
        (fun (h : Aptget_pass.hint) ->
          { Hints_file.e_hint = h; e_fp = fp_at h.Aptget_pass.load_pc })
        t.hints;
  }

(* Hints may come from a stale checked-in file, or from a profile whose
   PEBS attribution skidded off the faulting load; both yield PCs that
   no longer (or never did) address a load in this program. Partition
   them out with a reason instead of letting the injection pass fail
   deep inside slice extraction. *)
let validate_hints (f : Ir.func) hints =
  List.partition_map
    (fun (h : Aptget_pass.hint) ->
      match Layout.instr_at f h.Aptget_pass.load_pc with
      | Some { Ir.kind = Ir.Load _; _ } -> Either.Left h
      | Some _ ->
        Either.Right
          ( h,
            Printf.sprintf
              "stale hint: PC %d no longer addresses a load in this program"
              h.Aptget_pass.load_pc )
      | None ->
        Either.Right
          ( h,
            Printf.sprintf "stale hint: PC %d is out of range for this program"
              h.Aptget_pass.load_pc ))
    hints
