(** The analytical model of §3.2–§3.3.

    From the distribution of a loop's iteration times, identify the
    latency peaks (one per memory-hierarchy level serving the
    delinquent load, Fig. 4). The lowest peak is the iteration's
    instruction component [IC] — its execution time when the load hits
    close to the core; the gap up to the highest peak is the memory
    component [MC] that prefetching can hide. Equation (1),
    [IC * prefetch_distance = MC], then gives the optimal distance, and
    Equation (2), [trip_count * k < prefetch_distance], decides whether
    the prefetch must move to the outer loop. *)

type peak_finder = Cwt | Naive
(** CWT ridge-line finder (the paper's choice) or the smoothed-argmax
    baseline used in the ablation bench. *)

type distance_model = {
  ic_latency : float;
  mc_latency : float;
  peaks : float list;     (** detected peak latencies, ascending *)
  distance : int;         (** ceil(MC / IC), clamped to [1, max] *)
}

val top_peak : float list -> float option
(** Largest peak latency, in any order; [None] on the empty list. Both
    branches of {!distance_of_times} read the memory-bound peak
    through this, so no path silently assumes the peak list arrives
    sorted. *)

val bottom_peak : float list -> float option
(** Smallest peak latency, in any order; [None] on the empty list. *)

val distance_of_times :
  ?finder:peak_finder ->
  ?bins:int ->
  ?max_distance:int ->
  ?min_samples:int ->
  float array ->
  distance_model option
(** Compute the model from iteration-time samples.

    - fewer than [min_samples] (default 8) observations: [None];
    - one detected peak: [IC] falls back to the 5th percentile of the
      samples (the fastest iterations seen), so a loop whose load
      virtually always misses still gets a sensible distance;
    - [MC <= 0] (the loop is not memory-bound): [None].

    Default [bins] 96, [max_distance] 128 (matching the paper's
    exhaustive search space). *)

val choose_site :
  ?k:int -> distance:int -> trip_count:float option -> unit ->
  [ `Inner | `Outer ]
(** Equation (2)'s site decision with the paper's k = 5. An inner-loop
    prefetch at distance [d] leaves a prologue/epilogue of [d]
    iterations uncovered per loop entry, so inner injection only
    reaches the paper's 80 % coverage target when
    [d / trip_count <= 1/k]; we inject in the outer loop iff
    [trip_count < k * distance]. (The paper prints the inequality as
    [trip_count * k < distance], but its own derivation — "if we want
    to prefetch 80 % of all demand loads, k needs to be 5" — requires k
    to scale the distance side; see DESIGN.md.) Unknown trip count (no
    nesting, or the LBR never captured an outer window) keeps the
    prefetch in the inner loop. *)
