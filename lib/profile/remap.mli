(** Re-keying stale hints onto a changed program.

    The paper's hints name loads by PC, which is exactly what a
    recompile invalidates (PAPERS.md, the Go-PGO stale-profile design
    point). Given a v2 hints document carrying per-load structural
    fingerprints and the fingerprint of the {e current} program, this
    module decides, per hint:

    - {b keep} it, when its PC still addresses a structurally-matching
      load (or when a legacy v1 hint's PC still addresses a load — no
      fingerprint, nothing to compare);
    - {b remap} it, when the PC is stale but some load of the current
      program matches its fingerprint with confidence at or above
      [accept];
    - {b rescale} it, when the best match is plausible but imperfect
      (confidence in [[min_confidence, accept))) — the hint moves to the
      matched PC with its prefetch distance scaled down by the
      confidence, hedging a possibly-wrong timing model;
    - {b drop} it, with a recorded reason, when nothing matches well
      enough (or two hints contend for the same target load — the more
      confident one wins).

    The output hint list is always valid input for
    {!Aptget_passes.Aptget_pass.run}; the report preserves one decision
    per input hint for diagnostics and the CLI's [--remap] table. *)

type config = {
  accept : float;
      (** similarity at or above which a match is trusted as-is
          (default 0.85) *)
  min_confidence : float;
      (** similarity below which a match is rejected outright
          (default 0.55) *)
}

val default_config : config

type decision =
  | Kept  (** PC still valid; hint unchanged *)
  | Remapped of { pc : int; confidence : float }
      (** moved to the fingerprint-matched load at [pc] *)
  | Rescaled of { pc : int; confidence : float; distance : int }
      (** moved to [pc] with the distance scaled down by [confidence] *)
  | Dropped of string  (** rejected; the payload says why *)

type t = {
  hints : Aptget_passes.Aptget_pass.hint list;
      (** the surviving hints, post-remap, in input order *)
  report : (Aptget_passes.Aptget_pass.hint * decision) list;
      (** one decision per input hint, in input order *)
  kept : int;
  remapped : int;
  rescaled : int;
  dropped : int;
}

val run :
  ?config:config -> current:Fingerprint.t -> Hints_file.doc -> t
(** Remap every hint of [doc] against the current program's
    fingerprint. Pure — the decision depends only on the document and
    the fingerprint, so repeated runs agree. *)

val decision_to_string : decision -> string
