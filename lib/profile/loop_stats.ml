module Sampler = Aptget_pmu.Sampler
module Lbr = Aptget_pmu.Lbr

let iteration_times samples ~latch_pc ~in_loop =
  let acc = ref [] in
  List.iter
    (fun (s : Sampler.lbr_sample) ->
      let entries = s.Sampler.entries in
      let n = Array.length entries in
      let last = ref (-1) in
      let clean = ref true in
      for i = 0 to n - 1 do
        let e = entries.(i) in
        if e.Lbr.branch_pc = latch_pc then begin
          if !last >= 0 && !clean then begin
            let delta = e.Lbr.cycle - entries.(!last).Lbr.cycle in
            if delta > 0 then acc := float_of_int delta :: !acc
          end;
          last := i;
          clean := true
        end
        else if not (in_loop e.Lbr.branch_pc) then clean := false
      done)
    samples;
  Array.of_list (List.rev !acc)

let trip_counts samples ~inner_latch_pc ~outer_latch_pc =
  let acc = ref [] in
  List.iter
    (fun (s : Sampler.lbr_sample) ->
      let entries = s.Sampler.entries in
      let n = Array.length entries in
      let in_window = ref false in
      let count = ref 0 in
      for i = 0 to n - 1 do
        let e = entries.(i) in
        if e.Lbr.branch_pc = outer_latch_pc then begin
          if !in_window then acc := float_of_int !count :: !acc;
          in_window := true;
          count := 0
        end
        else if !in_window && e.Lbr.branch_pc = inner_latch_pc then incr count
      done)
    samples;
  Array.of_list (List.rev !acc)

let occurrences samples ~pc =
  List.fold_left
    (fun total (s : Sampler.lbr_sample) ->
      Array.fold_left
        (fun t (e : Lbr.entry) -> if e.Lbr.branch_pc = pc then t + 1 else t)
        total s.Sampler.entries)
    0 samples
