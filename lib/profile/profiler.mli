(** The automated profiling pipeline of §3.4.

    One profiling run of the unmodified kernel under the simulated PMU
    yields (1) PEBS delinquent-load PCs and (2) LBR snapshots. For each
    delinquent load, the loop containing it is identified in the IR,
    its iteration-time distribution and (when nested) its trip count
    are extracted from the LBR, and the analytical model turns these
    into a prefetch distance and an injection site. The output is the
    hint list consumed by {!Aptget_passes.Aptget_pass}. *)

type options = {
  machine : Aptget_machine.Machine.config;
  lbr_period : int;
  pebs_period : int;
  top_loads : int;      (** delinquent loads to consider (default 8) *)
  min_share : float;    (** minimum share of PEBS samples (default 0.02) *)
  k : int;              (** Equation (2) constant (default 5) *)
  max_distance : int;
  max_sweep : int;      (** cap on outer-site inner-iteration sweep *)
  finder : Model.peak_finder;
  default_distance : int;
      (** used when the LBR never captured two back-edges of the loop
          (§3.6: very long loop bodies) — the paper defaults to 1 *)
  max_overhead_frac : float;
      (** conditional injection (the paper's §4.8 future work): drop a
          hint whose prefetch slice would grow the loop body by more
          than this fraction of the measured instruction component.
          Default [infinity] (filter off, the paper's behaviour). *)
  faults : Aptget_pmu.Faults.config;
      (** PMU fault injection for robustness studies. Default
          {!Aptget_pmu.Faults.none}, which leaves the profiling run
          bit-identical to a fault-free one. *)
}

val default_options : options

type status =
  | Hinted  (** a model-backed hint was emitted *)
  | Fallback of string
      (** a hint was emitted, but only by falling back (default
          distance, or inner site when the outer model was
          unavailable); the payload says why *)
  | Skipped of string
      (** no hint was emitted; the payload says why *)

type load_profile = {
  load_pc : int;
  pebs_count : int;
  latch_pc : int;
  iteration_times : float array;
  trip_count : float option;
  outer_times : float array;  (** empty when not nested / not captured *)
  model : Model.distance_model option;
  hint : Aptget_passes.Aptget_pass.hint option;
  status : status;
      (** structured diagnostic: emitted / fell back / skipped, with
          the cause — consumed by {!Aptget_core.Pipeline}'s degradation
          report *)
  note : string;  (** human-readable summary of [status] *)
}

type t = {
  hints : Aptget_passes.Aptget_pass.hint list;
  profiles : load_profile list;
  lbr_snapshots : int;
  pebs_samples : int;
  baseline : Aptget_machine.Machine.outcome;
      (** the profiling run doubles as a baseline measurement *)
  fault_stats : Aptget_pmu.Faults.stats option;
      (** fault counters when profiling ran under an active fault
          model; [None] on clean runs *)
  fingerprint : Fingerprint.t;
      (** structural fingerprint of the profiled program, taken at
          profile time so hints can later be re-keyed against a changed
          binary ({!Remap}) *)
}

val options_summary : options -> string
(** Space-free summary of the hint-shaping options (sampling periods,
    model constants, caps) for the hints-file provenance block. *)

val to_doc : ?options:options -> t -> Hints_file.doc
(** Package the profile's hints as a v2 hints-file document: provenance
    (program hash, schema, [options_summary] of the options that
    produced it) plus each hint's structural fingerprint. *)

val profile :
  ?options:options ->
  ?args:int list ->
  mem:Aptget_mem.Memory.t ->
  Ir.func ->
  t
(** Run the kernel once with sampling enabled and derive hints.
    The memory is mutated by the run (workloads are expected to either
    tolerate re-running or rebuild their data). *)

val refit :
  ?options:options ->
  baseline:Aptget_machine.Machine.outcome ->
  Aptget_pmu.Sampler.t ->
  Ir.func ->
  t
(** Incremental model re-fit: the analysis half of {!profile}, applied
    to a sampler that already observed an execution of [f]. Online
    re-optimization feeds the sampler that rode along a *hinted* run,
    so the Eq. 1 peaks are re-solved from live iteration times without
    a dedicated profiling run; the resulting hint PCs address the
    observed (rewritten) program and must travel through {!Remap} to
    reach a fresh build. [baseline] is recorded as the profile's
    measurement of record (for re-fits, the observed hinted outcome). *)

val validate_hints :
  Ir.func ->
  Aptget_passes.Aptget_pass.hint list ->
  Aptget_passes.Aptget_pass.hint list
  * (Aptget_passes.Aptget_pass.hint * string) list
(** Partition hints into those whose [load_pc] addresses a load in this
    program and stale ones (wrong instruction kind, or out of range —
    e.g. from a checked-in hints file that outlived a code change, or
    from PEBS skid), each with a reason. *)
