module Aptget_pass = Aptget_passes.Aptget_pass

type config = { accept : float; min_confidence : float }

let default_config = { accept = 0.85; min_confidence = 0.55 }

type decision =
  | Kept
  | Remapped of { pc : int; confidence : float }
  | Rescaled of { pc : int; confidence : float; distance : int }
  | Dropped of string

let decision_to_string = function
  | Kept -> "kept"
  | Remapped r -> Printf.sprintf "remapped to pc=%d (%.2f)" r.pc r.confidence
  | Rescaled r ->
    Printf.sprintf "rescaled to pc=%d distance=%d (%.2f)" r.pc r.distance
      r.confidence
  | Dropped why -> "dropped: " ^ why

type t = {
  hints : Aptget_pass.hint list;
  report : (Aptget_pass.hint * decision) list;
  kept : int;
  remapped : int;
  rescaled : int;
  dropped : int;
}

let current_fp_at (current : Fingerprint.t) pc =
  List.find_opt
    (fun (l : Fingerprint.load_fp) -> l.Fingerprint.lf_pc = pc)
    current.Fingerprint.loads

(* First pass: an independent decision per hint. *)
let decide config current (e : Hints_file.entry) =
  let h = e.Hints_file.e_hint in
  let here = current_fp_at current h.Aptget_pass.load_pc in
  match (here, e.Hints_file.e_fp) with
  | Some cur, Some fp
    when Fingerprint.similarity cur fp >= config.accept ->
    Kept
  | Some _, None ->
    (* Legacy v1 hint: the PC still addresses a load and there is no
       fingerprint to second-guess it with. *)
    Kept
  | _, Some fp -> (
    match Fingerprint.best_match current fp with
    | None -> Dropped "program has no loads"
    | Some (m, c) ->
      if c >= config.accept then
        Remapped { pc = m.Fingerprint.lf_pc; confidence = c }
      else if c >= config.min_confidence then
        Rescaled
          {
            pc = m.Fingerprint.lf_pc;
            confidence = c;
            distance =
              max 1
                (int_of_float
                   (Float.round (float_of_int h.Aptget_pass.distance *. c)));
          }
      else
        Dropped
          (Printf.sprintf "best fingerprint match pc=%d scored %.2f (< %.2f)"
             m.Fingerprint.lf_pc c config.min_confidence))
  | None, None -> Dropped "stale PC and no fingerprint to remap by"

let target_of (h : Aptget_pass.hint) = function
  | Kept -> Some (h.Aptget_pass.load_pc, 1.0)
  | Remapped r -> Some (r.pc, r.confidence)
  | Rescaled r -> Some (r.pc, r.confidence)
  | Dropped _ -> None

(* Second pass: two stale hints can converge on the same current load;
   keep the more confident one (ties: the first in input order). *)
let dedup decided =
  let best : (int, float) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (h, d) ->
      match target_of h d with
      | None -> ()
      | Some (pc, c) -> (
        match Hashtbl.find_opt best pc with
        | Some c' when c' >= c -> ()
        | _ -> Hashtbl.replace best pc c))
    decided;
  let claimed : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  List.map
    (fun (h, d) ->
      match target_of h d with
      | None -> (h, d)
      | Some (pc, c) ->
        if (not (Hashtbl.mem claimed pc)) && Hashtbl.find best pc = c then begin
          Hashtbl.replace claimed pc ();
          (h, d)
        end
        else
          ( h,
            Dropped
              (Printf.sprintf
                 "another hint claims target pc=%d with higher confidence" pc)
          ))
    decided

let apply (h : Aptget_pass.hint) = function
  | Kept -> Some h
  | Remapped r -> Some { h with Aptget_pass.load_pc = r.pc }
  | Rescaled r ->
    Some { h with Aptget_pass.load_pc = r.pc; distance = r.distance }
  | Dropped _ -> None

let run ?(config = default_config) ~current (doc : Hints_file.doc) =
  let report =
    doc.Hints_file.entries
    |> List.map (fun e -> (e.Hints_file.e_hint, decide config current e))
    |> dedup
  in
  let hints = List.filter_map (fun (h, d) -> apply h d) report in
  let count p = List.length (List.filter (fun (_, d) -> p d) report) in
  {
    hints;
    report;
    kept = count (function Kept -> true | _ -> false);
    remapped = count (function Remapped _ -> true | _ -> false);
    rescaled = count (function Rescaled _ -> true | _ -> false);
    dropped = count (function Dropped _ -> true | _ -> false);
  }
