module Aptget_pass = Aptget_passes.Aptget_pass
module Inject = Aptget_passes.Inject

let header_prefix = "# aptget prefetch hints "
let version = "v1"
let header = header_prefix ^ version

let to_string hints =
  let lines =
    List.map
      (fun (h : Aptget_pass.hint) ->
        Printf.sprintf "pc=%d distance=%d site=%s sweep=%d"
          h.Aptget_pass.load_pc h.Aptget_pass.distance
          (Inject.site_to_string h.Aptget_pass.site)
          h.Aptget_pass.sweep)
      hints
  in
  String.concat "\n" ((header :: lines) @ [ "" ])

let parse_field line (key, value) =
  match key with
  | "pc" | "distance" | "sweep" -> (
    match int_of_string_opt value with
    | Some v when v >= 0 -> Ok (key, `Int v)
    | _ -> Error (Printf.sprintf "bad integer %S in %S" value line))
  | "site" -> (
    match value with
    | "inner" -> Ok (key, `Site Inject.Inner)
    | "outer" -> Ok (key, `Site Inject.Outer)
    | _ -> Error (Printf.sprintf "bad site %S in %S" value line))
  | _ -> Error (Printf.sprintf "unknown field %S in %S" key line)

let rec duplicate_key = function
  | [] -> None
  | (k, _) :: rest ->
    if List.mem_assoc k rest then Some k else duplicate_key rest

let parse_line line =
  let parts =
    String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
  in
  let fields =
    List.map
      (fun part ->
        match String.index_opt part '=' with
        | Some i ->
          parse_field line
            ( String.sub part 0 i,
              String.sub part (i + 1) (String.length part - i - 1) )
        | None -> Error (Printf.sprintf "expected key=value, got %S" part))
      parts
  in
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | Ok kv :: rest -> collect (kv :: acc) rest
    | Error e :: _ -> Error e
  in
  match collect [] fields with
  | Error e -> Error e
  | Ok kvs -> (
    match duplicate_key kvs with
    | Some k -> Error (Printf.sprintf "duplicate field %S in %S" k line)
    | None -> (
      let field k = List.assoc_opt k kvs in
      match (field "pc", field "distance", field "site") with
      | Some (`Int pc), Some (`Int distance), Some (`Site site) ->
        let sweep =
          match field "sweep" with Some (`Int s) -> max 1 s | _ -> 1
        in
        Ok { Aptget_pass.load_pc = pc; distance; site; sweep }
      | _ -> Error (Printf.sprintf "missing pc/distance/site in %S" line)))

(* A [#] line is normally a free-form comment, but one that announces a
   hints-file version must announce a version we understand. *)
let check_header t =
  if String.length t >= String.length header_prefix
     && String.sub t 0 (String.length header_prefix) = header_prefix
  then begin
    let v =
      String.trim
        (String.sub t
           (String.length header_prefix)
           (String.length t - String.length header_prefix))
    in
    if v = version then Ok ()
    else
      Error
        (Printf.sprintf "unsupported hints file version %S (expected %S)" v
           version)
  end
  else Ok ()

let parse s =
  let lines = String.split_on_char '\n' s in
  let hints = ref [] in
  let errors = ref [] in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let t = String.trim line in
      if t = "" then ()
      else if t.[0] = '#' then begin
        match check_header t with
        | Ok () -> ()
        | Error e -> errors := (lineno, e) :: !errors
      end
      else
        match parse_line t with
        | Ok h -> hints := h :: !hints
        | Error e -> errors := (lineno, e) :: !errors)
    lines;
  (List.rev !hints, List.rev !errors)

let of_string s =
  match parse s with
  | hints, [] -> Ok hints
  | _, (lineno, e) :: _ -> Error (Printf.sprintf "line %d: %s" lineno e)

let of_string_lenient = parse

let save ~path hints =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string hints))

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load ~path =
  match read_file path with
  | contents -> of_string contents
  | exception Sys_error e -> Error e

let load_lenient ~path =
  match read_file path with
  | contents -> Ok (of_string_lenient contents)
  | exception Sys_error e -> Error e
