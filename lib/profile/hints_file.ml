module Aptget_pass = Aptget_passes.Aptget_pass
module Inject = Aptget_passes.Inject

let header_prefix = "# aptget prefetch hints "
let v1 = "v1"
let v2 = "v2"
let header_v1 = header_prefix ^ v1
let header_v2 = header_prefix ^ v2
let provenance_prefix = "# provenance:"
let schema_version = 2

type provenance = { program : int; schema : int; options : string }

type entry = {
  e_hint : Aptget_pass.hint;
  e_fp : Fingerprint.load_fp option;
}

type doc = { prov : provenance option; entries : entry list }

let entries_of_hints hints =
  List.map (fun h -> { e_hint = h; e_fp = None }) hints

let hints_of_doc doc = List.map (fun e -> e.e_hint) doc.entries

(* ------------------------------------------------------------------ *)
(* Printing *)

let hint_to_line (h : Aptget_pass.hint) =
  Printf.sprintf "pc=%d distance=%d site=%s sweep=%d" h.Aptget_pass.load_pc
    h.Aptget_pass.distance
    (Inject.site_to_string h.Aptget_pass.site)
    h.Aptget_pass.sweep

let fp_to_field (fp : Fingerprint.load_fp) =
  Printf.sprintf "fp=%s:%s:%d:%d:%d"
    (Fingerprint.hex fp.Fingerprint.lf_slice)
    (Fingerprint.hex fp.Fingerprint.lf_shape)
    fp.Fingerprint.lf_depth fp.Fingerprint.lf_len fp.Fingerprint.lf_loads

let entry_to_line e =
  match e.e_fp with
  | None -> hint_to_line e.e_hint
  | Some fp -> hint_to_line e.e_hint ^ " " ^ fp_to_field fp

let provenance_to_line p =
  Printf.sprintf "%s program=%s schema=%d options=%s" provenance_prefix
    (Fingerprint.hex p.program) p.schema p.options

let to_string hints =
  String.concat "\n"
    ((header_v1 :: List.map hint_to_line hints) @ [ "" ])

let doc_to_string doc =
  let prov = match doc.prov with None -> [] | Some p -> [ provenance_to_line p ] in
  String.concat "\n"
    (((header_v2 :: prov) @ List.map entry_to_line doc.entries) @ [ "" ])

(* ------------------------------------------------------------------ *)
(* Parsing *)

(* Hashes are persisted in lower-case hex (they are non-negative, so no
   sign concerns on the way back in). *)
let hex_of_string_opt s =
  if s = "" then None
  else if String.exists (fun c -> not (('0' <= c && c <= '9')
                                       || ('a' <= c && c <= 'f'))) s
  then None
  else int_of_string_opt ("0x" ^ s)

(* Decimal fields go through this, never bare [int_of_string_opt]: the
   latter inherits OCaml literal lenience and silently accepts "+5",
   "1_0" and radix prefixes like "0x10" — none of which this format
   ever writes, so none should read back. *)
let dec_of_string_opt s =
  if s = "" || String.exists (fun c -> c < '0' || c > '9') s then None
  else int_of_string_opt s

let parse_fp line value =
  match String.split_on_char ':' value with
  | [ slice; shape; depth; len; loads ] -> (
    match
      ( hex_of_string_opt slice,
        hex_of_string_opt shape,
        dec_of_string_opt depth,
        dec_of_string_opt len,
        dec_of_string_opt loads )
    with
    | Some sl, Some sh, Some d, Some l, Some lo
      when d >= 0 && l >= 0 && lo >= 0 ->
      Ok
        {
          (* patched to the hint's pc once the whole line has parsed *)
          Fingerprint.lf_pc = 0;
          lf_depth = d;
          lf_shape = sh;
          lf_slice = sl;
          lf_len = l;
          lf_loads = lo;
        }
    | _ -> Error (Printf.sprintf "bad fingerprint %S in %S" value line))
  | _ ->
    Error
      (Printf.sprintf
         "bad fingerprint %S in %S (expected slice:shape:depth:len:loads)"
         value line)

let parse_field line (key, value) =
  match key with
  | "pc" | "distance" | "sweep" -> (
    match dec_of_string_opt value with
    | Some v -> Ok (key, `Int v)
    | _ -> Error (Printf.sprintf "bad integer %S in %S" value line))
  | "site" -> (
    match value with
    | "inner" -> Ok (key, `Site Inject.Inner)
    | "outer" -> Ok (key, `Site Inject.Outer)
    | _ -> Error (Printf.sprintf "bad site %S in %S" value line))
  | "fp" -> (
    match parse_fp line value with
    | Ok fp -> Ok (key, `Fp fp)
    | Error e -> Error e)
  | _ -> Error (Printf.sprintf "unknown field %S in %S" key line)

let rec duplicate_key = function
  | [] -> None
  | (k, _) :: rest ->
    if List.mem_assoc k rest then Some k else duplicate_key rest

let split_fields line =
  String.split_on_char ' ' line
  |> List.filter (fun s -> s <> "")
  |> List.map (fun part ->
         match String.index_opt part '=' with
         | Some i ->
           Ok
             ( String.sub part 0 i,
               String.sub part (i + 1) (String.length part - i - 1) )
         | None -> Error (Printf.sprintf "expected key=value, got %S" part))

let rec collect acc = function
  | [] -> Ok (List.rev acc)
  | Ok kv :: rest -> collect (kv :: acc) rest
  | Error e :: _ -> Error e

let parse_line line =
  let fields =
    List.map
      (fun part ->
        match part with
        | Ok (k, v) -> parse_field line (k, v)
        | Error e -> Error e)
      (split_fields line)
  in
  match collect [] fields with
  | Error e -> Error e
  | Ok kvs -> (
    match duplicate_key kvs with
    | Some k -> Error (Printf.sprintf "duplicate field %S in %S" k line)
    | None -> (
      let field k = List.assoc_opt k kvs in
      match (field "pc", field "distance", field "site") with
      | Some (`Int pc), Some (`Int distance), Some (`Site site) ->
        let sweep =
          match field "sweep" with Some (`Int s) -> max 1 s | _ -> 1
        in
        let e_fp =
          match field "fp" with
          | Some (`Fp fp) -> Some { fp with Fingerprint.lf_pc = pc }
          | _ -> None
        in
        Ok { e_hint = { Aptget_pass.load_pc = pc; distance; site; sweep };
             e_fp }
      | _ -> Error (Printf.sprintf "missing pc/distance/site in %S" line)))

(* A [#] line is normally a free-form comment, but one that announces a
   hints-file version must announce a version we understand. *)
let check_header t =
  if String.length t >= String.length header_prefix
     && String.sub t 0 (String.length header_prefix) = header_prefix
  then begin
    let v =
      String.trim
        (String.sub t
           (String.length header_prefix)
           (String.length t - String.length header_prefix))
    in
    if v = v1 || v = v2 then Ok ()
    else
      Error
        (Printf.sprintf "unsupported hints file version %S (expected %S or %S)"
           v v1 v2)
  end
  else Ok ()

let is_provenance t =
  String.length t >= String.length provenance_prefix
  && String.sub t 0 (String.length provenance_prefix) = provenance_prefix

let parse_provenance line =
  let rest =
    String.sub line
      (String.length provenance_prefix)
      (String.length line - String.length provenance_prefix)
  in
  match collect [] (split_fields rest) with
  | Error e -> Error e
  | Ok kvs -> (
    match duplicate_key kvs with
    | Some k -> Error (Printf.sprintf "duplicate field %S in %S" k line)
    | None -> (
      let field k = List.assoc_opt k kvs in
      match (field "program", field "schema", field "options") with
      | Some program, Some schema, Some options -> (
        match (hex_of_string_opt program, dec_of_string_opt schema) with
        | Some program, Some schema when schema >= 1 ->
          if schema > schema_version then
            Error
              (Printf.sprintf "unsupported provenance schema %d (max %d)"
                 schema schema_version)
          else Ok { program; schema; options }
        | _ ->
          Error (Printf.sprintf "bad program/schema value in %S" line))
      | _ ->
        Error (Printf.sprintf "missing program/schema/options in %S" line)))

let parse s =
  let lines = String.split_on_char '\n' s in
  let entries = ref [] in
  let errors = ref [] in
  let prov = ref None in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let t = String.trim line in
      if t = "" then ()
      else if t.[0] = '#' then begin
        if is_provenance t then
          match parse_provenance t with
          | Ok p -> (
            match !prov with
            | None -> prov := Some p
            | Some _ ->
              errors := (lineno, "duplicate provenance block") :: !errors)
          | Error e -> errors := (lineno, e) :: !errors
        else
          match check_header t with
          | Ok () -> ()
          | Error e -> errors := (lineno, e) :: !errors
      end
      else
        match parse_line t with
        | Ok e -> entries := e :: !entries
        | Error e -> errors := (lineno, e) :: !errors)
    lines;
  ({ prov = !prov; entries = List.rev !entries }, List.rev !errors)

let doc_of_string s =
  match parse s with
  | doc, [] -> Ok doc
  | _, (lineno, e) :: _ -> Error (Printf.sprintf "line %d: %s" lineno e)

let doc_of_string_lenient = parse

let of_string s =
  match doc_of_string s with
  | Ok doc -> Ok (hints_of_doc doc)
  | Error _ as e -> e

let of_string_lenient s =
  let doc, errors = parse s in
  (hints_of_doc doc, errors)

(* Atomic replace (temp + rename): [open_out] would truncate in place,
   so a crash mid-write could destroy the only copy of a hints file.
   After the rename the file is either the old version or the new one,
   never a torn mixture. *)
let write_file path contents = Aptget_store.Atomic_file.write ~path contents

let save ~path hints = write_file path (to_string hints)
let save_doc ~path doc = write_file path (doc_to_string doc)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load ~path =
  match read_file path with
  | contents -> of_string contents
  | exception Sys_error e -> Error e

(* Lenient loads salvage what they can; the lines they drop are bit-rot
   an operator should be able to see, so the count also lands on the
   obs registry (a no-op when metrics are off). *)
let count_salvage errors =
  match List.length errors with
  | 0 -> ()
  | n -> Aptget_obs.Metrics.incr ~by:n "store.salvage.hints_file"

let load_lenient ~path =
  match read_file path with
  | contents ->
    let hints, errors = of_string_lenient contents in
    count_salvage errors;
    Ok (hints, errors)
  | exception Sys_error e -> Error e

let load_doc ~path =
  match read_file path with
  | contents -> doc_of_string contents
  | exception Sys_error e -> Error e

let load_doc_lenient ~path =
  match read_file path with
  | contents ->
    let doc, errors = doc_of_string_lenient contents in
    count_salvage errors;
    Ok (doc, errors)
  | exception Sys_error e -> Error e
