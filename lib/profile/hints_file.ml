module Aptget_pass = Aptget_passes.Aptget_pass
module Inject = Aptget_passes.Inject

let header = "# aptget prefetch hints v1"

let to_string hints =
  let lines =
    List.map
      (fun (h : Aptget_pass.hint) ->
        Printf.sprintf "pc=%d distance=%d site=%s sweep=%d"
          h.Aptget_pass.load_pc h.Aptget_pass.distance
          (Inject.site_to_string h.Aptget_pass.site)
          h.Aptget_pass.sweep)
      hints
  in
  String.concat "\n" ((header :: lines) @ [ "" ])

let parse_field line (key, value) =
  match key with
  | "pc" | "distance" | "sweep" -> (
    match int_of_string_opt value with
    | Some v when v >= 0 -> Ok (key, `Int v)
    | _ -> Error (Printf.sprintf "bad integer %S in %S" value line))
  | "site" -> (
    match value with
    | "inner" -> Ok (key, `Site Inject.Inner)
    | "outer" -> Ok (key, `Site Inject.Outer)
    | _ -> Error (Printf.sprintf "bad site %S in %S" value line))
  | _ -> Error (Printf.sprintf "unknown field %S in %S" key line)

let parse_line line =
  let parts =
    String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
  in
  let fields =
    List.map
      (fun part ->
        match String.index_opt part '=' with
        | Some i ->
          parse_field line
            ( String.sub part 0 i,
              String.sub part (i + 1) (String.length part - i - 1) )
        | None -> Error (Printf.sprintf "expected key=value, got %S" part))
      parts
  in
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | Ok kv :: rest -> collect (kv :: acc) rest
    | Error e :: _ -> Error e
  in
  match collect [] fields with
  | Error e -> Error e
  | Ok kvs -> (
    let int_field k = List.assoc_opt k kvs in
    match (int_field "pc", int_field "distance", int_field "site") with
    | Some (`Int pc), Some (`Int distance), Some (`Site site) ->
      let sweep =
        match int_field "sweep" with Some (`Int s) -> max 1 s | _ -> 1
      in
      Ok { Aptget_pass.load_pc = pc; distance; site; sweep }
    | _ ->
      Error (Printf.sprintf "missing pc/distance/site in %S" line))

let of_string s =
  let lines = String.split_on_char '\n' s in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      let t = String.trim line in
      if t = "" || t.[0] = '#' then go acc rest
      else begin
        match parse_line t with
        | Ok h -> go (h :: acc) rest
        | Error e -> Error e
      end
  in
  go [] lines

let save ~path hints =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string hints))

let load ~path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | contents -> of_string contents
  | exception Sys_error e -> Error e
