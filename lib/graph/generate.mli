(** Deterministic synthetic graph generators.

    Stand-ins for the SNAP datasets of Table 4 (see DESIGN.md): what
    matters for APT-GET's behaviour is the degree distribution (inner
    trip counts) and the footprint (cache residency), both of which
    these generators control. *)

val uniform : seed:int -> n:int -> degree:int -> Csr.t
(** Every vertex gets [degree] out-edges with uniformly random targets
    (the paper's "synthetic graphs with N nodes and degree d"). *)

val rmat : seed:int -> scale:int -> edge_factor:int -> Csr.t
(** RMAT/Kronecker power-law generator with the Graph500 parameters
    (a,b,c) = (0.57, 0.19, 0.19); [n = 2^scale],
    [m = edge_factor * n]. *)

val grid : seed:int -> width:int -> height:int -> Csr.t
(** 4-connected grid with ~0.1% random shortcut edges: a road-network
    stand-in (roadNet-CA/PA) — large diameter, degree ~2-4. *)

val preferential : seed:int -> n:int -> degree:int -> Csr.t
(** Barabási–Albert preferential attachment: web-graph-like skewed
    degrees (web-Google / web-BerkStan stand-in). *)

val random_weights : seed:int -> ?max_weight:int -> Csr.t -> Csr.t
(** Replace weights with uniform ints in [1, max_weight] (default 64),
    for SSSP. *)
