(** Compressed-sparse-row graphs.

    All graph workloads (BFS, DFS, PR, BC, SSSP, Graph500) traverse
    this representation: [offsets] has [n+1] entries; the neighbours of
    vertex [v] are [cols.(offsets.(v)) .. cols.(offsets.(v+1) - 1)],
    with optional per-edge [weights]. The traversal loop over a vertex's
    neighbours is exactly the paper's nested-loop indirect pattern:
    trip count = vertex degree. *)

type t = {
  n : int;
  m : int;               (** directed edge count *)
  offsets : int array;   (** length n+1, non-decreasing *)
  cols : int array;      (** length m, targets in [0, n) *)
  weights : int array;   (** length m (all 1 when unweighted) *)
}

val of_edges : ?weights:int array -> n:int -> (int * int) array -> t
(** Build from a directed edge list. Parallel edges are kept;
    out-of-range endpoints raise. *)

val degree : t -> int -> int
val neighbours : t -> int -> int array
val avg_degree : t -> float
val max_degree : t -> int

val reverse : t -> t
(** Transpose (used by PageRank's pull formulation). *)

val symmetrize : t -> t
(** Add every reverse edge (weights copied), deduplicating exact
    duplicates. Used for undirected benchmarks (Graph500). *)

val validate : t -> (unit, string) result
(** Structural invariants: offsets monotone and bounded, cols in range,
    lengths consistent. *)
