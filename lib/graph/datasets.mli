(** Registry of the paper's graph inputs (Table 4), as synthetic
    stand-ins.

    Each dataset maps a SNAP graph to a generator configuration whose
    degree profile matches; vertex counts are scaled down ~10x so a
    baseline traversal stays interpreter-feasible while the footprint
    still exceeds the (equally scaled) LLC. *)

type spec = {
  name : string;          (** paper's name, e.g. "web-Google" *)
  short : string;         (** paper's abbreviation, e.g. "WG" *)
  paper_vertices : int;
  paper_edges : int;
  scaled_vertices : int;
  family : [ `Web | `P2p | `Road | `Social ];
}

val all : spec list
(** The eight SNAP datasets of Table 4. *)

val find : string -> spec option
(** Lookup by [short] or [name] (case-insensitive). *)

val build : ?seed:int -> spec -> Csr.t
(** Materialise the stand-in graph. Deterministic for a given seed
    (default 42). *)

val synthetic : ?seed:int -> nodes:int -> degree:int -> unit -> Csr.t
(** The paper's synthetic inputs, e.g. "80K nodes, degree 8". *)
