module Rng = Aptget_util.Rng

let uniform ~seed ~n ~degree =
  let rng = Rng.create seed in
  let edges = Array.make (n * degree) (0, 0) in
  let k = ref 0 in
  for u = 0 to n - 1 do
    for _ = 1 to degree do
      edges.(!k) <- (u, Rng.int rng n);
      incr k
    done
  done;
  Csr.of_edges ~n edges

let rmat ~seed ~scale ~edge_factor =
  let rng = Rng.create seed in
  let n = 1 lsl scale in
  let m = edge_factor * n in
  let a = 0.57 and b = 0.19 and c = 0.19 in
  let pick () =
    let u = ref 0 and v = ref 0 in
    for _ = 1 to scale do
      let r = Rng.float rng 1.0 in
      let du, dv =
        if r < a then (0, 0)
        else if r < a +. b then (0, 1)
        else if r < a +. b +. c then (1, 0)
        else (1, 1)
      in
      u := (!u lsl 1) lor du;
      v := (!v lsl 1) lor dv
    done;
    (!u, !v)
  in
  let edges = Array.init m (fun _ -> pick ()) in
  (* Permute vertex ids so the power-law hubs are scattered, as in the
     Graph500 reference implementation. *)
  let perm = Rng.permutation rng n in
  let edges = Array.map (fun (u, v) -> (perm.(u), perm.(v))) edges in
  Csr.of_edges ~n edges

let grid ~seed ~width ~height =
  let rng = Rng.create seed in
  let n = width * height in
  let id x y = (y * width) + x in
  let acc = ref [] in
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      let u = id x y in
      if x + 1 < width then begin
        acc := (u, id (x + 1) y) :: (id (x + 1) y, u) :: !acc
      end;
      if y + 1 < height then begin
        acc := (u, id x (y + 1)) :: (id x (y + 1), u) :: !acc
      end
    done
  done;
  (* Sparse shortcuts (bridges/highways). *)
  let shortcuts = max 1 (n / 1000) in
  for _ = 1 to shortcuts do
    let u = Rng.int rng n and v = Rng.int rng n in
    acc := (u, v) :: (v, u) :: !acc
  done;
  Csr.of_edges ~n (Array.of_list !acc)

let preferential ~seed ~n ~degree =
  let rng = Rng.create seed in
  let m = n * degree in
  (* Target pool: each chosen endpoint is re-added, giving the
     rich-get-richer skew. *)
  let pool = Array.make (2 * m) 0 in
  let pool_len = ref 0 in
  let push v =
    if !pool_len < Array.length pool then begin
      pool.(!pool_len) <- v;
      incr pool_len
    end
  in
  push 0;
  let edges = ref [] in
  for u = 1 to n - 1 do
    for _ = 1 to degree do
      let v =
        if Rng.float rng 1.0 < 0.15 || !pool_len = 0 then Rng.int rng u
        else pool.(Rng.int rng !pool_len)
      in
      edges := (u, v) :: !edges;
      push v;
      push u
    done
  done;
  Csr.of_edges ~n (Array.of_list !edges)

let random_weights ~seed ?(max_weight = 64) (g : Csr.t) =
  let rng = Rng.create seed in
  {
    g with
    Csr.weights = Array.map (fun _ -> 1 + Rng.int rng max_weight) g.Csr.weights;
  }
