type t = {
  n : int;
  m : int;
  offsets : int array;
  cols : int array;
  weights : int array;
}

let of_edges ?weights ~n edges =
  let m = Array.length edges in
  (match weights with
  | Some w when Array.length w <> m ->
    invalid_arg "Csr.of_edges: weights length mismatch"
  | _ -> ());
  let deg = Array.make n 0 in
  Array.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Csr.of_edges: endpoint out of range";
      deg.(u) <- deg.(u) + 1)
    edges;
  let offsets = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    offsets.(v + 1) <- offsets.(v) + deg.(v)
  done;
  let cols = Array.make m 0 in
  let w_out = Array.make m 1 in
  let cursor = Array.copy offsets in
  Array.iteri
    (fun i (u, v) ->
      let slot = cursor.(u) in
      cols.(slot) <- v;
      (match weights with Some w -> w_out.(slot) <- w.(i) | None -> ());
      cursor.(u) <- slot + 1)
    edges;
  { n; m; offsets; cols; weights = w_out }

let degree g v = g.offsets.(v + 1) - g.offsets.(v)

let neighbours g v =
  Array.sub g.cols g.offsets.(v) (degree g v)

let avg_degree g = if g.n = 0 then 0. else float_of_int g.m /. float_of_int g.n

let max_degree g =
  let best = ref 0 in
  for v = 0 to g.n - 1 do
    if degree g v > !best then best := degree g v
  done;
  !best

let edges_of g =
  let acc = Array.make g.m ((0, 0), 1) in
  let k = ref 0 in
  for u = 0 to g.n - 1 do
    for e = g.offsets.(u) to g.offsets.(u + 1) - 1 do
      acc.(!k) <- ((u, g.cols.(e)), g.weights.(e));
      incr k
    done
  done;
  acc

let reverse g =
  let pairs = edges_of g in
  let edges = Array.map (fun ((u, v), _) -> (v, u)) pairs in
  let weights = Array.map snd pairs in
  of_edges ~weights ~n:g.n edges

let symmetrize g =
  let pairs = edges_of g in
  let tbl = Hashtbl.create (2 * g.m) in
  Array.iter (fun ((u, v), w) -> if not (Hashtbl.mem tbl (u, v)) then Hashtbl.add tbl (u, v) w) pairs;
  Array.iter
    (fun ((u, v), w) -> if not (Hashtbl.mem tbl (v, u)) then Hashtbl.add tbl (v, u) w)
    pairs;
  let all = Hashtbl.fold (fun (u, v) w acc -> ((u, v), w) :: acc) tbl [] in
  let all = List.sort compare all in
  let edges = Array.of_list (List.map fst all) in
  let weights = Array.of_list (List.map snd all) in
  of_edges ~weights ~n:g.n edges

let validate g =
  let err what = Error what in
  if Array.length g.offsets <> g.n + 1 then err "offsets length <> n+1"
  else if Array.length g.cols <> g.m then err "cols length <> m"
  else if Array.length g.weights <> g.m then err "weights length <> m"
  else if g.offsets.(0) <> 0 then err "offsets.(0) <> 0"
  else if g.offsets.(g.n) <> g.m then err "offsets.(n) <> m"
  else begin
    let ok = ref (Ok ()) in
    for v = 0 to g.n - 1 do
      if g.offsets.(v) > g.offsets.(v + 1) then ok := err "offsets not monotone"
    done;
    Array.iter
      (fun c -> if c < 0 || c >= g.n then ok := err "column out of range")
      g.cols;
    !ok
  end
