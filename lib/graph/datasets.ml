type spec = {
  name : string;
  short : string;
  paper_vertices : int;
  paper_edges : int;
  scaled_vertices : int;
  family : [ `Web | `P2p | `Road | `Social ];
}

let all =
  [
    {
      name = "web-Google";
      short = "WG";
      paper_vertices = 875_713;
      paper_edges = 5_105_039;
      scaled_vertices = 87_000;
      family = `Web;
    };
    {
      name = "p2p-Gnutella31";
      short = "P2P";
      paper_vertices = 62_586;
      paper_edges = 147_892;
      scaled_vertices = 62_586;
      family = `P2p;
    };
    {
      name = "roadNet-CA";
      short = "CA";
      paper_vertices = 1_965_206;
      paper_edges = 2_766_607;
      scaled_vertices = 196_000;
      family = `Road;
    };
    {
      name = "roadNet-PA";
      short = "PA";
      paper_vertices = 1_088_092;
      paper_edges = 1_541_898;
      scaled_vertices = 108_000;
      family = `Road;
    };
    {
      name = "loc-Brightkite";
      short = "LBE";
      paper_vertices = 58_228;
      paper_edges = 214_078;
      scaled_vertices = 58_228;
      family = `Social;
    };
    {
      name = "web-BerkStan";
      short = "WB";
      paper_vertices = 685_230;
      paper_edges = 7_600_595;
      scaled_vertices = 68_000;
      family = `Web;
    };
    {
      name = "web-NotreDame";
      short = "WN";
      paper_vertices = 325_729;
      paper_edges = 1_497_134;
      scaled_vertices = 65_000;
      family = `Web;
    };
    {
      name = "web-Stanford";
      short = "WS";
      paper_vertices = 281_903;
      paper_edges = 2_312_497;
      scaled_vertices = 56_000;
      family = `Web;
    };
  ]

let find key =
  let k = String.lowercase_ascii key in
  List.find_opt
    (fun s ->
      String.lowercase_ascii s.short = k || String.lowercase_ascii s.name = k)
    all

let build ?(seed = 42) spec =
  let n = spec.scaled_vertices in
  let degree =
    max 2
      (int_of_float
         (Float.round
            (float_of_int spec.paper_edges /. float_of_int spec.paper_vertices)))
  in
  match spec.family with
  | `Web -> Generate.preferential ~seed ~n ~degree
  | `Social -> Generate.preferential ~seed ~n ~degree
  | `P2p -> Generate.uniform ~seed ~n ~degree
  | `Road ->
    let width = int_of_float (sqrt (float_of_int n)) in
    Generate.grid ~seed ~width ~height:width

let synthetic ?(seed = 42) ~nodes ~degree () =
  Generate.uniform ~seed ~n:nodes ~degree
