type slot = {
  mutable tag : int;
  mutable last_addr : int;
  mutable stride : int;
  mutable confidence : int;
}

type t = {
  enabled : bool;
  degree : int;
  table : slot array;
  mutable line_limit : int;
      (* exclusive upper bound on emitted line indices: prefetching
         past the backing region models nothing and, under shared
         streams with small per-tenant footprints, lands in another
         tenant's address range *)
}

let create ?(stride_table_size = 256) ?(degree = 2) () =
  {
    enabled = true;
    degree;
    table =
      Array.init stride_table_size (fun _ ->
          { tag = -1; last_addr = 0; stride = 0; confidence = 0 });
    line_limit = max_int;
  }

let disabled () = { (create ()) with enabled = false }

let set_line_limit t ~lines =
  t.line_limit <- (if lines <= 0 then max_int else lines)

let line_of addr = addr / Aptget_mem.Memory.words_per_line

let on_demand_access t ~pc ~addr ~miss =
  if not t.enabled then []
  else begin
    let slot = t.table.(pc land (Array.length t.table - 1)) in
    let targets = ref [] in
    if slot.tag = pc then begin
      let stride = addr - slot.last_addr in
      if stride = slot.stride && stride <> 0 then
        slot.confidence <- min 4 (slot.confidence + 1)
      else begin
        slot.stride <- stride;
        slot.confidence <- if stride <> 0 then 1 else 0
      end;
      slot.last_addr <- addr;
      if slot.confidence >= 2 then
        for d = 1 to t.degree do
          let target = addr + (slot.stride * d) in
          if
            target >= 0
            && line_of target < t.line_limit
            && line_of target <> line_of addr
          then targets := line_of target :: !targets
        done
    end
    else begin
      slot.tag <- pc;
      slot.last_addr <- addr;
      slot.stride <- 0;
      slot.confidence <- 0
    end;
    (* Next-line prefetch on demand misses, clamped to the region: the
       last line of the footprint has no next line to fetch. *)
    if miss then begin
      let next = line_of addr + 1 in
      if next < t.line_limit then targets := next :: !targets
    end;
    (* Same ascending dedupe as [List.sort_uniq compare], minus the
       polymorphic compare: this runs on every demand access. *)
    match !targets with
    | [] -> []
    | [ _ ] as l -> l
    | l -> List.sort_uniq Int.compare l
  end
