type t = {
  n_sets : int;
  assoc : int;
  set_mask : int;
  tags : int array; (* n_sets * assoc, -1 = invalid; stores full line id *)
  lru : int array;  (* recency stamp per way; larger = more recent *)
  mutable clock : int;
  mutable valid : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let create ~size_bytes ~assoc ~line_bytes =
  if assoc <= 0 then invalid_arg "Cache.create: assoc <= 0";
  if size_bytes mod (assoc * line_bytes) <> 0 then
    invalid_arg "Cache.create: size not divisible by assoc * line";
  let n_sets = size_bytes / (assoc * line_bytes) in
  if not (is_pow2 n_sets) then
    invalid_arg "Cache.create: number of sets must be a power of two";
  {
    n_sets;
    assoc;
    set_mask = n_sets - 1;
    tags = Array.make (n_sets * assoc) (-1);
    lru = Array.make (n_sets * assoc) 0;
    clock = 0;
    valid = 0;
  }

let sets t = t.n_sets
let assoc t = t.assoc
let set_of t line = line land t.set_mask

(* The way scans below run several times per simulated load (L1/L2/LLC
   probes, installs, invalidations), so they use unsafe accesses behind
   indices that are in bounds by construction: [set_of] masks the line
   into [0, n_sets) and ways stay below [assoc], so [base + w] is
   always within the [n_sets * assoc] backing arrays. *)
let find_way t line =
  let base = set_of t line * t.assoc in
  let tags = t.tags in
  let n = t.assoc in
  let found = ref (-1) in
  let w = ref 0 in
  while !found < 0 && !w < n do
    if Array.unsafe_get tags (base + !w) = line then found := base + !w;
    incr w
  done;
  !found

let probe t line = find_way t line >= 0

let touch t line =
  let i = find_way t line in
  if i >= 0 then begin
    t.clock <- t.clock + 1;
    Array.unsafe_set t.lru i t.clock;
    true
  end
  else false

let insert t line =
  let i = find_way t line in
  t.clock <- t.clock + 1;
  if i >= 0 then begin
    Array.unsafe_set t.lru i t.clock;
    None
  end
  else begin
    let base = set_of t line * t.assoc in
    let tags = t.tags and lru = t.lru in
    let n = t.assoc in
    (* Pick the first invalid way, else the least recently used one
       (ties go to the lowest way, as before). *)
    let invalid = ref (-1) in
    let w = ref 0 in
    while !invalid < 0 && !w < n do
      if Array.unsafe_get tags (base + !w) = -1 then invalid := base + !w;
      incr w
    done;
    let victim =
      if !invalid >= 0 then !invalid
      else begin
        let v = ref base in
        let stamp = ref (Array.unsafe_get lru base) in
        for j = 1 to n - 1 do
          let s = Array.unsafe_get lru (base + j) in
          if s < !stamp then begin
            v := base + j;
            stamp := s
          end
        done;
        !v
      end
    in
    let evicted =
      if Array.unsafe_get tags victim = -1 then begin
        t.valid <- t.valid + 1;
        None
      end
      else Some (Array.unsafe_get tags victim)
    in
    Array.unsafe_set tags victim line;
    Array.unsafe_set lru victim t.clock;
    evicted
  end

let invalidate t line =
  let i = find_way t line in
  if i >= 0 then begin
    t.tags.(i) <- -1;
    t.lru.(i) <- 0;
    t.valid <- t.valid - 1
  end

let clear t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.lru 0 (Array.length t.lru) 0;
  t.clock <- 0;
  t.valid <- 0

let occupancy t = t.valid
