type t = {
  n_sets : int;
  assoc : int;
  set_mask : int;
  tags : int array; (* n_sets * assoc, -1 = invalid; stores full line id *)
  lru : int array;  (* recency stamp per way; larger = more recent *)
  mutable clock : int;
  mutable valid : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let create ~size_bytes ~assoc ~line_bytes =
  if assoc <= 0 then invalid_arg "Cache.create: assoc <= 0";
  if size_bytes mod (assoc * line_bytes) <> 0 then
    invalid_arg "Cache.create: size not divisible by assoc * line";
  let n_sets = size_bytes / (assoc * line_bytes) in
  if not (is_pow2 n_sets) then
    invalid_arg "Cache.create: number of sets must be a power of two";
  {
    n_sets;
    assoc;
    set_mask = n_sets - 1;
    tags = Array.make (n_sets * assoc) (-1);
    lru = Array.make (n_sets * assoc) 0;
    clock = 0;
    valid = 0;
  }

let sets t = t.n_sets
let assoc t = t.assoc
let set_of t line = line land t.set_mask

let find_way t line =
  let s = set_of t line in
  let base = s * t.assoc in
  let rec go w =
    if w = t.assoc then -1
    else if t.tags.(base + w) = line then base + w
    else go (w + 1)
  in
  go 0

let probe t line = find_way t line >= 0

let touch t line =
  let i = find_way t line in
  if i >= 0 then begin
    t.clock <- t.clock + 1;
    t.lru.(i) <- t.clock;
    true
  end
  else false

let insert t line =
  let i = find_way t line in
  t.clock <- t.clock + 1;
  if i >= 0 then begin
    t.lru.(i) <- t.clock;
    None
  end
  else begin
    let s = set_of t line in
    let base = s * t.assoc in
    (* Pick an invalid way, else the least recently used one. *)
    let victim = ref base in
    let victim_stamp = ref max_int in
    let found_invalid = ref false in
    for w = 0 to t.assoc - 1 do
      let idx = base + w in
      if (not !found_invalid) && t.tags.(idx) = -1 then begin
        victim := idx;
        found_invalid := true
      end
      else if (not !found_invalid) && t.lru.(idx) < !victim_stamp then begin
        victim := idx;
        victim_stamp := t.lru.(idx)
      end
    done;
    let evicted =
      if t.tags.(!victim) = -1 then begin
        t.valid <- t.valid + 1;
        None
      end
      else Some t.tags.(!victim)
    in
    t.tags.(!victim) <- line;
    t.lru.(!victim) <- t.clock;
    evicted
  end

let invalidate t line =
  let i = find_way t line in
  if i >= 0 then begin
    t.tags.(i) <- -1;
    t.lru.(i) <- 0;
    t.valid <- t.valid - 1
  end

let clear t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.lru 0 (Array.length t.lru) 0;
  t.clock <- 0;
  t.valid <- 0

let occupancy t = t.valid
