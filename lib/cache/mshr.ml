type origin = Demand | Sw_prefetch | Hw_prefetch
type entry = { line : int; ready_at : int; origin : origin }

(* [n] mirrors [List.length entries] so capacity checks don't rescan,
   and [min_ready] is a lower bound on every entry's [ready_at] so
   [pop_ready] can skip the partition while no fill can be due yet
   (the common case: a fill is in flight for tens of accesses before
   its completion cycle). [remove] may leave [min_ready] stale-low;
   that only costs a wasted scan, never a wrong answer. *)
type t = {
  capacity : int;
  mutable entries : entry list; (* unsorted *)
  mutable n : int;
  mutable min_ready : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Mshr.create: capacity <= 0";
  { capacity; entries = []; n = 0; min_ready = max_int }

let capacity t = t.capacity
let in_flight t = t.n

(* Hand-rolled scan: [List.find_opt] allocates its predicate closure on
   every call, and [find] runs once per simulated load/prefetch. *)
let find t line =
  let rec go = function
    | [] -> None
    | e :: tl -> if e.line = line then Some e else go tl
  in
  go t.entries

let allocate t ~line ~ready_at ~origin =
  if t.n >= t.capacity then false
  else if find t line <> None then false
  else begin
    t.entries <- { line; ready_at; origin } :: t.entries;
    t.n <- t.n + 1;
    if ready_at < t.min_ready then t.min_ready <- ready_at;
    true
  end

let remove t line =
  t.entries <- List.filter (fun e -> e.line <> line) t.entries;
  t.n <- List.length t.entries

let pop_ready t ~now =
  (* Fast path: nothing in flight, or every in-flight fill is still
     short of its completion cycle. *)
  if now < t.min_ready then []
  else begin
    let ready, pending =
      List.partition (fun e -> e.ready_at <= now) t.entries
    in
    t.entries <- pending;
    t.n <- List.length pending;
    t.min_ready <-
      List.fold_left (fun m e -> min m e.ready_at) max_int pending;
    List.sort (fun a b -> Int.compare a.ready_at b.ready_at) ready
  end

let clear t =
  t.entries <- [];
  t.n <- 0;
  t.min_ready <- max_int
