type origin = Demand | Sw_prefetch | Hw_prefetch
type entry = { line : int; ready_at : int; origin : origin }
type t = { capacity : int; mutable entries : entry list (* unsorted *) }

let create ~capacity =
  if capacity <= 0 then invalid_arg "Mshr.create: capacity <= 0";
  { capacity; entries = [] }

let capacity t = t.capacity
let in_flight t = List.length t.entries
let find t line = List.find_opt (fun e -> e.line = line) t.entries

let allocate t ~line ~ready_at ~origin =
  if List.length t.entries >= t.capacity then false
  else if find t line <> None then false
  else begin
    t.entries <- { line; ready_at; origin } :: t.entries;
    true
  end

let remove t line =
  t.entries <- List.filter (fun e -> e.line <> line) t.entries

let pop_ready t ~now =
  let ready, pending = List.partition (fun e -> e.ready_at <= now) t.entries in
  t.entries <- pending;
  List.sort (fun a b -> compare a.ready_at b.ready_at) ready

let clear t = t.entries <- []
