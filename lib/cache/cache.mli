(** One set-associative cache level with LRU replacement.

    Keys are cache-line indices (word address / 8); the data itself
    lives in {!Aptget_mem.Memory}, so a cache only tracks presence. *)

type t

val create : size_bytes:int -> assoc:int -> line_bytes:int -> t
(** [create ~size_bytes ~assoc ~line_bytes] builds an empty cache.
    [size_bytes] must be divisible by [assoc * line_bytes]; the number
    of sets must be a power of two. *)

val sets : t -> int
val assoc : t -> int

val probe : t -> int -> bool
(** [probe t line] is [true] iff [line] is present. Does not update
    recency. *)

val touch : t -> int -> bool
(** [touch t line] probes and, on a hit, refreshes LRU recency.
    Returns whether it hit. *)

val insert : t -> int -> int option
(** [insert t line] installs [line], evicting the LRU way if the set is
    full. Returns the evicted line, if any. Inserting a present line
    just refreshes recency and returns [None]. *)

val invalidate : t -> int -> unit
(** Drop a line if present. *)

val clear : t -> unit
(** Empty the cache. *)

val occupancy : t -> int
(** Number of valid lines currently held. *)
