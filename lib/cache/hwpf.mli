(** Hardware prefetchers: next-line and per-PC stride.

    Models the simple prefetchers shipped in real CPUs (§1: only
    next-line and stride prefetchers exist in hardware). They cover
    sequential and strided streams, leaving irregular *indirect*
    accesses — the paper's target — uncovered. *)

type t

val create : ?stride_table_size:int -> ?degree:int -> unit -> t
(** [degree] is how many lines ahead a confident stream prefetches
    (default 2). The stride table is direct-mapped on load PC (default
    256 entries). *)

val disabled : unit -> t
(** A prefetcher that never issues anything (for ablations and for the
    microbenchmark study, which disables HW prefetching interference). *)

val set_line_limit : t -> lines:int -> unit
(** Clamp emitted targets to lines strictly below [lines] (the backing
    region's extent in cache lines). Non-positive [lines] removes the
    bound. Without a limit the stride path only rejects negative
    targets and the next-line path fires unconditionally, so prefetches
    can land past the end of the region. *)

val on_demand_access :
  t -> pc:int -> addr:int -> miss:bool -> int list
(** [on_demand_access t ~pc ~addr ~miss] trains the prefetcher with a
    demand load of word address [addr] issued by instruction [pc] and
    returns the list of cache lines to prefetch. Next-line fires on
    misses; the stride prefetcher fires once a PC has shown the same
    word-stride twice in a row. *)
