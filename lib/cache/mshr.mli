(** Miss-status holding registers (fill buffers).

    Track cache-line fills in flight. A demand load that finds its line
    here was prefetched *too late*: it must wait for the remaining fill
    latency. This is the event the paper measures as
    [LOAD_HIT_PRE.SW_PF] (§2.3). *)

type origin =
  | Demand        (** fill triggered by a blocking demand miss *)
  | Sw_prefetch   (** fill triggered by a software prefetch *)
  | Hw_prefetch   (** fill triggered by the hardware prefetcher *)

type entry = {
  line : int;
  ready_at : int;   (** cycle at which the fill completes *)
  origin : origin;
}

type t

val create : capacity:int -> t
(** [capacity] outstanding fills; further allocations fail. *)

val capacity : t -> int
val in_flight : t -> int

val find : t -> int -> entry option
(** Entry for a line, if a fill is in flight. *)

val allocate : t -> line:int -> ready_at:int -> origin:origin -> bool
(** [allocate t ~line ~ready_at ~origin] starts a fill. Returns [false]
    (and does nothing) when the buffers are full or the line is already
    in flight (the request coalesces in that case). *)

val remove : t -> int -> unit
(** Drop the in-flight entry for a line, if present (used when a demand
    load absorbs the fill). *)

val pop_ready : t -> now:int -> entry list
(** Remove and return all fills completed at or before [now], in
    completion order. *)

val clear : t -> unit
