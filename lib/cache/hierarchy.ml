type config = {
  line_bytes : int;
  l1_size : int;
  l1_assoc : int;
  l1_latency : int;
  l2_size : int;
  l2_assoc : int;
  l2_latency : int;
  llc_size : int;
  llc_assoc : int;
  llc_latency : int;
  dram_latency : int;
  dram_min_gap : int;
  mshr_capacity : int;
  hw_prefetch : bool;
}

let default_config =
  {
    line_bytes = 64;
    l1_size = 32 * 1024;
    l1_assoc = 8;
    l1_latency = 4;
    l2_size = 256 * 1024;
    l2_assoc = 8;
    l2_latency = 14;
    llc_size = 2 * 1024 * 1024;
    llc_assoc = 16;
    llc_latency = 50;
    dram_latency = 250;
    dram_min_gap = 0;
    mshr_capacity = 16;
    hw_prefetch = true;
  }

type level = L1 | L2 | Llc | Dram

let level_to_string = function
  | L1 -> "L1"
  | L2 -> "L2"
  | Llc -> "LLC"
  | Dram -> "DRAM"

type access = {
  latency : int;
  served_from : level;
  fill_buffer_hit : bool;
  late_sw_prefetch : bool;
}

(* Fields are mutable so the per-access hot path bumps them in place;
   a functional [{ c with ... }] update allocated a fresh 15-field
   record on every counter event (several per demand load). External
   readers get a snapshot copy from [counters]. *)
type counters = {
  mutable demand_loads : int;
  mutable hits_l1 : int;
  mutable hits_l2 : int;
  mutable hits_llc : int;
  mutable dram_fills_demand : int;
  mutable load_hit_pre_sw_pf : int;
  mutable offcore_all_data_rd : int;
  mutable offcore_demand_data_rd : int;
  mutable sw_prefetch_issued : int;
  mutable sw_prefetch_useless : int;
  mutable sw_prefetch_dropped : int;
  mutable hw_prefetch_issued : int;
  mutable stall_cycles_l2 : int;
  mutable stall_cycles_llc : int;
  mutable stall_cycles_dram : int;
  mutable sw_prefetch_early_evict : int;
}

let zero_counters () =
  {
    demand_loads = 0;
    hits_l1 = 0;
    hits_l2 = 0;
    hits_llc = 0;
    dram_fills_demand = 0;
    load_hit_pre_sw_pf = 0;
    offcore_all_data_rd = 0;
    offcore_demand_data_rd = 0;
    sw_prefetch_issued = 0;
    sw_prefetch_useless = 0;
    sw_prefetch_dropped = 0;
    hw_prefetch_issued = 0;
    stall_cycles_l2 = 0;
    stall_cycles_llc = 0;
    stall_cycles_dram = 0;
    sw_prefetch_early_evict = 0;
  }

(* Field-wise [a - b]: counter deltas over a window of execution. *)
let sub_counters (a : counters) (b : counters) =
  {
    demand_loads = a.demand_loads - b.demand_loads;
    hits_l1 = a.hits_l1 - b.hits_l1;
    hits_l2 = a.hits_l2 - b.hits_l2;
    hits_llc = a.hits_llc - b.hits_llc;
    dram_fills_demand = a.dram_fills_demand - b.dram_fills_demand;
    load_hit_pre_sw_pf = a.load_hit_pre_sw_pf - b.load_hit_pre_sw_pf;
    offcore_all_data_rd = a.offcore_all_data_rd - b.offcore_all_data_rd;
    offcore_demand_data_rd = a.offcore_demand_data_rd - b.offcore_demand_data_rd;
    sw_prefetch_issued = a.sw_prefetch_issued - b.sw_prefetch_issued;
    sw_prefetch_useless = a.sw_prefetch_useless - b.sw_prefetch_useless;
    sw_prefetch_dropped = a.sw_prefetch_dropped - b.sw_prefetch_dropped;
    hw_prefetch_issued = a.hw_prefetch_issued - b.hw_prefetch_issued;
    stall_cycles_l2 = a.stall_cycles_l2 - b.stall_cycles_l2;
    stall_cycles_llc = a.stall_cycles_llc - b.stall_cycles_llc;
    stall_cycles_dram = a.stall_cycles_dram - b.stall_cycles_dram;
    sw_prefetch_early_evict = a.sw_prefetch_early_evict - b.sw_prefetch_early_evict;
  }

(* Field-wise [a + b]: aggregating counters across runs (e.g. summing
   per-segment measurements into a whole-campaign record). *)
let add_counters (a : counters) (b : counters) =
  {
    demand_loads = a.demand_loads + b.demand_loads;
    hits_l1 = a.hits_l1 + b.hits_l1;
    hits_l2 = a.hits_l2 + b.hits_l2;
    hits_llc = a.hits_llc + b.hits_llc;
    dram_fills_demand = a.dram_fills_demand + b.dram_fills_demand;
    load_hit_pre_sw_pf = a.load_hit_pre_sw_pf + b.load_hit_pre_sw_pf;
    offcore_all_data_rd = a.offcore_all_data_rd + b.offcore_all_data_rd;
    offcore_demand_data_rd = a.offcore_demand_data_rd + b.offcore_demand_data_rd;
    sw_prefetch_issued = a.sw_prefetch_issued + b.sw_prefetch_issued;
    sw_prefetch_useless = a.sw_prefetch_useless + b.sw_prefetch_useless;
    sw_prefetch_dropped = a.sw_prefetch_dropped + b.sw_prefetch_dropped;
    hw_prefetch_issued = a.hw_prefetch_issued + b.hw_prefetch_issued;
    stall_cycles_l2 = a.stall_cycles_l2 + b.stall_cycles_l2;
    stall_cycles_llc = a.stall_cycles_llc + b.stall_cycles_llc;
    stall_cycles_dram = a.stall_cycles_dram + b.stall_cycles_dram;
    sw_prefetch_early_evict = a.sw_prefetch_early_evict + b.sw_prefetch_early_evict;
  }

(* The LLC and the DRAM channel are *shared* resources: several
   streams (co-running tenants) can attach to one [shared], each with
   private L1/L2/MSHR/prefetcher/counters. The solo case is a shared
   level with a single attached stream, and takes exactly the code
   paths it always did.

   Per-stream line ids are kept disjoint by offsetting every line with
   a per-stream base ([stream lsl 44]): workload memories all start at
   word address 0, and without the offset two tenants' address spaces
   would alias in the shared LLC. The base is a multiple of every
   power-of-two set count, so set indexing (and hence conflict
   behaviour) is unchanged — tenants genuinely contend for the same
   sets, as they would behind a physical indexer. *)
type t = {
  cfg : config;
  shared : shared;
  l1 : Cache.t;
  l2 : Cache.t;
  mshr : Mshr.t;
  hwpf : Hwpf.t;
  mutable c : counters;
  line_base : int;
      (* per-stream offset added to every line id (0 for stream 0 /
         the solo path) *)
  line_shift : int;
      (* log2 of words per line when that is a power of two, else -1;
         lets [line_of] shift instead of running an integer division on
         every access *)
}

and shared = {
  s_cfg : config;
  llc : Cache.t;
  mutable next_dram_slot : int;
      (* earliest cycle the DRAM channel can start another fill *)
  pending_sw : (int, t) Hashtbl.t;
      (* lines installed by a SW-prefetch fill and not yet demand-used,
         mapped to the issuing stream: an LLC eviction of one is a
         too-early prefetch charged to that stream. The value is the
         stream itself (not its counters record) so attribution
         survives [reset_counters], which swaps the record out. *)
  mutable attached : t list;
      (* in attach order; inclusion victims invalidate every stream's
         private levels *)
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go k n = if n <= 1 then k else go (k + 1) (n lsr 1) in
  go 0 n

let create_shared cfg =
  {
    s_cfg = cfg;
    llc =
      Cache.create ~size_bytes:cfg.llc_size ~assoc:cfg.llc_assoc ~line_bytes:cfg.line_bytes;
    next_dram_slot = 0;
    pending_sw = Hashtbl.create 64;
    attached = [];
  }

let attach shared ~stream =
  if stream < 0 || stream > 255 then
    invalid_arg "Hierarchy.attach: stream id out of range";
  let cfg = shared.s_cfg in
  let t =
    {
      cfg;
      shared;
      l1 = Cache.create ~size_bytes:cfg.l1_size ~assoc:cfg.l1_assoc ~line_bytes:cfg.line_bytes;
      l2 = Cache.create ~size_bytes:cfg.l2_size ~assoc:cfg.l2_assoc ~line_bytes:cfg.line_bytes;
      mshr = Mshr.create ~capacity:cfg.mshr_capacity;
      hwpf = (if cfg.hw_prefetch then Hwpf.create () else Hwpf.disabled ());
      c = zero_counters ();
      line_base = stream lsl 44;
      line_shift =
        (if cfg.line_bytes mod 8 = 0 && is_pow2 (cfg.line_bytes / 8) then
           log2 (cfg.line_bytes / 8)
         else -1);
    }
  in
  shared.attached <- shared.attached @ [ t ];
  t

let create cfg = attach (create_shared cfg) ~stream:0

let config t = t.cfg

let set_prefetch_limit t ~words =
  let wpl = Aptget_mem.Memory.words_per_line in
  let lines = if words <= 0 then 0 else (words + wpl - 1) / wpl in
  Hwpf.set_line_limit t.hwpf ~lines

(* Install a line everywhere (inclusive hierarchy). An LLC eviction
   invalidates the inner levels — of every attached stream — to
   preserve inclusion; line ids are per-stream disjoint, so at most one
   stream's private levels actually hold the victim. *)
let install_all t line =
  (match Cache.insert t.shared.llc line with
  | Some victim ->
    (match t.shared.attached with
    | [ only ] ->
      (* Solo fast path: no list traversal on the per-fill hot path. *)
      Cache.invalidate only.l2 victim;
      Cache.invalidate only.l1 victim
    | streams ->
      List.iter
        (fun s ->
          Cache.invalidate s.l2 victim;
          Cache.invalidate s.l1 victim)
        streams);
    (match Hashtbl.find_opt t.shared.pending_sw victim with
    | Some owner ->
      Hashtbl.remove t.shared.pending_sw victim;
      owner.c.sw_prefetch_early_evict <- owner.c.sw_prefetch_early_evict + 1
    | None -> ())
  | None -> ());
  ignore (Cache.insert t.l2 line);
  ignore (Cache.insert t.l1 line)

let drain_fills t ~cycle =
  (* Pop first: the MSHR is empty on most accesses and the match keeps
     the iteration closure from being allocated on that path. *)
  match Mshr.pop_ready t.mshr ~now:cycle with
  | [] -> ()
  | ready ->
    List.iter
      (fun (e : Mshr.entry) ->
        if e.origin = Mshr.Sw_prefetch then
          Hashtbl.replace t.shared.pending_sw e.line t;
        install_all t e.line)
      ready

(* [addr * 8 / line_bytes], as a shift on the all-but-universal
   power-of-two configs, plus the stream's line base. Negative
   addresses (possible transiently: the hierarchy is consulted before
   the memory bounds check raises) keep the truncating-division
   rounding of the original expression. *)
let line_of t addr =
  t.line_base
  +
  if addr >= 0 && t.line_shift >= 0 then addr lsr t.line_shift
  else addr * 8 / t.cfg.line_bytes

(* Claim a DRAM channel slot: with a bandwidth bound, back-to-back
   fills are spaced [dram_min_gap] cycles apart and queueing delay adds
   to the fill's completion time. The channel is shared, so co-running
   streams queue behind each other. *)
let dram_start t ~cycle =
  if t.cfg.dram_min_gap <= 0 then cycle
  else begin
    let start = max cycle t.shared.next_dram_slot in
    t.shared.next_dram_slot <- start + t.cfg.dram_min_gap;
    start
  end

(* Start a fill for [line] if it is not cached anywhere and not already
   in flight. Returns true if a fill buffer was allocated. *)
let start_fill t ~line ~cycle ~origin =
  if Cache.probe t.l1 line || Cache.probe t.l2 line then false
  else begin
    let from_dram = not (Cache.probe t.shared.llc line) in
    let ready_at =
      if from_dram then dram_start t ~cycle + t.cfg.dram_latency
      else cycle + t.cfg.llc_latency
    in
    let ok = Mshr.allocate t.mshr ~line ~ready_at ~origin in
    if ok && from_dram then
      t.c.offcore_all_data_rd <- t.c.offcore_all_data_rd + 1;
    ok
  end

(* The prefetcher trains on raw (un-offset) addresses and emits raw
   line indices, so its extent clamp composes with the stream offset;
   the base is added when the fill enters the hierarchy. *)
let hw_prefetch_lines t ~pc ~addr ~miss ~cycle =
  match Hwpf.on_demand_access t.hwpf ~pc ~addr ~miss with
  | [] -> ()
  | lines ->
    List.iter
      (fun line ->
        if start_fill t ~line:(t.line_base + line) ~cycle ~origin:Mshr.Hw_prefetch
        then t.c.hw_prefetch_issued <- t.c.hw_prefetch_issued + 1)
      lines

let demand_load t ~pc ~addr ~cycle =
  drain_fills t ~cycle;
  let line = line_of t addr in
  if Hashtbl.length t.shared.pending_sw <> 0 then
    Hashtbl.remove t.shared.pending_sw line;
  t.c.demand_loads <- t.c.demand_loads + 1;
  match Mshr.find t.mshr line with
  | Some entry ->
    (* Fill in flight: wait out the remainder, then it behaves like an
       L1 hit. The real counter treats this as a cache miss. *)
    let wait = max 0 (entry.ready_at - cycle) in
    let late_sw = entry.origin = Mshr.Sw_prefetch in
    Mshr.remove t.mshr line;
    install_all t line;
    if late_sw then t.c.load_hit_pre_sw_pf <- t.c.load_hit_pre_sw_pf + 1;
    t.c.offcore_all_data_rd <- t.c.offcore_all_data_rd + 1;
    t.c.offcore_demand_data_rd <- t.c.offcore_demand_data_rd + 1;
    t.c.stall_cycles_dram <- t.c.stall_cycles_dram + wait;
    hw_prefetch_lines t ~pc ~addr ~miss:true ~cycle;
    {
      latency = wait + t.cfg.l1_latency;
      served_from = Dram;
      fill_buffer_hit = true;
      late_sw_prefetch = late_sw;
    }
  | None ->
    if Cache.touch t.l1 line then begin
      t.c.hits_l1 <- t.c.hits_l1 + 1;
      hw_prefetch_lines t ~pc ~addr ~miss:false ~cycle;
      {
        latency = t.cfg.l1_latency;
        served_from = L1;
        fill_buffer_hit = false;
        late_sw_prefetch = false;
      }
    end
    else if Cache.touch t.l2 line then begin
      ignore (Cache.insert t.l1 line);
      t.c.hits_l2 <- t.c.hits_l2 + 1;
      t.c.stall_cycles_l2 <-
        t.c.stall_cycles_l2 + t.cfg.l2_latency - t.cfg.l1_latency;
      hw_prefetch_lines t ~pc ~addr ~miss:true ~cycle;
      {
        latency = t.cfg.l2_latency;
        served_from = L2;
        fill_buffer_hit = false;
        late_sw_prefetch = false;
      }
    end
    else if Cache.touch t.shared.llc line then begin
      ignore (Cache.insert t.l2 line);
      ignore (Cache.insert t.l1 line);
      t.c.hits_llc <- t.c.hits_llc + 1;
      t.c.stall_cycles_llc <-
        t.c.stall_cycles_llc + t.cfg.llc_latency - t.cfg.l1_latency;
      hw_prefetch_lines t ~pc ~addr ~miss:true ~cycle;
      {
        latency = t.cfg.llc_latency;
        served_from = Llc;
        fill_buffer_hit = false;
        late_sw_prefetch = false;
      }
    end
    else begin
      install_all t line;
      let start = dram_start t ~cycle in
      let latency = start - cycle + t.cfg.dram_latency in
      t.c.dram_fills_demand <- t.c.dram_fills_demand + 1;
      t.c.offcore_all_data_rd <- t.c.offcore_all_data_rd + 1;
      t.c.offcore_demand_data_rd <- t.c.offcore_demand_data_rd + 1;
      t.c.stall_cycles_dram <-
        t.c.stall_cycles_dram + latency - t.cfg.l1_latency;
      hw_prefetch_lines t ~pc ~addr ~miss:true ~cycle;
      {
        latency;
        served_from = Dram;
        fill_buffer_hit = false;
        late_sw_prefetch = false;
      }
    end

let sw_prefetch t ~addr ~cycle =
  drain_fills t ~cycle;
  let line = line_of t addr in
  if Cache.probe t.l1 line || Cache.probe t.l2 line then
    t.c.sw_prefetch_useless <- t.c.sw_prefetch_useless + 1
  else if Mshr.find t.mshr line <> None then
    (* Coalesces with the in-flight fill. *)
    t.c.sw_prefetch_useless <- t.c.sw_prefetch_useless + 1
  else if start_fill t ~line ~cycle ~origin:Mshr.Sw_prefetch then
    t.c.sw_prefetch_issued <- t.c.sw_prefetch_issued + 1
  else t.c.sw_prefetch_dropped <- t.c.sw_prefetch_dropped + 1

(* Snapshot copy: the live record keeps mutating after this call. *)
let counters t = { t.c with demand_loads = t.c.demand_loads }
let reset_counters t = t.c <- zero_counters ()

(* Flushing a stream also empties the shared levels (the solo
   behaviour); co-run drivers flush before any stream starts. *)
let flush t =
  Cache.clear t.l1;
  Cache.clear t.l2;
  Cache.clear t.shared.llc;
  Mshr.clear t.mshr;
  t.shared.next_dram_slot <- 0;
  Hashtbl.reset t.shared.pending_sw;
  reset_counters t
