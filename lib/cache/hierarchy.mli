(** Three-level inclusive cache hierarchy with fill buffers and
    hardware prefetching — the memory system of the simulated machine
    (Table 2 of the paper, scaled; see DESIGN.md).

    Latency semantics (the heart of prefetch timeliness):
    - a demand load blocks for the latency of the level that serves it;
    - a software prefetch is non-blocking: it allocates a fill buffer
      whose completion installs the line, and is dropped when the
      buffers are full;
    - a demand load whose line is still in flight stalls only for the
      *remaining* fill time and is recorded as a late prefetch
      ([LOAD_HIT_PRE.SW_PF]) when the fill came from a software
      prefetch. *)

type config = {
  line_bytes : int;
  l1_size : int;
  l1_assoc : int;
  l1_latency : int;
  l2_size : int;
  l2_assoc : int;
  l2_latency : int;
  llc_size : int;
  llc_assoc : int;
  llc_latency : int;
  dram_latency : int;
  dram_min_gap : int;
      (** minimum cycles between DRAM fills (a bandwidth bound);
          0 = unlimited bandwidth (the default model) *)
  mshr_capacity : int;
  hw_prefetch : bool;
}

val default_config : config
(** 32 KiB/8-way L1 (4 cyc), 256 KiB/8-way L2 (14 cyc), 2 MiB/16-way
    LLC (50 cyc), DRAM 250 cyc, 16 MSHRs, HW prefetch on. Sizes are the
    paper's Xeon scaled down ~10x so that interpreter-feasible working
    sets still exceed the LLC. *)

type level = L1 | L2 | Llc | Dram

val level_to_string : level -> string

type access = {
  latency : int;         (** cycles the demand load blocks the core *)
  served_from : level;
  fill_buffer_hit : bool;
  late_sw_prefetch : bool; (** fill-buffer hit on a SW-prefetch fill *)
}

type counters = {
  mutable demand_loads : int;
  mutable hits_l1 : int;
  mutable hits_l2 : int;
  mutable hits_llc : int;
  mutable dram_fills_demand : int;
  mutable load_hit_pre_sw_pf : int;
      (** demand loads that hit an in-flight fill initiated by a
          software prefetch *)
  mutable offcore_all_data_rd : int;
  mutable offcore_demand_data_rd : int;
  mutable sw_prefetch_issued : int;  (** prefetches that allocated a fill *)
  mutable sw_prefetch_useless : int;
      (** prefetches that hit in L1/L2 (no-op) *)
  mutable sw_prefetch_dropped : int;  (** dropped: fill buffers full *)
  mutable hw_prefetch_issued : int;
  mutable stall_cycles_l2 : int;
  mutable stall_cycles_llc : int;
  mutable stall_cycles_dram : int;  (** includes fill-buffer waits *)
  mutable sw_prefetch_early_evict : int;
      (** SW-prefetched lines evicted from the LLC before any demand
          load touched them — the prefetch landed too early (or the
          distance overshot the reuse), polluting the cache for
          nothing. The dual of [load_hit_pre_sw_pf] (too late). *)
}
(** Fields are mutable for the simulator's in-place updates;
    {!counters} returns a private snapshot copy, so treat a returned
    record as a value. *)

val sub_counters : counters -> counters -> counters
(** [sub_counters a b] is the field-wise difference [a - b]: the
    counter activity between two snapshots of the same hierarchy,
    i.e. over one execution window. *)

val add_counters : counters -> counters -> counters
(** Field-wise sum: aggregate counters across independent runs (e.g.
    per-segment measurements summed into one record). *)

type t
(** One stream's view of the memory system: private L1/L2, fill
    buffers and hardware prefetcher over a {!shared} LLC/DRAM. *)

type shared
(** The levels co-running streams contend on: the LLC and the DRAM
    channel. Create one, then {!attach} a hierarchy per stream. *)

val create_shared : config -> shared

val attach : shared -> stream:int -> t
(** Attach a stream (private L1/L2/MSHR/prefetcher/counters) to a
    shared LLC/DRAM. [stream] must be unique per attachment and in
    [0, 255]; it offsets the stream's line ids so tenants whose
    memories all start at word 0 do not alias in the shared LLC, while
    preserving set indexing (streams contend for the same sets). An
    LLC eviction invalidates the victim in every attached stream's
    private levels (inclusion).

    Raises [Invalid_argument] on an out-of-range stream id. *)

val create : config -> t
(** [attach (create_shared cfg) ~stream:0] — the solo machine. *)

val config : t -> config

val set_prefetch_limit : t -> words:int -> unit
(** Clamp the hardware prefetcher to the stream's backing region:
    no emitted target may reach at or past the line containing word
    [words - 1]'s successor (i.e. targets stay within the allocated
    extent). Non-positive [words] removes the bound. *)

val demand_load : t -> pc:int -> addr:int -> cycle:int -> access
(** Perform a demand load of word address [addr] at time [cycle],
    returning its blocking latency and classification. Trains and
    triggers the hardware prefetcher. *)

val sw_prefetch : t -> addr:int -> cycle:int -> unit
(** Issue a software prefetch for the line of [addr]; non-blocking. *)

val counters : t -> counters
(** Snapshot of all counters since creation (or [reset_counters]). *)

val reset_counters : t -> unit
(** Zero the counters, keeping cache contents warm (used to exclude
    workload setup from measurement). *)

val flush : t -> unit
(** Empty caches (including the shared LLC), fill buffers, and this
    stream's counters. *)
