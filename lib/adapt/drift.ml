module Machine = Aptget_machine.Machine
module Hierarchy = Aptget_cache.Hierarchy

type config = {
  late_threshold : float;
  early_threshold : float;
  useless_threshold : float;
  mpki_jump : float;
  iter_jump : float;
  hysteresis : int;
  min_dwell : int;
  min_window_instructions : int;
}

let default_config =
  {
    late_threshold = 0.25;
    early_threshold = 0.25;
    useless_threshold = 0.85;
    mpki_jump = 0.5;
    iter_jump = 0.75;
    hysteresis = 3;
    min_dwell = 1;
    min_window_instructions = 2_000;
  }

let check_config c =
  let pos name v =
    if not (v > 0.0) then
      invalid_arg (Printf.sprintf "Drift: %s must be positive" name)
  in
  pos "late_threshold" c.late_threshold;
  pos "early_threshold" c.early_threshold;
  pos "useless_threshold" c.useless_threshold;
  pos "mpki_jump" c.mpki_jump;
  pos "iter_jump" c.iter_jump;
  if c.hysteresis < 1 then invalid_arg "Drift: hysteresis must be >= 1";
  if c.min_dwell < 0 then invalid_arg "Drift: min_dwell must be >= 0";
  if c.min_window_instructions < 1 then
    invalid_arg "Drift: min_window_instructions must be >= 1"

type reference = { ref_mpki : float; ref_iter : float option }

type verdict = Stable | Drifted of { score : float; cause : string }

type epoch_eval = {
  ev_windows : int;
  ev_drifted : int;
  ev_score : float;
  ev_cause : string;
  ev_streak : int;
  ev_suppressed : bool;
}

type t = {
  config : config;
  mutable reference : reference;
  mutable calibrated : bool;
  mutable streak : int;
  mutable dwell_left : int;
  mutable suppressed_total : int;
  (* per-epoch accumulators, reset by [begin_epoch] *)
  mutable e_windows : int;
  mutable e_drifted : int;
  mutable e_score : float;
  mutable e_cause : string;
  mutable e_instructions : int;
  mutable e_misses : int;
}

let create ?(config = default_config) reference =
  check_config config;
  {
    config;
    reference;
    calibrated = false;
    streak = 0;
    dwell_left = 0;
    suppressed_total = 0;
    e_windows = 0;
    e_drifted = 0;
    e_score = 0.0;
    e_cause = "-";
    e_instructions = 0;
    e_misses = 0;
  }

let config t = t.config
let reference t = t.reference
let calibrated t = t.calibrated
let streak t = t.streak
let suppressed_total t = t.suppressed_total

(* Avoid amplifying noise around a near-zero reference: relative deltas
   are taken against at least one miss per kilo-instruction (resp. one
   cycle per iteration). *)
let rel_delta ~floor ~reference v =
  Float.abs (v -. reference) /. Float.max reference floor

let window_mpki (w : Machine.window_report) =
  if w.Machine.w_instructions <= 0 then 0.0
  else
    float_of_int w.Machine.w_counters.Hierarchy.offcore_demand_data_rd
    /. (float_of_int w.Machine.w_instructions /. 1000.0)

let score_components t (w : Machine.window_report) =
  let c = t.config in
  let counters = w.Machine.w_counters in
  let late = Machine.late_prefetch_ratio counters /. c.late_threshold in
  let early = Machine.early_evict_ratio counters /. c.early_threshold in
  let useless =
    Machine.useless_prefetch_ratio counters /. c.useless_threshold
  in
  let mpki =
    rel_delta ~floor:1.0 ~reference:t.reference.ref_mpki (window_mpki w)
    /. c.mpki_jump
  in
  [ ("late", late); ("early", early); ("useless", useless); ("mpki", mpki) ]

let best components =
  List.fold_left
    (fun (bc, bs) (cause, s) -> if s > bs then (cause, s) else (bc, bs))
    ("-", 0.0) components

let vote t components =
  let cause, score = best components in
  if score > t.e_score then (
    t.e_score <- score;
    t.e_cause <- cause);
  if score >= 1.0 then (
    t.e_drifted <- t.e_drifted + 1;
    t.streak <- t.streak + 1)
  else t.streak <- 0

let begin_epoch t =
  t.e_windows <- 0;
  t.e_drifted <- 0;
  t.e_score <- 0.0;
  t.e_cause <- "-";
  t.e_instructions <- 0;
  t.e_misses <- 0

let observe_window t (w : Machine.window_report) =
  if w.Machine.w_instructions >= t.config.min_window_instructions then begin
    t.e_windows <- t.e_windows + 1;
    t.e_instructions <- t.e_instructions + w.Machine.w_instructions;
    t.e_misses <-
      t.e_misses + w.Machine.w_counters.Hierarchy.offcore_demand_data_rd;
    (* The first epoch under a fresh plan only calibrates: its windows
       establish what "normal" looks like under the plan actually
       running (the priming profile's reference describes the unhinted
       program, which successful prefetching is supposed to change). *)
    if t.calibrated then vote t (score_components t w)
  end

let end_epoch t ?iter_median ?(stale_hints = false) () =
  if not t.calibrated then begin
    if t.e_instructions > 0 then
      t.reference <-
        {
          ref_mpki =
            float_of_int t.e_misses
            /. (float_of_int t.e_instructions /. 1000.0);
          ref_iter =
            (match iter_median with
            | Some _ -> iter_median
            | None -> t.reference.ref_iter);
        };
    t.calibrated <- true;
    ( Stable,
      {
        ev_windows = t.e_windows;
        ev_drifted = 0;
        ev_score = 0.0;
        ev_cause = "calibrate";
        ev_streak = 0;
        ev_suppressed = false;
      } )
  end
  else begin
    (* Epoch-grained evidence joins as one virtual window vote: weaker
       than the counter windows (it cannot reset the streak), but it
       can extend it — iteration-time shifts come from the concurrent
       sampler's epoch-level re-fit, and stale hints mean the program's
       structural fingerprints no longer match the profile's. *)
    let virtual_components =
      (match (iter_median, t.reference.ref_iter) with
      | Some m, Some r ->
          [ ("iter", rel_delta ~floor:1.0 ~reference:r m /. t.config.iter_jump) ]
      | _ -> [])
      @ if stale_hints then [ ("stale-hints", 2.0) ] else []
    in
    (match virtual_components with
    | [] -> ()
    | cs ->
        let cause, score = best cs in
        if score > t.e_score then (
          t.e_score <- score;
          t.e_cause <- cause);
        if score >= 1.0 then (
          t.e_drifted <- t.e_drifted + 1;
          t.streak <- t.streak + 1));
    let due = t.streak >= t.config.hysteresis in
    let suppressed = due && t.dwell_left > 0 in
    if t.dwell_left > 0 then t.dwell_left <- t.dwell_left - 1;
    if suppressed then t.suppressed_total <- t.suppressed_total + 1;
    let verdict =
      if due && not suppressed then
        Drifted { score = t.e_score; cause = t.e_cause }
      else Stable
    in
    ( verdict,
      {
        ev_windows = t.e_windows;
        ev_drifted = t.e_drifted;
        ev_score = t.e_score;
        ev_cause = t.e_cause;
        ev_streak = t.streak;
        ev_suppressed = suppressed;
      } )
  end

let note_retune t reference =
  t.reference <- reference;
  t.calibrated <- true;
  t.streak <- 0;
  t.dwell_left <- t.config.min_dwell

let verdict_to_string = function
  | Stable -> "stable"
  | Drifted { cause; _ } -> "drift:" ^ cause
