(** Online re-optimization: notice an aging profile and retune mid-run.

    The loop drives one {!Aptget_core.Pipeline.run_adaptive} epoch per
    program segment (phase): the hinted program runs while the PMU
    sampler re-profiles it {e inside the simulator} and the cache
    hierarchy streams counter-delta windows. The {!Drift} detector
    scores each window; when hysteresis worth of consecutive windows
    drift (and the post-retune dwell guard is clear), the loop asks its
    circuit breaker for a retune slot and walks the degradation
    ladder:

    + {b retuned} — Eq. 1 re-solved from the live re-fit; the resulting
      hints address the {e rewritten} program and travel through the
      fingerprint remap path ({!Aptget_core.Pipeline.run_guarded} with
      remap) to reach a fresh build. Admitted only above the guard
      floor; a re-fit measuring below it is quarantined like any stale
      profile.
    + {b remapped} — the last-good hints document re-admitted through
      the same guarded remap path.
    + {b aj} — A&J's fixed-distance static injection (the guard's
      fallback when both documents fail the floor but A&J clears it).
    + {b pinned} — the unmodified baseline: hints are held but fully
      vetoed, so a later retune can still re-admit them.

    Every decision is a deterministic function of simulated evidence —
    the retune log is byte-identical across [--jobs 1/N] — and every
    supervised run sits under the watchdog's measure budget: a timed
    out retune keeps the current plan and charges the breaker. When
    re-profiling is unavailable (e.g. the PMU fault model eats every
    sample), the re-fit yields nothing and the ladder starts at the
    last-good document. *)

type config = {
  drift : Drift.config;
  window_cycles : int;  (** counter-window size (default 100_000) *)
  guard : Aptget_core.Pipeline.guard_config;
  watchdog : Aptget_core.Watchdog.config;
  breaker : Aptget_core.Breaker.config;  (** per-run retune breaker *)
  options : Aptget_profile.Profiler.options;
      (** sampler construction (periods, faults) and re-fit shaping *)
  machine : Aptget_machine.Machine.config;
}

val default_config : config

type plan =
  | Hinted of Aptget_profile.Hints_file.doc * Aptget_passes.Aptget_pass.hint list
  | Aj_static
  | Pinned of Aptget_profile.Hints_file.doc * Aptget_passes.Aptget_pass.hint list
      (** hints held but vetoed: the epoch runs the unmodified kernel *)

val plan_to_string : plan -> string
(** ["hints:<n>"], ["aj"] or ["pinned:<n>"]. *)

type action =
  | No_drift
  | Dwell_suppressed  (** verdict due, held by the dwell guard *)
  | Breaker_refused  (** verdict due, retune slot refused *)
  | No_candidate  (** nothing to evaluate: no re-fit, no last-good doc *)
  | Retuned of float  (** re-fit admitted, with its guarded speedup *)
  | Remapped of float  (** last-good doc re-admitted *)
  | Aj_fallback of float
  | Pinned_baseline of float
  | Retune_timed_out  (** watchdog fired mid-retune; plan kept *)

val action_to_string : action -> string

val rung_of_action : action -> (int * string) option
(** Ladder rung (0 = retuned .. 3 = pinned) of an executed retune;
    [None] for non-retune actions. *)

type segment_result = {
  s_index : int;
  s_workload : string;
  s_plan : string;
  s_epoch : Aptget_core.Pipeline.epoch;
  s_eval : Drift.epoch_eval;
  s_verdict : Drift.verdict;
  s_action : action;
  s_cycles : int;  (** application cycles of this epoch *)
  s_retune_cycles : int;
      (** simulator cycles spent on this segment's supervised guard
          runs (baseline, candidates, A&J) — the retune overhead *)
}

type report = {
  a_name : string;
  a_segments : segment_result list;
  a_retunes : int;  (** executed retunes (any rung) *)
  a_suppressed_dwell : int;
  a_suppressed_breaker : int;
  a_ladder : (string * int) list;  (** rung label -> count, top first *)
  a_app_cycles : int;
  a_retune_cycles : int;
  a_final_plan : string;
  a_log : string list;
      (** one deterministic line per segment (no wall-clock content):
          the artifact the CI drift-smoke job diffs across job counts *)
}

val iter_median : Aptget_profile.Profiler.t -> float option
(** Median iteration time of the profile's top delinquent load. *)

val reference_of_profile : Aptget_profile.Profiler.t -> Drift.reference
val plan_of_profile :
  options:Aptget_profile.Profiler.options -> Aptget_profile.Profiler.t -> plan

val prime : ?config:config -> Aptget_workloads.Workload.t -> Aptget_profile.Profiler.t
(** One-shot profile of the fused workload: the aging profile the loop
    starts from ({!plan_of_profile} / {!reference_of_profile}). *)

val run :
  ?config:config ->
  ?quarantine:Aptget_core.Quarantine.t ->
  ?crash:Aptget_store.Crash.t ->
  profile:Aptget_profile.Profiler.t ->
  name:string ->
  Aptget_workloads.Workload.t list ->
  report
(** Drive one epoch per segment, in order, starting from [profile]'s
    hints and evidence reference. [quarantine] persists guard verdicts
    across retunes; [crash] threads a deterministic kill plan through
    every supervised run. A segment that fails semantic verification
    raises [Failure] (the campaign runner treats it as a retryable
    trial failure). *)

val replicate : int -> Aptget_workloads.Workload.t -> Aptget_workloads.Workload.t list
(** [n] copies named ["<name>@<i>"] — segments for workloads without
    natural phases. *)

val render : report -> string
(** Human-readable summary: header, ladder counts, then {!a_log}. *)
