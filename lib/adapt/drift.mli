(** Drift detection: deciding that a profile has aged.

    Pure scoring over structured evidence, no simulation: the adaptive
    loop ({!Adapt}) feeds each epoch's counter windows and epoch-level
    re-fit summary through one [t], and gets back a {!verdict}. Every
    decision is a deterministic function of the evidence stream, so the
    retune log is byte-identical across [--jobs 1/N].

    Evidence channels, each normalised so [>= 1.0] means "drifted":
    - {b late} — {!Aptget_machine.Machine.late_prefetch_ratio} of a
      window's counter delta: prefetches landing after their demand
      load, the distance is too short;
    - {b early} — {!Aptget_machine.Machine.early_evict_ratio}:
      prefetched lines evicted before use, the distance is too long or
      the working set shifted;
    - {b useless} — {!Aptget_machine.Machine.useless_prefetch_ratio}:
      prefetches probing already-cached lines, the working set shrank
      into cache and the slice is pure overhead;
    - {b mpki} — relative jump of the window's LLC-miss MPKI against
      the reference taken when the current plan was adopted;
    - {b iter} — relative shift of the median iteration time observed
      by the concurrent sampler (epoch-grained, from the re-fit);
    - {b stale-hints} — the program's structural fingerprint no longer
      matches the hints (validation dropped some), scored as an
      immediate drift vote.

    A window is {e drifted} when its best component score reaches 1.0;
    [hysteresis] consecutive drifted windows raise a verdict. Epoch
    evidence joins as one virtual window that can extend — but never
    reset — the streak. After a retune, [min_dwell] epochs pass before
    another verdict may fire (suppressions are counted: the
    oscillation guard).

    The {e first} epoch after {!create} only calibrates: its windows
    establish the reference under the plan actually running (the
    priming profile's reference describes the unhinted program, which
    successful prefetching is supposed to change), and its verdict is
    always [Stable]. Every retune re-calibrates via {!note_retune}. *)

type config = {
  late_threshold : float;  (** late ratio scored as 1.0 (default 0.25) *)
  early_threshold : float;  (** early-evict ratio scored as 1.0 (0.25) *)
  useless_threshold : float;  (** useless ratio scored as 1.0 (0.85) *)
  mpki_jump : float;  (** relative MPKI delta scored as 1.0 (0.5) *)
  iter_jump : float;  (** relative iteration-time delta as 1.0 (0.75) *)
  hysteresis : int;  (** consecutive drifted windows per verdict (3) *)
  min_dwell : int;  (** verdict-free epochs after a retune (1) *)
  min_window_instructions : int;
      (** windows retiring fewer instructions are ignored (2000) *)
}

val default_config : config

type reference = {
  ref_mpki : float;  (** MPKI when the current plan was adopted *)
  ref_iter : float option;  (** median iteration time, when observed *)
}

type verdict = Stable | Drifted of { score : float; cause : string }

type epoch_eval = {
  ev_windows : int;  (** windows scored (above the instruction floor) *)
  ev_drifted : int;  (** of which drifted *)
  ev_score : float;  (** max component score seen this epoch *)
  ev_cause : string;  (** dominant component, ["-"] when none scored *)
  ev_streak : int;  (** current streak, carried across epochs *)
  ev_suppressed : bool;  (** verdict was due but the dwell guard held *)
}

type t

val create : ?config:config -> reference -> t
(** @raise Invalid_argument on non-positive thresholds, [hysteresis < 1]
    or [min_dwell < 0]. *)

val config : t -> config
val reference : t -> reference
val streak : t -> int

val calibrated : t -> bool
(** False until the first {!end_epoch} (or {!note_retune}). *)

val suppressed_total : t -> int
(** Verdicts held back by the dwell guard since {!create}. *)

val begin_epoch : t -> unit
val observe_window : t -> Aptget_machine.Machine.window_report -> unit

val end_epoch :
  t -> ?iter_median:float -> ?stale_hints:bool -> unit -> verdict * epoch_eval
(** Fold the epoch-grained evidence, tick the dwell clock, and rule. *)

val note_retune : t -> reference -> unit
(** A retune was executed (whether or not it improved the plan): adopt
    the new reference, clear the streak, arm the dwell guard. *)

val window_mpki : Aptget_machine.Machine.window_report -> float
(** LLC demand-miss MPKI of one window's delta. *)

val verdict_to_string : verdict -> string
(** ["stable"] or ["drift:<cause>"]. *)
