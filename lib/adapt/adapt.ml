module Pipeline = Aptget_core.Pipeline
module Watchdog = Aptget_core.Watchdog
module Breaker = Aptget_core.Breaker
module Quarantine = Aptget_core.Quarantine
module Machine = Aptget_machine.Machine
module Sampler = Aptget_pmu.Sampler
module Faults = Aptget_pmu.Faults
module Profiler = Aptget_profile.Profiler
module Hints_file = Aptget_profile.Hints_file
module Remap = Aptget_profile.Remap
module Aptget_pass = Aptget_passes.Aptget_pass
module Workload = Aptget_workloads.Workload
module Stats = Aptget_util.Stats
module Trace = Aptget_obs.Trace
module Metrics = Aptget_obs.Metrics
module Crash = Aptget_store.Crash

type config = {
  drift : Drift.config;
  window_cycles : int;
  guard : Pipeline.guard_config;
  watchdog : Watchdog.config;
  breaker : Breaker.config;
  options : Profiler.options;
  machine : Machine.config;
}

let default_config =
  {
    drift = Drift.default_config;
    window_cycles = 100_000;
    guard = Pipeline.default_guard;
    watchdog = Watchdog.default;
    breaker = Breaker.default_config;
    options = Profiler.default_options;
    machine = Machine.default_config;
  }

(* The plan is what the loop currently stands behind for the next
   epoch. [Hinted] and [Pinned] both carry the hints-file document they
   came from, so a later retune can re-admit it through the remap path;
   [Pinned] holds the hints without applying them (the injection pass
   sees them fully vetoed — distinct from [Aj_static], whose empty list
   takes the pass's Algorithm-2 static fallback). *)
type plan =
  | Hinted of Hints_file.doc * Aptget_pass.hint list
  | Aj_static
  | Pinned of Hints_file.doc * Aptget_pass.hint list

let plan_to_string = function
  | Hinted (_, hs) -> Printf.sprintf "hints:%d" (List.length hs)
  | Aj_static -> "aj"
  | Pinned (_, hs) -> Printf.sprintf "pinned:%d" (List.length hs)

type action =
  | No_drift
  | Dwell_suppressed
  | Breaker_refused
  | No_candidate
  | Retuned of float
  | Remapped of float
  | Aj_fallback of float
  | Pinned_baseline of float
  | Retune_timed_out

let action_to_string = function
  | No_drift -> "none"
  | Dwell_suppressed -> "dwell-suppressed"
  | Breaker_refused -> "breaker-refused"
  | No_candidate -> "no-candidate"
  | Retuned s -> Printf.sprintf "retuned:%.4f" s
  | Remapped s -> Printf.sprintf "remapped:%.4f" s
  | Aj_fallback s -> Printf.sprintf "aj:%.4f" s
  | Pinned_baseline s -> Printf.sprintf "pinned:%.4f" s
  | Retune_timed_out -> "timed-out"

(* Degradation-ladder rung of an executed retune, top first. *)
let rung_of_action = function
  | Retuned _ -> Some (0, "retuned")
  | Remapped _ -> Some (1, "remapped")
  | Aj_fallback _ -> Some (2, "aj")
  | Pinned_baseline _ -> Some (3, "pinned")
  | No_drift | Dwell_suppressed | Breaker_refused | No_candidate
  | Retune_timed_out ->
      None

let retune_ok = function Retuned _ | Remapped _ -> true | _ -> false

type segment_result = {
  s_index : int;  (** 1-based position in the segment list *)
  s_workload : string;
  s_plan : string;  (** plan the epoch ran under, rendered *)
  s_epoch : Pipeline.epoch;
  s_eval : Drift.epoch_eval;
  s_verdict : Drift.verdict;
  s_action : action;
  s_cycles : int;
  s_retune_cycles : int;
}

type report = {
  a_name : string;
  a_segments : segment_result list;
  a_retunes : int;
  a_suppressed_dwell : int;
  a_suppressed_breaker : int;
  a_ladder : (string * int) list;
  a_app_cycles : int;
  a_retune_cycles : int;
  a_final_plan : string;
  a_log : string list;
}

let iter_median (p : Profiler.t) =
  match p.Profiler.profiles with
  | lp :: _ when Array.length lp.Profiler.iteration_times > 0 ->
      Some (Stats.median lp.Profiler.iteration_times)
  | _ -> None

let reference_of_profile (p : Profiler.t) =
  {
    Drift.ref_mpki = Machine.mpki p.Profiler.baseline;
    ref_iter = iter_median p;
  }

let plan_of_profile ~options (p : Profiler.t) =
  match p.Profiler.hints with
  | [] -> Aj_static
  | hs -> Hinted (Profiler.to_doc ~options p, hs)

(* One retune: re-solve the model from the live re-fit and walk the
   degradation ladder through the regression guard. Returns the new
   plan, the action taken, the simulator cycles spent on supervised
   guard runs, and the measurement the adopted plan stands behind. *)
let retune cfg ?quarantine ?crash ~plan ~refit w =
  Trace.with_span ~name:"adapt.retune"
    ~attrs:[ ("workload", w.Workload.name) ]
  @@ fun () ->
  let cycles = ref 0 in
  (* Memoize guard runs by variant label within this retune: the
     baseline and A&J measurements are shared between the refit attempt
     and the last-good attempt (same segment, same build recipe). *)
  let cache : (string, Pipeline.measurement) Hashtbl.t = Hashtbl.create 8 in
  let measure_cache ~variant thunk =
    match Hashtbl.find_opt cache variant with
    | Some m -> m
    | None ->
        let m = thunk () in
        cycles := !cycles + m.Pipeline.outcome.Machine.cycles;
        Hashtbl.replace cache variant m;
        m
  in
  let guarded doc =
    Pipeline.run_guarded ~config:cfg.machine ~guard:cfg.guard ?quarantine
      ~remap:Remap.default_config ~watchdog:cfg.watchdog ?crash ~measure_cache
      ~doc w
  in
  let last_doc =
    match plan with Hinted (d, _) | Pinned (d, _) -> Some d | Aj_static -> None
  in
  let refit_doc =
    match refit with
    | Some (p : Profiler.t) when p.Profiler.hints <> [] ->
        Some (Profiler.to_doc ~options:cfg.options p)
    | _ -> None
  in
  let descend (g : Pipeline.guarded) ~doc =
    let fallback =
      match g.Pipeline.g_outcome with
      | Pipeline.Quarantined { fallback; _ } | Pipeline.Known_bad { fallback; _ }
        ->
          fallback
      | Pipeline.Admitted -> assert false
    in
    if fallback = "static Ainsworth & Jones injection" then
      (Aj_static, Aj_fallback g.Pipeline.g_speedup)
    else
      let hold = Option.value last_doc ~default:doc in
      ( Pinned (hold, Hints_file.hints_of_doc hold),
        Pinned_baseline g.Pipeline.g_speedup )
  in
  try
    let attempts =
      (match refit_doc with Some d -> [ (`Refit, d) ] | None -> [])
      @ match last_doc with Some d -> [ (`Last, d) ] | None -> []
    in
    match attempts with
    | [] -> (plan, No_candidate, !cycles, None)
    | first :: rest ->
        let rec go (kind, doc) rest =
          let g = guarded doc in
          match g.Pipeline.g_outcome with
          | Pipeline.Admitted ->
              let act =
                match kind with
                | `Refit -> Retuned g.Pipeline.g_speedup
                | `Last -> Remapped g.Pipeline.g_speedup
              in
              ( Hinted (doc, g.Pipeline.g_hints),
                act,
                !cycles,
                Some g.Pipeline.g_final )
          | _ -> (
              match rest with
              | next :: rest' -> go next rest'
              | [] ->
                  let plan', act = descend g ~doc in
                  (plan', act, !cycles, Some g.Pipeline.g_final))
        in
        go first rest
  with Watchdog.Timed_out _ -> (plan, Retune_timed_out, !cycles, None)

let log_line (s : segment_result) =
  Printf.sprintf
    "segment=%d workload=%s plan=%s windows=%d drifted=%d score=%.4f \
     streak=%d verdict=%s action=%s cycles=%d retune_cycles=%d"
    s.s_index s.s_workload s.s_plan s.s_eval.Drift.ev_windows
    s.s_eval.Drift.ev_drifted s.s_eval.Drift.ev_score
    s.s_eval.Drift.ev_streak
    (Drift.verdict_to_string s.s_verdict)
    (action_to_string s.s_action) s.s_cycles s.s_retune_cycles

let run ?(config = default_config) ?quarantine ?crash ~profile ~name segments =
  Trace.with_span ~name:"adapt.run" ~attrs:[ ("workload", name) ]
  @@ fun () ->
  let cfg = config in
  let det = Drift.create ~config:cfg.drift (reference_of_profile profile) in
  let breaker = Breaker.create ~config:cfg.breaker () in
  let faults =
    if Faults.enabled cfg.options.Profiler.faults then
      Some (Faults.create cfg.options.Profiler.faults)
    else None
  in
  let sampler =
    Sampler.create ~lbr_period:cfg.options.Profiler.lbr_period
      ~pebs_period:cfg.options.Profiler.pebs_period ?faults ()
  in
  let plan = ref (plan_of_profile ~options:cfg.options profile) in
  let results = ref [] in
  List.iteri
    (fun i w ->
      let idx = i + 1 in
      Trace.with_span ~name:"adapt.segment"
        ~attrs:
          [ ("workload", w.Workload.name); ("index", string_of_int idx) ]
      @@ fun () ->
      let hints_arg, veto =
        match !plan with
        | Hinted (_, hs) -> (hs, None)
        | Aj_static -> ([], None)
        | Pinned (_, hs) ->
            (hs, Some (fun _ -> Some "adapt: plan pinned to baseline"))
      in
      let plan_used = plan_to_string !plan in
      Drift.begin_epoch det;
      let epoch =
        Pipeline.run_adaptive ~config:cfg.machine ~watchdog:cfg.watchdog
          ?crash ~options:cfg.options ~sampler
          ~window_cycles:cfg.window_cycles ?veto ~hints:hints_arg w
      in
      (match epoch.Pipeline.e_measurement.Pipeline.verified with
      | Ok () -> ()
      | Error e ->
          failwith
            (Printf.sprintf "adapt: segment %s failed verification: %s"
               w.Workload.name e));
      List.iter (Drift.observe_window det) epoch.Pipeline.e_windows;
      let iter_med = Option.bind epoch.Pipeline.e_refit iter_median in
      let stale =
        match !plan with
        | Hinted _ -> epoch.Pipeline.e_hints_dropped <> []
        | _ -> false
      in
      let verdict, eval =
        Drift.end_epoch det ?iter_median:iter_med ~stale_hints:stale ()
      in
      let epoch_reference =
        {
          Drift.ref_mpki =
            Machine.mpki epoch.Pipeline.e_measurement.Pipeline.outcome;
          ref_iter = iter_med;
        }
      in
      let action, retune_cycles =
        match verdict with
        | Drift.Stable ->
            ((if eval.Drift.ev_suppressed then Dwell_suppressed else No_drift), 0)
        | Drift.Drifted _ -> (
            match Breaker.acquire breaker with
            | Breaker.Refuse _ -> (Breaker_refused, 0)
            | Breaker.Run | Breaker.Probe ->
                let plan', act, cycles, final =
                  retune cfg ?quarantine ?crash ~plan:!plan
                    ~refit:epoch.Pipeline.e_refit w
                in
                Breaker.record breaker ~ok:(retune_ok act);
                plan := plan';
                (* Re-anchor the detector on whatever the loop now
                   stands behind — for held plans (no candidate, timed
                   out), on the drifted phase's own evidence, so a
                   persistent new normal stops re-firing and the
                   breaker is not pumped forever. *)
                let reference' =
                  match final with
                  | Some m ->
                      {
                        Drift.ref_mpki = Machine.mpki m.Pipeline.outcome;
                        ref_iter = iter_med;
                      }
                  | None -> epoch_reference
                in
                Drift.note_retune det reference';
                (act, cycles))
      in
      Metrics.incr "adapt.segments";
      Metrics.set_gauge "adapt.drift.score" eval.Drift.ev_score;
      (match verdict with
      | Drift.Drifted _ -> Metrics.incr "adapt.verdicts"
      | Drift.Stable -> ());
      (match action with
      | Dwell_suppressed -> Metrics.incr "adapt.suppressed.dwell"
      | Breaker_refused -> Metrics.incr "adapt.suppressed.breaker"
      | _ -> ());
      (match rung_of_action action with
      | Some (rung, _) ->
          Metrics.incr "adapt.retunes";
          Metrics.set_gauge "adapt.ladder.rung" (float_of_int rung)
      | None -> ());
      let s =
        {
          s_index = idx;
          s_workload = w.Workload.name;
          s_plan = plan_used;
          s_epoch = epoch;
          s_eval = eval;
          s_verdict = verdict;
          s_action = action;
          s_cycles =
            epoch.Pipeline.e_measurement.Pipeline.outcome.Machine.cycles;
          s_retune_cycles = retune_cycles;
        }
      in
      results := s :: !results)
    segments;
  let segments = List.rev !results in
  let count f = List.length (List.filter f segments) in
  let ladder =
    List.filter_map
      (fun (_, label) ->
        let n =
          count (fun s ->
              match rung_of_action s.s_action with
              | Some (_, l) -> l = label
              | None -> false)
        in
        if n > 0 then Some (label, n) else None)
      [ ((), "retuned"); ((), "remapped"); ((), "aj"); ((), "pinned") ]
  in
  {
    a_name = name;
    a_segments = segments;
    a_retunes =
      count (fun s -> rung_of_action s.s_action <> None);
    a_suppressed_dwell = count (fun s -> s.s_action = Dwell_suppressed);
    a_suppressed_breaker = count (fun s -> s.s_action = Breaker_refused);
    a_ladder = ladder;
    a_app_cycles = List.fold_left (fun acc s -> acc + s.s_cycles) 0 segments;
    a_retune_cycles =
      List.fold_left (fun acc s -> acc + s.s_retune_cycles) 0 segments;
    a_final_plan = plan_to_string !plan;
    a_log = List.map log_line segments;
  }

let prime ?(config = default_config) (w : Workload.t) =
  Pipeline.profile ~options:config.options w

let replicate n (w : Workload.t) =
  if n < 1 then invalid_arg "Adapt.replicate: n must be >= 1";
  List.init n (fun i ->
      { w with Workload.name = Printf.sprintf "%s@%d" w.Workload.name (i + 1) })

let render (r : report) =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf
       "online %s: segments=%d retunes=%d dwell-suppressed=%d \
        breaker-suppressed=%d app_cycles=%d retune_cycles=%d final=%s\n"
       r.a_name
       (List.length r.a_segments)
       r.a_retunes r.a_suppressed_dwell r.a_suppressed_breaker r.a_app_cycles
       r.a_retune_cycles r.a_final_plan);
  (match r.a_ladder with
  | [] -> ()
  | l ->
      Buffer.add_string b
        ("ladder: "
        ^ String.concat " "
            (List.map (fun (label, n) -> Printf.sprintf "%s=%d" label n) l)
        ^ "\n"));
  List.iter (fun line -> Buffer.add_string b (line ^ "\n")) r.a_log;
  Buffer.contents b
