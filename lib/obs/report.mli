(** Per-stage breakdown of a trace.

    [obs-report] feeds a parsed NDJSON trace through this module to
    answer "where did the time go": one row per span name, aggregated
    over every occurrence, with wall totals, share of root wall time,
    and simulated-cycle totals where stamped. *)

type row = {
  r_name : string;
  r_count : int;
  r_wall_s : float;  (** summed over occurrences *)
  r_share : float;  (** [r_wall_s] / total root wall, 0 if no root wall *)
  r_cycles : int;  (** summed stamped cycles, 0 when never stamped *)
  r_depth : int;  (** minimum depth the name occurs at *)
}

val rows : Trace.span list -> row list
(** Aggregate rows sorted by descending wall total, name as
    tie-break. *)

val root_wall : Trace.span list -> float
(** Summed wall seconds of root spans (depth 0). *)

val stage_wall : Trace.span list -> float
(** Summed wall seconds of depth-1 spans — the per-stage total the
    acceptance bound compares against root wall. *)

val coverage : Trace.span list -> float
(** [stage_wall / root_wall]; 0 when there is no root wall. A pipeline
    whose stages are all instrumented covers ~1.0 of its root span. *)

val table : Trace.span list -> Aptget_util.Table.t
(** Render {!rows} as a table, with a final [total (roots)] row. *)

val render : Trace.span list -> string
(** {!table} rendered, plus a coverage summary line. *)
