(** Deterministic tracing spans.

    A span is a named, attributed interval of work. Spans nest: a span
    opened while another is live on the same domain becomes its child,
    so a trace reconstructs the stage structure of a run (profile →
    peak-fit → distance-solve, inject, measure, …). Wall times come
    from the {!Aptget_util.Clock} seam; simulated work additionally
    stamps its span with simulated cycles via {!set_cycles}.

    Tracing is {b off by default} and {!with_span} is a plain function
    call in that state, so untraced runs are bit-identical to the
    pre-tracing code. Spans are buffered {e per domain}: concurrent
    [--jobs N] runs never interleave within a buffer, and the exporter
    orders root spans by their structural content (name, attributes,
    cycle stamps, subtree — never wall times), so traces are
    deterministic across job counts modulo wall timestamps.

    Export is NDJSON: one span object per line, ids pre-order within
    the deterministic order, children referencing their parent id. *)

type span = {
  id : int;  (** 1-based, pre-order in the deterministic export order *)
  parent : int option;  (** [None] for root spans *)
  depth : int;  (** 0 for roots *)
  name : string;
  attrs : (string * string) list;
  wall_start : float;  (** {!Aptget_util.Clock} stamp at open *)
  wall_s : float;  (** wall seconds between open and close *)
  cycles : int option;  (** simulated cycles, when stamped *)
}

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val reset : unit -> unit
(** Drop every buffered span (all domains). *)

val with_span : name:string -> ?attrs:(string * string) list -> (unit -> 'a) -> 'a
(** [with_span ~name f] runs [f] inside a span. When tracing is
    disabled this is exactly [f ()]. Exceptions close the span and
    propagate. *)

val add_attr : string -> string -> unit
(** Attach [key = value] to the innermost live span on this domain, if
    any. No-op when tracing is disabled. *)

val set_cycles : int -> unit
(** Stamp the innermost live span on this domain with a simulated-cycle
    count. No-op when tracing is disabled. *)

val spans : unit -> span list
(** Snapshot of all {e closed} root trees, flattened pre-order in the
    deterministic export order, with ids assigned. *)

val strip_wall : span -> span
(** The span with its wall fields zeroed — the part of a span that must
    be identical across [--jobs] counts. *)

val to_ndjson : unit -> string
(** {!spans} rendered one JSON object per line. *)

val export : path:string -> unit
(** Write {!to_ndjson} to [path] atomically (temp + rename). *)

val span_to_line : span -> string

val json_escape : string -> string
(** JSON string-body escaping (quotes, backslash, control chars). *)

val parse_line : string -> (span, string) result
(** Re-parse one NDJSON line. *)

val parse : string -> (span list, string) result
(** Re-parse a whole NDJSON document; blank lines are skipped. Fails on
    the first malformed line with its line number. *)

val load : path:string -> (span list, string) result
