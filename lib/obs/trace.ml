module Clock = Aptget_util.Clock
module Atomic_file = Aptget_store.Atomic_file

type span = {
  id : int;
  parent : int option;
  depth : int;
  name : string;
  attrs : (string * string) list;
  wall_start : float;
  wall_s : float;
  cycles : int option;
}

(* Live (unexported) spans. Children are accumulated reversed; the
   chronological order is recovered at export time. *)
type node = {
  n_name : string;
  mutable n_attrs : (string * string) list;
  mutable n_cycles : int option;
  n_start : float;
  mutable n_stop : float;
  mutable n_children : node list;
}

(* One buffer per domain: only the owning domain pushes/pops its stack
   or appends to its roots, so no lock is needed beyond the registry
   lookup. Workers from different [--jobs] runs therefore never
   interleave their spans. *)
type dstate = { mutable stack : node list; mutable roots : node list }

let on = Atomic.make false
let lock = Mutex.create ()
let domains : (int, dstate) Hashtbl.t = Hashtbl.create 8

let enabled () = Atomic.get on
let enable () = Atomic.set on true
let disable () = Atomic.set on false

let reset () =
  Mutex.lock lock;
  Hashtbl.reset domains;
  Mutex.unlock lock

let state () =
  let id = (Domain.self () :> int) in
  Mutex.lock lock;
  let s =
    match Hashtbl.find_opt domains id with
    | Some s -> s
    | None ->
      let s = { stack = []; roots = [] } in
      Hashtbl.add domains id s;
      s
  in
  Mutex.unlock lock;
  s

let with_span ~name ?(attrs = []) f =
  if not (Atomic.get on) then f ()
  else begin
    let s = state () in
    let node =
      {
        n_name = name;
        n_attrs = attrs;
        n_cycles = None;
        n_start = Clock.now ();
        n_stop = 0.;
        n_children = [];
      }
    in
    s.stack <- node :: s.stack;
    let finish () =
      node.n_stop <- Clock.now ();
      match s.stack with
      | top :: rest when top == node ->
        s.stack <- rest;
        (match rest with
        | parent :: _ -> parent.n_children <- node :: parent.n_children
        | [] -> s.roots <- node :: s.roots)
      | _ ->
        (* Unbalanced close (tracing toggled mid-span): salvage the
           span as a root rather than corrupting the stack. *)
        s.stack <- List.filter (fun n -> n != node) s.stack;
        s.roots <- node :: s.roots
    in
    Fun.protect ~finally:finish f
  end

let current () =
  if not (Atomic.get on) then None
  else match (state ()).stack with top :: _ -> Some top | [] -> None

let add_attr k v =
  match current () with
  | Some top -> top.n_attrs <- top.n_attrs @ [ (k, v) ]
  | None -> ()

let set_cycles c =
  match current () with Some top -> top.n_cycles <- Some c | None -> ()

(* ------------------------------------------------------------------ *)
(* Deterministic export order                                          *)
(* ------------------------------------------------------------------ *)

(* Structural key of a subtree: everything but wall times and ids. Two
   runs of the same deterministic work produce identical keys no matter
   which domain executed them, so sorting roots by key makes the export
   order independent of the job count and of scheduling. Roots with
   equal keys render to identical lines (modulo wall stamps), so ties
   cannot make the output diverge either. *)
let rec key_of_node buf n =
  Buffer.add_string buf n.n_name;
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf '\x01';
      Buffer.add_string buf k;
      Buffer.add_char buf '=';
      Buffer.add_string buf v)
    n.n_attrs;
  (match n.n_cycles with
  | None -> ()
  | Some c ->
    Buffer.add_char buf '\x02';
    Buffer.add_string buf (string_of_int c));
  Buffer.add_char buf '[';
  List.iter
    (fun c ->
      key_of_node buf c;
      Buffer.add_char buf ';')
    (List.rev n.n_children);
  Buffer.add_char buf ']'

let snapshot_roots () =
  Mutex.lock lock;
  let roots =
    Hashtbl.fold (fun _ s acc -> List.rev_append s.roots acc) domains []
  in
  Mutex.unlock lock;
  roots

let spans () =
  let keyed =
    List.map
      (fun n ->
        let b = Buffer.create 128 in
        key_of_node b n;
        (Buffer.contents b, n))
      (snapshot_roots ())
  in
  let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) keyed in
  let out = ref [] in
  let next = ref 0 in
  let rec emit parent depth n =
    incr next;
    let id = !next in
    out :=
      {
        id;
        parent;
        depth;
        name = n.n_name;
        attrs = n.n_attrs;
        wall_start = n.n_start;
        wall_s = n.n_stop -. n.n_start;
        cycles = n.n_cycles;
      }
      :: !out;
    List.iter (emit (Some id) (depth + 1)) (List.rev n.n_children)
  in
  List.iter (fun (_, n) -> emit None 0 n) sorted;
  List.rev !out

let strip_wall s = { s with wall_start = 0.; wall_s = 0. }

(* ------------------------------------------------------------------ *)
(* NDJSON rendering                                                    *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let span_to_line s =
  let attrs =
    String.concat ","
      (List.map
         (fun (k, v) ->
           Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
         s.attrs)
  in
  Printf.sprintf
    "{\"id\":%d,\"parent\":%s,\"depth\":%d,\"name\":\"%s\",\"wall_start\":%.6f,\"wall_s\":%.6f,\"cycles\":%s,\"attrs\":{%s}}"
    s.id
    (match s.parent with None -> "null" | Some p -> string_of_int p)
    s.depth (json_escape s.name) s.wall_start s.wall_s
    (match s.cycles with None -> "null" | Some c -> string_of_int c)
    attrs

let to_ndjson () =
  match spans () with
  | [] -> ""
  | ss -> String.concat "\n" (List.map span_to_line ss) ^ "\n"

let export ~path = Atomic_file.write ~path (to_ndjson ())

(* ------------------------------------------------------------------ *)
(* Minimal JSON parsing (exactly the subset the renderer emits)        *)
(* ------------------------------------------------------------------ *)

type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jobj of (string * json) list
  | Jarr of json list

exception Bad_json of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ lit)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else begin
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents b
        | '\\' -> (
          if !pos >= n then fail "dangling escape"
          else
            let e = s.[!pos] in
            advance ();
            match e with
            | '"' -> Buffer.add_char b '"'; go ()
            | '\\' -> Buffer.add_char b '\\'; go ()
            | '/' -> Buffer.add_char b '/'; go ()
            | 'n' -> Buffer.add_char b '\n'; go ()
            | 't' -> Buffer.add_char b '\t'; go ()
            | 'r' -> Buffer.add_char b '\r'; go ()
            | 'b' -> Buffer.add_char b '\b'; go ()
            | 'f' -> Buffer.add_char b '\012'; go ()
            | 'u' ->
              if !pos + 4 > n then fail "short \\u escape"
              else begin
                let hex = String.sub s !pos 4 in
                pos := !pos + 4;
                (match int_of_string_opt ("0x" ^ hex) with
                | Some code when code < 0x80 -> Buffer.add_char b (Char.chr code)
                | Some _ -> Buffer.add_char b '?' (* non-ASCII: not emitted by us *)
                | None -> fail "bad \\u escape");
                go ()
              end
            | _ -> fail "bad escape")
        | c -> Buffer.add_char b c; go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected number"
    else
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Jstr (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Jobj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> fail "expected , or }"
        in
        members ();
        Jobj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Jarr []
      end
      else begin
        let items = ref [] in
        let rec elems () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elems ()
          | Some ']' -> advance ()
          | _ -> fail "expected , or ]"
        in
        elems ();
        Jarr (List.rev !items)
      end
    | Some 't' -> literal "true" (Jbool true)
    | Some 'f' -> literal "false" (Jbool false)
    | Some 'n' -> literal "null" Jnull
    | Some _ -> Jnum (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse_line line =
  match parse_json line with
  | exception Bad_json e -> Error e
  | Jobj fields -> (
    let field k = List.assoc_opt k fields in
    let int_field k =
      match field k with
      | Some (Jnum f) when Float.is_integer f -> Some (int_of_float f)
      | _ -> None
    in
    let opt_int_field k =
      match field k with
      | Some Jnull -> Some None
      | Some (Jnum f) when Float.is_integer f -> Some (Some (int_of_float f))
      | _ -> None
    in
    let num_field k =
      match field k with Some (Jnum f) -> Some f | _ -> None
    in
    let str_field k =
      match field k with Some (Jstr s) -> Some s | _ -> None
    in
    let attrs_field () =
      match field "attrs" with
      | Some (Jobj kvs) ->
        let rec go acc = function
          | [] -> Some (List.rev acc)
          | (k, Jstr v) :: rest -> go ((k, v) :: acc) rest
          | _ -> None
        in
        go [] kvs
      | _ -> None
    in
    match
      ( int_field "id",
        opt_int_field "parent",
        int_field "depth",
        str_field "name",
        num_field "wall_start",
        num_field "wall_s",
        opt_int_field "cycles",
        attrs_field () )
    with
    | ( Some id,
        Some parent,
        Some depth,
        Some name,
        Some wall_start,
        Some wall_s,
        Some cycles,
        Some attrs ) ->
      Ok { id; parent; depth; name; attrs; wall_start; wall_s; cycles }
    | _ -> Error "missing or ill-typed span field")
  | _ -> Error "span line is not a JSON object"

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      if String.trim line = "" then go acc (lineno + 1) rest
      else (
        match parse_line line with
        | Ok s -> go (s :: acc) (lineno + 1) rest
        | Error e -> Error (Printf.sprintf "line %d: %s" lineno e))
  in
  go [] 1 lines

let load ~path =
  match Atomic_file.read ~path with
  | Error e -> Error e
  | Ok text -> parse text
