module Atomic_file = Aptget_store.Atomic_file

type hist = { count : int; sum : float; min : float; max : float }

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  hists : (string * hist) list;
}

type hist_cell = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type cell = Counter of int ref | Hist of hist_cell

(* Each shard is written only by its owning domain; the registry mutex
   guards shard creation, the gauge table, and flush-time snapshots
   (which in practice run after worker domains have joined). *)
type shard = (string, cell) Hashtbl.t

let on = Atomic.make false
let lock = Mutex.create ()
let shards : (int, shard) Hashtbl.t = Hashtbl.create 8
let gauges : (string, float) Hashtbl.t = Hashtbl.create 16

let enabled () = Atomic.get on
let enable () = Atomic.set on true
let disable () = Atomic.set on false

let reset () =
  Mutex.lock lock;
  Hashtbl.reset shards;
  Hashtbl.reset gauges;
  Mutex.unlock lock

let shard () =
  let id = (Domain.self () :> int) in
  Mutex.lock lock;
  let s =
    match Hashtbl.find_opt shards id with
    | Some s -> s
    | None ->
      let s = Hashtbl.create 16 in
      Hashtbl.add shards id s;
      s
  in
  Mutex.unlock lock;
  s

let incr ?(by = 1) name =
  if Atomic.get on then begin
    let s = shard () in
    match Hashtbl.find_opt s name with
    | Some (Counter r) -> r := !r + by
    | Some (Hist _) -> ()
    | None -> Hashtbl.add s name (Counter (ref by))
  end

let set_gauge name v =
  if Atomic.get on then begin
    Mutex.lock lock;
    Hashtbl.replace gauges name v;
    Mutex.unlock lock
  end

let observe name v =
  if Atomic.get on then begin
    let s = shard () in
    match Hashtbl.find_opt s name with
    | Some (Hist h) ->
      h.h_count <- h.h_count + 1;
      h.h_sum <- h.h_sum +. v;
      if v < h.h_min then h.h_min <- v;
      if v > h.h_max then h.h_max <- v
    | Some (Counter _) -> ()
    | None ->
      Hashtbl.add s name
        (Hist { h_count = 1; h_sum = v; h_min = v; h_max = v })
  end

let hist_of_value v = { count = 1; sum = v; min = v; max = v }

let merge_hist a b =
  {
    count = a.count + b.count;
    sum = a.sum +. b.sum;
    min = Float.min a.min b.min;
    max = Float.max a.max b.max;
  }

let snapshot () =
  Mutex.lock lock;
  let shard_list = Hashtbl.fold (fun _ s acc -> s :: acc) shards [] in
  let gauge_list = Hashtbl.fold (fun k v acc -> (k, v) :: acc) gauges [] in
  Mutex.unlock lock;
  let counters : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let hists : (string, hist) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun s ->
      Hashtbl.iter
        (fun name cell ->
          match cell with
          | Counter r ->
            let prev = Option.value ~default:0 (Hashtbl.find_opt counters name) in
            Hashtbl.replace counters name (prev + !r)
          | Hist h ->
            let here =
              { count = h.h_count; sum = h.h_sum; min = h.h_min; max = h.h_max }
            in
            let merged =
              match Hashtbl.find_opt hists name with
              | Some prev -> merge_hist prev here
              | None -> here
            in
            Hashtbl.replace hists name merged)
        s)
    shard_list;
  let by_name (a, _) (b, _) = String.compare a b in
  {
    counters =
      List.sort by_name (Hashtbl.fold (fun k v a -> (k, v) :: a) counters []);
    gauges = List.sort by_name gauge_list;
    hists = List.sort by_name (Hashtbl.fold (fun k v a -> (k, v) :: a) hists []);
  }

let dump () =
  let snap = snapshot () in
  let b = Buffer.create 256 in
  if snap.counters <> [] then begin
    Buffer.add_string b "# counters\n";
    List.iter
      (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s %d\n" k v))
      snap.counters
  end;
  if snap.gauges <> [] then begin
    Buffer.add_string b "# gauges\n";
    List.iter
      (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s %.6f\n" k v))
      snap.gauges
  end;
  if snap.hists <> [] then begin
    Buffer.add_string b "# histograms\n";
    List.iter
      (fun (k, h) ->
        Buffer.add_string b
          (Printf.sprintf "%s count=%d sum=%.6f min=%.6f max=%.6f mean=%.6f\n"
             k h.count h.sum h.min h.max
             (if h.count = 0 then 0. else h.sum /. float_of_int h.count)))
      snap.hists
  end;
  Buffer.contents b

let dump_json () =
  let snap = snapshot () in
  let b = Buffer.create 256 in
  let esc = Trace.json_escape in
  Buffer.add_string b "{\"counters\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%d" (esc k) v))
    snap.counters;
  Buffer.add_string b "},\"gauges\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%.6f" (esc k) v))
    snap.gauges;
  Buffer.add_string b "},\"histograms\":{";
  List.iteri
    (fun i (k, h) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "\"%s\":{\"count\":%d,\"sum\":%.6f,\"min\":%.6f,\"max\":%.6f}"
           (esc k) h.count h.sum h.min h.max))
    snap.hists;
  Buffer.add_string b "}}";
  Buffer.add_char b '\n';
  Buffer.contents b

let export ~path =
  let text =
    if Filename.check_suffix path ".json" then dump_json () else dump ()
  in
  Atomic_file.write ~path text
