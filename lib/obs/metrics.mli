(** Process-wide metrics registry: counters, gauges, histograms.

    Counters and histograms are sharded per domain — each domain writes
    only its own shard, so [--jobs N] batches record without contention
    — and the shards are merged at flush time. Counter merge is
    addition and histogram merge is the pointwise {!merge_hist}, both
    associative and commutative, so the merged totals are independent
    of domain scheduling. Gauges are last-write-wins and live in a
    single mutex-guarded table.

    The registry is {b off by default}: while disabled, {!incr},
    {!set_gauge} and {!observe} return without registering anything, so
    untraced runs carry no metric state at all. Dumps are sorted by
    metric name and therefore stable. *)

type hist = { count : int; sum : float; min : float; max : float }

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  hists : (string * hist) list;
}
(** Merged view across all domain shards; each section sorted by
    name. *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val reset : unit -> unit
(** Drop every shard and gauge. *)

val incr : ?by:int -> string -> unit
(** Add [by] (default 1) to a counter in this domain's shard. No-op
    while disabled. *)

val set_gauge : string -> float -> unit
(** Last-write-wins. No-op while disabled. *)

val observe : string -> float -> unit
(** Record one observation into a histogram in this domain's shard.
    No-op while disabled. *)

val hist_of_value : float -> hist
(** A single-observation histogram. *)

val merge_hist : hist -> hist -> hist
(** Pointwise merge: counts and sums add, bounds widen. Associative and
    commutative with {!hist_of_value} as generator. *)

val snapshot : unit -> snapshot

val dump : unit -> string
(** Stable sorted plain-text rendering of {!snapshot}. *)

val dump_json : unit -> string
(** Stable sorted single-line JSON rendering of {!snapshot}. *)

val export : path:string -> unit
(** Write atomically to [path]: {!dump_json} when [path] ends in
    [.json], {!dump} otherwise. *)
