let enable_tracing () = Trace.enable ()

let enable_metrics () =
  Metrics.enable ();
  Aptget_util.Pool.set_monitor
    (Some
       {
         on_task =
           (fun ~wait_s ~run_s ~helper ->
             Metrics.incr "pool.tasks";
             if helper then Metrics.incr "pool.helped";
             Metrics.observe "pool.queue_wait_s" wait_s;
             Metrics.observe "pool.run_s" run_s);
         on_batch =
           (fun ~queued ~jobs ->
             Metrics.incr "pool.batches";
             Metrics.set_gauge "pool.queue_depth" (float_of_int queued);
             Metrics.set_gauge "pool.jobs" (float_of_int jobs));
       })

let install ?trace ?metrics () =
  (match trace with
  | Some path ->
    enable_tracing ();
    at_exit (fun () -> Trace.export ~path)
  | None -> ());
  match metrics with
  | Some path ->
    enable_metrics ();
    at_exit (fun () -> Metrics.export ~path)
  | None -> ()
