module Table = Aptget_util.Table

type row = {
  r_name : string;
  r_count : int;
  r_wall_s : float;
  r_share : float;
  r_cycles : int;
  r_depth : int;
}

let root_wall spans =
  List.fold_left
    (fun acc (s : Trace.span) -> if s.depth = 0 then acc +. s.wall_s else acc)
    0. spans

let stage_wall spans =
  List.fold_left
    (fun acc (s : Trace.span) -> if s.depth = 1 then acc +. s.wall_s else acc)
    0. spans

let coverage spans =
  let root = root_wall spans in
  if root <= 0. then 0. else stage_wall spans /. root

let rows spans =
  let total = root_wall spans in
  let acc : (string, row) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (s : Trace.span) ->
      let prev =
        match Hashtbl.find_opt acc s.name with
        | Some r -> r
        | None ->
          {
            r_name = s.name;
            r_count = 0;
            r_wall_s = 0.;
            r_share = 0.;
            r_cycles = 0;
            r_depth = s.depth;
          }
      in
      Hashtbl.replace acc s.name
        {
          prev with
          r_count = prev.r_count + 1;
          r_wall_s = prev.r_wall_s +. s.wall_s;
          r_cycles = prev.r_cycles + Option.value ~default:0 s.cycles;
          r_depth = min prev.r_depth s.depth;
        })
    spans;
  let rows = Hashtbl.fold (fun _ r l -> r :: l) acc [] in
  let rows =
    List.map
      (fun r ->
        { r with r_share = (if total <= 0. then 0. else r.r_wall_s /. total) })
      rows
  in
  List.sort
    (fun a b ->
      match Float.compare b.r_wall_s a.r_wall_s with
      | 0 -> String.compare a.r_name b.r_name
      | c -> c)
    rows

let table spans =
  let t =
    Table.create ~title:"Trace breakdown (per span name)"
      ~header:[ "span"; "depth"; "count"; "wall_s"; "share"; "cycles" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.r_name;
          string_of_int r.r_depth;
          string_of_int r.r_count;
          Table.fmt_float ~decimals:6 r.r_wall_s;
          Table.fmt_pct r.r_share;
          (if r.r_cycles = 0 then "-" else string_of_int r.r_cycles);
        ])
    (rows spans);
  let n_roots =
    List.length (List.filter (fun (s : Trace.span) -> s.depth = 0) spans)
  in
  Table.add_row t
    [
      "total (roots)";
      "0";
      string_of_int n_roots;
      Table.fmt_float ~decimals:6 (root_wall spans);
      Table.fmt_pct 1.0;
      "-";
    ];
  t

let render spans =
  Printf.sprintf "%s\nstage coverage: %s of %s s root wall\n"
    (Table.render (table spans))
    (Table.fmt_pct (coverage spans))
    (Table.fmt_float ~decimals:6 (root_wall spans))
