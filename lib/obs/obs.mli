(** Front door for the observability layer.

    The CLI surfaces ([bin/aptget], [bench/main]) call {!install} once
    with the [--trace] / [--metrics] paths; everything below the CLI
    only ever talks to {!Trace} / {!Metrics} directly (both of which
    are no-ops until enabled here). *)

val enable_tracing : unit -> unit
(** Turn span collection on. *)

val enable_metrics : unit -> unit
(** Turn the metrics registry on and install the {!Aptget_util.Pool}
    monitor so queued tasks report queue-wait/run-time/help counters. *)

val install : ?trace:string -> ?metrics:string -> unit -> unit
(** Enable the subsystems whose sidecar path is given and register
    [at_exit] exporters writing to those paths (atomic temp+rename), so
    traces survive early [exit] paths like campaign status codes. No-op
    when both are [None]. *)
