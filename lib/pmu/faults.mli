(** Fault injection for the simulated PMU.

    Real PEBS/LBR profiles are noisy in ways our clean simulation is
    not: samples are lost when the kernel throttles the PMU, LBR cycle
    stamps jitter, the ring is partially overwritten between the PMI
    and the read-out, and PEBS attributes a miss to a PC a few
    instructions away from the faulting load ("skid"). This module is a
    seeded, configurable model of those effects, consumed by
    {!Sampler}. With {!none} (every knob at zero) the sampler's
    behaviour is bit-identical to an un-faulted one. *)

type config = {
  seed : int;  (** seed for the fault schedule's private {!Aptget_util.Rng} *)
  lbr_drop_rate : float;
      (** probability that a due LBR snapshot is lost entirely *)
  cycle_jitter : int;
      (** LBR cycle stamps are perturbed by a uniform offset in
          [-jitter, +jitter] at record time; 0 disables *)
  lbr_truncate_rate : float;
      (** probability that a snapshot only captures a suffix of the
          ring (partial overwrite between PMI and read-out) *)
  pebs_skid_rate : float;
      (** probability that a PEBS sample is attributed to a
          neighbouring PC instead of the faulting load *)
  pebs_skid_max : int;  (** maximum skid distance in PC slots *)
  throttle_budget : int;
      (** perf-style adaptive throttling: maximum samples (LBR + PEBS
          combined) admitted per {!field-throttle_window} cycles;
          0 disables throttling *)
  throttle_window : int;  (** throttling accounting window, in cycles *)
  throttle_backoff : float;
      (** factor applied to the sampling periods the first time a
          window exceeds its budget (>= 1) *)
}

val none : config
(** All fault knobs off. A sampler driven with this config behaves
    bit-identically to one created without a fault model. *)

val default_faulty : config
(** The documented default fault mix used by the robustness ablation:
    10 % LBR snapshot drops, +/-8 cycle stamp jitter, 5 % ring
    truncation, 20 % PEBS skid (max 2 slots), and a 256-samples /
    200k-cycles throttle budget. *)

val enabled : config -> bool
(** [false] exactly when every fault knob is off (drop, jitter,
    truncation and skid rates zero and no throttle budget). *)

type stats = {
  lbr_dropped : int;       (** snapshots lost to [lbr_drop_rate] *)
  lbr_truncated : int;     (** snapshots that lost ring entries *)
  stamps_jittered : int;   (** cycle stamps perturbed by a non-zero offset *)
  pebs_skidded : int;      (** PEBS samples attributed to a neighbour PC *)
  throttled : int;         (** samples rejected by the throttle *)
  backoff_factor : float;  (** cumulative period multiplier (1.0 = never throttled) *)
}

type t
(** Instantiated fault state: configuration, private RNG, throttle
    window accounting and counters. *)

val validate : config -> (unit, string) result
(** Check every knob's range (rates in [0, 1], non-negative jitter,
    positive window when throttling, backoff >= 1) without
    instantiating the model — lets a CLI reject a bad [--fault-*]
    value at the argument boundary instead of mid-pipeline. *)

val create : config -> t
(** Two states created from equal configs produce identical fault
    schedules (the model draws from its own seeded {!Aptget_util.Rng}).
    @raise Invalid_argument when {!validate} rejects the config. *)

val config : t -> config
val stats : t -> stats

(** {2 Decision points} — called by {!Sampler} at each hazard. Each
    draws from the RNG only when its knob is active, so a config with a
    single knob enabled leaves every other decision untouched. *)

val jitter_cycle : t -> int -> int
(** Perturb an LBR cycle stamp (clamped to >= 0). *)

val drop_lbr : t -> bool
(** Whether the due LBR snapshot is lost. *)

val truncate_ring : t -> 'a array -> 'a array
(** Possibly keep only the most recent suffix of a snapshot (arrays of
    length <= 1 are returned unchanged). *)

val skid_pc : t -> int -> int
(** Possibly displace a PEBS load PC by a non-zero offset in
    [-skid_max, +skid_max] (clamped to >= 0). *)

val throttle_admit : t -> cycle:int -> bool
(** Account one sample against the current window's budget. [false]
    means the sample is rejected; the first rejection in a window also
    multiplies {!backoff_factor} by [throttle_backoff]. Always [true]
    when [throttle_budget = 0]. *)

val backoff_factor : t -> float
(** Current cumulative sampling-period multiplier (>= 1). *)

val max_backoff : float
(** Upper bound on {!backoff_factor}: however hostile the schedule,
    the cumulative multiplier never exceeds this, keeping the
    stretched sampling period representable. *)
