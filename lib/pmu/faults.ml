module Rng = Aptget_util.Rng

type config = {
  seed : int;
  lbr_drop_rate : float;
  cycle_jitter : int;
  lbr_truncate_rate : float;
  pebs_skid_rate : float;
  pebs_skid_max : int;
  throttle_budget : int;
  throttle_window : int;
  throttle_backoff : float;
}

let none =
  {
    seed = 0x5eed;
    lbr_drop_rate = 0.;
    cycle_jitter = 0;
    lbr_truncate_rate = 0.;
    pebs_skid_rate = 0.;
    pebs_skid_max = 2;
    throttle_budget = 0;
    throttle_window = 200_000;
    throttle_backoff = 2.;
  }

let default_faulty =
  {
    none with
    lbr_drop_rate = 0.10;
    cycle_jitter = 8;
    lbr_truncate_rate = 0.05;
    pebs_skid_rate = 0.20;
    pebs_skid_max = 2;
    throttle_budget = 256;
  }

let enabled c =
  c.lbr_drop_rate > 0. || c.cycle_jitter > 0 || c.lbr_truncate_rate > 0.
  || c.pebs_skid_rate > 0. || c.throttle_budget > 0

type stats = {
  lbr_dropped : int;
  lbr_truncated : int;
  stamps_jittered : int;
  pebs_skidded : int;
  throttled : int;
  backoff_factor : float;
}

type t = {
  cfg : config;
  rng : Rng.t;
  mutable lbr_dropped : int;
  mutable lbr_truncated : int;
  mutable stamps_jittered : int;
  mutable pebs_skidded : int;
  mutable throttled : int;
  mutable factor : float;
  mutable window_start : int;
  mutable window_count : int;
  mutable window_backed_off : bool;
}

let validate cfg =
  if cfg.lbr_drop_rate < 0. || cfg.lbr_drop_rate > 1. then
    Error "lbr_drop_rate outside [0, 1]"
  else if cfg.lbr_truncate_rate < 0. || cfg.lbr_truncate_rate > 1. then
    Error "lbr_truncate_rate outside [0, 1]"
  else if cfg.pebs_skid_rate < 0. || cfg.pebs_skid_rate > 1. then
    Error "pebs_skid_rate outside [0, 1]"
  else if cfg.cycle_jitter < 0 then Error "cycle_jitter < 0"
  else if cfg.throttle_budget > 0 && cfg.throttle_window <= 0 then
    Error "throttle_window <= 0"
  else if cfg.throttle_backoff < 1. then Error "throttle_backoff < 1"
  else Ok ()

let create cfg =
  (match validate cfg with
  | Ok () -> ()
  | Error e -> invalid_arg ("Faults.create: " ^ e));
  {
    cfg;
    rng = Rng.create cfg.seed;
    lbr_dropped = 0;
    lbr_truncated = 0;
    stamps_jittered = 0;
    pebs_skidded = 0;
    throttled = 0;
    factor = 1.;
    window_start = 0;
    window_count = 0;
    window_backed_off = false;
  }

let config t = t.cfg

let stats t =
  {
    lbr_dropped = t.lbr_dropped;
    lbr_truncated = t.lbr_truncated;
    stamps_jittered = t.stamps_jittered;
    pebs_skidded = t.pebs_skidded;
    throttled = t.throttled;
    backoff_factor = t.factor;
  }

(* Each decision draws only when its knob is active: a config with a
   single fault enabled consumes exactly that fault's share of the RNG
   stream, so zero-rate knobs cannot perturb the others' schedules. *)
let hit t rate = rate > 0. && Rng.float t.rng 1.0 < rate

let jitter_cycle t cycle =
  if t.cfg.cycle_jitter <= 0 then cycle
  else begin
    let j = t.cfg.cycle_jitter in
    let off = Rng.int t.rng ((2 * j) + 1) - j in
    if off <> 0 then t.stamps_jittered <- t.stamps_jittered + 1;
    max 0 (cycle + off)
  end

let drop_lbr t =
  let d = hit t t.cfg.lbr_drop_rate in
  if d then t.lbr_dropped <- t.lbr_dropped + 1;
  d

let truncate_ring t arr =
  let n = Array.length arr in
  if n <= 1 || not (hit t t.cfg.lbr_truncate_rate) then arr
  else begin
    let keep = 1 + Rng.int t.rng (n - 1) in
    t.lbr_truncated <- t.lbr_truncated + 1;
    Array.sub arr (n - keep) keep
  end

let skid_pc t pc =
  if t.cfg.pebs_skid_max <= 0 || not (hit t t.cfg.pebs_skid_rate) then pc
  else begin
    let off = 1 + Rng.int t.rng t.cfg.pebs_skid_max in
    let off = if Rng.bool t.rng then off else -off in
    t.pebs_skidded <- t.pebs_skidded + 1;
    max 0 (pc + off)
  end

(* Backoff is capped so the effective period stays representable even
   on pathological schedules. *)
let max_backoff = 4096.

let throttle_admit t ~cycle =
  if t.cfg.throttle_budget <= 0 then true
  else begin
    if cycle - t.window_start >= t.cfg.throttle_window then begin
      t.window_start <-
        cycle - ((cycle - t.window_start) mod t.cfg.throttle_window);
      t.window_count <- 0;
      t.window_backed_off <- false
    end;
    if t.window_count >= t.cfg.throttle_budget then begin
      t.throttled <- t.throttled + 1;
      if not t.window_backed_off then begin
        t.factor <- Float.min max_backoff (t.factor *. t.cfg.throttle_backoff);
        t.window_backed_off <- true
      end;
      false
    end
    else begin
      t.window_count <- t.window_count + 1;
      true
    end
  end

let backoff_factor t = t.factor
