(** Last Branch Record: a ring buffer of the most recent taken branches.

    Mirrors Intel's LBR with cycle-count support (paper §3.1, Fig. 3):
    each entry holds the branch instruction's PC, its target PC, and the
    core cycle at which the branch retired. The ring holds 32 entries by
    default. *)

type entry = {
  branch_pc : int;
  target_pc : int;
  cycle : int;
}

type t

val create : ?size:int -> unit -> t
(** Default size 32, as on the paper's Xeon. *)

val size : t -> int

val record : t -> branch_pc:int -> target_pc:int -> cycle:int -> unit
(** Push a taken branch, evicting the oldest entry when full. *)

val snapshot : t -> entry array
(** Entries in chronological order (oldest first). Length <= size. *)

val clear : t -> unit
