(** Profiling samplers driven by the simulated core.

    Two samplers, matching the paper's two-step profile (§3.4):
    - the {b PEBS} sampler records the PC of every Nth demand load that
      misses the LLC, yielding the delinquent-load ranking;
    - the {b LBR} sampler snapshots the LBR ring at a fixed cycle
      period ("once per millisecond" on real hardware).

    An optional {!Faults} model degrades the collected profile the way
    real PMU hardware and the perf subsystem do: snapshot loss, cycle
    stamp jitter, ring truncation, PEBS skid and adaptive throttling.
    Without a fault model (or with {!Faults.none}) behaviour is
    bit-identical to the clean sampler. *)

type lbr_sample = {
  at_cycle : int;
  entries : Lbr.entry array; (** chronological, oldest first *)
}

type t

val create :
  ?lbr_period:int ->
  ?pebs_period:int ->
  ?lbr_size:int ->
  ?faults:Faults.t ->
  unit ->
  t
(** [lbr_period] is in cycles (default 20_000 — the scaled equivalent of
    1 ms at the scaled simulation sizes); [pebs_period] samples every
    Nth LLC-missing load (default 64). [faults], when given, injects
    PMU faults at every decision point. *)

val lbr : t -> Lbr.t
(** The live ring the core records taken branches into. *)

val reset : ?epoch_cycle:int -> t -> unit
(** Re-arm the sampler for a fresh observation epoch (used by online
    re-profiling, which samples each execution segment separately):
    clears collected LBR snapshots, the delinquent-load table and the
    miss/PEBS tallies, and restarts the LBR period clock at
    [epoch_cycle] (default 0) plus one period. The fault model — with
    its accumulated throttle backoff and seed position — is kept, so a
    sequence of epochs observes the same fault stream one long run
    would. *)

val on_branch : t -> branch_pc:int -> target_pc:int -> cycle:int -> unit
(** Called by the core on every taken branch; records into the LBR
    ring, applying cycle-stamp jitter when a fault model is active.
    Cores should use this rather than writing the ring directly. *)

val on_cycle : t -> cycle:int -> unit
(** Called by the core as time advances; takes an LBR snapshot whenever
    a period boundary is crossed. Under faults a due snapshot may be
    throttled, dropped or truncated. *)

val on_llc_miss : t -> load_pc:int -> cycle:int -> unit
(** Called by the core on every demand LLC miss; subsamples into the
    delinquent-load table. Under faults the sample may be throttled or
    its PC skidded to a neighbouring slot. *)

val lbr_samples : t -> lbr_sample list
(** All snapshots, in chronological order. *)

val delinquent_loads : t -> (int * int) list
(** [(load_pc, samples)] sorted by descending sample count: the loads
    responsible for most LLC misses. *)

val miss_samples : t -> int
(** Total PEBS samples taken. *)

val current_lbr_period : t -> int
(** The effective LBR period: the configured one stretched by any
    adaptive-throttling backoff. *)

val current_pebs_period : t -> int

val fault_stats : t -> Faults.stats option
(** Fault counters, when a fault model is attached. *)

val export_metrics : t -> unit
(** Push this sampler's tallies (snapshot/sample/miss counts and, when
    a fault model is attached, the {!Faults.stats} counters) into the
    {!Aptget_obs.Metrics} registry. No-op while the registry is
    disabled. *)
