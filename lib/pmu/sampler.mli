(** Profiling samplers driven by the simulated core.

    Two samplers, matching the paper's two-step profile (§3.4):
    - the {b PEBS} sampler records the PC of every Nth demand load that
      misses the LLC, yielding the delinquent-load ranking;
    - the {b LBR} sampler snapshots the LBR ring at a fixed cycle
      period ("once per millisecond" on real hardware). *)

type lbr_sample = {
  at_cycle : int;
  entries : Lbr.entry array; (** chronological, oldest first *)
}

type t

val create : ?lbr_period:int -> ?pebs_period:int -> ?lbr_size:int -> unit -> t
(** [lbr_period] is in cycles (default 20_000 — the scaled equivalent of
    1 ms at the scaled simulation sizes); [pebs_period] samples every
    Nth LLC-missing load (default 64). *)

val lbr : t -> Lbr.t
(** The live ring the core records taken branches into. *)

val on_cycle : t -> cycle:int -> unit
(** Called by the core as time advances; takes an LBR snapshot whenever
    a period boundary is crossed. *)

val on_llc_miss : t -> load_pc:int -> unit
(** Called by the core on every demand LLC miss; subsamples into the
    delinquent-load table. *)

val lbr_samples : t -> lbr_sample list
(** All snapshots, in chronological order. *)

val delinquent_loads : t -> (int * int) list
(** [(load_pc, samples)] sorted by descending sample count: the loads
    responsible for most LLC misses. *)

val miss_samples : t -> int
(** Total PEBS samples taken. *)
