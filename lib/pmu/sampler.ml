type lbr_sample = { at_cycle : int; entries : Lbr.entry array }

type t = {
  lbr : Lbr.t;
  lbr_period : int;
  pebs_period : int;
  mutable next_lbr_sample : int;
  mutable samples : lbr_sample list; (* reversed *)
  mutable miss_count : int;
  mutable pebs_samples : int;
  delinquents : (int, int) Hashtbl.t;
}

let create ?(lbr_period = 20_000) ?(pebs_period = 64) ?(lbr_size = 32) () =
  if lbr_period <= 0 then invalid_arg "Sampler.create: lbr_period <= 0";
  if pebs_period <= 0 then invalid_arg "Sampler.create: pebs_period <= 0";
  {
    lbr = Lbr.create ~size:lbr_size ();
    lbr_period;
    pebs_period;
    next_lbr_sample = lbr_period;
    samples = [];
    miss_count = 0;
    pebs_samples = 0;
    delinquents = Hashtbl.create 64;
  }

let lbr t = t.lbr

let on_cycle t ~cycle =
  if cycle >= t.next_lbr_sample then begin
    t.samples <- { at_cycle = cycle; entries = Lbr.snapshot t.lbr } :: t.samples;
    (* Skip forward past [cycle]: long stalls may cross several
       boundaries but yield a single (unchanged) ring. *)
    while t.next_lbr_sample <= cycle do
      t.next_lbr_sample <- t.next_lbr_sample + t.lbr_period
    done
  end

let on_llc_miss t ~load_pc =
  t.miss_count <- t.miss_count + 1;
  if t.miss_count mod t.pebs_period = 0 then begin
    t.pebs_samples <- t.pebs_samples + 1;
    let prev = Option.value ~default:0 (Hashtbl.find_opt t.delinquents load_pc) in
    Hashtbl.replace t.delinquents load_pc (prev + 1)
  end

let lbr_samples t = List.rev t.samples

let delinquent_loads t =
  Hashtbl.fold (fun pc n acc -> (pc, n) :: acc) t.delinquents []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let miss_samples t = t.pebs_samples
