type lbr_sample = { at_cycle : int; entries : Lbr.entry array }

type t = {
  lbr : Lbr.t;
  base_lbr_period : int;
  base_pebs_period : int;
  mutable next_lbr_sample : int;
  mutable samples : lbr_sample list; (* reversed *)
  mutable miss_count : int;
  mutable pebs_samples : int;
  delinquents : (int, int) Hashtbl.t;
  faults : Faults.t option;
}

let create ?(lbr_period = 20_000) ?(pebs_period = 64) ?(lbr_size = 32) ?faults
    () =
  if lbr_period <= 0 then invalid_arg "Sampler.create: lbr_period <= 0";
  if pebs_period <= 0 then invalid_arg "Sampler.create: pebs_period <= 0";
  {
    lbr = Lbr.create ~size:lbr_size ();
    base_lbr_period = lbr_period;
    base_pebs_period = pebs_period;
    next_lbr_sample = lbr_period;
    samples = [];
    miss_count = 0;
    pebs_samples = 0;
    delinquents = Hashtbl.create 64;
    faults;
  }

let lbr t = t.lbr

(* Adaptive throttling stretches both sampling periods by the fault
   model's cumulative backoff factor. Without faults (or before any
   throttle event) the effective period is the configured one. *)
let effective t base =
  match t.faults with
  | None -> base
  | Some f -> max base (int_of_float (float_of_int base *. Faults.backoff_factor f))

let current_lbr_period t = effective t t.base_lbr_period
let current_pebs_period t = effective t t.base_pebs_period

(* Re-arm for a fresh observation epoch: collected samples are cleared
   but the periods, ring and fault model (with its accumulated backoff
   and seeds) carry over, so a multi-epoch run draws the same fault
   stream a single long run would. [epoch_cycle] restarts the LBR
   period clock relative to the new epoch's cycle origin. *)
let reset ?(epoch_cycle = 0) t =
  t.next_lbr_sample <- epoch_cycle + current_lbr_period t;
  t.samples <- [];
  t.miss_count <- 0;
  t.pebs_samples <- 0;
  Hashtbl.reset t.delinquents

let on_branch t ~branch_pc ~target_pc ~cycle =
  let cycle =
    match t.faults with
    | Some f -> Faults.jitter_cycle f cycle
    | None -> cycle
  in
  Lbr.record t.lbr ~branch_pc ~target_pc ~cycle

(* Cold half of [on_cycle]: runs once per period boundary. *)
let take_lbr_sample t ~cycle =
  (match t.faults with
  | None ->
    t.samples <- { at_cycle = cycle; entries = Lbr.snapshot t.lbr } :: t.samples
  | Some f ->
    (* The PMI fires either way; the sample can then be rejected by
       the throttle or lost outright, and a surviving one may only
       capture a suffix of the ring. *)
    if Faults.throttle_admit f ~cycle && not (Faults.drop_lbr f) then begin
      let entries = Faults.truncate_ring f (Lbr.snapshot t.lbr) in
      t.samples <- { at_cycle = cycle; entries } :: t.samples
    end);
  (* Skip forward past [cycle]: long stalls may cross several
     boundaries but yield a single (unchanged) ring. *)
  let period = current_lbr_period t in
  while t.next_lbr_sample <= cycle do
    t.next_lbr_sample <- t.next_lbr_sample + period
  done

(* Batch-friendly: the core calls this once per [charge], however many
   cycles the charge covered; crossing a boundary (or several) yields
   one sample at the post-advance cycle, so per-instruction and
   per-batch ticking observe identical sample streams. The not-due
   fast path is a single compare. *)
let[@inline] on_cycle t ~cycle =
  if cycle >= t.next_lbr_sample then take_lbr_sample t ~cycle

let on_llc_miss t ~load_pc ~cycle =
  t.miss_count <- t.miss_count + 1;
  if t.miss_count mod current_pebs_period t = 0 then begin
    let record pc =
      t.pebs_samples <- t.pebs_samples + 1;
      let prev = Option.value ~default:0 (Hashtbl.find_opt t.delinquents pc) in
      Hashtbl.replace t.delinquents pc (prev + 1)
    in
    match t.faults with
    | None -> record load_pc
    | Some f ->
      if Faults.throttle_admit f ~cycle then record (Faults.skid_pc f load_pc)
  end

let lbr_samples t = List.rev t.samples

let delinquent_loads t =
  Hashtbl.fold (fun pc n acc -> (pc, n) :: acc) t.delinquents []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let miss_samples t = t.pebs_samples

let fault_stats t = Option.map Faults.stats t.faults

let export_metrics t =
  let module M = Aptget_obs.Metrics in
  if M.enabled () then begin
    M.incr "sampler.runs";
    M.incr ~by:(List.length t.samples) "sampler.lbr_snapshots";
    M.incr ~by:t.pebs_samples "sampler.pebs_samples";
    M.incr ~by:t.miss_count "sampler.llc_misses";
    match fault_stats t with
    | None -> ()
    | Some s ->
      M.incr ~by:s.Faults.lbr_dropped "sampler.faults.lbr_dropped";
      M.incr ~by:s.Faults.lbr_truncated "sampler.faults.lbr_truncated";
      M.incr ~by:s.Faults.stamps_jittered "sampler.faults.stamps_jittered";
      M.incr ~by:s.Faults.pebs_skidded "sampler.faults.pebs_skidded";
      M.incr ~by:s.Faults.throttled "sampler.faults.throttled";
      M.set_gauge "sampler.faults.backoff_factor" s.Faults.backoff_factor
  end
