type entry = { branch_pc : int; target_pc : int; cycle : int }

(* Struct-of-arrays ring: [record] fires on every taken branch of every
   simulated run, so it must not allocate. Three int arrays take three
   unboxed stores per branch; the [entry] record is only materialised
   by [snapshot], which runs once per sampling period. *)
type t = {
  branch_pcs : int array;
  target_pcs : int array;
  cycles : int array;
  ring_size : int;
  mutable head : int; (* next slot to write *)
  mutable filled : int;
}

let create ?(size = 32) () =
  if size <= 0 then invalid_arg "Lbr.create: size <= 0";
  {
    branch_pcs = Array.make size (-1);
    target_pcs = Array.make size (-1);
    cycles = Array.make size (-1);
    ring_size = size;
    head = 0;
    filled = 0;
  }

let size t = t.ring_size

let record t ~branch_pc ~target_pc ~cycle =
  let h = t.head in
  Array.unsafe_set t.branch_pcs h branch_pc;
  Array.unsafe_set t.target_pcs h target_pc;
  Array.unsafe_set t.cycles h cycle;
  t.head <- (if h + 1 = t.ring_size then 0 else h + 1);
  if t.filled < t.ring_size then t.filled <- t.filled + 1

let snapshot t =
  Array.init t.filled (fun i ->
      let idx = (t.head - t.filled + i + (2 * t.ring_size)) mod t.ring_size in
      {
        branch_pc = t.branch_pcs.(idx);
        target_pc = t.target_pcs.(idx);
        cycle = t.cycles.(idx);
      })

let clear t =
  t.head <- 0;
  t.filled <- 0
