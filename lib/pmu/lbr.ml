type entry = { branch_pc : int; target_pc : int; cycle : int }

type t = {
  ring : entry array;
  ring_size : int;
  mutable head : int; (* next slot to write *)
  mutable filled : int;
}

let dummy = { branch_pc = -1; target_pc = -1; cycle = -1 }

let create ?(size = 32) () =
  if size <= 0 then invalid_arg "Lbr.create: size <= 0";
  { ring = Array.make size dummy; ring_size = size; head = 0; filled = 0 }

let size t = t.ring_size

let record t ~branch_pc ~target_pc ~cycle =
  t.ring.(t.head) <- { branch_pc; target_pc; cycle };
  t.head <- (t.head + 1) mod t.ring_size;
  if t.filled < t.ring_size then t.filled <- t.filled + 1

let snapshot t =
  Array.init t.filled (fun i ->
      let idx = (t.head - t.filled + i + (2 * t.ring_size)) mod t.ring_size in
      t.ring.(idx))

let clear t =
  t.head <- 0;
  t.filled <- 0
