(* Distance explorer: the paper's §2 study as an interactive plot.

   Sweeps the prefetch distance on the microbenchmark, prints an ASCII
   speedup curve, and marks the distance APT-GET's analytical model
   derived from a single LBR profile — the point of the paper is that
   the mark lands at (or near) the curve's peak without the sweep.

   Run with: dune exec examples/distance_explorer.exe -- [INNER] [COMPLEXITY] *)

module Machine = Aptget_machine.Machine
module Pipeline = Aptget_core.Pipeline
module Micro = Aptget_workloads.Micro
module Workload = Aptget_workloads.Workload
module Profiler = Aptget_profile.Profiler
module Aptget_pass = Aptget_passes.Aptget_pass

let () =
  let inner = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 256 in
  let complexity =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 0
  in
  let params =
    {
      Micro.default_params with
      Micro.total = 131_072;
      inner;
      complexity;
      table_words = 1 lsl 22;
    }
  in
  let w =
    Micro.workload ~params ~name:(Printf.sprintf "micro-i%d-c%d" inner complexity) ()
  in
  Printf.printf "microbenchmark: INNER=%d COMPLEXITY=%d\n%!" inner complexity;
  let base = Pipeline.verified_exn (Pipeline.baseline w) in
  let prof = Pipeline.profile w in
  let chosen =
    match prof.Profiler.hints with
    | h :: _ -> h.Aptget_pass.distance
    | [] -> -1
  in
  let distances = [ 1; 2; 4; 8; 16; 32; 64; 128; 256 ] in
  Printf.printf "\n%8s  %-8s\n" "distance" "speedup";
  List.iter
    (fun d ->
      let m = Pipeline.verified_exn (Pipeline.aj ~distance:d w) in
      let s = Pipeline.speedup ~baseline:base m in
      let bar = String.make (max 1 (int_of_float (s *. 12.))) '#' in
      Printf.printf "%8d  %5.2fx %s\n%!" d s bar)
    distances;
  let apt = Pipeline.verified_exn (Pipeline.with_hints ~hints:prof.Profiler.hints w) in
  Printf.printf "\nAPT-GET chose distance %d from one profile -> %.2fx\n" chosen
    (Pipeline.speedup ~baseline:base apt)
