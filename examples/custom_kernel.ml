(* Custom kernel from IR text: write the kernel as text (the format
   Printer emits), parse it, run it, profile it, optimise it.

   The kernel is a two-level indirection A[B[C[i]]] — one level deeper
   than the quickstart — showing that slice extraction follows
   arbitrary chains of intermediate loads.

   Run with: dune exec examples/custom_kernel.exe *)

module Memory = Aptget_mem.Memory
module Machine = Aptget_machine.Machine
module Profiler = Aptget_profile.Profiler
module Aptget_pass = Aptget_passes.Aptget_pass
module Rng = Aptget_util.Rng

let kernel_text =
  {|
func double_indirect(%0, %1, %2, %3):
b0:
  jmp b1
b1:
  %4 = phi [b0: 0] [b2: %12]
  %5 = phi [b0: 0] [b2: %13]
  %6 = icmp lt %4, %3
  br %6, b2, b3
b2:
  %7 = add %0, %4
  %8 = load [%7]
  %9 = add %1, %8
  %10 = load [%9]
  %11 = add %2, %10
  %14 = load [%11]
  %13 = add %5, %14
  %12 = add %4, 1
  jmp b1
b3:
  ret %5
|}

let elements = 65_536
let table_words = 1 lsl 21

let build () =
  let f = Parser.func_exn kernel_text in
  let mem = Memory.create () in
  let c = Memory.alloc mem ~name:"C" ~words:elements in
  let b = Memory.alloc mem ~name:"B" ~words:elements in
  let t = Memory.alloc mem ~name:"A" ~words:table_words in
  ignore (Memory.alloc mem ~name:"guard" ~words:8192);
  let rng = Rng.create 99 in
  Memory.blit_array mem c (Array.init elements (fun _ -> Rng.int rng elements));
  Memory.blit_array mem b (Array.init elements (fun _ -> Rng.int rng table_words));
  Memory.blit_array mem t (Array.init table_words (fun i -> i land 255));
  (f, mem, [ c.Memory.base; b.Memory.base; t.Memory.base; elements ])

let () =
  let f, mem, args = build () in
  print_endline "parsed kernel:";
  print_string (Printer.func_to_string f);
  let base = Machine.execute ~args ~mem f in
  Printf.printf "\nbaseline: %d cycles, IPC %.3f\n" base.Machine.cycles
    (Machine.ipc base);
  let f2, mem2, args2 = build () in
  let prof = Profiler.profile ~args:args2 ~mem:mem2 f2 in
  let f3, mem3, args3 = build () in
  let r = Aptget_pass.run f3 ~hints:prof.Profiler.hints in
  Printf.printf "injected %d prefetch slice(s) for the A[B[C[i]]] chain\n"
    (List.length r.Aptget_pass.injected);
  let opt = Machine.execute ~args:args3 ~mem:mem3 f3 in
  assert (opt.Machine.ret = base.Machine.ret);
  Printf.printf "APT-GET:  %d cycles, IPC %.3f -> %.2fx (checksums match)\n"
    opt.Machine.cycles (Machine.ipc opt)
    (float_of_int base.Machine.cycles /. float_of_int opt.Machine.cycles)
