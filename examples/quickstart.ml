(* Quickstart: write a kernel against the public API, watch APT-GET
   make it fast.

   The kernel is the classic irregular gather `sum += T[B[i]]`:
   hardware prefetchers cannot predict T's addresses, so the baseline
   stalls on DRAM; one profiling run finds the delinquent load, models
   its latency distribution, and injects a timely software prefetch.

   Run with: dune exec examples/quickstart.exe *)

module Memory = Aptget_mem.Memory
module Machine = Aptget_machine.Machine
module Profiler = Aptget_profile.Profiler
module Model = Aptget_profile.Model
module Aptget_pass = Aptget_passes.Aptget_pass
module Rng = Aptget_util.Rng

let elements = 100_000
let table_words = 1 lsl 21 (* 16 MiB: far beyond the 2 MiB simulated LLC *)

(* 1. Lay the data out in simulated memory. *)
let build_instance () =
  let mem = Memory.create () in
  let b = Memory.alloc mem ~name:"B" ~words:elements in
  let t = Memory.alloc mem ~name:"T" ~words:table_words in
  let rng = Rng.create 42 in
  Memory.blit_array mem b (Array.init elements (fun _ -> Rng.int rng table_words));
  Memory.blit_array mem t (Array.init table_words (fun i -> i * 7));
  (* 2. Express the kernel in the IR via the builder DSL. *)
  let bld = Builder.create ~name:"gather" ~nparams:3 in
  let b_base, t_base, n =
    match Builder.params bld with [ x; y; z ] -> (x, y, z) | _ -> assert false
  in
  let sums =
    Builder.for_loop_acc bld ~from:(Ir.Imm 0) ~bound:(`Op n) ~init:[ Ir.Imm 0 ]
      (fun bld i accs ->
        let idx = Builder.load bld (Builder.add bld b_base i) in
        let v = Builder.load bld (Builder.add bld t_base idx) in
        [ Builder.add bld (List.hd accs) v ])
  in
  Builder.ret bld (Some (List.hd sums));
  let func = Builder.finish bld in
  Verify.check_exn func;
  (mem, func, [ b.Memory.base; t.Memory.base; elements ])

let () =
  (* 3. Baseline run on the timing simulator. *)
  let mem, func, args = build_instance () in
  let base = Machine.execute ~args ~mem func in
  Printf.printf "baseline:  %d cycles, IPC %.3f, %.1f MPKI\n"
    base.Machine.cycles (Machine.ipc base) (Machine.mpki base);

  (* 4. One profiling run: PEBS finds the delinquent load, the LBR
     yields its loop's latency distribution, Eq. (1) the distance. *)
  let mem2, func2, args2 = build_instance () in
  let prof = Profiler.profile ~args:args2 ~mem:mem2 func2 in
  List.iter
    (fun (p : Profiler.load_profile) ->
      match p.Profiler.model with
      | Some m ->
        Printf.printf
          "profile:   load PC %d: peaks at [%s] cycles -> IC=%.0f MC=%.0f -> \
           distance %d\n"
          p.Profiler.load_pc
          (String.concat "; "
             (List.map (fun x -> Printf.sprintf "%.0f" x) m.Model.peaks))
          m.Model.ic_latency m.Model.mc_latency m.Model.distance
      | None -> Printf.printf "profile:   load PC %d: %s\n" p.Profiler.load_pc p.Profiler.note)
    prof.Profiler.profiles;

  (* 5. Inject and re-run. *)
  let mem3, func3, args3 = build_instance () in
  let report = Aptget_pass.run func3 ~hints:prof.Profiler.hints in
  Printf.printf "injected:  %d prefetch slice(s)\n"
    (List.length report.Aptget_pass.injected);
  let opt = Machine.execute ~args:args3 ~mem:mem3 func3 in
  Printf.printf "APT-GET:   %d cycles, IPC %.3f, %.1f MPKI\n" opt.Machine.cycles
    (Machine.ipc opt) (Machine.mpki opt);
  assert (base.Machine.ret = opt.Machine.ret);
  Printf.printf "speedup:   %.2fx (checksums match: %s)\n"
    (float_of_int base.Machine.cycles /. float_of_int opt.Machine.cycles)
    (match base.Machine.ret with Some v -> string_of_int v | None -> "-")
