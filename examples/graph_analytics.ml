(* Graph analytics: the paper's motivating domain.

   Builds a scaled web-Google stand-in, runs BFS and PageRank through
   the whole pipeline (baseline -> A&J -> APT-GET), and shows where
   APT-GET decided to put each prefetch and why.

   Run with: dune exec examples/graph_analytics.exe *)

module Pipeline = Aptget_core.Pipeline
module Workload = Aptget_workloads.Workload
module Suite = Aptget_workloads.Suite
module Machine = Aptget_machine.Machine
module Profiler = Aptget_profile.Profiler
module Aptget_pass = Aptget_passes.Aptget_pass
module Inject = Aptget_passes.Inject
module Table = Aptget_util.Table
module Datasets = Aptget_graph.Datasets
module Csr = Aptget_graph.Csr

let workloads =
  [
    Suite.bfs ~name:"BFS/web-Google"
      ~graph:(fun () -> Csr.symmetrize (Datasets.build (Option.get (Datasets.find "WG"))))
      ~input:"web-Google (scaled)";
    Suite.pr ~name:"PR/web-Google"
      ~graph:(fun () -> Csr.symmetrize (Datasets.build (Option.get (Datasets.find "WG"))))
      ~input:"web-Google (scaled)";
  ]

let () =
  let t =
    Table.create ~title:"graph analytics under the three builds"
      ~header:[ "kernel"; "baseline MPKI"; "A&J"; "APT-GET"; "APT-GET hints" ]
  in
  List.iter
    (fun w ->
      Printf.printf "running %s...\n%!" w.Workload.name;
      let base = Pipeline.verified_exn (Pipeline.baseline w) in
      let aj = Pipeline.verified_exn (Pipeline.aj w) in
      let apt, prof = Pipeline.aptget w in
      let apt = Pipeline.verified_exn apt in
      let hints =
        String.concat ", "
          (List.map
             (fun (h : Aptget_pass.hint) ->
               Printf.sprintf "pc%d:d%d/%s" h.Aptget_pass.load_pc
                 h.Aptget_pass.distance
                 (Inject.site_to_string h.Aptget_pass.site))
             prof.Profiler.hints)
      in
      Table.add_row t
        [
          w.Workload.name;
          Table.fmt_float (Machine.mpki base.Pipeline.outcome);
          Table.fmt_speedup (Pipeline.speedup ~baseline:base aj);
          Table.fmt_speedup (Pipeline.speedup ~baseline:base apt);
          hints;
        ])
    workloads;
  Table.print t;
  print_endline
    "Note the outer-site hints: vertex degrees are small, so prefetching\n\
     inside the neighbour loop cannot run far enough ahead (Eq. 2) — the\n\
     slice is re-anchored one vertex ahead in the outer loop instead."
