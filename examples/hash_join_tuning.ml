(* Database hash-join tuning (HJ2 vs HJ8 of the paper).

   A probe-side hash join is memory-bound on the bucket loads. The
   right prefetch strategy depends on the bucket size: with 8 slots
   per bucket the probe loop's inner trip count is 8, so inner-loop
   prefetching never runs ahead (Eq. 2) and APT-GET hoists the slice
   into the tuple loop, sweeping the bucket's slots.

   Run with: dune exec examples/hash_join_tuning.exe *)

module Pipeline = Aptget_core.Pipeline
module Workload = Aptget_workloads.Workload
module Hashjoin = Aptget_workloads.Hashjoin
module Profiler = Aptget_profile.Profiler
module Aptget_pass = Aptget_passes.Aptget_pass
module Inject = Aptget_passes.Inject
module Table = Aptget_util.Table

let () =
  let t =
    Table.create ~title:"hash-join probe: prefetch strategy by bucket size"
      ~header:
        [ "variant"; "baseline cycles"; "site chosen"; "sweep"; "distance";
          "inner-forced"; "outer-forced"; "APT-GET" ]
  in
  List.iter
    (fun (name, params) ->
      let w = Hashjoin.workload ~params ~name () in
      Printf.printf "running %s...\n%!" name;
      let base = Pipeline.verified_exn (Pipeline.baseline w) in
      let prof = Pipeline.profile w in
      let hint = List.hd prof.Profiler.hints in
      let inner =
        Pipeline.verified_exn
          (Pipeline.with_hints
             ~hints:(Pipeline.force_site Inject.Inner prof.Profiler.hints)
             w)
      in
      let outer =
        Pipeline.verified_exn
          (Pipeline.with_hints
             ~hints:(Pipeline.force_site Inject.Outer prof.Profiler.hints)
             w)
      in
      let apt =
        Pipeline.verified_exn (Pipeline.with_hints ~hints:prof.Profiler.hints w)
      in
      Table.add_row t
        [
          name;
          string_of_int base.Pipeline.outcome.Aptget_machine.Machine.cycles;
          Inject.site_to_string hint.Aptget_pass.site;
          string_of_int hint.Aptget_pass.sweep;
          string_of_int hint.Aptget_pass.distance;
          Table.fmt_speedup (Pipeline.speedup ~baseline:base inner);
          Table.fmt_speedup (Pipeline.speedup ~baseline:base outer);
          Table.fmt_speedup (Pipeline.speedup ~baseline:base apt);
        ])
    [ ("HJ2 (2 slots)", Hashjoin.hj2_params); ("HJ8 (8 slots)", Hashjoin.hj8_params) ];
  Table.print t
