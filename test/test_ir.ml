(* IR construction, layout, verification, and printing. *)

let build_simple_loop () =
  (* sum = 0; for i in 0..n: sum += A[i]; ret sum *)
  let b = Builder.create ~name:"sum" ~nparams:2 in
  let a_base, n =
    match Builder.params b with [ x; y ] -> (x, y) | _ -> assert false
  in
  let final =
    Builder.for_loop_acc b ~from:(Ir.Imm 0) ~bound:(`Op n) ~init:[ Ir.Imm 0 ]
      (fun b i accs ->
        let v = Builder.load b (Builder.add b a_base i) in
        [ Builder.add b (List.hd accs) v ])
  in
  Builder.ret b (Some (List.hd final));
  Builder.finish b

let test_builder_verifies () =
  let f = build_simple_loop () in
  match Verify.check f with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_builder_loop_shape () =
  let f = build_simple_loop () in
  Alcotest.(check int) "4 blocks (entry/header/body/exit)" 4
    (Array.length f.Ir.blocks);
  Alcotest.(check int) "entry is 0" 0 f.Ir.entry;
  (* header has the induction phi and the accumulator phi *)
  Alcotest.(check int) "two phis" 2 (List.length f.Ir.blocks.(1).Ir.phis)

let test_builder_if_then () =
  let b = Builder.create ~name:"abs" ~nparams:1 in
  let x = List.hd (Builder.params b) in
  let neg = Builder.cmp b Ir.Lt x (Ir.Imm 0) in
  let r =
    Builder.if_then_acc b ~cond:neg ~init:[ x ] (fun b ->
        [ Builder.sub b (Ir.Imm 0) x ])
  in
  Builder.ret b (Some (List.hd r));
  let f = Builder.finish b in
  Verify.check_exn f

let test_builder_rejects_double_term () =
  let b = Builder.create ~name:"t" ~nparams:0 in
  Builder.ret b None;
  Alcotest.(check bool) "second terminator rejected" true
    (try
       Builder.ret b None;
       false
     with Invalid_argument _ -> true)

let test_builder_rejects_emit_after_term () =
  let b = Builder.create ~name:"t" ~nparams:0 in
  Builder.ret b None;
  Alcotest.(check bool) "emit after terminator rejected" true
    (try
       ignore (Builder.add b (Ir.Imm 1) (Ir.Imm 2));
       false
     with Invalid_argument _ -> true)

(* ---------------- Ir helpers ---------------- *)

let test_successors () =
  Alcotest.(check (list int)) "jmp" [ 3 ] (Ir.successors (Ir.Jmp 3));
  Alcotest.(check (list int)) "br" [ 1; 2 ] (Ir.successors (Ir.Br (Ir.Imm 1, 1, 2)));
  Alcotest.(check (list int)) "br same target deduped" [ 1 ]
    (Ir.successors (Ir.Br (Ir.Imm 1, 1, 1)));
  Alcotest.(check (list int)) "ret" [] (Ir.successors (Ir.Ret None))

let test_predecessors () =
  let f = build_simple_loop () in
  (* header (1) is reached from entry (0) and body (2) *)
  Alcotest.(check (list int)) "preds of header" [ 0; 2 ] (Ir.predecessors f 1)

let test_operands_and_map () =
  let k = Ir.Binop (Ir.Add, Ir.Reg 1, Ir.Imm 2) in
  Alcotest.(check int) "two operands" 2 (List.length (Ir.operands k));
  let k2 = Ir.map_operands (function Ir.Reg 1 -> Ir.Reg 9 | o -> o) k in
  (match k2 with
  | Ir.Binop (Ir.Add, Ir.Reg 9, Ir.Imm 2) -> ()
  | _ -> Alcotest.fail "map_operands did not rewrite")

let test_copy_func_isolated () =
  let f = build_simple_loop () in
  let g = Ir.copy_func f in
  g.Ir.blocks.(2).Ir.instrs <- [||];
  Alcotest.(check bool) "original untouched" true
    (Array.length f.Ir.blocks.(2).Ir.instrs > 0)

let test_instr_count () =
  let f = build_simple_loop () in
  Alcotest.(check bool) "counts instructions" true (Ir.instr_count f >= 4)

(* ---------------- Layout ---------------- *)

let test_layout_roundtrip () =
  let pc = Layout.pc_of_instr 3 17 in
  Alcotest.(check int) "block" 3 (Layout.block_of_pc pc);
  (match Layout.slot_of_pc pc with
  | `Instr 17 -> ()
  | _ -> Alcotest.fail "slot mismatch");
  let t = Layout.pc_of_term 5 in
  Alcotest.(check int) "term block" 5 (Layout.block_of_pc t);
  match Layout.slot_of_pc t with
  | `Term -> ()
  | `Instr _ -> Alcotest.fail "expected terminator slot"

let test_layout_instr_at () =
  let f = build_simple_loop () in
  (match Layout.instr_at f (Layout.pc_of_instr 2 0) with
  | Some _ -> ()
  | None -> Alcotest.fail "expected an instruction");
  Alcotest.(check bool) "out of range" true
    (Layout.instr_at f (Layout.pc_of_instr 40 0) = None)

let test_layout_loads () =
  let f = build_simple_loop () in
  Alcotest.(check int) "one load" 1 (List.length (Layout.pcs_of_loads f))

let prop_layout_roundtrip =
  QCheck.Test.make ~name:"layout pc roundtrip" ~count:200
    QCheck.(pair (int_bound 100) (int_bound (Layout.term_offset - 1)))
    (fun (b, i) ->
      let pc = Layout.pc_of_instr b i in
      Layout.block_of_pc pc = b && Layout.slot_of_pc pc = `Instr i)

(* ---------------- Verify ---------------- *)

let broken_func blocks next_reg =
  { Ir.fname = "broken"; params = []; entry = 0; blocks; next_reg }

let test_verify_bad_target () =
  let f = broken_func [| { Ir.phis = []; instrs = [||]; term = Ir.Jmp 9 } |] 0 in
  Alcotest.(check bool) "rejected" true (Verify.errors f <> [])

let test_verify_undefined_use () =
  let f =
    broken_func
      [|
        {
          Ir.phis = [];
          instrs = [| { Ir.dst = 0; kind = Ir.Binop (Ir.Add, Ir.Reg 5, Ir.Imm 1) } |];
          term = Ir.Ret None;
        };
      |]
      1
  in
  Alcotest.(check bool) "rejected" true (Verify.errors f <> [])

let test_verify_double_def () =
  let f =
    broken_func
      [|
        {
          Ir.phis = [];
          instrs =
            [|
              { Ir.dst = 0; kind = Ir.Binop (Ir.Add, Ir.Imm 1, Ir.Imm 1) };
              { Ir.dst = 0; kind = Ir.Binop (Ir.Add, Ir.Imm 2, Ir.Imm 2) };
            |];
          term = Ir.Ret None;
        };
      |]
      1
  in
  Alcotest.(check bool) "rejected" true (Verify.errors f <> [])

let test_verify_phi_mismatch () =
  let f =
    broken_func
      [|
        { Ir.phis = []; instrs = [||]; term = Ir.Jmp 1 };
        {
          Ir.phis = [ { Ir.phi_dst = 0; incoming = [ (7, Ir.Imm 1) ] } ];
          instrs = [||];
          term = Ir.Ret None;
        };
      |]
      1
  in
  Alcotest.(check bool) "rejected" true (Verify.errors f <> [])

let test_verify_entry_phi () =
  let f =
    broken_func
      [|
        {
          Ir.phis = [ { Ir.phi_dst = 0; incoming = [] } ];
          instrs = [||];
          term = Ir.Ret None;
        };
      |]
      1
  in
  Alcotest.(check bool) "rejected" true (Verify.errors f <> [])

let test_verify_accepts_good () =
  Verify.check_exn (build_simple_loop ())

(* ---------------- Printer ---------------- *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_printer_renders () =
  let f = build_simple_loop () in
  let s = Printer.func_to_string f in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains s needle))
    [ "func sum"; "load"; "phi"; "icmp lt"; "ret" ]

(* ---------------- Parser ---------------- *)

let test_parser_roundtrip_simple () =
  let f = build_simple_loop () in
  let text = Printer.func_to_string f in
  match Parser.func text with
  | Ok g ->
    Alcotest.(check string) "print . parse . print = print" text
      (Printer.func_to_string g)
  | Error e -> Alcotest.fail e

let test_parser_hand_written () =
  let text =
    "func double_sum(%0, %1):\n\
     b0:\n\
     jmp b1\n\
     b1:\n\
     %2 = phi [b0: 0] [b2: %6]\n\
     %3 = phi [b0: 0] [b2: %7]\n\
     %4 = icmp lt %2, %1\n\
     br %4, b2, b3\n\
     b2:\n\
     %5 = load [%0]\n\
     %6 = add %2, 1\n\
     %7 = add %3, %5\n\
     jmp b1\n\
     b3:\n\
     ret %3\n"
  in
  match Parser.func text with
  | Ok f ->
    Alcotest.(check string) "name" "double_sum" f.Ir.fname;
    Alcotest.(check int) "blocks" 4 (Array.length f.Ir.blocks);
    (* run it: sums memory.(base) n times *)
    let mem = Aptget_mem.Memory.create () in
    let r = Aptget_mem.Memory.alloc mem ~name:"r" ~words:8 in
    Aptget_mem.Memory.set mem r.Aptget_mem.Memory.base 5;
    let out =
      Aptget_machine.Machine.execute
        ~args:[ r.Aptget_mem.Memory.base; 3 ]
        ~mem f
    in
    Alcotest.(check (option int)) "3 * 5" (Some 15) out.Aptget_machine.Machine.ret
  | Error e -> Alcotest.fail e

let test_parser_errors () =
  List.iter
    (fun (what, text) ->
      match Parser.func text with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("accepted " ^ what))
    [
      ("missing header", "b0:\nret\n");
      ("missing terminator", "func f():\nb0:\n%0 = add 1, 2\n");
      ("bad opcode", "func f():\nb0:\n%0 = frobnicate 1, 2\nret\n");
      ("out-of-order blocks", "func f():\nb1:\nret\n");
      ("second terminator", "func f():\nb0:\nret\nret\n");
      ("undefined register", "func f():\nb0:\n%5 = add %9, 1\nret\n");
      ("bad target", "func f():\nb0:\njmp b7\n");
    ]

let test_parser_operand () =
  Alcotest.(check bool) "reg" true (Parser.operand "%12" = Ok (Ir.Reg 12));
  Alcotest.(check bool) "imm" true (Parser.operand "-3" = Ok (Ir.Imm (-3)));
  Alcotest.(check bool) "junk" true (Result.is_error (Parser.operand "zzz"))

let test_parser_all_opcodes () =
  (* One function exercising every instruction kind and terminator. *)
  let text =
    "func zoo(%0, %1):\n\
     b0:\n\
     %2 = add %0, 1\n\
     %3 = sub %2, %1\n\
     %4 = mul %3, 3\n\
     %5 = div %4, 2\n\
     %6 = rem %5, 7\n\
     %7 = and %6, 15\n\
     %8 = or %7, 1\n\
     %9 = xor %8, %2\n\
     %10 = shl %9, 1\n\
     %11 = shr %10, 1\n\
     %12 = icmp ge %11, 0\n\
     %13 = select %12, %11, 0\n\
     store [%0], %13\n\
     prefetch [%0]\n\
     work 5\n\
     %14 = load [%0]\n\
     br %12, b1, b2\n\
     b1:\n\
     ret %14\n\
     b2:\n\
     ret\n"
  in
  match Parser.func text with
  | Error e -> Alcotest.fail e
  | Ok f ->
    let printed = Printer.func_to_string f in
    (match Parser.func printed with
    | Ok g ->
      Alcotest.(check string) "stable under reprint" printed
        (Printer.func_to_string g)
    | Error e -> Alcotest.fail e);
    (* run it to make sure the zoo executes *)
    let mem = Aptget_mem.Memory.create () in
    let r = Aptget_mem.Memory.alloc mem ~name:"r" ~words:8 in
    let out =
      Aptget_machine.Machine.execute
        ~args:[ r.Aptget_mem.Memory.base; 2 ]
        ~mem f
    in
    Alcotest.(check bool) "returned" true (out.Aptget_machine.Machine.ret <> None)

let prop_parser_roundtrip_workloads =
  QCheck.Test.make ~name:"parser roundtrips workload kernels" ~count:8
    QCheck.(int_range 1 6)
    (fun log_inner ->
      let inner = 1 lsl log_inner in
      let p =
        {
          Aptget_workloads.Micro.default_params with
          Aptget_workloads.Micro.total = 256;
          inner;
          table_words = 4096;
        }
      in
      let inst = Aptget_workloads.Micro.build p in
      let text = Printer.func_to_string inst.Aptget_workloads.Workload.func in
      match Parser.func text with
      | Ok g -> Printer.func_to_string g = text
      | Error _ -> false)

let () =
  Alcotest.run "ir"
    [
      ( "builder",
        [
          Alcotest.test_case "verifies" `Quick test_builder_verifies;
          Alcotest.test_case "loop shape" `Quick test_builder_loop_shape;
          Alcotest.test_case "if-then" `Quick test_builder_if_then;
          Alcotest.test_case "double terminator" `Quick test_builder_rejects_double_term;
          Alcotest.test_case "emit after terminator" `Quick
            test_builder_rejects_emit_after_term;
        ] );
      ( "ir",
        [
          Alcotest.test_case "successors" `Quick test_successors;
          Alcotest.test_case "predecessors" `Quick test_predecessors;
          Alcotest.test_case "operands/map" `Quick test_operands_and_map;
          Alcotest.test_case "copy isolated" `Quick test_copy_func_isolated;
          Alcotest.test_case "instr count" `Quick test_instr_count;
        ] );
      ( "layout",
        [
          Alcotest.test_case "roundtrip" `Quick test_layout_roundtrip;
          Alcotest.test_case "instr_at" `Quick test_layout_instr_at;
          Alcotest.test_case "loads" `Quick test_layout_loads;
          QCheck_alcotest.to_alcotest prop_layout_roundtrip;
        ] );
      ( "verify",
        [
          Alcotest.test_case "bad target" `Quick test_verify_bad_target;
          Alcotest.test_case "undefined use" `Quick test_verify_undefined_use;
          Alcotest.test_case "double def" `Quick test_verify_double_def;
          Alcotest.test_case "phi mismatch" `Quick test_verify_phi_mismatch;
          Alcotest.test_case "entry phi" `Quick test_verify_entry_phi;
          Alcotest.test_case "accepts good" `Quick test_verify_accepts_good;
        ] );
      ("printer", [ Alcotest.test_case "renders" `Quick test_printer_renders ]);
      ( "parser",
        [
          Alcotest.test_case "roundtrip" `Quick test_parser_roundtrip_simple;
          Alcotest.test_case "hand-written kernel" `Quick test_parser_hand_written;
          Alcotest.test_case "errors" `Quick test_parser_errors;
          Alcotest.test_case "all opcodes" `Quick test_parser_all_opcodes;
          Alcotest.test_case "operands" `Quick test_parser_operand;
          QCheck_alcotest.to_alcotest prop_parser_roundtrip_workloads;
        ] );
    ]
