(* Every workload builds well-formed IR, runs on the simulator, and
   passes its own semantic verifier on small instances. *)

module Machine = Aptget_machine.Machine
module Workload = Aptget_workloads.Workload
module Graph_kernels = Aptget_workloads.Graph_kernels
module Micro = Aptget_workloads.Micro
module Is = Aptget_workloads.Is
module Cg = Aptget_workloads.Cg
module Randacc = Aptget_workloads.Randacc
module Hashjoin = Aptget_workloads.Hashjoin
module Suite = Aptget_workloads.Suite
module Generate = Aptget_graph.Generate
module Csr = Aptget_graph.Csr
module Aj = Aptget_passes.Aj

let run_and_verify (inst : Workload.instance) =
  Verify.check_exn inst.Workload.func;
  let out =
    Machine.execute ~args:inst.Workload.args ~mem:inst.Workload.mem
      inst.Workload.func
  in
  (match inst.Workload.verify inst.Workload.mem out.Machine.ret with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  out

let small_graph ?(seed = 9) () = Generate.uniform ~seed ~n:2000 ~degree:6
let small_sym ?(seed = 9) () = Csr.symmetrize (Generate.uniform ~seed ~n:2000 ~degree:3)

let test_bfs () =
  let out = run_and_verify (Graph_kernels.bfs (small_sym ())) in
  Alcotest.(check bool) "visited most vertices" true
    (match out.Machine.ret with Some v -> v > 1000 | None -> false)

let test_bfs_isolated_source () =
  (* a graph where vertex 0 has no edges: BFS visits only the source *)
  let g = Csr.of_edges ~n:4 [| (1, 2); (2, 3) |] in
  let out = run_and_verify (Graph_kernels.bfs ~source:0 g) in
  Alcotest.(check (option int)) "only source" (Some 1) out.Machine.ret

let test_bfs_chain_distances () =
  let g = Csr.of_edges ~n:5 [| (0, 1); (1, 2); (2, 3); (3, 4) |] in
  let inst = Graph_kernels.bfs g in
  ignore (run_and_verify inst)
  (* the verifier itself compares distances against the host mirror *)

let test_dfs () =
  let out = run_and_verify (Graph_kernels.dfs (small_sym ())) in
  Alcotest.(check bool) "visited most vertices" true
    (match out.Machine.ret with Some v -> v > 1000 | None -> false)

let test_pagerank () =
  ignore (run_and_verify (Graph_kernels.pagerank ~iters:2 (small_graph ())))

let test_sssp () =
  let g = Generate.random_weights ~seed:4 (small_graph ()) in
  ignore (run_and_verify (Graph_kernels.sssp ~rounds:2 g))

let test_bc () =
  ignore (run_and_verify (Graph_kernels.bc ~max_rounds:8 (small_sym ())))

let test_micro_checksum () =
  let p = { Micro.default_params with Micro.total = 4096; table_words = 65_536 } in
  let out = run_and_verify (Micro.build p) in
  Alcotest.(check (option int)) "checksum" (Some (Micro.accumulate_expected p))
    out.Machine.ret

let test_micro_rejects_bad_params () =
  Alcotest.(check bool) "indivisible" true
    (try
       ignore (Micro.build { Micro.default_params with Micro.total = 100; inner = 7 });
       false
     with Invalid_argument _ -> true)

let test_micro_has_indirect_load () =
  let p = { Micro.default_params with Micro.total = 4096; table_words = 65_536 } in
  let inst = Micro.build p in
  Alcotest.(check bool) "delinquent pc found" true
    (Micro.delinquent_load_pc inst > 0)

let test_is () =
  let p = { Is.n_keys = 8192; key_range = 16_384; iterations = 2; seed = 1 } in
  ignore (run_and_verify (Is.build p))

let test_cg () =
  let p = { Cg.rows = 4096; nnz_per_row = 4; iterations = 2; seed = 2 } in
  ignore (run_and_verify (Cg.build p))

let test_randacc () =
  let p = { Randacc.table_words = 1 lsl 14; updates = 8192; seed = 3 } in
  ignore (run_and_verify (Randacc.build p))

let test_randacc_requires_pow2 () =
  Alcotest.(check bool) "rejected" true
    (try
       ignore (Randacc.build { Randacc.table_words = 1000; updates = 10; seed = 1 });
       false
     with Invalid_argument _ -> true)

let test_hashjoin_both_variants () =
  List.iter
    (fun base ->
      List.iter
        (fun algo ->
          let p =
            { base with Hashjoin.n_build = 4096; n_probe = 2048;
              n_buckets = 1 lsl 11; algo }
          in
          let out = run_and_verify (Hashjoin.build p) in
          Alcotest.(check bool) "found matches" true
            (match out.Machine.ret with Some v -> v > 0 | None -> false))
        [ Hashjoin.Npo; Hashjoin.Npo_st ])
    [ Hashjoin.hj2_params; Hashjoin.hj8_params ]

let test_is_classes_distinct () =
  Alcotest.(check bool) "class C is bigger" true
    (Is.class_c.Is.n_keys > Is.class_b.Is.n_keys
    && Is.class_c.Is.key_range > Is.class_b.Is.key_range)

let test_all_kernels_have_indirect_candidates () =
  (* The pass must find something to do in every suite application. *)
  let checks =
    [
      ("bfs", (Graph_kernels.bfs (small_sym ())).Workload.func);
      ("is", (Is.build { Is.n_keys = 1024; key_range = 4096; iterations = 1; seed = 1 }).Workload.func);
      ( "hj",
        (Hashjoin.build
           { Hashjoin.hj2_params with Hashjoin.n_build = 512; n_probe = 256; n_buckets = 256 }).Workload.func );
      ( "randacc",
        (Randacc.build { Randacc.table_words = 1024; updates = 128; seed = 1 }).Workload.func );
    ]
  in
  List.iter
    (fun (name, f) ->
      Alcotest.(check bool) (name ^ " has candidates") true
        (Aj.candidate_loads f <> []))
    checks

let test_suite_registry () =
  Alcotest.(check int) "fifteen entries" 15 (List.length Suite.default);
  Alcotest.(check bool) "nested subset" true
    (List.length Suite.nested < List.length Suite.default);
  (match Suite.find "hj8-npo" with
  | Some w -> Alcotest.(check string) "case-insensitive" "HJ8-NPO" w.Workload.name
  | None -> Alcotest.fail "HJ8-NPO not found");
  Alcotest.(check int) "train/test pairs" 5 (List.length Suite.train_test)

let test_workload_rebuild_deterministic () =
  let w = Suite.micro ~inner:16 ~complexity:0 in
  let i1 = w.Workload.build () in
  let i2 = w.Workload.build () in
  let o1 = Machine.execute ~args:i1.Workload.args ~mem:i1.Workload.mem i1.Workload.func in
  let o2 = Machine.execute ~args:i2.Workload.args ~mem:i2.Workload.mem i2.Workload.func in
  Alcotest.(check bool) "identical runs" true
    (o1.Machine.cycles = o2.Machine.cycles && o1.Machine.ret = o2.Machine.ret)

let () =
  Alcotest.run "workloads"
    [
      ( "graph kernels",
        [
          Alcotest.test_case "bfs" `Quick test_bfs;
          Alcotest.test_case "bfs isolated source" `Quick test_bfs_isolated_source;
          Alcotest.test_case "bfs chain" `Quick test_bfs_chain_distances;
          Alcotest.test_case "dfs" `Quick test_dfs;
          Alcotest.test_case "pagerank" `Quick test_pagerank;
          Alcotest.test_case "sssp" `Quick test_sssp;
          Alcotest.test_case "bc" `Quick test_bc;
        ] );
      ( "micro",
        [
          Alcotest.test_case "checksum" `Quick test_micro_checksum;
          Alcotest.test_case "bad params" `Quick test_micro_rejects_bad_params;
          Alcotest.test_case "indirect load" `Quick test_micro_has_indirect_load;
        ] );
      ( "other apps",
        [
          Alcotest.test_case "is" `Quick test_is;
          Alcotest.test_case "cg" `Quick test_cg;
          Alcotest.test_case "randacc" `Quick test_randacc;
          Alcotest.test_case "randacc pow2" `Quick test_randacc_requires_pow2;
          Alcotest.test_case "hashjoin" `Quick test_hashjoin_both_variants;
          Alcotest.test_case "IS classes" `Quick test_is_classes_distinct;
        ] );
      ( "suite",
        [
          Alcotest.test_case "candidates everywhere" `Quick
            test_all_kernels_have_indirect_candidates;
          Alcotest.test_case "registry" `Quick test_suite_registry;
          Alcotest.test_case "deterministic rebuild" `Quick
            test_workload_rebuild_deterministic;
        ] );
    ]
