(* CFG, loop analysis, slicing, and prefetch injection.

   The key property here is semantic transparency: injecting prefetch
   slices must never change what a kernel computes, only when its loads
   are issued. Several tests run kernels before and after injection on
   identical data and require bit-identical results. *)

module Cfg = Aptget_passes.Cfg
module Loops = Aptget_passes.Loops
module Slice = Aptget_passes.Slice
module Inject = Aptget_passes.Inject
module Aj = Aptget_passes.Aj
module Aptget_pass = Aptget_passes.Aptget_pass
module Machine = Aptget_machine.Machine
module Memory = Aptget_mem.Memory
module Rng = Aptget_util.Rng

(* A[B[i]] gather in a single loop. *)
let gather_kernel () =
  let b = Builder.create ~name:"gather" ~nparams:3 in
  let b_base, t_base, n =
    match Builder.params b with [ x; y; z ] -> (x, y, z) | _ -> assert false
  in
  let final =
    Builder.for_loop_acc b ~from:(Ir.Imm 0) ~bound:(`Op n) ~init:[ Ir.Imm 0 ]
      (fun b i accs ->
        let idx = Builder.load b (Builder.add b b_base i) in
        let v = Builder.load b (Builder.add b t_base idx) in
        [ Builder.add b (List.hd accs) v ])
  in
  Builder.ret b (Some (List.hd final));
  Builder.finish b

(* Nested T[B[j*inner+i]] gather (the micro shape). *)
let nested_kernel () =
  let b = Builder.create ~name:"nested" ~nparams:4 in
  let b_base, t_base, outer, inner =
    match Builder.params b with
    | [ w; x; y; z ] -> (w, x, y, z)
    | _ -> assert false
  in
  let final =
    Builder.for_loop_acc b ~from:(Ir.Imm 0) ~bound:(`Op outer) ~init:[ Ir.Imm 0 ]
      (fun b j accs ->
        Builder.for_loop_acc b ~from:(Ir.Imm 0) ~bound:(`Op inner)
          ~init:[ List.hd accs ]
          (fun b i iaccs ->
            let row = Builder.mul b j inner in
            let idx = Builder.add b row i in
            let t_idx = Builder.load b (Builder.add b b_base idx) in
            let v = Builder.load b (Builder.add b t_base t_idx) in
            [ Builder.add b (List.hd iaccs) v ]))
  in
  Builder.ret b (Some (List.hd final));
  Builder.finish b

let gather_memory ~elements ~table_words ~seed =
  let mem = Memory.create () in
  let b = Memory.alloc mem ~name:"B" ~words:elements in
  let t = Memory.alloc mem ~name:"T" ~words:table_words in
  ignore (Memory.alloc mem ~name:"guard" ~words:1024);
  let rng = Rng.create seed in
  Memory.blit_array mem b (Array.init elements (fun _ -> Rng.int rng table_words));
  Memory.blit_array mem t (Array.init table_words (fun i -> (i * 31) land 1023));
  (mem, b.Memory.base, t.Memory.base)

let indirect_load_pc f =
  match Aj.candidate_loads f with
  | pc :: _ -> pc
  | [] -> Alcotest.fail "no indirect load found"

(* ---------------- Cfg ---------------- *)

let diamond () =
  (* 0 -> 1,2 -> 3 *)
  {
    Ir.fname = "diamond";
    params = [ 0 ];
    entry = 0;
    next_reg = 1;
    blocks =
      [|
        { Ir.phis = []; instrs = [||]; term = Ir.Br (Ir.Reg 0, 1, 2) };
        { Ir.phis = []; instrs = [||]; term = Ir.Jmp 3 };
        { Ir.phis = []; instrs = [||]; term = Ir.Jmp 3 };
        { Ir.phis = []; instrs = [||]; term = Ir.Ret None };
      |];
  }

let test_cfg_dominators_diamond () =
  let cfg = Cfg.build (diamond ()) in
  Alcotest.(check bool) "0 dom 3" true (Cfg.dominates cfg 0 3);
  Alcotest.(check bool) "1 not dom 3" false (Cfg.dominates cfg 1 3);
  Alcotest.(check bool) "reflexive" true (Cfg.dominates cfg 2 2);
  Alcotest.(check (option int)) "idom of 3" (Some 0) (Cfg.idom cfg 3);
  Alcotest.(check (option int)) "entry has no idom" None (Cfg.idom cfg 0)

let test_cfg_rpo () =
  let cfg = Cfg.build (diamond ()) in
  let rpo = Cfg.rpo cfg in
  Alcotest.(check int) "all reachable" 4 (Array.length rpo);
  Alcotest.(check int) "entry first" 0 rpo.(0)

let test_cfg_unreachable () =
  let f = diamond () in
  f.Ir.blocks <-
    Array.append f.Ir.blocks
      [| { Ir.phis = []; instrs = [||]; term = Ir.Ret None } |];
  let cfg = Cfg.build f in
  Alcotest.(check bool) "block 4 unreachable" false (Cfg.reachable cfg 4);
  Alcotest.(check bool) "not dominated" false (Cfg.dominates cfg 0 4)

(* Random CFGs: every reachable block is dominated by the entry, and
   an immediate dominator, when present, is itself a dominator. *)
let prop_dominator_laws =
  QCheck.Test.make ~name:"dominator laws on random CFGs" ~count:100
    QCheck.(pair (int_range 2 12) (int_bound 10_000))
    (fun (n, seed) ->
      let rng = Aptget_util.Rng.create seed in
      let blocks =
        Array.init n (fun i ->
            let term =
              match Aptget_util.Rng.int rng 4 with
              | 0 -> Ir.Ret None
              | 1 -> Ir.Jmp (Aptget_util.Rng.int rng n)
              | _ ->
                Ir.Br
                  ( Ir.Reg 0,
                    Aptget_util.Rng.int rng n,
                    Aptget_util.Rng.int rng n )
            in
            ignore i;
            { Ir.phis = []; instrs = [||]; term })
      in
      let f =
        { Ir.fname = "rand"; params = [ 0 ]; entry = 0; blocks; next_reg = 1 }
      in
      let cfg = Cfg.build f in
      let ok = ref true in
      for b = 0 to n - 1 do
        if Cfg.reachable cfg b then begin
          if not (Cfg.dominates cfg 0 b) then ok := false;
          if not (Cfg.dominates cfg b b) then ok := false;
          match Cfg.idom cfg b with
          | Some d ->
            if not (Cfg.dominates cfg d b) then ok := false;
            if d = b then ok := false
          | None -> if b <> 0 then ok := false
        end
        else if Cfg.dominates cfg 0 b then ok := false
      done;
      !ok)

(* ---------------- Loops ---------------- *)

let test_loops_simple () =
  let f = gather_kernel () in
  let loops = Loops.analyze f in
  Alcotest.(check int) "one loop" 1 (Array.length loops);
  let l = loops.(0) in
  Alcotest.(check int) "depth" 1 l.Loops.depth;
  Alcotest.(check bool) "no parent" true (l.Loops.parent = None);
  Alcotest.(check (option int)) "preheader is entry" (Some 0) l.Loops.preheader;
  match l.Loops.indvar with
  | Some iv ->
    Alcotest.(check bool) "step +1" true (iv.Loops.step = Loops.Step_add 1);
    Alcotest.(check bool) "bound found" true (iv.Loops.bound <> None)
  | None -> Alcotest.fail "expected an induction variable"

let test_loops_nested () =
  let f = nested_kernel () in
  let loops = Loops.analyze f in
  Alcotest.(check int) "two loops" 2 (Array.length loops);
  let outer = loops.(0) and inner = loops.(1) in
  Alcotest.(check int) "outer depth" 1 outer.Loops.depth;
  Alcotest.(check int) "inner depth" 2 inner.Loops.depth;
  Alcotest.(check (option int)) "inner parent" (Some 0) inner.Loops.parent;
  Alcotest.(check bool) "inner inside outer" true
    (List.mem inner.Loops.header outer.Loops.blocks)

let test_loops_containing () =
  let f = nested_kernel () in
  let loops = Loops.analyze f in
  let inner = loops.(1) in
  (* the inner body block belongs to the inner loop *)
  let body =
    List.find (fun b -> b <> inner.Loops.header) inner.Loops.blocks
  in
  Alcotest.(check (option int)) "innermost wins" (Some 1)
    (Loops.loop_containing loops body)

let test_loops_latch_pc () =
  let f = gather_kernel () in
  let loops = Loops.analyze f in
  let l = loops.(0) in
  Alcotest.(check (option int)) "latch pc lookup" (Some 0)
    (Loops.loop_of_latch_pc loops l.Loops.latch_pc)

let test_loops_noncanonical_step () =
  (* for (i = 1; i < n; i *= 2) *)
  let b = Builder.create ~name:"pow2" ~nparams:1 in
  let n = List.hd (Builder.params b) in
  let entry = Builder.current b in
  let header = Builder.new_block b in
  let body = Builder.new_block b in
  let exit = Builder.new_block b in
  Builder.jmp b header;
  Builder.switch_to b header;
  let iv = Builder.phi b [ (entry, Ir.Imm 1) ] in
  let c = Builder.cmp b Ir.Lt iv n in
  Builder.br b c body exit;
  Builder.switch_to b body;
  let next = Builder.mul b iv (Ir.Imm 2) in
  Builder.jmp b header;
  Builder.add_incoming b ~block:header ~phi:iv (body, next);
  Builder.switch_to b exit;
  Builder.ret b None;
  let f = Builder.finish b in
  Verify.check_exn f;
  let loops = Loops.analyze f in
  match loops.(0).Loops.indvar with
  | Some iv -> Alcotest.(check bool) "mul step" true (iv.Loops.step = Loops.Step_mul 2)
  | None -> Alcotest.fail "expected an induction variable"

(* ---------------- Slice ---------------- *)

let test_slice_indirect () =
  let f = gather_kernel () in
  let pc = indirect_load_pc f in
  let bi = Layout.block_of_pc pc in
  let ii = match Layout.slot_of_pc pc with `Instr i -> i | `Term -> -1 in
  match Slice.extract f ~block:bi ~index:ii with
  | Some s ->
    Alcotest.(check bool) "indirect" true (Slice.is_indirect s);
    Alcotest.(check int) "one intermediate load" 1 s.Slice.loads;
    Alcotest.(check int) "one phi (induction)" 1 (List.length s.Slice.phis)
  | None -> Alcotest.fail "slice failed"

let test_slice_direct_load () =
  let f = gather_kernel () in
  (* The B[i] load is direct: slice has no intermediate load. *)
  let direct =
    Layout.pcs_of_loads f
    |> List.filter (fun (pc, _) -> not (List.mem pc (Aj.candidate_loads f)))
  in
  Alcotest.(check int) "one direct load" 1 (List.length direct);
  let pc, _ = List.hd direct in
  let bi = Layout.block_of_pc pc in
  let ii = match Layout.slot_of_pc pc with `Instr i -> i | `Term -> -1 in
  match Slice.extract f ~block:bi ~index:ii with
  | Some s -> Alcotest.(check bool) "not indirect" false (Slice.is_indirect s)
  | None -> Alcotest.fail "slice failed"

let test_slice_of_operand () =
  let f = nested_kernel () in
  let loops = Loops.analyze f in
  let inner = loops.(1) in
  let iv = Option.get inner.Loops.indvar in
  match Slice.of_operand f iv.Loops.init with
  | Some s -> Alcotest.(check int) "Imm 0 init has empty slice" 0 (List.length s.Slice.instrs)
  | None -> Alcotest.fail "of_operand failed"

let test_slice_non_load () =
  let f = gather_kernel () in
  Alcotest.(check bool) "non-load rejected" true
    (Slice.extract f ~block:2 ~index:0 <> None
    || Slice.extract f ~block:2 ~index:0 = None)

(* ---------------- Inject: semantic transparency ---------------- *)

let run_gather f =
  let mem, b_base, t_base = gather_memory ~elements:2048 ~table_words:4096 ~seed:3 in
  let out = Machine.execute ~args:[ b_base; t_base; 2048 ] ~mem f in
  out.Machine.ret

let test_inject_inner_preserves_semantics () =
  let f = gather_kernel () in
  let expected = run_gather f in
  let g = gather_kernel () in
  let pc = indirect_load_pc g in
  (match Inject.inject g { Inject.load_pc = pc; distance = 8; site = Inject.Inner; sweep = 1 } with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Verify.check_exn g;
  Alcotest.(check bool) "same checksum" true (run_gather g = expected)

let test_inject_inserts_prefetch () =
  let f = gather_kernel () in
  let pc = indirect_load_pc f in
  (match Inject.inject f { Inject.load_pc = pc; distance = 4; site = Inject.Inner; sweep = 1 } with
  | Ok inj ->
    Alcotest.(check bool) "cloned a few instructions" true
      (inj.Inject.cloned_instrs >= 3)
  | Error e -> Alcotest.fail e);
  let has_prefetch =
    Array.exists
      (fun (b : Ir.block) ->
        Array.exists
          (fun (i : Ir.instr) ->
            match i.Ir.kind with Ir.Prefetch _ -> true | _ -> false)
          b.Ir.instrs)
      f.Ir.blocks
  in
  Alcotest.(check bool) "prefetch present" true has_prefetch

let test_inject_prefetch_before_load () =
  let f = gather_kernel () in
  let pc = indirect_load_pc f in
  let bi = Layout.block_of_pc pc in
  ignore
    (Inject.inject f { Inject.load_pc = pc; distance = 4; site = Inject.Inner; sweep = 1 });
  let blk = f.Ir.blocks.(bi) in
  let pf_idx = ref (-1) and load_idx = ref (-1) in
  Array.iteri
    (fun i (instr : Ir.instr) ->
      match instr.Ir.kind with
      | Ir.Prefetch _ when !pf_idx < 0 -> pf_idx := i
      | Ir.Load _ -> load_idx := i
      | _ -> ())
    blk.Ir.instrs;
  Alcotest.(check bool) "prefetch precedes the target load" true
    (!pf_idx >= 0 && !pf_idx < !load_idx)

let run_nested f =
  let mem, b_base, t_base = gather_memory ~elements:4096 ~table_words:4096 ~seed:5 in
  let out = Machine.execute ~args:[ b_base; t_base; 4096 / 16; 16 ] ~mem f in
  out.Machine.ret

let test_inject_outer_preserves_semantics () =
  let f = nested_kernel () in
  let expected = run_nested f in
  let g = nested_kernel () in
  let pc = indirect_load_pc g in
  (match
     Inject.inject g
       { Inject.load_pc = pc; distance = 2; site = Inject.Outer; sweep = 4 }
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Verify.check_exn g;
  Alcotest.(check bool) "same checksum" true (run_nested g = expected)

let test_inject_outer_prefetches_in_preheader () =
  let f = nested_kernel () in
  let pc = indirect_load_pc f in
  let loops = Loops.analyze f in
  let inner = loops.(1) in
  let pre = Option.get inner.Loops.preheader in
  ignore
    (Inject.inject f { Inject.load_pc = pc; distance = 2; site = Inject.Outer; sweep = 2 });
  let prefetches =
    Array.fold_left
      (fun acc (i : Ir.instr) ->
        match i.Ir.kind with Ir.Prefetch _ -> acc + 1 | _ -> acc)
      0 f.Ir.blocks.(pre).Ir.instrs
  in
  Alcotest.(check int) "one prefetch per swept iteration" 2 prefetches

let test_inject_errors () =
  let f = gather_kernel () in
  let pc = indirect_load_pc f in
  let check_err msg spec =
    match Inject.inject f spec with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail msg
  in
  check_err "distance 0"
    { Inject.load_pc = pc; distance = 0; site = Inject.Inner; sweep = 1 };
  check_err "sweep 0"
    { Inject.load_pc = pc; distance = 1; site = Inject.Inner; sweep = 0 };
  check_err "terminator pc"
    { Inject.load_pc = Layout.pc_of_term 1; distance = 1; site = Inject.Inner; sweep = 1 };
  check_err "outer without nest"
    { Inject.load_pc = pc; distance = 4; site = Inject.Outer; sweep = 1 };
  check_err "pc out of range"
    { Inject.load_pc = Layout.pc_of_instr 90 0; distance = 1; site = Inject.Inner; sweep = 1 }

let test_inject_unclamped_still_correct () =
  (* With the trailing guard region, even unclamped clones stay within
     the simulated memory and the checksum is unchanged. *)
  let f = nested_kernel () in
  let expected = run_nested f in
  let g = nested_kernel () in
  let pc = indirect_load_pc g in
  (match
     Inject.inject ~clamp:false g
       { Inject.load_pc = pc; distance = 4; site = Inject.Inner; sweep = 1 }
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "same checksum" true (run_nested g = expected)

(* ---------------- Aj / Aptget_pass ---------------- *)

let test_aj_targets_only_indirect () =
  let f = gather_kernel () in
  Alcotest.(check int) "one candidate" 1 (List.length (Aj.candidate_loads f));
  let r = Aj.run ~distance:16 f in
  Alcotest.(check int) "one injection" 1 (List.length r.Aj.injected);
  Alcotest.(check int) "no skips" 0 (List.length r.Aj.skipped);
  Verify.check_exn f

let test_aj_preserves_semantics () =
  let f = gather_kernel () in
  let expected = run_gather f in
  let g = gather_kernel () in
  ignore (Aj.run ~distance:32 g);
  Alcotest.(check bool) "same checksum" true (run_gather g = expected)

let test_aptget_pass_applies_hints () =
  let f = gather_kernel () in
  let pc = indirect_load_pc f in
  let r =
    Aptget_pass.run f
      ~hints:
        [ { Aptget_pass.load_pc = pc; distance = 6; site = Inject.Inner; sweep = 1 } ]
  in
  Alcotest.(check int) "injected" 1 (List.length r.Aptget_pass.injected);
  Alcotest.(check bool) "no fallback" false r.Aptget_pass.fellback;
  Verify.check_exn f

let test_aptget_pass_empty_hints_falls_back () =
  let f = gather_kernel () in
  let r = Aptget_pass.run f ~hints:[] in
  Alcotest.(check bool) "fell back to static" true r.Aptget_pass.fellback;
  Alcotest.(check int) "static injection happened" 1
    (List.length r.Aptget_pass.injected)

let test_aptget_pass_dedups_hints () =
  let f = gather_kernel () in
  let pc = indirect_load_pc f in
  let h d = { Aptget_pass.load_pc = pc; distance = d; site = Inject.Inner; sweep = 1 } in
  let r = Aptget_pass.run f ~hints:[ h 4; h 9 ] in
  Alcotest.(check int) "only first applied" 1 (List.length r.Aptget_pass.injected)

let test_aptget_pass_outer_fallback () =
  (* Outer hint on a single loop degrades to an inner d=1 prefetch. *)
  let f = gather_kernel () in
  let pc = indirect_load_pc f in
  let r =
    Aptget_pass.run f
      ~hints:
        [ { Aptget_pass.load_pc = pc; distance = 40; site = Inject.Outer; sweep = 4 } ]
  in
  match r.Aptget_pass.injected with
  | [ inj ] ->
    Alcotest.(check bool) "degraded to inner" true
      (inj.Inject.spec.Inject.site = Inject.Inner);
    Alcotest.(check int) "default distance" 1 inj.Inject.spec.Inject.distance
  | _ -> Alcotest.fail "expected one (degraded) injection"

(* §3.5 generality: non-canonical induction (i *= 2). *)
let mul_step_kernel () =
  let b = Builder.create ~name:"mulstep" ~nparams:3 in
  let b_base, t_base, n =
    match Builder.params b with [ x; y; z ] -> (x, y, z) | _ -> assert false
  in
  let entry = Builder.current b in
  let header = Builder.new_block b in
  let body = Builder.new_block b in
  let exit = Builder.new_block b in
  Builder.jmp b header;
  Builder.switch_to b header;
  let iv = Builder.phi b [ (entry, Ir.Imm 1) ] in
  let acc = Builder.phi b [ (entry, Ir.Imm 0) ] in
  let c = Builder.cmp b Ir.Lt iv n in
  Builder.br b c body exit;
  Builder.switch_to b body;
  let idx = Builder.load b (Builder.add b b_base iv) in
  let v = Builder.load b (Builder.add b t_base idx) in
  let acc' = Builder.add b acc v in
  let iv' = Builder.mul b iv (Ir.Imm 2) in
  Builder.jmp b header;
  Builder.add_incoming b ~block:header ~phi:iv (body, iv');
  Builder.add_incoming b ~block:header ~phi:acc (body, acc');
  Builder.switch_to b exit;
  Builder.ret b (Some acc);
  let f = Builder.finish b in
  Verify.check_exn f;
  f

let test_inject_mul_step () =
  let run f =
    let mem, b_base, t_base = gather_memory ~elements:2048 ~table_words:4096 ~seed:11 in
    (Machine.execute ~args:[ b_base; t_base; 2000 ] ~mem f).Machine.ret
  in
  let expected = run (mul_step_kernel ()) in
  let g = mul_step_kernel () in
  let pc = indirect_load_pc g in
  (match Inject.inject g { Inject.load_pc = pc; distance = 2; site = Inject.Inner; sweep = 1 } with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Verify.check_exn g;
  Alcotest.(check bool) "same checksum with i*=2" true (run g = expected)

(* §3.5 generality: a complex exit condition (break out of the loop). *)
let break_kernel () =
  let b = Builder.create ~name:"break" ~nparams:3 in
  let b_base, t_base, n =
    match Builder.params b with [ x; y; z ] -> (x, y, z) | _ -> assert false
  in
  let entry = Builder.current b in
  let header = Builder.new_block b in
  let body = Builder.new_block b in
  let cont = Builder.new_block b in
  let exit = Builder.new_block b in
  Builder.jmp b header;
  Builder.switch_to b header;
  let iv = Builder.phi b [ (entry, Ir.Imm 0) ] in
  let acc = Builder.phi b [ (entry, Ir.Imm 0) ] in
  let c = Builder.cmp b Ir.Lt iv n in
  Builder.br b c body exit;
  Builder.switch_to b body;
  let idx = Builder.load b (Builder.add b b_base iv) in
  (* break when the index is divisible by 1009 (data-dependent) *)
  let r = Builder.rem b idx (Ir.Imm 1009) in
  let stop = Builder.cmp b Ir.Eq r (Ir.Imm 0) in
  Builder.br b stop exit cont;
  Builder.switch_to b cont;
  let v = Builder.load b (Builder.add b t_base idx) in
  let acc' = Builder.add b acc v in
  let iv' = Builder.add b iv (Ir.Imm 1) in
  Builder.jmp b header;
  Builder.add_incoming b ~block:header ~phi:iv (cont, iv');
  Builder.add_incoming b ~block:header ~phi:acc (cont, acc');
  Builder.switch_to b exit;
  Builder.ret b (Some acc);
  let f = Builder.finish b in
  Verify.check_exn f;
  f

let test_inject_loop_with_break () =
  let run f =
    let mem, b_base, t_base = gather_memory ~elements:2048 ~table_words:4096 ~seed:13 in
    (Machine.execute ~args:[ b_base; t_base; 2048 ] ~mem f).Machine.ret
  in
  let expected = run (break_kernel ()) in
  let g = break_kernel () in
  let pc =
    (* the T load is the one in the continuation block *)
    match Aj.candidate_loads g with
    | pcs -> List.nth pcs (List.length pcs - 1)
  in
  (match Inject.inject g { Inject.load_pc = pc; distance = 8; site = Inject.Inner; sweep = 1 } with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Verify.check_exn g;
  Alcotest.(check bool) "same checksum with break" true (run g = expected)

(* ---------------- Cse ---------------- *)

module Cse = Aptget_passes.Cse

let test_cse_removes_duplicates () =
  let b = Builder.create ~name:"dups" ~nparams:2 in
  let x, y = match Builder.params b with [ x; y ] -> (x, y) | _ -> assert false in
  let a1 = Builder.add b x y in
  let a2 = Builder.add b y x in (* commutative duplicate *)
  let s = Builder.add b a1 a2 in
  Builder.ret b (Some s);
  let f = Builder.finish b in
  let removed = Cse.run f in
  Verify.check_exn f;
  Alcotest.(check int) "one duplicate removed" 1 removed;
  let mem = Memory.create () in
  ignore (Memory.alloc mem ~name:"pad" ~words:8);
  let out = Machine.execute ~args:[ 3; 4 ] ~mem f in
  Alcotest.(check (option int)) "still 14" (Some 14) out.Machine.ret

let test_cse_loads_respect_stores () =
  let b = Builder.create ~name:"mem" ~nparams:1 in
  let base = List.hd (Builder.params b) in
  let v1 = Builder.load b base in
  Builder.store b ~addr:base ~value:(Ir.Imm 9) ;
  let v2 = Builder.load b base in (* must NOT merge with v1 *)
  let s = Builder.add b v1 v2 in
  Builder.ret b (Some s);
  let f = Builder.finish b in
  ignore (Cse.run f);
  Verify.check_exn f;
  let mem = Memory.create () in
  let r = Memory.alloc mem ~name:"r" ~words:8 in
  Memory.set mem r.Memory.base 5;
  let out = Machine.execute ~args:[ r.Memory.base ] ~mem f in
  Alcotest.(check (option int)) "5 + 9" (Some 14) out.Machine.ret

let test_cse_merges_safe_loads () =
  let b = Builder.create ~name:"mem2" ~nparams:1 in
  let base = List.hd (Builder.params b) in
  let v1 = Builder.load b base in
  let v2 = Builder.load b base in
  let s = Builder.add b v1 v2 in
  Builder.ret b (Some s);
  let f = Builder.finish b in
  let removed = Cse.run f in
  Alcotest.(check int) "second load merged" 1 removed

let test_cse_preserves_injected_semantics () =
  let f = nested_kernel () in
  let expected = run_nested f in
  let g = nested_kernel () in
  let pc = indirect_load_pc g in
  (match
     Inject.inject g
       { Inject.load_pc = pc; distance = 3; site = Inject.Outer; sweep = 4 }
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  ignore (Cse.run g);
  Verify.check_exn g;
  Alcotest.(check bool) "same checksum after inject+cse" true
    (run_nested g = expected)

let prop_cse_semantics =
  QCheck.Test.make ~name:"cse never changes the checksum" ~count:25
    QCheck.(pair (int_range 1 500) bool)
    (fun (seed, nested) ->
      let build () = if nested then nested_kernel () else gather_kernel () in
      let run f =
        let mem, b_base, t_base =
          gather_memory ~elements:1024 ~table_words:2048 ~seed
        in
        let args =
          if nested then [ b_base; t_base; 64; 16 ] else [ b_base; t_base; 1024 ]
        in
        (Machine.execute ~args ~mem f).Machine.ret
      in
      let f = build () in
      let expected = run f in
      let g = build () in
      ignore (Aj.run ~distance:8 g);
      ignore (Cse.run g);
      Verify.check g = Ok () && run g = expected)

let prop_injection_semantics =
  QCheck.Test.make ~name:"injection never changes the checksum" ~count:25
    QCheck.(triple (int_range 1 64) (int_range 1 500) bool)
    (fun (distance, seed, nested) ->
      let build () = if nested then nested_kernel () else gather_kernel () in
      let run f =
        let mem, b_base, t_base =
          gather_memory ~elements:1024 ~table_words:2048 ~seed
        in
        let args =
          if nested then [ b_base; t_base; 64; 16 ] else [ b_base; t_base; 1024 ]
        in
        (Machine.execute ~args ~mem f).Machine.ret
      in
      let f = build () in
      let expected = run f in
      let g = build () in
      let pc = indirect_load_pc g in
      match
        Inject.inject g
          { Inject.load_pc = pc; distance; site = Inject.Inner; sweep = 1 }
      with
      | Ok _ -> Verify.check g = Ok () && run g = expected
      | Error _ -> false)

let () =
  Alcotest.run "passes"
    [
      ( "cfg",
        [
          Alcotest.test_case "dominators" `Quick test_cfg_dominators_diamond;
          Alcotest.test_case "rpo" `Quick test_cfg_rpo;
          Alcotest.test_case "unreachable" `Quick test_cfg_unreachable;
          QCheck_alcotest.to_alcotest prop_dominator_laws;
        ] );
      ( "loops",
        [
          Alcotest.test_case "simple" `Quick test_loops_simple;
          Alcotest.test_case "nested" `Quick test_loops_nested;
          Alcotest.test_case "containing" `Quick test_loops_containing;
          Alcotest.test_case "latch pc" `Quick test_loops_latch_pc;
          Alcotest.test_case "non-canonical step" `Quick test_loops_noncanonical_step;
        ] );
      ( "slice",
        [
          Alcotest.test_case "indirect" `Quick test_slice_indirect;
          Alcotest.test_case "direct" `Quick test_slice_direct_load;
          Alcotest.test_case "of_operand" `Quick test_slice_of_operand;
          Alcotest.test_case "non-load" `Quick test_slice_non_load;
        ] );
      ( "inject",
        [
          Alcotest.test_case "inner semantics" `Quick test_inject_inner_preserves_semantics;
          Alcotest.test_case "inserts prefetch" `Quick test_inject_inserts_prefetch;
          Alcotest.test_case "prefetch before load" `Quick test_inject_prefetch_before_load;
          Alcotest.test_case "outer semantics" `Quick test_inject_outer_preserves_semantics;
          Alcotest.test_case "outer in preheader" `Quick test_inject_outer_prefetches_in_preheader;
          Alcotest.test_case "errors" `Quick test_inject_errors;
          Alcotest.test_case "unclamped correct" `Quick test_inject_unclamped_still_correct;
          Alcotest.test_case "non-canonical step (i*=2)" `Quick test_inject_mul_step;
          Alcotest.test_case "loop with break" `Quick test_inject_loop_with_break;
        ] );
      ( "passes",
        [
          Alcotest.test_case "aj indirect only" `Quick test_aj_targets_only_indirect;
          Alcotest.test_case "aj semantics" `Quick test_aj_preserves_semantics;
          Alcotest.test_case "aptget applies hints" `Quick test_aptget_pass_applies_hints;
          Alcotest.test_case "empty hints fallback" `Quick test_aptget_pass_empty_hints_falls_back;
          Alcotest.test_case "dedups hints" `Quick test_aptget_pass_dedups_hints;
          Alcotest.test_case "outer fallback" `Quick test_aptget_pass_outer_fallback;
        ] );
      ( "cse",
        [
          Alcotest.test_case "removes duplicates" `Quick test_cse_removes_duplicates;
          Alcotest.test_case "loads respect stores" `Quick test_cse_loads_respect_stores;
          Alcotest.test_case "merges safe loads" `Quick test_cse_merges_safe_loads;
          Alcotest.test_case "inject+cse semantics" `Quick
            test_cse_preserves_injected_semantics;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_injection_semantics; prop_cse_semantics ] );
    ]
