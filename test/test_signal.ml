module Conv = Aptget_signal.Conv
module Wavelet = Aptget_signal.Wavelet
module Peaks = Aptget_signal.Peaks

let check_float = Alcotest.(check (float 1e-9))

(* ---------------- Conv ---------------- *)

let test_convolve_identity () =
  let signal = [| 1.; 2.; 3.; 4. |] in
  let out = Conv.convolve_same signal [| 1. |] in
  Alcotest.(check (array (float 1e-9))) "identity" signal out

let test_convolve_box () =
  let out = Conv.convolve_same [| 0.; 1.; 0. |] [| 1.; 1.; 1. |] in
  Alcotest.(check (array (float 1e-9))) "box smear" [| 1.; 1.; 1. |] out

let test_convolve_edges_zero_pad () =
  let out = Conv.convolve_same [| 1.; 1. |] [| 1.; 1.; 1. |] in
  Alcotest.(check (array (float 1e-9))) "zero padded" [| 2.; 2. |] out

let test_moving_average () =
  let out = Conv.moving_average 3 [| 3.; 0.; 3.; 0.; 3. |] in
  check_float "middle" 2. out.(1);
  check_float "middle" 1. out.(2);
  check_float "edge window clamped" 1.5 out.(0)

let test_moving_average_identity () =
  let xs = [| 1.; 5.; 2. |] in
  Alcotest.(check (array (float 1e-9))) "w<=1 copies" xs (Conv.moving_average 1 xs)

(* Pin the prefix-sum moving average to the O(n*w) per-window loop it
   replaced: bit-exact on integer-valued inputs (what the pipeline
   feeds it — histogram counts), within float tolerance on arbitrary
   values where summation order legitimately perturbs rounding. *)
let naive_moving_average w xs =
  let n = Array.length xs in
  if w <= 1 || n = 0 then Array.copy xs
  else begin
    let half = w / 2 in
    Array.init n (fun i ->
        let lo = max 0 (i - half) in
        let hi = min (n - 1) (i + half) in
        let acc = ref 0. in
        for j = lo to hi do
          acc := !acc +. xs.(j)
        done;
        !acc /. float_of_int (hi - lo + 1))
  end

let test_moving_average_matches_naive () =
  let rand = Random.State.make [| 42 |] in
  List.iter
    (fun (n, w) ->
      let ints =
        Array.init n (fun _ -> float_of_int (Random.State.int rand 1000))
      in
      let expect = naive_moving_average w ints in
      let got = Conv.moving_average w ints in
      Array.iteri
        (fun i e ->
          Alcotest.(check bool)
            (Printf.sprintf "int-valued bit-exact n=%d w=%d i=%d" n w i)
            true
            (Int64.equal (Int64.bits_of_float e) (Int64.bits_of_float got.(i))))
        expect;
      let floats = Array.init n (fun _ -> Random.State.float rand 1e6) in
      Alcotest.(check (array (float 1e-6)))
        (Printf.sprintf "floats close n=%d w=%d" n w)
        (naive_moving_average w floats)
        (Conv.moving_average w floats))
    [ (1, 3); (2, 3); (7, 3); (64, 5); (257, 9); (100, 101) ]

let test_gaussian_kernel () =
  let k = Conv.gaussian_kernel ~sigma:1.5 in
  Alcotest.(check bool) "odd length" true (Array.length k mod 2 = 1);
  check_float "normalised" 1. (Array.fold_left ( +. ) 0. k);
  let n = Array.length k in
  for i = 0 to (n / 2) - 1 do
    check_float "symmetric" k.(i) k.(n - 1 - i)
  done

(* ---------------- Wavelet ---------------- *)

let test_ricker_shape () =
  let w = Wavelet.ricker ~points:101 ~a:4. in
  let mid = w.(50) in
  Alcotest.(check bool) "centre positive" true (mid > 0.);
  Alcotest.(check bool) "centre is max" true
    (Array.for_all (fun v -> v <= mid) w);
  (* negative side lobes *)
  Alcotest.(check bool) "side lobes negative" true (w.(42) < 0. && w.(58) < 0.)

let test_ricker_symmetry () =
  let w = Wavelet.ricker ~points:64 ~a:3. in
  for i = 0 to 31 do
    Alcotest.(check (float 1e-9)) "symmetric" w.(i) w.(63 - i)
  done

let test_ricker_near_zero_mean () =
  let w = Wavelet.ricker ~points:400 ~a:4. in
  let sum = Array.fold_left ( +. ) 0. w in
  Alcotest.(check bool) "approx zero mean" true (abs_float sum < 1e-6)

let test_cwt_shape () =
  let signal = Array.make 64 0. in
  let rows = Wavelet.cwt ~widths:[| 1.; 2.; 4. |] signal in
  Alcotest.(check int) "one row per width" 3 (Array.length rows);
  Array.iter
    (fun r -> Alcotest.(check int) "row length" 64 (Array.length r))
    rows

(* ---------------- Peaks ---------------- *)

let gaussian_bump ~centre ~sigma ~amp n =
  Array.init n (fun i ->
      let x = float_of_int (i - centre) in
      amp *. exp (-.(x *. x) /. (2. *. sigma *. sigma)))

let add a b = Array.mapi (fun i v -> v +. b.(i)) a

let test_relative_maxima () =
  Alcotest.(check (list int)) "simple" [ 1; 3 ]
    (Peaks.relative_maxima [| 0.; 2.; 1.; 5.; 0. |]);
  Alcotest.(check (list int)) "plateau has no strict max" []
    (Peaks.relative_maxima [| 1.; 1.; 1. |])

let test_find_peaks_two_bumps () =
  let n = 128 in
  let signal =
    add (gaussian_bump ~centre:30 ~sigma:4. ~amp:10. n)
      (gaussian_bump ~centre:90 ~sigma:5. ~amp:8. n)
  in
  let peaks = Peaks.find_peaks_cwt signal in
  Alcotest.(check bool) "found first bump" true
    (List.exists (fun p -> abs (p - 30) <= 4) peaks);
  Alcotest.(check bool) "found second bump" true
    (List.exists (fun p -> abs (p - 90) <= 5) peaks)

let test_find_peaks_flat () =
  Alcotest.(check (list int)) "flat has none" [] (Peaks.find_peaks_cwt (Array.make 64 0.))

let test_find_peaks_empty () =
  Alcotest.(check (list int)) "empty" [] (Peaks.find_peaks_cwt [||])

let test_find_peaks_naive () =
  let n = 64 in
  let signal = gaussian_bump ~centre:20 ~sigma:3. ~amp:5. n in
  let peaks = Peaks.find_peaks_naive signal in
  Alcotest.(check bool) "near 20" true
    (List.exists (fun p -> abs (p - 20) <= 2) peaks)

let prop_cwt_peaks_in_range =
  QCheck.Test.make ~name:"peak indices in range" ~count:50
    QCheck.(pair small_int (int_range 32 128))
    (fun (seed, n) ->
      let rng = Aptget_util.Rng.create seed in
      let signal =
        Array.init n (fun _ -> Aptget_util.Rng.float rng 10.)
      in
      List.for_all (fun p -> p >= 0 && p < n) (Peaks.find_peaks_cwt signal))

let prop_two_bumps_recovered =
  QCheck.Test.make ~name:"well-separated bumps recovered" ~count:30
    QCheck.(pair (int_range 20 40) (int_range 80 110))
    (fun (c1, c2) ->
      let n = 144 in
      let signal =
        add (gaussian_bump ~centre:c1 ~sigma:4. ~amp:10. n)
          (gaussian_bump ~centre:c2 ~sigma:4. ~amp:10. n)
      in
      let peaks = Peaks.find_peaks_cwt signal in
      List.exists (fun p -> abs (p - c1) <= 5) peaks
      && List.exists (fun p -> abs (p - c2) <= 5) peaks)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_cwt_peaks_in_range; prop_two_bumps_recovered ]

let () =
  Alcotest.run "signal"
    [
      ( "conv",
        [
          Alcotest.test_case "identity" `Quick test_convolve_identity;
          Alcotest.test_case "box" `Quick test_convolve_box;
          Alcotest.test_case "zero pad" `Quick test_convolve_edges_zero_pad;
          Alcotest.test_case "moving average" `Quick test_moving_average;
          Alcotest.test_case "moving average identity" `Quick test_moving_average_identity;
          Alcotest.test_case "moving average matches naive" `Quick
            test_moving_average_matches_naive;
          Alcotest.test_case "gaussian kernel" `Quick test_gaussian_kernel;
        ] );
      ( "wavelet",
        [
          Alcotest.test_case "ricker shape" `Quick test_ricker_shape;
          Alcotest.test_case "ricker symmetry" `Quick test_ricker_symmetry;
          Alcotest.test_case "ricker zero mean" `Quick test_ricker_near_zero_mean;
          Alcotest.test_case "cwt shape" `Quick test_cwt_shape;
        ] );
      ( "peaks",
        [
          Alcotest.test_case "relative maxima" `Quick test_relative_maxima;
          Alcotest.test_case "two bumps" `Quick test_find_peaks_two_bumps;
          Alcotest.test_case "flat" `Quick test_find_peaks_flat;
          Alcotest.test_case "empty" `Quick test_find_peaks_empty;
          Alcotest.test_case "naive finder" `Quick test_find_peaks_naive;
        ] );
      ("properties", qsuite);
    ]
