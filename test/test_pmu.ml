module Lbr = Aptget_pmu.Lbr
module Sampler = Aptget_pmu.Sampler

(* ---------------- Lbr ---------------- *)

let test_lbr_empty () =
  let l = Lbr.create () in
  Alcotest.(check int) "default size" 32 (Lbr.size l);
  Alcotest.(check int) "empty" 0 (Array.length (Lbr.snapshot l))

let test_lbr_partial_fill () =
  let l = Lbr.create ~size:4 () in
  Lbr.record l ~branch_pc:1 ~target_pc:10 ~cycle:100;
  Lbr.record l ~branch_pc:2 ~target_pc:20 ~cycle:200;
  let s = Lbr.snapshot l in
  Alcotest.(check int) "two entries" 2 (Array.length s);
  Alcotest.(check int) "oldest first" 1 s.(0).Lbr.branch_pc;
  Alcotest.(check int) "newest last" 2 s.(1).Lbr.branch_pc

let test_lbr_wraparound () =
  let l = Lbr.create ~size:3 () in
  for i = 1 to 5 do
    Lbr.record l ~branch_pc:i ~target_pc:0 ~cycle:(i * 10)
  done;
  let s = Lbr.snapshot l in
  Alcotest.(check int) "capped at size" 3 (Array.length s);
  Alcotest.(check (list int)) "last three, chronological" [ 3; 4; 5 ]
    (Array.to_list (Array.map (fun e -> e.Lbr.branch_pc) s))

let test_lbr_cycles_monotone () =
  let l = Lbr.create ~size:8 () in
  for i = 1 to 20 do
    Lbr.record l ~branch_pc:i ~target_pc:0 ~cycle:(i * 7)
  done;
  let s = Lbr.snapshot l in
  for i = 0 to Array.length s - 2 do
    Alcotest.(check bool) "monotone cycles" true (s.(i).Lbr.cycle < s.(i + 1).Lbr.cycle)
  done

let test_lbr_clear () =
  let l = Lbr.create ~size:4 () in
  Lbr.record l ~branch_pc:1 ~target_pc:0 ~cycle:0;
  Lbr.clear l;
  Alcotest.(check int) "cleared" 0 (Array.length (Lbr.snapshot l))

let prop_lbr_keeps_most_recent =
  QCheck.Test.make ~name:"snapshot is the most recent suffix" ~count:100
    QCheck.(pair (int_range 1 16) (list_of_size Gen.(0 -- 100) small_nat))
    (fun (size, pcs) ->
      let l = Lbr.create ~size () in
      List.iteri (fun i pc -> Lbr.record l ~branch_pc:pc ~target_pc:0 ~cycle:i) pcs;
      let s = Array.to_list (Array.map (fun e -> e.Lbr.branch_pc) (Lbr.snapshot l)) in
      let expected =
        let n = List.length pcs in
        let keep = min size n in
        List.filteri (fun i _ -> i >= n - keep) pcs
      in
      s = expected)

(* ---------------- Sampler ---------------- *)

let test_sampler_lbr_period () =
  let s = Sampler.create ~lbr_period:100 () in
  Sampler.on_cycle s ~cycle:50;
  Alcotest.(check int) "before period: none" 0 (List.length (Sampler.lbr_samples s));
  Sampler.on_cycle s ~cycle:100;
  Alcotest.(check int) "at period: one" 1 (List.length (Sampler.lbr_samples s));
  Sampler.on_cycle s ~cycle:150;
  Alcotest.(check int) "no resample within period" 1
    (List.length (Sampler.lbr_samples s));
  Sampler.on_cycle s ~cycle:205;
  Alcotest.(check int) "next period" 2 (List.length (Sampler.lbr_samples s))

let test_sampler_long_stall_one_sample () =
  let s = Sampler.create ~lbr_period:100 () in
  Sampler.on_cycle s ~cycle:1_000;
  Alcotest.(check int) "single sample for a long gap" 1
    (List.length (Sampler.lbr_samples s));
  Sampler.on_cycle s ~cycle:1_050;
  Alcotest.(check int) "boundary advanced past the gap" 1
    (List.length (Sampler.lbr_samples s))

let test_sampler_pebs_subsampling () =
  let s = Sampler.create ~pebs_period:4 () in
  for _ = 1 to 16 do
    Sampler.on_llc_miss s ~load_pc:42
  done;
  Alcotest.(check int) "every 4th sampled" 4 (Sampler.miss_samples s);
  (match Sampler.delinquent_loads s with
  | [ (pc, n) ] ->
    Alcotest.(check int) "pc" 42 pc;
    Alcotest.(check int) "count" 4 n
  | _ -> Alcotest.fail "expected one delinquent load")

let test_sampler_delinquent_ranking () =
  let s = Sampler.create ~pebs_period:1 () in
  for _ = 1 to 10 do Sampler.on_llc_miss s ~load_pc:1 done;
  for _ = 1 to 5 do Sampler.on_llc_miss s ~load_pc:2 done;
  for _ = 1 to 20 do Sampler.on_llc_miss s ~load_pc:3 done;
  Alcotest.(check (list int)) "descending by count" [ 3; 1; 2 ]
    (List.map fst (Sampler.delinquent_loads s))

let test_sampler_snapshot_captures_ring () =
  let s = Sampler.create ~lbr_period:10 ~lbr_size:4 () in
  Lbr.record (Sampler.lbr s) ~branch_pc:9 ~target_pc:0 ~cycle:5;
  Sampler.on_cycle s ~cycle:10;
  match Sampler.lbr_samples s with
  | [ sample ] ->
    Alcotest.(check int) "one entry" 1 (Array.length sample.Sampler.entries);
    Alcotest.(check int) "pc preserved" 9 sample.Sampler.entries.(0).Lbr.branch_pc
  | _ -> Alcotest.fail "expected exactly one sample"

let () =
  Alcotest.run "pmu"
    [
      ( "lbr",
        [
          Alcotest.test_case "empty" `Quick test_lbr_empty;
          Alcotest.test_case "partial fill" `Quick test_lbr_partial_fill;
          Alcotest.test_case "wraparound" `Quick test_lbr_wraparound;
          Alcotest.test_case "cycles monotone" `Quick test_lbr_cycles_monotone;
          Alcotest.test_case "clear" `Quick test_lbr_clear;
          QCheck_alcotest.to_alcotest prop_lbr_keeps_most_recent;
        ] );
      ( "sampler",
        [
          Alcotest.test_case "lbr period" `Quick test_sampler_lbr_period;
          Alcotest.test_case "long stall" `Quick test_sampler_long_stall_one_sample;
          Alcotest.test_case "pebs subsampling" `Quick test_sampler_pebs_subsampling;
          Alcotest.test_case "delinquent ranking" `Quick test_sampler_delinquent_ranking;
          Alcotest.test_case "snapshot contents" `Quick test_sampler_snapshot_captures_ring;
        ] );
    ]
